// ZipfVertexSampler (graph/zipf_sampler.h): the degree-ranked inverse-CDF
// sampler the query-throughput bench uses for skewed workloads. Verifies
// the deterministic degree ranking, the exact inverse-CDF bucket
// boundaries on a tiny hand-checked universe, the realized frequencies
// on a fine quantile grid (exact, not statistical: SampleAt is a pure
// function of the quantile), and that Sample(Rng&) is the documented
// 53-bit-mantissa transform of the raw stream.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "dspc/common/rng.h"
#include "dspc/graph/generators.h"
#include "dspc/graph/graph.h"
#include "dspc/graph/zipf_sampler.h"

namespace dspc {
namespace {

/// A 4-vertex path 0-1-2-3 plus edge 1-3: degrees {1:3, 3:2, 2:2, 0:1}.
/// Ranking is degree-desc with id-asc ties: [1, 2, 3, 0].
Graph TinyGraph() {
  Graph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  g.AddEdge(1, 3);
  return g;
}

TEST(ZipfSampler, DegreeRankingIsDeterministic) {
  const Graph g = TinyGraph();
  const ZipfVertexSampler sampler(g, 1.0);
  const std::vector<Vertex> want = {1, 2, 3, 0};
  EXPECT_EQ(sampler.by_rank(), want);
}

TEST(ZipfSampler, ExactInverseCdfBoundaries) {
  // With s = 1 over 4 ranks the unnormalized masses are 1, 1/2, 1/3, 1/4
  // (total 25/12). A quantile strictly inside a bucket returns that
  // bucket's vertex; probe each bucket's interior and both edges.
  const Graph g = TinyGraph();
  const ZipfVertexSampler sampler(g, 1.0);
  const double total = 1.0 + 0.5 + 1.0 / 3.0 + 0.25;
  const double c1 = 1.0 / total;                    // end of rank 0
  const double c2 = (1.0 + 0.5) / total;            // end of rank 1
  const double c3 = (1.0 + 0.5 + 1.0 / 3.0) / total;

  EXPECT_EQ(sampler.SampleAt(0.0), 1u);
  EXPECT_EQ(sampler.SampleAt(c1 * 0.5), 1u);
  EXPECT_EQ(sampler.SampleAt(c1 + 1e-9), 2u);
  EXPECT_EQ(sampler.SampleAt((c1 + c2) / 2), 2u);
  EXPECT_EQ(sampler.SampleAt(c2 + 1e-9), 3u);
  EXPECT_EQ(sampler.SampleAt(c3 + 1e-9), 0u);
  // The last representable quantile below 1 lands in the last bucket.
  EXPECT_EQ(sampler.SampleAt(std::nextafter(1.0, 0.0)), 0u);

  // ProbabilityOfRank is exactly the bucket widths SampleAt realizes.
  EXPECT_DOUBLE_EQ(sampler.ProbabilityOfRank(0), c1);
  EXPECT_DOUBLE_EQ(sampler.ProbabilityOfRank(1), c2 - c1);
  EXPECT_DOUBLE_EQ(sampler.ProbabilityOfRank(2), c3 - c2);
  EXPECT_DOUBLE_EQ(sampler.ProbabilityOfRank(3), 1.0 - c3);
  double sum = 0.0;
  for (size_t i = 0; i < 4; ++i) sum += sampler.ProbabilityOfRank(i);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(ZipfSampler, FineGridFrequenciesMatchProbabilities) {
  // Sweep a uniform quantile grid through SampleAt: the realized
  // frequency of each vertex must match ProbabilityOfRank to within one
  // grid step. Exact — no randomness involved.
  const Graph g = GenerateBarabasiAlbert(24, 2, 7);
  for (const double s : {0.8, 1.1, 1.6}) {
    const ZipfVertexSampler sampler(g, s);
    constexpr int kGrid = 200000;
    std::map<Vertex, int> freq;
    for (int i = 0; i < kGrid; ++i) {
      ++freq[sampler.SampleAt((i + 0.5) / kGrid)];
    }
    for (size_t rank = 0; rank < sampler.by_rank().size(); ++rank) {
      const Vertex v = sampler.by_rank()[rank];
      const double realized =
          static_cast<double>(freq[v]) / static_cast<double>(kGrid);
      EXPECT_NEAR(realized, sampler.ProbabilityOfRank(rank), 2.0 / kGrid)
          << "s=" << s << " rank=" << rank;
    }
    // Monotone: a hotter rank never realizes fewer grid points (allowing
    // the one-step boundary slack).
    for (size_t rank = 1; rank < sampler.by_rank().size(); ++rank) {
      EXPECT_GE(freq[sampler.by_rank()[rank - 1]] + 1,
                freq[sampler.by_rank()[rank]])
          << "s=" << s << " rank=" << rank;
    }
  }
}

TEST(ZipfSampler, SampleIsDocumentedRngTransform) {
  // Sample(rng) must be exactly SampleAt((rng.Next() >> 11) * 2^-53) —
  // the PR 9 bench behavior, bit for bit.
  const Graph g = GenerateBarabasiAlbert(30, 2, 9);
  ZipfVertexSampler sampler(g, 1.1);
  Rng sample_rng(42);
  Rng mirror_rng(42);
  for (int i = 0; i < 1000; ++i) {
    const Vertex got = sampler.Sample(sample_rng);
    const double u01 =
        static_cast<double>(mirror_rng.Next() >> 11) * 0x1.0p-53;
    EXPECT_EQ(got, sampler.SampleAt(u01)) << "i=" << i;
  }
}

TEST(ZipfSampler, StrongSkewConcentratesOnHottestVertex) {
  const Graph g = GenerateBarabasiAlbert(64, 2, 11);
  const ZipfVertexSampler sampler(g, 2.5);
  // At s = 2.5 the hottest vertex holds most of the mass.
  EXPECT_GT(sampler.ProbabilityOfRank(0), 0.5);
  EXPECT_EQ(sampler.SampleAt(0.3), sampler.by_rank()[0]);
}

}  // namespace
}  // namespace dspc
