// Differential harness for the merge-kernel tiers (DESIGN.md §15): every
// tier must produce bit-identical {dist, count} to an independent naive
// reference on exhaustive small shapes (empty / disjoint / identical /
// single-overlap ranges, overflow-reference words on one or both sides,
// rank limits landing exactly on a hub) and on a randomized fuzz sweep
// covering the scalar cutoff, the window remainder, and the lopsided
// gallop. Tiers are forced per call through PackedMergeForTier /
// WideMergeForTier, so the sweep proves all of them even when the
// process-wide dispatch is pinned by env (CI pins a tier per config).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <initializer_list>
#include <iterator>
#include <string>
#include <vector>

#include "dspc/baseline/bfs_counting.h"
#include "dspc/common/label_codec.h"
#include "dspc/common/rng.h"
#include "dspc/core/dynamic_spc.h"
#include "dspc/core/flat_spc_index.h"
#include "dspc/core/merge_kernel.h"
#include "test_util.h"

namespace dspc {
namespace {

using dspc::testing::RandomGraph;

constexpr MergeKernelTier kAllTiers[] = {
    MergeKernelTier::kScalar, MergeKernelTier::kSwar, MergeKernelTier::kAvx2};

/// One side of a packed intersection: arena words + overflow side table.
struct PackedSide {
  std::vector<uint64_t> words;
  std::vector<LabelEntry> overflow;

  const uint64_t* begin() const { return words.data(); }
  const uint64_t* end() const { return words.data() + words.size(); }
};

/// Builds a packed side from strictly ascending hubs; each entry goes
/// out-of-line with probability `overflow_p`.
PackedSide MakeSide(const std::vector<Rank>& hubs, double overflow_p,
                    Rng& rng) {
  PackedSide side;
  for (const Rank h : hubs) {
    if (rng.NextBool(overflow_p)) {
      const uint64_t slot = side.overflow.size();
      // Out-of-line entries carry values the inline fields cannot: a
      // count above 2^29 (and occasionally a big distance).
      side.overflow.push_back(LabelEntry{
          h, static_cast<Distance>(1 + rng.NextBounded(2000)),
          (rng.Next() | (1ULL << 40))});
      side.words.push_back(PackFlatOverflowRef(h, slot));
    } else {
      side.words.push_back(
          PackLabel(h, static_cast<Distance>(1 + rng.NextBounded(500)),
                    1 + rng.NextBounded(kPackedCountMax - 1)));
    }
  }
  return side;
}

/// Test-local decode, independent of the kernel's internals.
void NaiveDecode(uint64_t word, const std::vector<LabelEntry>& overflow,
                 Distance* dist, PathCount* count) {
  if (IsFlatOverflowRef(word)) {
    const LabelEntry& e = overflow[FlatOverflowSlot(word)];
    *dist = e.dist;
    *count = e.count;
  } else {
    const PackedLabelFields f = UnpackLabel(word);
    *dist = f.dist;
    *count = f.count;
  }
}

/// Independent all-pairs reference: min summed distance over equal-hub
/// pairs, modular uint64 sum of count products over the min-achievers.
SpcResult NaiveMerge(const PackedSide& a, const PackedSide& b,
                     SpcResult seed) {
  for (const uint64_t wa : a.words) {
    for (const uint64_t wb : b.words) {
      if (FlatHub(wa) != FlatHub(wb)) continue;
      Distance da, db;
      PathCount ca, cb;
      NaiveDecode(wa, a.overflow, &da, &ca);
      NaiveDecode(wb, b.overflow, &db, &cb);
      const Distance d = da + db;
      if (d < seed.dist) {
        seed.dist = d;
        seed.count = ca * cb;
      } else if (d == seed.dist) {
        seed.count += ca * cb;
      }
    }
  }
  return seed;
}

SpcResult NaiveMergeWide(const std::vector<LabelEntry>& a,
                         const std::vector<LabelEntry>& b, SpcResult seed) {
  for (const LabelEntry& ea : a) {
    for (const LabelEntry& eb : b) {
      if (ea.hub != eb.hub) continue;
      const Distance d = ea.dist + eb.dist;
      if (d < seed.dist) {
        seed.dist = d;
        seed.count = ea.count * eb.count;
      } else if (d == seed.dist) {
        seed.count += ea.count * eb.count;
      }
    }
  }
  return seed;
}

/// Runs every tier's packed kernel on (a, b) from `seed` and asserts each
/// one reproduces the naive reference bit for bit.
void ExpectAllTiersMatch(const PackedSide& a, const PackedSide& b,
                         SpcResult seed, const std::string& context) {
  const SpcResult want = NaiveMerge(a, b, seed);
  for (const MergeKernelTier tier : kAllTiers) {
    if (!MergeKernelTierSupported(tier)) continue;
    SpcResult got = seed;
    PackedMergeForTier(tier)(a.begin(), a.end(), a.overflow.data(), b.begin(),
                             b.end(), b.overflow.data(), &got);
    ASSERT_EQ(got.dist, want.dist)
        << context << " tier=" << MergeKernelTierName(tier);
    ASSERT_EQ(got.count, want.count)
        << context << " tier=" << MergeKernelTierName(tier);
  }
}

std::vector<Rank> Hubs(std::initializer_list<Rank> hubs) { return hubs; }

TEST(MergeKernel, EmptySides) {
  Rng rng(1);
  const PackedSide some = MakeSide(Hubs({3, 9, 40}), 0.0, rng);
  const PackedSide empty;
  ExpectAllTiersMatch(empty, some, SpcResult{}, "empty a");
  ExpectAllTiersMatch(some, empty, SpcResult{}, "empty b");
  ExpectAllTiersMatch(empty, empty, SpcResult{}, "both empty");
  // The inline wrapper's empty fast path leaves the seed untouched.
  SpcResult seeded{4, 7};
  MergePackedTail(empty.begin(), empty.end(), nullptr, some.begin(),
                  some.end(), some.overflow.data(), &seeded);
  EXPECT_EQ(seeded.dist, 4u);
  EXPECT_EQ(seeded.count, 7u);
}

TEST(MergeKernel, DisjointIdenticalAndSingleOverlap) {
  Rng rng(2);
  const PackedSide a = MakeSide(Hubs({1, 5, 9, 13, 700}), 0.0, rng);
  const PackedSide disjoint = MakeSide(Hubs({2, 6, 10, 14, 900}), 0.0, rng);
  ExpectAllTiersMatch(a, disjoint, SpcResult{}, "disjoint");

  const PackedSide same = MakeSide(Hubs({1, 5, 9, 13, 700}), 0.0, rng);
  ExpectAllTiersMatch(a, same, SpcResult{}, "identical hub sets");

  // One-element overlap at the front, middle, and back of the range.
  for (const Rank shared : {Rank{1}, Rank{9}, Rank{700}}) {
    std::vector<Rank> hubs{shared};
    for (Rank h : {Rank{200}, Rank{300}, Rank{400}, Rank{800}}) {
      if (h != shared) hubs.push_back(h);
    }
    std::sort(hubs.begin(), hubs.end());
    const PackedSide b = MakeSide(hubs, 0.0, rng);
    ExpectAllTiersMatch(a, b, SpcResult{},
                        "single overlap hub=" + std::to_string(shared));
  }
}

TEST(MergeKernel, SeedInteraction) {
  // The kernels accumulate into a caller-seeded result (the dense part of
  // a flat query); a seed below, at, and above the best tail distance
  // must behave identically across tiers.
  Rng rng(3);
  const PackedSide a = MakeSide(Hubs({10, 20, 30, 40}), 0.0, rng);
  const PackedSide b = MakeSide(Hubs({20, 40, 50}), 0.0, rng);
  for (const Distance seed_dist : {Distance{1}, Distance{300}, Distance{900},
                                   kInfDistance}) {
    ExpectAllTiersMatch(a, b, SpcResult{seed_dist, 17},
                        "seed dist=" + std::to_string(seed_dist));
  }
}

TEST(MergeKernel, OverflowRefWords) {
  Rng rng(4);
  // All entries out-of-line on one side, then on both; matched overflow
  // pairs multiply counts far beyond the 29-bit inline field.
  const std::vector<Rank> hubs{7, 21, 22, 23, 90, 1000};
  const PackedSide inline_side = MakeSide(hubs, 0.0, rng);
  const PackedSide ovf_a = MakeSide(hubs, 1.0, rng);
  const PackedSide ovf_b = MakeSide(hubs, 1.0, rng);
  ExpectAllTiersMatch(ovf_a, inline_side, SpcResult{}, "overflow a only");
  ExpectAllTiersMatch(inline_side, ovf_b, SpcResult{}, "overflow b only");
  ExpectAllTiersMatch(ovf_a, ovf_b, SpcResult{}, "overflow both");
}

TEST(MergeKernel, LimitTruncationOnExactHub) {
  // PackedLowerBound replaces the historical in-loop `hub >= limit`
  // break; a limit equal to a hub present on both sides must exclude
  // exactly that hub and everything after it.
  Rng rng(5);
  const std::vector<Rank> hubs{4, 8, 15, 16, 23, 42};
  const PackedSide a = MakeSide(hubs, 0.3, rng);
  const PackedSide b = MakeSide(hubs, 0.3, rng);
  for (const Rank limit : {Rank{0}, Rank{4}, Rank{16}, Rank{42}, Rank{43},
                           Rank{100000}}) {
    const uint64_t* ae = PackedLowerBound(a.begin(), a.end(), limit);
    const uint64_t* be = PackedLowerBound(b.begin(), b.end(), limit);
    // Reference over the filtered hub sets.
    PackedSide fa{{a.begin(), ae}, a.overflow};
    PackedSide fb{{b.begin(), be}, b.overflow};
    const SpcResult want = NaiveMerge(fa, fb, SpcResult{});
    for (const MergeKernelTier tier : kAllTiers) {
      if (!MergeKernelTierSupported(tier)) continue;
      SpcResult got;
      PackedMergeForTier(tier)(a.begin(), ae, a.overflow.data(), b.begin(),
                               be, b.overflow.data(), &got);
      EXPECT_EQ(got.dist, want.dist)
          << "limit=" << limit << " tier=" << MergeKernelTierName(tier);
      EXPECT_EQ(got.count, want.count)
          << "limit=" << limit << " tier=" << MergeKernelTierName(tier);
    }
  }
}

/// Strictly ascending hub set: `shared` hubs drawn from a common pool
/// plus private hubs, so overlap is controlled but positions are random.
std::vector<Rank> FuzzHubs(size_t n, double overlap, Rng& rng,
                           const std::vector<Rank>& pool) {
  std::vector<Rank> hubs;
  for (size_t i = 0; i < n; ++i) {
    if (!pool.empty() && rng.NextBool(overlap)) {
      hubs.push_back(pool[rng.NextBounded(pool.size())]);
    } else {
      hubs.push_back(static_cast<Rank>(rng.NextBounded(kPackedHubMax)));
    }
  }
  std::sort(hubs.begin(), hubs.end());
  hubs.erase(std::unique(hubs.begin(), hubs.end()), hubs.end());
  return hubs;
}

TEST(MergeKernel, FuzzSweepPacked) {
  Rng rng(0xC0FFEE);
  // Side lengths straddle every regime: the scalar cutoff (<16), the
  // window remainder (non-multiples of 4 and 8), and the 32x lopsided
  // gallop threshold.
  const size_t sizes[] = {0, 1, 2, 3, 5, 8, 15, 16, 17, 31, 33, 64, 192};
  for (int iter = 0; iter < 60; ++iter) {
    std::vector<Rank> pool;
    for (int i = 0; i < 64; ++i) {
      pool.push_back(static_cast<Rank>(rng.NextBounded(1u << 20)));
    }
    const size_t na = sizes[rng.NextBounded(std::size(sizes))];
    const size_t nb = sizes[rng.NextBounded(std::size(sizes))];
    const double overlap = rng.NextDouble();
    const double ovf = rng.NextBool(0.5) ? 0.0 : rng.NextDouble() * 0.3;
    const PackedSide a = MakeSide(FuzzHubs(na, overlap, rng, pool), ovf, rng);
    const PackedSide b = MakeSide(FuzzHubs(nb, overlap, rng, pool), ovf, rng);
    ExpectAllTiersMatch(a, b, SpcResult{}, "fuzz iter " + std::to_string(iter));
    if (::testing::Test::HasFatalFailure()) return;
  }
  // Lopsided shapes: force the gallop path on both orientations.
  for (int iter = 0; iter < 10; ++iter) {
    const PackedSide small =
        MakeSide(FuzzHubs(3, 0.8, rng, FuzzHubs(500, 0.0, rng, {})), 0.2, rng);
    const PackedSide big =
        MakeSide(FuzzHubs(400, 0.0, rng, {}), 0.2, rng);
    ExpectAllTiersMatch(small, big, SpcResult{},
                        "lopsided a iter " + std::to_string(iter));
    ExpectAllTiersMatch(big, small, SpcResult{},
                        "lopsided b iter " + std::to_string(iter));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(MergeKernel, FuzzSweepWide) {
  Rng rng(0xBEEF);
  const size_t sizes[] = {0, 1, 3, 4, 7, 16, 33, 120};
  for (int iter = 0; iter < 40; ++iter) {
    std::vector<Rank> pool;
    for (int i = 0; i < 48; ++i) {
      pool.push_back(static_cast<Rank>(rng.NextBounded(1u << 28)));
    }
    auto make = [&](size_t n, double overlap) {
      std::vector<LabelEntry> entries;
      for (const Rank h : FuzzHubs(n, overlap, rng, pool)) {
        entries.push_back(LabelEntry{
            h, static_cast<Distance>(1 + rng.NextBounded(1000)),
            1 + rng.Next() % (1ULL << 40)});
      }
      return entries;
    };
    const double overlap = rng.NextDouble();
    const std::vector<LabelEntry> a =
        make(sizes[rng.NextBounded(std::size(sizes))], overlap);
    const std::vector<LabelEntry> b =
        make(sizes[rng.NextBounded(std::size(sizes))], overlap);
    const SpcResult want = NaiveMergeWide(a, b, SpcResult{});
    for (const MergeKernelTier tier : kAllTiers) {
      SpcResult got;
      WideMergeForTier(tier)(a.data(), a.data() + a.size(), b.data(),
                             b.data() + b.size(), &got);
      ASSERT_EQ(got.dist, want.dist)
          << "wide fuzz iter " << iter << " tier "
          << MergeKernelTierName(tier);
      ASSERT_EQ(got.count, want.count)
          << "wide fuzz iter " << iter << " tier "
          << MergeKernelTierName(tier);
    }
    // WideLowerBound truncation mirrors the packed limit contract.
    if (!a.empty() && !b.empty()) {
      const Rank limit = a[rng.NextBounded(a.size())].hub;
      const LabelEntry* ae = WideLowerBound(a.data(), a.data() + a.size(),
                                            limit);
      const LabelEntry* be = WideLowerBound(b.data(), b.data() + b.size(),
                                            limit);
      const SpcResult limited = NaiveMergeWide(
          std::vector<LabelEntry>(a.data(), ae),
          std::vector<LabelEntry>(b.data(), be), SpcResult{});
      SpcResult got;
      MergeWideBlocked(a.data(), ae, b.data(), be, &got);
      ASSERT_EQ(got, limited) << "wide limit fuzz iter " << iter;
    }
  }
}

// --- dispatch state ---------------------------------------------------------

/// Pins a tier for the current scope; restores env/auto dispatch on exit.
class TierGuard {
 public:
  explicit TierGuard(MergeKernelTier tier) : ok_(SetMergeKernelTier(tier)) {}
  ~TierGuard() { ResetMergeKernelTier(); }
  bool ok() const { return ok_; }

 private:
  bool ok_;
};

bool EnvPinsScalar() {
  const char* v = std::getenv("DSPC_FORCE_SCALAR_KERNEL");
  return v != nullptr && *v != '\0' && std::string(v) != "0";
}

TEST(MergeKernelDispatch, BaselineTiersAlwaysSupported) {
  EXPECT_TRUE(MergeKernelTierSupported(MergeKernelTier::kScalar));
  EXPECT_TRUE(MergeKernelTierSupported(MergeKernelTier::kSwar));
  const MergeKernelTier max = MaxMergeKernelTier();
  EXPECT_TRUE(MergeKernelTierSupported(max));
  EXPECT_EQ(MergeKernelTierSupported(MergeKernelTier::kAvx2),
            max == MergeKernelTier::kAvx2);
}

TEST(MergeKernelDispatch, PinAndReset) {
  {
    TierGuard pin(MergeKernelTier::kScalar);
    ASSERT_TRUE(pin.ok());
    EXPECT_EQ(ActiveMergeKernelTier(), MergeKernelTier::kScalar);
  }
  if (EnvPinsScalar()) {
    // The env pin is the override of last resort: programmatic requests
    // for a vector tier must be refused.
    EXPECT_FALSE(SetMergeKernelTier(MergeKernelTier::kSwar));
    EXPECT_EQ(ActiveMergeKernelTier(), MergeKernelTier::kScalar);
  } else {
    TierGuard pin(MergeKernelTier::kSwar);
    ASSERT_TRUE(pin.ok());
    EXPECT_EQ(ActiveMergeKernelTier(), MergeKernelTier::kSwar);
  }
  EXPECT_FALSE(
      SetMergeKernelTier(static_cast<MergeKernelTier>(250)));  // nonsense
}

TEST(MergeKernelDispatch, ConfigureQueryKernelClampsToHost) {
  ConfigureQueryKernel(QueryOptions{MergeKernelTier::kAvx2});
  const MergeKernelTier active = ActiveMergeKernelTier();
  if (EnvPinsScalar()) {
    EXPECT_EQ(active, MergeKernelTier::kScalar);
  } else {
    EXPECT_EQ(active, MaxMergeKernelTier());
  }
  ResetMergeKernelTier();
}

TEST(MergeKernelDispatch, TierNames) {
  EXPECT_STREQ(MergeKernelTierName(MergeKernelTier::kScalar), "scalar");
  EXPECT_STREQ(MergeKernelTierName(MergeKernelTier::kSwar), "swar");
  EXPECT_STREQ(MergeKernelTierName(MergeKernelTier::kAvx2), "avx2");
}

// --- whole-index differential -----------------------------------------------

TEST(MergeKernelIndex, AllTiersMatchOnFlatQueries) {
  // End-to-end: pin each tier and run every (s, t) query plus rank-limited
  // PreQuery through a real FlatSpcIndex; all tiers must agree with the
  // scalar tier bit for bit. Skipped for tiers the env pin forbids — the
  // per-function fuzz above still covers their kernels.
  const Graph graph = RandomGraph(42, 110, 1234);
  DynamicSpcIndex dyn(graph);
  const FlatSpcIndex flat(dyn.index());
  const Vertex n = static_cast<Vertex>(graph.NumVertices());

  std::vector<SpcResult> scalar_full;
  std::vector<SpcResult> scalar_limited;
  {
    TierGuard pin(MergeKernelTier::kScalar);
    ASSERT_TRUE(pin.ok());
    for (Vertex s = 0; s < n; ++s) {
      for (Vertex t = 0; t < n; ++t) {
        scalar_full.push_back(flat.Query(s, t));
        scalar_limited.push_back(flat.PreQuery(s, t));
      }
    }
  }

  for (const MergeKernelTier tier :
       {MergeKernelTier::kSwar, MergeKernelTier::kAvx2}) {
    if (!MergeKernelTierSupported(tier)) continue;
    TierGuard pin(tier);
    if (!pin.ok()) continue;  // env pins scalar
    size_t i = 0;
    for (Vertex s = 0; s < n; ++s) {
      for (Vertex t = 0; t < n; ++t, ++i) {
        ASSERT_EQ(flat.Query(s, t), scalar_full[i])
            << "tier=" << MergeKernelTierName(tier) << " s=" << s
            << " t=" << t;
        ASSERT_EQ(flat.PreQuery(s, t), scalar_limited[i])
            << "PreQuery tier=" << MergeKernelTierName(tier) << " s=" << s
            << " t=" << t;
      }
    }
  }
}

}  // namespace
}  // namespace dspc
