// Differential fuzz for dynamic maintenance + snapshot serving: seeded
// randomized mixed insert/delete/query streams on small BA / R-MAT
// graphs, with every answer cross-checked against the BiBFS baseline on
// the current graph AND (periodically) against a from-scratch rebuilt
// index. Queries are deliberately landed exactly on the snapshot
// staleness boundary (budget-1 stale rides vs. the budget-crossing query
// that pays or schedules the rebuild), for every RefreshPolicy.
//
// Under RefreshPolicy::kBackground answers are bounded-stale, so the
// check is generation-aware: a full graph history (generation -> graph)
// is replayed alongside the index, un-quiesced answers must match BiBFS
// on *some* recorded generation, and pinned snapshots must match BiBFS on
// exactly the generation they claim.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <unordered_map>
#include <vector>

#include "dspc/api/spc_service.h"
#include "dspc/baseline/bibfs_counting.h"
#include "dspc/common/rng.h"
#include "dspc/core/dynamic_spc.h"
#include "dspc/core/flat_spc_index.h"
#include "dspc/core/hp_spc.h"
#include "dspc/core/merge_kernel.h"
#include "dspc/core/parallel_build.h"
#include "dspc/graph/generators.h"
#include "dspc/graph/update_stream.h"

namespace dspc {
namespace {

constexpr size_t kStaleBudget = 3;

/// Drives one randomized stream and checks every answer differentially.
class DifferentialStream {
 public:
  DifferentialStream(const Graph& start, RefreshPolicy policy, uint64_t seed,
                     size_t snapshot_shards = 0,
                     ParallelBuildOptions build = {},
                     size_t rebuild_after_updates = 0)
      : policy_(policy), build_(build), rng_(seed) {
    DynamicSpcOptions options;
    options.snapshot.refresh = policy;
    options.snapshot.rebuild_after_queries = kStaleBudget;
    options.snapshot.shards = snapshot_shards;
    options.build = build;
    options.rebuild_after_updates = rebuild_after_updates;
    dyn_ = std::make_unique<DynamicSpcIndex>(start, options);
    history_.emplace(dyn_->Generation(), dyn_->graph());
  }

  void Run(int steps) {
    for (int step = 0; step < steps && !::testing::Test::HasFatalFailure();
         ++step) {
      const double dice = rng_.NextDouble();
      if (dice < 0.40) {
        InsertRandomNonEdge();
      } else if (dice < 0.65) {
        DeleteRandomEdge();
      } else if (dice < 0.70) {
        AddAndConnectVertex();
      } else {
        QueryBurst("burst step " + std::to_string(step));
      }
      if (step % 30 == 29) CrossCheckAgainstRebuild(step);
    }
    ASSERT_TRUE(dyn_->index().ValidateStructure().ok());
    CrossCheckAgainstRebuild(steps);
  }

 private:
  size_t NumVertices() const { return dyn_->graph().NumVertices(); }

  Vertex RandomVertex() {
    return static_cast<Vertex>(rng_.NextBounded(NumVertices()));
  }

  void RecordGeneration() {
    history_.emplace(dyn_->Generation(), dyn_->graph());
  }

  /// Checks one query answer differentially against BiBFS. Sync/manual
  /// answers must match the current graph exactly. Background answers are
  /// validated twice: the pinned snapshot against the generation it
  /// claims, and the facade Query against the recorded history
  /// (membership: the answer belongs to some real generation).
  void CheckQuery(Vertex s, Vertex t, const std::string& ctx) {
    if (policy_ != RefreshPolicy::kBackground) {
      const SpcResult got = dyn_->Query(s, t);
      const SpcResult want = BiBfsCountPair(dyn_->graph(), s, t);
      ASSERT_EQ(got.dist, want.dist) << ctx << " s=" << s << " t=" << t;
      ASSERT_EQ(got.count, want.count) << ctx << " s=" << s << " t=" << t;
      return;
    }

    // Pinned snapshot: answers must be exact for the claimed generation.
    if (const auto pin = dyn_->PinSnapshot();
        pin && s < pin->NumVertices() && t < pin->NumVertices()) {
      const auto it = history_.find(pin.generation);
      ASSERT_NE(it, history_.end())
          << ctx << " pinned unknown generation " << pin.generation;
      const SpcResult got = pin->Query(s, t);
      const SpcResult want = BiBfsCountPair(it->second, s, t);
      ASSERT_EQ(got.dist, want.dist)
          << ctx << " pinned gen=" << pin.generation << " s=" << s
          << " t=" << t;
      ASSERT_EQ(got.count, want.count)
          << ctx << " pinned gen=" << pin.generation << " s=" << s
          << " t=" << t;
    }

    // Facade query: bounded-stale, so membership over the history.
    const SpcResult got = dyn_->Query(s, t);
    for (const auto& [gen, graph] : history_) {
      if (s >= graph.NumVertices() || t >= graph.NumVertices()) continue;
      if (BiBfsCountPair(graph, s, t) == got) return;
    }
    FAIL() << ctx << " background answer {" << got.dist << "," << got.count
           << "} for s=" << s << " t=" << t
           << " matches no recorded generation";
  }

  /// Lands queries exactly on the staleness boundary: after an update the
  /// snapshot is stale, so the first budget-1 queries ride the old state
  /// (mutable index under sync/manual, stale snapshot under background)
  /// and the budget-th query crosses the threshold and pays/schedules the
  /// rebuild. Every one of them is answer-checked.
  void BoundaryProbe(const std::string& ctx) {
    for (size_t q = 0; q + 1 < kStaleBudget; ++q) {
      CheckQuery(RandomVertex(), RandomVertex(),
                 ctx + " stale-ride " + std::to_string(q));
      if (::testing::Test::HasFatalFailure()) return;
    }
    CheckQuery(RandomVertex(), RandomVertex(), ctx + " budget-crossing");
  }

  void InsertRandomNonEdge() {
    const Vertex u = RandomVertex();
    const Vertex v = RandomVertex();
    if (u == v || dyn_->graph().HasEdge(u, v)) return;
    ASSERT_TRUE(dyn_->InsertEdge(u, v).applied);
    RecordGeneration();
    BoundaryProbe("after insert");
  }

  void DeleteRandomEdge() {
    const std::vector<Edge> edges = dyn_->graph().Edges();
    if (edges.empty()) return;
    const Edge e = edges[rng_.NextBounded(edges.size())];
    ASSERT_TRUE(dyn_->RemoveEdge(e.u, e.v).applied);
    RecordGeneration();
    BoundaryProbe("after delete");
  }

  /// Vertex addition makes stale snapshots *narrower* than the graph —
  /// queries on the new vertex must fall through to the mutable index.
  void AddAndConnectVertex() {
    const Vertex v = dyn_->AddVertex();
    RecordGeneration();
    const Vertex u = static_cast<Vertex>(rng_.NextBounded(v));
    CheckQuery(v, u, "fresh isolated vertex");
    if (::testing::Test::HasFatalFailure()) return;
    ASSERT_TRUE(dyn_->InsertEdge(v, u).applied);
    RecordGeneration();
    BoundaryProbe("after vertex attach");
  }

  void QueryBurst(const std::string& ctx) {
    for (int q = 0; q < 4; ++q) {
      CheckQuery(RandomVertex(), RandomVertex(), ctx);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }

  /// The incremental index vs. reconstruction: quiesce the snapshot, then
  /// compare facade answers, the (sharded) flat snapshot, an unsharded
  /// snapshot of the same rebuilt index, and a from-scratch HP-SPC build
  /// on a sample of pairs (plus BiBFS as the independent referee).
  void CrossCheckAgainstRebuild(int step) {
    const auto pin = dyn_->WaitForFreshSnapshot();
    ASSERT_TRUE(static_cast<bool>(pin));
    ASSERT_EQ(pin.generation, dyn_->Generation());
    const SpcIndex rebuilt = BuildSpcIndex(dyn_->graph());
    // The parallel builder must reproduce the sequential rebuild label
    // for label on the evolved graph, whatever this stream's options.
    const SpcIndex parallel =
        BuildSpcIndexParallel(dyn_->graph(), OrderingOptions{}, build_);
    ASSERT_TRUE(parallel == rebuilt)
        << "parallel rebuild diverged from sequential at step " << step;
    const FlatSpcIndex unsharded(rebuilt);
    for (int i = 0; i < 40; ++i) {
      const Vertex s = RandomVertex();
      const Vertex t = RandomVertex();
      const SpcResult truth = BiBfsCountPair(dyn_->graph(), s, t);
      const SpcResult from_scratch = rebuilt.Query(s, t);
      const SpcResult maintained = dyn_->Query(s, t);
      const SpcResult snapshot = pin->Query(s, t);
      ASSERT_EQ(from_scratch, truth)
          << "rebuild disagrees with BiBFS at step " << step << " s=" << s
          << " t=" << t;
      ASSERT_EQ(maintained, truth)
          << "maintained index disagrees with BiBFS at step " << step
          << " s=" << s << " t=" << t;
      ASSERT_EQ(snapshot, truth)
          << "fresh snapshot disagrees with BiBFS at step " << step
          << " s=" << s << " t=" << t;
      ASSERT_EQ(unsharded.Query(s, t), truth)
          << "unsharded snapshot disagrees with BiBFS at step " << step
          << " s=" << s << " t=" << t;
    }
  }

  const RefreshPolicy policy_;
  const ParallelBuildOptions build_;
  Rng rng_;
  std::unique_ptr<DynamicSpcIndex> dyn_;
  /// Graph state at every generation the index has passed through.
  std::unordered_map<uint64_t, Graph> history_;
};

// (policy, seed, snapshot shard count). The shard sweep covers the
// monolithic layout (1), uneven small counts (2, 7), and more shards
// than some test graphs have vertices (64); every answer is checked
// against BiBFS and the unsharded snapshot of a from-scratch rebuild.
using FuzzParam = std::tuple<RefreshPolicy, uint64_t, size_t>;

class DifferentialFuzzTest : public ::testing::TestWithParam<FuzzParam> {};

std::string FuzzParamName(const ::testing::TestParamInfo<FuzzParam>& info) {
  const RefreshPolicy policy = std::get<0>(info.param);
  std::string name = policy == RefreshPolicy::kSync         ? "Sync"
                     : policy == RefreshPolicy::kBackground ? "Background"
                                                            : "Manual";
  return name + "Seed" + std::to_string(std::get<1>(info.param)) + "Shards" +
         std::to_string(std::get<2>(info.param));
}

TEST_P(DifferentialFuzzTest, BaStream) {
  const auto [policy, seed, shards] = GetParam();
  DifferentialStream stream(GenerateBarabasiAlbert(48, 2, seed), policy, seed,
                            shards);
  stream.Run(90);
}

TEST_P(DifferentialFuzzTest, RmatStream) {
  const auto [policy, seed, shards] = GetParam();
  DifferentialStream stream(GenerateRmat(6, 150, seed), policy, seed, shards);
  stream.Run(90);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DifferentialFuzzTest,
    ::testing::Combine(::testing::Values(RefreshPolicy::kSync,
                                         RefreshPolicy::kBackground,
                                         RefreshPolicy::kManual),
                       ::testing::Values(1001u, 2002u),
                       ::testing::Values(1u, 2u, 7u, 64u)),
    FuzzParamName);

// Parallel-build fuzz sweep: the same randomized update streams, but the
// lazy rebuild policy fires every 6 updates and every full rebuild —
// construction included — runs through the parallel builder at the
// sweep's thread count and batch strategy. Every answer is still checked
// bit-for-bit against BiBFS, and every periodic cross-check asserts the
// parallel rebuild is label-identical to a sequential one on the evolved
// graph (which by then has grown vertices and drifted far from the
// seed graph).
using ParallelFuzzParam = std::tuple<unsigned, BuildBatchStrategy, uint64_t>;

class ParallelBuildFuzzTest
    : public ::testing::TestWithParam<ParallelFuzzParam> {};

std::string ParallelFuzzParamName(
    const ::testing::TestParamInfo<ParallelFuzzParam>& info) {
  const char* strategy = std::get<1>(info.param) == BuildBatchStrategy::kAuto
                             ? "Auto"
                         : std::get<1>(info.param) ==
                                 BuildBatchStrategy::kRankWindow
                             ? "RankWindow"
                             : "Frontier";
  return std::string(strategy) + "T" + std::to_string(std::get<0>(info.param)) +
         "Seed" + std::to_string(std::get<2>(info.param));
}

TEST_P(ParallelBuildFuzzTest, SyncRmatStream) {
  const auto [threads, strategy, seed] = GetParam();
  ParallelBuildOptions build;
  build.threads = threads;
  build.batch_strategy = strategy;
  DifferentialStream stream(GenerateRmat(6, 150, seed), RefreshPolicy::kSync,
                            seed, /*snapshot_shards=*/2, build,
                            /*rebuild_after_updates=*/6);
  stream.Run(70);
}

TEST_P(ParallelBuildFuzzTest, BackgroundBaStream) {
  const auto [threads, strategy, seed] = GetParam();
  ParallelBuildOptions build;
  build.threads = threads;
  build.batch_strategy = strategy;
  DifferentialStream stream(GenerateBarabasiAlbert(48, 2, seed),
                            RefreshPolicy::kBackground, seed,
                            /*snapshot_shards=*/7, build,
                            /*rebuild_after_updates=*/6);
  stream.Run(70);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ParallelBuildFuzzTest,
    ::testing::Combine(::testing::Values(3u, 8u),
                       ::testing::Values(BuildBatchStrategy::kAuto,
                                         BuildBatchStrategy::kRankWindow,
                                         BuildBatchStrategy::kFrontier),
                       ::testing::Values(11u)),
    ParallelFuzzParamName);

// The boundary bookkeeping itself, deterministically: exactly budget-1
// stale queries ride without a rebuild, the budget-th rebuilds (sync) or
// schedules (background), and manual never rebuilds on its own.
TEST(SnapshotBoundaryTest, SyncRebuildLandsExactlyOnBudget) {
  DynamicSpcOptions options;
  options.snapshot.rebuild_after_queries = kStaleBudget;
  DynamicSpcIndex dyn(GenerateBarabasiAlbert(40, 2, 7), options);
  // Warm a fresh snapshot, then invalidate it.
  ASSERT_NE(dyn.FlatSnapshot(), nullptr);
  const size_t warm = dyn.SnapshotRebuilds();
  const Edge e = SampleNonEdges(dyn.graph(), 1, 8).at(0);
  ASSERT_TRUE(dyn.InsertEdge(e.u, e.v).applied);

  for (size_t q = 0; q + 1 < kStaleBudget; ++q) {
    dyn.Query(0, 1);
    EXPECT_EQ(dyn.SnapshotRebuilds(), warm) << "stale ride " << q;
    EXPECT_FALSE(dyn.SnapshotFresh());
  }
  dyn.Query(0, 1);  // the budget-crossing query pays the rebuild
  EXPECT_EQ(dyn.SnapshotRebuilds(), warm + 1);
  EXPECT_TRUE(dyn.SnapshotFresh());
}

TEST(SnapshotBoundaryTest, ManualNeverRebuildsOnQueries) {
  DynamicSpcOptions options;
  options.snapshot.refresh = RefreshPolicy::kManual;
  options.snapshot.rebuild_after_queries = 1;
  DynamicSpcIndex dyn(GenerateBarabasiAlbert(30, 2, 9), options);
  for (int i = 0; i < 10; ++i) dyn.Query(0, static_cast<Vertex>(i));
  EXPECT_EQ(dyn.SnapshotRebuilds(), 0u);
  // Explicit refresh publishes; queries then serve it untouched.
  ASSERT_NE(dyn.FlatSnapshot(), nullptr);
  EXPECT_EQ(dyn.SnapshotRebuilds(), 1u);
  EXPECT_TRUE(dyn.SnapshotFresh());
  dyn.Query(1, 2);
  EXPECT_EQ(dyn.SnapshotRebuilds(), 1u);
}

TEST(SnapshotBoundaryTest, BackgroundPublishesWithoutBlockingQueries) {
  DynamicSpcOptions options;
  options.snapshot.refresh = RefreshPolicy::kBackground;
  options.snapshot.rebuild_after_queries = 1;
  DynamicSpcIndex dyn(GenerateBarabasiAlbert(40, 2, 11), options);
  // Eager initial publish.
  EXPECT_GE(dyn.SnapshotRebuilds(), 1u);
  const auto pin0 = dyn.PinSnapshot();
  ASSERT_TRUE(static_cast<bool>(pin0));
  EXPECT_EQ(pin0.generation, dyn.Generation());

  const Edge e = SampleNonEdges(dyn.graph(), 1, 12).at(0);
  ASSERT_TRUE(dyn.InsertEdge(e.u, e.v).applied);
  // Queries keep answering immediately from the retired-or-current
  // snapshot; the publish catches up asynchronously.
  for (int i = 0; i < 5; ++i) dyn.Query(0, 1);
  const auto fresh = dyn.WaitForFreshSnapshot();
  ASSERT_TRUE(static_cast<bool>(fresh));
  EXPECT_EQ(fresh.generation, dyn.Generation());
  EXPECT_EQ(fresh->Query(e.u, e.v), (SpcResult{1, 1}));
  // The old pin still answers for its own (pre-insert) generation.
  EXPECT_NE(pin0->Query(e.u, e.v), (SpcResult{1, 1}));
}

// --- service-layer token fuzz (DESIGN.md §9) --------------------------------
//
// Randomized interleaving of ApplyUpdates (WriteTokens) and reads across
// the whole consistency lattice under RefreshPolicy::kBackground, where
// the background worker publishes snapshots at arbitrary moments. Every
// response is generation-tagged, so the check is exact, not membership:
// the answer must equal BiBFS on precisely the graph recorded for
// response.generation, and the response generation must honor the read's
// min_generation / max_lag / freshness constraints.
class ServiceTokenFuzz {
 public:
  ServiceTokenFuzz(Graph start, uint64_t seed, size_t shards,
                   bool cached = false)
      : rng_(seed), cached_(cached) {
    DynamicSpcOptions options;
    options.snapshot.refresh = RefreshPolicy::kBackground;
    options.snapshot.rebuild_after_queries = 2;
    options.snapshot.shards = shards;
    if (cached) {
      // Small capacity so the stream also exercises eviction and
      // supersede paths, not just clean hits.
      options.pair_cache.enabled = true;
      options.pair_cache.capacity = 512;
    }
    service_ = std::make_unique<SpcService>(std::move(start), options);
    history_.emplace(service_->Generation(), service_->engine().graph());
    tokens_.push_back({service_->Generation()});
  }

  void Run(int steps) {
    for (int step = 0; step < steps && !::testing::Test::HasFatalFailure();
         ++step) {
      const double dice = rng_.NextDouble();
      if (dice < 0.30) {
        ApplySingle(Kind::kInsert);
      } else if (dice < 0.50) {
        ApplySingle(Kind::kDelete);
      } else if (dice < 0.65) {
        ApplyInsertBatch(step);
      } else if (dice < 0.70) {
        AddVertex();
      } else {
        ReadProbes("step " + std::to_string(step));
      }
    }
    // Final barrier: the newest token must be waitable, and a kSnapshot
    // read with it must then serve exactly the final graph.
    const WriteToken last = tokens_.back();
    ASSERT_TRUE(service_->WaitForSnapshot(last).ok());
    ReadOptions snap;
    snap.consistency = Consistency::kSnapshot;
    snap.min_generation = last.generation;
    for (int i = 0; i < 10; ++i) {
      const Vertex s = RandomVertex();
      const Vertex t = RandomVertex();
      const auto resp = service_->Query(s, t, snap);
      ASSERT_TRUE(resp.ok()) << resp.status().ToString();
      CheckExact(*resp, s, t, "final barrier");
    }
    if (cached_) CheckCachedAgainstScalarUncached(snap);
  }

 private:
  using Kind = Update::Kind;

  size_t NumVertices() const { return service_->NumVertices(); }

  Vertex RandomVertex() {
    return static_cast<Vertex>(rng_.NextBounded(NumVertices()));
  }

  void Record(WriteToken token) {
    history_.emplace(token.generation, service_->engine().graph());
    tokens_.push_back(token);
  }

  void ApplySingle(Kind kind) {
    Update update;
    if (kind == Kind::kInsert) {
      const Vertex u = RandomVertex();
      const Vertex v = RandomVertex();
      if (u == v) return;
      if (service_->engine().graph().HasEdge(u, v)) {
        // Duplicate insert: the WriteReport must say no-op and the
        // generation (and therefore the token) must not advance.
        const uint64_t before = service_->Generation();
        const Update dup = Update::Insert(u, v);
        const auto resp = service_->ApplyUpdates({&dup, 1});
        ASSERT_TRUE(resp.ok()) << resp.status().ToString();
        ASSERT_EQ(resp->reports.size(), 1u);
        ASSERT_EQ(resp->reports[0].outcome, WriteReport::Outcome::kNoOp);
        ASSERT_EQ(resp->applied, 0u);
        ASSERT_EQ(service_->Generation(), before);
        return;
      }
      update = Update::Insert(u, v);
    } else {
      const std::vector<Edge> edges = service_->engine().graph().Edges();
      if (edges.empty()) return;
      const Edge e = edges[rng_.NextBounded(edges.size())];
      update = Update::Delete(e.u, e.v);
    }
    const uint64_t before = service_->Generation();
    const auto resp = service_->ApplyUpdates({&update, 1});
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    ASSERT_TRUE(resp->stats.applied);
    // Report cross-check: exactly the applied count advanced the
    // generation, and the report's own generation is the token's.
    ASSERT_EQ(resp->applied, 1u);
    ASSERT_EQ(resp->reports.size(), 1u);
    ASSERT_EQ(resp->reports[0].generation, before + 1);
    ASSERT_EQ(service_->Generation() - before, resp->applied);
    Record(resp->token);
    ReadProbes(update.kind == Kind::kInsert ? "after insert" : "after delete");
  }

  /// A no-op-free multi-update batch: each update bumps the generation by
  /// exactly one, so every intermediate state can be recorded by local
  /// replay (a stale pin may land on any of them).
  void ApplyInsertBatch(int step) {
    const std::vector<Edge> fresh = SampleNonEdges(
        service_->engine().graph(), 1 + rng_.NextBounded(3), 1000 + step);
    if (fresh.empty()) return;
    std::vector<Update> batch;
    for (const Edge& e : fresh) batch.push_back(Update::Insert(e.u, e.v));

    const uint64_t before = service_->Generation();
    Graph replay = service_->engine().graph();
    const auto resp = service_->ApplyUpdates(batch);
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    ASSERT_EQ(resp->token.generation, before + batch.size());
    // One report per input update; the applied count must equal the
    // generation distance this batch moved the index.
    ASSERT_EQ(resp->reports.size(), batch.size());
    ASSERT_EQ(resp->applied, batch.size());
    ASSERT_EQ(resp->rejected, 0u);
    ASSERT_EQ(resp->token.generation - before, resp->applied);
    for (size_t i = 0; i < batch.size(); ++i) {
      ASSERT_EQ(resp->reports[i].outcome, WriteReport::Outcome::kApplied);
      ASSERT_EQ(resp->reports[i].generation, before + i + 1);
    }
    for (size_t i = 0; i < batch.size(); ++i) {
      ASSERT_TRUE(replay.AddEdge(batch[i].edge.u, batch[i].edge.v));
      history_.emplace(before + i + 1, replay);
    }
    tokens_.push_back(resp->token);
    ReadProbes("after batch");
  }

  void AddVertex() {
    const AddVertexResponse added = service_->AddVertex();
    Record(added.token);
    // Read-your-writes on the brand-new id: a kFresh read with the token
    // must serve (live, since no snapshot covers the vertex yet).
    ReadOptions read;
    read.min_generation = added.token.generation;
    const auto resp = service_->Query(added.vertex, 0, read);
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    ASSERT_EQ(resp->result.count, 0u) << "fresh vertex not isolated";
  }

  WriteToken RandomToken() {
    return tokens_[rng_.NextBounded(tokens_.size())];
  }

  /// Cached-mode epilogue: the stream must actually have exercised the
  /// cache, and the cached (vector-kernel) service must agree bit for
  /// bit with a cache-off, scalar-pinned index built for exactly the
  /// generation the responses claim.
  void CheckCachedAgainstScalarUncached(const ReadOptions& snap) {
    const MetricsSnapshot metrics = service_->Metrics();
    ASSERT_GT(metrics.pair_cache_hits + metrics.pair_cache_misses, 0u)
        << "cached fuzz stream never reached the pair cache";
    ASSERT_GT(metrics.pair_cache_insertions, 0u);

    // Reads repeat pairs so both cache outcomes occur on this stream.
    std::vector<std::pair<Vertex, Vertex>> probes;
    for (int i = 0; i < 40; ++i) {
      probes.emplace_back(RandomVertex(), RandomVertex());
    }
    probes.insert(probes.end(), probes.begin(), probes.begin() + 20);

    std::vector<QueryResponse> responses;
    for (const auto& [s, t] : probes) {
      const auto resp = service_->Query(s, t, snap);
      ASSERT_TRUE(resp.ok()) << resp.status().ToString();
      ASSERT_EQ(resp->served_from, ServedFrom::kSnapshot);
      responses.push_back(*resp);
    }
    ASSERT_GT(service_->Metrics().pair_cache_hits, metrics.pair_cache_hits)
        << "repeated probes produced no cache hits";

    // Scalar, cache-off reference at the claimed generation.
    const auto it = history_.find(responses.front().generation);
    ASSERT_NE(it, history_.end());
    DynamicSpcIndex reference(it->second);
    const FlatSpcIndex flat(reference.index());
    const MergeKernelTier pinned = ActiveMergeKernelTier();
    ASSERT_TRUE(SetMergeKernelTier(MergeKernelTier::kScalar));
    for (size_t i = 0; i < probes.size(); ++i) {
      const auto [s, t] = probes[i];
      ASSERT_EQ(responses[i].generation, responses.front().generation)
          << "post-barrier snapshot reads changed generation";
      ASSERT_EQ(responses[i].result, flat.Query(s, t))
          << "cached/vector vs scalar/uncached mismatch s=" << s
          << " t=" << t << " gen=" << responses[i].generation;
    }
    // Restore the tier the fixture pinned (its TearDown resets fully).
    SetMergeKernelTier(pinned);
  }

  /// The exactness check: response.generation names the graph the answer
  /// must match, bit for bit.
  void CheckExact(const QueryResponse& resp, Vertex s, Vertex t,
                  const std::string& ctx) {
    const auto it = history_.find(resp.generation);
    ASSERT_NE(it, history_.end())
        << ctx << " response claims unrecorded generation "
        << resp.generation;
    if (s >= it->second.NumVertices() || t >= it->second.NumVertices()) {
      // Only live serving can answer ids newer than the claimed graph,
      // and live responses are tagged with the admission generation while
      // the index may already be newer; just require disconnected-or-real.
      return;
    }
    const SpcResult want = BiBfsCountPair(it->second, s, t);
    ASSERT_EQ(resp.result, want)
        << ctx << " gen=" << resp.generation << " s=" << s << " t=" << t
        << " served_from="
        << (resp.served_from == ServedFrom::kSnapshot ? "snapshot" : "live");
  }

  void ReadProbes(const std::string& ctx) {
    const uint64_t gen = service_->Generation();
    const Vertex s = RandomVertex();
    const Vertex t = RandomVertex();

    // kFresh with the newest token: must reflect the current graph.
    {
      ReadOptions read;
      read.min_generation = tokens_.back().generation;
      const auto resp = service_->Query(s, t, read);
      ASSERT_TRUE(resp.ok()) << ctx << ": " << resp.status().ToString();
      ASSERT_GE(resp->generation, read.min_generation) << ctx;
      ASSERT_EQ(resp->generation, gen) << ctx << " kFresh served stale";
      CheckExact(*resp, s, t, ctx + " kFresh+token");
    }

    // kBoundedStaleness with a random older token and random lag.
    {
      const WriteToken token = RandomToken();
      ReadOptions read;
      read.consistency = Consistency::kBoundedStaleness;
      read.min_generation = token.generation;
      read.max_lag = rng_.NextBounded(6);
      const auto resp = service_->Query(s, t, read);
      ASSERT_TRUE(resp.ok()) << ctx << ": " << resp.status().ToString();
      ASSERT_GE(resp->generation, token.generation)
          << ctx << " bounded read ignored min_generation";
      ASSERT_LE(gen - std::min(resp->generation, gen), read.max_lag)
          << ctx << " bounded read exceeded max_lag";
      CheckExact(*resp, s, t, ctx + " kBounded+token");
    }

    // kSnapshot with a random token: either refuses (Unavailable — the
    // snapshot trails the token) or serves a generation >= the token.
    {
      const WriteToken token = RandomToken();
      ReadOptions read;
      read.consistency = Consistency::kSnapshot;
      read.min_generation = token.generation;
      const auto resp = service_->Query(s, t, read);
      if (resp.ok()) {
        ASSERT_GE(resp->generation, token.generation) << ctx;
        ASSERT_EQ(resp->served_from, ServedFrom::kSnapshot) << ctx;
        CheckExact(*resp, s, t, ctx + " kSnapshot+token");
      } else {
        ASSERT_TRUE(resp.status().IsUnavailable())
            << ctx << ": " << resp.status().ToString();
      }
    }
  }

  Rng rng_;
  bool cached_ = false;
  std::unique_ptr<SpcService> service_;
  /// Graph state at every generation the engine has passed through.
  std::unordered_map<uint64_t, Graph> history_;
  /// Every token issued so far (generation 1 = the initial build).
  std::vector<WriteToken> tokens_;
};

using ServiceFuzzParam = std::tuple<uint64_t, size_t>;

class ServiceTokenFuzzTest
    : public ::testing::TestWithParam<ServiceFuzzParam> {};

TEST_P(ServiceTokenFuzzTest, BaStream) {
  const auto [seed, shards] = GetParam();
  ServiceTokenFuzz fuzz(GenerateBarabasiAlbert(48, 2, seed), seed, shards);
  fuzz.Run(80);
}

TEST_P(ServiceTokenFuzzTest, RmatStream) {
  const auto [seed, shards] = GetParam();
  ServiceTokenFuzz fuzz(GenerateRmat(6, 150, seed), seed, shards);
  fuzz.Run(80);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ServiceTokenFuzzTest,
    ::testing::Combine(::testing::Values(31u, 47u),
                       ::testing::Values(1u, 7u)),
    [](const ::testing::TestParamInfo<ServiceFuzzParam>& info) {
      return "Seed" + std::to_string(std::get<0>(info.param)) + "Shards" +
             std::to_string(std::get<1>(info.param));
    });

// The same token fuzz with the hot-pair cache enabled and the host's
// best vector kernel pinned: every generation-exact BiBFS check above
// now runs against cache-served answers, and the epilogue cross-checks
// the stream's final snapshot bit for bit against a cache-off,
// scalar-kernel index. Suite name keeps the ServiceTokenFuzz prefix so
// the TSan CI filter runs it too.
class ServiceTokenFuzzCachedTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    if (!SetMergeKernelTier(MaxMergeKernelTier())) {
      GTEST_SKIP() << "env pins the scalar kernel; vector+cache fuzz "
                      "covered on other CI configs";
    }
  }
  void TearDown() override { ResetMergeKernelTier(); }
};

TEST_P(ServiceTokenFuzzCachedTest, VectorKernelBaStream) {
  const uint64_t seed = GetParam();
  ServiceTokenFuzz fuzz(GenerateBarabasiAlbert(48, 2, seed), seed,
                        /*shards=*/3, /*cached=*/true);
  fuzz.Run(80);
}

TEST_P(ServiceTokenFuzzCachedTest, VectorKernelRmatStream) {
  const uint64_t seed = GetParam();
  ServiceTokenFuzz fuzz(GenerateRmat(6, 150, seed), seed,
                        /*shards=*/1, /*cached=*/true);
  fuzz.Run(80);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ServiceTokenFuzzCachedTest,
                         ::testing::Values(61u, 89u),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "Seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace dspc
