// Unit tests for the update-stream workload generators.

#include <gtest/gtest.h>

#include <unordered_set>

#include "dspc/graph/generators.h"
#include "dspc/graph/update_stream.h"

namespace dspc {
namespace {

uint64_t Key(const Edge& e) {
  const Vertex lo = std::min(e.u, e.v);
  const Vertex hi = std::max(e.u, e.v);
  return (static_cast<uint64_t>(lo) << 32) | hi;
}

TEST(SampleNonEdgesTest, ProducesDistinctNonEdges) {
  const Graph g = GenerateErdosRenyi(50, 200, 1);
  const std::vector<Edge> samples = SampleNonEdges(g, 100, 2);
  EXPECT_EQ(samples.size(), 100u);
  std::unordered_set<uint64_t> seen;
  for (const Edge& e : samples) {
    EXPECT_NE(e.u, e.v);
    EXPECT_FALSE(g.HasEdge(e.u, e.v));
    EXPECT_TRUE(seen.insert(Key(e)).second) << "duplicate sample";
  }
}

TEST(SampleNonEdgesTest, CapsAtFreeSlots) {
  const Graph g = GenerateComplete(6);  // no non-edges at all
  EXPECT_TRUE(SampleNonEdges(g, 10, 3).empty());
  Graph g2 = GenerateComplete(6);
  g2.RemoveEdge(0, 1);
  const auto s = SampleNonEdges(g2, 10, 3);
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(Key(s[0]), Key(Edge{0, 1}));
}

TEST(SampleEdgesTest, DistinctExistingEdges) {
  const Graph g = GenerateErdosRenyi(40, 120, 4);
  const std::vector<Edge> samples = SampleEdges(g, 50, 5);
  EXPECT_EQ(samples.size(), 50u);
  std::unordered_set<uint64_t> seen;
  for (const Edge& e : samples) {
    EXPECT_TRUE(g.HasEdge(e.u, e.v));
    EXPECT_TRUE(seen.insert(Key(e)).second);
  }
}

TEST(SampleEdgesTest, RequestBeyondEdgeCount) {
  const Graph g = GeneratePath(4);
  EXPECT_EQ(SampleEdges(g, 10, 1).size(), 3u);
}

TEST(HybridStreamTest, CompositionAndValidity) {
  const Graph g = GenerateErdosRenyi(60, 200, 7);
  const std::vector<Update> stream = MakeHybridStream(g, 20, 5, 8);
  size_t inserts = 0;
  size_t deletes = 0;
  for (const Update& u : stream) {
    if (u.kind == Update::Kind::kInsert) {
      ++inserts;
      EXPECT_FALSE(g.HasEdge(u.edge.u, u.edge.v));
    } else {
      ++deletes;
      EXPECT_TRUE(g.HasEdge(u.edge.u, u.edge.v));
    }
  }
  EXPECT_EQ(inserts, 20u);
  EXPECT_EQ(deletes, 5u);
}

TEST(HybridStreamTest, Deterministic) {
  const Graph g = GenerateErdosRenyi(60, 200, 7);
  const auto a = MakeHybridStream(g, 10, 3, 9);
  const auto b = MakeHybridStream(g, 10, 3, 9);
  EXPECT_EQ(a, b);
}

TEST(SkewedSampleTest, CoversDegreeSpectrum) {
  const Graph g = GenerateBarabasiAlbert(300, 3, 10);
  const auto samples = SampleSkewedNonEdges(g, 40, 11);
  ASSERT_GE(samples.size(), 20u);
  // Sorted ascending by degree product, spanning a wide range.
  for (size_t i = 1; i < samples.size(); ++i) {
    EXPECT_GE(samples[i].degree_product, samples[i - 1].degree_product);
  }
  EXPECT_GT(samples.back().degree_product,
            4 * (samples.front().degree_product + 1));
}

TEST(SkewedSampleTest, EdgesVariantSamplesExistingEdges) {
  const Graph g = GenerateBarabasiAlbert(200, 3, 12);
  const auto samples = SampleSkewedEdges(g, 30, 13);
  ASSERT_FALSE(samples.empty());
  for (const auto& s : samples) {
    EXPECT_TRUE(g.HasEdge(s.edge.u, s.edge.v));
    EXPECT_EQ(s.degree_product,
              static_cast<uint64_t>(g.Degree(s.edge.u)) * g.Degree(s.edge.v));
  }
}

TEST(UpdateTest, FactoryHelpers) {
  const Update ins = Update::Insert(1, 2);
  EXPECT_EQ(ins.kind, Update::Kind::kInsert);
  EXPECT_EQ(ins.edge, (Edge{1, 2}));
  const Update del = Update::Delete(3, 4);
  EXPECT_EQ(del.kind, Update::Kind::kDelete);
}

}  // namespace
}  // namespace dspc
