// Concurrent serving stress: writer threads apply updates while reader
// threads pin snapshots and issue Query/BatchQuery, asserting that every
// answer is consistent with some published snapshot generation — no torn
// reads (a snapshot always answers exactly as BFS on the graph of the
// generation it claims) and no use-after-free of retired snapshots (a pin
// held across many later publishes keeps answering for its own
// generation; TSan/ASan builds turn any liveness bug into a hard fail).
//
// The update script is fixed up front so the per-generation ground truth
// can be precomputed by replaying it on a scratch graph: generation g is
// the initial graph plus the first g-1 updates.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "dspc/api/spc_service.h"
#include "dspc/baseline/bfs_counting.h"
#include "dspc/common/rng.h"
#include "dspc/core/dynamic_spc.h"
#include "dspc/graph/generators.h"
#include "dspc/graph/update_stream.h"

namespace dspc {
namespace {

struct Script {
  Graph start;
  std::vector<Update> updates;          // all guaranteed to apply
  std::vector<VertexPair> probes;       // fixed query set
  // truth[g - 1][i]: BFS answer for probes[i] on the generation-g graph
  // (g in [1, 1 + updates.size()]).
  std::vector<std::vector<SpcResult>> truth;
  // Optional generation -> truth-row indirection: gen_truth[g - 1] is the
  // truth index for generation g. Empty means the identity (generation g
  // = first g - 1 updates); the parallel-rebuild stress interposes
  // Rebuild() generations, which repeat the previous row because a
  // rebuild bumps the generation without changing the graph.
  std::vector<size_t> gen_truth;

  uint64_t MaxGeneration() const {
    return gen_truth.empty() ? 1 + updates.size() : gen_truth.size();
  }

  const std::vector<SpcResult>& TruthAt(uint64_t gen) const {
    return gen_truth.empty() ? truth[gen - 1] : truth[gen_truth[gen - 1]];
  }

  /// Rewrites gen_truth for a writer that calls Rebuild() after every
  /// `every` applied updates.
  void InterposeRebuilds(size_t every) {
    gen_truth.clear();
    gen_truth.push_back(0);  // generation 1: the initial build
    for (size_t i = 0; i < updates.size(); ++i) {
      gen_truth.push_back(i + 1);
      if ((i + 1) % every == 0) gen_truth.push_back(i + 1);
    }
  }

  /// True iff `r` is the answer for probe i at some generation.
  bool ConsistentWithSomeGeneration(size_t i, const SpcResult& r) const {
    for (const auto& per_gen : truth) {
      if (per_gen[i] == r) return true;
    }
    return false;
  }
};

/// Interleaves sampled non-edge insertions and original-edge deletions
/// (disjoint by construction, so every update applies), then replays the
/// stream to record per-generation ground truth for the probe set.
Script MakeScript(size_t n, uint64_t seed, size_t inserts, size_t deletes,
                  size_t probes) {
  Script script;
  script.start = GenerateBarabasiAlbert(n, 2, seed);
  const std::vector<Edge> ins = SampleNonEdges(script.start, inserts, seed + 1);
  const std::vector<Edge> del = SampleEdges(script.start, deletes, seed + 2);
  size_t ii = 0;
  size_t di = 0;
  while (ii < ins.size() || di < del.size()) {
    // 2:1 insert:delete interleave.
    for (int k = 0; k < 2 && ii < ins.size(); ++k, ++ii) {
      script.updates.push_back(Update::Insert(ins[ii].u, ins[ii].v));
    }
    if (di < del.size()) {
      script.updates.push_back(Update::Delete(del[di].u, del[di].v));
      ++di;
    }
  }

  Rng rng(seed + 3);
  for (size_t i = 0; i < probes; ++i) {
    script.probes.emplace_back(static_cast<Vertex>(rng.NextBounded(n)),
                               static_cast<Vertex>(rng.NextBounded(n)));
  }

  Graph replay = script.start;
  auto record = [&] {
    std::vector<SpcResult> answers;
    answers.reserve(script.probes.size());
    for (const auto& [s, t] : script.probes) {
      answers.push_back(BfsCountPair(replay, s, t));
    }
    script.truth.push_back(std::move(answers));
  };
  record();  // generation 1
  for (const Update& u : script.updates) {
    if (u.kind == Update::Kind::kInsert) {
      EXPECT_TRUE(replay.AddEdge(u.edge.u, u.edge.v));
    } else {
      EXPECT_TRUE(replay.RemoveEdge(u.edge.u, u.edge.v));
    }
    record();
  }
  return script;
}

/// Reader body shared by the tests: loops until `stop`, validating pins
/// against their claimed generation and facade answers against the set of
/// all generations. Uses EXPECT (thread-safe) and bails out on the first
/// failure to keep logs readable.
void ReaderLoop(const DynamicSpcIndex& dyn, const Script& script,
                const std::atomic<bool>& stop, std::atomic<size_t>* iterations,
                std::atomic<int>* failures) {
  // A large batch exercises the parallel snapshot driver mid-update.
  std::vector<VertexPair> batch;
  for (int rep = 0; rep < 4; ++rep) {
    batch.insert(batch.end(), script.probes.begin(), script.probes.end());
  }
  while (!stop.load(std::memory_order_acquire) &&
         failures->load(std::memory_order_relaxed) == 0) {
    // 1) Pinned snapshot: exact answers for the generation it claims.
    if (const auto pin = dyn.PinSnapshot()) {
      if (pin.generation < 1 || pin.generation > script.MaxGeneration()) {
        ADD_FAILURE() << "pinned generation " << pin.generation
                      << " was never published";
        failures->fetch_add(1);
        return;
      }
      const auto& want = script.TruthAt(pin.generation);
      for (size_t i = 0; i < script.probes.size(); ++i) {
        const auto [s, t] = script.probes[i];
        const SpcResult got = pin->Query(s, t);
        if (got != want[i]) {
          ADD_FAILURE() << "torn read: pin gen=" << pin.generation << " probe "
                        << i << " (" << s << "," << t << ") got {" << got.dist
                        << "," << got.count << "} want {" << want[i].dist << ","
                        << want[i].count << "}";
          failures->fetch_add(1);
          return;
        }
      }
    }
    // 2) Facade single queries: must match some published generation.
    for (size_t i = 0; i < script.probes.size(); ++i) {
      const auto [s, t] = script.probes[i];
      const SpcResult got = dyn.Query(s, t);
      if (!script.ConsistentWithSomeGeneration(i, got)) {
        ADD_FAILURE() << "query probe " << i << " (" << s << "," << t
                      << ") answer {" << got.dist << "," << got.count
                      << "} matches no generation";
        failures->fetch_add(1);
        return;
      }
    }
    // 3) Batched parallel driver over a snapshot.
    const std::vector<SpcResult> results = dyn.BatchQuery(batch, 2);
    for (size_t i = 0; i < results.size(); ++i) {
      const size_t probe = i % script.probes.size();
      if (!script.ConsistentWithSomeGeneration(probe, results[i])) {
        ADD_FAILURE() << "batch probe " << probe << " answer matches no "
                      << "generation";
        failures->fetch_add(1);
        return;
      }
    }
    iterations->fetch_add(1, std::memory_order_relaxed);
    std::this_thread::yield();
  }
}

void RunConcurrentScript(const Script& script, const DynamicSpcOptions& options,
                         unsigned readers, size_t rebuild_every = 0) {
  DynamicSpcIndex dyn(script.start, options);

  // Held across the whole run: retirement must never invalidate it.
  const auto held = dyn.PinSnapshot();

  std::atomic<bool> stop{false};
  std::atomic<size_t> iterations{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> pool;
  pool.reserve(readers);
  for (unsigned r = 0; r < readers; ++r) {
    pool.emplace_back([&] {
      ReaderLoop(dyn, script, stop, &iterations, &failures);
    });
  }

  // Writer: the scripted update burst, spaced so readers interleave,
  // optionally interleaving full rebuilds (which swap the entire index
  // and its ordering under the writer lock).
  size_t applied = 0;
  for (const Update& u : script.updates) {
    EXPECT_TRUE(dyn.Apply(u).applied);
    ++applied;
    if (rebuild_every != 0 && applied % rebuild_every == 0) dyn.Rebuild();
    std::this_thread::sleep_for(std::chrono::microseconds(300));
    if (failures.load() != 0) break;
  }
  // Grace period so readers observe the final generations too.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  stop.store(true, std::memory_order_release);
  for (std::thread& t : pool) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(iterations.load(), 0u) << "readers never completed a pass";

  // Quiesced end state: the fresh snapshot answers the final truth.
  const auto fin = dyn.WaitForFreshSnapshot();
  ASSERT_TRUE(static_cast<bool>(fin));
  ASSERT_EQ(fin.generation, dyn.Generation());
  ASSERT_EQ(fin.generation, script.MaxGeneration());
  const auto& want = script.TruthAt(fin.generation);
  for (size_t i = 0; i < script.probes.size(); ++i) {
    const auto [s, t] = script.probes[i];
    EXPECT_EQ(fin->Query(s, t), want[i]) << "final probe " << i;
  }

  // The pin held since generation 1 still answers its own truth even
  // though its snapshot has long been retired.
  if (held) {
    const auto& old_want = script.TruthAt(held.generation);
    for (size_t i = 0; i < script.probes.size(); ++i) {
      const auto [s, t] = script.probes[i];
      EXPECT_EQ(held->Query(s, t), old_want[i])
          << "retired snapshot changed under a held pin, probe " << i;
    }
  }
}

TEST(ConcurrentStressTest, BackgroundReadersSeeOnlyPublishedGenerations) {
  const Script script = MakeScript(80, 41, 24, 12, 20);
  DynamicSpcOptions options;
  options.snapshot.refresh = RefreshPolicy::kBackground;
  options.snapshot.rebuild_after_queries = 1;  // churn rebuilds hard
  RunConcurrentScript(script, options, 3);
}

TEST(ConcurrentStressTest, SyncInlineRebuildsStayConsistentUnderReaders) {
  const Script script = MakeScript(64, 57, 18, 9, 16);
  DynamicSpcOptions options;
  options.snapshot.refresh = RefreshPolicy::kSync;
  options.snapshot.rebuild_after_queries = 4;
  RunConcurrentScript(script, options, 2);
}

// Build-under-concurrent-query (DESIGN.md §12): the writer interleaves
// scripted updates with explicit Rebuild() calls that run the *parallel*
// builder at 4 threads — pool workers reading the graph and the
// under-construction index while reader threads concurrently pin
// snapshots, query the facade, and drive batched snapshot queries. A
// rebuild re-ranks every hub and swaps the whole index under the writer
// lock; readers must never observe a torn state, every pin must answer
// exactly for the generation it claims (rebuild generations repeat the
// previous graph's truth), and the pin held from generation 1 must
// survive all the churn.
TEST(ConcurrentStressTest, ParallelRebuildUnderConcurrentReaders) {
  Script script = MakeScript(72, 117, 20, 10, 16);
  constexpr size_t kRebuildEvery = 5;
  script.InterposeRebuilds(kRebuildEvery);
  DynamicSpcOptions options;
  options.snapshot.refresh = RefreshPolicy::kBackground;
  options.snapshot.rebuild_after_queries = 1;
  options.build.threads = 4;
  RunConcurrentScript(script, options, 3, kRebuildEvery);
}

// ServiceMetrics under concurrency: the per-thread counter shards must
// not lose increments — after a multi-threaded serving run, Metrics()
// totals must equal the sums of what every thread locally tallied.
TEST(ConcurrentStressTest, MetricsCountEveryServedReadUnderChurn) {
  const Script script = MakeScript(64, 97, 18, 9, 12);
  DynamicSpcOptions options;
  options.snapshot.refresh = RefreshPolicy::kBackground;
  options.snapshot.rebuild_after_queries = 1;
  SpcService service(script.start, options);

  constexpr unsigned kReaders = 4;
  constexpr int kItersPerReader = 60;
  struct LocalTally {
    uint64_t queries_by_mode[3] = {};
    uint64_t served_calls = 0;
    uint64_t batch_calls = 0;
    uint64_t batch_queries = 0;
    uint64_t unavailable = 0;
  };
  std::vector<LocalTally> tallies(kReaders);
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (unsigned r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(5000 + r);
      LocalTally& tally = tallies[r];
      const size_t n = script.start.NumVertices();
      for (int i = 0; i < kItersPerReader; ++i) {
        const auto s = static_cast<Vertex>(rng.NextBounded(n));
        const auto t = static_cast<Vertex>(rng.NextBounded(n));
        ReadOptions read;
        const size_t mode = rng.NextBounded(3);
        read.consistency = static_cast<Consistency>(mode);
        read.max_lag = 1 + rng.NextBounded(8);
        if (rng.NextBounded(4) == 0) {
          // One batch call of 6 queries.
          const std::vector<VertexPair> pairs(6, {s, t});
          const auto resp = service.QueryBatch(pairs, read);
          if (resp.ok()) {
            tally.queries_by_mode[mode] += pairs.size();
            tally.served_calls += 1;
            tally.batch_calls += 1;
            tally.batch_queries += pairs.size();
          } else {
            ASSERT_TRUE(resp.status().IsUnavailable());
            tally.unavailable += 1;
          }
        } else {
          const auto resp = service.Query(s, t, read);
          if (resp.ok()) {
            tally.queries_by_mode[mode] += 1;
            tally.served_calls += 1;
          } else {
            // Only kSnapshot can refuse here (pre-publish or trailing).
            ASSERT_TRUE(resp.status().IsUnavailable());
            tally.unavailable += 1;
          }
        }
      }
    });
  }

  // Writer: scripted updates through the service, tallying outcomes.
  uint64_t applied = 0;
  for (const Update& u : script.updates) {
    const auto resp = service.ApplyUpdates({&u, 1});
    ASSERT_TRUE(resp.ok());
    applied += resp->applied;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  for (std::thread& t : readers) t.join();

  LocalTally total;
  for (const LocalTally& tally : tallies) {
    for (int m = 0; m < 3; ++m) {
      total.queries_by_mode[m] += tally.queries_by_mode[m];
    }
    total.served_calls += tally.served_calls;
    total.batch_calls += tally.batch_calls;
    total.batch_queries += tally.batch_queries;
    total.unavailable += tally.unavailable;
  }

  const MetricsSnapshot m = service.Metrics();
  for (size_t mode = 0; mode < 3; ++mode) {
    EXPECT_EQ(m.queries_by_mode[mode], total.queries_by_mode[mode])
        << "mode " << mode;
  }
  EXPECT_EQ(m.served_from_snapshot + m.served_from_live, m.TotalQueries());
  EXPECT_EQ(m.StalenessSamples(), m.TotalQueries());
  EXPECT_EQ(m.read_batches, total.batch_calls);
  EXPECT_EQ(m.read_batch_queries, total.batch_queries);
  EXPECT_EQ(m.rejected_unavailable, total.unavailable);
  EXPECT_EQ(m.rejected_invalid_argument, 0u);
  EXPECT_EQ(m.deadline_misses_read, 0u);
  EXPECT_EQ(m.write_batches, script.updates.size());
  EXPECT_EQ(m.updates_applied, applied);
  EXPECT_EQ(m.updates_applied, script.updates.size());  // script all-applies
  EXPECT_EQ(m.updates_rejected, 0u);
}

TEST(ConcurrentStressTest, RetirementCounterAdvancesUnderChurn) {
  const Script script = MakeScript(48, 73, 12, 6, 8);
  DynamicSpcOptions options;
  options.snapshot.refresh = RefreshPolicy::kBackground;
  options.snapshot.rebuild_after_queries = 1;
  DynamicSpcIndex dyn(script.start, options);
  for (const Update& u : script.updates) {
    ASSERT_TRUE(dyn.Apply(u).applied);
    dyn.WaitForFreshSnapshot();  // force a publish per generation
  }
  ASSERT_NE(dyn.snapshots(), nullptr);
  // Every publish after the first retires a predecessor.
  EXPECT_EQ(dyn.snapshots()->RetiredSnapshots(),
            dyn.SnapshotRebuilds() - 1);
  EXPECT_GE(dyn.snapshots()->BackgroundRebuilds(), script.updates.size());
}

}  // namespace
}  // namespace dspc
