// Shard-boundary correctness and the delta-rebuild protocol of the
// vertex-range-sharded FlatSpcIndex (DESIGN.md §8): every shard count
// must answer exactly like the unsharded snapshot and the mutable index
// (including endpoints in different shards and hubs in a third), clean
// shards must be adopted across snapshot generations by shared_ptr,
// zero-dirty refreshes must short-circuit to pure adoption, and layout
// changes (vertex additions, reorderings) must force a full rebuild.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "dspc/common/label_codec.h"
#include "dspc/common/rng.h"
#include "dspc/common/thread_pool.h"
#include "dspc/core/dynamic_spc.h"
#include "dspc/core/flat_spc_index.h"
#include "dspc/core/hp_spc.h"
#include "dspc/core/snapshot_manager.h"
#include "dspc/graph/generators.h"
#include "dspc/graph/update_stream.h"

namespace dspc {
namespace {

TEST(ShardLayoutTest, PowerOfTwoWidthsCoverAllVertices) {
  EXPECT_EQ(FlatSpcIndex::ComputeShardLayout(0, 4).count, 0u);
  for (const size_t n : {1u, 5u, 48u, 100u, 4096u, 4100u}) {
    for (const size_t requested : {1u, 2u, 7u, 16u, 64u, 5000u}) {
      const FlatSpcIndex::ShardLayout layout =
          FlatSpcIndex::ComputeShardLayout(n, requested);
      ASSERT_GE(layout.count, 1u);
      ASSERT_LE(layout.count, n);
      // Contiguous, gap-free cover of [0, n).
      ASSERT_EQ(layout.BeginOf(0), 0u);
      for (size_t i = 0; i < layout.count; ++i) {
        ASSERT_LT(layout.BeginOf(i), layout.EndOf(i, n)) << "empty shard";
        if (i + 1 < layout.count) {
          ASSERT_EQ(layout.EndOf(i, n), layout.BeginOf(i + 1));
        }
      }
      ASSERT_EQ(layout.EndOf(layout.count - 1, n), n);
    }
  }
  // 16 shards over 4096 vertices is exactly 16 x 256.
  const auto even = FlatSpcIndex::ComputeShardLayout(4096, 16);
  EXPECT_EQ(even.count, 16u);
  EXPECT_EQ(even.shift, 8u);
}

TEST(ShardedFlatIndexTest, EveryShardCountMatchesMutableIndex) {
  const Graph g = GenerateBarabasiAlbert(96, 3, 17);
  const SpcIndex index = BuildSpcIndex(g);
  const FlatSpcIndex unsharded(index);
  for (const size_t shards : {1u, 2u, 3u, 7u, 16u, 64u, 96u, 1000u}) {
    const FlatSpcIndex flat(index, shards);
    ASSERT_EQ(flat.TotalEntries(), unsharded.TotalEntries());
    ASSERT_EQ(flat.NumVertices(), index.NumVertices());
    for (Vertex s = 0; s < g.NumVertices(); ++s) {
      for (Vertex t = 0; t < g.NumVertices(); ++t) {
        ASSERT_EQ(flat.Query(s, t), index.Query(s, t))
            << "shards=" << shards << " s=" << s << " t=" << t;
        ASSERT_EQ(flat.PreQuery(s, t), index.PreQuery(s, t))
            << "shards=" << shards << " s=" << s << " t=" << t;
      }
    }
  }
}

TEST(ShardedFlatIndexTest, CrossShardEndpointsWithHubInThirdShard) {
  // 12 vertices in 3 shards of 4. Vertex 5 is the highest-degree hub
  // (degree 4), so it takes rank 0; the 0--9 shortest path crosses from
  // shard 0 to shard 2 through the hub in shard 1.
  Graph g(12);
  g.AddEdge(0, 5);
  g.AddEdge(9, 5);
  g.AddEdge(1, 5);
  g.AddEdge(2, 5);
  const SpcIndex index = BuildSpcIndex(g);
  const FlatSpcIndex flat(index, 3);
  ASSERT_EQ(flat.NumShards(), 3u);
  ASSERT_EQ(flat.RankOf(5), 0u);
  ASSERT_NE(flat.ShardOf(0), flat.ShardOf(9));
  ASSERT_NE(flat.ShardOf(5), flat.ShardOf(0));
  ASSERT_NE(flat.ShardOf(5), flat.ShardOf(9));
  EXPECT_EQ(flat.Query(0, 9), (SpcResult{2, 1}));
  EXPECT_EQ(flat.Query(0, 2), (SpcResult{2, 1}));
  EXPECT_EQ(flat.Query(0, 11), (SpcResult{kInfDistance, 0}));
  // Two disjoint shortest paths via vertices in different shards.
  g.AddEdge(0, 8);
  g.AddEdge(8, 9);
  const SpcIndex index2 = BuildSpcIndex(g);
  const FlatSpcIndex flat2(index2, 3);
  EXPECT_EQ(flat2.Query(0, 9), (SpcResult{2, 2}));
}

TEST(ShardedFlatIndexTest, OverflowSideTableIsShardLocal) {
  // Overflow entries (dist at the marker, count beyond 29 bits) land in
  // per-shard side tables; cross-shard queries must chase each side's
  // own table, and the monolithic save image must rebase the slots.
  SpcIndex index(BuildOrdering(GenerateComplete(8)));
  const Rank h0 = 0;
  index.InsertLabel(index.VertexOf(1), LabelEntry{h0, 7, (1ULL << 40) + 3});
  index.InsertLabel(index.VertexOf(7),
                    LabelEntry{h0, static_cast<Distance>(kPackedDistMax), 5});
  const FlatSpcIndex flat(index, 4);
  ASSERT_EQ(flat.NumShards(), 4u);
  ASSERT_FALSE(flat.wide_mode());
  ASSERT_EQ(flat.OverflowEntries(), 2u);
  for (Vertex s = 0; s < 8; ++s) {
    for (Vertex t = 0; t < 8; ++t) {
      ASSERT_EQ(flat.Query(s, t), index.Query(s, t)) << s << "," << t;
    }
  }
  const std::string path = ::testing::TempDir() + "/sharded_overflow.dspc";
  ASSERT_TRUE(flat.Save(path).ok());
  FlatSpcIndex loaded;
  ASSERT_TRUE(FlatSpcIndex::Load(path, &loaded).ok());
  EXPECT_EQ(loaded.OverflowEntries(), 2u);
  for (Vertex s = 0; s < 8; ++s) {
    for (Vertex t = 0; t < 8; ++t) {
      ASSERT_EQ(loaded.Query(s, t), flat.Query(s, t)) << s << "," << t;
    }
  }
}

TEST(ShardedFlatIndexTest, ShardedSaveLoadRoundTrip) {
  const Graph g = GenerateBarabasiAlbert(64, 2, 23);
  const SpcIndex index = BuildSpcIndex(g);
  const FlatSpcIndex flat(index, 7);
  const std::string path = ::testing::TempDir() + "/sharded_roundtrip.dspc";
  ASSERT_TRUE(flat.Save(path).ok());
  FlatSpcIndex loaded;
  ASSERT_TRUE(FlatSpcIndex::Load(path, &loaded).ok());
  EXPECT_EQ(loaded.NumShards(), 1u);  // persistence is shard-agnostic
  EXPECT_EQ(loaded.TotalEntries(), flat.TotalEntries());
  for (Vertex s = 0; s < g.NumVertices(); ++s) {
    for (Vertex t = 0; t < g.NumVertices(); ++t) {
      ASSERT_EQ(loaded.Query(s, t), flat.Query(s, t)) << s << "," << t;
    }
  }
}

TEST(DeltaRebuildTest, CleanShardsAreAdoptedAcrossRefreshes) {
  DynamicSpcOptions options;
  options.snapshot.refresh = RefreshPolicy::kManual;
  options.snapshot.shards = 8;
  DynamicSpcIndex dyn(GenerateBarabasiAlbert(256, 2, 31), options);
  const auto pin1 = dyn.WaitForFreshSnapshot();
  ASSERT_TRUE(static_cast<bool>(pin1));
  const size_t shards = pin1->NumShards();
  ASSERT_GE(shards, 2u);
  // Every shard was packed from the full build at the same generation.
  for (size_t i = 0; i < shards; ++i) {
    EXPECT_EQ(pin1->ShardGeneration(i), pin1.generation);
  }

  // One local update: a leaf-to-leaf edge touches few label sets, so most
  // shards stay clean and must be adopted, not repacked.
  const Edge e = SampleNonEdges(dyn.graph(), 1, 5).at(0);
  ASSERT_TRUE(dyn.InsertEdge(e.u, e.v).applied);
  const auto pin2 = dyn.WaitForFreshSnapshot();
  ASSERT_TRUE(static_cast<bool>(pin2));
  ASSERT_GT(pin2.generation, pin1.generation);

  size_t adopted = 0;
  size_t repacked = 0;
  for (size_t i = 0; i < shards; ++i) {
    if (pin2->SharesShardWith(*pin1, i)) {
      ++adopted;
      EXPECT_EQ(pin2->ShardGeneration(i), pin1.generation);
    } else {
      ++repacked;
      EXPECT_EQ(pin2->ShardGeneration(i), pin2.generation);
    }
  }
  // The inserted edge's endpoints were certainly touched...
  EXPECT_FALSE(pin2->SharesShardWith(*pin1, pin2->ShardOf(e.u)));
  EXPECT_GE(repacked, 1u);
  // ...and a one-edge change must not dirty the whole 256-vertex index.
  EXPECT_GE(adopted, 1u);
  EXPECT_EQ(dyn.snapshots()->ShardsRepacked(), shards + repacked);
  EXPECT_EQ(dyn.snapshots()->ShardsAdopted(), adopted);

  // Both snapshots keep answering for their own generation, and the new
  // one reflects the insert.
  EXPECT_EQ(pin2->Query(e.u, e.v), (SpcResult{1, 1}));
  EXPECT_NE(pin1->Query(e.u, e.v), (SpcResult{1, 1}));
}

TEST(DeltaRebuildTest, ZeroDirtyRefreshShortCircuitsToAdoption) {
  // Driven directly through SnapshotManager with a scripted source: the
  // second refresh reports a newer generation with no dirty shard, which
  // must publish by adoption — same arenas, no repack, generation moves.
  const Graph g = GenerateBarabasiAlbert(64, 2, 41);
  const SpcIndex base = BuildSpcIndex(g);
  const size_t kShards = 4;
  uint64_t generation = 1;
  SnapshotManager mgr(
      [&](const FlatSpcIndex* prev) {
        FlatSpcIndex::IndexDelta delta;
        delta.generation = generation;
        delta.layout_stamp = 7;
        delta.num_vertices = base.NumVertices();
        delta.num_shards = kShards;
        if (prev == nullptr) {
          delta.full = true;
          delta.ordering = base.ordering();
          const auto layout = FlatSpcIndex::ComputeShardLayout(
              base.NumVertices(), kShards);
          for (size_t i = 0; i < layout.count; ++i) {
            delta.dirty.push_back(
                {i, base.CopyLabelRange(layout.BeginOf(i),
                                        layout.EndOf(i, base.NumVertices()))});
          }
        }
        return delta;
      },
      RefreshPolicy::kManual, 1);

  const auto pin1 = mgr.RefreshNow(generation);
  ASSERT_TRUE(static_cast<bool>(pin1));
  EXPECT_EQ(mgr.AdoptionPublishes(), 0u);

  generation = 2;
  const auto pin2 = mgr.RefreshNow(generation);
  ASSERT_TRUE(static_cast<bool>(pin2));
  EXPECT_EQ(pin2.generation, 2u);
  EXPECT_EQ(mgr.PublishedGeneration(), 2u);
  EXPECT_EQ(mgr.AdoptionPublishes(), 1u);
  EXPECT_EQ(mgr.ShardsAdopted(), pin1->NumShards());
  ASSERT_EQ(pin2->NumShards(), pin1->NumShards());
  for (size_t i = 0; i < pin1->NumShards(); ++i) {
    EXPECT_TRUE(pin2->SharesShardWith(*pin1, i)) << "shard " << i;
  }
  for (Vertex s = 0; s < g.NumVertices(); s += 3) {
    for (Vertex t = 0; t < g.NumVertices(); t += 5) {
      ASSERT_EQ(pin2->Query(s, t), base.Query(s, t));
    }
  }
}

TEST(DeltaRebuildTest, VertexAdditionForcesFullLayoutRebuild) {
  DynamicSpcOptions options;
  options.snapshot.refresh = RefreshPolicy::kManual;
  options.snapshot.shards = 4;
  DynamicSpcIndex dyn(GenerateBarabasiAlbert(63, 2, 47), options);
  const auto pin1 = dyn.WaitForFreshSnapshot();
  ASSERT_TRUE(static_cast<bool>(pin1));

  const Vertex v = dyn.AddVertex();
  ASSERT_TRUE(dyn.InsertEdge(v, 0).applied);
  const auto pin2 = dyn.WaitForFreshSnapshot();
  ASSERT_TRUE(static_cast<bool>(pin2));
  EXPECT_EQ(pin2->NumVertices(), pin1->NumVertices() + 1);
  EXPECT_NE(pin2->LayoutStamp(), pin1->LayoutStamp());
  EXPECT_EQ(pin2->Query(v, 0), (SpcResult{1, 1}));
  // Adoption across a layout change would serve truncated label runs;
  // the stamp mismatch must force every shard to repack.
  for (size_t i = 0; i < pin2->NumShards(); ++i) {
    EXPECT_FALSE(pin2->SharesShardWith(*pin1, i)) << "shard " << i;
    EXPECT_EQ(pin2->ShardGeneration(i), pin2.generation);
  }
}

TEST(DeltaRebuildTest, PublishedGenerationIsMonotone) {
  DynamicSpcOptions options;
  options.snapshot.refresh = RefreshPolicy::kManual;
  options.snapshot.shards = 8;
  DynamicSpcIndex dyn(GenerateBarabasiAlbert(96, 2, 53), options);
  uint64_t last = 0;
  for (int step = 0; step < 12; ++step) {
    const auto edges = SampleNonEdges(dyn.graph(), 1, 100 + step);
    ASSERT_TRUE(dyn.InsertEdge(edges[0].u, edges[0].v).applied);
    const auto pin = dyn.WaitForFreshSnapshot();
    ASSERT_TRUE(static_cast<bool>(pin));
    ASSERT_GT(pin.generation, last);
    last = pin.generation;
    ASSERT_EQ(dyn.snapshots()->PublishedGeneration(), last);
  }
}

TEST(ShardedServingTest, ParallelRepackMatchesSerial) {
  // The same delta packed over a 4-thread pool and serially must produce
  // identical answers (shard packing is deterministic).
  const Graph g = GenerateRmat(8, 700, 59);
  const SpcIndex index = BuildSpcIndex(g);
  ThreadPool pool(4);
  const FlatSpcIndex serial(index, 16);
  const FlatSpcIndex parallel(index, 16, &pool);
  ASSERT_EQ(serial.NumShards(), parallel.NumShards());
  ASSERT_EQ(serial.TotalEntries(), parallel.TotalEntries());
  for (Vertex s = 0; s < g.NumVertices(); s += 2) {
    for (Vertex t = 0; t < g.NumVertices(); t += 3) {
      ASSERT_EQ(serial.Query(s, t), parallel.Query(s, t)) << s << "," << t;
    }
  }
}

TEST(ShardedServingTest, FacadeServesExactlyUnderShardedBackground) {
  // End-to-end: background policy, sharded snapshots, a stream of
  // updates; after quiescing, the snapshot must agree with the mutable
  // index everywhere.
  DynamicSpcOptions options;
  options.snapshot.refresh = RefreshPolicy::kBackground;
  options.snapshot.rebuild_after_queries = 2;
  options.snapshot.shards = 7;
  options.snapshot.rebuild_threads = 2;
  DynamicSpcIndex dyn(GenerateBarabasiAlbert(80, 2, 61), options);
  Rng rng(61);
  for (int step = 0; step < 25; ++step) {
    if (step % 5 == 4) {
      const auto edges = dyn.graph().Edges();
      const Edge e = edges[rng.NextBounded(edges.size())];
      dyn.RemoveEdge(e.u, e.v);
    } else {
      const auto candidates = SampleNonEdges(dyn.graph(), 1, 200 + step);
      if (!candidates.empty()) {
        dyn.InsertEdge(candidates[0].u, candidates[0].v);
      }
    }
    for (int q = 0; q < 3; ++q) {
      dyn.Query(static_cast<Vertex>(rng.NextBounded(80)),
                static_cast<Vertex>(rng.NextBounded(80)));
    }
  }
  const auto pin = dyn.WaitForFreshSnapshot();
  ASSERT_TRUE(static_cast<bool>(pin));
  ASSERT_EQ(pin.generation, dyn.Generation());
  for (Vertex s = 0; s < 80; ++s) {
    for (Vertex t = 0; t < 80; ++t) {
      ASSERT_EQ(pin->Query(s, t), dyn.index().Query(s, t))
          << "s=" << s << " t=" << t;
    }
  }
  // No adoption assertion here: on a graph this small a burst of updates
  // between two background rebuilds can legitimately dirty every shard.
  // Adoption is pinned down deterministically in DeltaRebuildTest.
}

}  // namespace
}  // namespace dspc
