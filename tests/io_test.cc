// Unit tests for SNAP-format edge-list I/O and binary graph snapshots,
// plus the loader-hardening regressions: byte-truncated and bit-flipped
// v1/v2 files must come back as typed Status errors, never UB or aborts.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "dspc/common/binary_io.h"
#include "dspc/common/rng.h"
#include "dspc/core/flat_spc_index.h"
#include "dspc/core/hp_spc.h"
#include "dspc/core/spc_index.h"
#include "dspc/graph/generators.h"
#include "dspc/graph/io.h"

namespace dspc {
namespace {

TEST(EdgeListTest, ParsesSnapFormat) {
  const std::string text =
      "# Directed graph (each unordered pair of nodes is saved once)\n"
      "# FromNodeId\tToNodeId\n"
      "0\t1\n"
      "1\t2\n"
      "% konect-style comment\n"
      "2\t0\n"
      "\n";
  Graph g;
  ASSERT_TRUE(ParseEdgeList(text, &g).ok());
  EXPECT_EQ(g.NumVertices(), 3u);
  EXPECT_EQ(g.NumEdges(), 3u);
}

TEST(EdgeListTest, CompactsSparseIds) {
  const std::string text = "1000 2000\n2000 50\n";
  Graph g;
  ASSERT_TRUE(ParseEdgeList(text, &g).ok());
  // Ids compacted by first appearance: 1000->0, 2000->1, 50->2.
  EXPECT_EQ(g.NumVertices(), 3u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 2));
}

TEST(EdgeListTest, KeepIdsOption) {
  const std::string text = "0 5\n";
  Graph g;
  EdgeListOptions options;
  options.keep_ids = true;
  ASSERT_TRUE(ParseEdgeList(text, &g, options).ok());
  EXPECT_EQ(g.NumVertices(), 6u);
  EXPECT_TRUE(g.HasEdge(0, 5));
}

TEST(EdgeListTest, DirectionsCollapseToUndirected) {
  const std::string text = "0 1\n1 0\n";
  Graph g;
  ASSERT_TRUE(ParseEdgeList(text, &g).ok());
  EXPECT_EQ(g.NumEdges(), 1u);
}

TEST(EdgeListTest, MalformedLineRejected) {
  Graph g;
  EXPECT_TRUE(ParseEdgeList("0 1\nbogus line\n", &g).IsCorruption());
  EXPECT_TRUE(ParseEdgeList("42\n", &g).IsCorruption());
}

TEST(EdgeListTest, SaveLoadRoundTrip) {
  const Graph g = GenerateErdosRenyi(30, 60, 11);
  const std::string path = ::testing::TempDir() + "/dspc_edges.txt";
  ASSERT_TRUE(SaveEdgeList(g, path).ok());
  Graph loaded;
  EdgeListOptions options;
  options.keep_ids = true;
  ASSERT_TRUE(LoadEdgeList(path, &loaded, options).ok());
  EXPECT_EQ(loaded.Edges(), g.Edges());
  std::remove(path.c_str());
}

TEST(EdgeListTest, MissingFileIsIOError) {
  Graph g;
  EXPECT_TRUE(LoadEdgeList("/no/such/file.txt", &g).IsIOError());
}

TEST(BinaryGraphTest, RoundTrip) {
  const Graph g = GenerateBarabasiAlbert(50, 2, 12);
  const std::string path = ::testing::TempDir() + "/dspc_graph.bin";
  ASSERT_TRUE(SaveGraphBinary(g, path).ok());
  Graph loaded;
  ASSERT_TRUE(LoadGraphBinary(path, &loaded).ok());
  EXPECT_EQ(loaded.NumVertices(), g.NumVertices());
  EXPECT_EQ(loaded.Edges(), g.Edges());
  std::remove(path.c_str());
}

TEST(BinaryGraphTest, RejectsWrongMagic) {
  const std::string path = ::testing::TempDir() + "/dspc_notgraph.bin";
  BinaryWriter w;
  w.PutU32(0x12345678);
  ASSERT_TRUE(w.WriteToFile(path).ok());
  Graph g;
  EXPECT_TRUE(LoadGraphBinary(path, &g).IsCorruption());
  std::remove(path.c_str());
}

// --- loader hardening (DESIGN.md §11 satellite) ------------------------------

std::vector<uint8_t> ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good());
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

void WriteWholeFile(const std::string& path,
                    const std::vector<uint8_t>& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  ASSERT_TRUE(out.good());
}

// A load outcome is acceptable iff it is success or a *typed* error —
// what the hardening is for: no aborts (e.g. a bad-alloc from a
// bit-flipped count), no garbage graphs passing a checksum.
void ExpectTypedStatus(const Status& st, const std::string& what) {
  EXPECT_TRUE(st.ok() || st.IsCorruption() || st.IsDataLoss() ||
              st.IsIOError() || st.IsInvalidArgument())
      << what << ": " << st.ToString();
}

TEST(BinaryGraphTest, TruncationsAndBitFlipsAreTypedErrors) {
  const Graph g = GenerateBarabasiAlbert(40, 2, 19);
  const std::string path = ::testing::TempDir() + "/dspc_graph_fuzz.bin";
  ASSERT_TRUE(SaveGraphBinary(g, path).ok());
  const std::vector<uint8_t> clean = ReadWholeFile(path);

  // Every truncation point through the header and a sample beyond.
  for (size_t len = 0; len < clean.size();
       len += (len < 32 ? 1 : clean.size() / 13 + 1)) {
    WriteWholeFile(path, {clean.begin(), clean.begin() + len});
    Graph loaded;
    const Status st = LoadGraphBinary(path, &loaded);
    EXPECT_FALSE(st.ok()) << "truncated to " << len;
    ExpectTypedStatus(st, "truncated to " + std::to_string(len));
  }

  // Bit flips — including the count fields whose unchecked reserve()
  // used to abort the process.
  Rng rng(0xF11);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint8_t> flipped = clean;
    const size_t pos = rng.NextBounded(flipped.size());
    flipped[pos] ^= static_cast<uint8_t>(1u << rng.NextBounded(8));
    WriteWholeFile(path, flipped);
    Graph loaded;
    ExpectTypedStatus(LoadGraphBinary(path, &loaded),
                      "bit flip at " + std::to_string(pos));
  }
  std::remove(path.c_str());
}

TEST(IndexFileTest, V1TruncationsAndBitFlipsAreTypedErrors) {
  const Graph g = GenerateBarabasiAlbert(30, 2, 23);
  const SpcIndex index = BuildSpcIndex(g);
  const std::string path = ::testing::TempDir() + "/dspc_v1_fuzz.index";
  ASSERT_TRUE(index.Save(path).ok());
  const std::vector<uint8_t> clean = ReadWholeFile(path);

  Rng rng(0xF12);
  for (int trial = 0; trial < 120; ++trial) {
    std::vector<uint8_t> bad = clean;
    if (trial % 2 == 0) {
      bad.resize(rng.NextBounded(bad.size()));
    } else {
      bad[rng.NextBounded(bad.size())] ^=
          static_cast<uint8_t>(1u << rng.NextBounded(8));
    }
    WriteWholeFile(path, bad);
    SpcIndex loaded;
    const Status st = SpcIndex::Load(path, &loaded);
    if (bad != clean) {
      EXPECT_FALSE(st.ok()) << "trial " << trial;
    }
    ExpectTypedStatus(st, "v1 trial " + std::to_string(trial));
  }
  std::remove(path.c_str());
}

TEST(IndexFileTest, V2TruncationsAndBitFlipsAreTypedErrors) {
  const Graph g = GenerateBarabasiAlbert(30, 2, 29);
  const FlatSpcIndex flat(BuildSpcIndex(g));
  const std::string path = ::testing::TempDir() + "/dspc_v2_fuzz.index";
  ASSERT_TRUE(flat.Save(path).ok());
  const std::vector<uint8_t> clean = ReadWholeFile(path);

  Rng rng(0xF13);
  for (int trial = 0; trial < 120; ++trial) {
    std::vector<uint8_t> bad = clean;
    if (trial % 2 == 0) {
      bad.resize(rng.NextBounded(bad.size()));
    } else {
      bad[rng.NextBounded(bad.size())] ^=
          static_cast<uint8_t>(1u << rng.NextBounded(8));
    }
    WriteWholeFile(path, bad);
    FlatSpcIndex loaded;
    const Status st = FlatSpcIndex::Load(path, &loaded);
    if (bad != clean) {
      EXPECT_FALSE(st.ok()) << "trial " << trial;
    }
    ExpectTypedStatus(st, "v2 trial " + std::to_string(trial));
  }
  std::remove(path.c_str());
}

TEST(WeightedEdgeListTest, ParseAndRoundTrip) {
  const std::string text = "# weighted\n0 1 5\n1 2 3\n";
  WeightedGraph g;
  ASSERT_TRUE(ParseWeightedEdgeList(text, &g).ok());
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_EQ(g.EdgeWeight(0, 1), 5u);

  const std::string path = ::testing::TempDir() + "/dspc_wedges.txt";
  ASSERT_TRUE(SaveWeightedEdgeList(g, path).ok());
  WeightedGraph loaded;
  ASSERT_TRUE(LoadWeightedEdgeList(path, &loaded).ok());
  EXPECT_EQ(loaded.Edges(), g.Edges());
  std::remove(path.c_str());
}

TEST(WeightedEdgeListTest, MissingWeightRejected) {
  WeightedGraph g;
  EXPECT_TRUE(ParseWeightedEdgeList("0 1\n", &g).IsCorruption());
}

}  // namespace
}  // namespace dspc
