// Unit tests for SNAP-format edge-list I/O and binary graph snapshots.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "dspc/graph/generators.h"
#include "dspc/common/binary_io.h"
#include "dspc/graph/io.h"

namespace dspc {
namespace {

TEST(EdgeListTest, ParsesSnapFormat) {
  const std::string text =
      "# Directed graph (each unordered pair of nodes is saved once)\n"
      "# FromNodeId\tToNodeId\n"
      "0\t1\n"
      "1\t2\n"
      "% konect-style comment\n"
      "2\t0\n"
      "\n";
  Graph g;
  ASSERT_TRUE(ParseEdgeList(text, &g).ok());
  EXPECT_EQ(g.NumVertices(), 3u);
  EXPECT_EQ(g.NumEdges(), 3u);
}

TEST(EdgeListTest, CompactsSparseIds) {
  const std::string text = "1000 2000\n2000 50\n";
  Graph g;
  ASSERT_TRUE(ParseEdgeList(text, &g).ok());
  // Ids compacted by first appearance: 1000->0, 2000->1, 50->2.
  EXPECT_EQ(g.NumVertices(), 3u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 2));
}

TEST(EdgeListTest, KeepIdsOption) {
  const std::string text = "0 5\n";
  Graph g;
  EdgeListOptions options;
  options.keep_ids = true;
  ASSERT_TRUE(ParseEdgeList(text, &g, options).ok());
  EXPECT_EQ(g.NumVertices(), 6u);
  EXPECT_TRUE(g.HasEdge(0, 5));
}

TEST(EdgeListTest, DirectionsCollapseToUndirected) {
  const std::string text = "0 1\n1 0\n";
  Graph g;
  ASSERT_TRUE(ParseEdgeList(text, &g).ok());
  EXPECT_EQ(g.NumEdges(), 1u);
}

TEST(EdgeListTest, MalformedLineRejected) {
  Graph g;
  EXPECT_TRUE(ParseEdgeList("0 1\nbogus line\n", &g).IsCorruption());
  EXPECT_TRUE(ParseEdgeList("42\n", &g).IsCorruption());
}

TEST(EdgeListTest, SaveLoadRoundTrip) {
  const Graph g = GenerateErdosRenyi(30, 60, 11);
  const std::string path = ::testing::TempDir() + "/dspc_edges.txt";
  ASSERT_TRUE(SaveEdgeList(g, path).ok());
  Graph loaded;
  EdgeListOptions options;
  options.keep_ids = true;
  ASSERT_TRUE(LoadEdgeList(path, &loaded, options).ok());
  EXPECT_EQ(loaded.Edges(), g.Edges());
  std::remove(path.c_str());
}

TEST(EdgeListTest, MissingFileIsIOError) {
  Graph g;
  EXPECT_TRUE(LoadEdgeList("/no/such/file.txt", &g).IsIOError());
}

TEST(BinaryGraphTest, RoundTrip) {
  const Graph g = GenerateBarabasiAlbert(50, 2, 12);
  const std::string path = ::testing::TempDir() + "/dspc_graph.bin";
  ASSERT_TRUE(SaveGraphBinary(g, path).ok());
  Graph loaded;
  ASSERT_TRUE(LoadGraphBinary(path, &loaded).ok());
  EXPECT_EQ(loaded.NumVertices(), g.NumVertices());
  EXPECT_EQ(loaded.Edges(), g.Edges());
  std::remove(path.c_str());
}

TEST(BinaryGraphTest, RejectsWrongMagic) {
  const std::string path = ::testing::TempDir() + "/dspc_notgraph.bin";
  BinaryWriter w;
  w.PutU32(0x12345678);
  ASSERT_TRUE(w.WriteToFile(path).ok());
  Graph g;
  EXPECT_TRUE(LoadGraphBinary(path, &g).IsCorruption());
  std::remove(path.c_str());
}

TEST(WeightedEdgeListTest, ParseAndRoundTrip) {
  const std::string text = "# weighted\n0 1 5\n1 2 3\n";
  WeightedGraph g;
  ASSERT_TRUE(ParseWeightedEdgeList(text, &g).ok());
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_EQ(g.EdgeWeight(0, 1), 5u);

  const std::string path = ::testing::TempDir() + "/dspc_wedges.txt";
  ASSERT_TRUE(SaveWeightedEdgeList(g, path).ok());
  WeightedGraph loaded;
  ASSERT_TRUE(LoadWeightedEdgeList(path, &loaded).ok());
  EXPECT_EQ(loaded.Edges(), g.Edges());
  std::remove(path.c_str());
}

TEST(WeightedEdgeListTest, MissingWeightRejected) {
  WeightedGraph g;
  EXPECT_TRUE(ParseWeightedEdgeList("0 1\n", &g).IsCorruption());
}

}  // namespace
}  // namespace dspc
