// Shared helpers for the DSPC test suite.

#ifndef DSPC_TESTS_TEST_UTIL_H_
#define DSPC_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "dspc/baseline/bfs_counting.h"
#include "dspc/common/rng.h"
#include "dspc/core/spc_index.h"
#include "dspc/graph/graph.h"

namespace dspc {
namespace testing {

/// Asserts that `index` answers every pairwise (distance, count) query
/// exactly as BFS ground truth on `graph`.
inline void ExpectIndexMatchesBfs(const Graph& graph, const SpcIndex& index,
                                  const std::string& context = "") {
  for (Vertex s = 0; s < graph.NumVertices(); ++s) {
    const SsspCounts truth = BfsCount(graph, s);
    for (Vertex t = 0; t < graph.NumVertices(); ++t) {
      const SpcResult got = index.Query(s, t);
      ASSERT_EQ(got.dist, truth.dist[t])
          << context << " dist mismatch s=" << s << " t=" << t;
      ASSERT_EQ(got.count, truth.count[t])
          << context << " count mismatch s=" << s << " t=" << t;
    }
  }
}

/// Random simple graph on n vertices with ~m edges (exact if possible).
inline Graph RandomGraph(size_t n, size_t m, uint64_t seed) {
  Rng rng(seed);
  Graph g(n);
  const uint64_t max_edges = n < 2 ? 0 : static_cast<uint64_t>(n) * (n - 1) / 2;
  m = std::min<uint64_t>(m, max_edges);
  size_t guard = 0;
  while (g.NumEdges() < m && guard < 50 * m + 1000) {
    ++guard;
    const auto u = static_cast<Vertex>(rng.NextBounded(n));
    const auto v = static_cast<Vertex>(rng.NextBounded(n));
    if (u != v) g.AddEdge(u, v);
  }
  return g;
}

}  // namespace testing
}  // namespace dspc

#endif  // DSPC_TESTS_TEST_UTIL_H_
