// End-to-end smoke test over the paper's running example (Figure 2 /
// Table 2): build, query, insert (v3, v9) as in Figure 3, delete (v1, v2)
// as in Figure 6, verifying against BFS ground truth throughout.

#include <gtest/gtest.h>

#include "dspc/baseline/bfs_counting.h"
#include "dspc/core/dynamic_spc.h"
#include "dspc/core/hp_spc.h"
#include "dspc/graph/graph.h"

namespace dspc {
namespace {

/// The 12-vertex example graph G of the paper's Figure 2.
Graph PaperGraph() {
  Graph g(12);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(0, 3);
  g.AddEdge(0, 8);
  g.AddEdge(0, 11);
  g.AddEdge(1, 2);
  g.AddEdge(1, 5);
  g.AddEdge(1, 6);
  g.AddEdge(2, 3);
  g.AddEdge(2, 5);
  g.AddEdge(3, 7);
  g.AddEdge(3, 8);
  g.AddEdge(4, 5);
  g.AddEdge(4, 7);
  g.AddEdge(4, 9);
  g.AddEdge(6, 10);
  g.AddEdge(9, 10);
  return g;
}

/// Identity ordering matching the paper's v0 <= v1 <= ... <= v11.
VertexOrdering PaperOrdering(size_t n) {
  OrderingOptions options;
  options.strategy = OrderingStrategy::kIdentity;
  return BuildOrderingFromDegrees(std::vector<size_t>(n, 0), options);
}

void ExpectMatchesBfs(const Graph& g, const SpcIndex& index) {
  for (Vertex s = 0; s < g.NumVertices(); ++s) {
    const SsspCounts truth = BfsCount(g, s);
    for (Vertex t = 0; t < g.NumVertices(); ++t) {
      const SpcResult got = index.Query(s, t);
      EXPECT_EQ(got.dist, truth.dist[t]) << "s=" << s << " t=" << t;
      EXPECT_EQ(got.count, truth.count[t]) << "s=" << s << " t=" << t;
    }
  }
}

TEST(Smoke, BuildMatchesBfsOnPaperGraph) {
  const Graph g = PaperGraph();
  const SpcIndex index = BuildSpcIndex(g, PaperOrdering(g.NumVertices()));
  ASSERT_TRUE(index.ValidateStructure().ok());
  ExpectMatchesBfs(g, index);
}

TEST(Smoke, PaperExample21Query) {
  const Graph g = PaperGraph();
  const SpcIndex index = BuildSpcIndex(g, PaperOrdering(g.NumVertices()));
  // Example 2.1: SPC(v4, v6) = (3, 2).
  const SpcResult r = index.Query(4, 6);
  EXPECT_EQ(r.dist, 3u);
  EXPECT_EQ(r.count, 2u);
}

TEST(Smoke, Table2LabelSets) {
  const Graph g = PaperGraph();
  const SpcIndex index = BuildSpcIndex(g, PaperOrdering(g.NumVertices()));
  // Spot-check Table 2 exactly (identity ordering => hub rank == vertex).
  // L(v5) = (v0,2,2)(v1,1,1)(v2,1,1)(v4,1,1)(v5,0,1).
  const LabelSet expected5 = {
      {0, 2, 2}, {1, 1, 1}, {2, 1, 1}, {4, 1, 1}, {5, 0, 1}};
  EXPECT_EQ(index.Labels(5), expected5);
  // L(v8) = (v0,1,1)(v2,2,1)(v3,1,1)(v8,0,1) — (v2,2,1) is non-canonical.
  const LabelSet expected8 = {{0, 1, 1}, {2, 2, 1}, {3, 1, 1}, {8, 0, 1}};
  EXPECT_EQ(index.Labels(8), expected8);
  // L(v9) has 7 entries including (v0,4,4).
  const LabelSet expected9 = {{0, 4, 4}, {1, 3, 2}, {2, 3, 1}, {3, 3, 1},
                              {4, 1, 1}, {6, 2, 1}, {9, 0, 1}};
  EXPECT_EQ(index.Labels(9), expected9);
}

TEST(Smoke, IncrementalInsertFigure3) {
  Graph g = PaperGraph();
  DynamicSpcOptions options;
  options.ordering.strategy = OrderingStrategy::kIdentity;
  DynamicSpcIndex dyn(g, options);
  const UpdateStats stats = dyn.InsertEdge(3, 9);
  EXPECT_TRUE(stats.applied);
  // AFF = {v0, v1, v2, v3, v4, v6, v9} (paper Example 3.5).
  EXPECT_EQ(stats.affected_hubs, 7u);
  ExpectMatchesBfs(dyn.graph(), dyn.index());
  // Figure 3(d): L(v9) gains (v0,2,1).
  const LabelEntry* e = dyn.index().FindLabel(9, 0);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->dist, 2u);
  EXPECT_EQ(e->count, 1u);
}

TEST(Smoke, DecrementalDeleteFigure6) {
  Graph g = PaperGraph();
  DynamicSpcOptions options;
  options.ordering.strategy = OrderingStrategy::kIdentity;
  DynamicSpcIndex dyn(g, options);
  const UpdateStats stats = dyn.RemoveEdge(1, 2);
  EXPECT_TRUE(stats.applied);
  // Example 3.13: SR_v1 = {v1, v6, v10}, SR_v2 = {v2}; |SR| = 4.
  EXPECT_EQ(stats.affected_hubs, 4u);
  EXPECT_EQ(stats.sr_a, 3u);  // larger side first (paper convention)
  EXPECT_EQ(stats.sr_b, 1u);
  EXPECT_EQ(stats.r_b + stats.r_a, 2u);  // R_v2 = {v3, v7}, R_v1 = {}
  ExpectMatchesBfs(dyn.graph(), dyn.index());
  ASSERT_TRUE(dyn.index().ValidateStructure().ok());
}

TEST(Smoke, MixedUpdatesStayExact) {
  Graph g = PaperGraph();
  DynamicSpcOptions options;
  options.ordering.strategy = OrderingStrategy::kIdentity;
  DynamicSpcIndex dyn(g, options);
  dyn.InsertEdge(3, 9);
  dyn.RemoveEdge(1, 2);
  dyn.RemoveEdge(0, 11);  // isolates v11
  dyn.InsertEdge(11, 4);
  dyn.RemoveEdge(4, 9);
  ExpectMatchesBfs(dyn.graph(), dyn.index());
  ASSERT_TRUE(dyn.index().ValidateStructure().ok());
}

}  // namespace
}  // namespace dspc
