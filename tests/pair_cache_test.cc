// PairCache (DESIGN.md §15): the generation-keyed hot-pair result cache.
// Unit coverage of the set-associative structure (hit/miss, unordered
// keys, supersede-vs-evict victim preference, stats), the coherence
// contract at the service layer (a stale generation is never served
// after an update; read-your-writes tokens flow through the cached
// path), and a concurrent hit/miss stress where every hit's payload is
// validated against a value derived from its key — suite names all
// match 'PairCache' so the TSan CI filter picks them up.

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "dspc/api/spc_service.h"
#include "dspc/baseline/bibfs_counting.h"
#include "dspc/common/rng.h"
#include "dspc/core/pair_cache.h"
#include "dspc/graph/generators.h"
#include "dspc/graph/update_stream.h"

namespace dspc {
namespace {

PairCacheOptions Tiny() {
  PairCacheOptions o;
  o.enabled = true;
  o.capacity = PairCache::kWays;  // one set, one shard: fully observable
  o.shards = 1;
  return o;
}

TEST(PairCache, MissInsertHit) {
  PairCache cache(Tiny());
  SpcResult out;
  EXPECT_FALSE(cache.Lookup(3, 9, 7, &out));

  const SpcResult stored{4, 12345};
  cache.Insert(3, 9, 7, stored);
  ASSERT_TRUE(cache.Lookup(3, 9, 7, &out));
  EXPECT_EQ(out, stored);

  const PairCache::Stats stats = cache.StatsSnapshot();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.evictions, 0u);
}

TEST(PairCache, UnorderedPairKey) {
  PairCache cache(Tiny());
  cache.Insert(21, 5, 1, SpcResult{2, 8});
  SpcResult out;
  ASSERT_TRUE(cache.Lookup(5, 21, 1, &out));
  EXPECT_EQ(out, (SpcResult{2, 8}));
  // A self-pair and the reversed self-pair are the same key too.
  cache.Insert(6, 6, 1, SpcResult{0, 1});
  ASSERT_TRUE(cache.Lookup(6, 6, 1, &out));
  EXPECT_EQ(out, (SpcResult{0, 1}));
}

TEST(PairCache, GenerationMismatchIsMiss) {
  PairCache cache(Tiny());
  cache.Insert(1, 2, 5, SpcResult{3, 30});
  SpcResult out;
  EXPECT_FALSE(cache.Lookup(1, 2, 4, &out));
  EXPECT_FALSE(cache.Lookup(1, 2, 6, &out));
  EXPECT_TRUE(cache.Lookup(1, 2, 5, &out));

  // A newer generation supersedes the same pair in place: the old
  // generation can never be served again, and nothing is evicted.
  cache.Insert(1, 2, 6, SpcResult{2, 99});
  EXPECT_FALSE(cache.Lookup(1, 2, 5, &out));
  ASSERT_TRUE(cache.Lookup(1, 2, 6, &out));
  EXPECT_EQ(out, (SpcResult{2, 99}));
  EXPECT_EQ(cache.StatsSnapshot().evictions, 0u);
  EXPECT_EQ(cache.StatsSnapshot().insertions, 2u);
}

TEST(PairCache, VictimPreferenceAndEvictionCount) {
  // One 4-way set. Four live same-generation entries fill it; a fifth
  // distinct pair must displace a live entry (a real eviction).
  PairCache cache(Tiny());
  ASSERT_EQ(cache.capacity(), PairCache::kWays);
  for (Vertex i = 0; i < 4; ++i) {
    cache.Insert(i, 100 + i, 1, SpcResult{1, i + 1u});
  }
  EXPECT_EQ(cache.StatsSnapshot().evictions, 0u);
  cache.Insert(50, 60, 1, SpcResult{9, 9});
  EXPECT_EQ(cache.StatsSnapshot().evictions, 1u);

  // Stale-generation entries are preferred victims: refilling the set at
  // generation 2 displaces the generation-1 leftovers silently.
  const uint64_t evictions_before = cache.StatsSnapshot().evictions;
  for (Vertex i = 0; i < 4; ++i) {
    cache.Insert(200 + i, 300 + i, 2, SpcResult{2, i + 1u});
  }
  EXPECT_EQ(cache.StatsSnapshot().evictions, evictions_before);
  SpcResult out;
  for (Vertex i = 0; i < 4; ++i) {
    ASSERT_TRUE(cache.Lookup(200 + i, 300 + i, 2, &out)) << i;
    EXPECT_EQ(out.count, i + 1u);
  }
}

TEST(PairCache, CapacityAndShardRounding) {
  PairCacheOptions o;
  o.enabled = true;
  o.capacity = 100;  // not a power of two
  o.shards = 3;      // neither is this
  PairCache cache(o);
  EXPECT_GE(cache.capacity(), 100u);
  EXPECT_EQ(cache.shards() & (cache.shards() - 1), 0u) << cache.shards();
  EXPECT_EQ(cache.capacity() % PairCache::kWays, 0u);
}

// Payload derivable from (u, v, generation) alone, so concurrent hits
// can validate content without any shared state.
SpcResult DerivedResult(Vertex u, Vertex v, uint64_t generation) {
  const uint64_t key = (static_cast<uint64_t>(std::max(u, v)) << 32) |
                       std::min(u, v);
  return SpcResult{static_cast<Distance>((key ^ generation) & 0x3FF),
                   key * 0x9E3779B97F4A7C15ULL + generation};
}

TEST(PairCacheConcurrency, HitMissStress) {
  PairCacheOptions o;
  o.enabled = true;
  o.capacity = 1 << 10;
  o.shards = 4;
  PairCache cache(o);

  constexpr int kThreads = 4;
  constexpr int kIters = 4000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      Rng rng(1000 + t);
      for (int i = 0; i < kIters; ++i) {
        // Overlapping pair universe across threads, three generations in
        // flight — plenty of cross-thread hits, misses, and supersedes.
        const Vertex u = static_cast<Vertex>(rng.NextBounded(64));
        const Vertex v = static_cast<Vertex>(rng.NextBounded(64));
        const uint64_t generation = 1 + rng.NextBounded(3);
        SpcResult out;
        if (cache.Lookup(u, v, generation, &out)) {
          // A hit must carry exactly what some thread inserted for this
          // (pair, generation) — never a torn or mismatched payload.
          ASSERT_EQ(out, DerivedResult(u, v, generation));
        } else {
          cache.Insert(u, v, generation, DerivedResult(u, v, generation));
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const PairCache::Stats stats = cache.StatsSnapshot();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_EQ(stats.insertions, stats.misses);
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.misses, 0u);
}

// --- service integration ----------------------------------------------------

DynamicSpcOptions CachedServiceOptions(size_t capacity = 512) {
  DynamicSpcOptions options;
  options.snapshot.refresh = RefreshPolicy::kBackground;
  options.snapshot.rebuild_after_queries = 1;
  options.pair_cache.enabled = true;
  options.pair_cache.capacity = capacity;
  return options;
}

TEST(PairCacheService, SnapshotReadsPopulateAndHit) {
  SpcService service(GenerateBarabasiAlbert(40, 2, 31),
                     CachedServiceOptions());
  ASSERT_TRUE(service.WaitForSnapshot({service.Generation()}).ok());

  ReadOptions snap;
  snap.consistency = Consistency::kSnapshot;
  const auto first = service.Query(3, 17, snap);
  ASSERT_TRUE(first.ok());
  const auto second = service.Query(3, 17, snap);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->result, first->result);
  EXPECT_EQ(second->generation, first->generation);

  // The cached answer equals the uncached live one.
  const auto fresh = service.Query(3, 17);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->result, first->result);

  const MetricsSnapshot metrics = service.Metrics();
  EXPECT_GE(metrics.pair_cache_misses, 1u);
  EXPECT_GE(metrics.pair_cache_hits, 1u);
  EXPECT_GE(metrics.pair_cache_insertions, 1u);
  EXPECT_NE(metrics.ToString().find("pair_cache:"), std::string::npos);
  EXPECT_NE(metrics.PrometheusText().find("dspc_pair_cache_lookups_total"),
            std::string::npos);
}

TEST(PairCacheService, LiveServedReadsBypassCache) {
  // A kFresh read served from a CURRENT snapshot flows through the pin
  // path and may use the cache (same generation, still exact). But once
  // the snapshot trails, kFresh escalates to the live index — and
  // live-served reads must never touch the cache.
  DynamicSpcOptions options = CachedServiceOptions();
  options.snapshot.rebuild_after_queries = 1000000;  // worker never nudged
  SpcService service(GenerateBarabasiAlbert(30, 2, 33), options);
  ASSERT_TRUE(service.WaitForSnapshot({service.Generation()}).ok());

  const Edge e = SampleNonEdges(service.engine().graph(), 1, 51).at(0);
  ASSERT_TRUE(service.InsertEdge(e.u, e.v).ok());  // snapshot now stale

  const MetricsSnapshot before = service.Metrics();
  for (int i = 0; i < 5; ++i) {
    const auto resp = service.Query(1, 2);  // kFresh default
    ASSERT_TRUE(resp.ok());
    ASSERT_EQ(resp->served_from, ServedFrom::kLiveIndex);
  }
  const MetricsSnapshot after = service.Metrics();
  EXPECT_EQ(after.pair_cache_hits + after.pair_cache_misses,
            before.pair_cache_hits + before.pair_cache_misses);
}

TEST(PairCacheService, BatchReadsBypassCache) {
  SpcService service(GenerateBarabasiAlbert(30, 2, 35),
                     CachedServiceOptions());
  ASSERT_TRUE(service.WaitForSnapshot({service.Generation()}).ok());
  ReadOptions snap;
  snap.consistency = Consistency::kSnapshot;
  const std::vector<VertexPair> pairs = {{0, 1}, {2, 3}, {4, 5}};
  ASSERT_TRUE(service.QueryBatch(pairs, snap).ok());
  const MetricsSnapshot metrics = service.Metrics();
  EXPECT_EQ(metrics.pair_cache_hits + metrics.pair_cache_misses, 0u);
}

TEST(PairCacheService, StaleGenerationNeverServedAfterUpdate) {
  // The coherence contract: warm the cache, mutate the pair's distance,
  // publish, and the cached stale answer must be unreachable — across
  // several rounds of updates touching the same hot pair.
  Graph graph = GenerateBarabasiAlbert(36, 2, 37);
  SpcService service(std::move(graph), CachedServiceOptions());
  ASSERT_TRUE(service.WaitForSnapshot({service.Generation()}).ok());

  ReadOptions snap;
  snap.consistency = Consistency::kSnapshot;
  for (int round = 0; round < 4; ++round) {
    // Pick a currently-missing edge; its endpoints are the hot pair.
    const Edge e =
        SampleNonEdges(service.engine().graph(), 1, 100 + round).at(0);
    // Warm the cache with the pre-update answer.
    const auto before = service.Query(e.u, e.v, snap);
    ASSERT_TRUE(before.ok());
    ASSERT_NE(before->result.dist, 1u);

    const auto write = service.InsertEdge(e.u, e.v);
    ASSERT_TRUE(write.ok());
    ASSERT_TRUE(service.WaitForSnapshot(write->token).ok());

    // Tokenless snapshot read: the snapshot has caught up, so the cached
    // pre-update entry (older generation) must not be served.
    const auto after = service.Query(e.u, e.v, snap);
    ASSERT_TRUE(after.ok());
    EXPECT_EQ(after->result, (SpcResult{1, 1})) << "round " << round;
    EXPECT_GE(after->generation, write->token.generation);

    // And the answer matches ground truth on the live graph.
    const SpcResult truth = BiBfsCountPair(service.engine().graph(), e.u, e.v);
    EXPECT_EQ(after->result, truth);
  }
}

TEST(PairCacheService, ReadYourWritesThroughCachedPath) {
  SpcService service(GenerateBarabasiAlbert(36, 2, 41),
                     CachedServiceOptions());
  ASSERT_TRUE(service.WaitForSnapshot({service.Generation()}).ok());

  const Edge e = SampleNonEdges(service.engine().graph(), 1, 43).at(0);
  ReadOptions snap;
  snap.consistency = Consistency::kSnapshot;
  // Warm the pre-write entry so the post-write read would hit it if
  // generation keying were broken.
  ASSERT_TRUE(service.Query(e.u, e.v, snap).ok());

  const auto write = service.InsertEdge(e.u, e.v);
  ASSERT_TRUE(write.ok());
  ASSERT_TRUE(service.WaitForSnapshot(write->token).ok());

  snap.min_generation = write->token.generation;
  // Twice: the first read fills the new generation's entry, the second
  // is served from it; both must reflect the write.
  for (int i = 0; i < 2; ++i) {
    const auto resp = service.Query(e.u, e.v, snap);
    ASSERT_TRUE(resp.ok()) << "read " << i;
    EXPECT_EQ(resp->result, (SpcResult{1, 1})) << "read " << i;
    EXPECT_GE(resp->generation, write->token.generation);
    EXPECT_EQ(resp->served_from, ServedFrom::kSnapshot);
  }
  const MetricsSnapshot metrics = service.Metrics();
  EXPECT_GE(metrics.pair_cache_hits, 1u);
}

TEST(PairCacheServiceConcurrency, ReadersAndWriterStayCoherent) {
  // Concurrent snapshot readers over a small hot set while a writer
  // mutates the graph: every response must match ground truth computed
  // for the exact generation it was served at. Hot pairs guarantee the
  // readers exercise both the hit and miss paths concurrently.
  SpcService service(GenerateBarabasiAlbert(32, 2, 47),
                     CachedServiceOptions(256));
  ASSERT_TRUE(service.WaitForSnapshot({service.Generation()}).ok());

  constexpr int kReaders = 3;
  constexpr int kReadsPerReader = 600;
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&service, t] {
      Rng rng(500 + t);
      ReadOptions snap;
      snap.consistency = Consistency::kSnapshot;
      for (int i = 0; i < kReadsPerReader; ++i) {
        const Vertex u = static_cast<Vertex>(rng.NextBounded(8));  // hot set
        const Vertex v = static_cast<Vertex>(rng.NextBounded(32));
        const auto resp = service.Query(u, v, snap);
        ASSERT_TRUE(resp.ok());
      }
    });
  }
  std::vector<Update> stream =
      MakeHybridStream(service.engine().graph(), 10, 5, 49);
  for (const Update& u : stream) {
    const auto write = service.ApplyUpdates({&u, 1});
    ASSERT_TRUE(write.ok());
  }
  for (std::thread& t : readers) t.join();

  // Settle, then verify the cached path converges on ground truth.
  const auto final_write = service.Metrics();
  EXPECT_GT(final_write.pair_cache_hits + final_write.pair_cache_misses, 0u);
  ASSERT_TRUE(service.WaitForSnapshot({service.Generation()}).ok());
  ReadOptions snap;
  snap.consistency = Consistency::kSnapshot;
  for (Vertex u = 0; u < 8; ++u) {
    for (Vertex v = 0; v < 8; ++v) {
      const auto resp = service.Query(u, v, snap);
      ASSERT_TRUE(resp.ok());
      EXPECT_EQ(resp->result, BiBfsCountPair(service.engine().graph(), u, v))
          << "u=" << u << " v=" << v;
    }
  }
}

}  // namespace
}  // namespace dspc
