// Unit tests for the dynamic graph substrates: Graph, Digraph,
// WeightedGraph.

#include <gtest/gtest.h>

#include "dspc/graph/digraph.h"
#include "dspc/graph/graph.h"
#include "dspc/graph/weighted_graph.h"

namespace dspc {
namespace {

// --- Graph -------------------------------------------------------------------

TEST(GraphTest, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.NumVertices(), 0u);
  EXPECT_EQ(g.NumEdges(), 0u);
  EXPECT_FALSE(g.IsValidVertex(0));
}

TEST(GraphTest, BulkConstructionDedupes) {
  const std::vector<Edge> edges = {{0, 1}, {1, 0}, {0, 1}, {2, 2}, {1, 2}};
  Graph g(3, edges);
  EXPECT_EQ(g.NumEdges(), 2u);  // (0,1) once, self-loop dropped
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(2, 2));
  EXPECT_TRUE(g.HasEdge(1, 2));
}

TEST(GraphTest, AddRemoveSymmetric) {
  Graph g(4);
  EXPECT_TRUE(g.AddEdge(1, 3));
  EXPECT_TRUE(g.HasEdge(3, 1));
  EXPECT_EQ(g.Degree(1), 1u);
  EXPECT_EQ(g.Degree(3), 1u);
  EXPECT_TRUE(g.RemoveEdge(3, 1));  // reversed order works
  EXPECT_FALSE(g.HasEdge(1, 3));
  EXPECT_EQ(g.NumEdges(), 0u);
}

TEST(GraphTest, RejectsInvalidEdges) {
  Graph g(3);
  EXPECT_FALSE(g.AddEdge(0, 0));   // self loop
  EXPECT_FALSE(g.AddEdge(0, 9));   // out of range
  EXPECT_TRUE(g.AddEdge(0, 1));
  EXPECT_FALSE(g.AddEdge(1, 0));   // duplicate reversed
  EXPECT_FALSE(g.RemoveEdge(0, 2));  // absent
}

TEST(GraphTest, NeighborsStaySorted) {
  Graph g(6);
  g.AddEdge(3, 5);
  g.AddEdge(3, 1);
  g.AddEdge(3, 4);
  g.AddEdge(3, 0);
  const std::vector<Vertex> expected = {0, 1, 4, 5};
  EXPECT_EQ(g.Neighbors(3), expected);
}

TEST(GraphTest, AddVertexExtends) {
  Graph g(2);
  const Vertex v = g.AddVertex();
  EXPECT_EQ(v, 2u);
  EXPECT_TRUE(g.AddEdge(v, 0));
  EXPECT_EQ(g.NumVertices(), 3u);
}

TEST(GraphTest, IsolateVertexReturnsRemovedEdges) {
  Graph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(0, 3);
  g.AddEdge(1, 2);
  const std::vector<Edge> removed = g.IsolateVertex(0);
  EXPECT_EQ(removed.size(), 3u);
  EXPECT_EQ(g.Degree(0), 0u);
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_TRUE(g.HasEdge(1, 2));
}

TEST(GraphTest, EdgesListedOnceAscending) {
  Graph g(4);
  g.AddEdge(2, 1);
  g.AddEdge(3, 0);
  const std::vector<Edge> edges = g.Edges();
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0], (Edge{0, 3}));
  EXPECT_EQ(edges[1], (Edge{1, 2}));
}

// --- Digraph -----------------------------------------------------------------

TEST(DigraphTest, ArcsAreDirectional) {
  Digraph g(3);
  EXPECT_TRUE(g.AddArc(0, 1));
  EXPECT_TRUE(g.HasArc(0, 1));
  EXPECT_FALSE(g.HasArc(1, 0));
  EXPECT_TRUE(g.AddArc(1, 0));  // reverse is a distinct arc
  EXPECT_EQ(g.NumArcs(), 2u);
}

TEST(DigraphTest, InOutAdjacencyConsistent) {
  Digraph g(4);
  g.AddArc(0, 2);
  g.AddArc(1, 2);
  g.AddArc(2, 3);
  EXPECT_EQ(g.InDegree(2), 2u);
  EXPECT_EQ(g.OutDegree(2), 1u);
  const std::vector<Vertex> in = {0, 1};
  EXPECT_EQ(g.InNeighbors(2), in);
  EXPECT_TRUE(g.RemoveArc(0, 2));
  EXPECT_EQ(g.InDegree(2), 1u);
  EXPECT_FALSE(g.RemoveArc(0, 2));
}

TEST(DigraphTest, BulkConstruction) {
  const std::vector<Edge> arcs = {{0, 1}, {0, 1}, {1, 1}, {2, 0}};
  Digraph g(3, arcs);
  EXPECT_EQ(g.NumArcs(), 2u);
  EXPECT_TRUE(g.HasArc(2, 0));
}

TEST(DigraphTest, AddVertexAndArcsListing) {
  Digraph g(2);
  g.AddArc(0, 1);
  const Vertex v = g.AddVertex();
  g.AddArc(v, 0);
  const std::vector<Edge> arcs = g.Arcs();
  ASSERT_EQ(arcs.size(), 2u);
  EXPECT_EQ(arcs[0], (Edge{0, 1}));
  EXPECT_EQ(arcs[1], (Edge{2, 0}));
}

// --- WeightedGraph -------------------------------------------------------------

TEST(WeightedGraphTest, WeightsStoredSymmetric) {
  WeightedGraph g(3);
  EXPECT_TRUE(g.AddEdge(0, 1, 5));
  EXPECT_EQ(g.EdgeWeight(0, 1), 5u);
  EXPECT_EQ(g.EdgeWeight(1, 0), 5u);
  EXPECT_EQ(g.EdgeWeight(0, 2), 0u);  // absent
}

TEST(WeightedGraphTest, RejectsZeroWeight) {
  WeightedGraph g(2);
  EXPECT_FALSE(g.AddEdge(0, 1, 0));
  EXPECT_TRUE(g.AddEdge(0, 1, 1));
  EXPECT_FALSE(g.SetWeight(0, 1, 0));
}

TEST(WeightedGraphTest, SetWeightBothDirections) {
  WeightedGraph g(2);
  g.AddEdge(0, 1, 3);
  EXPECT_TRUE(g.SetWeight(1, 0, 9));
  EXPECT_EQ(g.EdgeWeight(0, 1), 9u);
  EXPECT_FALSE(g.SetWeight(0, 1, 0));
  EXPECT_EQ(g.EdgeWeight(0, 1), 9u);
}

TEST(WeightedGraphTest, RemoveEdge) {
  WeightedGraph g(3);
  g.AddEdge(0, 1, 2);
  g.AddEdge(1, 2, 3);
  EXPECT_TRUE(g.RemoveEdge(1, 0));
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_EQ(g.EdgeWeight(0, 1), 0u);
  EXPECT_EQ(g.EdgeWeight(1, 2), 3u);
}

TEST(WeightedGraphTest, EdgesListing) {
  WeightedGraph g(3);
  g.AddEdge(2, 0, 7);
  g.AddEdge(1, 2, 4);
  const auto edges = g.Edges();
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0], (WeightedEdge{0, 2, 7}));
  EXPECT_EQ(edges[1], (WeightedEdge{1, 2, 4}));
}

TEST(WeightedGraphTest, BulkConstructionKeepsFirstWeight) {
  const std::vector<WeightedEdge> edges = {{0, 1, 3}, {1, 0, 9}, {1, 2, 0}};
  WeightedGraph g(3, edges);
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_EQ(g.EdgeWeight(0, 1), 3u);  // duplicate with weight 9 ignored
  EXPECT_FALSE(g.HasEdge(1, 2));      // zero-weight dropped
}

}  // namespace
}  // namespace dspc
