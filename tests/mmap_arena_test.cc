// persist/snapshot_arena + persist/snapshot_publisher: the mmap serving
// format and the shared-directory generation protocol (DESIGN.md §14).
//
// The corruption sweeps mirror tests/io_test.cc's discipline: every
// truncation point and every flipped bit must produce a typed Status —
// never a crash, never a partially adopted snapshot. The arena format
// CRCs every section, CRCs the header, and requires all padding to be
// zero, so there is NO byte in a valid file whose corruption goes
// undetected; the bit-flip sweep proves exactly that.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dspc/baseline/bibfs_counting.h"
#include "dspc/common/binary_io.h"
#include "dspc/core/flat_spc_index.h"
#include "dspc/core/hp_spc.h"
#include "dspc/graph/generators.h"
#include "dspc/persist/env.h"
#include "dspc/persist/snapshot_arena.h"
#include "dspc/persist/snapshot_publisher.h"

namespace dspc {
namespace {

std::string FreshDir(const std::string& name) {
  FileSystem* fs = FileSystem::Default();
  const std::string dir = ::testing::TempDir() + "/" + name;
  (void)fs->CreateDir(dir);
  auto names = fs->ListDir(dir);
  if (names.ok()) {
    for (const std::string& f : *names) (void)fs->RemoveFile(dir + "/" + f);
  }
  return dir;
}

std::vector<uint8_t> ReadAll(const std::string& path) {
  std::vector<uint8_t> data;
  EXPECT_TRUE(FileSystem::Default()->ReadFile(path, &data).ok());
  return data;
}

void WriteAll(const std::string& path, const std::vector<uint8_t>& data) {
  FileSystem* fs = FileSystem::Default();
  auto f = fs->NewWritableFile(path);
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE((*f)->Append(data.data(), data.size()).ok());
  ASSERT_TRUE((*f)->Close().ok());
}

/// Every-pair equivalence between the mapped snapshot and the owning
/// index it was written from (bit-identical by construction: same
/// packed words), cross-checked against BiBFS ground truth.
void ExpectMappedMatches(const Graph& graph, const FlatSpcIndex& owning,
                         const FlatSpcIndex& mapped) {
  ASSERT_EQ(mapped.NumVertices(), owning.NumVertices());
  BiBfsCounter truth(graph);
  for (Vertex s = 0; s < graph.NumVertices(); ++s) {
    for (Vertex t = 0; t < graph.NumVertices(); ++t) {
      const SpcResult want = owning.Query(s, t);
      const SpcResult got = mapped.Query(s, t);
      ASSERT_EQ(got, want) << "mapped/owning mismatch s=" << s << " t=" << t;
      ASSERT_EQ(got, truth.Query(s, t))
          << "mapped/BiBFS mismatch s=" << s << " t=" << t;
    }
  }
}

// --- round trips -------------------------------------------------------------

TEST(MmapArena, RoundTripMatchesOwningIndexAndBiBfs) {
  const std::string dir = FreshDir("mmap_arena_roundtrip");
  const Graph graph = GenerateErdosRenyi(60, 140, 7);
  const FlatSpcIndex owning(BuildSpcIndex(graph));

  const std::string path = dir + "/snap.arena";
  FileSystem* fs = FileSystem::Default();
  ASSERT_TRUE(WriteSnapshotArena(fs, path, owning, /*generation=*/42,
                                 /*wal_seq=*/9)
                  .ok());

  auto arena = MappedArena::Map(fs, path);
  ASSERT_TRUE(arena.ok()) << arena.status().ToString();
  EXPECT_EQ(arena->generation(), 42u);
  EXPECT_EQ(arena->wal_seq(), 9u);
  EXPECT_GT(arena->file_bytes(), 0u);
  ExpectMappedMatches(graph, owning, *arena->snapshot());
}

TEST(MmapArena, OverflowSideTableRoundTrips) {
  // A chain of diamonds doubles the path count at every diamond; 31 of
  // them push counts past the 29-bit packed budget, exercising the
  // overflow section of the arena (and its rebased slots).
  const std::string dir = FreshDir("mmap_arena_overflow");
  const size_t diamonds = 31;
  Graph graph(1 + 3 * diamonds);
  Vertex prev = 0;
  for (size_t i = 0; i < diamonds; ++i) {
    const Vertex a = static_cast<Vertex>(3 * i + 1);
    const Vertex b = static_cast<Vertex>(3 * i + 2);
    const Vertex next = static_cast<Vertex>(3 * i + 3);
    graph.AddEdge(prev, a);
    graph.AddEdge(prev, b);
    graph.AddEdge(a, next);
    graph.AddEdge(b, next);
    prev = next;
  }
  const FlatSpcIndex owning(BuildSpcIndex(graph));
  ASSERT_GT(owning.OverflowEntries(), 0u)
      << "test graph must overflow the packed count budget";

  const std::string path = dir + "/snap.arena";
  FileSystem* fs = FileSystem::Default();
  ASSERT_TRUE(WriteSnapshotArena(fs, path, owning, 1, 0).ok());
  auto arena = MappedArena::Map(fs, path);
  ASSERT_TRUE(arena.ok()) << arena.status().ToString();
  // The full-chain count is 2^31 — well past the packed field.
  const SpcResult far =
      arena->snapshot()->Query(0, static_cast<Vertex>(3 * diamonds));
  EXPECT_EQ(far.dist, 2 * diamonds);
  EXPECT_EQ(far.count, uint64_t{1} << diamonds);
  const SpcResult want =
      owning.Query(0, static_cast<Vertex>(3 * diamonds));
  EXPECT_EQ(far, want);
}

TEST(MmapArena, WideImageRoundTrips) {
  // Wide mode triggers naturally only past 2^25 vertices, so craft a
  // tiny wide v2 image by hand (P3 path graph, canonical hub labels),
  // load it (Load preserves wideness), and round-trip the arena.
  const std::string dir = FreshDir("mmap_arena_wide");
  BinaryWriter w;
  w.PutU32(kSpcIndexMagic);
  w.PutU32(kSpcIndexFormatV2);
  w.PutU64(3);                          // n
  const Rank ranks[3] = {0, 1, 2};
  w.PutU32Array(ranks, 3);
  w.PutU8(1);                           // wide
  const uint64_t offsets[4] = {0, 1, 3, 6};
  w.PutU64Array(offsets, 4);
  const uint32_t triples[6][2] = {{0, 0}, {0, 1}, {1, 0},
                                  {0, 2}, {1, 1}, {2, 0}};  // (hub, dist)
  for (const auto& hd : triples) {
    w.PutU32(hd[0]);
    w.PutU32(hd[1]);
    w.PutU64(1);  // count
  }
  const std::string image = dir + "/wide.spc";
  ASSERT_TRUE(w.WriteToFile(image).ok());

  FlatSpcIndex owning;
  ASSERT_TRUE(FlatSpcIndex::Load(image, &owning).ok());
  ASSERT_TRUE(owning.wide_mode());

  const std::string path = dir + "/snap.arena";
  FileSystem* fs = FileSystem::Default();
  ASSERT_TRUE(WriteSnapshotArena(fs, path, owning, 5, 0).ok());
  auto arena = MappedArena::Map(fs, path);
  ASSERT_TRUE(arena.ok()) << arena.status().ToString();
  ASSERT_TRUE(arena->snapshot()->wide_mode());
  Graph p3 = GeneratePath(3);
  ExpectMappedMatches(p3, owning, *arena->snapshot());
}

TEST(MmapArena, EmptyIndexRoundTrips) {
  const std::string dir = FreshDir("mmap_arena_empty");
  const Graph graph(0);
  const FlatSpcIndex owning(BuildSpcIndex(graph));
  const std::string path = dir + "/snap.arena";
  FileSystem* fs = FileSystem::Default();
  ASSERT_TRUE(WriteSnapshotArena(fs, path, owning, 1, 0).ok());
  auto arena = MappedArena::Map(fs, path);
  ASSERT_TRUE(arena.ok()) << arena.status().ToString();
  EXPECT_EQ(arena->snapshot()->NumVertices(), 0u);
}

TEST(MmapArena, MissingFileIsTypedNotFatal) {
  const std::string dir = FreshDir("mmap_arena_missing");
  auto arena = MappedArena::Map(FileSystem::Default(), dir + "/nope.arena");
  ASSERT_FALSE(arena.ok());
  EXPECT_TRUE(arena.status().IsIOError() || arena.status().IsNotFound())
      << arena.status().ToString();
}

// --- corruption sweeps -------------------------------------------------------

class MmapArenaCorruption : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = FreshDir("mmap_arena_corruption");
    graph_ = GenerateErdosRenyi(24, 50, 3);
    owning_ = std::make_unique<FlatSpcIndex>(BuildSpcIndex(graph_));
    path_ = dir_ + "/snap.arena";
    ASSERT_TRUE(
        WriteSnapshotArena(FileSystem::Default(), path_, *owning_, 7, 0)
            .ok());
    bytes_ = ReadAll(path_);
    ASSERT_GT(bytes_.size(), 4096u);
  }

  std::string dir_;
  Graph graph_;
  std::unique_ptr<FlatSpcIndex> owning_;
  std::string path_;
  std::vector<uint8_t> bytes_;
};

TEST_F(MmapArenaCorruption, TruncationAtEveryBoundaryIsTyped) {
  // Every prefix length across the header, plus a window around every
  // page boundary (the section starts) and the exact end. Each must map
  // to a typed error — kCorruption for bad structure, never a crash.
  std::vector<size_t> lengths;
  for (size_t len = 0; len <= 160; ++len) lengths.push_back(len);
  for (size_t page = 4096; page < bytes_.size(); page += 4096) {
    for (size_t d = 0; d <= 2; ++d) {
      if (page >= d) lengths.push_back(page - d);
      lengths.push_back(page + d);
    }
  }
  lengths.push_back(bytes_.size() - 1);
  const std::string trunc = dir_ + "/trunc.arena";
  for (const size_t len : lengths) {
    if (len >= bytes_.size()) continue;
    std::vector<uint8_t> cut(bytes_.begin(), bytes_.begin() + len);
    WriteAll(trunc, cut);
    auto arena = MappedArena::Map(FileSystem::Default(), trunc);
    ASSERT_FALSE(arena.ok()) << "truncation to " << len << " bytes mapped";
    ASSERT_TRUE(arena.status().IsCorruption() || arena.status().IsIOError())
        << "len=" << len << ": " << arena.status().ToString();
  }
}

TEST_F(MmapArenaCorruption, EveryFlippedBitIsDetected) {
  // One flipped bit per byte across the whole file: header fields,
  // section payloads, and — crucially — inter-section padding, which is
  // outside every CRC range but required to be zero. No byte may escape.
  const std::string flipped = dir_ + "/flip.arena";
  for (size_t i = 0; i < bytes_.size(); ++i) {
    std::vector<uint8_t> mut = bytes_;
    mut[i] ^= uint8_t{1} << (i % 8);
    WriteAll(flipped, mut);
    auto arena = MappedArena::Map(FileSystem::Default(), flipped);
    ASSERT_FALSE(arena.ok())
        << "bit flip at byte " << i << " mapped successfully";
    ASSERT_TRUE(arena.status().IsCorruption())
        << "byte " << i << ": " << arena.status().ToString();
  }
}

TEST_F(MmapArenaCorruption, AppendedTrailingBytesAreDetected) {
  std::vector<uint8_t> grown = bytes_;
  grown.insert(grown.end(), 8, uint8_t{0});
  const std::string path = dir_ + "/grown.arena";
  WriteAll(path, grown);
  auto arena = MappedArena::Map(FileSystem::Default(), path);
  ASSERT_FALSE(arena.ok());
  EXPECT_TRUE(arena.status().IsCorruption()) << arena.status().ToString();
}

// --- publisher protocol ------------------------------------------------------

FlatSpcIndex SnapshotOf(const Graph& graph) {
  return FlatSpcIndex(BuildSpcIndex(graph));
}

TEST(SnapshotPublisher, PublishWritesArenaAndPubState) {
  const std::string dir = FreshDir("pub_basic");
  FileSystem* fs = FileSystem::Default();
  auto pub = SnapshotPublisher::Open(dir);
  ASSERT_TRUE(pub.ok());
  EXPECT_EQ((*pub)->CurrentGeneration(), 0u);

  const Graph graph = GenerateErdosRenyi(20, 40, 1);
  ASSERT_TRUE((*pub)->Publish(SnapshotOf(graph), 3, 11).ok());
  EXPECT_EQ((*pub)->CurrentGeneration(), 3u);
  EXPECT_EQ((*pub)->CurrentWalSeq(), 11u);

  auto state = ReadPubState(fs, dir);
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(state->generation, 3u);
  EXPECT_EQ(state->wal_seq, 11u);
  EXPECT_EQ(state->file_name, SnapshotArenaFileName(3));
  EXPECT_TRUE(fs->FileExists(dir + "/" + state->file_name));

  auto arena = MappedArena::Map(fs, dir + "/" + state->file_name);
  ASSERT_TRUE(arena.ok());
  EXPECT_EQ(arena->generation(), 3u);
}

TEST(SnapshotPublisher, ReadPubStateBeforeFirstPublishIsNotFound) {
  const std::string dir = FreshDir("pub_nothing");
  EXPECT_TRUE(ReadPubState(FileSystem::Default(), dir).status().IsNotFound());
}

TEST(SnapshotPublisher, GenerationNeverMovesBackwards) {
  const std::string dir = FreshDir("pub_monotone");
  auto pub = SnapshotPublisher::Open(dir);
  ASSERT_TRUE(pub.ok());
  const Graph graph = GeneratePath(6);
  ASSERT_TRUE((*pub)->Publish(SnapshotOf(graph), 5, 0).ok());
  // Republish of the exact current generation (crash recovery) is legal.
  EXPECT_TRUE((*pub)->Publish(SnapshotOf(graph), 5, 0).ok());
  // Moving backwards is not — readers must never see the shared
  // generation regress.
  EXPECT_TRUE((*pub)->Publish(SnapshotOf(graph), 4, 0)
                  .IsInvalidArgument());
  // A new publisher over the same directory inherits the floor.
  auto pub2 = SnapshotPublisher::Open(dir);
  ASSERT_TRUE(pub2.ok());
  EXPECT_EQ((*pub2)->CurrentGeneration(), 5u);
  EXPECT_TRUE((*pub2)->Publish(SnapshotOf(graph), 2, 0)
                  .IsInvalidArgument());
}

TEST(SnapshotPublisher, GcKeepsRetainedCurrentAndPinnedGenerations) {
  const std::string dir = FreshDir("pub_gc");
  FileSystem* fs = FileSystem::Default();
  SnapshotPublisherOptions options;
  options.retain = 2;
  options.pid_alive = [](uint64_t) { return true; };  // every pin is live
  auto pub = SnapshotPublisher::Open(dir, options);
  ASSERT_TRUE(pub.ok());

  const Graph graph = GeneratePath(8);
  const FlatSpcIndex snap = SnapshotOf(graph);
  ASSERT_TRUE((*pub)->Publish(snap, 1, 0).ok());
  // A reader pins generation 1 before it falls out of retention.
  ASSERT_TRUE(WriteSnapshotPin(fs, dir, "reader1", 1, 1234).ok());
  for (uint64_t gen = 2; gen <= 6; ++gen) {
    ASSERT_TRUE((*pub)->Publish(snap, gen, 0).ok());
  }
  // Newest 2 (5, 6) survive by retention, 1 by its pin; 2..4 are gone.
  EXPECT_TRUE(fs->FileExists(dir + "/" + SnapshotArenaFileName(1)));
  EXPECT_FALSE(fs->FileExists(dir + "/" + SnapshotArenaFileName(2)));
  EXPECT_FALSE(fs->FileExists(dir + "/" + SnapshotArenaFileName(3)));
  EXPECT_FALSE(fs->FileExists(dir + "/" + SnapshotArenaFileName(4)));
  EXPECT_TRUE(fs->FileExists(dir + "/" + SnapshotArenaFileName(5)));
  EXPECT_TRUE(fs->FileExists(dir + "/" + SnapshotArenaFileName(6)));

  // The pinned generation still maps and serves.
  auto arena = MappedArena::Map(fs, dir + "/" + SnapshotArenaFileName(1));
  ASSERT_TRUE(arena.ok());
  EXPECT_EQ(arena->generation(), 1u);
}

TEST(SnapshotPublisher, DeadReadersPinsAreSweptLivePinsHold) {
  const std::string dir = FreshDir("pub_pin_sweep");
  FileSystem* fs = FileSystem::Default();
  SnapshotPublisherOptions options;
  options.retain = 1;
  options.pid_alive = [](uint64_t pid) { return pid == 100; };
  auto pub = SnapshotPublisher::Open(dir, options);
  ASSERT_TRUE(pub.ok());

  const FlatSpcIndex snap = SnapshotOf(GeneratePath(5));
  ASSERT_TRUE((*pub)->Publish(snap, 1, 0).ok());
  // Pins land before the generations they hold fall out of retention.
  ASSERT_TRUE(WriteSnapshotPin(fs, dir, "alive", 1, 100).ok());
  ASSERT_TRUE((*pub)->Publish(snap, 2, 0).ok());
  ASSERT_TRUE(WriteSnapshotPin(fs, dir, "dead", 2, 200).ok());
  ASSERT_TRUE((*pub)->Publish(snap, 3, 0).ok());

  // The live reader's pin held generation 1; the dead reader's pin was
  // swept (file removed), though generation 2 may survive via retention
  // of the current window — so check the pin files themselves.
  EXPECT_TRUE(fs->FileExists(dir + "/pin-alive"));
  EXPECT_FALSE(fs->FileExists(dir + "/pin-dead"));
  EXPECT_TRUE(fs->FileExists(dir + "/" + SnapshotArenaFileName(1)));
}

TEST(SnapshotPublisher, OpenSweepsStrayTmpFiles) {
  const std::string dir = FreshDir("pub_tmp_sweep");
  FileSystem* fs = FileSystem::Default();
  ASSERT_TRUE(fs->CreateDir(dir).ok());
  WriteAll(dir + "/snap-00000000000000000009.arena.tmp", {1, 2, 3});
  auto pub = SnapshotPublisher::Open(dir);
  ASSERT_TRUE(pub.ok());
  EXPECT_FALSE(
      fs->FileExists(dir + "/snap-00000000000000000009.arena.tmp"));
}

TEST(SnapshotPublisher, CorruptPubStateIsDataLoss) {
  const std::string dir = FreshDir("pub_corrupt_state");
  auto pub = SnapshotPublisher::Open(dir);
  ASSERT_TRUE(pub.ok());
  ASSERT_TRUE((*pub)->Publish(SnapshotOf(GeneratePath(4)), 1, 0).ok());
  std::vector<uint8_t> raw = ReadAll(dir + "/PUBSTATE");
  raw[raw.size() / 2] ^= 0xff;
  WriteAll(dir + "/PUBSTATE", raw);
  EXPECT_TRUE(
      ReadPubState(FileSystem::Default(), dir).status().IsDataLoss());
}

}  // namespace
}  // namespace dspc
