// Crash-matrix recovery suite (DESIGN.md §11): a deterministic durable
// workload is run once unarmed to count its mutating filesystem
// operations, then re-run once per operation index with a
// FaultInjectingEnv killing exactly that operation — mid-WAL-append,
// mid-checkpoint-write, between rename and dir-fsync, everywhere. After
// each simulated crash the directory is reopened with the real
// filesystem and the recovered service must land on EXACTLY the
// generation of the last durably-acknowledged write, answering random
// queries bit-for-bit like a BiBFS on the mirror graph at that
// generation.
//
// Registered under `ctest -L stress`. Set DSPC_RECOVERY_KILL_LOOP=<n>
// to re-run the matrix n extra times with fresh workload seeds.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "dspc/api/spc_service.h"
#include "dspc/baseline/bibfs_counting.h"
#include "dspc/common/rng.h"
#include "dspc/graph/generators.h"
#include "dspc/persist/env.h"
#include "dspc/persist/recovery.h"
#include "dspc/persist/wal.h"

namespace dspc {
namespace {

std::string FreshDir(const std::string& name) {
  FileSystem* fs = FileSystem::Default();
  const std::string dir = ::testing::TempDir() + "/" + name;
  (void)fs->CreateDir(dir);
  auto names = fs->ListDir(dir);
  if (names.ok()) {
    for (const std::string& f : *names) (void)fs->RemoveFile(dir + "/" + f);
  }
  return dir;
}

// Ground truth the WAL must reproduce: vertex count + edge set.
struct MirrorState {
  size_t n = 0;
  std::set<std::pair<Vertex, Vertex>> edges;

  Graph ToGraph() const {
    std::vector<Edge> list;
    list.reserve(edges.size());
    for (const auto& [u, v] : edges) list.push_back(Edge{u, v});
    return Graph(n, list);
  }
  void Insert(Vertex u, Vertex v) {
    if (u > v) std::swap(u, v);
    edges.insert({u, v});
  }
  void Remove(Vertex u, Vertex v) {
    if (u > v) std::swap(u, v);
    edges.erase({u, v});
  }
  void RemoveVertexEdges(Vertex v) {
    for (auto it = edges.begin(); it != edges.end();) {
      it = (it->first == v || it->second == v) ? edges.erase(it) : ++it;
    }
  }
};

MirrorState MirrorOf(const Graph& g) {
  MirrorState state;
  state.n = g.NumVertices();
  for (const Edge& e : g.Edges()) state.edges.insert({e.u, e.v});
  return state;
}

// The scripted workload: edge batches (with deliberate no-ops), vertex
// adds/removes, and two explicit checkpoints, all durably acknowledged
// (kEveryWrite). Deterministic for a fixed seed — no background threads.
// Records, after every acknowledged write, the mirror state at that
// token's generation. Returns false once a call fails (the simulated
// crash tripped); `acked` then holds exactly the durable prefix.
struct WorkloadLog {
  std::map<uint64_t, MirrorState> acked;  // generation -> state
  uint64_t last_acked_generation = 0;
};

bool RunWorkload(SpcService* service, uint64_t seed, WorkloadLog* log) {
  MirrorState mirror = MirrorOf(service->engine().graph());
  log->last_acked_generation = service->Generation();
  log->acked[log->last_acked_generation] = mirror;

  const WriteOptions durable{.durable = true};
  Rng rng(seed);
  for (int step = 0; step < 24; ++step) {
    if (step == 8 || step == 16) {
      if (!service->Checkpoint().ok()) return false;
      continue;
    }
    const uint64_t dice = rng.NextBounded(10);
    if (dice == 0) {
      const AddVertexResponse resp = service->AddVertex(durable);
      if (resp.vertex == kInvalidVertex || !resp.token.durable) return false;
      mirror.n += 1;
      log->last_acked_generation = resp.token.generation;
      log->acked[resp.token.generation] = mirror;
      continue;
    }
    if (dice == 1 && mirror.n > 2) {
      const auto v = static_cast<Vertex>(rng.NextBounded(mirror.n));
      const auto resp = service->RemoveVertex(v, durable);
      if (!resp.ok() || !resp->token.durable) return false;
      mirror.RemoveVertexEdges(v);
      log->last_acked_generation = resp->token.generation;
      log->acked[resp->token.generation] = mirror;
      continue;
    }
    // An edge batch of 1-3 updates; roughly half the candidates are
    // no-ops (inserting present edges / deleting absent ones), so replay
    // idempotency of kNoOp outcomes is always on trial.
    std::vector<Update> updates;
    const size_t count = 1 + rng.NextBounded(3);
    for (size_t i = 0; i < count; ++i) {
      auto u = static_cast<Vertex>(rng.NextBounded(mirror.n));
      auto v = static_cast<Vertex>(rng.NextBounded(mirror.n));
      if (u == v) v = (v + 1) % static_cast<Vertex>(mirror.n);
      updates.push_back(rng.NextBounded(2) ? Update::Insert(u, v)
                                           : Update::Delete(u, v));
    }
    const auto resp = service->ApplyUpdates(updates, durable);
    if (!resp.ok() || !resp->token.durable) return false;
    for (size_t i = 0; i < updates.size(); ++i) {
      if (resp->reports[i].outcome != WriteReport::Outcome::kApplied) {
        continue;
      }
      const Edge& e = updates[i].edge;
      if (updates[i].kind == Update::Kind::kInsert) {
        mirror.Insert(e.u, e.v);
      } else {
        mirror.Remove(e.u, e.v);
      }
    }
    log->last_acked_generation = resp->token.generation;
    log->acked[resp->token.generation] = mirror;
  }
  return true;
}

DurabilityOptions EveryWriteOptions(const std::string& dir,
                                    FileSystem* fs = nullptr) {
  DurabilityOptions durability;
  durability.dir = dir;
  durability.sync = WalSyncPolicy::kEveryWrite;
  // No background checkpointer: explicit Checkpoint() calls keep the
  // filesystem operation sequence deterministic for the crash matrix.
  durability.checkpoint_wal_bytes = 0;
  durability.checkpoint_wal_records = 0;
  durability.fs = fs;
  return durability;
}

// Recovers `dir` with the REAL filesystem and checks the recovered
// service against the workload's acknowledgment log: exact generation,
// then `queries` random answers bit-for-bit against BiBFS on the mirror
// graph at that generation.
void CheckRecovered(const std::string& dir, const Graph& bootstrap,
                    const WorkloadLog& log, size_t queries,
                    const std::string& context) {
  auto reopened = SpcService::Open(bootstrap, EveryWriteOptions(dir));
  ASSERT_TRUE(reopened.ok()) << context << ": " << reopened.status().ToString();
  SpcService& service = **reopened;
  const RecoveryReport& report = service.RecoveryInfo();

  // THE durability contract: recovery lands on exactly the generation of
  // the last durably-acknowledged write — nothing acknowledged is lost,
  // nothing unacknowledged is resurrected past it.
  ASSERT_EQ(report.recovered_generation, log.last_acked_generation)
      << context << ": " << report.ToString();
  ASSERT_EQ(service.Generation(), log.last_acked_generation) << context;

  const auto it = log.acked.find(report.recovered_generation);
  ASSERT_TRUE(it != log.acked.end()) << context;
  const Graph truth = it->second.ToGraph();
  ASSERT_EQ(service.NumVertices(), truth.NumVertices()) << context;

  Rng rng(0xD15C + report.recovered_generation);
  const auto n = static_cast<Vertex>(truth.NumVertices());
  for (size_t q = 0; q < queries; ++q) {
    const auto s = static_cast<Vertex>(rng.NextBounded(n));
    const auto t = static_cast<Vertex>(rng.NextBounded(n));
    const auto resp = service.Query(s, t);
    ASSERT_TRUE(resp.ok()) << context;
    const SpcResult expect = BiBfsCountPair(truth, s, t);
    ASSERT_EQ(resp->result, expect)
        << context << ": query (" << s << ", " << t << ") diverged at "
        << report.ToString();
  }
}

// --- clean close / reopen ----------------------------------------------------

TEST(RecoveryTest, CleanCloseReopensAtExactGenerationWithExactAnswers) {
  const std::string dir = FreshDir("recovery_clean");
  const Graph bootstrap = GenerateBarabasiAlbert(40, 2, 21);
  WorkloadLog log;
  {
    auto service = SpcService::Open(bootstrap, EveryWriteOptions(dir));
    ASSERT_TRUE(service.ok()) << service.status().ToString();
    EXPECT_TRUE((*service)->Durable());
    EXPECT_TRUE((*service)->RecoveryInfo().bootstrapped);
    ASSERT_TRUE(RunWorkload(service->get(), 0xABCD, &log));
  }
  CheckRecovered(dir, bootstrap, log, 1000, "clean close");

  // Reopen count two: recovery after recovery (the post-recovery
  // checkpoint must leave a self-contained directory).
  CheckRecovered(dir, bootstrap, log, 200, "second reopen");
}

TEST(RecoveryTest, MetricsExposeDurabilityAndRecoveryCounters) {
  const std::string dir = FreshDir("recovery_metrics");
  const Graph bootstrap = GenerateBarabasiAlbert(30, 2, 5);
  {
    auto service = SpcService::Open(bootstrap, EveryWriteOptions(dir));
    ASSERT_TRUE(service.ok());
    const auto resp =
        (*service)->InsertEdge(0, 25, WriteOptions{.durable = true});
    ASSERT_TRUE(resp.ok());
    EXPECT_TRUE(resp->token.durable);
    const MetricsSnapshot snap = (*service)->Metrics();
    EXPECT_GE(snap.wal_appends, 2u);  // intent + commit
    EXPECT_GT(snap.wal_appended_bytes, 0u);
    EXPECT_GE(snap.wal_syncs, 2u);    // kEveryWrite: one per append
    EXPECT_EQ(snap.wal_durable_waits, 1u);
    EXPECT_GE(snap.checkpoints, 1u);  // the Open-time publish
    const std::string text = snap.ToString();
    EXPECT_NE(text.find("durability:"), std::string::npos);
    EXPECT_NE(text.find("recovery:"), std::string::npos);
  }
  auto reopened = SpcService::Open(bootstrap, EveryWriteOptions(dir));
  ASSERT_TRUE(reopened.ok());
  // The edge landed AFTER the Open-time checkpoint, so reopening has to
  // replay it — and say so in the counters.
  EXPECT_EQ((*reopened)->Metrics().recovery_replayed, 1u);
  EXPECT_EQ((*reopened)->RecoveryInfo().replayed, 1u);
}

TEST(RecoveryTest, OpenRejectsLazyRebuildPolicies) {
  const std::string dir = FreshDir("recovery_reject_lazy");
  DynamicSpcOptions options;
  options.rebuild_after_updates = 100;
  const auto service = SpcService::Open(GenerateBarabasiAlbert(10, 2, 1),
                                        EveryWriteOptions(dir), options);
  EXPECT_TRUE(service.status().IsNotSupported());
}

// --- the crash matrix --------------------------------------------------------

struct MatrixTally {
  uint64_t total_ops = 0;
  uint64_t crashed_runs = 0;
  uint64_t open_failures = 0;  // crash hit during the initial Open
};

void RunCrashMatrix(const std::string& dirname, uint64_t seed,
                    bool short_writes, size_t queries_per_point,
                    MatrixTally* tally) {
  const Graph bootstrap = GenerateBarabasiAlbert(40, 2, 33);

  // Pass 1 (unarmed): count the workload's mutating operations.
  uint64_t total_ops = 0;
  {
    const std::string dir = FreshDir(dirname + "_count");
    FaultInjectingEnv env(FileSystem::Default());
    WorkloadLog log;
    auto service =
        SpcService::Open(bootstrap, EveryWriteOptions(dir, &env));
    ASSERT_TRUE(service.ok()) << service.status().ToString();
    ASSERT_TRUE(RunWorkload(service->get(), seed, &log));
    service->reset();  // clean close (counted, but the matrix stops short)
    total_ops = env.OperationCount();
    ASSERT_GT(total_ops, 50u);
  }
  tally->total_ops = total_ops;

  // Pass 2: one run per operation index. The run crashes at (or before)
  // index `k`; whatever reached the base filesystem is the disk at power
  // loss; recovery must land on the acknowledged prefix.
  for (uint64_t k = 0; k < total_ops; ++k) {
    SCOPED_TRACE("fault index " + std::to_string(k) +
                 (short_writes ? " (short write)" : "") + ", seed " +
                 std::to_string(seed));
    const std::string dir = FreshDir(dirname + "_armed");
    FaultInjectingEnv env(FileSystem::Default());
    env.Arm(k, short_writes);

    WorkloadLog log;
    bool completed = false;
    {
      auto service =
          SpcService::Open(bootstrap, EveryWriteOptions(dir, &env));
      if (service.ok()) {
        completed = RunWorkload(service->get(), seed, &log);
      } else {
        ++tally->open_failures;
        // Even a failed Open has an acknowledgment baseline: nothing.
        // Recovery must bootstrap (or recover the partial publish) at
        // the fresh service's generation.
        SpcService probe(bootstrap);
        log.last_acked_generation = probe.Generation();
        log.acked[log.last_acked_generation] =
            MirrorOf(probe.engine().graph());
      }
      // Service destructor runs against the dead env — the simulated
      // crash; nothing more reaches the disk.
    }
    if (!completed) ++tally->crashed_runs;
    EXPECT_TRUE(env.Tripped());
    CheckRecovered(dir, bootstrap, log, queries_per_point,
                   "fault index " + std::to_string(k));
  }
}

TEST(RecoveryCrashMatrixTest, EveryFaultPointRecoversToLastAckedGeneration) {
  MatrixTally tally;
  RunCrashMatrix("crash_matrix", 0x5EED, /*short_writes=*/false,
                 /*queries_per_point=*/40, &tally);
  // The matrix only means something if faults actually interrupted the
  // workload at many distinct points.
  EXPECT_GT(tally.crashed_runs, 0u);
  EXPECT_GT(tally.open_failures, 0u);
  RecordProperty("total_ops", static_cast<int>(tally.total_ops));
}

TEST(RecoveryCrashMatrixTest, ShortWritesLeaveRepairableTornTails) {
  MatrixTally tally;
  RunCrashMatrix("crash_matrix_torn", 0x7EED, /*short_writes=*/true,
                 /*queries_per_point=*/25, &tally);
  EXPECT_GT(tally.crashed_runs, 0u);
}

// Kill-loop mode: DSPC_RECOVERY_KILL_LOOP=<n> re-runs the full matrix n
// more times with fresh seeds (CI soak; a no-op locally by default).
TEST(RecoveryCrashMatrixTest, KillLoop) {
  const char* loops = std::getenv("DSPC_RECOVERY_KILL_LOOP");
  const int n = loops != nullptr ? std::atoi(loops) : 0;
  for (int i = 0; i < n; ++i) {
    MatrixTally tally;
    RunCrashMatrix("kill_loop_" + std::to_string(i),
                   0x1000 + static_cast<uint64_t>(i) * 7919,
                   /*short_writes=*/(i % 2) == 1, /*queries_per_point=*/25,
                   &tally);
  }
}

// --- torn tails and corruption at the service level --------------------------

TEST(RecoveryTest, GarbageAppendedToTheWalIsTruncatedNotFatal) {
  const std::string dir = FreshDir("recovery_garbage_tail");
  const Graph bootstrap = GenerateBarabasiAlbert(30, 2, 9);
  WorkloadLog log;
  {
    auto service = SpcService::Open(bootstrap, EveryWriteOptions(dir));
    ASSERT_TRUE(service.ok());
    ASSERT_TRUE(RunWorkload(service->get(), 0xBEEF, &log));
  }
  // Append junk to the newest segment: a torn final write.
  FileSystem* fs = FileSystem::Default();
  auto names = fs->ListDir(dir);
  ASSERT_TRUE(names.ok());
  uint64_t max_seq = 0;
  for (const std::string& name : *names) {
    uint64_t seq = 0;
    if (ParseWalSegmentFileName(name, &seq) && seq > max_seq) max_seq = seq;
  }
  ASSERT_GT(max_seq, 0u);
  const std::string segment_path = dir + "/" + WalSegmentFileName(max_seq);
  std::vector<uint8_t> data;
  ASSERT_TRUE(fs->ReadFile(segment_path, &data).ok());
  data.insert(data.end(), {0xDE, 0xAD, 0xBE, 0xEF, 0x01, 0x02, 0x03});
  {
    auto f = fs->NewWritableFile(segment_path);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->Append(data.data(), data.size()).ok());
    ASSERT_TRUE((*f)->Close().ok());
  }
  auto reopened = SpcService::Open(bootstrap, EveryWriteOptions(dir));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_GT((*reopened)->RecoveryInfo().truncated_tail_bytes, 0u);
  EXPECT_EQ((*reopened)->Generation(), log.last_acked_generation);
}

// A durable batch whose WAL intent record would exceed the one-frame cap
// must be rejected up front with kInvalidArgument — NOT appended, fsynced
// and acknowledged only to be read back as a "torn tail" (and silently
// truncated) at recovery.
TEST(RecoveryTest, DurableBatchesBeyondTheWalFrameCapAreRejectedUpFront) {
  const std::string dir = FreshDir("recovery_oversize_batch");
  const Graph bootstrap = GenerateBarabasiAlbert(30, 2, 3);
  auto service = SpcService::Open(bootstrap, EveryWriteOptions(dir));
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  const uint64_t before = (*service)->Generation();

  std::vector<Update> updates(kWalMaxBatchUpdates + 1, Update::Insert(0, 1));
  const auto resp =
      (*service)->ApplyUpdates(updates, WriteOptions{.durable = true});
  ASSERT_FALSE(resp.ok());
  EXPECT_TRUE(resp.status().IsInvalidArgument()) << resp.status().ToString();

  // A caller error, not a device failure: the log must not fail-stop.
  const auto ok = (*service)->AddVertex(WriteOptions{.durable = true});
  ASSERT_NE(ok.vertex, kInvalidVertex);
  EXPECT_TRUE(ok.token.durable);
  EXPECT_EQ((*service)->Generation(), before + 1);
}

// Regression for two recovery bugs that only meet under checkpoint
// fallback across process restarts:
//
//  1. Batch seqs restarting at 1 every Open: a crashed run's synced-but-
//     unpaired intent (seq N) plus a later run reusing seq N made the
//     fallback replay — the one path that reads both runs' segments —
//     die with "duplicate wal intent seq". Seqs are now scoped by WAL
//     segment, which is unique across restarts.
//  2. The open-time Publish deriving its retained fallback from the
//     on-disk MANIFEST: after fallback recovery that MANIFEST names the
//     checkpoint recovery just PROVED corrupt, and retaining it lets GC
//     delete the proven-good one.
TEST(RecoveryTest, FallbackRecoveryAcrossCrashedRunsAndCorruptCheckpoints) {
  const std::string dir = FreshDir("recovery_fallback_restart");
  const Graph bootstrap = GenerateBarabasiAlbert(30, 2, 7);
  FileSystem* fs = FileSystem::Default();
  const WriteOptions durable{.durable = true};

  // Run 1: one acknowledged durable write (AddVertex: always applies, so
  // the generation demonstrably advances), then a crash that lands after
  // a batch write's intent is synced but before its commit is appended —
  // the canonical stale unpaired intent. The fresh vertex also gives the
  // later runs edges guaranteed absent from the bootstrap graph.
  uint64_t acked_gen = 0;
  Vertex fresh = kInvalidVertex;
  {
    FaultInjectingEnv env(fs);
    auto service = SpcService::Open(bootstrap, EveryWriteOptions(dir, &env));
    ASSERT_TRUE(service.ok()) << service.status().ToString();
    const AddVertexResponse resp = (*service)->AddVertex(durable);
    ASSERT_NE(resp.vertex, kInvalidVertex);
    ASSERT_TRUE(resp.token.durable);
    acked_gen = resp.token.generation;
    fresh = resp.vertex;
    // Arm resets the op counter; the ops after it under kEveryWrite are
    // append intent (0), sync (1), append commit (2), sync (3). Kill the
    // commit append: the intent is durable, unpaired.
    env.Arm(2);
    const std::vector<Update> doomed = {Update::Insert(0, fresh)};
    ASSERT_FALSE((*service)->ApplyUpdates(doomed, durable).ok());
    EXPECT_TRUE(env.Tripped());
  }

  // Run 2: recovery drops the unpaired intent; two more acknowledged
  // batch writes land in the new run's segment (two, so the restarted
  // run reaches the crashed run's stale seq under a per-Open counter;
  // edges into the fresh vertex, so both genuinely apply).
  uint64_t final_gen = 0;
  {
    auto service = SpcService::Open(bootstrap, EveryWriteOptions(dir));
    ASSERT_TRUE(service.ok()) << service.status().ToString();
    ASSERT_EQ((*service)->Generation(), acked_gen);
    const std::vector<Update> first = {Update::Insert(5, fresh)};
    ASSERT_TRUE((*service)->ApplyUpdates(first, durable).ok());
    const std::vector<Update> second = {Update::Insert(6, fresh)};
    const auto resp = (*service)->ApplyUpdates(second, durable);
    ASSERT_TRUE(resp.ok());
    ASSERT_EQ(resp->applied, 1u);
    final_gen = resp->token.generation;
    ASSERT_EQ(final_gen, acked_gen + 2);
  }

  // Corrupt the current checkpoint: recovery must fall back to the
  // retained previous one and replay BOTH runs' segments — the stale
  // unpaired intent and the later run's records in one pass.
  auto manifest = ReadManifest(fs, dir);
  ASSERT_TRUE(manifest.ok());
  const std::string current =
      dir + "/" + CheckpointFileName(manifest->generation);
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(fs->ReadFile(current, &bytes).ok());
  ASSERT_GT(bytes.size(), 64u);
  bytes[bytes.size() / 2] ^= 0x40;
  {
    auto f = fs->NewWritableFile(current);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->Append(bytes.data(), bytes.size()).ok());
    ASSERT_TRUE((*f)->Close().ok());
  }
  {
    auto service = SpcService::Open(bootstrap, EveryWriteOptions(dir));
    ASSERT_TRUE(service.ok()) << service.status().ToString();
    EXPECT_TRUE((*service)->RecoveryInfo().used_fallback_checkpoint);
    EXPECT_EQ((*service)->Generation(), final_gen);
  }

  // That open re-published. Its retained fallback must be the checkpoint
  // recovery PROVED loadable — not the corrupt one the stale MANIFEST
  // still named (which would have let GC delete the good one). Corrupt
  // the new current checkpoint and fall back once more to find out.
  auto manifest2 = ReadManifest(fs, dir);
  ASSERT_TRUE(manifest2.ok());
  ASSERT_TRUE(manifest2->has_previous);
  EXPECT_NE(manifest2->prev_generation, manifest->generation);
  const std::string current2 =
      dir + "/" + CheckpointFileName(manifest2->generation);
  std::vector<uint8_t> bytes2;
  ASSERT_TRUE(fs->ReadFile(current2, &bytes2).ok());
  bytes2[bytes2.size() / 2] ^= 0x40;
  {
    auto f = fs->NewWritableFile(current2);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->Append(bytes2.data(), bytes2.size()).ok());
    ASSERT_TRUE((*f)->Close().ok());
  }
  auto reopened = SpcService::Open(bootstrap, EveryWriteOptions(dir));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_TRUE((*reopened)->RecoveryInfo().used_fallback_checkpoint);
  EXPECT_EQ((*reopened)->Generation(), final_gen);
}

// A missing MANIFEST over a directory that demonstrably held durable
// state is external destruction, not a first-open crash: bootstrapping
// would silently discard acknowledged writes, so Open must refuse with
// kDataLoss.
TEST(RecoveryTest, MissingManifestOverDurableRecordsIsDataLossNotBootstrap) {
  const Graph bootstrap = GenerateBarabasiAlbert(20, 2, 11);
  FileSystem* fs = FileSystem::Default();
  const WriteOptions durable{.durable = true};

  // Evidence form 1: WAL segments holding committed records.
  const std::string dir = FreshDir("recovery_lost_manifest_wal");
  {
    auto service = SpcService::Open(bootstrap, EveryWriteOptions(dir));
    ASSERT_TRUE(service.ok()) << service.status().ToString();
    ASSERT_TRUE((*service)->AddVertex(durable).token.durable);
  }
  ASSERT_TRUE(fs->RemoveFile(dir + "/" + ManifestFileName()).ok());
  {
    const auto reopened = SpcService::Open(bootstrap, EveryWriteOptions(dir));
    ASSERT_FALSE(reopened.ok());
    EXPECT_TRUE(reopened.status().IsDataLoss())
        << reopened.status().ToString();
  }

  // Evidence form 2: two checkpoint files and no records at all. A
  // first-open crash can strand at most ONE checkpoint without a
  // MANIFEST; two have necessarily been through a publish that retained
  // a previous — a MANIFEST existed.
  const std::string dir2 = FreshDir("recovery_lost_manifest_ckpt");
  {
    auto service = SpcService::Open(bootstrap, EveryWriteOptions(dir2));
    ASSERT_TRUE(service.ok()) << service.status().ToString();
    // AddVertex genuinely advances the generation, so Checkpoint()
    // publishes a SECOND checkpoint file (and retains the open-time one).
    ASSERT_TRUE((*service)->AddVertex(durable).token.durable);
    ASSERT_TRUE((*service)->Checkpoint().ok());
  }
  auto names = fs->ListDir(dir2);
  ASSERT_TRUE(names.ok());
  size_t checkpoints = 0;
  for (const std::string& name : *names) {
    uint64_t ignored = 0;
    if (ParseCheckpointFileName(name, &ignored)) ++checkpoints;
    if (ParseWalSegmentFileName(name, &ignored) ||
        name == ManifestFileName()) {
      ASSERT_TRUE(fs->RemoveFile(dir2 + "/" + name).ok());
    }
  }
  ASSERT_GE(checkpoints, 2u);
  const auto reopened = SpcService::Open(bootstrap, EveryWriteOptions(dir2));
  ASSERT_FALSE(reopened.ok());
  EXPECT_TRUE(reopened.status().IsDataLoss()) << reopened.status().ToString();
}

// Random mutilation of the durability directory must never crash Open —
// it either recovers (possibly via the fallback checkpoint) or returns a
// typed error. This is the service-level face of the WAL fuzz contract.
TEST(RecoveryFuzzTest, MutilatedDirectoriesNeverCrashOpen) {
  const Graph bootstrap = GenerateBarabasiAlbert(25, 2, 13);
  Rng rng(0xF00D);
  for (int trial = 0; trial < 30; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    const std::string dir = FreshDir("recovery_mutilate");
    WorkloadLog log;
    {
      auto service = SpcService::Open(bootstrap, EveryWriteOptions(dir));
      ASSERT_TRUE(service.ok());
      ASSERT_TRUE(RunWorkload(service->get(), 0x100 + trial, &log));
    }
    FileSystem* fs = FileSystem::Default();
    auto names = fs->ListDir(dir);
    ASSERT_TRUE(names.ok());
    ASSERT_FALSE(names->empty());
    // Mutilate 1-3 files: truncate, bit-flip, or delete.
    const size_t hits = 1 + rng.NextBounded(3);
    for (size_t h = 0; h < hits; ++h) {
      const std::string path =
          dir + "/" + (*names)[rng.NextBounded(names->size())];
      if (!fs->FileExists(path)) continue;
      std::vector<uint8_t> data;
      if (!fs->ReadFile(path, &data).ok() || data.empty()) continue;
      switch (rng.NextBounded(3)) {
        case 0:
          ASSERT_TRUE(
              fs->TruncateFile(path, rng.NextBounded(data.size())).ok());
          break;
        case 1: {
          data[rng.NextBounded(data.size())] ^=
              static_cast<uint8_t>(1u << rng.NextBounded(8));
          auto f = fs->NewWritableFile(path);
          ASSERT_TRUE(f.ok());
          ASSERT_TRUE((*f)->Append(data.data(), data.size()).ok());
          ASSERT_TRUE((*f)->Close().ok());
          break;
        }
        default:
          ASSERT_TRUE(fs->RemoveFile(path).ok());
          break;
      }
    }
    auto reopened = SpcService::Open(bootstrap, EveryWriteOptions(dir));
    if (reopened.ok()) {
      // Whatever it recovered must at least be internally consistent.
      const auto resp = (*reopened)->Query(0, 1);
      EXPECT_TRUE(resp.ok());
    } else {
      const Status& st = reopened.status();
      EXPECT_TRUE(st.IsDataLoss() || st.IsIOError()) << st.ToString();
    }
  }
}

// Satellite (b): journaled outcomes make replay idempotent — the number
// of kApplied outcomes in every acknowledged batch equals exactly the
// generation distance its token advanced, and that invariant survives
// arbitrary crash/recover cycles (a replayed kNoOp must not bump the
// generation).
TEST(RecoveryFuzzTest, AppliedCountEqualsGenerationDeltaAcrossCrashCycles) {
  const Graph bootstrap = GenerateBarabasiAlbert(30, 2, 17);
  Rng rng(0xCAFE);
  for (int trial = 0; trial < 12; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    const std::string dir = FreshDir("recovery_gen_delta");
    uint64_t expected_generation = 0;

    // Several crash/recover cycles against the SAME directory. Each
    // cycle recovers, verifies the generation, then crashes again at a
    // random future operation index.
    for (int cycle = 0; cycle < 3; ++cycle) {
      FaultInjectingEnv env(FileSystem::Default());
      env.Arm(20 + rng.NextBounded(120), /*short_write=*/
              rng.NextBounded(2) == 1);
      auto service =
          SpcService::Open(bootstrap, EveryWriteOptions(dir, &env));
      if (!service.ok()) continue;  // crash during Open: directory keeps
                                    // its previous durable state
      if (expected_generation != 0) {
        ASSERT_EQ((*service)->Generation(), expected_generation);
      }
      uint64_t generation = (*service)->Generation();
      const WriteOptions durable{.durable = true};
      for (int step = 0; step < 40; ++step) {
        std::vector<Update> updates;
        for (size_t i = 0; i < 1 + rng.NextBounded(3); ++i) {
          auto u = static_cast<Vertex>(rng.NextBounded(30));
          auto v = static_cast<Vertex>(rng.NextBounded(30));
          if (u == v) v = (v + 1) % 30;
          updates.push_back(rng.NextBounded(2) ? Update::Insert(u, v)
                                               : Update::Delete(u, v));
        }
        const auto resp = (*service)->ApplyUpdates(updates, durable);
        if (!resp.ok() || !resp->token.durable) break;  // crashed
        // The admission contract under durability: kApplied count ==
        // the generation distance this acknowledged call advanced.
        ASSERT_EQ(resp->token.generation - generation, resp->applied);
        generation = resp->token.generation;
      }
      expected_generation = generation;
    }
    if (expected_generation == 0) continue;
    auto final_open = SpcService::Open(bootstrap, EveryWriteOptions(dir));
    ASSERT_TRUE(final_open.ok()) << final_open.status().ToString();
    EXPECT_EQ((*final_open)->Generation(), expected_generation);
  }
}

}  // namespace
}  // namespace dspc
