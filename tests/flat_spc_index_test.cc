// Tests for FlatSpcIndex, the read-optimized packed-arena snapshot:
// query equivalence against the mutable index and BFS ground truth on
// several graph families under Inc/Dec update streams, the batched and
// parallel drivers, the overflow side table, and the v2 on-disk format.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "dspc/common/binary_io.h"
#include "dspc/common/label_codec.h"
#include "dspc/core/dynamic_spc.h"
#include "dspc/core/flat_spc_index.h"
#include "dspc/core/hp_spc.h"
#include "dspc/graph/generators.h"
#include "dspc/graph/update_stream.h"
#include "test_util.h"

namespace dspc {
namespace {

using dspc::testing::RandomGraph;

/// Asserts flat == legacy == BFS for every pair, and flat.PreQuery ==
/// legacy.PreQuery.
void ExpectFlatMatchesLegacy(const Graph& graph, const SpcIndex& index,
                             const std::string& context) {
  const FlatSpcIndex flat(index);
  ASSERT_EQ(flat.NumVertices(), graph.NumVertices()) << context;
  ASSERT_EQ(flat.TotalEntries(), index.SizeStats().total_entries) << context;
  for (Vertex s = 0; s < graph.NumVertices(); ++s) {
    const SsspCounts truth = BfsCount(graph, s);
    for (Vertex t = 0; t < graph.NumVertices(); ++t) {
      const SpcResult legacy = index.Query(s, t);
      const SpcResult got = flat.Query(s, t);
      ASSERT_EQ(got.dist, truth.dist[t])
          << context << " flat/BFS dist mismatch s=" << s << " t=" << t;
      ASSERT_EQ(got.count, truth.count[t])
          << context << " flat/BFS count mismatch s=" << s << " t=" << t;
      ASSERT_EQ(got, legacy)
          << context << " flat/legacy mismatch s=" << s << " t=" << t;
      ASSERT_EQ(flat.PreQuery(s, t), index.PreQuery(s, t))
          << context << " PreQuery mismatch s=" << s << " t=" << t;
    }
  }
}

/// Runs a hybrid update stream through a DynamicSpcIndex, re-checking the
/// flat snapshot equivalence every few updates.
void RunUpdateStreamEquivalence(Graph graph, const std::string& family) {
  DynamicSpcIndex dyn(graph);
  ExpectFlatMatchesLegacy(dyn.graph(), dyn.index(), family + " initial");
  const std::vector<Update> stream = MakeHybridStream(graph, 12, 6, 77);
  size_t applied = 0;
  for (const Update& u : stream) {
    dyn.Apply(u);
    if (++applied % 3 == 0) {
      ExpectFlatMatchesLegacy(dyn.graph(), dyn.index(),
                              family + " after update " +
                                  std::to_string(applied));
    }
  }
  ExpectFlatMatchesLegacy(dyn.graph(), dyn.index(), family + " final");
}

TEST(FlatSpcIndexEquivalence, ErdosRenyiWithUpdates) {
  RunUpdateStreamEquivalence(GenerateErdosRenyi(48, 100, 11), "ER");
}

TEST(FlatSpcIndexEquivalence, BarabasiAlbertWithUpdates) {
  RunUpdateStreamEquivalence(GenerateBarabasiAlbert(56, 2, 12), "BA");
}

TEST(FlatSpcIndexEquivalence, WattsStrogatzWithUpdates) {
  RunUpdateStreamEquivalence(GenerateWattsStrogatz(48, 4, 0.1, 13), "WS");
}

TEST(FlatSpcIndexEquivalence, RmatWithUpdates) {
  RunUpdateStreamEquivalence(GenerateRmat(6, 160, 14), "RMAT");
}

TEST(FlatSpcIndexTest, SelfAndDisconnectedPairs) {
  Graph g(5);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);  // 3 and 4 isolated
  const SpcIndex index = BuildSpcIndex(g);
  const FlatSpcIndex flat(index);
  EXPECT_EQ(flat.Query(0, 0), (SpcResult{0, 1}));
  EXPECT_EQ(flat.Query(0, 2), (SpcResult{2, 1}));
  EXPECT_EQ(flat.Query(0, 3), (SpcResult{kInfDistance, 0}));
  EXPECT_EQ(flat.Query(3, 4), (SpcResult{kInfDistance, 0}));
}

TEST(FlatSpcIndexTest, QueryManyMatchesSingleAndParallel) {
  const Graph g = RandomGraph(80, 200, 21);
  const SpcIndex index = BuildSpcIndex(g);
  const FlatSpcIndex flat(index);
  std::vector<VertexPair> pairs;
  for (Vertex s = 0; s < g.NumVertices(); ++s) {
    for (Vertex t = 0; t < g.NumVertices(); t += 7) {
      pairs.emplace_back(s, t);
    }
  }
  const std::vector<SpcResult> serial = flat.QueryMany(pairs);
  ASSERT_EQ(serial.size(), pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    ASSERT_EQ(serial[i], index.Query(pairs[i].first, pairs[i].second))
        << "pair " << i;
  }
  const std::vector<SpcResult> parallel = flat.QueryManyParallel(pairs, 4);
  EXPECT_EQ(parallel, serial);
  // Degenerate batches.
  EXPECT_TRUE(flat.QueryMany(std::span<const VertexPair>{}).empty());
  EXPECT_TRUE(flat.QueryManyParallel(std::span<const VertexPair>{}, 8).empty());
}

TEST(FlatSpcIndexTest, OverflowEntriesUseSideTable) {
  // dist == kPackedDistMax is the overflow marker and counts beyond 29
  // bits never fit, so both must route through the side table and still
  // answer exactly.
  SpcIndex index(BuildOrdering(GenerateComplete(4)));
  const Rank h0 = 0;
  index.InsertLabel(index.VertexOf(1), LabelEntry{h0, 7, (1ULL << 40) + 3});
  index.InsertLabel(index.VertexOf(2),
                    LabelEntry{h0, static_cast<Distance>(kPackedDistMax), 5});
  index.InsertLabel(index.VertexOf(3), LabelEntry{h0, 2, 9});
  const FlatSpcIndex flat(index);
  EXPECT_FALSE(flat.wide_mode());
  EXPECT_EQ(flat.OverflowEntries(), 2u);
  const Vertex v1 = index.VertexOf(1);
  const Vertex v2 = index.VertexOf(2);
  const Vertex v3 = index.VertexOf(3);
  EXPECT_EQ(flat.Query(v1, v3), index.Query(v1, v3));
  EXPECT_EQ(flat.Query(v2, v3), index.Query(v2, v3));
  EXPECT_EQ(flat.Query(v1, v2), index.Query(v1, v2));
  EXPECT_EQ(flat.Query(v1, v3).count, ((1ULL << 40) + 3) * 9);
  EXPECT_EQ(flat.Query(v2, v3).dist, kPackedDistMax + 2);
}

TEST(FlatSpcIndexTest, UnpackRoundTripsExactly) {
  const Graph g = RandomGraph(40, 90, 31);
  const SpcIndex index = BuildSpcIndex(g);
  const FlatSpcIndex flat(index);
  const SpcIndex back = flat.Unpack();
  EXPECT_TRUE(back == index);
  EXPECT_TRUE(back.ValidateStructure().ok());
}

TEST(FlatSpcIndexTest, ArenaBytesBelowWideBytes) {
  const Graph g = RandomGraph(60, 150, 41);
  const SpcIndex index = BuildSpcIndex(g);
  const FlatSpcIndex flat(index);
  const IndexSizeStats stats = index.SizeStats();
  // The arena carries offsets + ranks on top of the packed entries, but on
  // any real label distribution still undercuts 16-byte entries.
  EXPECT_LT(flat.ArenaBytes(),
            stats.wide_bytes + stats.num_vertices * sizeof(uint64_t));
  EXPECT_EQ(flat.TotalEntries(), stats.total_entries);
}

TEST(FlatSpcIndexSerialization, V2RoundTrip) {
  const Graph g = RandomGraph(50, 120, 51);
  const SpcIndex index = BuildSpcIndex(g);
  const FlatSpcIndex flat(index);
  const std::string path = ::testing::TempDir() + "/dspc_flat_v2.bin";
  ASSERT_TRUE(flat.Save(path).ok());
  FlatSpcIndex loaded;
  ASSERT_TRUE(FlatSpcIndex::Load(path, &loaded).ok());
  EXPECT_EQ(loaded.TotalEntries(), flat.TotalEntries());
  EXPECT_EQ(loaded.OverflowEntries(), flat.OverflowEntries());
  for (Vertex s = 0; s < g.NumVertices(); ++s) {
    for (Vertex t = 0; t < g.NumVertices(); ++t) {
      ASSERT_EQ(loaded.Query(s, t), index.Query(s, t));
    }
  }
  std::remove(path.c_str());
}

TEST(FlatSpcIndexSerialization, V2RoundTripWithOverflow) {
  SpcIndex index(BuildOrdering(GeneratePath(3)));
  index.InsertLabel(index.VertexOf(1), LabelEntry{0, 4, (1ULL << 35)});
  const FlatSpcIndex flat(index);
  ASSERT_EQ(flat.OverflowEntries(), 1u);
  const std::string path = ::testing::TempDir() + "/dspc_flat_ovf.bin";
  ASSERT_TRUE(flat.Save(path).ok());
  FlatSpcIndex loaded;
  ASSERT_TRUE(FlatSpcIndex::Load(path, &loaded).ok());
  EXPECT_EQ(loaded.OverflowEntries(), 1u);
  const Vertex v1 = index.VertexOf(1);
  const Vertex v0 = index.VertexOf(0);
  EXPECT_EQ(loaded.Query(v0, v1), index.Query(v0, v1));
  std::remove(path.c_str());
}

TEST(FlatSpcIndexSerialization, CrossFormatLoads) {
  const Graph g = RandomGraph(30, 70, 61);
  const SpcIndex index = BuildSpcIndex(g);
  const FlatSpcIndex flat(index);
  const std::string v1_path = ::testing::TempDir() + "/dspc_x_v1.bin";
  const std::string v2_path = ::testing::TempDir() + "/dspc_x_v2.bin";
  ASSERT_TRUE(index.Save(v1_path).ok());
  ASSERT_TRUE(flat.Save(v2_path).ok());

  // FlatSpcIndex::Load accepts a v1 file (converting through SpcIndex).
  FlatSpcIndex flat_from_v1;
  ASSERT_TRUE(FlatSpcIndex::Load(v1_path, &flat_from_v1).ok());
  // SpcIndex::Load accepts a v2 file (unpacking the arena).
  SpcIndex index_from_v2;
  ASSERT_TRUE(SpcIndex::Load(v2_path, &index_from_v2).ok());
  EXPECT_TRUE(index_from_v2 == index);
  for (Vertex s = 0; s < g.NumVertices(); s += 3) {
    for (Vertex t = 0; t < g.NumVertices(); t += 3) {
      ASSERT_EQ(flat_from_v1.Query(s, t), index.Query(s, t));
    }
  }
  std::remove(v1_path.c_str());
  std::remove(v2_path.c_str());
}

TEST(FlatSpcIndexSerialization, LoadRejectsCorruption) {
  const std::string path = ::testing::TempDir() + "/dspc_flat_bad.bin";
  {
    BinaryWriter w;
    w.PutU32(0x0BADF00D);
    ASSERT_TRUE(w.WriteToFile(path).ok());
    FlatSpcIndex loaded;
    EXPECT_TRUE(FlatSpcIndex::Load(path, &loaded).IsCorruption());
  }
  {
    // Well-formed header, truncated body.
    BinaryWriter w;
    w.PutU32(kSpcIndexMagic);
    w.PutU32(kSpcIndexFormatV2);
    w.PutU64(1000);
    ASSERT_TRUE(w.WriteToFile(path).ok());
    FlatSpcIndex loaded;
    EXPECT_TRUE(FlatSpcIndex::Load(path, &loaded).IsCorruption());
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dspc
