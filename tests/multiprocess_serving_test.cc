// Multi-process serving (DESIGN.md §14), both halves:
//
//   MappedReader.*          In-process unit tests of MappedReaderService:
//                           adoption, the consistency-lattice refusals,
//                           pin movement, and unlink-survival.
//   MultiprocessServing.*   The real thing: this process runs the writer
//                           (SpcService + SnapshotPublisher) and
//                           fork/execs N dspc_reader processes over the
//                           shared directory, driving them through their
//                           stdin/stdout line protocol. Answers are
//                           cross-checked against BiBFS ground truth, so
//                           a reader is proven bit-identical to the
//                           writer at the same generation across
//                           publishes, reader SIGKILLs, writer
//                           crash/recovery, and GC with pinned readers.
//
// The reader binary path arrives via the DSPC_READER_BIN compile
// definition (CMakeLists.txt).

#include <fcntl.h>
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "dspc/api/mapped_reader_service.h"
#include "dspc/api/spc_service.h"
#include "dspc/baseline/bibfs_counting.h"
#include "dspc/core/flat_spc_index.h"
#include "dspc/core/hp_spc.h"
#include "dspc/graph/generators.h"
#include "dspc/graph/update_stream.h"
#include "dspc/persist/env.h"
#include "dspc/persist/snapshot_arena.h"
#include "dspc/persist/snapshot_publisher.h"

namespace dspc {
namespace {

std::string FreshDir(const std::string& name) {
  FileSystem* fs = FileSystem::Default();
  const std::string dir = ::testing::TempDir() + "/" + name;
  (void)fs->CreateDir(dir);
  auto names = fs->ListDir(dir);
  if (names.ok()) {
    for (const std::string& f : *names) (void)fs->RemoveFile(dir + "/" + f);
  }
  return dir;
}

FlatSpcIndex SnapshotOf(const Graph& graph) {
  return FlatSpcIndex(BuildSpcIndex(graph));
}

// --- in-process MappedReaderService ------------------------------------------

TEST(MappedReader, OpenBeforeFirstPublishIsNotFound) {
  const std::string dir = FreshDir("mr_open_empty");
  auto reader = MappedReaderService::Open(dir);
  EXPECT_TRUE(reader.status().IsNotFound()) << reader.status().ToString();
}

TEST(MappedReader, ServesAdoptedGenerationAndMatchesBiBfs) {
  const std::string dir = FreshDir("mr_adopt");
  const Graph graph = GenerateErdosRenyi(40, 90, 3);
  auto pub = SnapshotPublisher::Open(dir);
  ASSERT_TRUE(pub.ok());
  ASSERT_TRUE((*pub)->Publish(SnapshotOf(graph), 5, 17).ok());

  auto reader = MappedReaderService::Open(dir);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ((*reader)->Generation(), 5u);
  EXPECT_EQ((*reader)->PublisherGeneration(), 5u);
  EXPECT_EQ((*reader)->WalSeq(), 17u);
  EXPECT_EQ((*reader)->NumVertices(), graph.NumVertices());

  BiBfsCounter truth(graph);
  for (Vertex s = 0; s < graph.NumVertices(); s += 3) {
    for (Vertex t = 0; t < graph.NumVertices(); t += 3) {
      auto resp = (*reader)->Query(s, t);
      ASSERT_TRUE(resp.ok());
      EXPECT_EQ(resp->result, truth.Query(s, t)) << "s=" << s << " t=" << t;
      EXPECT_EQ(resp->generation, 5u);
      EXPECT_EQ(resp->staleness, 0u);
      EXPECT_EQ(resp->served_from, ServedFrom::kSnapshot);
    }
  }

  std::vector<VertexPair> pairs = {{0, 1}, {3, 9}, {12, 30}};
  auto batch = (*reader)->QueryBatch(pairs);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->results.size(), pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(batch->results[i],
              truth.Query(pairs[i].first, pairs[i].second));
  }
}

TEST(MappedReader, RefreshAdoptsNewerGenerationOldMapKeepsServing) {
  const std::string dir = FreshDir("mr_refresh");
  Graph graph = GeneratePath(8);
  auto pub = SnapshotPublisher::Open(dir);
  ASSERT_TRUE(pub.ok());
  ASSERT_TRUE((*pub)->Publish(SnapshotOf(graph), 1, 0).ok());

  auto reader = MappedReaderService::Open(dir);
  ASSERT_TRUE(reader.ok());
  ASSERT_EQ((*reader)->Generation(), 1u);

  // Writer moves on: a shortcut edge changes answers at generation 2.
  ASSERT_TRUE(graph.AddEdge(0, 7));
  ASSERT_TRUE((*pub)->Publish(SnapshotOf(graph), 2, 0).ok());

  // kSnapshot before Refresh: still the adopted generation, honestly.
  auto before = (*reader)->Query(0, 7);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->generation, 1u);
  EXPECT_EQ(before->result.dist, 7u);

  ASSERT_TRUE((*reader)->Refresh().ok());
  EXPECT_EQ((*reader)->Generation(), 2u);
  auto after = (*reader)->Query(0, 7);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->generation, 2u);
  EXPECT_EQ(after->result.dist, 1u);
  EXPECT_EQ(after->result.count, 1u);

  // Refresh with nothing new published is an OK no-op.
  ASSERT_TRUE((*reader)->Refresh().ok());
  EXPECT_EQ((*reader)->Generation(), 2u);
}

TEST(MappedReader, ConsistencyLatticeRefusalsAreTyped) {
  const std::string dir = FreshDir("mr_lattice");
  const Graph graph = GeneratePath(6);
  auto pub = SnapshotPublisher::Open(dir);
  ASSERT_TRUE(pub.ok());
  ASSERT_TRUE((*pub)->Publish(SnapshotOf(graph), 3, 0).ok());

  auto reader = MappedReaderService::Open(dir);
  ASSERT_TRUE(reader.ok());

  // kFresh has no live index to serve.
  EXPECT_TRUE((*reader)
                  ->Query(0, 5, {.consistency = Consistency::kFresh})
                  .status()
                  .IsNotSupported());

  // kSnapshot refuses a future min_generation without doing I/O.
  EXPECT_TRUE((*reader)
                  ->Query(0, 5,
                          {.consistency = Consistency::kSnapshot,
                           .min_generation = 4})
                  .status()
                  .IsUnavailable());

  // kBoundedStaleness with an unreachable min_generation refuses too.
  EXPECT_TRUE((*reader)
                  ->Query(0, 5,
                          {.consistency = Consistency::kBoundedStaleness,
                           .min_generation = 9})
                  .status()
                  .IsUnavailable());

  // Vertex validation is typed, not fatal.
  EXPECT_TRUE((*reader)->Query(0, 99).status().IsInvalidArgument());

  const auto m = (*reader)->Metrics();
  EXPECT_EQ(m.rejected_not_supported, 1u);
  EXPECT_EQ(m.rejected_unavailable, 2u);
  EXPECT_EQ(m.rejected_invalid_argument, 1u);
}

TEST(MappedReader, BoundedStalenessAdoptsInline) {
  const std::string dir = FreshDir("mr_bounded");
  Graph graph = GeneratePath(8);
  auto pub = SnapshotPublisher::Open(dir);
  ASSERT_TRUE(pub.ok());
  ASSERT_TRUE((*pub)->Publish(SnapshotOf(graph), 1, 0).ok());
  auto reader = MappedReaderService::Open(dir);
  ASSERT_TRUE(reader.ok());

  ASSERT_TRUE(graph.AddEdge(0, 7));
  ASSERT_TRUE((*pub)->Publish(SnapshotOf(graph), 2, 0).ok());

  // max_lag 0 forces the inline adoption: the answer must come from
  // generation 2 without an explicit Refresh().
  auto resp = (*reader)->Query(
      0, 7, {.consistency = Consistency::kBoundedStaleness, .max_lag = 0});
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->generation, 2u);
  EXPECT_EQ(resp->staleness, 0u);
  EXPECT_EQ(resp->result.dist, 1u);
  EXPECT_EQ((*reader)->Generation(), 2u);
}

TEST(MappedReader, PinFollowsAdoptionAndIsRemovedOnShutdown) {
  const std::string dir = FreshDir("mr_pin");
  FileSystem* fs = FileSystem::Default();
  const Graph graph = GeneratePath(5);
  auto pub = SnapshotPublisher::Open(dir);
  ASSERT_TRUE(pub.ok());
  ASSERT_TRUE((*pub)->Publish(SnapshotOf(graph), 1, 0).ok());
  {
    MappedReaderOptions ropts;
    ropts.pin_owner = "unit-reader";
    auto reader = MappedReaderService::Open(dir, ropts);
    ASSERT_TRUE(reader.ok());
    EXPECT_TRUE(fs->FileExists(dir + "/pin-unit-reader"));
    ASSERT_TRUE((*pub)->Publish(SnapshotOf(graph), 2, 0).ok());
    ASSERT_TRUE((*reader)->Refresh().ok());
    // The pin now names generation 2: GC at retain=1 may drop 1.
    SnapshotPublisherOptions gc;
    gc.retain = 1;
    auto pub2 = SnapshotPublisher::Open(dir, gc);
    ASSERT_TRUE(pub2.ok());
    ASSERT_TRUE((*pub2)->GarbageCollect().ok());
    EXPECT_FALSE(fs->FileExists(dir + "/" + SnapshotArenaFileName(1)));
    EXPECT_TRUE(fs->FileExists(dir + "/" + SnapshotArenaFileName(2)));
  }
  // Clean shutdown releases the pin.
  EXPECT_FALSE(fs->FileExists(dir + "/pin-unit-reader"));
}

TEST(MappedReader, MappingSurvivesUnlinkByGc) {
  const std::string dir = FreshDir("mr_unlink");
  FileSystem* fs = FileSystem::Default();
  Graph graph = GeneratePath(7);
  SnapshotPublisherOptions options;
  options.retain = 1;
  auto pub = SnapshotPublisher::Open(dir, options);
  ASSERT_TRUE(pub.ok());
  ASSERT_TRUE((*pub)->Publish(SnapshotOf(graph), 1, 0).ok());

  // No pins: this reader opts out of retention on purpose.
  MappedReaderOptions no_pins;
  no_pins.write_pins = false;
  auto reader = MappedReaderService::Open(dir, no_pins);
  ASSERT_TRUE(reader.ok());
  ASSERT_EQ((*reader)->Generation(), 1u);

  ASSERT_TRUE(graph.AddEdge(0, 6));
  ASSERT_TRUE((*pub)->Publish(SnapshotOf(graph), 2, 0).ok());
  ASSERT_TRUE((*pub)->Publish(SnapshotOf(graph), 3, 0).ok());
  ASSERT_FALSE(fs->FileExists(dir + "/" + SnapshotArenaFileName(1)));

  // The generation-1 bytes are gone from the namespace but not from this
  // process: posix mappings survive unlink, so kSnapshot keeps serving
  // the old answers at the old generation.
  auto resp = (*reader)->Query(0, 6);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->generation, 1u);
  EXPECT_EQ(resp->result.dist, 6u);
  // Staleness is measured against the publisher generation last
  // *observed* (here: at Open) — understated until the next poll, but
  // the served generation above is exact.
  EXPECT_EQ(resp->staleness, 0u);

  // And adoption still works: the reader jumps to the newest survivor.
  ASSERT_TRUE((*reader)->Refresh().ok());
  EXPECT_EQ((*reader)->Generation(), 3u);
  EXPECT_EQ((*reader)->Query(0, 6)->result.dist, 1u);
}

// --- fork/exec harness -------------------------------------------------------

#ifndef DSPC_READER_BIN
#error "DSPC_READER_BIN must point at the dspc_reader executable"
#endif

/// One forked dspc_reader child, driven through its line protocol over a
/// pair of pipes. Blocking reads are safe: every command gets exactly one
/// reply line (flushed), and the gtest TIMEOUT property backstops hangs.
class ReaderProc {
 public:
  struct Answer {
    bool ok = false;
    int code = 0;
    uint64_t generation = 0;
    uint64_t staleness = 0;
    long long dist = -2;
    unsigned long long count = 0;
  };

  static std::unique_ptr<ReaderProc> Spawn(
      const std::string& dir, const std::vector<std::string>& extra = {}) {
    // A SIGKILLed child mid-conversation must surface as an EOF/short
    // read, not a SIGPIPE crash of the test.
    ::signal(SIGPIPE, SIG_IGN);
    int to_child[2] = {-1, -1};
    int from_child[2] = {-1, -1};
    if (::pipe(to_child) != 0 || ::pipe(from_child) != 0) return nullptr;
    const pid_t pid = ::fork();
    if (pid < 0) return nullptr;
    if (pid == 0) {
      ::dup2(to_child[0], STDIN_FILENO);
      ::dup2(from_child[1], STDOUT_FILENO);
      ::close(to_child[0]);
      ::close(to_child[1]);
      ::close(from_child[0]);
      ::close(from_child[1]);
      std::vector<std::string> args = {DSPC_READER_BIN, dir};
      args.insert(args.end(), extra.begin(), extra.end());
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (std::string& a : args) argv.push_back(a.data());
      argv.push_back(nullptr);
      ::execv(DSPC_READER_BIN, argv.data());
      ::_exit(127);
    }
    ::close(to_child[0]);
    ::close(from_child[1]);
    auto proc = std::unique_ptr<ReaderProc>(new ReaderProc());
    proc->pid_ = pid;
    proc->out_ = ::fdopen(to_child[1], "w");
    proc->in_ = ::fdopen(from_child[0], "r");
    return proc;
  }

  ~ReaderProc() {
    if (pid_ > 0) {
      Send("quit");
      (void)Wait();
    }
    if (in_ != nullptr) ::fclose(in_);
    if (out_ != nullptr) ::fclose(out_);
  }

  pid_t pid() const { return pid_; }

  void Send(const std::string& line) {
    if (out_ == nullptr) return;
    std::fputs((line + "\n").c_str(), out_);
    std::fflush(out_);
  }

  /// Next reply line, without the newline; "" on EOF (dead child).
  std::string ReadLine() {
    char buf[8192];
    if (in_ == nullptr || std::fgets(buf, sizeof(buf), in_) == nullptr) {
      return "";
    }
    std::string line(buf);
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
      line.pop_back();
    }
    return line;
  }

  /// The `ready <gen>` banner printed after a successful Open.
  bool WaitReady(uint64_t* generation) {
    std::istringstream in(ReadLine());
    std::string tag;
    in >> tag >> *generation;
    return tag == "ready";
  }

  Answer Query(Vertex s, Vertex t) {
    Send("q " + std::to_string(s) + " " + std::to_string(t));
    return ParseAnswer(ReadLine());
  }

  Answer QueryMinGen(uint64_t min_gen, Vertex s, Vertex t) {
    Send("mq " + std::to_string(min_gen) + " " + std::to_string(s) + " " +
         std::to_string(t));
    return ParseAnswer(ReadLine());
  }

  Answer QueryBounded(uint64_t max_lag, uint64_t min_gen, Vertex s,
                      Vertex t) {
    Send("bq " + std::to_string(max_lag) + " " + std::to_string(min_gen) +
         " " + std::to_string(s) + " " + std::to_string(t));
    return ParseAnswer(ReadLine());
  }

  /// `refresh`; returns the adopted generation (0 on error reply).
  uint64_t Refresh() {
    Send("refresh");
    std::istringstream in(ReadLine());
    std::string tag;
    uint64_t gen = 0;
    in >> tag >> gen;
    return tag == "ok" ? gen : 0;
  }

  bool Gen(uint64_t* adopted, uint64_t* publisher, uint64_t* wal_seq) {
    Send("gen");
    std::istringstream in(ReadLine());
    std::string tag;
    in >> tag >> *adopted >> *publisher >> *wal_seq;
    return tag == "gen";
  }

  void Kill() { ::kill(pid_, SIGKILL); }

  /// Reaps the child; returns its wait status (-1 if already reaped).
  int Wait() {
    if (pid_ <= 0) return -1;
    int status = -1;
    ::waitpid(pid_, &status, 0);
    pid_ = -1;
    return status;
  }

 private:
  ReaderProc() = default;

  static Answer ParseAnswer(const std::string& line) {
    Answer a;
    std::istringstream in(line);
    std::string tag;
    in >> tag;
    if (tag == "a") {
      in >> a.generation >> a.staleness >> a.dist >> a.count;
      a.ok = static_cast<bool>(in);
    } else if (tag == "e") {
      in >> a.code;
    }
    return a;
  }

  pid_t pid_ = -1;
  FILE* in_ = nullptr;
  FILE* out_ = nullptr;
};

/// Checks a sample of pairs from `reader` against BiBFS over `graph`,
/// requiring every answer to carry exactly `generation`.
void ExpectReaderMatchesBiBfs(ReaderProc* reader, const Graph& graph,
                              uint64_t generation) {
  BiBfsCounter truth(graph);
  const Vertex n = static_cast<Vertex>(graph.NumVertices());
  for (Vertex s = 0; s < n; s += 3) {
    for (Vertex t = 0; t < n; t += 5) {
      const SpcResult want = truth.Query(s, t);
      const ReaderProc::Answer got = reader->Query(s, t);
      ASSERT_TRUE(got.ok) << "s=" << s << " t=" << t;
      ASSERT_EQ(got.generation, generation) << "s=" << s << " t=" << t;
      if (want.dist == kInfDistance) {
        EXPECT_EQ(got.dist, -1) << "s=" << s << " t=" << t;
      } else {
        EXPECT_EQ(got.dist, static_cast<long long>(want.dist))
            << "s=" << s << " t=" << t;
        EXPECT_EQ(got.count, want.count) << "s=" << s << " t=" << t;
      }
    }
  }
}

// --- the kill matrix ---------------------------------------------------------

TEST(MultiprocessServing, ReadersServeExactGenerationsAcrossPublishes) {
  const std::string dir = FreshDir("mp_basic");
  Graph graph = GenerateErdosRenyi(45, 100, 21);
  SpcService service(graph);  // writer: live, non-durable
  auto pub = SnapshotPublisher::Open(dir);
  ASSERT_TRUE(pub.ok());
  ASSERT_TRUE(service.PublishSnapshot(pub->get()).ok());
  const uint64_t gen1 = (*pub)->CurrentGeneration();

  // Two independent reader processes over the same directory.
  auto r1 = ReaderProc::Spawn(dir, {"--owner=mp-r1"});
  auto r2 = ReaderProc::Spawn(dir, {"--owner=mp-r2"});
  ASSERT_NE(r1, nullptr);
  ASSERT_NE(r2, nullptr);
  uint64_t g = 0;
  ASSERT_TRUE(r1->WaitReady(&g));
  EXPECT_EQ(g, gen1);
  ASSERT_TRUE(r2->WaitReady(&g));
  EXPECT_EQ(g, gen1);

  ExpectReaderMatchesBiBfs(r1.get(), graph, gen1);
  ExpectReaderMatchesBiBfs(r2.get(), graph, gen1);

  // The writer applies real updates and publishes; each reader adopts
  // the exact new generation and its answers track the new graph.
  std::vector<Update> updates;
  for (Vertex v = 0; v < 6; ++v) {
    const Vertex u = v;
    const Vertex w = static_cast<Vertex>(44 - v);
    if (u != w && !graph.HasEdge(u, w)) {
      updates.push_back(Update::Insert(u, w));
      ASSERT_TRUE(graph.AddEdge(u, w));
    }
  }
  ASSERT_FALSE(updates.empty());
  ASSERT_TRUE(service.ApplyUpdates(updates).ok());
  ASSERT_TRUE(service.PublishSnapshot(pub->get()).ok());
  const uint64_t gen2 = (*pub)->CurrentGeneration();
  ASSERT_GT(gen2, gen1);

  // r1 adopts explicitly; r2 stays pinned to gen1 and keeps serving the
  // OLD answers (exact-generation isolation between processes), then
  // catches up via a bounded read.
  EXPECT_EQ(r1->Refresh(), gen2);
  ExpectReaderMatchesBiBfs(r1.get(), graph, gen2);

  const ReaderProc::Answer stale = r2->Query(0, 44);
  ASSERT_TRUE(stale.ok);
  EXPECT_EQ(stale.generation, gen1);
  const ReaderProc::Answer bounded = r2->QueryBounded(0, 0, 0, 44);
  ASSERT_TRUE(bounded.ok);
  EXPECT_EQ(bounded.generation, gen2);
  EXPECT_EQ(bounded.dist, 1);
  ExpectReaderMatchesBiBfs(r2.get(), graph, gen2);

  // The writer's own service answers match the readers' at gen2.
  auto own = service.Query(0, 44);
  ASSERT_TRUE(own.ok());
  EXPECT_EQ(own->result.dist, 1u);
}

TEST(MultiprocessServing, KilledReaderPinIsSweptAndSpaceReclaimed) {
  const std::string dir = FreshDir("mp_kill");
  FileSystem* fs = FileSystem::Default();
  Graph graph = GeneratePath(10);
  SnapshotPublisherOptions options;
  options.retain = 1;
  auto pub = SnapshotPublisher::Open(dir, options);
  ASSERT_TRUE(pub.ok());
  ASSERT_TRUE((*pub)->Publish(SnapshotOf(graph), 1, 0).ok());

  auto victim = ReaderProc::Spawn(dir, {"--owner=victim"});
  ASSERT_NE(victim, nullptr);
  uint64_t g = 0;
  ASSERT_TRUE(victim->WaitReady(&g));
  ASSERT_EQ(g, 1u);
  EXPECT_TRUE(fs->FileExists(dir + "/pin-victim"));
  // Mid-stream: a query is answered, then the process dies hard.
  EXPECT_TRUE(victim->Query(0, 9).ok);
  victim->Kill();
  victim->Wait();  // reaped: the pid is dead for the liveness probe

  // The writer does not block on the corpse: the default pid-liveness
  // sweep removes the stale pin and GC reclaims its generation.
  ASSERT_TRUE(graph.AddEdge(0, 9));
  ASSERT_TRUE((*pub)->Publish(SnapshotOf(graph), 2, 0).ok());
  ASSERT_TRUE((*pub)->Publish(SnapshotOf(graph), 3, 0).ok());
  EXPECT_FALSE(fs->FileExists(dir + "/pin-victim"));
  EXPECT_FALSE(fs->FileExists(dir + "/" + SnapshotArenaFileName(1)));

  // Survivor readers are unaffected.
  auto fresh = ReaderProc::Spawn(dir, {"--owner=survivor"});
  ASSERT_NE(fresh, nullptr);
  ASSERT_TRUE(fresh->WaitReady(&g));
  EXPECT_EQ(g, 3u);
  const ReaderProc::Answer a = fresh->Query(0, 9);
  ASSERT_TRUE(a.ok);
  EXPECT_EQ(a.dist, 1);
}

TEST(MultiprocessServing, PinnedReaderHoldsGenerationAgainstGc) {
  const std::string dir = FreshDir("mp_pinned_gc");
  FileSystem* fs = FileSystem::Default();
  Graph graph = GeneratePath(9);
  SnapshotPublisherOptions options;
  options.retain = 1;
  auto pub = SnapshotPublisher::Open(dir, options);
  ASSERT_TRUE(pub.ok());
  ASSERT_TRUE((*pub)->Publish(SnapshotOf(graph), 1, 0).ok());

  auto holder = ReaderProc::Spawn(dir, {"--owner=holder"});
  ASSERT_NE(holder, nullptr);
  uint64_t g = 0;
  ASSERT_TRUE(holder->WaitReady(&g));
  ASSERT_EQ(g, 1u);

  // Three publishes at retain=1 would normally bury generation 1; the
  // live holder's pin keeps it on disk AND servable.
  ASSERT_TRUE(graph.AddEdge(0, 8));
  for (uint64_t gen = 2; gen <= 4; ++gen) {
    ASSERT_TRUE((*pub)->Publish(SnapshotOf(graph), gen, 0).ok());
  }
  EXPECT_TRUE(fs->FileExists(dir + "/" + SnapshotArenaFileName(1)));
  ReaderProc::Answer a = holder->Query(0, 8);
  ASSERT_TRUE(a.ok);
  EXPECT_EQ(a.generation, 1u);
  EXPECT_EQ(a.dist, 8);  // pre-shortcut answer: generation 1 exactly

  // Once the holder adopts the current generation, the next GC finally
  // reclaims generation 1.
  EXPECT_EQ(holder->Refresh(), 4u);
  a = holder->Query(0, 8);
  ASSERT_TRUE(a.ok);
  EXPECT_EQ(a.generation, 4u);
  EXPECT_EQ(a.dist, 1);
  ASSERT_TRUE((*pub)->Publish(SnapshotOf(graph), 5, 0).ok());
  EXPECT_FALSE(fs->FileExists(dir + "/" + SnapshotArenaFileName(1)));
}

TEST(MultiprocessServing, WriterCrashRecoveryRepublishesExactGeneration) {
  const std::string state_dir = FreshDir("mp_crash_state");
  const std::string pub_dir = FreshDir("mp_crash_pub");
  Graph graph = GenerateErdosRenyi(30, 60, 5);
  Graph mirror = graph;  // ground-truth twin of the service's graph

  uint64_t published_gen = 0;
  uint64_t published_wal = 0;
  {
    DurabilityOptions dur;
    dur.dir = state_dir;
    dur.sync = WalSyncPolicy::kEveryWrite;
    auto service = SpcService::Open(graph, dur);
    ASSERT_TRUE(service.ok()) << service.status().ToString();
    std::vector<Update> updates;
    for (Vertex v = 0; v < 5; ++v) {
      const Vertex u = v;
      const Vertex w = static_cast<Vertex>(29 - v);
      if (u != w && !mirror.HasEdge(u, w)) {
        updates.push_back(Update::Insert(u, w));
        ASSERT_TRUE(mirror.AddEdge(u, w));
      }
    }
    ASSERT_FALSE(updates.empty());
    ASSERT_TRUE((*service)->ApplyUpdates(updates).ok());
    auto pub = SnapshotPublisher::Open(pub_dir);
    ASSERT_TRUE(pub.ok());
    ASSERT_TRUE((*service)->PublishSnapshot(pub->get()).ok());
    published_gen = (*pub)->CurrentGeneration();
    published_wal = (*pub)->CurrentWalSeq();
    ASSERT_GT(published_gen, 0u);
    // Writer "dies" here: the service and publisher handles drop; the
    // WAL (kEveryWrite) already holds everything the arena reflects.
  }

  // A reader that arrived while the writer is down still serves.
  auto reader = ReaderProc::Spawn(pub_dir, {"--owner=mp-crash-r"});
  ASSERT_NE(reader, nullptr);
  uint64_t g = 0;
  ASSERT_TRUE(reader->WaitReady(&g));
  EXPECT_EQ(g, published_gen);
  ExpectReaderMatchesBiBfs(reader.get(), mirror, published_gen);
  uint64_t adopted = 0, publisher_gen = 0, wal_seq = 0;
  ASSERT_TRUE(reader->Gen(&adopted, &publisher_gen, &wal_seq));
  EXPECT_EQ(wal_seq, published_wal);

  // The writer recovers to the EXACT generation it had published...
  DurabilityOptions dur;
  dur.dir = state_dir;
  dur.sync = WalSyncPolicy::kEveryWrite;
  auto recovered = SpcService::Open(Graph(), dur);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ((*recovered)->Generation(), published_gen);

  // ...republishes it (allowed: same generation, atomic), and moves on.
  auto pub = SnapshotPublisher::Open(pub_dir);
  ASSERT_TRUE(pub.ok());
  EXPECT_EQ((*pub)->CurrentGeneration(), published_gen);
  ASSERT_TRUE((*recovered)->PublishSnapshot(pub->get()).ok());
  EXPECT_EQ((*pub)->CurrentGeneration(), published_gen);
  EXPECT_EQ(reader->Refresh(), published_gen);  // no-op adoption

  // Post-recovery writes reach readers as a strictly newer generation.
  Vertex nu = kInvalidVertex, nv = kInvalidVertex;
  for (Vertex u = 0; u < 30 && nu == kInvalidVertex; ++u) {
    for (Vertex v = static_cast<Vertex>(u + 1); v < 30; ++v) {
      if (!mirror.HasEdge(u, v)) {
        nu = u;
        nv = v;
        break;
      }
    }
  }
  ASSERT_NE(nu, kInvalidVertex);
  ASSERT_TRUE(mirror.AddEdge(nu, nv));
  ASSERT_TRUE((*recovered)->InsertEdge(nu, nv).ok());
  ASSERT_TRUE((*recovered)->PublishSnapshot(pub->get()).ok());
  const uint64_t gen_after = (*pub)->CurrentGeneration();
  ASSERT_GT(gen_after, published_gen);
  const ReaderProc::Answer a =
      reader->QueryBounded(/*max_lag=*/0, /*min_gen=*/gen_after, nu, nv);
  ASSERT_TRUE(a.ok);
  EXPECT_EQ(a.generation, gen_after);
  EXPECT_EQ(a.dist, 1);
  ExpectReaderMatchesBiBfs(reader.get(), mirror, gen_after);
}

}  // namespace
}  // namespace dspc
