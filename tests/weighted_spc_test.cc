// Weighted DSPC (Appendix C.2): Dijkstra-based build, weighted queries,
// insertion/deletion and weight increase/decrease maintenance, verified
// against Dijkstra-with-counting ground truth.

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "dspc/baseline/dijkstra_counting.h"
#include "dspc/common/rng.h"
#include "dspc/core/weighted_spc.h"
#include "dspc/graph/generators.h"

namespace dspc {
namespace {

void ExpectMatchesDijkstra(const WeightedGraph& g,
                           const DynamicWeightedSpcIndex& index,
                           const std::string& context = "") {
  for (Vertex s = 0; s < g.NumVertices(); ++s) {
    const SsspCounts truth = DijkstraCount(g, s);
    for (Vertex t = 0; t < g.NumVertices(); ++t) {
      const SpcResult got = index.Query(s, t);
      ASSERT_EQ(got.dist, truth.dist[t])
          << context << " dist mismatch s=" << s << " t=" << t;
      ASSERT_EQ(got.count, truth.count[t])
          << context << " count mismatch s=" << s << " t=" << t;
    }
  }
}

TEST(WeightedBuild, TriangleWithUnequalWeights) {
  WeightedGraph g(3);
  g.AddEdge(0, 1, 1);
  g.AddEdge(1, 2, 1);
  g.AddEdge(0, 2, 3);
  DynamicWeightedSpcIndex index(g);
  // 0->2: direct edge costs 3, the two-hop path costs 2.
  EXPECT_EQ(index.Query(0, 2).dist, 2u);
  EXPECT_EQ(index.Query(0, 2).count, 1u);
  ExpectMatchesDijkstra(g, index);
}

TEST(WeightedBuild, ParallelShortestPathsCounted) {
  // Two disjoint paths of equal total weight.
  WeightedGraph g(4);
  g.AddEdge(0, 1, 2);
  g.AddEdge(1, 3, 2);
  g.AddEdge(0, 2, 1);
  g.AddEdge(2, 3, 3);
  DynamicWeightedSpcIndex index(g);
  EXPECT_EQ(index.Query(0, 3).dist, 4u);
  EXPECT_EQ(index.Query(0, 3).count, 2u);
}

class WeightedBuildPropertyTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, uint64_t>> {};

TEST_P(WeightedBuildPropertyTest, MatchesDijkstra) {
  const auto [n, m, seed] = GetParam();
  const Graph base = GenerateErdosRenyi(n, m, seed);
  const WeightedGraph g = AttachRandomWeights(base, 1, 4, seed ^ 0x11u);
  DynamicWeightedSpcIndex index(g);
  ASSERT_TRUE(index.ValidateStructure().ok());
  ExpectMatchesDijkstra(g, index);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WeightedBuildPropertyTest,
    ::testing::Values(std::make_tuple(8, 14, 1), std::make_tuple(12, 24, 2),
                      std::make_tuple(16, 32, 3), std::make_tuple(20, 60, 4),
                      std::make_tuple(24, 48, 5), std::make_tuple(32, 80, 6),
                      std::make_tuple(15, 105, 7)));

class WeightedDynamicPropertyTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, uint64_t>> {};

TEST_P(WeightedDynamicPropertyTest, AllFourUpdateKindsStayExact) {
  const auto [n, m, seed] = GetParam();
  const Graph base = GenerateErdosRenyi(n, m, seed);
  WeightedGraph g = AttachRandomWeights(base, 1, 4, seed ^ 0x22u);
  DynamicWeightedSpcIndex index(std::move(g));
  Rng rng(seed ^ 0x33u);
  for (int step = 0; step < 28; ++step) {
    const double dice = rng.NextDouble();
    if (dice < 0.3) {
      // Insert a fresh edge.
      const auto u = static_cast<Vertex>(rng.NextBounded(n));
      const auto v = static_cast<Vertex>(rng.NextBounded(n));
      if (u != v && !index.graph().HasEdge(u, v)) {
        index.InsertEdge(u, v, static_cast<Weight>(1 + rng.NextBounded(4)));
      }
    } else if (dice < 0.55) {
      // Delete an existing edge.
      const auto edges = index.graph().Edges();
      if (edges.empty()) continue;
      const WeightedEdge e = edges[rng.NextBounded(edges.size())];
      index.RemoveEdge(e.u, e.v);
    } else if (dice < 0.8) {
      // Decrease a weight.
      const auto edges = index.graph().Edges();
      if (edges.empty()) continue;
      const WeightedEdge e = edges[rng.NextBounded(edges.size())];
      if (e.w > 1) {
        index.DecreaseWeight(e.u, e.v,
                             static_cast<Weight>(1 + rng.NextBounded(e.w - 1)));
      }
    } else {
      // Increase a weight.
      const auto edges = index.graph().Edges();
      if (edges.empty()) continue;
      const WeightedEdge e = edges[rng.NextBounded(edges.size())];
      index.IncreaseWeight(e.u, e.v,
                           static_cast<Weight>(e.w + 1 + rng.NextBounded(3)));
    }
    ASSERT_TRUE(index.ValidateStructure().ok()) << "step " << step;
    ExpectMatchesDijkstra(index.graph(), index,
                          "step " + std::to_string(step));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WeightedDynamicPropertyTest,
    ::testing::Values(std::make_tuple(8, 16, 1), std::make_tuple(12, 24, 2),
                      std::make_tuple(16, 36, 3), std::make_tuple(20, 44, 4),
                      std::make_tuple(24, 60, 5), std::make_tuple(30, 66, 6),
                      std::make_tuple(12, 60, 7), std::make_tuple(36, 80, 8)));

TEST(WeightedDynamic, DecreaseCreatingTie) {
  // 0-1-3 costs 4; decrease direct 0-3 from 9 to exactly 4: counts merge.
  WeightedGraph g(4);
  g.AddEdge(0, 1, 2);
  g.AddEdge(1, 3, 2);
  g.AddEdge(0, 3, 9);
  DynamicWeightedSpcIndex index(std::move(g));
  EXPECT_EQ(index.Query(0, 3).dist, 4u);
  EXPECT_EQ(index.Query(0, 3).count, 1u);
  const UpdateStats stats = index.DecreaseWeight(0, 3, 4);
  EXPECT_TRUE(stats.applied);
  EXPECT_EQ(index.Query(0, 3).dist, 4u);
  EXPECT_EQ(index.Query(0, 3).count, 2u);
  ExpectMatchesDijkstra(index.graph(), index);
}

TEST(WeightedDynamic, IncreasePushesPathsElsewhere) {
  WeightedGraph g(4);
  g.AddEdge(0, 1, 1);
  g.AddEdge(1, 3, 1);
  g.AddEdge(0, 2, 2);
  g.AddEdge(2, 3, 2);
  DynamicWeightedSpcIndex index(std::move(g));
  EXPECT_EQ(index.Query(0, 3).dist, 2u);
  index.IncreaseWeight(1, 3, 5);
  EXPECT_EQ(index.Query(0, 3).dist, 4u);
  EXPECT_EQ(index.Query(0, 3).count, 1u);
  ExpectMatchesDijkstra(index.graph(), index);
}

TEST(WeightedDynamic, DeletionDisconnects) {
  WeightedGraph g(3);
  g.AddEdge(0, 1, 2);
  g.AddEdge(1, 2, 3);
  DynamicWeightedSpcIndex index(std::move(g));
  index.RemoveEdge(1, 2);
  EXPECT_EQ(index.Query(0, 2).dist, kInfDistance);
  EXPECT_EQ(index.Query(0, 2).count, 0u);
  EXPECT_EQ(index.Query(2, 2).count, 1u);
}

TEST(WeightedDynamic, InvalidOperationsAreNoops) {
  WeightedGraph g(3);
  g.AddEdge(0, 1, 2);
  DynamicWeightedSpcIndex index(std::move(g));
  EXPECT_FALSE(index.InsertEdge(0, 1, 5).applied);    // duplicate
  EXPECT_FALSE(index.InsertEdge(1, 1, 1).applied);    // self loop
  EXPECT_FALSE(index.InsertEdge(0, 2, 0).applied);    // zero weight
  EXPECT_FALSE(index.DecreaseWeight(0, 1, 2).applied);  // not a decrease
  EXPECT_FALSE(index.DecreaseWeight(0, 1, 3).applied);  // increase via wrong API
  EXPECT_FALSE(index.IncreaseWeight(0, 1, 2).applied);  // not an increase
  EXPECT_FALSE(index.RemoveEdge(0, 2).applied);          // absent edge
  EXPECT_EQ(index.Query(0, 1).dist, 2u);
}

TEST(WeightedDynamic, VertexInsertion) {
  const Graph base = GenerateErdosRenyi(8, 14, 10);
  WeightedGraph g = AttachRandomWeights(base, 1, 3, 5);
  DynamicWeightedSpcIndex index(std::move(g));
  const Vertex v = index.AddVertex();
  EXPECT_EQ(index.Query(v, 0).dist, kInfDistance);
  index.InsertEdge(v, 2, 2);
  index.InsertEdge(v, 5, 1);
  ExpectMatchesDijkstra(index.graph(), index);
}

TEST(WeightedDynamic, UnitWeightsAgreeWithUnweighted) {
  // With all weights 1 the weighted index must agree with BFS semantics.
  const Graph base = GenerateBarabasiAlbert(20, 2, 12);
  WeightedGraph g = AttachRandomWeights(base, 1, 1, 1);
  DynamicWeightedSpcIndex index(std::move(g));
  ExpectMatchesDijkstra(index.graph(), index);
}

}  // namespace
}  // namespace dspc
