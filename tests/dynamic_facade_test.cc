// Tests for the DynamicSpcIndex facade features beyond single updates:
// batch application with inverse-pair cancellation, parallel batch
// queries, the §6 lazy rebuild policy, and index adoption.

#include <gtest/gtest.h>

#include <string>

#include "dspc/core/dynamic_spc.h"
#include "dspc/core/hp_spc.h"
#include "dspc/graph/generators.h"
#include "dspc/graph/update_stream.h"
#include "test_util.h"

namespace dspc {
namespace {

using testing::ExpectIndexMatchesBfs;
using testing::RandomGraph;

TEST(ApplyBatchTest, EquivalentToSequential) {
  Graph g = RandomGraph(20, 36, 1);
  DynamicSpcIndex batched(g);
  DynamicSpcIndex sequential(g);
  const std::vector<Update> stream = MakeHybridStream(g, 15, 5, 2);
  batched.ApplyBatch(stream);
  for (const Update& u : stream) sequential.Apply(u);
  EXPECT_EQ(batched.graph().Edges(), sequential.graph().Edges());
  ExpectIndexMatchesBfs(batched.graph(), batched.index(), "batched");
}

TEST(ApplyBatchTest, CancelsInverseUpdatePairs) {
  Graph g = RandomGraph(16, 30, 3);
  DynamicSpcIndex dyn(g);
  // Find a non-edge.
  Vertex u = 0;
  Vertex v = 0;
  [&] {
    for (u = 0; u < 16; ++u) {
      for (v = u + 1; v < 16; ++v) {
        if (!dyn.graph().HasEdge(u, v)) return;
      }
    }
  }();
  const std::vector<Update> batch = {Update::Insert(u, v),
                                     Update::Delete(u, v)};
  const UpdateStats stats = dyn.ApplyBatch(batch);
  // Fully cancelled: nothing was applied, the graph is unchanged.
  EXPECT_FALSE(stats.applied);
  EXPECT_FALSE(dyn.graph().HasEdge(u, v));
  ExpectIndexMatchesBfs(dyn.graph(), dyn.index());
}

TEST(ApplyBatchTest, InterleavedPairsKeepNetEffect) {
  Graph g(6);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  DynamicSpcIndex dyn(g);
  // I-D-I on the same edge nets out to one insert.
  const std::vector<Update> batch = {
      Update::Insert(3, 4), Update::Delete(3, 4), Update::Insert(3, 4),
      Update::Delete(0, 1), Update::Insert(0, 1)};  // delete+reinsert cancels
  dyn.ApplyBatch(batch);
  EXPECT_TRUE(dyn.graph().HasEdge(3, 4));
  EXPECT_TRUE(dyn.graph().HasEdge(0, 1));
  ExpectIndexMatchesBfs(dyn.graph(), dyn.index());
}

TEST(BatchQueryTest, ParallelMatchesSerial) {
  const Graph g = GenerateBarabasiAlbert(300, 2, 5);
  DynamicSpcIndex dyn(g);
  Rng rng(6);
  std::vector<std::pair<Vertex, Vertex>> pairs(500);
  for (auto& p : pairs) {
    p.first = static_cast<Vertex>(rng.NextBounded(300));
    p.second = static_cast<Vertex>(rng.NextBounded(300));
  }
  const auto serial = dyn.BatchQuery(pairs, 1);
  const auto parallel = dyn.BatchQuery(pairs, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "i=" << i;
  }
  // Spot check against direct queries.
  for (size_t i = 0; i < pairs.size(); i += 37) {
    EXPECT_EQ(serial[i], dyn.Query(pairs[i].first, pairs[i].second));
  }
}

// Regression: out-of-range vertex ids used to index past the label and
// shard arrays (UB). The core layer answers them as disconnected; the
// service layer (spc_service_test.cc) rejects them as kInvalidArgument.
TEST(BatchQueryTest, OutOfRangeVertexIdsAnswerDisconnected) {
  const Graph g = GenerateBarabasiAlbert(40, 2, 8);
  const size_t n = g.NumVertices();
  DynamicSpcIndex dyn(g);
  const auto oob = static_cast<Vertex>(n + 3);
  const SpcResult disconnected{kInfDistance, 0};

  EXPECT_EQ(dyn.Query(oob, 0), disconnected);
  EXPECT_EQ(dyn.Query(0, oob), disconnected);
  EXPECT_EQ(dyn.Query(oob, kInvalidVertex), disconnected);
  EXPECT_EQ(dyn.QueryLive(oob, 0), disconnected);

  // Mixed batches answer valid pairs exactly and invalid ones as
  // disconnected, on both the serial and the pool-parallel fallback.
  std::vector<std::pair<Vertex, Vertex>> pairs(200, {oob, 1});
  for (size_t i = 0; i < pairs.size(); i += 3) {
    pairs[i] = {static_cast<Vertex>(i % n), static_cast<Vertex>((i * 7) % n)};
  }
  for (const unsigned threads : {1u, 4u}) {
    const auto results = dyn.BatchQuery(pairs, threads);
    ASSERT_EQ(results.size(), pairs.size());
    for (size_t i = 0; i < pairs.size(); ++i) {
      const auto [s, t] = pairs[i];
      const SpcResult want = (s < n && t < n)
                                 ? dyn.Query(s, t)
                                 : disconnected;
      EXPECT_EQ(results[i], want) << "threads=" << threads << " i=" << i;
    }
  }

  // Updates never invalidate the guarantee.
  const Edge e = SampleNonEdges(dyn.graph(), 1, 4).at(0);
  ASSERT_TRUE(dyn.InsertEdge(e.u, e.v).applied);
  EXPECT_EQ(dyn.Query(oob, oob), disconnected);
}

TEST(BatchQueryTest, LiveFallbackUsesSharedPool) {
  // With snapshots disabled every batch takes the live path; exercising
  // it twice ensures the lazily-spawned ThreadPool is reused rather than
  // respawned, and answers stay exact.
  DynamicSpcOptions options;
  options.snapshot.enabled = false;
  const Graph g = GenerateBarabasiAlbert(200, 2, 12);
  DynamicSpcIndex dyn(g, options);
  Rng rng(13);
  std::vector<std::pair<Vertex, Vertex>> pairs(400);
  for (auto& p : pairs) {
    p.first = static_cast<Vertex>(rng.NextBounded(200));
    p.second = static_cast<Vertex>(rng.NextBounded(200));
  }
  const auto first = dyn.BatchQuery(pairs, 4);
  const auto second = dyn.BatchQuery(pairs, 4);
  ASSERT_EQ(first.size(), pairs.size());
  EXPECT_EQ(first, second);
  for (size_t i = 0; i < pairs.size(); i += 29) {
    EXPECT_EQ(first[i], dyn.Query(pairs[i].first, pairs[i].second));
  }
}

TEST(LazyRebuildTest, UpdateCountTriggerFires) {
  Graph g = RandomGraph(20, 40, 7);
  DynamicSpcOptions options;
  options.rebuild_after_updates = 5;
  DynamicSpcIndex dyn(std::move(g), options);
  Rng rng(8);
  size_t applied = 0;
  while (applied < 12) {
    const auto u = static_cast<Vertex>(rng.NextBounded(20));
    const auto v = static_cast<Vertex>(rng.NextBounded(20));
    if (u != v && !dyn.graph().HasEdge(u, v) && dyn.InsertEdge(u, v).applied) {
      ++applied;
    }
  }
  EXPECT_EQ(dyn.PolicyRebuilds(), 2u);  // fired at updates 5 and 10
  EXPECT_EQ(dyn.UpdatesSinceBuild(), 2u);
  ExpectIndexMatchesBfs(dyn.graph(), dyn.index());
}

TEST(LazyRebuildTest, GrowthTriggerFires) {
  // Start from a star (minimal index: two labels per leaf) and densify:
  // inserted labels grow the index until the growth trigger fires.
  Graph g = GenerateStar(30);
  DynamicSpcOptions options;
  options.rebuild_growth_factor = 1.5;
  DynamicSpcIndex dyn(std::move(g), options);
  Rng rng(9);
  for (int i = 0; i < 120; ++i) {
    const auto u = static_cast<Vertex>(rng.NextBounded(30));
    const auto v = static_cast<Vertex>(rng.NextBounded(30));
    if (u != v && !dyn.graph().HasEdge(u, v)) dyn.InsertEdge(u, v);
  }
  EXPECT_GE(dyn.PolicyRebuilds(), 1u);
  ExpectIndexMatchesBfs(dyn.graph(), dyn.index());
}

TEST(LazyRebuildTest, DisabledByDefault) {
  Graph g = RandomGraph(15, 25, 10);
  DynamicSpcIndex dyn(std::move(g));
  Rng rng(11);
  for (int i = 0; i < 30; ++i) {
    const auto u = static_cast<Vertex>(rng.NextBounded(15));
    const auto v = static_cast<Vertex>(rng.NextBounded(15));
    if (u != v && !dyn.graph().HasEdge(u, v)) dyn.InsertEdge(u, v);
  }
  EXPECT_EQ(dyn.PolicyRebuilds(), 0u);
}

TEST(AdoptIndexTest, LoadedIndexServesUpdates) {
  const Graph g = RandomGraph(22, 44, 12);
  const SpcIndex built = BuildSpcIndex(g);
  const std::string path = ::testing::TempDir() + "/dspc_adopt.index";
  ASSERT_TRUE(built.Save(path).ok());
  SpcIndex loaded;
  ASSERT_TRUE(SpcIndex::Load(path, &loaded).ok());

  DynamicSpcIndex dyn(g, std::move(loaded));
  dyn.InsertEdge(0, 21);
  dyn.RemoveEdge(dyn.graph().Edges().front().u,
                 dyn.graph().Edges().front().v);
  ExpectIndexMatchesBfs(dyn.graph(), dyn.index());
  std::remove(path.c_str());
}

TEST(FlatSnapshotTest, GenerationInvalidationAndLazyRebuild) {
  Graph g = RandomGraph(24, 50, 14);
  DynamicSpcOptions options;
  options.snapshot.rebuild_after_queries = 1;  // rebuild on first query
  DynamicSpcIndex dyn(g, options);

  // No snapshot yet; the first query builds it.
  EXPECT_FALSE(dyn.SnapshotFresh());
  EXPECT_EQ(dyn.SnapshotRebuilds(), 0u);
  const SpcResult before = dyn.Query(0, 23);
  EXPECT_TRUE(dyn.SnapshotFresh());
  EXPECT_EQ(dyn.SnapshotRebuilds(), 1u);
  EXPECT_EQ(before, dyn.index().Query(0, 23));

  // Further queries ride the snapshot without rebuilding.
  dyn.Query(1, 2);
  dyn.Query(3, 4);
  EXPECT_EQ(dyn.SnapshotRebuilds(), 1u);

  // An applied update invalidates; the next query rebuilds and agrees
  // with ground truth.
  const Edge fresh = SampleNonEdges(dyn.graph(), 1, 99).at(0);
  const uint64_t gen = dyn.Generation();
  ASSERT_TRUE(dyn.InsertEdge(fresh.u, fresh.v).applied);
  EXPECT_GT(dyn.Generation(), gen);
  EXPECT_FALSE(dyn.SnapshotFresh());
  const SpcResult after = dyn.Query(fresh.u, fresh.v);
  EXPECT_EQ(dyn.SnapshotRebuilds(), 2u);
  EXPECT_EQ(after, (SpcResult{1, 1}));
  ExpectIndexMatchesBfs(dyn.graph(), dyn.index());

  // A rejected duplicate insert does not invalidate.
  dyn.InsertEdge(fresh.u, fresh.v);
  EXPECT_TRUE(dyn.SnapshotFresh());
}

TEST(FlatSnapshotTest, StaleQueryThresholdAmortizesRebuilds) {
  Graph g = RandomGraph(20, 40, 15);
  DynamicSpcOptions options;
  options.snapshot.rebuild_after_queries = 3;
  DynamicSpcIndex dyn(g, options);
  // Two stale queries stay on the mutable index (and answer correctly);
  // the third pays the refresh.
  const SsspCounts truth = BfsCount(dyn.graph(), 0);
  EXPECT_EQ(dyn.Query(0, 5).dist, truth.dist[5]);
  EXPECT_EQ(dyn.Query(0, 6).dist, truth.dist[6]);
  EXPECT_EQ(dyn.SnapshotRebuilds(), 0u);
  EXPECT_FALSE(dyn.SnapshotFresh());
  EXPECT_EQ(dyn.Query(0, 7).dist, truth.dist[7]);
  EXPECT_EQ(dyn.SnapshotRebuilds(), 1u);
  EXPECT_TRUE(dyn.SnapshotFresh());
}

TEST(FlatSnapshotTest, BatchQueryRefreshesOnceAndMatchesLegacy) {
  Graph g = RandomGraph(40, 90, 16);
  DynamicSpcIndex dyn(g);
  dyn.InsertEdge(0, 39);
  std::vector<std::pair<Vertex, Vertex>> pairs;
  for (Vertex s = 0; s < 40; ++s) {
    for (Vertex t = 0; t < 40; t += 5) pairs.emplace_back(s, t);
  }
  const auto results = dyn.BatchQuery(pairs, 2);
  EXPECT_EQ(dyn.SnapshotRebuilds(), 1u);
  for (size_t i = 0; i < pairs.size(); ++i) {
    ASSERT_EQ(results[i], dyn.index().Query(pairs[i].first, pairs[i].second))
        << "pair " << i;
  }
  // A second batch on an unchanged graph reuses the snapshot.
  dyn.BatchQuery(pairs, 2);
  EXPECT_EQ(dyn.SnapshotRebuilds(), 1u);
}

TEST(FlatSnapshotTest, FlatSnapshotAccessorServesConcurrently) {
  Graph g = RandomGraph(30, 60, 17);
  DynamicSpcIndex dyn(g);
  const std::shared_ptr<const FlatSpcIndex> flat = dyn.FlatSnapshot();
  EXPECT_TRUE(dyn.SnapshotFresh());
  for (Vertex s = 0; s < 30; s += 3) {
    for (Vertex t = 0; t < 30; t += 3) {
      ASSERT_EQ(flat->Query(s, t), dyn.index().Query(s, t));
    }
  }
  // A held snapshot outlives later rebuilds: update, force a new
  // snapshot, and the old one still answers for its own generation.
  const SpcResult before = flat->Query(0, 29);
  const Edge fresh = SampleNonEdges(dyn.graph(), 1, 55).at(0);
  ASSERT_TRUE(dyn.InsertEdge(fresh.u, fresh.v).applied);
  const auto flat2 = dyn.FlatSnapshot();
  EXPECT_NE(flat.get(), flat2.get());
  EXPECT_EQ(flat->Query(0, 29), before);
}

TEST(FlatSnapshotTest, DisabledSnapshotStaysOnMutableIndex) {
  Graph g = RandomGraph(20, 40, 18);
  DynamicSpcOptions options;
  options.snapshot.enabled = false;
  DynamicSpcIndex dyn(g, options);
  const SsspCounts truth = BfsCount(dyn.graph(), 0);
  for (Vertex t = 0; t < 20; ++t) {
    ASSERT_EQ(dyn.Query(0, t).dist, truth.dist[t]);
  }
  dyn.BatchQuery({{0, 1}, {2, 3}});
  EXPECT_EQ(dyn.SnapshotRebuilds(), 0u);
}

TEST(ManualRebuildTest, ResetsCountersAndStaysExact) {
  Graph g = RandomGraph(18, 30, 13);
  DynamicSpcIndex dyn(std::move(g));
  dyn.InsertEdge(0, 17);
  EXPECT_EQ(dyn.UpdatesSinceBuild(), 1u);
  dyn.Rebuild();
  EXPECT_EQ(dyn.UpdatesSinceBuild(), 0u);
  ExpectIndexMatchesBfs(dyn.graph(), dyn.index());
  // Rebuild also compacts away redundant labels accumulated by IncSPC.
  const SpcIndex fresh = BuildSpcIndex(dyn.graph());
  EXPECT_EQ(dyn.index().SizeStats().total_entries,
            fresh.SizeStats().total_entries);
}

}  // namespace
}  // namespace dspc
