// Application layer: betweenness (vs Brandes) and friend recommendation.

#include <gtest/gtest.h>

#include <cmath>

#include "dspc/apps/betweenness.h"
#include "dspc/apps/recommendation.h"
#include "dspc/core/dynamic_spc.h"
#include "dspc/graph/generators.h"
#include "test_util.h"

namespace dspc {
namespace {

using testing::RandomGraph;

TEST(Brandes, PathGraphCenters) {
  // On a path 0-1-2-3-4: betweenness of vertex i is i*(n-1-i) pairs.
  const Graph g = GeneratePath(5);
  const std::vector<double> bc = BrandesBetweenness(g);
  EXPECT_DOUBLE_EQ(bc[0], 0.0);
  EXPECT_DOUBLE_EQ(bc[1], 3.0);
  EXPECT_DOUBLE_EQ(bc[2], 4.0);
  EXPECT_DOUBLE_EQ(bc[3], 3.0);
  EXPECT_DOUBLE_EQ(bc[4], 0.0);
}

TEST(Brandes, StarCenterTakesAll) {
  const Graph g = GenerateStar(6);
  const std::vector<double> bc = BrandesBetweenness(g);
  // Center mediates all C(5,2) = 10 pairs; leaves none.
  EXPECT_DOUBLE_EQ(bc[0], 10.0);
  for (Vertex v = 1; v < 6; ++v) EXPECT_DOUBLE_EQ(bc[v], 0.0);
}

TEST(Brandes, SplitDependencies) {
  // A 4-cycle: each pair of opposite vertices has two shortest paths, so
  // each mediator gets 0.5 per opposite pair.
  const Graph g = GenerateCycle(4);
  const std::vector<double> bc = BrandesBetweenness(g);
  for (Vertex v = 0; v < 4; ++v) EXPECT_DOUBLE_EQ(bc[v], 0.5);
}

TEST(IndexBetweenness, MatchesBrandesOnRandomGraphs) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    const Graph g = RandomGraph(18, 30, seed);
    const std::vector<double> brandes = BrandesBetweenness(g);
    DynamicSpcIndex index(g);
    for (Vertex v = 0; v < g.NumVertices(); ++v) {
      const double via_index = VertexBetweenness(index, v);
      EXPECT_NEAR(via_index, brandes[v], 1e-9)
          << "seed=" << seed << " v=" << v;
    }
  }
}

TEST(IndexBetweenness, StaysExactAcrossUpdates) {
  Graph g = RandomGraph(16, 28, 9);
  DynamicSpcIndex index(g);
  index.InsertEdge(0, 15);
  index.RemoveEdge(index.graph().Edges().front().u,
                   index.graph().Edges().front().v);
  const std::vector<double> brandes = BrandesBetweenness(index.graph());
  for (Vertex v = 0; v < index.graph().NumVertices(); ++v) {
    EXPECT_NEAR(VertexBetweenness(index, v), brandes[v], 1e-9);
  }
}

TEST(PairDependencyTest, EndpointsAndOffPathVertices) {
  const Graph g = GeneratePath(4);  // 0-1-2-3
  DynamicSpcIndex index(g);
  EXPECT_DOUBLE_EQ(PairDependency(index, 0, 3, 1), 1.0);
  EXPECT_DOUBLE_EQ(PairDependency(index, 0, 3, 2), 1.0);
  EXPECT_DOUBLE_EQ(PairDependency(index, 0, 3, 0), 0.0);  // endpoint
  EXPECT_DOUBLE_EQ(PairDependency(index, 0, 1, 3), 0.0);  // off path
}

TEST(GroupBetweennessTest, SingletonGroupMatchesVertexBetweenness) {
  const Graph g = RandomGraph(14, 24, 4);
  DynamicSpcIndex index(g);
  for (Vertex v = 0; v < g.NumVertices(); ++v) {
    EXPECT_NEAR(GroupBetweenness(g, index, {v}), VertexBetweenness(index, v),
                1e-9)
        << "v=" << v;
  }
}

TEST(GroupBetweennessTest, GroupDominatesItsMembers) {
  // delta_st(C) >= delta_st(v) for v in C, so group betweenness dominates
  // each member's betweenness.
  const Graph g = RandomGraph(14, 26, 5);
  DynamicSpcIndex index(g);
  const std::vector<Vertex> group = {2, 7};
  const double gb = GroupBetweenness(g, index, group);
  EXPECT_GE(gb + 1e-9, VertexBetweenness(index, 2));
  EXPECT_GE(gb + 1e-9, VertexBetweenness(index, 7));
}

TEST(GroupBetweennessTest, CutVertexPairTakesEverything) {
  // Barbell: 0-1-2 | 2-3 | 3-4-5. Group {2,3} intercepts every pair that
  // crosses the middle.
  Graph g(6);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(0, 2);
  g.AddEdge(2, 3);
  g.AddEdge(3, 4);
  g.AddEdge(4, 5);
  g.AddEdge(3, 5);
  DynamicSpcIndex index(g);
  // Pairs through {2,3}: (0,3),(0,4),(0,5),(1,3),(1,4),(1,5),(2,4),(2,5)
  // minus pairs with an endpoint in the group -> crossing pairs are
  // {0,1} x {4,5} fully mediated = 4.
  const double gb = GroupBetweenness(g, index, {2, 3});
  EXPECT_DOUBLE_EQ(gb, 4.0);
}

TEST(Recommendation, CountsCommonFriends) {
  // The paper's Figure 1: a-v2-c, a-v1-c, a-v4-c ... c has more shortest
  // paths to a than b does.
  Graph g(6);
  const Vertex a = 0, b = 1, c = 2, v1 = 3, v2 = 4, v4 = 5;
  g.AddEdge(a, v1);
  g.AddEdge(a, v2);
  g.AddEdge(a, v4);
  g.AddEdge(v1, c);
  g.AddEdge(v2, c);
  g.AddEdge(v4, c);
  g.AddEdge(v2, b);
  DynamicSpcIndex index(g);
  const auto recs = RecommendFriends(index, a, 5);
  ASSERT_FALSE(recs.empty());
  EXPECT_EQ(recs[0].candidate, c);
  EXPECT_EQ(recs[0].paths, 3u);  // three common friends
  EXPECT_EQ(recs[0].dist, 2u);
  // b is also a candidate but with a single common friend.
  bool found_b = false;
  for (const auto& r : recs) {
    if (r.candidate == b) {
      found_b = true;
      EXPECT_EQ(r.paths, 1u);
    }
  }
  EXPECT_TRUE(found_b);
}

TEST(Recommendation, ExcludesExistingFriendsAndSelf) {
  const Graph g = GenerateComplete(5);
  DynamicSpcIndex index(g);
  // In a complete graph there is nobody to recommend.
  EXPECT_TRUE(RecommendFriends(index, 0, 10).empty());
}

TEST(Recommendation, ReactsToUpdates) {
  Graph g(5);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  DynamicSpcIndex index(g);
  auto recs = RecommendFriends(index, 0, 3);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].candidate, 2u);
  // New common friend 3 strengthens the 0-2 tie.
  index.InsertEdge(0, 3);
  index.InsertEdge(3, 2);
  recs = RecommendFriends(index, 0, 3);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].paths, 2u);
  // Befriending 2 removes them from the candidate list.
  index.InsertEdge(0, 2);
  recs = RecommendFriends(index, 0, 3);
  for (const auto& r : recs) EXPECT_NE(r.candidate, 2u);
}

TEST(Recommendation, TopKTruncation) {
  const Graph g = GenerateStar(10);  // leaves all share the center
  DynamicSpcIndex index(g);
  const auto recs = RecommendFriends(index, 1, 3);
  EXPECT_EQ(recs.size(), 3u);
  for (const auto& r : recs) {
    EXPECT_EQ(r.dist, 2u);
    EXPECT_EQ(r.paths, 1u);
  }
}

}  // namespace
}  // namespace dspc
