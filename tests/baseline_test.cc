// Unit tests for the online baselines: BFS counting, bidirectional BFS
// counting, and Dijkstra counting. BFS itself is validated on closed-form
// fixtures; BiBFS and Dijkstra are cross-checked against it.

#include <gtest/gtest.h>

#include <tuple>

#include "dspc/baseline/bfs_counting.h"
#include "dspc/baseline/bibfs_counting.h"
#include "dspc/baseline/dijkstra_counting.h"
#include "dspc/graph/generators.h"
#include "test_util.h"

namespace dspc {
namespace {

using testing::RandomGraph;

// --- BFS fixtures with closed-form counts ------------------------------------

TEST(BfsCountTest, GridCountsAreBinomials) {
  // On an r x c grid, spc(corner, (i,j)) = C(i+j, i).
  const Graph g = GenerateGrid(4, 4);
  const SsspCounts res = BfsCount(g, 0);
  auto at = [&](size_t r, size_t c) { return res.count[r * 4 + c]; };
  EXPECT_EQ(at(0, 0), 1u);
  EXPECT_EQ(at(1, 1), 2u);
  EXPECT_EQ(at(2, 2), 6u);
  EXPECT_EQ(at(3, 3), 20u);
  EXPECT_EQ(at(2, 3), 10u);
  EXPECT_EQ(res.dist[15], 6u);
}

TEST(BfsCountTest, CompleteBipartiteCounts) {
  // In K_{a,b}, two left vertices have b shortest paths (via each right).
  const Graph g = GenerateCompleteBipartite(3, 5);
  const SsspCounts res = BfsCount(g, 0);
  EXPECT_EQ(res.dist[1], 2u);
  EXPECT_EQ(res.count[1], 5u);
  EXPECT_EQ(res.dist[3], 1u);
  EXPECT_EQ(res.count[3], 1u);
}

TEST(BfsCountTest, EvenCycleHasTwoPathsToAntipode) {
  const Graph g = GenerateCycle(8);
  const SsspCounts res = BfsCount(g, 0);
  EXPECT_EQ(res.dist[4], 4u);
  EXPECT_EQ(res.count[4], 2u);
  EXPECT_EQ(res.count[3], 1u);
}

TEST(BfsCountTest, DisconnectedIsInfZero) {
  Graph g(4);
  g.AddEdge(0, 1);
  const SsspCounts res = BfsCount(g, 0);
  EXPECT_EQ(res.dist[2], kInfDistance);
  EXPECT_EQ(res.count[2], 0u);
}

TEST(BfsCountPairTest, EarlyExitMatchesFull) {
  const Graph g = RandomGraph(40, 100, 3);
  for (Vertex s = 0; s < 10; ++s) {
    const SsspCounts full = BfsCount(g, s);
    for (Vertex t = 0; t < g.NumVertices(); ++t) {
      const SpcResult pair = BfsCountPair(g, s, t);
      EXPECT_EQ(pair.dist, full.dist[t]);
      EXPECT_EQ(pair.count, full.count[t]);
    }
  }
}

TEST(BfsCountTest, DirectedFollowsArcs) {
  Digraph g(3);
  g.AddArc(0, 1);
  g.AddArc(1, 2);
  const SsspCounts fwd = BfsCount(g, 0);
  EXPECT_EQ(fwd.dist[2], 2u);
  const SsspCounts rev = BfsCountReverse(g, 2);
  EXPECT_EQ(rev.dist[0], 2u);
  const SsspCounts back = BfsCount(g, 2);
  EXPECT_EQ(back.dist[0], kInfDistance);
  EXPECT_EQ(BfsCountPair(g, 0, 2).count, 1u);
}

// --- BiBFS vs BFS -------------------------------------------------------------

class BiBfsPropertyTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, uint64_t>> {};

TEST_P(BiBfsPropertyTest, AgreesWithBfsOnAllPairs) {
  const auto [n, m, seed] = GetParam();
  const Graph g = RandomGraph(n, m, seed);
  BiBfsCounter counter(g);
  for (Vertex s = 0; s < n; ++s) {
    const SsspCounts truth = BfsCount(g, s);
    for (Vertex t = 0; t < n; ++t) {
      const SpcResult got = counter.Query(s, t);
      ASSERT_EQ(got.dist, truth.dist[t]) << "s=" << s << " t=" << t;
      ASSERT_EQ(got.count, truth.count[t]) << "s=" << s << " t=" << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BiBfsPropertyTest,
    ::testing::Values(std::make_tuple(10, 15, 1), std::make_tuple(20, 40, 2),
                      std::make_tuple(30, 50, 3), std::make_tuple(30, 150, 4),
                      std::make_tuple(40, 60, 5), std::make_tuple(50, 120, 6),
                      std::make_tuple(25, 24, 7),  // sparse, near-tree
                      std::make_tuple(12, 66, 8)));  // complete

TEST(BiBfsTest, DisconnectedPairs) {
  Graph g(6);
  g.AddEdge(0, 1);
  g.AddEdge(2, 3);
  BiBfsCounter counter(g);
  EXPECT_EQ(counter.Query(0, 3).dist, kInfDistance);
  EXPECT_EQ(counter.Query(0, 3).count, 0u);
  EXPECT_EQ(counter.Query(4, 5).count, 0u);
}

TEST(BiBfsTest, TrivialQueries) {
  const Graph g = GeneratePath(3);
  BiBfsCounter counter(g);
  EXPECT_EQ(counter.Query(1, 1).dist, 0u);
  EXPECT_EQ(counter.Query(1, 1).count, 1u);
  EXPECT_EQ(counter.Query(0, 1).dist, 1u);
}

TEST(BiBfsTest, ScratchResetAcrossQueries) {
  // Many queries on one counter must not contaminate each other.
  const Graph g = RandomGraph(30, 60, 9);
  BiBfsCounter counter(g);
  const SpcResult first = counter.Query(0, 29);
  for (int i = 0; i < 50; ++i) {
    counter.Query(static_cast<Vertex>(i % 30),
                  static_cast<Vertex>((i * 7 + 3) % 30));
  }
  const SpcResult again = counter.Query(0, 29);
  EXPECT_EQ(first, again);
}

TEST(BiBfsTest, OneShotWrapper) {
  const Graph g = GenerateCycle(8);
  const SpcResult r = BiBfsCountPair(g, 0, 4);
  EXPECT_EQ(r.dist, 4u);
  EXPECT_EQ(r.count, 2u);
}

// --- Dijkstra ------------------------------------------------------------------

TEST(DijkstraTest, UnitWeightsAgreeWithBfs) {
  const Graph base = RandomGraph(30, 70, 10);
  const WeightedGraph g = AttachRandomWeights(base, 1, 1, 1);
  for (Vertex s = 0; s < 30; ++s) {
    const SsspCounts bfs = BfsCount(base, s);
    const SsspCounts dij = DijkstraCount(g, s);
    ASSERT_EQ(bfs.dist, dij.dist);
    ASSERT_EQ(bfs.count, dij.count);
  }
}

TEST(DijkstraTest, WeightedTieCounting) {
  WeightedGraph g(4);
  g.AddEdge(0, 1, 1);
  g.AddEdge(1, 3, 3);
  g.AddEdge(0, 2, 2);
  g.AddEdge(2, 3, 2);
  const SsspCounts res = DijkstraCount(g, 0);
  EXPECT_EQ(res.dist[3], 4u);
  EXPECT_EQ(res.count[3], 2u);
}

TEST(DijkstraTest, LongerHopCountCanWin) {
  WeightedGraph g(4);
  g.AddEdge(0, 3, 10);  // direct but heavy
  g.AddEdge(0, 1, 1);
  g.AddEdge(1, 2, 1);
  g.AddEdge(2, 3, 1);
  const SsspCounts res = DijkstraCount(g, 0);
  EXPECT_EQ(res.dist[3], 3u);
  EXPECT_EQ(res.count[3], 1u);
}

TEST(DijkstraTest, PairEarlyExit) {
  const Graph base = RandomGraph(25, 60, 11);
  const WeightedGraph g = AttachRandomWeights(base, 1, 5, 12);
  const SsspCounts full = DijkstraCount(g, 4);
  for (Vertex t = 0; t < 25; ++t) {
    const SpcResult pair = DijkstraCountPair(g, 4, t);
    EXPECT_EQ(pair.dist, full.dist[t]);
    EXPECT_EQ(pair.count, full.count[t]);
  }
}

}  // namespace
}  // namespace dspc
