// Unit tests for the common runtime: Status, Rng, SampleStats, the packed
// label codec, the CRC-framed binary I/O, and the shard-repack ThreadPool.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "dspc/common/binary_io.h"
#include "dspc/common/label_codec.h"
#include "dspc/common/rng.h"
#include "dspc/common/stats.h"
#include "dspc/common/status.h"
#include "dspc/common/stopwatch.h"
#include "dspc/common/thread_pool.h"

namespace dspc {
namespace {

// --- Status -----------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, CodesAndMessages) {
  const Status nf = Status::NotFound("missing thing");
  EXPECT_FALSE(nf.ok());
  EXPECT_TRUE(nf.IsNotFound());
  EXPECT_EQ(nf.ToString(), "NotFound: missing thing");

  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
  EXPECT_EQ(Status::Unavailable("busy").ToString(), "Unavailable: busy");
  EXPECT_TRUE(Status::DeadlineExceeded("x").IsDeadlineExceeded());
  EXPECT_FALSE(Status::DeadlineExceeded("x").ok());
  EXPECT_EQ(Status::DeadlineExceeded("too slow").ToString(),
            "DeadlineExceeded: too slow");
}

// --- StatusOr ---------------------------------------------------------------

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v.status().ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value_or(-1), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> e = Status::InvalidArgument("bad vertex");
  EXPECT_FALSE(e.ok());
  EXPECT_FALSE(static_cast<bool>(e));
  EXPECT_TRUE(e.status().IsInvalidArgument());
  EXPECT_EQ(e.status().message(), "bad vertex");
  EXPECT_EQ(e.value_or(-1), -1);
}

TEST(StatusOrTest, MovesValueOut) {
  StatusOr<std::vector<int>> v = std::vector<int>{1, 2, 3};
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->size(), 3u);
  const std::vector<int> moved = *std::move(v);
  EXPECT_EQ(moved, (std::vector<int>{1, 2, 3}));
}

TEST(StatusOrTest, WorksAsReturnType) {
  const auto divide = [](int a, int b) -> StatusOr<int> {
    if (b == 0) return Status::InvalidArgument("division by zero");
    return a / b;
  };
  EXPECT_EQ(divide(10, 2).value(), 5);
  EXPECT_TRUE(divide(1, 0).status().IsInvalidArgument());
}

// --- Rng --------------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
    const uint64_t r = rng.NextInRange(5, 9);
    EXPECT_GE(r, 5u);
    EXPECT_LE(r, 9u);
  }
}

TEST(RngTest, BoundedCoversAllResidues) {
  Rng rng(9);
  bool seen[10] = {};
  for (int i = 0; i < 2000; ++i) seen[rng.NextBounded(10)] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);  // uniform mean
}

// --- Stopwatch ----------------------------------------------------------------

TEST(StopwatchTest, MonotoneNonNegative) {
  Stopwatch sw;
  const double t1 = sw.ElapsedSeconds();
  const double t2 = sw.ElapsedSeconds();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
  EXPECT_NEAR(sw.ElapsedMillis(), sw.ElapsedSeconds() * 1e3,
              sw.ElapsedMillis());
}

// --- SampleStats --------------------------------------------------------------

TEST(SampleStatsTest, EmptyIsZero) {
  SampleStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.Mean(), 0.0);
  EXPECT_EQ(s.Median(), 0.0);
  EXPECT_EQ(s.Min(), 0.0);
  EXPECT_EQ(s.Max(), 0.0);
}

TEST(SampleStatsTest, BasicMoments) {
  SampleStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.Mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.Stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.Min(), 2.0);
  EXPECT_DOUBLE_EQ(s.Max(), 9.0);
}

TEST(SampleStatsTest, PercentilesInterpolate) {
  SampleStats s;
  for (int i = 1; i <= 5; ++i) s.Add(i);  // 1..5
  EXPECT_DOUBLE_EQ(s.Median(), 3.0);
  EXPECT_DOUBLE_EQ(s.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 5.0);
  EXPECT_DOUBLE_EQ(s.P25(), 2.0);
  EXPECT_DOUBLE_EQ(s.P75(), 4.0);
  EXPECT_DOUBLE_EQ(s.Percentile(62.5), 3.5);  // between 3 and 4
}

TEST(SampleStatsTest, PercentileCacheInvalidatedByAdd) {
  SampleStats s;
  s.Add(10.0);
  EXPECT_DOUBLE_EQ(s.Median(), 10.0);
  s.Add(20.0);
  EXPECT_DOUBLE_EQ(s.Median(), 15.0);
  s.Clear();
  EXPECT_EQ(s.count(), 0u);
}

TEST(LabelChangeTotalsTest, MeansPerUpdate) {
  LabelChangeTotals t;
  t.updates = 4;
  t.renew_count = 8;
  t.renew_dist = 2;
  t.inserted = 6;
  t.removed = 1;
  EXPECT_DOUBLE_EQ(t.MeanRenewCount(), 2.0);
  EXPECT_DOUBLE_EQ(t.MeanRenewDist(), 0.5);
  EXPECT_DOUBLE_EQ(t.MeanInserted(), 1.5);
  EXPECT_DOUBLE_EQ(t.MeanRemoved(), 0.25);
}

// --- Packed label codec -------------------------------------------------------

TEST(LabelCodecTest, RoundTrip) {
  const uint64_t w = PackLabel(12345, 678, 987654);
  const PackedLabelFields f = UnpackLabel(w);
  EXPECT_EQ(f.hub, 12345u);
  EXPECT_EQ(f.dist, 678u);
  EXPECT_EQ(f.count, 987654u);
}

TEST(LabelCodecTest, FieldBoundaries) {
  const PackedLabelFields f = UnpackLabel(
      PackLabel(static_cast<Rank>(kPackedHubMax),
                static_cast<Distance>(kPackedDistMax), kPackedCountMax));
  EXPECT_EQ(f.hub, kPackedHubMax);
  EXPECT_EQ(f.dist, kPackedDistMax);
  EXPECT_EQ(f.count, kPackedCountMax);
}

TEST(LabelCodecTest, SaturatesOutOfRange) {
  // A count beyond 29 bits saturates instead of corrupting neighbors.
  const PackedLabelFields f =
      UnpackLabel(PackLabel(1, 1, kPackedCountMax + 12345));
  EXPECT_EQ(f.hub, 1u);
  EXPECT_EQ(f.dist, 1u);
  EXPECT_EQ(f.count, kPackedCountMax);
}

TEST(LabelCodecTest, FitsPacked) {
  EXPECT_TRUE(FitsPacked(0, 0, 1));
  EXPECT_TRUE(FitsPacked(static_cast<Rank>(kPackedHubMax),
                         static_cast<Distance>(kPackedDistMax),
                         kPackedCountMax));
  EXPECT_FALSE(FitsPacked(static_cast<Rank>(kPackedHubMax + 1), 0, 1));
  EXPECT_FALSE(FitsPacked(0, static_cast<Distance>(kPackedDistMax + 1), 1));
  EXPECT_FALSE(FitsPacked(0, 0, kPackedCountMax + 1));
}

TEST(LabelCodecTest, ZeroFieldsDistinct) {
  // Different fields land in different bit ranges.
  EXPECT_NE(PackLabel(1, 0, 0), PackLabel(0, 1, 0));
  EXPECT_NE(PackLabel(0, 1, 0), PackLabel(0, 0, 1));
}

TEST(LabelCodecTest, FitsFlatInlineReservesOverflowMark) {
  // The flat arena reserves dist == kPackedDistMax as the overflow
  // marker, so the inline predicate is strictly tighter than FitsPacked
  // on exactly that boundary.
  EXPECT_TRUE(FitsFlatInline(0, 0, 1));
  EXPECT_TRUE(FitsFlatInline(static_cast<Rank>(kPackedHubMax),
                             static_cast<Distance>(kPackedDistMax - 1),
                             kPackedCountMax));
  EXPECT_FALSE(FitsFlatInline(0, static_cast<Distance>(kPackedDistMax), 1));
  EXPECT_TRUE(FitsPacked(0, static_cast<Distance>(kPackedDistMax), 1));
  EXPECT_FALSE(FitsFlatInline(static_cast<Rank>(kPackedHubMax + 1), 0, 1));
  EXPECT_FALSE(FitsFlatInline(0, 0, kPackedCountMax + 1));
}

TEST(LabelCodecTest, FlatOverflowRefRoundTrip) {
  const Rank hub = static_cast<Rank>(kPackedHubMax - 3);
  const uint64_t slot = kPackedCountMax - 7;
  const uint64_t word = PackFlatOverflowRef(hub, slot);
  EXPECT_TRUE(IsFlatOverflowRef(word));
  EXPECT_EQ(FlatHub(word), hub);
  EXPECT_EQ(FlatOverflowSlot(word), slot);
  // Any inline-packable word is not mistaken for an overflow reference,
  // and its hub decodes through the same accessor.
  const uint64_t inline_word =
      PackLabel(42, static_cast<Distance>(kPackedDistMax - 1), 9);
  EXPECT_FALSE(IsFlatOverflowRef(inline_word));
  EXPECT_EQ(FlatHub(inline_word), 42u);
}

// --- Binary I/O ----------------------------------------------------------------

TEST(Crc32Test, KnownVector) {
  // CRC32("123456789") = 0xCBF43926 (IEEE).
  const char data[] = "123456789";
  EXPECT_EQ(Crc32(data, 9), 0xCBF43926u);
}

TEST(Crc32Test, EmptyIsZero) { EXPECT_EQ(Crc32(nullptr, 0), 0u); }

TEST(BinaryIoTest, WriterReaderRoundTrip) {
  const std::string path = ::testing::TempDir() + "/dspc_binio_test.bin";
  BinaryWriter w;
  w.PutU8(7);
  w.PutU32(0xDEADBEEF);
  w.PutU64(0x0123456789ABCDEFULL);
  w.PutString("hub labeling");
  ASSERT_TRUE(w.WriteToFile(path).ok());

  BinaryReader r({});
  ASSERT_TRUE(BinaryReader::ReadFromFile(path, &r).ok());
  EXPECT_EQ(r.GetU8(), 7u);
  EXPECT_EQ(r.GetU32(), 0xDEADBEEFu);
  EXPECT_EQ(r.GetU64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.GetString(), "hub labeling");
  EXPECT_TRUE(r.AtEnd());
  std::remove(path.c_str());
}

TEST(BinaryIoTest, CorruptionDetected) {
  const std::string path = ::testing::TempDir() + "/dspc_binio_corrupt.bin";
  BinaryWriter w;
  w.PutU64(42);
  ASSERT_TRUE(w.WriteToFile(path).ok());
  // Flip one payload byte on disk.
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_SET);
  std::fputc(0xFF, f);
  std::fclose(f);
  BinaryReader r({});
  const Status s = BinaryReader::ReadFromFile(path, &r);
  EXPECT_TRUE(s.IsCorruption());
  std::remove(path.c_str());
}

TEST(BinaryIoTest, MissingFileIsIOError) {
  BinaryReader r({});
  EXPECT_TRUE(
      BinaryReader::ReadFromFile("/nonexistent/definitely_absent", &r)
          .IsIOError());
}

TEST(BinaryIoTest, OverrunFlagsFailure) {
  BinaryReader r(std::vector<uint8_t>{1, 2});
  r.GetU32();  // needs 4 bytes, only 2 present
  EXPECT_FALSE(r.status().ok());
  EXPECT_FALSE(r.AtEnd());
}

TEST(BinaryIoTest, BulkArrayRoundTrip) {
  const std::vector<uint32_t> u32s = {0, 1, 0xDEADBEEF, 0xFFFFFFFF};
  const std::vector<uint64_t> u64s = {0, 42, 0x0123456789ABCDEFULL,
                                      ~0ULL};
  BinaryWriter w;
  w.PutU32Array(u32s.data(), u32s.size());
  w.PutU64Array(u64s.data(), u64s.size());
  // Bulk writes are bit-identical to the scalar encoders.
  BinaryWriter scalar;
  for (const uint32_t v : u32s) scalar.PutU32(v);
  for (const uint64_t v : u64s) scalar.PutU64(v);
  EXPECT_EQ(w.buffer(), scalar.buffer());

  BinaryReader r(w.buffer());
  std::vector<uint32_t> got32(u32s.size());
  std::vector<uint64_t> got64(u64s.size());
  ASSERT_TRUE(r.GetU32Array(got32.data(), got32.size()));
  ASSERT_TRUE(r.GetU64Array(got64.data(), got64.size()));
  EXPECT_EQ(got32, u32s);
  EXPECT_EQ(got64, u64s);
  EXPECT_TRUE(r.AtEnd());
}

TEST(BinaryIoTest, BulkArrayOverrunFails) {
  BinaryReader r(std::vector<uint8_t>(12, 0));
  uint64_t out[2];
  EXPECT_FALSE(r.GetU64Array(out, 2));  // needs 16 bytes, only 12
  EXPECT_FALSE(r.status().ok());
  // A huge count must fail cleanly instead of overflowing the size math.
  BinaryReader r2(std::vector<uint8_t>(8, 0));
  EXPECT_FALSE(r2.GetU64Array(out, ~size_t{0} / 2));
}

// --- ThreadPool -------------------------------------------------------------

TEST(ThreadPoolTest, ParallelForVisitsEveryIndexExactlyOnce) {
  for (const unsigned threads : {1u, 2u, 4u}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.size(), threads);
    for (const size_t n : {size_t{0}, size_t{1}, size_t{3}, size_t{1000}}) {
      std::vector<std::atomic<int>> hits(n);
      pool.ParallelFor(n, [&](size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
      });
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(hits[i].load(), 1) << "threads=" << threads << " i=" << i;
      }
    }
  }
}

TEST(ThreadPoolTest, RegionsReuseWorkersBackToBack) {
  ThreadPool pool(3);
  std::atomic<size_t> total{0};
  for (int region = 0; region < 50; ++region) {
    pool.ParallelFor(17, [&](size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 50u * 17u);
}

TEST(ThreadPoolTest, ExceptionDrainsRegionAndRethrows) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(1000,
                                [&](size_t i) {
                                  if (i == 3) throw std::runtime_error("boom");
                                }),
               std::runtime_error);
  // The rendezvous completed and the pool stays usable afterwards.
  std::atomic<size_t> after{0};
  pool.ParallelFor(64, [&](size_t) {
    after.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(after.load(), 64u);
}

}  // namespace
}  // namespace dspc
