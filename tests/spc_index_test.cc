// Unit tests for the SPC-Index container itself: query semantics,
// PreQuery, label mutation, hub occurrences, validation, serialization,
// and the HubCache.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "dspc/common/binary_io.h"
#include "dspc/common/label_codec.h"
#include "dspc/core/hp_spc.h"
#include "dspc/core/spc_index.h"
#include "dspc/graph/generators.h"
#include "test_util.h"

namespace dspc {
namespace {

using testing::ExpectIndexMatchesBfs;
using testing::RandomGraph;

VertexOrdering IdentityOrdering(size_t n) {
  OrderingOptions options;
  options.strategy = OrderingStrategy::kIdentity;
  return BuildOrderingFromDegrees(std::vector<size_t>(n, 0), options);
}

TEST(SpcIndexTest, FreshIndexHasSelfLabelsOnly) {
  SpcIndex index(IdentityOrdering(4));
  for (Vertex v = 0; v < 4; ++v) {
    ASSERT_EQ(index.Labels(v).size(), 1u);
    EXPECT_EQ(index.Labels(v)[0], (LabelEntry{v, 0, 1}));
    EXPECT_EQ(index.Query(v, v).dist, 0u);
    EXPECT_EQ(index.Query(v, v).count, 1u);
  }
  EXPECT_TRUE(index.ValidateStructure().ok());
}

TEST(SpcIndexTest, QueryPicksMinimumDistanceHubs) {
  SpcIndex index(IdentityOrdering(3));
  // Hub 0 covers pair (1,2) at distance 2+2, count 3*4; a second hub 1
  // at total distance 3 must win.
  index.InsertLabel(1, LabelEntry{0, 2, 3});
  index.InsertLabel(2, LabelEntry{0, 2, 4});
  index.InsertLabel(2, LabelEntry{1, 3, 5});
  EXPECT_EQ(index.Query(1, 2).dist, 3u);
  EXPECT_EQ(index.Query(1, 2).count, 5u);  // via hub 1 (self in L(1))
}

TEST(SpcIndexTest, QueryAccumulatesTies) {
  SpcIndex index(IdentityOrdering(4));
  index.InsertLabel(2, LabelEntry{0, 1, 2});
  index.InsertLabel(3, LabelEntry{0, 1, 3});
  index.InsertLabel(2, LabelEntry{1, 1, 5});
  index.InsertLabel(3, LabelEntry{1, 1, 7});
  // Both hubs give distance 2: counts 2*3 + 5*7 = 41.
  EXPECT_EQ(index.Query(2, 3).dist, 2u);
  EXPECT_EQ(index.Query(2, 3).count, 41u);
}

TEST(SpcIndexTest, PreQueryExcludesSelfAndLower) {
  SpcIndex index(IdentityOrdering(4));
  index.InsertLabel(2, LabelEntry{0, 1, 1});
  index.InsertLabel(3, LabelEntry{0, 1, 1});
  index.InsertLabel(3, LabelEntry{2, 1, 1});
  // Query(2,3) can use hub 2 itself: distance 1.
  EXPECT_EQ(index.Query(2, 3).dist, 1u);
  // PreQuery(2,3) may only use hubs ranked above 2: hub 0 gives 2.
  EXPECT_EQ(index.PreQuery(2, 3).dist, 2u);
}

TEST(SpcIndexTest, DisconnectedQuery) {
  SpcIndex index(IdentityOrdering(2));
  EXPECT_EQ(index.Query(0, 1).dist, kInfDistance);
  EXPECT_EQ(index.Query(0, 1).count, 0u);
}

TEST(SpcIndexTest, FindInsertRemoveLabel) {
  SpcIndex index(IdentityOrdering(3));
  EXPECT_EQ(index.FindLabel(2, 0), nullptr);
  index.InsertLabel(2, LabelEntry{0, 5, 7});
  LabelEntry* e = index.FindLabel(2, 0);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->dist, 5u);
  e->count = 9;  // in-place mutation is allowed
  EXPECT_EQ(index.FindLabel(2, 0)->count, 9u);
  EXPECT_TRUE(index.RemoveLabel(2, 0));
  EXPECT_FALSE(index.RemoveLabel(2, 0));
  EXPECT_TRUE(index.ValidateStructure().ok());
}

TEST(SpcIndexTest, LabelsKeptSortedByHub) {
  SpcIndex index(IdentityOrdering(5));
  index.InsertLabel(4, LabelEntry{2, 1, 1});
  index.InsertLabel(4, LabelEntry{0, 1, 1});
  index.InsertLabel(4, LabelEntry{3, 1, 1});
  const LabelSet& set = index.Labels(4);
  ASSERT_EQ(set.size(), 4u);
  EXPECT_EQ(set[0].hub, 0u);
  EXPECT_EQ(set[1].hub, 2u);
  EXPECT_EQ(set[2].hub, 3u);
  EXPECT_EQ(set[3].hub, 4u);  // self label last
}

TEST(SpcIndexTest, HubOccurrencesTracked) {
  SpcIndex index(IdentityOrdering(4));
  EXPECT_EQ(index.HubOccurrences(0), 0u);  // self labels don't count
  index.InsertLabel(1, LabelEntry{0, 1, 1});
  index.InsertLabel(2, LabelEntry{0, 1, 1});
  index.InsertLabel(2, LabelEntry{1, 1, 1});
  EXPECT_EQ(index.HubOccurrences(0), 2u);
  EXPECT_EQ(index.HubOccurrences(1), 1u);
  index.RemoveLabel(1, 0);
  EXPECT_EQ(index.HubOccurrences(0), 1u);
  EXPECT_EQ(index.ClearToSelfLabel(2), 2u);
  EXPECT_EQ(index.HubOccurrences(0), 0u);
  EXPECT_EQ(index.HubOccurrences(1), 0u);
}

TEST(SpcIndexTest, AddVertexGetsLowestRankAndSelfLabel) {
  SpcIndex index(IdentityOrdering(3));
  const Vertex v = index.AddVertex();
  EXPECT_EQ(v, 3u);
  EXPECT_EQ(index.RankOf(v), 3u);
  EXPECT_EQ(index.Labels(v).size(), 1u);
  EXPECT_TRUE(index.ValidateStructure().ok());
}

TEST(SpcIndexTest, ValidateCatchesViolations) {
  {
    SpcIndex index(IdentityOrdering(3));
    index.InsertLabel(1, LabelEntry{2, 1, 1});  // hub outranked by owner
    EXPECT_FALSE(index.ValidateStructure().ok());
  }
  {
    SpcIndex index(IdentityOrdering(3));
    index.InsertLabel(2, LabelEntry{0, 1, 0});  // zero count
    EXPECT_FALSE(index.ValidateStructure().ok());
  }
  {
    SpcIndex index(IdentityOrdering(3));
    index.RemoveLabel(1, 1);  // strip the self label
    EXPECT_FALSE(index.ValidateStructure().ok());
  }
}

TEST(SpcIndexTest, SizeStats) {
  const Graph g = RandomGraph(20, 40, 3);
  const SpcIndex index = BuildSpcIndex(g);
  const IndexSizeStats stats = index.SizeStats();
  EXPECT_EQ(stats.num_vertices, 20u);
  EXPECT_GE(stats.total_entries, 20u);  // at least the self labels
  EXPECT_GE(stats.max_label_size, 1u);
  EXPECT_DOUBLE_EQ(stats.avg_label_size,
                   static_cast<double>(stats.total_entries) / 20.0);
  EXPECT_EQ(stats.wide_bytes, stats.total_entries * sizeof(LabelEntry));
  EXPECT_EQ(stats.overflow_entries, 0u);  // tiny graph: everything packs
  EXPECT_EQ(stats.packed_bytes, stats.total_entries * 8);
}

TEST(SpcIndexTest, SizeStatsCountsOverflowSideTable) {
  // Entries exceeding the packed budgets cost an arena word plus a wide
  // side-table record; packed_bytes must account for both.
  SpcIndex index(IdentityOrdering(3));
  index.InsertLabel(1, LabelEntry{0, 1, kPackedCountMax + 1});
  index.InsertLabel(2, LabelEntry{0, static_cast<Distance>(kPackedDistMax), 1});
  const IndexSizeStats stats = index.SizeStats();
  EXPECT_EQ(stats.total_entries, 5u);
  EXPECT_EQ(stats.overflow_entries, 2u);
  EXPECT_EQ(stats.packed_bytes, 5 * 8 + 2 * sizeof(LabelEntry));
}

TEST(SpcIndexSerialization, RoundTripPreservesEverything) {
  const Graph g = RandomGraph(25, 60, 5);
  const SpcIndex index = BuildSpcIndex(g);
  const std::string path = ::testing::TempDir() + "/dspc_index.bin";
  ASSERT_TRUE(index.Save(path).ok());
  SpcIndex loaded;
  ASSERT_TRUE(SpcIndex::Load(path, &loaded).ok());
  EXPECT_TRUE(loaded == index);
  ExpectIndexMatchesBfs(g, loaded, "loaded index");
  std::remove(path.c_str());
}

TEST(SpcIndexSerialization, WideEntriesSurviveRoundTrip) {
  // A count beyond the 29-bit packed field must use the wide encoding.
  SpcIndex index(IdentityOrdering(2));
  index.InsertLabel(1, LabelEntry{0, 3, (1ULL << 40) + 17});
  const std::string path = ::testing::TempDir() + "/dspc_index_wide.bin";
  ASSERT_TRUE(index.Save(path).ok());
  SpcIndex loaded;
  ASSERT_TRUE(SpcIndex::Load(path, &loaded).ok());
  ASSERT_NE(loaded.FindLabel(1, 0), nullptr);
  EXPECT_EQ(loaded.FindLabel(1, 0)->count, (1ULL << 40) + 17);
  std::remove(path.c_str());
}

TEST(SpcIndexSerialization, LoadRejectsGarbage) {
  const std::string path = ::testing::TempDir() + "/dspc_index_bad.bin";
  BinaryWriter w;
  w.PutU32(0x0BADF00D);
  ASSERT_TRUE(w.WriteToFile(path).ok());
  SpcIndex loaded;
  EXPECT_TRUE(SpcIndex::Load(path, &loaded).IsCorruption());
  std::remove(path.c_str());
}

// --- HubCache -------------------------------------------------------------------

TEST(HubCacheTest, QueryEquivalentToIndexQuery) {
  const Graph g = RandomGraph(30, 70, 8);
  const SpcIndex index = BuildSpcIndex(g);
  HubCache cache(g.NumVertices());
  for (Vertex h = 0; h < 10; ++h) {
    cache.Load(index.Labels(h));
    for (Vertex v = 0; v < g.NumVertices(); ++v) {
      const SpcResult expect = index.Query(h, v);
      const SpcResult got = cache.Query(index.Labels(v));
      ASSERT_EQ(got.dist, expect.dist) << "h=" << h << " v=" << v;
      ASSERT_EQ(got.count, expect.count) << "h=" << h << " v=" << v;
    }
  }
}

TEST(HubCacheTest, PreQueryEquivalentToIndexPreQuery) {
  const Graph g = RandomGraph(30, 70, 9);
  const SpcIndex index = BuildSpcIndex(g);
  HubCache cache(g.NumVertices());
  for (Vertex h = 0; h < g.NumVertices(); ++h) {
    cache.Load(index.Labels(h));
    const Rank rank_h = index.RankOf(h);
    for (Vertex v = 0; v < g.NumVertices(); ++v) {
      const SpcResult expect = index.PreQuery(h, v);
      const SpcResult got = cache.PreQuery(index.Labels(v), rank_h);
      ASSERT_EQ(got.dist, expect.dist) << "h=" << h << " v=" << v;
      ASSERT_EQ(got.count, expect.count) << "h=" << h << " v=" << v;
    }
  }
}

TEST(HubCacheTest, ReloadClearsPreviousHub) {
  SpcIndex index(IdentityOrdering(3));
  index.InsertLabel(2, LabelEntry{0, 1, 1});
  index.InsertLabel(2, LabelEntry{1, 1, 1});
  HubCache cache(3);
  cache.Load(index.Labels(0));
  EXPECT_EQ(cache.DistOf(0), 0u);
  cache.Load(index.Labels(1));
  // Hub 0's residue must be gone: L(1) = {(1,0,1)} only.
  EXPECT_EQ(cache.DistOf(0), kInfDistance);
  EXPECT_EQ(cache.DistOf(1), 0u);
}

}  // namespace
}  // namespace dspc
