// Replication suite (DESIGN.md §13): WAL shipping from a durable primary
// through a Transport to hot-standby replicas, in recovery_test.cc's
// style — deterministic workloads whose acknowledgment log is the ground
// truth, fault matrices that enumerate every distinct failure instant,
// and bit-for-bit answer checks against BiBFS on the mirror graph at
// exactly the generation each service reports.
//
// Three matrices:
//   - transport faults: every transport operation index × a rotating
//     fault (drop / duplicate / truncate / delay / disconnect); primary
//     and replica must retry their way to exact convergence;
//   - filesystem crashes: FaultInjectingEnv kills the primary mid-write;
//     the surviving store is drained and a replica PROMOTES to a
//     writable primary at exactly the last durably-acked generation;
//   - chaos fuzz: random transient faults on every operation.
//
// Registered under `ctest -L stress`.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "dspc/api/replica_service.h"
#include "dspc/api/spc_service.h"
#include "dspc/baseline/bibfs_counting.h"
#include "dspc/common/binary_io.h"
#include "dspc/common/rng.h"
#include "dspc/graph/generators.h"
#include "dspc/persist/env.h"
#include "dspc/persist/replication.h"
#include "dspc/persist/wal.h"

namespace dspc {
namespace {

std::string FreshDir(const std::string& name) {
  FileSystem* fs = FileSystem::Default();
  const std::string dir = ::testing::TempDir() + "/" + name;
  (void)fs->CreateDir(dir);
  auto names = fs->ListDir(dir);
  if (names.ok()) {
    for (const std::string& f : *names) (void)fs->RemoveFile(dir + "/" + f);
  }
  return dir;
}

// Ground truth the shipped stream must reproduce (recovery_test.cc's
// mirror, duplicated locally: test helpers stay file-private).
struct MirrorState {
  size_t n = 0;
  std::set<std::pair<Vertex, Vertex>> edges;

  Graph ToGraph() const {
    std::vector<Edge> list;
    list.reserve(edges.size());
    for (const auto& [u, v] : edges) list.push_back(Edge{u, v});
    return Graph(n, list);
  }
  void Insert(Vertex u, Vertex v) {
    if (u > v) std::swap(u, v);
    edges.insert({u, v});
  }
  void Remove(Vertex u, Vertex v) {
    if (u > v) std::swap(u, v);
    edges.erase({u, v});
  }
  void RemoveVertexEdges(Vertex v) {
    for (auto it = edges.begin(); it != edges.end();) {
      it = (it->first == v || it->second == v) ? edges.erase(it) : ++it;
    }
  }
};

MirrorState MirrorOf(const Graph& g) {
  MirrorState state;
  state.n = g.NumVertices();
  for (const Edge& e : g.Edges()) state.edges.insert({e.u, e.v});
  return state;
}

struct WorkloadLog {
  std::map<uint64_t, MirrorState> acked;  // generation -> state
  uint64_t last_acked_generation = 0;
};

// The scripted durable workload (kEveryWrite; checkpoints at steps 8 and
// 16). `pump`, when set, runs after every acknowledged write — the hook
// the replication tests use to ship/apply incrementally. Returns false
// once a call fails (a simulated crash tripped); `acked` then holds
// exactly the durable prefix.
bool RunWorkload(SpcService* service, uint64_t seed, WorkloadLog* log,
                 const std::function<void()>& pump = {}) {
  MirrorState mirror = MirrorOf(service->engine().graph());
  log->last_acked_generation = service->Generation();
  log->acked[log->last_acked_generation] = mirror;

  const WriteOptions durable{.durable = true};
  Rng rng(seed);
  for (int step = 0; step < 24; ++step) {
    if (step == 8 || step == 16) {
      if (!service->Checkpoint().ok()) return false;
      if (pump) pump();
      continue;
    }
    const uint64_t dice = rng.NextBounded(10);
    if (dice == 0) {
      const AddVertexResponse resp = service->AddVertex(durable);
      if (resp.vertex == kInvalidVertex || !resp.token.durable) return false;
      mirror.n += 1;
      log->last_acked_generation = resp.token.generation;
      log->acked[resp.token.generation] = mirror;
      if (pump) pump();
      continue;
    }
    if (dice == 1 && mirror.n > 2) {
      const auto v = static_cast<Vertex>(rng.NextBounded(mirror.n));
      const auto resp = service->RemoveVertex(v, durable);
      if (!resp.ok() || !resp->token.durable) return false;
      mirror.RemoveVertexEdges(v);
      log->last_acked_generation = resp->token.generation;
      log->acked[resp->token.generation] = mirror;
      if (pump) pump();
      continue;
    }
    std::vector<Update> updates;
    const size_t count = 1 + rng.NextBounded(3);
    for (size_t i = 0; i < count; ++i) {
      auto u = static_cast<Vertex>(rng.NextBounded(mirror.n));
      auto v = static_cast<Vertex>(rng.NextBounded(mirror.n));
      if (u == v) v = (v + 1) % static_cast<Vertex>(mirror.n);
      updates.push_back(rng.NextBounded(2) ? Update::Insert(u, v)
                                           : Update::Delete(u, v));
    }
    const auto resp = service->ApplyUpdates(updates, durable);
    if (!resp.ok() || !resp->token.durable) return false;
    for (size_t i = 0; i < updates.size(); ++i) {
      if (resp->reports[i].outcome != WriteReport::Outcome::kApplied) {
        continue;
      }
      const Edge& e = updates[i].edge;
      if (updates[i].kind == Update::Kind::kInsert) {
        mirror.Insert(e.u, e.v);
      } else {
        mirror.Remove(e.u, e.v);
      }
    }
    log->last_acked_generation = resp->token.generation;
    log->acked[resp->token.generation] = mirror;
    if (pump) pump();
  }
  return true;
}

DurabilityOptions EveryWriteOptions(const std::string& dir,
                                    FileSystem* fs = nullptr) {
  DurabilityOptions durability;
  durability.dir = dir;
  durability.sync = WalSyncPolicy::kEveryWrite;
  durability.checkpoint_wal_bytes = 0;  // explicit Checkpoint() only:
  durability.checkpoint_wal_records = 0;  // deterministic op sequences
  durability.fs = fs;
  return durability;
}

ReplicaOptions ManualReplica(Transport* transport) {
  ReplicaOptions options;
  options.transport = transport;
  options.start_tailer = false;  // tests drive Step() deterministically
  options.bootstrap_timeout = std::chrono::milliseconds(0);
  return options;
}

// Pumps shipper + replica until the replica has applied `target` (or the
// iteration cap trips — transient faults mean any single pass may fail).
// Returns true on convergence with both sides healthy.
bool Converge(WalShipper* shipper, ReplicaService* replica, uint64_t target,
              int max_iterations = 4000) {
  for (int i = 0; i < max_iterations; ++i) {
    (void)shipper->ShipOnce();
    const Status st = replica->Step();
    if (st.IsDataLoss()) return false;
    if (replica->AppliedGeneration() >= target &&
        replica->PrimaryDurableGeneration() >= target && st.ok()) {
      return true;
    }
  }
  return false;
}

// The answer check: `queries` random pairs served by `query` must match
// BiBFS on the mirror graph at exactly the generation the service
// reports.
template <typename QueryFn>
void CheckAnswers(const WorkloadLog& log, uint64_t generation,
                  size_t queries, const std::string& context,
                  const QueryFn& query) {
  const auto it = log.acked.find(generation);
  ASSERT_TRUE(it != log.acked.end()) << context << ": unknown generation "
                                     << generation;
  const Graph truth = it->second.ToGraph();
  Rng rng(0xD15C + generation);
  const auto n = static_cast<Vertex>(truth.NumVertices());
  for (size_t q = 0; q < queries; ++q) {
    const auto s = static_cast<Vertex>(rng.NextBounded(n));
    const auto t = static_cast<Vertex>(rng.NextBounded(n));
    const auto resp = query(s, t);
    ASSERT_TRUE(resp.ok()) << context << ": " << resp.status().ToString();
    ASSERT_EQ(resp->generation, generation) << context;
    const SpcResult expect = BiBfsCountPair(truth, s, t);
    ASSERT_EQ(resp->result, expect)
        << context << ": query (" << s << ", " << t << ") diverged at "
        << generation;
  }
}

// --- unit: live-tail segment reads ---------------------------------------

std::vector<uint8_t> SegmentHeader(uint64_t seq, uint64_t base_generation) {
  BinaryWriter w;
  w.PutU32(kWalMagic);
  w.PutU32(kWalVersion);
  w.PutU64(seq);
  w.PutU64(base_generation);
  w.PutU32(Crc32c(w.buffer().data(), w.buffer().size()));
  return w.buffer();
}

std::vector<uint8_t> Frame(const std::vector<uint8_t>& payload) {
  BinaryWriter w;
  w.PutU32(static_cast<uint32_t>(payload.size()));
  w.PutU32(Crc32c(payload.data(), payload.size()));
  w.Append(payload.data(), payload.size());
  return w.buffer();
}

void WriteBytes(FileSystem* fs, const std::string& path,
                const std::vector<uint8_t>& bytes) {
  auto f = fs->NewWritableFile(path);
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE((*f)->Append(bytes.data(), bytes.size()).ok());
  ASSERT_TRUE((*f)->Close().ok());
}

TEST(WalLiveTailTest, PartialTrailingFrameIsInFlightNotTorn) {
  FileSystem* fs = FileSystem::Default();
  const std::string dir = FreshDir("livetail_partial");
  const std::string path = dir + "/" + WalSegmentFileName(1);

  WalRecord rec;
  rec.kind = WalRecord::Kind::kAddVertex;
  rec.generation = 8;
  rec.vertex = 40;
  const std::vector<uint8_t> frame = Frame(EncodeWalRecord(rec));

  std::vector<uint8_t> bytes = SegmentHeader(1, 7);
  const uint64_t boundary = bytes.size() + frame.size();
  bytes.insert(bytes.end(), frame.begin(), frame.end());
  // A second frame, cut mid-payload: what a concurrent writer's
  // in-flight append looks like to a tailing reader.
  bytes.insert(bytes.end(), frame.begin(), frame.begin() + 5);
  WriteBytes(fs, path, bytes);

  WalSegment live;
  ASSERT_TRUE(
      ReadWalSegment(fs, path, 1, &live, WalTailPolicy::kLiveTail).ok());
  EXPECT_TRUE(live.tail_in_flight);
  EXPECT_EQ(live.truncated_tail_bytes, 0u);
  EXPECT_EQ(live.resume_offset, boundary);
  ASSERT_EQ(live.records.size(), 1u);
  EXPECT_EQ(live.records[0].generation, 8u);

  WalSegment torn;
  ASSERT_TRUE(
      ReadWalSegment(fs, path, 1, &torn, WalTailPolicy::kCrashTorn).ok());
  EXPECT_FALSE(torn.tail_in_flight);
  EXPECT_EQ(torn.truncated_tail_bytes, 5u);
  EXPECT_EQ(torn.valid_bytes, boundary);
}

TEST(WalLiveTailTest, CompleteFrameWithBadCrcIsTornUnderBothPolicies) {
  FileSystem* fs = FileSystem::Default();
  const std::string dir = FreshDir("livetail_badcrc");
  const std::string path = dir + "/" + WalSegmentFileName(3);

  WalRecord rec;
  rec.kind = WalRecord::Kind::kAddVertex;
  rec.generation = 2;
  rec.vertex = 1;
  std::vector<uint8_t> frame = Frame(EncodeWalRecord(rec));
  frame.back() ^= 0x10;  // complete frame, corrupt payload

  std::vector<uint8_t> bytes = SegmentHeader(3, 1);
  const uint64_t boundary = bytes.size();
  bytes.insert(bytes.end(), frame.begin(), frame.end());
  WriteBytes(fs, path, bytes);

  for (const WalTailPolicy policy :
       {WalTailPolicy::kCrashTorn, WalTailPolicy::kLiveTail}) {
    WalSegment seg;
    ASSERT_TRUE(ReadWalSegment(fs, path, 3, &seg, policy).ok());
    // A live writer appends whole frames, so a COMPLETE frame that fails
    // its CRC is damage under either policy — never "still in flight".
    EXPECT_FALSE(seg.tail_in_flight);
    EXPECT_EQ(seg.truncated_tail_bytes, frame.size());
    EXPECT_EQ(seg.valid_bytes, boundary);
    EXPECT_TRUE(seg.records.empty());
  }
}

// --- unit: frame-window parsing and the replay cursor --------------------

TEST(ParseWalFrameWindowTest, StopsAtIncompleteTrailingFrame) {
  WalRecord rec;
  rec.kind = WalRecord::Kind::kAddVertex;
  rec.generation = 3;
  rec.vertex = 9;
  const std::vector<uint8_t> frame = Frame(EncodeWalRecord(rec));

  std::vector<uint8_t> window;
  window.insert(window.end(), frame.begin(), frame.end());
  window.insert(window.end(), frame.begin(), frame.end());
  window.insert(window.end(), frame.begin(), frame.begin() + 3);

  std::vector<WalRecord> records;
  const auto consumed = ParseWalFrameWindow(window, &records);
  ASSERT_TRUE(consumed.ok());
  EXPECT_EQ(*consumed, 2 * frame.size());
  EXPECT_EQ(records.size(), 2u);
}

TEST(ReplayCursorTest, SkipsCoveredOpsAndKeepsUnpairedIntentsPending) {
  ReplayCursor cursor(10);
  std::vector<ReplayOp> ops;

  // A commit at generation 10 is covered by the start state: skipped.
  WalRecord intent;
  intent.kind = WalRecord::Kind::kBatch;
  intent.seq = 1;
  intent.generation = 9;
  intent.updates = {Update::Insert(0, 1)};
  WalRecord commit;
  commit.kind = WalRecord::Kind::kCommit;
  commit.seq = 1;
  commit.generation = 10;
  commit.outcomes = {1};
  ASSERT_TRUE(cursor.Feed(intent, &ops).ok());
  ASSERT_TRUE(cursor.Feed(commit, &ops).ok());
  EXPECT_TRUE(ops.empty());
  EXPECT_EQ(cursor.skipped(), 1u);
  EXPECT_EQ(cursor.generation(), 10u);

  // An intent whose commit never arrives stays pending — never emitted.
  WalRecord unpaired;
  unpaired.kind = WalRecord::Kind::kBatch;
  unpaired.seq = 2;
  unpaired.generation = 10;
  unpaired.updates = {Update::Insert(1, 2)};
  ASSERT_TRUE(cursor.Feed(unpaired, &ops).ok());
  EXPECT_TRUE(ops.empty());
  EXPECT_EQ(cursor.pending_intents(), 1u);

  // A duplicate intent seq is the same damage recovery reports.
  const Status dup = cursor.Feed(unpaired, &ops);
  EXPECT_TRUE(dup.IsDataLoss()) << dup.ToString();
}

TEST(ReplicationBackoffTest, GrowsDoublesCapsAndResets) {
  ReplicationBackoff::Options options;
  options.initial = std::chrono::microseconds(100);
  options.max = std::chrono::microseconds(1000);
  ReplicationBackoff backoff(options);

  std::chrono::microseconds prev{0};
  for (int i = 0; i < 8; ++i) {
    const auto d = backoff.Next();
    // ±25% jitter around a base that doubles until the cap.
    EXPECT_GE(d.count(), 75) << i;
    EXPECT_LE(d.count(), 1250) << i;
    if (i > 0 && i < 3) {
      EXPECT_GT(d, prev) << i;
    }
    prev = d;
  }
  EXPECT_EQ(backoff.sleeps(), 8u);
  backoff.Reset();
  EXPECT_LE(backoff.Next().count(), 125);
}

// --- unit: transports ----------------------------------------------------

TEST(TransportTest, InProcessAppendContractAndRetire) {
  InProcessTransport transport;
  EXPECT_TRUE(transport.FetchState().status().IsUnavailable());

  const std::vector<uint8_t> a{1, 2, 3, 4};
  const std::vector<uint8_t> b{5, 6};
  ASSERT_TRUE(transport.AppendSegment(7, 0, a).ok());
  // Overlapping re-send (a retry after a fault): only the suffix lands.
  std::vector<uint8_t> overlap{3, 4, 5, 6};
  ASSERT_TRUE(transport.AppendSegment(7, 2, overlap).ok());
  auto size = transport.SegmentSize(7);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 6u);
  // A gap is refused: the shipper resyncs via SegmentSize.
  EXPECT_TRUE(transport.AppendSegment(7, 9, b).IsUnavailable());

  std::vector<uint8_t> got;
  ASSERT_TRUE(transport.FetchSegment(7, 2, &got).ok());
  EXPECT_EQ(got, (std::vector<uint8_t>{3, 4, 5, 6}));

  ASSERT_TRUE(transport.PutCheckpoint(5, a).ok());
  ASSERT_TRUE(transport.Retire(6, 8).ok());
  EXPECT_TRUE(transport.FetchSegment(7, 0, &got).IsNotFound());
  EXPECT_TRUE(transport.FetchCheckpoint(5, &got).IsNotFound());
}

TEST(TransportTest, DirectoryTransportRoundTripsAcrossInstances) {
  FileSystem* fs = FileSystem::Default();
  const std::string dir = FreshDir("dir_transport");

  const std::vector<uint8_t> ckpt{9, 8, 7};
  const std::vector<uint8_t> seg{1, 2, 3, 4, 5};
  ShipState state;
  state.checkpoint_generation = 4;
  state.checkpoint_wal_seq = 2;
  state.min_wal_seq = 2;
  state.max_wal_seq = 2;
  state.durable_generation = 6;
  {
    DirectoryTransport writer(fs, dir);
    ASSERT_TRUE(writer.PutCheckpoint(4, ckpt).ok());
    ASSERT_TRUE(
        writer.AppendSegment(2, 0, std::span<const uint8_t>(seg).first(3))
            .ok());
    ASSERT_TRUE(writer.PublishState(state).ok());
  }
  // A NEW instance (a restarted shipper) appends at a nonzero offset:
  // the seam cannot reopen-for-append, so this exercises the
  // read-splice-rewrite fallback.
  DirectoryTransport reopened(fs, dir);
  ASSERT_TRUE(
      reopened.AppendSegment(2, 3, std::span<const uint8_t>(seg).subspan(3))
          .ok());
  auto size = reopened.SegmentSize(2);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 5u);
  std::vector<uint8_t> got;
  ASSERT_TRUE(reopened.FetchSegment(2, 0, &got).ok());
  EXPECT_EQ(got, seg);
  ASSERT_TRUE(reopened.FetchCheckpoint(4, &got).ok());
  EXPECT_EQ(got, ckpt);
  auto fetched = reopened.FetchState();
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(fetched->durable_generation, 6u);
  EXPECT_EQ(fetched->checkpoint_generation, 4u);
}

// --- shipping + catch-up -------------------------------------------------

TEST(ReplicationTest, ReplicaCatchesUpAndServesExactAnswers) {
  const std::string dir = FreshDir("repl_basic");
  const Graph bootstrap = GenerateBarabasiAlbert(40, 2, 21);
  InProcessTransport transport;

  auto primary = SpcService::Open(bootstrap, EveryWriteOptions(dir));
  ASSERT_TRUE(primary.ok()) << primary.status().ToString();
  auto shipper = (*primary)->NewShipper(&transport);
  ASSERT_TRUE(shipper.ok()) << shipper.status().ToString();

  WorkloadLog log;
  ASSERT_TRUE(RunWorkload(primary->get(), 0xABCD, &log,
                          [&] { (void)(*shipper)->ShipOnce(); }));
  ASSERT_TRUE((*shipper)->ShipOnce().ok());

  auto replica = ReplicaService::Open(ManualReplica(&transport));
  ASSERT_TRUE(replica.ok()) << replica.status().ToString();
  ASSERT_TRUE(Converge(shipper->get(), replica->get(),
                       log.last_acked_generation));
  EXPECT_EQ((*replica)->AppliedGeneration(), log.last_acked_generation);
  EXPECT_EQ((*replica)->PrimaryDurableGeneration(),
            log.last_acked_generation);

  CheckAnswers(log, log.last_acked_generation, 500, "replica catch-up",
               [&](Vertex s, Vertex t) { return (*replica)->Query(s, t); });

  // The shipper's view agrees, and the metrics tell the story.
  const WalShipper::Stats stats = (*shipper)->GetStats();
  EXPECT_EQ(stats.shipped_generation, log.last_acked_generation);
  EXPECT_GE(stats.checkpoints_shipped, 3u);  // open-time + steps 8 and 16
  EXPECT_GT(stats.bytes_shipped, 0u);
  const MetricsSnapshot primary_snap = (*primary)->Metrics();
  EXPECT_GE(primary_snap.repl_checkpoints_shipped, 3u);
  EXPECT_GT(primary_snap.repl_bytes_shipped, 0u);
  const MetricsSnapshot replica_snap = (*replica)->Metrics();
  EXPECT_GT(replica_snap.repl_ops_applied, 0u);
  EXPECT_EQ(replica_snap.replica_applied_generation,
            log.last_acked_generation);
  EXPECT_EQ(replica_snap.replica_lag, 0u);
  EXPECT_NE(replica_snap.ToString().find("replication:"), std::string::npos);

  // Batch reads ride the same admission path.
  const std::vector<VertexPair> pairs{{0, 5}, {3, 7}};
  const auto batch = (*replica)->QueryBatch(pairs);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->generation, log.last_acked_generation);
}

TEST(ReplicationTest, BackgroundTailerFollowsALivePrimary) {
  const std::string dir = FreshDir("repl_background");
  const Graph bootstrap = GenerateBarabasiAlbert(35, 2, 11);
  InProcessTransport transport;

  auto primary = SpcService::Open(bootstrap, EveryWriteOptions(dir));
  ASSERT_TRUE(primary.ok());
  WalShipper::Options ship_options;
  ship_options.poll_interval = std::chrono::microseconds(200);
  auto shipper = (*primary)->NewShipper(&transport, ship_options);
  ASSERT_TRUE(shipper.ok());
  (*shipper)->Start();

  ReplicaOptions replica_options;
  replica_options.transport = &transport;
  replica_options.poll_interval = std::chrono::microseconds(200);
  replica_options.bootstrap_timeout = std::chrono::seconds(20);
  auto replica = ReplicaService::Open(replica_options);
  ASSERT_TRUE(replica.ok()) << replica.status().ToString();

  WorkloadLog log;
  ASSERT_TRUE(RunWorkload(primary->get(), 0x1234, &log));

  // Both pumps are free-running; wait (bounded) for exact convergence.
  bool converged = false;
  for (int i = 0; i < 20000 && !converged; ++i) {
    converged =
        (*replica)->AppliedGeneration() == log.last_acked_generation &&
        (*replica)->PrimaryDurableGeneration() == log.last_acked_generation;
    if (!converged) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(converged) << "applied " << (*replica)->AppliedGeneration()
                         << " of " << log.last_acked_generation;
  (*replica)->Stop();
  (*shipper)->Stop();
  CheckAnswers(log, log.last_acked_generation, 200, "background tailer",
               [&](Vertex s, Vertex t) { return (*replica)->Query(s, t); });
}

// --- staleness honesty ---------------------------------------------------

TEST(ReplicationTest, BoundedStalenessIsEnforcedAgainstThePrimary) {
  const std::string dir = FreshDir("repl_staleness");
  const Graph bootstrap = GenerateBarabasiAlbert(30, 2, 5);
  InProcessTransport store;
  FaultInjectingTransport transport(&store);

  auto primary = SpcService::Open(bootstrap, EveryWriteOptions(dir));
  ASSERT_TRUE(primary.ok());
  auto shipper = (*primary)->NewShipper(&transport);
  ASSERT_TRUE(shipper.ok());

  WorkloadLog log;
  ASSERT_TRUE(RunWorkload(primary->get(), 0x77, &log,
                          [&] { (void)(*shipper)->ShipOnce(); }));
  auto replica = ReplicaService::Open(ManualReplica(&transport));
  ASSERT_TRUE(replica.ok()) << replica.status().ToString();
  ASSERT_TRUE(
      Converge(shipper->get(), replica->get(), log.last_acked_generation));
  const uint64_t caught_up = (*replica)->AppliedGeneration();

  // Advance the primary WITHOUT letting the replica apply: ship, then
  // disconnect the transport right after the replica's next FetchState —
  // it learns the new primary generation but cannot fetch the bytes.
  const WriteOptions durable{.durable = true};
  uint64_t primary_gen = caught_up;
  for (int i = 0; i < 4; ++i) {
    const auto resp = (*primary)->InsertEdge(
        static_cast<Vertex>(i), static_cast<Vertex>(20 + i), durable);
    ASSERT_TRUE(resp.ok());
    if (resp->applied == 1) primary_gen = resp->token.generation;
  }
  ASSERT_GT(primary_gen, caught_up);
  ASSERT_TRUE((*shipper)->ShipOnce().ok());
  // Arm resets the operation counter: the replica's next Step issues
  // FetchState (op 0, succeeds — the replica learns the new primary
  // generation) then FetchSegment (op 1, disconnected — it cannot
  // apply the bytes).
  transport.Arm(1, TransportFault::kDisconnect);
  EXPECT_FALSE((*replica)->Step().ok());  // state refreshed, bytes blocked
  EXPECT_EQ((*replica)->AppliedGeneration(), caught_up);
  EXPECT_EQ((*replica)->PrimaryDurableGeneration(), primary_gen);
  const uint64_t lag = primary_gen - caught_up;

  // Honest refusal: a bound tighter than the real lag is kUnavailable.
  const auto too_tight = (*replica)->Query(
      0, 5,
      {.consistency = Consistency::kBoundedStaleness, .max_lag = lag - 1});
  ASSERT_FALSE(too_tight.ok());
  EXPECT_TRUE(too_tight.status().IsUnavailable())
      << too_tight.status().ToString();

  // A bound that admits the lag serves — and reports the PRIMARY-relative
  // staleness, not the replica's internal view.
  const auto admitted = (*replica)->Query(
      0, 5, {.consistency = Consistency::kBoundedStaleness, .max_lag = lag});
  ASSERT_TRUE(admitted.ok()) << admitted.status().ToString();
  EXPECT_EQ(admitted->generation, caught_up);
  EXPECT_EQ(admitted->staleness, lag);

  // Read-your-writes honesty: a primary token past the replica refuses.
  const auto future = (*replica)->Query(0, 5, {.min_generation = primary_gen});
  ASSERT_FALSE(future.ok());
  EXPECT_TRUE(future.status().IsUnavailable());
  const auto present = (*replica)->Query(0, 5, {.min_generation = caught_up});
  EXPECT_TRUE(present.ok());

  const MetricsSnapshot snap = (*replica)->Metrics();
  EXPECT_EQ(snap.replica_lag, lag);
  EXPECT_GE(snap.rejected_unavailable, 2u);

  // Once the disconnect window passes, the replica reconnects and the
  // same bounded read becomes current.
  transport.Disarm();
  ASSERT_TRUE(
      Converge(shipper->get(), replica->get(), log.last_acked_generation));
  const auto fresh = (*replica)->Query(
      0, 5, {.consistency = Consistency::kBoundedStaleness, .max_lag = 0});
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  EXPECT_GE((*replica)->Metrics().repl_reconnects, 1u);
}

// --- retention -----------------------------------------------------------

TEST(ReplicationTest, ShipperRetentionPinKeepsSegmentsUntilShipped) {
  const std::string dir = FreshDir("repl_retention");
  const Graph bootstrap = GenerateBarabasiAlbert(25, 2, 3);
  FileSystem* fs = FileSystem::Default();
  InProcessTransport transport;

  auto primary = SpcService::Open(bootstrap, EveryWriteOptions(dir));
  ASSERT_TRUE(primary.ok());
  auto shipper = (*primary)->NewShipper(&transport);
  ASSERT_TRUE(shipper.ok());

  const WriteOptions durable{.durable = true};
  ASSERT_TRUE((*primary)->InsertEdge(0, 20, durable).ok());
  // Two checkpoints without a single shipping pass: GC would normally
  // drop the rotated segments, but the never-advanced shipper pin
  // (everything) must hold them all.
  ASSERT_TRUE((*primary)->Checkpoint().ok());
  ASSERT_TRUE((*primary)->InsertEdge(1, 21, durable).ok());
  ASSERT_TRUE((*primary)->Checkpoint().ok());
  size_t segments = 0;
  auto names = fs->ListDir(dir);
  ASSERT_TRUE(names.ok());
  for (const std::string& name : *names) {
    uint64_t seq = 0;
    if (ParseWalSegmentFileName(name, &seq)) ++segments;
  }
  EXPECT_GE(segments, 3u) << "pinned segments were GC'd";

  // Ship everything; the pin advances past the old segments, so the next
  // publish may finally collect them.
  ASSERT_TRUE((*shipper)->ShipOnce().ok());
  ASSERT_TRUE((*primary)->InsertEdge(2, 22, durable).ok());
  ASSERT_TRUE((*primary)->Checkpoint().ok());
  ASSERT_TRUE((*shipper)->ShipOnce().ok());
  ASSERT_TRUE((*primary)->Checkpoint().ok());
  segments = 0;
  names = fs->ListDir(dir);
  ASSERT_TRUE(names.ok());
  for (const std::string& name : *names) {
    uint64_t seq = 0;
    if (ParseWalSegmentFileName(name, &seq)) ++segments;
  }
  EXPECT_LE(segments, 2u) << "retention pin failed to advance";
}

TEST(ReplicationTest, ReplicaRebootstrapsWhenBehindStoreRetention) {
  const std::string dir = FreshDir("repl_rebootstrap");
  const Graph bootstrap = GenerateBarabasiAlbert(30, 2, 17);
  InProcessTransport transport;

  auto primary = SpcService::Open(bootstrap, EveryWriteOptions(dir));
  ASSERT_TRUE(primary.ok());
  auto shipper = (*primary)->NewShipper(&transport);
  ASSERT_TRUE(shipper.ok());

  WorkloadLog log;
  ASSERT_TRUE(RunWorkload(primary->get(), 0xFEED, &log,
                          [&] { (void)(*shipper)->ShipOnce(); }));
  auto replica = ReplicaService::Open(ManualReplica(&transport));
  ASSERT_TRUE(replica.ok());
  ASSERT_TRUE(
      Converge(shipper->get(), replica->get(), log.last_acked_generation));

  // The replica stops tailing; the primary rolls forward through two
  // checkpoints, and the shipper retires the store segments the newest
  // shipped checkpoint covers — the replica's tail is now below the
  // store's retention floor.
  const WriteOptions durable{.durable = true};
  uint64_t final_gen = log.last_acked_generation;
  MirrorState mirror = log.acked.at(final_gen);
  for (int round = 0; round < 2; ++round) {
    for (int i = 0; i < 3; ++i) {
      const auto u = static_cast<Vertex>(3 * round + i);
      const auto v = static_cast<Vertex>(10 + 3 * round + i);
      const auto resp = (*primary)->InsertEdge(u, v, durable);
      ASSERT_TRUE(resp.ok());
      if (resp->applied == 1) {
        mirror.Insert(u, v);
        final_gen = resp->token.generation;
        log.acked[final_gen] = mirror;
      }
    }
    ASSERT_TRUE((*primary)->Checkpoint().ok());
    ASSERT_TRUE((*shipper)->ShipOnce().ok());
  }
  log.last_acked_generation = final_gen;

  ASSERT_TRUE(Converge(shipper->get(), replica->get(), final_gen));
  EXPECT_GE((*replica)->Metrics().repl_rebootstraps, 1u);
  EXPECT_TRUE((*replica)->Health().ok());
  CheckAnswers(log, final_gen, 200, "re-bootstrap",
               [&](Vertex s, Vertex t) { return (*replica)->Query(s, t); });
}

// --- failover ------------------------------------------------------------

TEST(ReplicationTest, PromoteContinuesTheLineageWritable) {
  const std::string dir = FreshDir("repl_promote");
  const std::string promoted_dir = FreshDir("repl_promote_next");
  const Graph bootstrap = GenerateBarabasiAlbert(30, 2, 29);
  InProcessTransport transport;

  WorkloadLog log;
  {
    auto primary = SpcService::Open(bootstrap, EveryWriteOptions(dir));
    ASSERT_TRUE(primary.ok());
    auto shipper = (*primary)->NewShipper(&transport);
    ASSERT_TRUE(shipper.ok());
    ASSERT_TRUE(RunWorkload(primary->get(), 0xF00D, &log,
                            [&] { (void)(*shipper)->ShipOnce(); }));
    ASSERT_TRUE((*shipper)->ShipOnce().ok());
    // Primary (and shipper) go away — an orderly handoff.
  }

  auto replica = ReplicaService::Open(ManualReplica(&transport));
  ASSERT_TRUE(replica.ok()) << replica.status().ToString();
  auto promoted =
      (*replica)->Promote(EveryWriteOptions(promoted_dir));
  ASSERT_TRUE(promoted.ok()) << promoted.status().ToString();
  EXPECT_TRUE((*replica)->Promoted());
  EXPECT_EQ((*promoted)->Generation(), log.last_acked_generation);
  EXPECT_TRUE((*promoted)->Durable());
  CheckAnswers(log, log.last_acked_generation, 300, "promoted",
               [&](Vertex s, Vertex t) { return (*promoted)->Query(s, t); });

  // The old replica froze: no second promotion, no further tailing.
  EXPECT_TRUE((*replica)
                  ->Promote(EveryWriteOptions(promoted_dir))
                  .status()
                  .IsInvalidArgument());
  EXPECT_FALSE((*replica)->Step().ok());

  // The new primary accepts durable writes and its lineage survives a
  // close/reopen — generations continue where the old primary stopped.
  const auto resp =
      (*promoted)->InsertEdge(0, 24, WriteOptions{.durable = true});
  ASSERT_TRUE(resp.ok());
  EXPECT_TRUE(resp->token.durable);
  const uint64_t next_gen = (*promoted)->Generation();
  promoted->reset();
  auto reopened = SpcService::Open(bootstrap, EveryWriteOptions(promoted_dir));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->Generation(), next_gen);
}

TEST(ReplicationTest, OpenWithStateRefusesADirectoryHoldingDurableState) {
  const std::string dir = FreshDir("repl_openwithstate_refuse");
  const Graph bootstrap = GenerateBarabasiAlbert(20, 2, 1);
  {
    auto primary = SpcService::Open(bootstrap, EveryWriteOptions(dir));
    ASSERT_TRUE(primary.ok());
  }
  Graph graph = bootstrap;
  SpcService probe(bootstrap);
  SpcIndex index = probe.engine().index();
  const auto adopted = SpcService::OpenWithState(
      std::move(graph), std::move(index), 0, EveryWriteOptions(dir));
  ASSERT_FALSE(adopted.ok());
  EXPECT_TRUE(adopted.status().IsInvalidArgument())
      << adopted.status().ToString();
}

// --- the transport fault matrix ------------------------------------------

// One full primary+replica run with a single armed transport fault,
// shipping and stepping after every acknowledged write, then converging
// with retries. The subsystem's contract: ANY one-shot fault anywhere in
// the schedule is retried through to exact convergence.
void RunTransportFaultPoint(uint64_t index, TransportFault fault,
                            uint64_t seed, size_t queries,
                            const std::string& dirname) {
  SCOPED_TRACE("transport fault " + std::to_string(static_cast<int>(fault)) +
               " at op " + std::to_string(index));
  const std::string dir = FreshDir(dirname);
  const Graph bootstrap = GenerateBarabasiAlbert(30, 2, 19);
  InProcessTransport store;
  FaultInjectingTransport transport(&store);
  transport.Arm(index, fault);

  auto primary = SpcService::Open(bootstrap, EveryWriteOptions(dir));
  ASSERT_TRUE(primary.ok());
  auto shipper = (*primary)->NewShipper(&transport);
  ASSERT_TRUE(shipper.ok());

  std::unique_ptr<ReplicaService> replica;
  WorkloadLog log;
  const bool ran = RunWorkload(primary->get(), seed, &log, [&] {
    (void)(*shipper)->ShipOnce();
    if (replica == nullptr) {
      auto opened = ReplicaService::Open(ManualReplica(&transport));
      if (opened.ok()) replica = std::move(*opened);
    } else {
      const Status st = replica->Step();
      ASSERT_FALSE(st.IsDataLoss()) << st.ToString();
    }
  });
  ASSERT_TRUE(ran);  // transport faults never fail PRIMARY writes
  if (replica == nullptr) {
    auto opened = ReplicaService::Open(ManualReplica(&transport));
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    replica = std::move(*opened);
  }
  ASSERT_TRUE(Converge(shipper->get(), replica.get(),
                       log.last_acked_generation))
      << "applied " << replica->AppliedGeneration() << " of "
      << log.last_acked_generation << "; shipper "
      << (*shipper)->Health().ToString() << "; replica "
      << replica->Health().ToString();
  EXPECT_TRUE((*shipper)->Health().ok());
  EXPECT_TRUE(replica->Health().ok());
  CheckAnswers(log, log.last_acked_generation, queries, "fault point",
               [&](Vertex s, Vertex t) { return replica->Query(s, t); });
}

TEST(ReplicationFaultMatrixTest, EveryTransportFaultPointConverges) {
  // Pass 1 (unarmed): count the schedule's transport operations.
  uint64_t total_ops = 0;
  {
    const std::string dir = FreshDir("transport_matrix_count");
    const Graph bootstrap = GenerateBarabasiAlbert(30, 2, 19);
    InProcessTransport store;
    FaultInjectingTransport transport(&store);
    auto primary = SpcService::Open(bootstrap, EveryWriteOptions(dir));
    ASSERT_TRUE(primary.ok());
    auto shipper = (*primary)->NewShipper(&transport);
    ASSERT_TRUE(shipper.ok());
    std::unique_ptr<ReplicaService> replica;
    WorkloadLog log;
    ASSERT_TRUE(RunWorkload(primary->get(), 0x1CE, &log, [&] {
      (void)(*shipper)->ShipOnce();
      if (replica == nullptr) {
        auto opened = ReplicaService::Open(ManualReplica(&transport));
        if (opened.ok()) replica = std::move(*opened);
      } else {
        (void)replica->Step();
      }
    }));
    ASSERT_NE(replica, nullptr);
    ASSERT_TRUE(Converge(shipper->get(), replica.get(),
                         log.last_acked_generation));
    total_ops = transport.OperationCount();
    ASSERT_GT(total_ops, 40u);
  }

  // Pass 2: one run per operation index, rotating through the fault
  // menu so every fault kind lands at many distinct schedule points.
  const TransportFault menu[] = {
      TransportFault::kDrop, TransportFault::kDuplicate,
      TransportFault::kTruncate, TransportFault::kDelay,
      TransportFault::kDisconnect};
  for (uint64_t k = 0; k < total_ops; ++k) {
    RunTransportFaultPoint(k, menu[k % 5], 0x1CE, /*queries=*/15,
                           "transport_matrix_armed");
  }
}

// --- primary crash + failover matrix -------------------------------------

// The replication face of the recovery crash matrix: the primary dies at
// filesystem operation `k` (its unsynced writes vanish), the store —
// which outlives the process — is drained, and a replica promotes. The
// promoted primary must land on EXACTLY the last durably-acknowledged
// generation with bit-exact answers, then accept writes and survive its
// own reopen.
void RunPromoteCrashPoint(uint64_t k, bool short_writes, uint64_t seed,
                          size_t queries, uint64_t* skipped_empty_store) {
  SCOPED_TRACE("crash at fs op " + std::to_string(k) +
               (short_writes ? " (short write)" : ""));
  const std::string dir = FreshDir("promote_matrix_armed");
  const std::string next_dir = FreshDir("promote_matrix_next");
  const Graph bootstrap = GenerateBarabasiAlbert(30, 2, 23);
  FaultInjectingEnv env(FileSystem::Default());
  env.Arm(k, short_writes);
  InProcessTransport transport;

  WorkloadLog log;
  bool store_has_checkpoint = false;
  {
    auto primary = SpcService::Open(bootstrap, EveryWriteOptions(dir, &env));
    if (!primary.ok()) {
      // Crash during Open: nothing was ever acknowledged, and the store
      // may hold nothing bootstrappable — there is no failover to test.
      ++*skipped_empty_store;
      return;
    }
    auto shipper = (*primary)->NewShipper(&transport);
    ASSERT_TRUE(shipper.ok());
    (void)RunWorkload(primary->get(), seed, &log,
                      [&] { (void)(*shipper)->ShipOnce(); });
    // Post-crash drain: reads pass through the dead env (they see only
    // synced bytes — the disk as a rescuer would find it), so the
    // shipper can finish streaming the durable prefix to the store.
    for (int i = 0; i < 50; ++i) {
      if ((*shipper)->ShipOnce().ok()) break;
    }
    const WalShipper::Stats stats = (*shipper)->GetStats();
    store_has_checkpoint = stats.checkpoints_shipped > 0;
    if (store_has_checkpoint) {
      // THE shipping contract at a crash: the drained store's durable
      // horizon is exactly the last acknowledged write — kEveryWrite
      // syncs before acking, and the shipper never ships past fsync.
      ASSERT_EQ(stats.shipped_generation, log.last_acked_generation);
    }
    // Primary destructor runs against the dead env: the process is gone.
  }
  if (!store_has_checkpoint) {
    ++*skipped_empty_store;
    return;
  }

  auto replica = ReplicaService::Open(ManualReplica(&transport));
  ASSERT_TRUE(replica.ok()) << replica.status().ToString();
  auto promoted = (*replica)->Promote(EveryWriteOptions(next_dir),
                                      std::chrono::seconds(30));
  ASSERT_TRUE(promoted.ok()) << promoted.status().ToString();
  ASSERT_EQ((*promoted)->Generation(), log.last_acked_generation);
  CheckAnswers(log, log.last_acked_generation, queries, "promoted",
               [&](Vertex s, Vertex t) { return (*promoted)->Query(s, t); });

  // The promoted primary is a real primary: durable writes, durable
  // reopen.
  const auto resp =
      (*promoted)->InsertEdge(1, 17, WriteOptions{.durable = true});
  ASSERT_TRUE(resp.ok());
  EXPECT_TRUE(resp->token.durable);
  const uint64_t next_gen = (*promoted)->Generation();
  promoted->reset();
  auto reopened = SpcService::Open(bootstrap, EveryWriteOptions(next_dir));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->Generation(), next_gen);
}

TEST(ReplicationCrashMatrixTest, PromoteLandsOnLastAckedGenerationAtEveryCrashPoint) {
  // Pass 1 (unarmed): count the workload's mutating fs operations. The
  // shipper only READS the primary directory, so the count matches the
  // recovery matrix's shape.
  uint64_t total_ops = 0;
  {
    const std::string dir = FreshDir("promote_matrix_count");
    const Graph bootstrap = GenerateBarabasiAlbert(30, 2, 23);
    FaultInjectingEnv env(FileSystem::Default());
    InProcessTransport transport;
    WorkloadLog log;
    auto primary = SpcService::Open(bootstrap, EveryWriteOptions(dir, &env));
    ASSERT_TRUE(primary.ok());
    auto shipper = (*primary)->NewShipper(&transport);
    ASSERT_TRUE(shipper.ok());
    ASSERT_TRUE(RunWorkload(primary->get(), 0xCAFE, &log,
                            [&] { (void)(*shipper)->ShipOnce(); }));
    shipper->reset();
    primary->reset();
    total_ops = env.OperationCount();
    ASSERT_GT(total_ops, 50u);
  }

  uint64_t skipped_empty_store = 0;
  for (uint64_t k = 0; k < total_ops; ++k) {
    RunPromoteCrashPoint(k, /*short_writes=*/(k % 2) == 1, 0xCAFE,
                         /*queries=*/15, &skipped_empty_store);
  }
  // Early crash points (during Open, before the first ship) have no
  // store to fail over from — but they must be a small prefix, not the
  // whole matrix.
  EXPECT_LT(skipped_empty_store, total_ops / 2);
}

// --- chaos fuzz ----------------------------------------------------------

TEST(ReplicationFuzzTest, ChaosTransportConvergesToExactAnswers) {
  for (int trial = 0; trial < 4; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    const std::string dir = FreshDir("repl_chaos");
    const Graph bootstrap = GenerateBarabasiAlbert(30, 2, 7 + trial);
    InProcessTransport store;
    FaultInjectingTransport transport(&store);
    transport.SetChaos(0xC0FFEE + trial, /*permille=*/150);

    auto primary = SpcService::Open(bootstrap, EveryWriteOptions(dir));
    ASSERT_TRUE(primary.ok());
    auto shipper = (*primary)->NewShipper(&transport);
    ASSERT_TRUE(shipper.ok());

    std::unique_ptr<ReplicaService> replica;
    WorkloadLog log;
    ASSERT_TRUE(RunWorkload(primary->get(), 0xBA5E + trial, &log, [&] {
      (void)(*shipper)->ShipOnce();
      if (replica == nullptr) {
        auto opened = ReplicaService::Open(ManualReplica(&transport));
        if (opened.ok()) replica = std::move(*opened);
      } else {
        const Status st = replica->Step();
        ASSERT_FALSE(st.IsDataLoss()) << st.ToString();
      }
    }));
    if (replica == nullptr) {
      // Chaos kept eating the bootstrap; calm the link to finish.
      transport.SetChaos(0, 0);
      auto opened = ReplicaService::Open(ManualReplica(&transport));
      ASSERT_TRUE(opened.ok()) << opened.status().ToString();
      replica = std::move(*opened);
      transport.SetChaos(0xC0FFEE + trial, 150);
    }
    ASSERT_TRUE(Converge(shipper->get(), replica.get(),
                         log.last_acked_generation, 20000))
        << "applied " << replica->AppliedGeneration() << " of "
        << log.last_acked_generation;
    EXPECT_TRUE((*shipper)->Health().ok());
    EXPECT_TRUE(replica->Health().ok());
    CheckAnswers(log, log.last_acked_generation, 60, "chaos",
                 [&](Vertex s, Vertex t) { return replica->Query(s, t); });
  }
}

}  // namespace
}  // namespace dspc
