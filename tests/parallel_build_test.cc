// Build-equivalence harness for the parallel HP-SPC constructor
// (core/parallel_build.h, DESIGN.md §12).
//
// The contract under test is strong: BuildSpcIndexParallel is
// label-identical to BuildSpcIndex under the same ordering — not merely
// query-equivalent — for every graph family, thread count, and batch
// strategy. Label identity is what keeps v2 serializations byte-identical
// (recovery_test.cc compares checkpoints bit-for-bit), so the determinism
// tests below check serialized bytes, not just query answers.

#include <cstddef>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "dspc/common/binary_io.h"
#include "dspc/common/thread_pool.h"
#include "dspc/core/dynamic_spc.h"
#include "dspc/core/flat_spc_index.h"
#include "dspc/core/hp_spc.h"
#include "dspc/core/parallel_build.h"
#include "dspc/graph/generators.h"
#include "test_util.h"

namespace dspc {
namespace {

struct Family {
  const char* name;
  Graph graph;
};

// Several components of different shapes plus isolated vertices, so the
// batched merge crosses component boundaries (a component head's BFS
// floods its whole component — the worst case for window independence).
Graph DisconnectedGraph() {
  const Graph a = GenerateRmat(6, 140, 5);
  const Graph b = GeneratePath(17);
  const Graph c = GenerateCycle(9);
  const size_t na = a.NumVertices();
  const size_t nb = b.NumVertices();
  Graph g(na + nb + c.NumVertices() + 3);  // +3 isolated vertices
  for (const Edge& e : a.Edges()) g.AddEdge(e.u, e.v);
  for (const Edge& e : b.Edges()) {
    g.AddEdge(static_cast<Vertex>(na + e.u), static_cast<Vertex>(na + e.v));
  }
  for (const Edge& e : c.Edges()) {
    g.AddEdge(static_cast<Vertex>(na + nb + e.u),
              static_cast<Vertex>(na + nb + e.v));
  }
  return g;
}

// Every vertex of a random base graph gets a twin with the identical
// neighborhood (self-loop-free duplicates): maximal equal-distance ties,
// so path counts — not just distances — must survive the parallel merge.
// Each edge is inserted twice to exercise the duplicate-edge rejection.
Graph TwinGraph() {
  const Graph base = testing::RandomGraph(40, 90, 77);
  const size_t n = base.NumVertices();
  Graph g(2 * n);
  for (const Edge& e : base.Edges()) {
    const Vertex us[] = {e.u, static_cast<Vertex>(e.u + n)};
    const Vertex vs[] = {e.v, static_cast<Vertex>(e.v + n)};
    for (const Vertex u : us) {
      for (const Vertex v : vs) {
        EXPECT_TRUE(g.AddEdge(u, v));
        EXPECT_FALSE(g.AddEdge(u, v));  // duplicates must be rejected
      }
    }
  }
  return g;
}

std::vector<Family> Families() {
  std::vector<Family> fams;
  fams.push_back({"rmat", GenerateRmat(8, 1400, 19)});
  fams.push_back({"path", GeneratePath(97)});
  fams.push_back({"star", GenerateStar(64)});
  fams.push_back({"disconnected", DisconnectedGraph()});
  fams.push_back({"twins", TwinGraph()});
  return fams;
}

// Structural invariants of a finished index: ValidateStructure plus the
// canonical label-set shape — hubs strictly ascending by rank, every
// non-self hub outranking the owner, and the self label (rank(v), 0, 1)
// last.
void CheckInvariants(const SpcIndex& index, const char* context) {
  const Status st = index.ValidateStructure();
  ASSERT_TRUE(st.ok()) << context << ": " << st.message();
  for (Vertex v = 0; v < index.NumVertices(); ++v) {
    const LabelSet& ls = index.Labels(v);
    ASSERT_FALSE(ls.empty()) << context << " v=" << v;
    for (size_t i = 0; i + 1 < ls.size(); ++i) {
      EXPECT_LT(ls[i].hub, ls[i + 1].hub) << context << " v=" << v;
      EXPECT_LT(ls[i].hub, index.RankOf(v)) << context << " v=" << v;
    }
    EXPECT_EQ(ls.back().hub, index.RankOf(v)) << context << " v=" << v;
    EXPECT_EQ(ls.back().dist, 0u) << context << " v=" << v;
    EXPECT_EQ(ls.back().count, 1u) << context << " v=" << v;
  }
}

void ExpectSamePairAnswers(const SpcIndex& parallel, const SpcIndex& seq,
                           const char* context) {
  const size_t n = seq.NumVertices();
  for (Vertex s = 0; s < n; ++s) {
    for (Vertex t = 0; t < n; ++t) {
      const SpcResult got = parallel.Query(s, t);
      const SpcResult want = seq.Query(s, t);
      ASSERT_EQ(got.dist, want.dist) << context << " s=" << s << " t=" << t;
      ASSERT_EQ(got.count, want.count) << context << " s=" << s << " t=" << t;
    }
  }
}

using BuildParam = std::tuple<unsigned, BuildBatchStrategy>;

std::string BuildParamName(const ::testing::TestParamInfo<BuildParam>& info) {
  const char* strategy = "Auto";
  switch (std::get<1>(info.param)) {
    case BuildBatchStrategy::kAuto:
      strategy = "Auto";
      break;
    case BuildBatchStrategy::kRankWindow:
      strategy = "RankWindow";
      break;
    case BuildBatchStrategy::kFrontier:
      strategy = "Frontier";
      break;
  }
  return std::string(strategy) + "T" + std::to_string(std::get<0>(info.param));
}

class ParallelBuildEquivalenceTest
    : public ::testing::TestWithParam<BuildParam> {};

// The headline contract: for every family, the parallel build is
// label-identical to the sequential build and answers every (s, t) pair
// identically.
TEST_P(ParallelBuildEquivalenceTest, MatchesSequentialOnEveryFamily) {
  const auto [threads, strategy] = GetParam();
  ParallelBuildOptions opts;
  opts.threads = threads;
  opts.batch_strategy = strategy;
  for (const Family& fam : Families()) {
    const SpcIndex seq = BuildSpcIndex(fam.graph);
    const SpcIndex parallel =
        BuildSpcIndexParallel(fam.graph, OrderingOptions{}, opts);
    CheckInvariants(parallel, fam.name);
    EXPECT_TRUE(parallel == seq) << fam.name << ": label sets differ";
    ExpectSamePairAnswers(parallel, seq, fam.name);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ParallelBuildEquivalenceTest,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 8u),
                       ::testing::Values(BuildBatchStrategy::kAuto,
                                         BuildBatchStrategy::kRankWindow,
                                         BuildBatchStrategy::kFrontier)),
    BuildParamName);

// Ground truth, not just cross-implementation agreement: the parallel
// index must answer like all-pairs BFS counting.
TEST(ParallelBuildTest, MatchesBfsGroundTruth) {
  ParallelBuildOptions opts;
  opts.threads = 3;
  for (const Family& fam : Families()) {
    const SpcIndex parallel =
        BuildSpcIndexParallel(fam.graph, OrderingOptions{}, opts);
    testing::ExpectIndexMatchesBfs(fam.graph, parallel, fam.name);
  }
}

// Degenerate window sizes force every batching edge case: window = 1 is
// pure hub-at-a-time batching (no mates, no suspects), tiny windows
// maximize suspect re-runs, and a window larger than the graph is a
// single batch.
TEST(ParallelBuildTest, WindowSizeSweep) {
  const Graph g = GenerateRmat(7, 600, 31);
  const SpcIndex seq = BuildSpcIndex(g);
  for (const size_t window : {size_t{1}, size_t{2}, size_t{3}, size_t{7},
                              size_t{64}, size_t{100000}}) {
    ParallelBuildOptions opts;
    opts.threads = 4;
    opts.batch_strategy = BuildBatchStrategy::kRankWindow;
    opts.rank_window = window;
    const SpcIndex parallel = BuildSpcIndexParallel(g, OrderingOptions{}, opts);
    EXPECT_TRUE(parallel == seq) << "window=" << window;
  }
}

// An externally owned pool is reusable across builds and honored for the
// thread count.
TEST(ParallelBuildTest, ReusesCallerPool) {
  ThreadPool pool(3);
  const Graph g = GenerateRmat(7, 600, 47);
  const SpcIndex seq = BuildSpcIndex(g);
  for (int rep = 0; rep < 2; ++rep) {
    const SpcIndex parallel =
        BuildSpcIndexParallel(g, OrderingOptions{}, {}, &pool);
    EXPECT_TRUE(parallel == seq) << "rep=" << rep;
  }
}

// Edge cases the batching loops must not trip over: empty graph, all
// vertices isolated, a single vertex, and a single edge — under explicit
// thread counts so the parallel path (not the small-graph fallback) runs.
TEST(ParallelBuildTest, DegenerateGraphs) {
  const Family degenerate[] = {
      {"empty", Graph()},
      {"isolated", Graph(5)},
      {"single", Graph(1)},
      {"one_edge", Graph(2, {{0, 1}})},
  };
  for (const Family& fam : degenerate) {
    for (const BuildBatchStrategy strategy :
         {BuildBatchStrategy::kAuto, BuildBatchStrategy::kRankWindow,
          BuildBatchStrategy::kFrontier}) {
      ParallelBuildOptions opts;
      opts.threads = 8;
      opts.batch_strategy = strategy;
      const SpcIndex seq = BuildSpcIndex(fam.graph);
      const SpcIndex parallel =
          BuildSpcIndexParallel(fam.graph, OrderingOptions{}, opts);
      EXPECT_TRUE(parallel == seq) << fam.name;
    }
  }
}

// Determinism, satellite 4: repeated parallel builds — across repetitions,
// thread counts, and strategies — produce v2 images byte-identical to the
// sequential build's, so checkpoint digests never depend on scheduling.
TEST(ParallelBuildDeterminismTest, ByteIdenticalV2Serializations) {
  const Graph g = GenerateRmat(8, 1400, 23);
  const auto image = [](const SpcIndex& index) {
    BinaryWriter w;
    FlatSpcIndex(index).SaveImage(&w);
    return w.buffer();
  };
  const std::vector<uint8_t> want = image(BuildSpcIndex(g));
  const uint32_t want_crc = Crc32(want.data(), want.size());
  for (int rep = 0; rep < 3; ++rep) {
    for (const unsigned threads : {2u, 3u, 8u}) {
      for (const BuildBatchStrategy strategy :
           {BuildBatchStrategy::kAuto, BuildBatchStrategy::kRankWindow,
            BuildBatchStrategy::kFrontier}) {
        ParallelBuildOptions opts;
        opts.threads = threads;
        opts.batch_strategy = strategy;
        const std::vector<uint8_t> got =
            image(BuildSpcIndexParallel(g, OrderingOptions{}, opts));
        ASSERT_EQ(Crc32(got.data(), got.size()), want_crc)
            << "rep=" << rep << " threads=" << threads;
        ASSERT_EQ(got, want) << "rep=" << rep << " threads=" << threads;
      }
    }
  }
}

// The serialized image also round-trips: an index built in parallel,
// saved, and reloaded still equals the sequential build.
TEST(ParallelBuildDeterminismTest, RoundTripsThroughV2Image) {
  const Graph g = GenerateRmat(7, 600, 29);
  ParallelBuildOptions opts;
  opts.threads = 8;
  const SpcIndex parallel = BuildSpcIndexParallel(g, OrderingOptions{}, opts);
  const std::string path = ::testing::TempDir() + "/parallel_build_v2.bin";
  ASSERT_TRUE(FlatSpcIndex(parallel).Save(path).ok());
  SpcIndex reloaded;
  ASSERT_TRUE(SpcIndex::Load(path, &reloaded).ok());
  EXPECT_TRUE(reloaded == BuildSpcIndex(g));
}

// Engine integration: an engine configured with build.threads uses the
// parallel builder for construction and Rebuild(), and its state matches
// a sequentially built engine after identical updates.
TEST(ParallelBuildEngineTest, RebuildStaysExact) {
  const Graph start = GenerateRmat(7, 500, 9);
  DynamicSpcOptions par_opts;
  par_opts.build.threads = 3;
  DynamicSpcOptions seq_opts;
  seq_opts.build.threads = 1;
  DynamicSpcIndex par(start, par_opts);
  DynamicSpcIndex seq(start, seq_opts);
  EXPECT_TRUE(par.index() == seq.index());
  const Edge updates[] = {{3, 97}, {15, 101}, {44, 63}, {2, 120}};
  for (const Edge& e : updates) {
    par.InsertEdge(e.u, e.v);
    seq.InsertEdge(e.u, e.v);
  }
  par.Rebuild();
  seq.Rebuild();
  EXPECT_TRUE(par.index() == seq.index());
  testing::ExpectIndexMatchesBfs(par.graph(), par.index(),
                                 "parallel rebuild");
}

}  // namespace
}  // namespace dspc
