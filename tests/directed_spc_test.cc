// Directed DSPC (Appendix C.1): build, query, and dynamic maintenance
// verified against directed BFS ground truth.

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "dspc/baseline/bfs_counting.h"
#include "dspc/common/rng.h"
#include "dspc/core/directed_spc.h"
#include "dspc/graph/generators.h"

namespace dspc {
namespace {

void ExpectMatchesDirectedBfs(const Digraph& g,
                              const DynamicDirectedSpcIndex& index,
                              const std::string& context = "") {
  for (Vertex s = 0; s < g.NumVertices(); ++s) {
    const SsspCounts truth = BfsCount(g, s);
    for (Vertex t = 0; t < g.NumVertices(); ++t) {
      const SpcResult got = index.Query(s, t);
      ASSERT_EQ(got.dist, truth.dist[t])
          << context << " dist mismatch s=" << s << " t=" << t;
      ASSERT_EQ(got.count, truth.count[t])
          << context << " count mismatch s=" << s << " t=" << t;
    }
  }
}

TEST(DirectedBuild, TinyDag) {
  // s -> {a, b} -> t: two shortest s->t paths, none t->s.
  Digraph g(4);
  g.AddArc(0, 1);
  g.AddArc(0, 2);
  g.AddArc(1, 3);
  g.AddArc(2, 3);
  DynamicDirectedSpcIndex index(g);
  EXPECT_EQ(index.Query(0, 3).dist, 2u);
  EXPECT_EQ(index.Query(0, 3).count, 2u);
  EXPECT_EQ(index.Query(3, 0).dist, kInfDistance);
  EXPECT_EQ(index.Query(3, 0).count, 0u);
  ExpectMatchesDirectedBfs(g, index);
}

TEST(DirectedBuild, AsymmetryMatters) {
  // A directed cycle: d(u,v) wraps one way only.
  Digraph g(5);
  for (Vertex v = 0; v < 5; ++v) g.AddArc(v, (v + 1) % 5);
  DynamicDirectedSpcIndex index(g);
  EXPECT_EQ(index.Query(0, 4).dist, 4u);
  EXPECT_EQ(index.Query(4, 0).dist, 1u);
  ExpectMatchesDirectedBfs(g, index);
}

TEST(DirectedBuild, SelfQuery) {
  Digraph g = GenerateRandomDigraph(10, 20, 3);
  DynamicDirectedSpcIndex index(g);
  for (Vertex v = 0; v < 10; ++v) {
    EXPECT_EQ(index.Query(v, v).dist, 0u);
    EXPECT_EQ(index.Query(v, v).count, 1u);
  }
}

class DirectedBuildPropertyTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, uint64_t>> {};

TEST_P(DirectedBuildPropertyTest, MatchesBfs) {
  const auto [n, m, seed] = GetParam();
  const Digraph g = GenerateRandomDigraph(n, m, seed);
  DynamicDirectedSpcIndex index(g);
  ASSERT_TRUE(index.ValidateStructure().ok());
  ExpectMatchesDirectedBfs(g, index);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DirectedBuildPropertyTest,
    ::testing::Values(std::make_tuple(8, 14, 1), std::make_tuple(12, 30, 2),
                      std::make_tuple(16, 40, 3), std::make_tuple(20, 100, 4),
                      std::make_tuple(24, 60, 5), std::make_tuple(32, 96, 6),
                      std::make_tuple(40, 120, 7), std::make_tuple(12, 131, 8)));

class DirectedDynamicPropertyTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, uint64_t>> {};

TEST_P(DirectedDynamicPropertyTest, HybridStreamKeepsExactness) {
  const auto [n, m, seed] = GetParam();
  Digraph g = GenerateRandomDigraph(n, m, seed);
  DynamicDirectedSpcIndex index(std::move(g));
  Rng rng(seed ^ 0xD16Au);
  for (int step = 0; step < 30; ++step) {
    if (rng.NextBool(0.5)) {
      const auto u = static_cast<Vertex>(rng.NextBounded(n));
      const auto v = static_cast<Vertex>(rng.NextBounded(n));
      if (u != v && !index.graph().HasArc(u, v)) index.InsertArc(u, v);
    } else {
      const std::vector<Edge> arcs = index.graph().Arcs();
      if (arcs.empty()) continue;
      const Edge e = arcs[rng.NextBounded(arcs.size())];
      index.RemoveArc(e.u, e.v);
    }
    ASSERT_TRUE(index.ValidateStructure().ok()) << "step " << step;
    ExpectMatchesDirectedBfs(index.graph(), index,
                             "step " + std::to_string(step));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DirectedDynamicPropertyTest,
    ::testing::Values(std::make_tuple(8, 16, 1), std::make_tuple(12, 28, 2),
                      std::make_tuple(16, 48, 3), std::make_tuple(20, 50, 4),
                      std::make_tuple(24, 96, 5), std::make_tuple(30, 70, 6),
                      std::make_tuple(16, 120, 7), std::make_tuple(40, 90, 8)));

TEST(DirectedDynamic, ReverseArcDistinctFromForward) {
  Digraph g(3);
  g.AddArc(0, 1);
  g.AddArc(1, 2);
  DynamicDirectedSpcIndex index(std::move(g));
  EXPECT_EQ(index.Query(0, 2).dist, 2u);
  // Inserting the reverse arc 2->0 creates a cycle but must not change
  // the forward distances.
  index.InsertArc(2, 0);
  EXPECT_EQ(index.Query(0, 2).dist, 2u);
  EXPECT_EQ(index.Query(2, 1).dist, 2u);
  ExpectMatchesDirectedBfs(index.graph(), index);
}

TEST(DirectedDynamic, VertexInsertAndRemove) {
  Digraph g = GenerateRandomDigraph(10, 24, 9);
  DynamicDirectedSpcIndex index(std::move(g));
  const Vertex v = index.AddVertex();
  EXPECT_EQ(v, 10u);
  index.InsertArc(v, 0);
  index.InsertArc(3, v);
  ExpectMatchesDirectedBfs(index.graph(), index);
  index.RemoveVertex(v);
  EXPECT_EQ(index.graph().OutDegree(v), 0u);
  EXPECT_EQ(index.graph().InDegree(v), 0u);
  ExpectMatchesDirectedBfs(index.graph(), index);
}

TEST(DirectedDynamic, RebuildMatchesMaintained) {
  Digraph g = GenerateRmatDigraph(5, 80, 11);
  const size_t n = g.NumVertices();
  DynamicDirectedSpcIndex maintained(g);
  Rng rng(77);
  for (int step = 0; step < 25; ++step) {
    if (rng.NextBool(0.6)) {
      const auto u = static_cast<Vertex>(rng.NextBounded(n));
      const auto v = static_cast<Vertex>(rng.NextBounded(n));
      if (u != v && !maintained.graph().HasArc(u, v)) {
        maintained.InsertArc(u, v);
      }
    } else {
      const std::vector<Edge> arcs = maintained.graph().Arcs();
      if (arcs.empty()) continue;
      const Edge e = arcs[rng.NextBounded(arcs.size())];
      maintained.RemoveArc(e.u, e.v);
    }
  }
  DynamicDirectedSpcIndex rebuilt(maintained.graph());
  for (Vertex s = 0; s < n; ++s) {
    for (Vertex t = 0; t < n; ++t) {
      const SpcResult a = maintained.Query(s, t);
      const SpcResult b = rebuilt.Query(s, t);
      ASSERT_EQ(a.dist, b.dist);
      ASSERT_EQ(a.count, b.count);
    }
  }
}

TEST(DirectedDynamic, NoopUpdates) {
  Digraph g(4);
  g.AddArc(0, 1);
  DynamicDirectedSpcIndex index(std::move(g));
  EXPECT_FALSE(index.InsertArc(0, 1).applied);  // duplicate
  EXPECT_FALSE(index.InsertArc(2, 2).applied);  // self loop
  EXPECT_FALSE(index.RemoveArc(1, 0).applied);  // absent direction
  EXPECT_EQ(index.Query(0, 1).dist, 1u);
}

}  // namespace
}  // namespace dspc
