// Property tests: the central correctness argument of the repository.
//
// For many random graphs (several generators, sizes, densities, orderings)
// and long random update streams, after *every* IncSPC/DecSPC update the
// index must (a) answer all-pairs queries exactly like BFS on the current
// graph, and (b) keep its structural invariants. This subsumes Theorems
// 3.7 and 3.16 (ESPC preservation) empirically.

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "dspc/common/rng.h"
#include "dspc/core/dynamic_spc.h"
#include "dspc/core/hp_spc.h"
#include "dspc/graph/generators.h"
#include "dspc/graph/graph.h"
#include "test_util.h"

namespace dspc {
namespace {

using testing::ExpectIndexMatchesBfs;
using testing::RandomGraph;

// ---------------------------------------------------------------------------
// Randomized insert-only streams.
// ---------------------------------------------------------------------------

class IncrementalPropertyTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, uint64_t>> {};

TEST_P(IncrementalPropertyTest, EveryInsertKeepsEspc) {
  const auto [n, m, seed] = GetParam();
  Graph g = RandomGraph(n, m, seed);
  DynamicSpcIndex dyn(g);
  Rng rng(seed ^ 0xFEEDu);
  for (int step = 0; step < 25; ++step) {
    const auto u = static_cast<Vertex>(rng.NextBounded(n));
    const auto v = static_cast<Vertex>(rng.NextBounded(n));
    if (u == v || dyn.graph().HasEdge(u, v)) continue;
    dyn.InsertEdge(u, v);
    ASSERT_TRUE(dyn.index().ValidateStructure().ok());
    ExpectIndexMatchesBfs(dyn.graph(), dyn.index(),
                          "insert step " + std::to_string(step));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IncrementalPropertyTest,
    ::testing::Values(std::make_tuple(8, 8, 1), std::make_tuple(12, 14, 2),
                      std::make_tuple(16, 20, 3), std::make_tuple(16, 40, 4),
                      std::make_tuple(24, 30, 5), std::make_tuple(24, 80, 6),
                      std::make_tuple(32, 48, 7), std::make_tuple(40, 60, 8),
                      std::make_tuple(40, 150, 9), std::make_tuple(50, 70, 10),
                      std::make_tuple(9, 36, 11),  // complete graph
                      std::make_tuple(30, 29, 12)));

// ---------------------------------------------------------------------------
// Randomized delete-only streams.
// ---------------------------------------------------------------------------

class DecrementalPropertyTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, uint64_t>> {};

TEST_P(DecrementalPropertyTest, EveryDeleteKeepsEspc) {
  const auto [n, m, seed] = GetParam();
  Graph g = RandomGraph(n, m, seed);
  DynamicSpcIndex dyn(g);
  Rng rng(seed ^ 0xDEADu);
  for (int step = 0; step < 25; ++step) {
    const std::vector<Edge> edges = dyn.graph().Edges();
    if (edges.empty()) break;
    const Edge e = edges[rng.NextBounded(edges.size())];
    dyn.RemoveEdge(e.u, e.v);
    ASSERT_TRUE(dyn.index().ValidateStructure().ok());
    ExpectIndexMatchesBfs(dyn.graph(), dyn.index(),
                          "delete step " + std::to_string(step));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DecrementalPropertyTest,
    ::testing::Values(std::make_tuple(8, 10, 1), std::make_tuple(12, 18, 2),
                      std::make_tuple(16, 24, 3), std::make_tuple(16, 48, 4),
                      std::make_tuple(24, 40, 5), std::make_tuple(24, 90, 6),
                      std::make_tuple(32, 56, 7), std::make_tuple(40, 70, 8),
                      std::make_tuple(40, 160, 9), std::make_tuple(50, 80, 10),
                      std::make_tuple(9, 36, 11),
                      std::make_tuple(30, 29, 12)));

// ---------------------------------------------------------------------------
// Hybrid streams over structured generators.
// ---------------------------------------------------------------------------

enum class Gen { kEr, kBa, kWs, kGrid, kStar, kCycle, kBipartite };

class HybridPropertyTest
    : public ::testing::TestWithParam<std::tuple<Gen, uint64_t>> {};

Graph MakeGenGraph(Gen gen, uint64_t seed) {
  switch (gen) {
    case Gen::kEr:
      return GenerateErdosRenyi(30, 60, seed);
    case Gen::kBa:
      return GenerateBarabasiAlbert(30, 2, seed);
    case Gen::kWs:
      return GenerateWattsStrogatz(30, 2, 0.3, seed);
    case Gen::kGrid:
      return GenerateGrid(5, 6);
    case Gen::kStar:
      return GenerateStar(30);
    case Gen::kCycle:
      return GenerateCycle(30);
    case Gen::kBipartite:
      return GenerateCompleteBipartite(6, 8);
  }
  return Graph(0);
}

TEST_P(HybridPropertyTest, MixedStreamKeepsEspc) {
  const auto [gen, seed] = GetParam();
  Graph g = MakeGenGraph(gen, seed);
  const size_t n = g.NumVertices();
  DynamicSpcIndex dyn(std::move(g));
  Rng rng(seed ^ 0xC0FFEEu);
  for (int step = 0; step < 30; ++step) {
    if (rng.NextBool(0.5)) {
      const auto u = static_cast<Vertex>(rng.NextBounded(n));
      const auto v = static_cast<Vertex>(rng.NextBounded(n));
      if (u != v && !dyn.graph().HasEdge(u, v)) dyn.InsertEdge(u, v);
    } else {
      const std::vector<Edge> edges = dyn.graph().Edges();
      if (edges.empty()) continue;
      const Edge e = edges[rng.NextBounded(edges.size())];
      dyn.RemoveEdge(e.u, e.v);
    }
    ASSERT_TRUE(dyn.index().ValidateStructure().ok());
    ExpectIndexMatchesBfs(dyn.graph(), dyn.index(),
                          "hybrid step " + std::to_string(step));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HybridPropertyTest,
    ::testing::Combine(::testing::Values(Gen::kEr, Gen::kBa, Gen::kWs,
                                         Gen::kGrid, Gen::kStar, Gen::kCycle,
                                         Gen::kBipartite),
                       ::testing::Values(11u, 22u, 33u)));

// ---------------------------------------------------------------------------
// Ordering robustness: correctness must not depend on the ordering choice.
// ---------------------------------------------------------------------------

class OrderingRobustnessTest
    : public ::testing::TestWithParam<OrderingStrategy> {};

TEST_P(OrderingRobustnessTest, UpdatesExactUnderAnyOrdering) {
  Graph g = RandomGraph(24, 40, 77);
  DynamicSpcOptions options;
  options.ordering.strategy = GetParam();
  options.ordering.seed = 99;
  DynamicSpcIndex dyn(std::move(g), options);
  Rng rng(123);
  for (int step = 0; step < 20; ++step) {
    if (rng.NextBool(0.5)) {
      const auto u = static_cast<Vertex>(rng.NextBounded(24));
      const auto v = static_cast<Vertex>(rng.NextBounded(24));
      if (u != v && !dyn.graph().HasEdge(u, v)) dyn.InsertEdge(u, v);
    } else {
      const std::vector<Edge> edges = dyn.graph().Edges();
      if (edges.empty()) continue;
      const Edge e = edges[rng.NextBounded(edges.size())];
      dyn.RemoveEdge(e.u, e.v);
    }
    ExpectIndexMatchesBfs(dyn.graph(), dyn.index());
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, OrderingRobustnessTest,
                         ::testing::Values(OrderingStrategy::kDegree,
                                           OrderingStrategy::kRandom,
                                           OrderingStrategy::kDegreeJitter,
                                           OrderingStrategy::kIdentity));

// ---------------------------------------------------------------------------
// Vertex-level dynamics.
// ---------------------------------------------------------------------------

TEST(VertexDynamicsTest, AddVertexThenConnect) {
  Graph g = RandomGraph(12, 20, 5);
  DynamicSpcIndex dyn(std::move(g));
  const Vertex v = dyn.AddVertex();
  EXPECT_EQ(v, 12u);
  // Isolated: disconnected from everything, self-query works.
  EXPECT_EQ(dyn.Query(v, 0).dist, kInfDistance);
  EXPECT_EQ(dyn.Query(v, v).count, 1u);
  dyn.InsertEdge(v, 3);
  dyn.InsertEdge(v, 7);
  ExpectIndexMatchesBfs(dyn.graph(), dyn.index());
}

TEST(VertexDynamicsTest, RemoveVertexDropsAllItsEdges) {
  Graph g = RandomGraph(14, 30, 6);
  DynamicSpcIndex dyn(std::move(g));
  const UpdateStats stats = dyn.RemoveVertex(2);
  EXPECT_TRUE(stats.applied);
  EXPECT_EQ(dyn.graph().Degree(2), 0u);
  EXPECT_EQ(dyn.Query(2, 2).dist, 0u);
  ExpectIndexMatchesBfs(dyn.graph(), dyn.index());
}

TEST(VertexDynamicsTest, GrowGraphFromNothing) {
  Graph g(1);
  DynamicSpcIndex dyn(std::move(g));
  std::vector<Vertex> ids = {0};
  Rng rng(31);
  for (int i = 0; i < 12; ++i) {
    const Vertex v = dyn.AddVertex();
    // Connect to a random existing vertex (BA-flavored growth).
    const Vertex u = ids[rng.NextBounded(ids.size())];
    dyn.InsertEdge(v, u);
    ids.push_back(v);
  }
  ExpectIndexMatchesBfs(dyn.graph(), dyn.index());
  ASSERT_TRUE(dyn.index().ValidateStructure().ok());
}

// ---------------------------------------------------------------------------
// Equivalence with reconstruction: after a long hybrid stream, queries
// must agree with a fresh HP-SPC build of the final graph (the index
// itself may legitimately differ — IncSPC keeps redundant labels).
// ---------------------------------------------------------------------------

TEST(ReconstructionEquivalenceTest, QueriesAgreeAfterLongStream) {
  Graph g = GenerateBarabasiAlbert(40, 2, 9);
  DynamicSpcIndex dyn(g);
  Rng rng(90);
  const size_t n = dyn.graph().NumVertices();
  for (int step = 0; step < 60; ++step) {
    if (rng.NextBool(0.6)) {
      const auto u = static_cast<Vertex>(rng.NextBounded(n));
      const auto v = static_cast<Vertex>(rng.NextBounded(n));
      if (u != v && !dyn.graph().HasEdge(u, v)) dyn.InsertEdge(u, v);
    } else {
      const std::vector<Edge> edges = dyn.graph().Edges();
      if (edges.empty()) continue;
      const Edge e = edges[rng.NextBounded(edges.size())];
      dyn.RemoveEdge(e.u, e.v);
    }
  }
  const SpcIndex rebuilt = BuildSpcIndex(dyn.graph());
  for (Vertex s = 0; s < n; ++s) {
    for (Vertex t = 0; t < n; ++t) {
      const SpcResult a = dyn.index().Query(s, t);
      const SpcResult b = rebuilt.Query(s, t);
      ASSERT_EQ(a.dist, b.dist) << "s=" << s << " t=" << t;
      ASSERT_EQ(a.count, b.count) << "s=" << s << " t=" << t;
    }
  }
}

// ---------------------------------------------------------------------------
// No-op updates must not disturb anything.
// ---------------------------------------------------------------------------

TEST(NoopUpdateTest, InsertExistingAndDeleteMissing) {
  Graph g = RandomGraph(16, 24, 4);
  DynamicSpcIndex dyn(g);
  const Edge e = dyn.graph().Edges().front();
  const UpdateStats ins = dyn.InsertEdge(e.u, e.v);
  EXPECT_FALSE(ins.applied);
  const UpdateStats self_loop = dyn.InsertEdge(3, 3);
  EXPECT_FALSE(self_loop.applied);
  // Find a non-edge.
  Vertex u = 0;
  Vertex v = 0;
  for (u = 0; u < 16; ++u) {
    bool found = false;
    for (v = u + 1; v < 16; ++v) {
      if (!dyn.graph().HasEdge(u, v)) {
        found = true;
        break;
      }
    }
    if (found) break;
  }
  const UpdateStats del = dyn.RemoveEdge(u, v);
  EXPECT_FALSE(del.applied);
  ExpectIndexMatchesBfs(dyn.graph(), dyn.index());
}

}  // namespace
}  // namespace dspc
