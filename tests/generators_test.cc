// Unit tests for the synthetic graph generators and vertex orderings.

#include <gtest/gtest.h>

#include <algorithm>

#include "dspc/graph/generators.h"
#include "dspc/graph/ordering.h"

namespace dspc {
namespace {

TEST(GeneratorsTest, ErdosRenyiShape) {
  const Graph g = GenerateErdosRenyi(100, 250, 1);
  EXPECT_EQ(g.NumVertices(), 100u);
  EXPECT_EQ(g.NumEdges(), 250u);
}

TEST(GeneratorsTest, ErdosRenyiDeterministic) {
  const Graph a = GenerateErdosRenyi(50, 100, 7);
  const Graph b = GenerateErdosRenyi(50, 100, 7);
  EXPECT_EQ(a.Edges(), b.Edges());
  const Graph c = GenerateErdosRenyi(50, 100, 8);
  EXPECT_NE(a.Edges(), c.Edges());
}

TEST(GeneratorsTest, ErdosRenyiClampsToCompleteGraph) {
  const Graph g = GenerateErdosRenyi(5, 1000, 2);
  EXPECT_EQ(g.NumEdges(), 10u);  // C(5,2)
}

TEST(GeneratorsTest, BarabasiAlbertSkew) {
  const Graph g = GenerateBarabasiAlbert(500, 2, 3);
  EXPECT_EQ(g.NumVertices(), 500u);
  EXPECT_GE(g.NumEdges(), 500u);
  // Preferential attachment should produce a clearly-skewed degree
  // distribution: max degree far above the mean.
  size_t max_deg = 0;
  for (Vertex v = 0; v < 500; ++v) max_deg = std::max(max_deg, g.Degree(v));
  const double mean_deg = 2.0 * g.NumEdges() / g.NumVertices();
  EXPECT_GT(static_cast<double>(max_deg), 4.0 * mean_deg);
}

TEST(GeneratorsTest, WattsStrogatzKeepsDegreeMass) {
  const Graph g = GenerateWattsStrogatz(200, 3, 0.2, 4);
  EXPECT_EQ(g.NumVertices(), 200u);
  // Ring lattice has n*k edges; rewiring preserves the count.
  EXPECT_EQ(g.NumEdges(), 600u);
}

TEST(GeneratorsTest, RmatPowerLaw) {
  const Graph g = GenerateRmat(10, 4000, 5);
  EXPECT_EQ(g.NumVertices(), 1024u);
  EXPECT_GT(g.NumEdges(), 3000u);  // some duplicates collapse
  size_t max_deg = 0;
  for (Vertex v = 0; v < g.NumVertices(); ++v) {
    max_deg = std::max(max_deg, g.Degree(v));
  }
  const double mean_deg = 2.0 * g.NumEdges() / g.NumVertices();
  EXPECT_GT(static_cast<double>(max_deg), 5.0 * mean_deg);
}

TEST(GeneratorsTest, GridStructure) {
  const Graph g = GenerateGrid(4, 5);
  EXPECT_EQ(g.NumVertices(), 20u);
  // rows*(cols-1) + (rows-1)*cols edges.
  EXPECT_EQ(g.NumEdges(), 4u * 4u + 3u * 5u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(0, 5));
  EXPECT_FALSE(g.HasEdge(4, 5));  // row wrap must not connect
}

TEST(GeneratorsTest, SmallFixtures) {
  EXPECT_EQ(GeneratePath(5).NumEdges(), 4u);
  EXPECT_EQ(GenerateCycle(5).NumEdges(), 5u);
  EXPECT_EQ(GenerateStar(5).NumEdges(), 4u);
  EXPECT_EQ(GenerateComplete(5).NumEdges(), 10u);
  EXPECT_EQ(GenerateCompleteBipartite(3, 4).NumEdges(), 12u);
  EXPECT_EQ(GenerateCompleteBipartite(3, 4).NumVertices(), 7u);
}

TEST(GeneratorsTest, DirectedGenerators) {
  const Digraph g = GenerateRandomDigraph(50, 200, 6);
  EXPECT_EQ(g.NumVertices(), 50u);
  EXPECT_EQ(g.NumArcs(), 200u);
  const Digraph r = GenerateRmatDigraph(8, 500, 6);
  EXPECT_EQ(r.NumVertices(), 256u);
  EXPECT_GT(r.NumArcs(), 300u);
}

TEST(GeneratorsTest, AttachRandomWeightsInRange) {
  const Graph base = GenerateErdosRenyi(40, 80, 9);
  const WeightedGraph g = AttachRandomWeights(base, 2, 6, 10);
  EXPECT_EQ(g.NumVertices(), base.NumVertices());
  EXPECT_EQ(g.NumEdges(), base.NumEdges());
  for (const WeightedEdge& e : g.Edges()) {
    EXPECT_GE(e.w, 2u);
    EXPECT_LE(e.w, 6u);
  }
}

// --- Orderings -----------------------------------------------------------------

TEST(OrderingTest, DegreeOrderRanksHighDegreeFirst) {
  const Graph g = GenerateStar(6);  // center 0 has degree 5
  const VertexOrdering ord = BuildOrdering(g);
  EXPECT_TRUE(ord.IsValid());
  EXPECT_EQ(ord.rank_of[0], 0u);
  EXPECT_EQ(ord.vertex_of[0], 0u);
}

TEST(OrderingTest, DegreeTiesBrokenByIdStable) {
  const Graph g = GenerateCycle(6);  // all degree 2
  const VertexOrdering ord = BuildOrdering(g);
  for (Vertex v = 0; v < 6; ++v) EXPECT_EQ(ord.rank_of[v], v);
}

TEST(OrderingTest, RandomOrderIsPermutationAndSeeded) {
  const Graph g = GenerateCycle(20);
  OrderingOptions options;
  options.strategy = OrderingStrategy::kRandom;
  options.seed = 5;
  const VertexOrdering a = BuildOrdering(g, options);
  const VertexOrdering b = BuildOrdering(g, options);
  EXPECT_TRUE(a.IsValid());
  EXPECT_EQ(a.rank_of, b.rank_of);
  options.seed = 6;
  const VertexOrdering c = BuildOrdering(g, options);
  EXPECT_NE(a.rank_of, c.rank_of);
}

TEST(OrderingTest, JitterRespectsDegreeClasses) {
  Graph g = GenerateStar(8);
  OrderingOptions options;
  options.strategy = OrderingStrategy::kDegreeJitter;
  const VertexOrdering ord = BuildOrdering(g, options);
  EXPECT_TRUE(ord.IsValid());
  EXPECT_EQ(ord.rank_of[0], 0u);  // unique max degree stays first
}

TEST(OrderingTest, AppendAddsLowestRank) {
  const Graph g = GenerateCycle(4);
  VertexOrdering ord = BuildOrdering(g);
  ord.Append();
  EXPECT_TRUE(ord.IsValid());
  EXPECT_EQ(ord.rank_of[4], 4u);
}

TEST(OrderingTest, IsValidCatchesCorruption) {
  VertexOrdering ord;
  ord.rank_of = {0, 1};
  ord.vertex_of = {0, 0};  // not a permutation
  EXPECT_FALSE(ord.IsValid());
  ord.vertex_of = {0};  // size mismatch
  EXPECT_FALSE(ord.IsValid());
}

TEST(OrderingTest, DirectedAndWeightedOverloads) {
  const Digraph dg = GenerateRandomDigraph(12, 40, 2);
  EXPECT_TRUE(BuildOrdering(dg).IsValid());
  const WeightedGraph wg =
      AttachRandomWeights(GenerateErdosRenyi(12, 20, 3), 1, 5, 4);
  EXPECT_TRUE(BuildOrdering(wg).IsValid());
}

}  // namespace
}  // namespace dspc
