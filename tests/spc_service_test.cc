// SpcService: admission validation, the consistency-mode lattice,
// generation tokens (read-your-writes), serving metadata (DESIGN.md §9),
// and the §10 operability surface — per-call deadlines, per-update
// WriteReports, and ServiceMetrics.

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <utility>
#include <vector>

#include "dspc/api/spc_service.h"
#include "dspc/baseline/bibfs_counting.h"
#include "dspc/common/rng.h"
#include "dspc/graph/generators.h"
#include "dspc/graph/update_stream.h"

namespace dspc {
namespace {

DynamicSpcOptions BackgroundOptions(size_t budget = 1) {
  DynamicSpcOptions options;
  options.snapshot.refresh = RefreshPolicy::kBackground;
  options.snapshot.rebuild_after_queries = budget;
  return options;
}

// --- admission ---------------------------------------------------------------

TEST(SpcServiceTest, RejectsOutOfRangeVertices) {
  SpcService service(GenerateBarabasiAlbert(30, 2, 5));
  const auto n = static_cast<Vertex>(service.NumVertices());

  EXPECT_TRUE(service.Query(n, 0).status().IsInvalidArgument());
  EXPECT_TRUE(service.Query(0, n + 7).status().IsInvalidArgument());
  EXPECT_TRUE(service.Query(kInvalidVertex, 0).status().IsInvalidArgument());
  EXPECT_TRUE(service.Query(0, 1).ok());

  const std::vector<VertexPair> bad = {{0, 1}, {2, n}, {3, 4}};
  const auto batch = service.QueryBatch(bad);
  EXPECT_TRUE(batch.status().IsInvalidArgument());
  // The message names the offending pair.
  EXPECT_NE(batch.status().message().find("pair 1"), std::string::npos);

  // Batch write admission is per update (DESIGN.md §10): the bad update
  // is rejected individually, the valid one still applies.
  const Edge good = SampleNonEdges(service.engine().graph(), 1, 3).at(0);
  const std::vector<Update> updates = {Update::Insert(good.u, good.v),
                                       Update::Insert(n, 1)};
  const auto write = service.ApplyUpdates(updates);
  ASSERT_TRUE(write.ok());
  ASSERT_EQ(write->reports.size(), 2u);
  EXPECT_EQ(write->reports[0].outcome, WriteReport::Outcome::kApplied);
  EXPECT_EQ(write->reports[1].outcome, WriteReport::Outcome::kRejected);
  EXPECT_NE(std::string(write->reports[1].reason).find("outside"),
            std::string::npos);
  EXPECT_EQ(write->applied, 1u);
  EXPECT_EQ(write->rejected, 1u);
  EXPECT_TRUE(service.engine().graph().HasEdge(good.u, good.v));

  // Single-edge conveniences keep the strict contract: a bad endpoint
  // fails the whole call.
  EXPECT_TRUE(service.InsertEdge(0, n).status().IsInvalidArgument());
  EXPECT_TRUE(service.RemoveEdge(n, 0).status().IsInvalidArgument());
  EXPECT_TRUE(service.RemoveVertex(n).status().IsInvalidArgument());
}

TEST(SpcServiceTest, RejectsFutureMinGeneration) {
  SpcService service(GenerateBarabasiAlbert(20, 2, 6));
  ReadOptions read;
  read.min_generation = service.Generation() + 100;
  EXPECT_TRUE(service.Query(0, 1, read).status().IsInvalidArgument());

  WriteToken forged{service.Generation() + 100};
  EXPECT_TRUE(service.WaitForSnapshot(forged).IsInvalidArgument());
}

// --- reads, writes, and answers ---------------------------------------------

TEST(SpcServiceTest, AnswersMatchBaselineAcrossConsistencyModes) {
  const Graph g = GenerateBarabasiAlbert(60, 2, 7);
  SpcService service(g, BackgroundOptions());
  ASSERT_TRUE(service.WaitForSnapshot({service.Generation()}).ok());

  Rng rng(17);
  for (const Consistency mode :
       {Consistency::kFresh, Consistency::kSnapshot,
        Consistency::kBoundedStaleness}) {
    for (int i = 0; i < 20; ++i) {
      const auto s = static_cast<Vertex>(rng.NextBounded(60));
      const auto t = static_cast<Vertex>(rng.NextBounded(60));
      ReadOptions read;
      read.consistency = mode;
      read.max_lag = 4;
      const auto resp = service.Query(s, t, read);
      ASSERT_TRUE(resp.ok()) << resp.status().ToString();
      // No updates have happened, so every mode answers exactly.
      EXPECT_EQ(resp->result, BiBfsCountPair(g, s, t));
      EXPECT_EQ(resp->staleness, 0u);
      EXPECT_EQ(resp->generation, service.Generation());
    }
  }
}

TEST(SpcServiceTest, WritesReturnMonotoneTokens) {
  SpcService service(GenerateBarabasiAlbert(40, 2, 9));
  const std::vector<Edge> candidates =
      SampleNonEdges(service.engine().graph(), 4, 3);
  ASSERT_GE(candidates.size(), 4u);

  uint64_t last = 0;
  for (const Edge& e : candidates) {
    const auto resp = service.InsertEdge(e.u, e.v);
    ASSERT_TRUE(resp.ok());
    EXPECT_TRUE(resp->stats.applied);
    EXPECT_GT(resp->token.generation, last);
    last = resp->token.generation;
  }

  const auto removed = service.RemoveEdge(candidates[0].u, candidates[0].v);
  ASSERT_TRUE(removed.ok());
  EXPECT_GT(removed->token.generation, last);
}

TEST(SpcServiceTest, ReadYourWritesViaToken) {
  SpcService service(GenerateBarabasiAlbert(50, 2, 11), BackgroundOptions(8));
  const Edge e = SampleNonEdges(service.engine().graph(), 1, 5).at(0);
  const SpcResult before = service.Query(e.u, e.v).value().result;

  const auto write = service.InsertEdge(e.u, e.v);
  ASSERT_TRUE(write.ok());
  ASSERT_TRUE(write->stats.applied);

  // A fresh read with the token observes the write immediately, without
  // any explicit quiesce.
  ReadOptions read;
  read.min_generation = write->token.generation;
  const auto after = service.Query(e.u, e.v, read);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->result, (SpcResult{1, 1}));
  EXPECT_NE(after->result, before);
  EXPECT_GE(after->generation, write->token.generation);

  // Bounded staleness with the token also observes it (escalating to the
  // live index when the snapshot still trails).
  read.consistency = Consistency::kBoundedStaleness;
  read.max_lag = 1000;
  const auto bounded = service.Query(e.u, e.v, read);
  ASSERT_TRUE(bounded.ok());
  EXPECT_EQ(bounded->result, (SpcResult{1, 1}));
  EXPECT_GE(bounded->generation, write->token.generation);
}

TEST(SpcServiceTest, SnapshotModeNeverBlocksAndReportsUnavailable) {
  // kManual with no published snapshot: kSnapshot reads cannot be served
  // without blocking, so they fail fast with kUnavailable.
  DynamicSpcOptions manual;
  manual.snapshot.refresh = RefreshPolicy::kManual;
  SpcService service(GenerateBarabasiAlbert(30, 2, 13), manual);
  ReadOptions snap;
  snap.consistency = Consistency::kSnapshot;
  EXPECT_TRUE(service.Query(0, 1, snap).status().IsUnavailable());

  // Publish explicitly; the same read now serves.
  ASSERT_NE(service.engine().FlatSnapshot(), nullptr);
  const auto resp = service.Query(0, 1, snap);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->served_from, ServedFrom::kSnapshot);

  // After an update the snapshot trails: a token-carrying kSnapshot read
  // refuses (Unavailable) rather than blocking or serving stale.
  const Edge e = SampleNonEdges(service.engine().graph(), 1, 6).at(0);
  const auto write = service.InsertEdge(e.u, e.v);
  ASSERT_TRUE(write.ok());
  snap.min_generation = write->token.generation;
  EXPECT_TRUE(service.Query(e.u, e.v, snap).status().IsUnavailable());

  // Tokenless kSnapshot still serves the old snapshot, tagged stale.
  snap.min_generation = 0;
  const auto stale = service.Query(e.u, e.v, snap);
  ASSERT_TRUE(stale.ok());
  EXPECT_GT(stale->staleness, 0u);
  EXPECT_LT(stale->generation, service.Generation());
}

TEST(SpcServiceTest, SnapshotModeRejectsVertexNewerThanSnapshot) {
  SpcService service(GenerateBarabasiAlbert(30, 2, 15), BackgroundOptions());
  ASSERT_TRUE(service.WaitForSnapshot({service.Generation()}).ok());

  const AddVertexResponse added = service.AddVertex();
  ReadOptions snap;
  snap.consistency = Consistency::kSnapshot;
  // The published snapshot predates the vertex; refusing beats blocking.
  const auto resp = service.Query(added.vertex, 0, snap);
  if (!resp.ok()) {
    EXPECT_TRUE(resp.status().IsUnavailable());
  }
  // kFresh serves it from the live index.
  const auto fresh = service.Query(added.vertex, 0);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->result.count, 0u);  // isolated

  // After the snapshot catches up, kSnapshot serves it too.
  ASSERT_TRUE(service.WaitForSnapshot(added.token).ok());
  EXPECT_TRUE(service.Query(added.vertex, 0, snap).ok());
}

TEST(SpcServiceTest, BoundedStalenessHonorsLagBound) {
  SpcService service(GenerateBarabasiAlbert(40, 2, 19),
                     BackgroundOptions(1000000));  // worker never nudged
  ASSERT_TRUE(service.WaitForSnapshot({service.Generation()}).ok());

  // Three updates leave the snapshot 3 generations behind.
  std::vector<Update> updates;
  for (const Edge& e : SampleNonEdges(service.engine().graph(), 3, 7)) {
    updates.push_back(Update::Insert(e.u, e.v));
  }
  const auto write = service.ApplyUpdates(updates);
  ASSERT_TRUE(write.ok());

  ReadOptions loose;
  loose.consistency = Consistency::kBoundedStaleness;
  loose.max_lag = 10;
  const auto stale_ok = service.Query(0, 1, loose);
  ASSERT_TRUE(stale_ok.ok());
  EXPECT_EQ(stale_ok->served_from, ServedFrom::kSnapshot);
  EXPECT_GT(stale_ok->staleness, 0u);
  EXPECT_LE(stale_ok->staleness, 10u);

  ReadOptions tight;
  tight.consistency = Consistency::kBoundedStaleness;
  tight.max_lag = 0;  // demand current: must escalate to the live index
  const auto live = service.Query(0, 1, tight);
  ASSERT_TRUE(live.ok());
  EXPECT_EQ(live->served_from, ServedFrom::kLiveIndex);
  EXPECT_EQ(live->staleness, 0u);
}

TEST(SpcServiceTest, QueryBatchMatchesSingles) {
  SpcService service(GenerateRmat(7, 300, 21), BackgroundOptions(4));
  const size_t n = service.NumVertices();
  Rng rng(23);
  std::vector<VertexPair> pairs(300);
  for (auto& p : pairs) {
    p.first = static_cast<Vertex>(rng.NextBounded(n));
    p.second = static_cast<Vertex>(rng.NextBounded(n));
  }
  ReadOptions read;
  read.threads = 4;
  const auto batch = service.QueryBatch(pairs, read);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->results.size(), pairs.size());
  for (size_t i = 0; i < pairs.size(); i += 17) {
    const auto single = service.Query(pairs[i].first, pairs[i].second);
    ASSERT_TRUE(single.ok());
    EXPECT_EQ(batch->results[i], single->result) << "i=" << i;
  }
}

TEST(SpcServiceTest, WaitForSnapshotIsTheTokenBarrier) {
  SpcService service(GenerateBarabasiAlbert(40, 2, 25), BackgroundOptions());
  const Edge e = SampleNonEdges(service.engine().graph(), 1, 9).at(0);
  const auto write = service.InsertEdge(e.u, e.v);
  ASSERT_TRUE(write.ok());

  ASSERT_TRUE(service.WaitForSnapshot(write->token).ok());
  // The snapshot now reflects the write, so even kSnapshot + token serves.
  ReadOptions snap;
  snap.consistency = Consistency::kSnapshot;
  snap.min_generation = write->token.generation;
  const auto resp = service.Query(e.u, e.v, snap);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->result, (SpcResult{1, 1}));
  EXPECT_EQ(resp->served_from, ServedFrom::kSnapshot);
}

TEST(SpcServiceTest, WaitForSnapshotNotSupportedWhenDisabled) {
  DynamicSpcOptions options;
  options.snapshot.enabled = false;
  SpcService service(GenerateBarabasiAlbert(20, 2, 27), options);
  EXPECT_TRUE(service.WaitForSnapshot({1}).IsNotSupported());
  // kSnapshot reads can never be served on this configuration:
  // kNotSupported (permanent), not kUnavailable (retryable).
  ReadOptions snap;
  snap.consistency = Consistency::kSnapshot;
  EXPECT_TRUE(service.Query(0, 1, snap).status().IsNotSupported());
  EXPECT_TRUE(service.QueryBatch(std::vector<VertexPair>{{0, 1}}, snap)
                  .status()
                  .IsNotSupported());
  // Other modes still work (all live).
  const auto resp = service.Query(0, 1);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->served_from, ServedFrom::kLiveIndex);
}

// --- deadlines (DESIGN.md §10) -----------------------------------------------

TEST(SpcServiceTest, FreshReadDeadlineExceededUnderHeldWriterLock) {
  // Snapshots off: every read must ride the live index, the one path
  // that can block behind a writer.
  DynamicSpcOptions options;
  options.snapshot.enabled = false;
  SpcService service(GenerateBarabasiAlbert(40, 2, 31), options);

  ReadOptions timed;
  timed.timeout = std::chrono::milliseconds(5);

  // Lock free: the timed read serves normally.
  ASSERT_TRUE(service.Query(0, 1, timed).ok());

  {
    // A held writer lock blocks every live read; the deadline must turn
    // that into a prompt kDeadlineExceeded, not an indefinite wait.
    const auto freeze = service.engine().FreezeWrites();
    const auto start = std::chrono::steady_clock::now();
    const auto resp = service.Query(0, 1, timed);
    const auto waited = std::chrono::steady_clock::now() - start;
    ASSERT_FALSE(resp.ok());
    EXPECT_TRUE(resp.status().IsDeadlineExceeded())
        << resp.status().ToString();
    EXPECT_LT(waited, std::chrono::seconds(5)) << "read blocked past deadline";

    // An already-expired deadline degrades to a pure try-lock: refused
    // instantly while the writer holds the lock.
    ReadOptions expired;
    expired.timeout = std::chrono::nanoseconds(0);
    EXPECT_TRUE(service.Query(0, 1, expired).status().IsDeadlineExceeded());

    // Batch reads honor the same bound.
    const std::vector<VertexPair> pairs = {{0, 1}, {2, 3}};
    EXPECT_TRUE(
        service.QueryBatch(pairs, timed).status().IsDeadlineExceeded());
  }

  // Lock released: the same reads serve again, including timeout 0 (the
  // try-lock now succeeds).
  ReadOptions expired;
  expired.timeout = std::chrono::nanoseconds(0);
  EXPECT_TRUE(service.Query(0, 1, expired).ok());
  EXPECT_TRUE(service.Query(0, 1, timed).ok());

  const MetricsSnapshot metrics = service.Metrics();
  EXPECT_EQ(metrics.deadline_misses_read, 3u);
}

TEST(SpcServiceTest, TimedReadUnderSyncPolicySkipsInlineRebuild) {
  // Regression: under kSync a budget-crossing read rebuilds the snapshot
  // inline, and the snapshot copy waits *untimed* on the writer lock — a
  // timed read must route around that edge (free pin + timed live read)
  // or the deadline is silently void.
  DynamicSpcOptions sync;
  sync.snapshot.refresh = RefreshPolicy::kSync;
  sync.snapshot.rebuild_after_queries = 1;  // every stale read crosses
  SpcService service(GenerateBarabasiAlbert(40, 2, 59), sync);

  const auto freeze = service.engine().FreezeWrites();
  ReadOptions timed;
  timed.timeout = std::chrono::milliseconds(5);
  const auto start = std::chrono::steady_clock::now();
  const auto resp = service.Query(0, 1, timed);  // nothing published yet
  const auto waited = std::chrono::steady_clock::now() - start;
  ASSERT_FALSE(resp.ok());
  EXPECT_TRUE(resp.status().IsDeadlineExceeded()) << resp.status().ToString();
  EXPECT_LT(waited, std::chrono::seconds(5)) << "blocked in inline rebuild";
  // An untimed read still performs the inline rebuild (after release).
}

TEST(SpcServiceTest, SnapshotReadsIgnoreDeadlinesAndWriters) {
  SpcService service(GenerateBarabasiAlbert(30, 2, 37), BackgroundOptions());
  ASSERT_TRUE(service.WaitForSnapshot({service.Generation()}).ok());

  // Even with the writer lock held and an expired deadline, snapshot
  // serving never blocks and never misses.
  const auto freeze = service.engine().FreezeWrites();
  ReadOptions snap;
  snap.consistency = Consistency::kSnapshot;
  snap.timeout = std::chrono::nanoseconds(0);
  const auto resp = service.Query(0, 1, snap);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->served_from, ServedFrom::kSnapshot);

  // kFresh served from a *current* snapshot also never touches the lock.
  ReadOptions fresh;
  fresh.timeout = std::chrono::nanoseconds(0);
  const auto fresh_resp = service.Query(0, 1, fresh);
  ASSERT_TRUE(fresh_resp.ok()) << fresh_resp.status().ToString();
  EXPECT_EQ(fresh_resp->served_from, ServedFrom::kSnapshot);
  EXPECT_EQ(service.Metrics().deadline_misses_read, 0u);
}

TEST(SpcServiceTest, WaitForSnapshotHonorsTimeout) {
  // kManual: nothing publishes on its own, so a zero-timeout barrier on
  // a stale snapshot must refuse instead of building inline.
  DynamicSpcOptions manual;
  manual.snapshot.refresh = RefreshPolicy::kManual;
  SpcService service(GenerateBarabasiAlbert(30, 2, 41), manual);
  const Edge e = SampleNonEdges(service.engine().graph(), 1, 4).at(0);
  const auto write = service.InsertEdge(e.u, e.v);
  ASSERT_TRUE(write.ok());

  EXPECT_TRUE(service
                  .WaitForSnapshot(write->token, std::chrono::nanoseconds(0))
                  .IsDeadlineExceeded());
  // Untimed (and negative = kNoTimeout) barriers still build and succeed.
  ASSERT_TRUE(service.WaitForSnapshot(write->token, kNoTimeout).ok());
  // Now published: the instant probe succeeds too.
  EXPECT_TRUE(service
                  .WaitForSnapshot(write->token, std::chrono::nanoseconds(0))
                  .ok());
  EXPECT_EQ(service.Metrics().deadline_misses_wait, 1u);

  // A huge finite timeout must saturate, not overflow into the past
  // (which would refuse a barrier the caller wanted to wait out).
  const Edge e2 = SampleNonEdges(service.engine().graph(), 1, 5).at(0);
  const auto write2 = service.InsertEdge(e2.u, e2.v);
  ASSERT_TRUE(write2.ok());
  EXPECT_TRUE(service
                  .WaitForSnapshot(write2->token,
                                   std::chrono::nanoseconds::max())
                  .ok());
}

TEST(SpcServiceTest, WaitForSnapshotTimesOutWhileWorkerIsStarved) {
  SpcService service(GenerateBarabasiAlbert(30, 2, 43), BackgroundOptions(
                                                            1000000));
  ASSERT_TRUE(service.WaitForSnapshot({service.Generation()}).ok());
  const Edge e = SampleNonEdges(service.engine().graph(), 1, 5).at(0);
  const auto write = service.InsertEdge(e.u, e.v);
  ASSERT_TRUE(write.ok());

  {
    // Freeze the mutable index: the background worker cannot copy a
    // delta, so the snapshot deterministically cannot catch up to the
    // token before the deadline.
    const auto freeze = service.engine().FreezeWrites();
    EXPECT_TRUE(service
                    .WaitForSnapshot(write->token,
                                     std::chrono::milliseconds(30))
                    .IsDeadlineExceeded());
  }
  // Unfrozen, the same barrier completes.
  EXPECT_TRUE(service.WaitForSnapshot(write->token).ok());
}

// --- per-update WriteReports (DESIGN.md §10) --------------------------------

TEST(SpcServiceTest, ApplyUpdatesReportsEveryUpdate) {
  SpcService service(GenerateBarabasiAlbert(40, 2, 47));
  const Graph& g = service.engine().graph();
  const std::vector<Edge> fresh = SampleNonEdges(g, 2, 6);
  ASSERT_GE(fresh.size(), 2u);
  const Edge existing = SampleEdges(g, 1, 7).at(0);
  const auto n = static_cast<Vertex>(service.NumVertices());

  const uint64_t before = service.Generation();
  const std::vector<Update> batch = {
      Update::Insert(fresh[0].u, fresh[0].v),  // applies
      Update::Insert(existing.u, existing.v),  // no-op: already present
      Update::Delete(fresh[1].u, fresh[1].v),  // cancelled by the insert
      Update::Insert(fresh[1].u, fresh[1].v),  // cancels the delete (LIFO)
      Update::Delete(fresh[1].u, fresh[1].v),  // no-op: not present
      Update::Insert(n, 0),                    // rejected: out of range
  };
  const auto resp = service.ApplyUpdates(batch);
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->reports.size(), batch.size());

  using Outcome = WriteReport::Outcome;
  EXPECT_EQ(resp->reports[0].outcome, Outcome::kApplied);
  EXPECT_STREQ(resp->reports[0].reason, "applied");
  EXPECT_TRUE(resp->reports[0].stats.applied);
  EXPECT_EQ(resp->reports[0].generation, before + 1);

  EXPECT_EQ(resp->reports[1].outcome, Outcome::kNoOp);
  EXPECT_STREQ(resp->reports[1].reason, "edge already present");

  EXPECT_EQ(resp->reports[2].outcome, Outcome::kNoOp);
  EXPECT_EQ(resp->reports[3].outcome, Outcome::kNoOp);
  EXPECT_STREQ(resp->reports[2].reason,
               "cancelled against an exact inverse in the batch");

  EXPECT_EQ(resp->reports[4].outcome, Outcome::kNoOp);
  EXPECT_STREQ(resp->reports[4].reason, "edge not present");

  EXPECT_EQ(resp->reports[5].outcome, Outcome::kRejected);

  EXPECT_EQ(resp->applied, 1u);
  EXPECT_EQ(resp->noops, 4u);
  EXPECT_EQ(resp->rejected, 1u);

  // The admission contract: applied reports == generation delta, and the
  // token covers the last applied update.
  EXPECT_EQ(service.Generation() - before, resp->applied);
  EXPECT_EQ(resp->token.generation, service.Generation());
  EXPECT_TRUE(service.engine().graph().HasEdge(fresh[0].u, fresh[0].v));
  EXPECT_FALSE(service.engine().graph().HasEdge(fresh[1].u, fresh[1].v));

  // Single-edge no-op: OK status, kNoOp report.
  const auto dup = service.InsertEdge(existing.u, existing.v);
  ASSERT_TRUE(dup.ok());
  ASSERT_EQ(dup->reports.size(), 1u);
  EXPECT_EQ(dup->reports[0].outcome, Outcome::kNoOp);
  EXPECT_FALSE(dup->stats.applied);
}

// --- ServiceMetrics (DESIGN.md §10) -----------------------------------------

TEST(SpcServiceTest, MetricsBucketHelpers) {
  EXPECT_EQ(MetricsSnapshot::StalenessBucket(0), 0u);
  EXPECT_EQ(MetricsSnapshot::StalenessBucket(1), 1u);
  EXPECT_EQ(MetricsSnapshot::StalenessBucket(2), 2u);
  EXPECT_EQ(MetricsSnapshot::StalenessBucket(4), 3u);
  EXPECT_EQ(MetricsSnapshot::StalenessBucket(8), 4u);
  EXPECT_EQ(MetricsSnapshot::StalenessBucket(16), 5u);
  EXPECT_EQ(MetricsSnapshot::StalenessBucket(64), 6u);
  EXPECT_EQ(MetricsSnapshot::StalenessBucket(65), 7u);
  EXPECT_EQ(MetricsSnapshot::BatchBucket(1), 0u);
  EXPECT_EQ(MetricsSnapshot::BatchBucket(4), 1u);
  EXPECT_EQ(MetricsSnapshot::BatchBucket(16), 2u);
  EXPECT_EQ(MetricsSnapshot::BatchBucket(5000), 7u);
}

TEST(SpcServiceTest, MetricsLatencyBucketsAndQuantiles) {
  // Log buckets: [0, 256), [256, 512), [512, 1024), ... capped at the top.
  EXPECT_EQ(MetricsSnapshot::LatencyBucket(0), 0u);
  EXPECT_EQ(MetricsSnapshot::LatencyBucket(255), 0u);
  EXPECT_EQ(MetricsSnapshot::LatencyBucket(256), 1u);
  EXPECT_EQ(MetricsSnapshot::LatencyBucket(511), 1u);
  EXPECT_EQ(MetricsSnapshot::LatencyBucket(512), 2u);
  EXPECT_EQ(MetricsSnapshot::LatencyBucket(uint64_t{1} << 40),
            MetricsSnapshot::kLatencyBuckets - 1);
  EXPECT_EQ(MetricsSnapshot::LatencyBucketUpperNs(0), 256u);
  EXPECT_EQ(MetricsSnapshot::LatencyBucketUpperNs(1), 512u);

  ServiceMetrics metrics;
  const auto mode = static_cast<size_t>(Consistency::kFresh);
  // 99 fast reads (~1us) and one slow outlier (~100ms): the median must
  // land in the microsecond bucket and the tail quantile in the top end.
  for (int i = 0; i < 99; ++i) {
    metrics.RecordReadLatency(Consistency::kFresh, 1000);
  }
  metrics.RecordReadLatency(Consistency::kFresh, 100'000'000);
  const MetricsSnapshot snap = metrics.Snapshot();
  EXPECT_EQ(snap.LatencySamples(mode), 100u);
  EXPECT_EQ(snap.read_latency_sum_ns[mode], 99u * 1000u + 100'000'000u);
  const uint64_t p50 = snap.ReadLatencyQuantileNs(mode, 0.50);
  EXPECT_GE(p50, 512u);
  EXPECT_LE(p50, 2048u);
  const uint64_t p999 = snap.ReadLatencyQuantileNs(mode, 0.999);
  EXPECT_GE(p999, 1u << 20);
  // Untouched modes report zero.
  EXPECT_EQ(snap.LatencySamples(static_cast<size_t>(Consistency::kSnapshot)),
            0u);
}

TEST(SpcServiceTest, MetricsPrometheusExposition) {
  ServiceMetrics metrics;
  metrics.RecordRead(Consistency::kSnapshot, ServedFrom::kSnapshot,
                     /*staleness=*/2, /*queries=*/1, /*batch=*/false);
  metrics.RecordReadLatency(Consistency::kSnapshot, 5000);
  metrics.RecordSnapshotPublish();
  metrics.RecordRejected(Status::Code::kUnavailable);
  const std::string text = metrics.Snapshot().PrometheusText();
  EXPECT_NE(text.find("# TYPE dspc_queries_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("dspc_queries_total{mode=\"snapshot\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("dspc_snapshot_publishes_total 1"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE dspc_read_latency_seconds histogram"),
            std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);
  EXPECT_NE(text.find("dspc_read_latency_seconds_count{mode=\"snapshot\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("dspc_rejected_total"), std::string::npos);
  // Exposition format 0.0.4: every line is a comment or `name{labels} value`.
  EXPECT_EQ(text.back(), '\n');
}

TEST(SpcServiceTest, MetricsCountServingOutcomes) {
  SpcService service(GenerateBarabasiAlbert(50, 2, 53), BackgroundOptions(8));
  ASSERT_TRUE(service.WaitForSnapshot({service.Generation()}).ok());
  const auto n = static_cast<Vertex>(service.NumVertices());

  // 3 kFresh singles + one kFresh batch of 5.
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(service.Query(0, 1).ok());
  const std::vector<VertexPair> pairs = {{0, 1}, {1, 2}, {2, 3}, {3, 4},
                                         {4, 5}};
  ASSERT_TRUE(service.QueryBatch(pairs).ok());

  // 2 kSnapshot singles, 1 kBoundedStaleness single.
  ReadOptions snap;
  snap.consistency = Consistency::kSnapshot;
  ASSERT_TRUE(service.Query(1, 2, snap).ok());
  ASSERT_TRUE(service.Query(2, 3, snap).ok());
  ReadOptions bounded;
  bounded.consistency = Consistency::kBoundedStaleness;
  bounded.max_lag = 100;
  ASSERT_TRUE(service.Query(3, 4, bounded).ok());

  // Rejections: one invalid id, one future min_generation, one
  // kSnapshot-unavailable (future generations cannot be served).
  EXPECT_FALSE(service.Query(n, 0).ok());
  ReadOptions future;
  future.min_generation = service.Generation() + 5;
  EXPECT_FALSE(service.Query(0, 1, future).ok());

  // Writes: one applied insert + its duplicate (no-op). An empty batch
  // is admitted but not recorded (it served nothing).
  const Edge e = SampleNonEdges(service.engine().graph(), 1, 8).at(0);
  ASSERT_TRUE(service.InsertEdge(e.u, e.v).ok());
  ASSERT_TRUE(service.InsertEdge(e.u, e.v).ok());  // no-op
  ASSERT_TRUE(service.ApplyUpdates({}).ok());
  ASSERT_TRUE(service.QueryBatch({}).ok());

  const MetricsSnapshot m = service.Metrics();
  EXPECT_EQ(m.queries_by_mode[static_cast<size_t>(Consistency::kFresh)], 8u);
  EXPECT_EQ(m.queries_by_mode[static_cast<size_t>(Consistency::kSnapshot)],
            2u);
  EXPECT_EQ(
      m.queries_by_mode[static_cast<size_t>(Consistency::kBoundedStaleness)],
      1u);
  EXPECT_EQ(m.TotalQueries(), 11u);
  EXPECT_EQ(m.served_from_snapshot + m.served_from_live, m.TotalQueries());
  // One staleness sample per served query — none may be lost.
  EXPECT_EQ(m.StalenessSamples(), m.TotalQueries());
  EXPECT_EQ(m.read_batches, 1u);
  EXPECT_EQ(m.read_batch_queries, 5u);
  EXPECT_EQ(m.read_batch_size_hist[MetricsSnapshot::BatchBucket(5)], 1u);
  EXPECT_EQ(m.rejected_invalid_argument, 2u);
  EXPECT_EQ(m.deadline_misses_read, 0u);
  EXPECT_EQ(m.write_batches, 2u);
  EXPECT_EQ(m.updates_applied, 1u);
  EXPECT_EQ(m.updates_noop, 1u);
  EXPECT_EQ(m.updates_rejected, 0u);

  // The text dump carries the headline numbers.
  const std::string dump = m.ToString();
  EXPECT_NE(dump.find("SpcService metrics"), std::string::npos);
  EXPECT_NE(dump.find("total=11"), std::string::npos);
  EXPECT_NE(dump.find("invalid_argument=2"), std::string::npos);
}

TEST(SpcServiceTest, RemoveVertexIsolatesAndTokens) {
  SpcService service(GenerateBarabasiAlbert(30, 2, 29));
  const auto resp = service.RemoveVertex(3);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(service.engine().graph().Neighbors(3).size(), 0u);
  ReadOptions read;
  read.min_generation = resp->token.generation;
  const auto q = service.Query(3, 4, read);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->result.count, 0u);
}

}  // namespace
}  // namespace dspc
