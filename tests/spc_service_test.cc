// SpcService: admission validation, the consistency-mode lattice,
// generation tokens (read-your-writes), and serving metadata
// (DESIGN.md §9).

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "dspc/api/spc_service.h"
#include "dspc/baseline/bibfs_counting.h"
#include "dspc/common/rng.h"
#include "dspc/graph/generators.h"
#include "dspc/graph/update_stream.h"

namespace dspc {
namespace {

DynamicSpcOptions BackgroundOptions(size_t budget = 1) {
  DynamicSpcOptions options;
  options.snapshot.refresh = RefreshPolicy::kBackground;
  options.snapshot.rebuild_after_queries = budget;
  return options;
}

// --- admission ---------------------------------------------------------------

TEST(SpcServiceTest, RejectsOutOfRangeVertices) {
  SpcService service(GenerateBarabasiAlbert(30, 2, 5));
  const auto n = static_cast<Vertex>(service.NumVertices());

  EXPECT_TRUE(service.Query(n, 0).status().IsInvalidArgument());
  EXPECT_TRUE(service.Query(0, n + 7).status().IsInvalidArgument());
  EXPECT_TRUE(service.Query(kInvalidVertex, 0).status().IsInvalidArgument());
  EXPECT_TRUE(service.Query(0, 1).ok());

  const std::vector<VertexPair> bad = {{0, 1}, {2, n}, {3, 4}};
  const auto batch = service.QueryBatch(bad);
  EXPECT_TRUE(batch.status().IsInvalidArgument());
  // The message names the offending pair.
  EXPECT_NE(batch.status().message().find("pair 1"), std::string::npos);

  const Edge good = SampleNonEdges(service.engine().graph(), 1, 3).at(0);
  const std::vector<Update> updates = {Update::Insert(good.u, good.v),
                                       Update::Insert(n, 1)};
  EXPECT_TRUE(service.ApplyUpdates(updates).status().IsInvalidArgument());
  // Nothing was applied: validation covers the whole batch up front.
  EXPECT_FALSE(service.engine().graph().HasEdge(good.u, good.v));

  EXPECT_TRUE(service.InsertEdge(0, n).status().IsInvalidArgument());
  EXPECT_TRUE(service.RemoveEdge(n, 0).status().IsInvalidArgument());
  EXPECT_TRUE(service.RemoveVertex(n).status().IsInvalidArgument());
}

TEST(SpcServiceTest, RejectsFutureMinGeneration) {
  SpcService service(GenerateBarabasiAlbert(20, 2, 6));
  ReadOptions read;
  read.min_generation = service.Generation() + 100;
  EXPECT_TRUE(service.Query(0, 1, read).status().IsInvalidArgument());

  WriteToken forged{service.Generation() + 100};
  EXPECT_TRUE(service.WaitForSnapshot(forged).IsInvalidArgument());
}

// --- reads, writes, and answers ---------------------------------------------

TEST(SpcServiceTest, AnswersMatchBaselineAcrossConsistencyModes) {
  const Graph g = GenerateBarabasiAlbert(60, 2, 7);
  SpcService service(g, BackgroundOptions());
  ASSERT_TRUE(service.WaitForSnapshot({service.Generation()}).ok());

  Rng rng(17);
  for (const Consistency mode :
       {Consistency::kFresh, Consistency::kSnapshot,
        Consistency::kBoundedStaleness}) {
    for (int i = 0; i < 20; ++i) {
      const auto s = static_cast<Vertex>(rng.NextBounded(60));
      const auto t = static_cast<Vertex>(rng.NextBounded(60));
      ReadOptions read;
      read.consistency = mode;
      read.max_lag = 4;
      const auto resp = service.Query(s, t, read);
      ASSERT_TRUE(resp.ok()) << resp.status().ToString();
      // No updates have happened, so every mode answers exactly.
      EXPECT_EQ(resp->result, BiBfsCountPair(g, s, t));
      EXPECT_EQ(resp->staleness, 0u);
      EXPECT_EQ(resp->generation, service.Generation());
    }
  }
}

TEST(SpcServiceTest, WritesReturnMonotoneTokens) {
  SpcService service(GenerateBarabasiAlbert(40, 2, 9));
  const std::vector<Edge> candidates =
      SampleNonEdges(service.engine().graph(), 4, 3);
  ASSERT_GE(candidates.size(), 4u);

  uint64_t last = 0;
  for (const Edge& e : candidates) {
    const auto resp = service.InsertEdge(e.u, e.v);
    ASSERT_TRUE(resp.ok());
    EXPECT_TRUE(resp->stats.applied);
    EXPECT_GT(resp->token.generation, last);
    last = resp->token.generation;
  }

  const auto removed = service.RemoveEdge(candidates[0].u, candidates[0].v);
  ASSERT_TRUE(removed.ok());
  EXPECT_GT(removed->token.generation, last);
}

TEST(SpcServiceTest, ReadYourWritesViaToken) {
  SpcService service(GenerateBarabasiAlbert(50, 2, 11), BackgroundOptions(8));
  const Edge e = SampleNonEdges(service.engine().graph(), 1, 5).at(0);
  const SpcResult before = service.Query(e.u, e.v).value().result;

  const auto write = service.InsertEdge(e.u, e.v);
  ASSERT_TRUE(write.ok());
  ASSERT_TRUE(write->stats.applied);

  // A fresh read with the token observes the write immediately, without
  // any explicit quiesce.
  ReadOptions read;
  read.min_generation = write->token.generation;
  const auto after = service.Query(e.u, e.v, read);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->result, (SpcResult{1, 1}));
  EXPECT_NE(after->result, before);
  EXPECT_GE(after->generation, write->token.generation);

  // Bounded staleness with the token also observes it (escalating to the
  // live index when the snapshot still trails).
  read.consistency = Consistency::kBoundedStaleness;
  read.max_lag = 1000;
  const auto bounded = service.Query(e.u, e.v, read);
  ASSERT_TRUE(bounded.ok());
  EXPECT_EQ(bounded->result, (SpcResult{1, 1}));
  EXPECT_GE(bounded->generation, write->token.generation);
}

TEST(SpcServiceTest, SnapshotModeNeverBlocksAndReportsUnavailable) {
  // kManual with no published snapshot: kSnapshot reads cannot be served
  // without blocking, so they fail fast with kUnavailable.
  DynamicSpcOptions manual;
  manual.snapshot.refresh = RefreshPolicy::kManual;
  SpcService service(GenerateBarabasiAlbert(30, 2, 13), manual);
  ReadOptions snap;
  snap.consistency = Consistency::kSnapshot;
  EXPECT_TRUE(service.Query(0, 1, snap).status().IsUnavailable());

  // Publish explicitly; the same read now serves.
  ASSERT_NE(service.engine().FlatSnapshot(), nullptr);
  const auto resp = service.Query(0, 1, snap);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->served_from, ServedFrom::kSnapshot);

  // After an update the snapshot trails: a token-carrying kSnapshot read
  // refuses (Unavailable) rather than blocking or serving stale.
  const Edge e = SampleNonEdges(service.engine().graph(), 1, 6).at(0);
  const auto write = service.InsertEdge(e.u, e.v);
  ASSERT_TRUE(write.ok());
  snap.min_generation = write->token.generation;
  EXPECT_TRUE(service.Query(e.u, e.v, snap).status().IsUnavailable());

  // Tokenless kSnapshot still serves the old snapshot, tagged stale.
  snap.min_generation = 0;
  const auto stale = service.Query(e.u, e.v, snap);
  ASSERT_TRUE(stale.ok());
  EXPECT_GT(stale->staleness, 0u);
  EXPECT_LT(stale->generation, service.Generation());
}

TEST(SpcServiceTest, SnapshotModeRejectsVertexNewerThanSnapshot) {
  SpcService service(GenerateBarabasiAlbert(30, 2, 15), BackgroundOptions());
  ASSERT_TRUE(service.WaitForSnapshot({service.Generation()}).ok());

  const AddVertexResponse added = service.AddVertex();
  ReadOptions snap;
  snap.consistency = Consistency::kSnapshot;
  // The published snapshot predates the vertex; refusing beats blocking.
  const auto resp = service.Query(added.vertex, 0, snap);
  if (!resp.ok()) {
    EXPECT_TRUE(resp.status().IsUnavailable());
  }
  // kFresh serves it from the live index.
  const auto fresh = service.Query(added.vertex, 0);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->result.count, 0u);  // isolated

  // After the snapshot catches up, kSnapshot serves it too.
  ASSERT_TRUE(service.WaitForSnapshot(added.token).ok());
  EXPECT_TRUE(service.Query(added.vertex, 0, snap).ok());
}

TEST(SpcServiceTest, BoundedStalenessHonorsLagBound) {
  SpcService service(GenerateBarabasiAlbert(40, 2, 19),
                     BackgroundOptions(1000000));  // worker never nudged
  ASSERT_TRUE(service.WaitForSnapshot({service.Generation()}).ok());

  // Three updates leave the snapshot 3 generations behind.
  std::vector<Update> updates;
  for (const Edge& e : SampleNonEdges(service.engine().graph(), 3, 7)) {
    updates.push_back(Update::Insert(e.u, e.v));
  }
  const auto write = service.ApplyUpdates(updates);
  ASSERT_TRUE(write.ok());

  ReadOptions loose;
  loose.consistency = Consistency::kBoundedStaleness;
  loose.max_lag = 10;
  const auto stale_ok = service.Query(0, 1, loose);
  ASSERT_TRUE(stale_ok.ok());
  EXPECT_EQ(stale_ok->served_from, ServedFrom::kSnapshot);
  EXPECT_GT(stale_ok->staleness, 0u);
  EXPECT_LE(stale_ok->staleness, 10u);

  ReadOptions tight;
  tight.consistency = Consistency::kBoundedStaleness;
  tight.max_lag = 0;  // demand current: must escalate to the live index
  const auto live = service.Query(0, 1, tight);
  ASSERT_TRUE(live.ok());
  EXPECT_EQ(live->served_from, ServedFrom::kLiveIndex);
  EXPECT_EQ(live->staleness, 0u);
}

TEST(SpcServiceTest, QueryBatchMatchesSingles) {
  SpcService service(GenerateRmat(7, 300, 21), BackgroundOptions(4));
  const size_t n = service.NumVertices();
  Rng rng(23);
  std::vector<VertexPair> pairs(300);
  for (auto& p : pairs) {
    p.first = static_cast<Vertex>(rng.NextBounded(n));
    p.second = static_cast<Vertex>(rng.NextBounded(n));
  }
  ReadOptions read;
  read.threads = 4;
  const auto batch = service.QueryBatch(pairs, read);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->results.size(), pairs.size());
  for (size_t i = 0; i < pairs.size(); i += 17) {
    const auto single = service.Query(pairs[i].first, pairs[i].second);
    ASSERT_TRUE(single.ok());
    EXPECT_EQ(batch->results[i], single->result) << "i=" << i;
  }
}

TEST(SpcServiceTest, WaitForSnapshotIsTheTokenBarrier) {
  SpcService service(GenerateBarabasiAlbert(40, 2, 25), BackgroundOptions());
  const Edge e = SampleNonEdges(service.engine().graph(), 1, 9).at(0);
  const auto write = service.InsertEdge(e.u, e.v);
  ASSERT_TRUE(write.ok());

  ASSERT_TRUE(service.WaitForSnapshot(write->token).ok());
  // The snapshot now reflects the write, so even kSnapshot + token serves.
  ReadOptions snap;
  snap.consistency = Consistency::kSnapshot;
  snap.min_generation = write->token.generation;
  const auto resp = service.Query(e.u, e.v, snap);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->result, (SpcResult{1, 1}));
  EXPECT_EQ(resp->served_from, ServedFrom::kSnapshot);
}

TEST(SpcServiceTest, WaitForSnapshotNotSupportedWhenDisabled) {
  DynamicSpcOptions options;
  options.snapshot.enabled = false;
  SpcService service(GenerateBarabasiAlbert(20, 2, 27), options);
  EXPECT_TRUE(service.WaitForSnapshot({1}).IsNotSupported());
  // kSnapshot reads can never be served on this configuration:
  // kNotSupported (permanent), not kUnavailable (retryable).
  ReadOptions snap;
  snap.consistency = Consistency::kSnapshot;
  EXPECT_TRUE(service.Query(0, 1, snap).status().IsNotSupported());
  EXPECT_TRUE(service.QueryBatch(std::vector<VertexPair>{{0, 1}}, snap)
                  .status()
                  .IsNotSupported());
  // Other modes still work (all live).
  const auto resp = service.Query(0, 1);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->served_from, ServedFrom::kLiveIndex);
}

TEST(SpcServiceTest, RemoveVertexIsolatesAndTokens) {
  SpcService service(GenerateBarabasiAlbert(30, 2, 29));
  const auto resp = service.RemoveVertex(3);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(service.engine().graph().Neighbors(3).size(), 0u);
  ReadOptions read;
  read.min_generation = resp->token.generation;
  const auto q = service.Query(3, 4, read);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->result.count, 0u);
}

}  // namespace
}  // namespace dspc
