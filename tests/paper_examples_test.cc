// Label-level reproduction of the paper's worked examples: the complete
// Table 2 index, every label change in the Figure 3(d) incremental-update
// step table, and every label change in the Figure 6(d) decremental-update
// step table.

#include <gtest/gtest.h>

#include "dspc/core/dynamic_spc.h"
#include "dspc/core/hp_spc.h"
#include "dspc/graph/graph.h"

namespace dspc {
namespace {

Graph PaperGraph() {
  Graph g(12);
  const Vertex edges[][2] = {{0, 1}, {0, 2}, {0, 3}, {0, 8}, {0, 11}, {1, 2},
                             {1, 5}, {1, 6}, {2, 3}, {2, 5}, {3, 7},  {3, 8},
                             {4, 5}, {4, 7}, {4, 9}, {6, 10}, {9, 10}};
  for (const auto& e : edges) g.AddEdge(e[0], e[1]);
  return g;
}

DynamicSpcOptions PaperOptions() {
  DynamicSpcOptions options;
  options.ordering.strategy = OrderingStrategy::kIdentity;
  return options;
}

TEST(PaperTable2, CompleteIndex) {
  DynamicSpcIndex dyn(PaperGraph(), PaperOptions());
  const std::vector<LabelSet> expected = {
      /*v0*/ {{0, 0, 1}},
      /*v1*/ {{0, 1, 1}, {1, 0, 1}},
      /*v2*/ {{0, 1, 1}, {1, 1, 1}, {2, 0, 1}},
      /*v3*/ {{0, 1, 1}, {1, 2, 1}, {2, 1, 1}, {3, 0, 1}},
      /*v4*/ {{0, 3, 3}, {1, 2, 1}, {2, 2, 1}, {3, 2, 1}, {4, 0, 1}},
      /*v5*/ {{0, 2, 2}, {1, 1, 1}, {2, 1, 1}, {4, 1, 1}, {5, 0, 1}},
      /*v6*/ {{0, 2, 1}, {1, 1, 1}, {4, 3, 1}, {6, 0, 1}},
      /*v7*/
      {{0, 2, 1}, {1, 3, 2}, {2, 2, 1}, {3, 1, 1}, {4, 1, 1}, {7, 0, 1}},
      /*v8*/ {{0, 1, 1}, {2, 2, 1}, {3, 1, 1}, {8, 0, 1}},
      /*v9*/
      {{0, 4, 4}, {1, 3, 2}, {2, 3, 1}, {3, 3, 1}, {4, 1, 1}, {6, 2, 1},
       {9, 0, 1}},
      /*v10*/
      {{0, 3, 1}, {1, 2, 1}, {3, 4, 1}, {4, 2, 1}, {6, 1, 1}, {9, 1, 1},
       {10, 0, 1}},
      /*v11*/ {{0, 1, 1}, {11, 0, 1}},
  };
  for (Vertex v = 0; v < 12; ++v) {
    EXPECT_EQ(dyn.index().Labels(v), expected[v]) << "L(v" << v << ")";
  }
}

TEST(PaperFigure3, EveryLabelChangeOfTheStepTable) {
  DynamicSpcIndex dyn(PaperGraph(), PaperOptions());
  ASSERT_TRUE(dyn.InsertEdge(3, 9).applied);
  const SpcIndex& index = dyn.index();

  // Affected hub v0 (BFS from v9 with D=2, C=1):
  //   L(v9): (v0,4,4) renewed to (v0,2,1) — distance and count.
  EXPECT_EQ(*index.FindLabel(9, 0), (LabelEntry{0, 2, 1}));
  //   L(v4): counting renewed, (v0,3,3) -> (v0,3,4).
  EXPECT_EQ(*index.FindLabel(4, 0), (LabelEntry{0, 3, 4}));
  //   L(v10): counting renewed, (v0,3,1) -> (v0,3,2).
  EXPECT_EQ(*index.FindLabel(10, 0), (LabelEntry{0, 3, 2}));

  // Affected hub v1 (BFS from v9 with D=3): L(v9) (v1,3,2) -> (v1,3,3).
  EXPECT_EQ(*index.FindLabel(9, 1), (LabelEntry{1, 3, 3}));

  // Affected hub v2 (BFS from v9 with D=2):
  //   L(v9): (v2,3,1) renewed to (v2,2,1).
  EXPECT_EQ(*index.FindLabel(9, 2), (LabelEntry{2, 2, 1}));
  //   L(v10): new label (v2,3,1) inserted.
  ASSERT_NE(index.FindLabel(10, 2), nullptr);
  EXPECT_EQ(*index.FindLabel(10, 2), (LabelEntry{2, 3, 1}));

  // Affected hub v3: the new edge itself, (v3,1,1) in L(v9).
  ASSERT_NE(index.FindLabel(9, 3), nullptr);
  EXPECT_EQ(*index.FindLabel(9, 3), (LabelEntry{3, 1, 1}));

  // v8 was NOT an affected hub (paper §3.1 discussion): no (v8,.) label
  // appears anywhere new, and v8's labels are untouched.
  const LabelSet expected8 = {{0, 1, 1}, {2, 2, 1}, {3, 1, 1}, {8, 0, 1}};
  EXPECT_EQ(index.Labels(8), expected8);
}

TEST(PaperFigure6, EveryLabelChangeOfTheStepTable) {
  DynamicSpcIndex dyn(PaperGraph(), PaperOptions());
  const UpdateStats stats = dyn.RemoveEdge(1, 2);
  ASSERT_TRUE(stats.applied);
  const SpcIndex& index = dyn.index();

  // Affected hub v1:
  //   L(v2): (v1,1,1) renewed to (v1,2,1) — new path v1-v5-v2.
  EXPECT_EQ(*index.FindLabel(2, 1), (LabelEntry{1, 2, 1}));
  //   L(v3): (v1,2,1) deleted in the label removal process.
  EXPECT_EQ(index.FindLabel(3, 1), nullptr);
  //   L(v7): (v1,3,2) renewed to (v1,3,1).
  EXPECT_EQ(*index.FindLabel(7, 1), (LabelEntry{1, 3, 1}));

  // Affected hub v2: new label (v2,4,1) inserted into L(v10)
  // (path v2-v5-v4-v9-v10).
  ASSERT_NE(index.FindLabel(10, 2), nullptr);
  EXPECT_EQ(*index.FindLabel(10, 2), (LabelEntry{2, 4, 1}));

  // Example 3.15 notes hubs v6 and v10 produce no changes: v6's labels
  // still match Table 2.
  const LabelSet expected6 = {{0, 2, 1}, {1, 1, 1}, {4, 3, 1}, {6, 0, 1}};
  EXPECT_EQ(index.Labels(6), expected6);

  // Example 3.13 set sizes, already covered in smoke_test, re-checked
  // here against the stats convention (sr_a = larger side).
  EXPECT_EQ(stats.sr_a, 3u);
  EXPECT_EQ(stats.sr_b, 1u);
  EXPECT_EQ(stats.r_a + stats.r_b, 2u);
}

TEST(PaperSection321, IsolatedVertexOptimizationExample) {
  // Deleting (v0, v11) detaches degree-1 v11 whose neighbor outranks it:
  // the fast path must fire and leave only the self label.
  DynamicSpcIndex dyn(PaperGraph(), PaperOptions());
  const UpdateStats stats = dyn.RemoveEdge(0, 11);
  EXPECT_TRUE(stats.applied);
  EXPECT_TRUE(stats.used_isolated_vertex_opt);
  const LabelSet expected11 = {{11, 0, 1}};
  EXPECT_EQ(dyn.index().Labels(11), expected11);
  EXPECT_EQ(dyn.Query(11, 0).dist, kInfDistance);
}

TEST(PaperFigure4, ToyGraphDeletion) {
  // The toy graph of Figure 4: h-w-a chain, h-a edge, a-b edge, b-u edge,
  // and the detour w-w1-w2-w3-w4-b. Ordering h<w<a<b<u<w1..w4.
  Graph g(9);
  const Vertex h = 0, w = 1, a = 2, b = 3, u = 4, w1 = 5, w2 = 6, w3 = 7,
               w4 = 8;
  g.AddEdge(h, w);
  g.AddEdge(h, a);
  g.AddEdge(w, a);
  g.AddEdge(a, b);
  g.AddEdge(b, u);
  g.AddEdge(w, w1);
  g.AddEdge(w1, w2);
  g.AddEdge(w2, w3);
  g.AddEdge(w3, w4);
  g.AddEdge(w4, b);
  DynamicSpcIndex dyn(std::move(g), PaperOptions());

  // Pre-deletion labels match the figure's table: (h,3,1) in L(u).
  EXPECT_EQ(*dyn.index().FindLabel(u, h), (LabelEntry{h, 3, 1}));

  ASSERT_TRUE(dyn.RemoveEdge(a, b).applied);
  // "(h,3,1) in L(u) should be updated to (h,6,1)" — h's path now runs
  // h-w-w1-w2-w3-w4-b... to u: distance 7? The figure counts h-w as one
  // hop then 4 detour hops to b and one to u: h,w,w1,w2,w3,w4,b,u = 7
  // edges; the paper's "6" measures from w. Verify against ground truth.
  EXPECT_EQ(dyn.Query(h, u).dist, 7u);
  EXPECT_EQ(dyn.Query(h, u).count, 1u);
  // "(w,5,1) should be added into L(u) despite w was not the hub of a or
  // b": w covers u at distance 6 via the detour.
  ASSERT_NE(dyn.index().FindLabel(u, w), nullptr);
  EXPECT_EQ(dyn.index().FindLabel(u, w)->dist, 6u);
  EXPECT_EQ(dyn.Query(w, u).dist, 6u);
}

}  // namespace
}  // namespace dspc
