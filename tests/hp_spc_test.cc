// Unit and property tests for HP-SPC construction: exactness against BFS,
// canonical/non-canonical labels, behavior under different orderings, and
// structural minimality properties.

#include <gtest/gtest.h>

#include <tuple>

#include "dspc/baseline/bfs_counting.h"
#include "dspc/core/hp_spc.h"
#include "dspc/graph/generators.h"
#include "test_util.h"

namespace dspc {
namespace {

using testing::ExpectIndexMatchesBfs;
using testing::RandomGraph;

class HpSpcBuildPropertyTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, uint64_t>> {};

TEST_P(HpSpcBuildPropertyTest, ExactOnRandomGraphs) {
  const auto [n, m, seed] = GetParam();
  const Graph g = RandomGraph(n, m, seed);
  const SpcIndex index = BuildSpcIndex(g);
  ASSERT_TRUE(index.ValidateStructure().ok());
  ExpectIndexMatchesBfs(g, index);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HpSpcBuildPropertyTest,
    ::testing::Values(std::make_tuple(10, 15, 1), std::make_tuple(20, 30, 2),
                      std::make_tuple(30, 60, 3), std::make_tuple(40, 100, 4),
                      std::make_tuple(50, 75, 5), std::make_tuple(60, 200, 6),
                      std::make_tuple(25, 300, 7), std::make_tuple(80, 120, 8)));

TEST(HpSpcTest, StructuredGraphs) {
  for (const Graph& g :
       {GenerateGrid(5, 5), GenerateCycle(17), GeneratePath(20),
        GenerateStar(15), GenerateComplete(10),
        GenerateCompleteBipartite(4, 6), GenerateWattsStrogatz(40, 2, 0.2, 1),
        GenerateBarabasiAlbert(40, 2, 2)}) {
    const SpcIndex index = BuildSpcIndex(g);
    ASSERT_TRUE(index.ValidateStructure().ok());
    ExpectIndexMatchesBfs(g, index);
  }
}

TEST(HpSpcTest, DisconnectedComponents) {
  Graph g(8);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(4, 5);
  g.AddEdge(5, 6);
  // vertices 3 and 7 isolated
  const SpcIndex index = BuildSpcIndex(g);
  ExpectIndexMatchesBfs(g, index);
  EXPECT_EQ(index.Query(0, 4).dist, kInfDistance);
  EXPECT_EQ(index.Query(3, 7).count, 0u);
  EXPECT_EQ(index.Query(3, 3).count, 1u);
}

TEST(HpSpcTest, EmptyAndTinyGraphs) {
  EXPECT_EQ(BuildSpcIndex(Graph(0)).NumVertices(), 0u);
  const SpcIndex one = BuildSpcIndex(Graph(1));
  EXPECT_EQ(one.Query(0, 0).count, 1u);
  Graph two(2);
  two.AddEdge(0, 1);
  const SpcIndex pair = BuildSpcIndex(two);
  EXPECT_EQ(pair.Query(0, 1).dist, 1u);
  EXPECT_EQ(pair.Query(0, 1).count, 1u);
}

TEST(HpSpcTest, NonCanonicalLabelsArePresentWhenNeeded) {
  // Diamond: 0-1, 0-2, 1-3, 2-3 with identity order. spc(1,2) = 2 (via 0
  // and via 3) but hub 0 only covers the path through 0; vertex 1 must
  // also appear as hub of 2 or 3 to cover the second path.
  Graph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(1, 3);
  g.AddEdge(2, 3);
  OrderingOptions options;
  options.strategy = OrderingStrategy::kIdentity;
  const SpcIndex index = BuildSpcIndex(g, options);
  EXPECT_EQ(index.Query(1, 2).dist, 2u);
  EXPECT_EQ(index.Query(1, 2).count, 2u);
  // The path 1-3-2 is covered by hub 1 (highest on it): labels (1,*) in
  // L(3) and L(2).
  ASSERT_NE(index.FindLabel(3, 1), nullptr);
  ASSERT_NE(index.FindLabel(2, 1), nullptr);
  EXPECT_EQ(index.FindLabel(2, 1)->dist, 2u);
}

TEST(HpSpcTest, HigherRankedHubsPruneLowerSearches) {
  // On a star, every pair is covered by the center: leaves should have
  // exactly two labels (center + self).
  const Graph g = GenerateStar(10);
  const SpcIndex index = BuildSpcIndex(g);
  for (Vertex v = 1; v < 10; ++v) {
    EXPECT_EQ(index.Labels(v).size(), 2u) << "leaf " << v;
  }
}

TEST(HpSpcTest, OrderingAffectsSizeNotCorrectness) {
  const Graph g = GenerateBarabasiAlbert(60, 2, 9);
  OrderingOptions degree;
  OrderingOptions random;
  random.strategy = OrderingStrategy::kRandom;
  random.seed = 123;
  const SpcIndex by_degree = BuildSpcIndex(g, degree);
  const SpcIndex by_random = BuildSpcIndex(g, random);
  ExpectIndexMatchesBfs(g, by_degree);
  ExpectIndexMatchesBfs(g, by_random);
  // Degree ordering is the paper's heuristic precisely because it prunes
  // more: it should never produce a (non-trivially) larger index.
  EXPECT_LE(by_degree.SizeStats().total_entries,
            by_random.SizeStats().total_entries);
}

TEST(HpSpcTest, LabelCountsAreSigmaNotSpc) {
  // Paper Example 2.2: sigma counts only paths where the hub is the
  // highest-ranked vertex. Verify on the diamond that the center hub's
  // label in L(3) counts both 0-1-3 and 0-2-3 (canonical), while the
  // non-canonical (1,.) in L(2) counts only 1-3-2.
  Graph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(1, 3);
  g.AddEdge(2, 3);
  OrderingOptions options;
  options.strategy = OrderingStrategy::kIdentity;
  const SpcIndex index = BuildSpcIndex(g, options);
  ASSERT_NE(index.FindLabel(3, 0), nullptr);
  EXPECT_EQ(index.FindLabel(3, 0)->count, 2u);  // canonical: both paths
  ASSERT_NE(index.FindLabel(2, 1), nullptr);
  EXPECT_EQ(index.FindLabel(2, 1)->count, 1u);  // non-canonical: one path
}

TEST(HpSpcTest, CountsGrowExponentiallyAndStayExact) {
  // A chain of diamonds doubles the path count per stage: spc(entry_0,
  // entry_k) = 2^k. Counts this large stress the count arithmetic.
  const size_t stages = 20;
  // Vertex layout per stage i: entry = 3i, mids = 3i+1, 3i+2, next entry
  // = 3(i+1).
  Graph g(3 * stages + 1);
  for (size_t i = 0; i < stages; ++i) {
    const auto entry = static_cast<Vertex>(3 * i);
    const auto mid1 = static_cast<Vertex>(3 * i + 1);
    const auto mid2 = static_cast<Vertex>(3 * i + 2);
    const auto exit = static_cast<Vertex>(3 * i + 3);
    g.AddEdge(entry, mid1);
    g.AddEdge(entry, mid2);
    g.AddEdge(mid1, exit);
    g.AddEdge(mid2, exit);
  }
  const SpcIndex index = BuildSpcIndex(g);
  const SsspCounts truth = BfsCount(g, 0);
  for (Vertex t = 0; t < g.NumVertices(); ++t) {
    const SpcResult got = index.Query(0, t);
    ASSERT_EQ(got.dist, truth.dist[t]) << "t=" << t;
    ASSERT_EQ(got.count, truth.count[t]) << "t=" << t;
  }
  const SpcResult end = index.Query(0, static_cast<Vertex>(3 * stages));
  EXPECT_EQ(end.dist, 2 * stages);
  EXPECT_EQ(end.count, 1ULL << stages);
}

TEST(HpSpcTest, RebuildIdempotent) {
  const Graph g = RandomGraph(30, 60, 12);
  const SpcIndex a = BuildSpcIndex(g);
  const SpcIndex b = BuildSpcIndex(g);
  EXPECT_TRUE(a == b);
}

}  // namespace
}  // namespace dspc
