// persist/: the durability building blocks in isolation — the
// FaultInjectingEnv crash double, WAL framing and torn-tail repair, the
// atomic checkpoint/manifest protocol, and segment GC (DESIGN.md §11).
// Crash-recovery end-to-end lives in tests/recovery_test.cc.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dspc/common/rng.h"
#include "dspc/core/flat_spc_index.h"
#include "dspc/core/hp_spc.h"
#include "dspc/core/spc_index.h"
#include "dspc/graph/generators.h"
#include "dspc/persist/checkpointer.h"
#include "dspc/persist/env.h"
#include "dspc/persist/wal.h"

namespace dspc {
namespace {

// Fresh empty directory under the test tmpdir (removes leftovers from a
// previous run of the same test).
std::string FreshDir(const std::string& name) {
  FileSystem* fs = FileSystem::Default();
  const std::string dir = ::testing::TempDir() + "/" + name;
  (void)fs->CreateDir(dir);
  auto names = fs->ListDir(dir);
  if (names.ok()) {
    for (const std::string& f : *names) (void)fs->RemoveFile(dir + "/" + f);
  }
  return dir;
}

std::vector<uint8_t> ReadAll(FileSystem* fs, const std::string& path) {
  std::vector<uint8_t> data;
  EXPECT_TRUE(fs->ReadFile(path, &data).ok());
  return data;
}

// --- FaultInjectingEnv -------------------------------------------------------

TEST(FaultEnvTest, UnsyncedAppendsAreVolatile) {
  const std::string dir = FreshDir("fault_env_volatile");
  FileSystem* base = FileSystem::Default();
  FaultInjectingEnv env(base);

  const std::string path = dir + "/f";
  auto file = env.NewWritableFile(path);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("abcd", 4).ok());
  // Nothing synced: the base file must still be empty — this is the
  // page-cache-at-power-loss model the whole crash matrix stands on.
  EXPECT_EQ(ReadAll(base, path).size(), 0u);
  ASSERT_TRUE((*file)->Sync().ok());
  EXPECT_EQ(ReadAll(base, path).size(), 4u);
  ASSERT_TRUE((*file)->Append("efgh", 4).ok());
  EXPECT_EQ(ReadAll(base, path).size(), 4u);
  // A clean Close flushes (process exit is not a crash).
  ASSERT_TRUE((*file)->Close().ok());
  EXPECT_EQ(ReadAll(base, path).size(), 8u);
}

TEST(FaultEnvTest, ArmedFaultKillsTheExactOperationAndEverythingAfter) {
  const std::string dir = FreshDir("fault_env_arm");
  FaultInjectingEnv env(FileSystem::Default());

  // Count the workload unarmed: append, sync, append, close = 4 ops.
  {
    auto f = env.NewWritableFile(dir + "/count");
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->Append("aa", 2).ok());
    ASSERT_TRUE((*f)->Sync().ok());
    ASSERT_TRUE((*f)->Append("bb", 2).ok());
    ASSERT_TRUE((*f)->Close().ok());
  }
  EXPECT_EQ(env.OperationCount(), 4u);
  EXPECT_FALSE(env.Tripped());

  // Arm at the sync (index 1): the sync fails WITHOUT flushing, and the
  // env is dead afterwards.
  env.Disarm();
  env.Arm(1);
  auto f = env.NewWritableFile(dir + "/armed");
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE((*f)->Append("aa", 2).ok());
  EXPECT_TRUE((*f)->Sync().IsIOError());
  EXPECT_TRUE(env.Tripped());
  EXPECT_TRUE((*f)->Append("bb", 2).IsIOError());
  EXPECT_TRUE((*f)->Close().IsIOError());
  EXPECT_EQ(ReadAll(FileSystem::Default(), dir + "/armed").size(), 0u);
}

TEST(FaultEnvTest, ShortWriteLeaksHalfTheUnsyncedBytes) {
  const std::string dir = FreshDir("fault_env_short");
  FaultInjectingEnv env(FileSystem::Default());
  env.Arm(1, /*short_write=*/true);

  auto f = env.NewWritableFile(dir + "/torn");
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE((*f)->Append("abcdefgh", 8).ok());
  EXPECT_TRUE((*f)->Sync().IsIOError());
  // The tripping sync leaked half of the pending bytes: a torn tail.
  EXPECT_EQ(ReadAll(FileSystem::Default(), dir + "/torn").size(), 4u);
}

// --- WAL record codec --------------------------------------------------------

TEST(WalCodecTest, AllRecordKindsRoundTrip) {
  WalRecord batch;
  batch.kind = WalRecord::Kind::kBatch;
  batch.seq = 42;
  batch.generation = 7;
  batch.updates = {Update::Insert(1, 2), Update::Delete(3, 4)};

  WalRecord commit;
  commit.kind = WalRecord::Kind::kCommit;
  commit.seq = 42;
  commit.generation = 9;
  commit.outcomes = {1, 0};

  WalRecord add;
  add.kind = WalRecord::Kind::kAddVertex;
  add.generation = 10;
  add.vertex = 123;

  WalRecord remove;
  remove.kind = WalRecord::Kind::kRemoveVertex;
  remove.seq = 43;
  remove.vertex = 5;

  for (const WalRecord& rec : {batch, commit, add, remove}) {
    const std::vector<uint8_t> payload = EncodeWalRecord(rec);
    WalRecord back;
    ASSERT_TRUE(DecodeWalRecord(payload, &back).ok());
    EXPECT_EQ(back.kind, rec.kind);
    EXPECT_EQ(back.seq, rec.seq);
    EXPECT_EQ(back.generation, rec.generation);
    EXPECT_EQ(back.vertex, rec.vertex);
    ASSERT_EQ(back.updates.size(), rec.updates.size());
    for (size_t i = 0; i < rec.updates.size(); ++i) {
      EXPECT_EQ(back.updates[i].kind, rec.updates[i].kind);
      EXPECT_EQ(back.updates[i].edge.u, rec.updates[i].edge.u);
      EXPECT_EQ(back.updates[i].edge.v, rec.updates[i].edge.v);
    }
    EXPECT_EQ(back.outcomes, rec.outcomes);
  }
}

TEST(WalCodecTest, MalformedPayloadsAreDataLossNotCrashes) {
  WalRecord rec;
  rec.kind = WalRecord::Kind::kBatch;
  rec.seq = 1;
  rec.generation = 2;
  rec.updates = {Update::Insert(1, 2)};
  const std::vector<uint8_t> good = EncodeWalRecord(rec);

  WalRecord out;
  // Empty, truncated at every length, and a bad kind byte.
  EXPECT_TRUE(DecodeWalRecord({good.data(), 0}, &out).IsDataLoss());
  for (size_t len = 1; len < good.size(); ++len) {
    EXPECT_TRUE(DecodeWalRecord({good.data(), len}, &out).IsDataLoss())
        << "truncated to " << len;
  }
  std::vector<uint8_t> bad_kind = good;
  bad_kind[0] = 99;
  EXPECT_TRUE(DecodeWalRecord(bad_kind, &out).IsDataLoss());
}

// --- WalWriter + ReadWalSegment ---------------------------------------------

std::vector<uint8_t> TestRecord(uint64_t seq, uint64_t gen) {
  WalRecord rec;
  rec.kind = WalRecord::Kind::kBatch;
  rec.seq = seq;
  rec.generation = gen;
  rec.updates = {Update::Insert(static_cast<Vertex>(seq),
                                static_cast<Vertex>(seq + 1))};
  return EncodeWalRecord(rec);
}

TEST(WalWriterTest, AppendedRecordsRoundTripThroughSegmentScan) {
  const std::string dir = FreshDir("wal_roundtrip");
  FileSystem* fs = FileSystem::Default();
  const std::string path = dir + "/" + WalSegmentFileName(3);

  WalWriter::Options options;
  options.sync = WalSyncPolicy::kEveryWrite;
  auto writer = WalWriter::Create(fs, path, 3, 17, options);
  ASSERT_TRUE(writer.ok());
  for (uint64_t i = 0; i < 10; ++i) {
    auto off = (*writer)->AppendRecord(TestRecord(i, 17 + i));
    ASSERT_TRUE(off.ok());
    EXPECT_EQ(*off, (*writer)->AppendedBytes());
    EXPECT_EQ((*writer)->SyncedBytes(), *off);  // kEveryWrite
  }
  EXPECT_EQ((*writer)->AppendedRecords(), 10u);
  ASSERT_TRUE((*writer)->Close().ok());

  WalSegment segment;
  ASSERT_TRUE(ReadWalSegment(fs, path, 3, &segment).ok());
  EXPECT_EQ(segment.seq, 3u);
  EXPECT_EQ(segment.base_generation, 17u);
  EXPECT_EQ(segment.truncated_tail_bytes, 0u);
  ASSERT_EQ(segment.records.size(), 10u);
  for (uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(segment.records[i].seq, i);
    EXPECT_EQ(segment.records[i].generation, 17 + i);
  }
}

TEST(WalWriterTest, OversizeRecordsAreRefusedBeforeTouchingTheLog) {
  const std::string dir = FreshDir("wal_oversize");
  FileSystem* fs = FileSystem::Default();
  const std::string path = dir + "/" + WalSegmentFileName(1);
  WalWriter::Options options;
  options.sync = WalSyncPolicy::kEveryWrite;
  auto writer = WalWriter::Create(fs, path, 1, 0, options);
  ASSERT_TRUE(writer.ok());

  // One byte past the framing guard. Were this appended (and fsynced —
  // acknowledged durable!), ReadWalSegment would read its length prefix
  // as a torn tail and recovery would silently truncate it away.
  const std::vector<uint8_t> huge(size_t{kWalMaxRecordBytes} + 1, 0xAB);
  const auto off = (*writer)->AppendRecord(huge);
  EXPECT_TRUE(off.status().IsInvalidArgument()) << off.status().ToString();
  EXPECT_EQ((*writer)->AppendedRecords(), 0u);
  EXPECT_EQ((*writer)->AppendedBytes(), kWalHeaderBytes);

  // A caller error, not a device failure: nothing was appended and the
  // writer is still usable (no fail-stop latch).
  ASSERT_TRUE((*writer)->AppendRecord(TestRecord(1, 1)).ok());
  ASSERT_TRUE((*writer)->Close().ok());
  WalSegment segment;
  ASSERT_TRUE(ReadWalSegment(fs, path, 1, &segment).ok());
  EXPECT_EQ(segment.records.size(), 1u);
  EXPECT_EQ(segment.truncated_tail_bytes, 0u);
}

TEST(WalWriterTest, GroupCommitSatisfiesDurableWaiters) {
  const std::string dir = FreshDir("wal_group_commit");
  FileSystem* fs = FileSystem::Default();
  WalWriter::Options options;
  options.sync = WalSyncPolicy::kBatch;
  options.flush_interval = std::chrono::microseconds(500);
  auto writer =
      WalWriter::Create(fs, dir + "/" + WalSegmentFileName(1), 1, 0, options);
  ASSERT_TRUE(writer.ok());

  auto off = (*writer)->AppendRecord(TestRecord(1, 1));
  ASSERT_TRUE(off.ok());
  ASSERT_TRUE((*writer)->WaitDurable(*off).ok());
  EXPECT_GE((*writer)->SyncedBytes(), *off);
  EXPECT_GE((*writer)->SyncCount(), 1u);

  // Close after more unsynced appends: the final sync covers them, and a
  // WaitDurable issued after Close still answers (from synced_).
  auto off2 = (*writer)->AppendRecord(TestRecord(2, 2));
  ASSERT_TRUE(off2.ok());
  ASSERT_TRUE((*writer)->Close().ok());
  EXPECT_TRUE((*writer)->WaitDurable(*off2).ok());
}

TEST(WalWriterTest, SegmentScanRejectsWrongSeqAndBadHeader) {
  const std::string dir = FreshDir("wal_bad_header");
  FileSystem* fs = FileSystem::Default();
  const std::string path = dir + "/" + WalSegmentFileName(5);
  {
    auto writer = WalWriter::Create(fs, path, 5, 0, {});
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->AppendRecord(TestRecord(1, 1)).ok());
    ASSERT_TRUE((*writer)->Close().ok());
  }
  WalSegment segment;
  // The file name says 5, the header says 5 — but the caller expects 6.
  EXPECT_TRUE(ReadWalSegment(fs, path, 6, &segment).IsDataLoss());

  // Flip a header byte: the header CRC catches it.
  std::vector<uint8_t> data = ReadAll(fs, path);
  data[8] ^= 0x40;
  {
    auto f = fs->NewWritableFile(path);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->Append(data.data(), data.size()).ok());
    ASSERT_TRUE((*f)->Close().ok());
  }
  EXPECT_TRUE(ReadWalSegment(fs, path, 5, &segment).IsDataLoss());
}

// The ISSUE's torn-tail fuzz: every truncation point parses as a clean
// prefix + torn tail, every bit flip is either a torn tail or typed
// kDataLoss — never a crash, never garbage records.
TEST(WalFuzzTest, TruncationsAndBitFlipsNeverCrashTheScan) {
  const std::string dir = FreshDir("wal_fuzz");
  FileSystem* fs = FileSystem::Default();
  const std::string path = dir + "/" + WalSegmentFileName(1);
  {
    auto writer = WalWriter::Create(fs, path, 1, 0, {});
    ASSERT_TRUE(writer.ok());
    for (uint64_t i = 0; i < 8; ++i) {
      ASSERT_TRUE((*writer)->AppendRecord(TestRecord(i, i)).ok());
    }
    ASSERT_TRUE((*writer)->Close().ok());
  }
  const std::vector<uint8_t> clean = ReadAll(fs, path);
  const std::string mutated = dir + "/mutated.log";
  const auto write_mutated = [&](const std::vector<uint8_t>& data) {
    auto f = fs->NewWritableFile(mutated);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->Append(data.data(), data.size()).ok());
    ASSERT_TRUE((*f)->Close().ok());
  };

  // Every truncation length: records parse up to the cut, the rest is a
  // torn tail (or, under kWalHeaderBytes, the whole file is the tail).
  for (size_t len = 0; len <= clean.size(); ++len) {
    std::vector<uint8_t> cut(clean.begin(), clean.begin() + len);
    write_mutated(cut);
    WalSegment segment;
    const Status st = ReadWalSegment(fs, mutated, 1, &segment);
    ASSERT_TRUE(st.ok()) << st.ToString();
    EXPECT_EQ(segment.valid_bytes + segment.truncated_tail_bytes, len);
    for (const WalRecord& rec : segment.records) {
      EXPECT_EQ(rec.generation, rec.seq);  // only genuine records survive
    }
  }

  // Random bit flips (plus every byte of the first record's framing):
  // typed status, never a crash.
  Rng rng(0xFEED);
  for (int trial = 0; trial < 400; ++trial) {
    std::vector<uint8_t> flipped = clean;
    const size_t pos = rng.NextBounded(flipped.size());
    flipped[pos] ^= static_cast<uint8_t>(1u << rng.NextBounded(8));
    write_mutated(flipped);
    WalSegment segment;
    const Status st = ReadWalSegment(fs, mutated, 1, &segment);
    EXPECT_TRUE(st.ok() || st.IsDataLoss()) << st.ToString();
    if (st.ok()) {
      EXPECT_LE(segment.valid_bytes + segment.truncated_tail_bytes,
                clean.size());
    }
  }
}

TEST(WalFuzzTest, RepairTruncatesToTheValidPrefix) {
  const std::string dir = FreshDir("wal_repair");
  FileSystem* fs = FileSystem::Default();
  const std::string path = dir + "/" + WalSegmentFileName(1);
  {
    auto writer = WalWriter::Create(fs, path, 1, 0, {});
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->AppendRecord(TestRecord(1, 1)).ok());
    ASSERT_TRUE((*writer)->AppendRecord(TestRecord(2, 2)).ok());
    ASSERT_TRUE((*writer)->Close().ok());
  }
  std::vector<uint8_t> data = ReadAll(fs, path);
  data.resize(data.size() - 3);  // tear the last record mid-frame
  {
    auto f = fs->NewWritableFile(path);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->Append(data.data(), data.size()).ok());
    ASSERT_TRUE((*f)->Close().ok());
  }
  WalSegment segment;
  ASSERT_TRUE(ReadWalSegment(fs, path, 1, &segment).ok());
  ASSERT_EQ(segment.records.size(), 1u);
  EXPECT_GT(segment.truncated_tail_bytes, 0u);
  ASSERT_TRUE(RepairWalTail(fs, path, segment).ok());
  auto size = fs->FileSize(path);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, segment.valid_bytes);
  // After repair the segment scans clean.
  WalSegment repaired;
  ASSERT_TRUE(ReadWalSegment(fs, path, 1, &repaired).ok());
  EXPECT_EQ(repaired.truncated_tail_bytes, 0u);
  ASSERT_EQ(repaired.records.size(), 1u);
}

// --- checkpointer ------------------------------------------------------------

// A WAL segment file is needed for GC retention assertions.
void TouchSegment(FileSystem* fs, const std::string& dir, uint64_t seq,
                  uint64_t base_generation) {
  auto writer = WalWriter::Create(
      fs, dir + "/" + WalSegmentFileName(seq), seq, base_generation, {});
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Close().ok());
}

TEST(CheckpointerTest, PublishRoundTripsGraphIndexAndManifest) {
  const std::string dir = FreshDir("ckpt_roundtrip");
  FileSystem* fs = FileSystem::Default();
  const Graph g = GenerateBarabasiAlbert(50, 2, 11);
  const SpcIndex index = BuildSpcIndex(g);
  const FlatSpcIndex flat(index);

  TouchSegment(fs, dir, 4, 9);
  Checkpointer checkpointer(fs, dir);
  ASSERT_TRUE(checkpointer.Publish(g, flat, 9, 4).ok());

  auto manifest = ReadManifest(fs, dir);
  ASSERT_TRUE(manifest.ok());
  EXPECT_EQ(manifest->generation, 9u);
  EXPECT_EQ(manifest->wal_seq, 4u);
  EXPECT_EQ(manifest->layout_stamp, flat.LayoutStamp());
  EXPECT_FALSE(manifest->has_previous);

  LoadedCheckpoint loaded;
  ASSERT_TRUE(LoadCheckpoint(fs, dir, 9, &loaded).ok());
  EXPECT_EQ(loaded.generation, 9u);
  EXPECT_EQ(loaded.graph.NumVertices(), g.NumVertices());
  EXPECT_EQ(loaded.graph.NumEdges(), g.NumEdges());
  // The reloaded index answers exactly like the original.
  for (Vertex s = 0; s < 10; ++s) {
    for (Vertex t = 40; t < 50; ++t) {
      EXPECT_EQ(loaded.index.Query(s, t), flat.Query(s, t));
    }
  }
}

TEST(CheckpointerTest, CorruptCheckpointAndManifestAreDataLoss) {
  const std::string dir = FreshDir("ckpt_corrupt");
  FileSystem* fs = FileSystem::Default();
  const Graph g = GenerateBarabasiAlbert(30, 2, 3);
  const FlatSpcIndex flat(BuildSpcIndex(g));
  TouchSegment(fs, dir, 1, 5);
  Checkpointer checkpointer(fs, dir);
  ASSERT_TRUE(checkpointer.Publish(g, flat, 5, 1).ok());

  // Flip one payload byte in each artifact: the file CRC must catch it.
  for (const std::string& name :
       {CheckpointFileName(5), std::string(ManifestFileName())}) {
    const std::string path = dir + "/" + name;
    std::vector<uint8_t> data = ReadAll(fs, path);
    std::vector<uint8_t> flipped = data;
    flipped[data.size() / 2] ^= 0x10;
    auto f = fs->NewWritableFile(path);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->Append(flipped.data(), flipped.size()).ok());
    ASSERT_TRUE((*f)->Close().ok());
    if (name == ManifestFileName()) {
      EXPECT_TRUE(ReadManifest(fs, dir).status().IsDataLoss()) << name;
    } else {
      LoadedCheckpoint loaded;
      EXPECT_TRUE(LoadCheckpoint(fs, dir, 5, &loaded).IsDataLoss()) << name;
    }
    // Restore for the next artifact's turn.
    f = fs->NewWritableFile(path);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->Append(data.data(), data.size()).ok());
    ASSERT_TRUE((*f)->Close().ok());
  }
}

TEST(CheckpointerTest, GcKeepsCurrentAndPreviousDropsOlder) {
  const std::string dir = FreshDir("ckpt_gc");
  FileSystem* fs = FileSystem::Default();
  const Graph g = GenerateBarabasiAlbert(30, 2, 7);
  const FlatSpcIndex flat(BuildSpcIndex(g));
  Checkpointer checkpointer(fs, dir);

  TouchSegment(fs, dir, 1, 10);
  ASSERT_TRUE(checkpointer.Publish(g, flat, 10, 1).ok());
  TouchSegment(fs, dir, 2, 20);
  ASSERT_TRUE(checkpointer.Publish(g, flat, 20, 2).ok());
  TouchSegment(fs, dir, 3, 30);
  ASSERT_TRUE(checkpointer.Publish(g, flat, 30, 3).ok());

  // Current (30) and fallback (20) checkpoints survive; 10 is gone. WAL
  // segments from the fallback's seq onward survive; segment 1 is gone.
  EXPECT_TRUE(fs->FileExists(dir + "/" + CheckpointFileName(30)));
  EXPECT_TRUE(fs->FileExists(dir + "/" + CheckpointFileName(20)));
  EXPECT_FALSE(fs->FileExists(dir + "/" + CheckpointFileName(10)));
  EXPECT_TRUE(fs->FileExists(dir + "/" + WalSegmentFileName(3)));
  EXPECT_TRUE(fs->FileExists(dir + "/" + WalSegmentFileName(2)));
  EXPECT_FALSE(fs->FileExists(dir + "/" + WalSegmentFileName(1)));

  auto manifest = ReadManifest(fs, dir);
  ASSERT_TRUE(manifest.ok());
  EXPECT_EQ(manifest->generation, 30u);
  ASSERT_TRUE(manifest->has_previous);
  EXPECT_EQ(manifest->prev_generation, 20u);
  EXPECT_EQ(manifest->prev_wal_seq, 2u);
}

TEST(CheckpointerTest, GcSweepsOrphanedTmpFiles) {
  const std::string dir = FreshDir("ckpt_tmp");
  FileSystem* fs = FileSystem::Default();
  const Graph g = GenerateBarabasiAlbert(20, 2, 1);
  const FlatSpcIndex flat(BuildSpcIndex(g));
  // A stray tmp from a crashed previous publish.
  {
    auto f = fs->NewWritableFile(dir + "/" + CheckpointFileName(99) + ".tmp");
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->Append("junk", 4).ok());
    ASSERT_TRUE((*f)->Close().ok());
  }
  TouchSegment(fs, dir, 1, 3);
  Checkpointer checkpointer(fs, dir);
  ASSERT_TRUE(checkpointer.Publish(g, flat, 3, 1).ok());
  EXPECT_FALSE(fs->FileExists(dir + "/" + CheckpointFileName(99) + ".tmp"));
}

}  // namespace
}  // namespace dspc
