// Stress and failure-injection tests: larger graphs with spot-checked
// queries (all-pairs would be too slow), long mixed streams, adversarial
// serialization inputs, and scratch-reuse hygiene across many updates.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "dspc/baseline/bfs_counting.h"
#include "dspc/common/binary_io.h"
#include "dspc/common/rng.h"
#include "dspc/core/dynamic_spc.h"
#include "dspc/core/hp_spc.h"
#include "dspc/graph/generators.h"
#include "dspc/graph/update_stream.h"

namespace dspc {
namespace {

/// Spot-checks `samples` random pairs against BFS (per-source BFS reuse).
void SpotCheck(const Graph& g, const DynamicSpcIndex& dyn, size_t samples,
               uint64_t seed) {
  Rng rng(seed);
  for (size_t i = 0; i < samples; ++i) {
    const auto s = static_cast<Vertex>(rng.NextBounded(g.NumVertices()));
    const auto t = static_cast<Vertex>(rng.NextBounded(g.NumVertices()));
    const SpcResult got = dyn.Query(s, t);
    const SpcResult want = BfsCountPair(g, s, t);
    ASSERT_EQ(got.dist, want.dist) << "s=" << s << " t=" << t;
    ASSERT_EQ(got.count, want.count) << "s=" << s << " t=" << t;
  }
}

TEST(StressTest, MediumBaGraphLongStream) {
  Graph g = GenerateBarabasiAlbert(1500, 2, 21);
  DynamicSpcIndex dyn(std::move(g));
  Rng rng(22);
  const size_t n = dyn.graph().NumVertices();
  for (int step = 0; step < 120; ++step) {
    if (rng.NextBool(0.7)) {
      const auto u = static_cast<Vertex>(rng.NextBounded(n));
      const auto v = static_cast<Vertex>(rng.NextBounded(n));
      if (u != v && !dyn.graph().HasEdge(u, v)) dyn.InsertEdge(u, v);
    } else {
      const auto edges = SampleEdges(dyn.graph(), 1, 1000 + step);
      if (!edges.empty()) dyn.RemoveEdge(edges[0].u, edges[0].v);
    }
    if (step % 30 == 29) SpotCheck(dyn.graph(), dyn, 40, step);
  }
  ASSERT_TRUE(dyn.index().ValidateStructure().ok());
  SpotCheck(dyn.graph(), dyn, 200, 99);
}

TEST(StressTest, MediumRmatGraphDeletionHeavy) {
  Graph g = GenerateRmat(10, 4000, 23);
  DynamicSpcIndex dyn(std::move(g));
  for (const Edge& e : SampleEdges(dyn.graph(), 40, 24)) {
    dyn.RemoveEdge(e.u, e.v);
  }
  ASSERT_TRUE(dyn.index().ValidateStructure().ok());
  SpotCheck(dyn.graph(), dyn, 300, 25);
}

TEST(StressTest, RepeatedInsertDeleteSameEdgeIsStable) {
  // Oscillating the same edge exercises scratch reset and stale-label
  // handling hard: any leak compounds over iterations.
  Graph g = GenerateWattsStrogatz(200, 2, 0.2, 26);
  DynamicSpcIndex dyn(std::move(g));
  const size_t entries_start = dyn.index().SizeStats().total_entries;
  for (int i = 0; i < 50; ++i) {
    dyn.InsertEdge(5, 150);
    dyn.RemoveEdge(5, 150);
  }
  ASSERT_TRUE(dyn.index().ValidateStructure().ok());
  SpotCheck(dyn.graph(), dyn, 150, 27);
  // The index must not grow without bound under oscillation.
  EXPECT_LE(dyn.index().SizeStats().total_entries, entries_start + 400);
}

TEST(StressTest, DisconnectReconnectComponents) {
  // Two communities joined by one bridge; repeatedly cut and re-add it.
  Graph g(60);
  Graph a = GenerateErdosRenyi(30, 80, 28);
  Graph b = GenerateErdosRenyi(30, 80, 29);
  for (const Edge& e : a.Edges()) g.AddEdge(e.u, e.v);
  for (const Edge& e : b.Edges()) {
    g.AddEdge(e.u + 30, e.v + 30);
  }
  g.AddEdge(7, 37);
  DynamicSpcIndex dyn(std::move(g));
  for (int i = 0; i < 6; ++i) {
    dyn.RemoveEdge(7, 37);
    ASSERT_EQ(dyn.Query(0, 59).dist, kInfDistance) << "cut " << i;
    dyn.InsertEdge(7, 37);
    ASSERT_NE(dyn.Query(0, 59).dist, kInfDistance) << "rejoin " << i;
  }
  SpotCheck(dyn.graph(), dyn, 200, 30);
}

TEST(StressTest, VertexChurn) {
  Graph g = GenerateBarabasiAlbert(300, 2, 31);
  DynamicSpcIndex dyn(std::move(g));
  Rng rng(32);
  for (int round = 0; round < 10; ++round) {
    const Vertex v = dyn.AddVertex();
    // Attach to three random existing vertices, then delete an old vertex.
    for (int j = 0; j < 3; ++j) {
      dyn.InsertEdge(v, static_cast<Vertex>(rng.NextBounded(300)));
    }
    dyn.RemoveVertex(static_cast<Vertex>(rng.NextBounded(300)));
  }
  ASSERT_TRUE(dyn.index().ValidateStructure().ok());
  SpotCheck(dyn.graph(), dyn, 200, 33);
}

// --- serialization failure injection ----------------------------------------

TEST(SerializationFuzzTest, TruncationsNeverCrashAndAlwaysFail) {
  const Graph g = GenerateBarabasiAlbert(40, 2, 34);
  const SpcIndex index = BuildSpcIndex(g);
  const std::string path = ::testing::TempDir() + "/dspc_fuzz.index";
  ASSERT_TRUE(index.Save(path).ok());

  // Read the file, then re-write truncated prefixes of it.
  BinaryReader full({});
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  ASSERT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);

  const std::string trunc_path = ::testing::TempDir() + "/dspc_fuzz_trunc";
  for (size_t keep : {size_t{0}, size_t{3}, size_t{8}, bytes.size() / 4,
                      bytes.size() / 2, bytes.size() - 5, bytes.size() - 1}) {
    std::FILE* out = std::fopen(trunc_path.c_str(), "wb");
    ASSERT_NE(out, nullptr);
    if (keep > 0) {
      ASSERT_EQ(std::fwrite(bytes.data(), 1, keep, out), keep);
    }
    std::fclose(out);
    SpcIndex loaded;
    const Status s = SpcIndex::Load(trunc_path, &loaded);
    EXPECT_FALSE(s.ok()) << "keep=" << keep;
  }
  std::remove(path.c_str());
  std::remove(trunc_path.c_str());
}

TEST(SerializationFuzzTest, BitFlipsAreDetected) {
  const Graph g = GenerateErdosRenyi(30, 60, 35);
  const SpcIndex index = BuildSpcIndex(g);
  const std::string path = ::testing::TempDir() + "/dspc_flip.index";
  ASSERT_TRUE(index.Save(path).ok());

  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const auto size = static_cast<size_t>(std::ftell(f));
  std::fclose(f);

  Rng rng(36);
  for (int trial = 0; trial < 8; ++trial) {
    // Flip one random byte (not in the CRC tail, so the CRC must catch it).
    const size_t pos = rng.NextBounded(size - 4);
    std::FILE* rw = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(rw, nullptr);
    std::fseek(rw, static_cast<long>(pos), SEEK_SET);
    const int old_byte = std::fgetc(rw);
    std::fseek(rw, static_cast<long>(pos), SEEK_SET);
    std::fputc(old_byte ^ 0x40, rw);
    std::fclose(rw);

    SpcIndex loaded;
    EXPECT_TRUE(SpcIndex::Load(path, &loaded).IsCorruption())
        << "pos=" << pos;

    // Restore the byte for the next trial.
    rw = std::fopen(path.c_str(), "r+b");
    std::fseek(rw, static_cast<long>(pos), SEEK_SET);
    std::fputc(old_byte, rw);
    std::fclose(rw);
  }
  std::remove(path.c_str());
}

TEST(SerializationFuzzTest, MaintainedIndexRoundTripsMidStream) {
  // Serialize after a stream of updates; the reloaded index must adopt
  // the current graph and keep answering + updating correctly.
  Graph g = GenerateRmat(8, 700, 37);
  DynamicSpcIndex dyn(g);
  for (const Edge& e : SampleNonEdges(dyn.graph(), 20, 38)) {
    dyn.InsertEdge(e.u, e.v);
  }
  for (const Edge& e : SampleEdges(dyn.graph(), 5, 39)) {
    dyn.RemoveEdge(e.u, e.v);
  }
  const std::string path = ::testing::TempDir() + "/dspc_midstream.index";
  ASSERT_TRUE(dyn.index().Save(path).ok());
  SpcIndex loaded;
  ASSERT_TRUE(SpcIndex::Load(path, &loaded).ok());
  EXPECT_TRUE(loaded == dyn.index());

  DynamicSpcIndex dyn2(dyn.graph(), std::move(loaded));
  dyn2.InsertEdge(1, 2);
  dyn.InsertEdge(1, 2);
  SpotCheck(dyn2.graph(), dyn2, 150, 40);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dspc
