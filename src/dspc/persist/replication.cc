#include "dspc/persist/replication.h"

#include <algorithm>
#include <thread>

#include "dspc/common/binary_io.h"

namespace dspc {

namespace {

std::string Join(const std::string& dir, const std::string& name) {
  return dir + "/" + name;
}

uint32_t LoadLE32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

}  // namespace

// --- ReplayCursor ----------------------------------------------------------

Status ReplayCursor::Feed(WalRecord rec, std::vector<ReplayOp>* out) {
  switch (rec.kind) {
    case WalRecord::Kind::kBatch:
    case WalRecord::Kind::kRemoveVertex: {
      const uint64_t seq = rec.seq;
      if (!pending_.emplace(seq, std::move(rec)).second) {
        return Status::DataLoss("duplicate wal intent seq " +
                                std::to_string(seq));
      }
      return Status::OK();
    }
    case WalRecord::Kind::kCommit: {
      auto it = pending_.find(rec.seq);
      if (it == pending_.end()) {
        return Status::DataLoss("wal commit without intent, seq " +
                                std::to_string(rec.seq));
      }
      WalRecord intent = std::move(it->second);
      pending_.erase(it);
      ReplayOp op;
      if (intent.kind == WalRecord::Kind::kBatch) {
        if (rec.outcomes.size() != intent.updates.size()) {
          return Status::DataLoss(
              "wal commit outcome count contradicts its intent, seq " +
              std::to_string(rec.seq));
        }
        op.kind = ReplayOp::Kind::kBatch;
        op.base_generation = intent.generation;
        op.updates = std::move(intent.updates);
        op.outcomes = std::move(rec.outcomes);
      } else {
        op.kind = ReplayOp::Kind::kRemoveVertex;
        op.vertex = intent.vertex;
      }
      op.end_generation = rec.generation;
      return Emit(std::move(op), out);
    }
    case WalRecord::Kind::kAddVertex: {
      ReplayOp op;
      op.kind = ReplayOp::Kind::kAddVertex;
      op.vertex = rec.vertex;
      op.end_generation = rec.generation;
      return Emit(std::move(op), out);
    }
  }
  return Status::DataLoss("unknown wal record kind");
}

Status ReplayCursor::Emit(ReplayOp op, std::vector<ReplayOp>* out) {
  if (op.end_generation <= start_generation_) {
    ++skipped_;
    return Status::OK();
  }
  if (op.kind == ReplayOp::Kind::kBatch && op.base_generation != generation_) {
    return Status::DataLoss("wal replay chain broken at generation " +
                            std::to_string(op.base_generation) +
                            ", expected " + std::to_string(generation_));
  }
  if (op.end_generation < generation_) {
    return Status::DataLoss("wal commit generations not monotonic");
  }
  generation_ = op.end_generation;
  out->push_back(std::move(op));
  return Status::OK();
}

StatusOr<uint64_t> ParseWalFrameWindow(std::span<const uint8_t> window,
                                       std::vector<WalRecord>* out) {
  uint64_t pos = 0;
  while (window.size() - pos >= kWalRecordOverheadBytes) {
    const uint32_t len = LoadLE32(window.data() + pos);
    const uint32_t crc = LoadLE32(window.data() + pos + 4);
    // An absurd length or a CRC mismatch is indistinguishable from a
    // transport-mangled window from here: stop and let the caller
    // re-fetch (an honest store serves the same bytes again — a mangled
    // fetch resolves, real at-rest damage stalls the tail, loudly, via
    // the caller's retry accounting).
    if (len > kWalMaxRecordBytes) break;
    if (len > window.size() - pos - kWalRecordOverheadBytes) break;
    const uint8_t* payload = window.data() + pos + kWalRecordOverheadBytes;
    if (Crc32c(payload, len) != crc) break;
    WalRecord rec;
    if (Status st = DecodeWalRecord({payload, len}, &rec); !st.ok()) {
      return st;  // CRC-valid but undecodable: damage, not transport
    }
    out->push_back(std::move(rec));
    pos += kWalRecordOverheadBytes + len;
  }
  return pos;
}

// --- ShipState encoding ----------------------------------------------------

namespace {
constexpr uint32_t kShipStateMagic = 0x54535344;  // "DSST"
constexpr uint32_t kShipStateVersion = 1;
}  // namespace

std::vector<uint8_t> EncodeShipState(const ShipState& state) {
  BinaryWriter w;
  w.PutU32(kShipStateMagic);
  w.PutU32(kShipStateVersion);
  w.PutU64(state.checkpoint_generation);
  w.PutU64(state.checkpoint_wal_seq);
  w.PutU64(state.min_wal_seq);
  w.PutU64(state.max_wal_seq);
  w.PutU64(state.durable_generation);
  return w.buffer();
}

Status DecodeShipState(std::span<const uint8_t> bytes, ShipState* out) {
  BinaryReader r(std::vector<uint8_t>(bytes.begin(), bytes.end()));
  if (r.GetU32() != kShipStateMagic) {
    return Status::DataLoss("ship state magic mismatch");
  }
  if (r.GetU32() != kShipStateVersion) {
    return Status::DataLoss("ship state version mismatch");
  }
  ShipState s;
  s.checkpoint_generation = r.GetU64();
  s.checkpoint_wal_seq = r.GetU64();
  s.min_wal_seq = r.GetU64();
  s.max_wal_seq = r.GetU64();
  s.durable_generation = r.GetU64();
  if (!r.AtEnd()) return Status::DataLoss("ship state malformed");
  *out = s;
  return Status::OK();
}

namespace {

bool SameState(const ShipState& a, const ShipState& b) {
  return a.checkpoint_generation == b.checkpoint_generation &&
         a.checkpoint_wal_seq == b.checkpoint_wal_seq &&
         a.min_wal_seq == b.min_wal_seq && a.max_wal_seq == b.max_wal_seq &&
         a.durable_generation == b.durable_generation;
}

}  // namespace

// --- InProcessTransport ----------------------------------------------------

Status InProcessTransport::PutCheckpoint(uint64_t generation,
                                         std::span<const uint8_t> bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  checkpoints_[generation].assign(bytes.begin(), bytes.end());
  return Status::OK();
}

Status InProcessTransport::AppendSegment(uint64_t seq, uint64_t offset,
                                         std::span<const uint8_t> bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint8_t>& seg = segments_[seq];
  if (offset > seg.size()) {
    return Status::Unavailable("segment append gap: have " +
                               std::to_string(seg.size()) + " bytes, offset " +
                               std::to_string(offset));
  }
  // Overlap is a re-send of bytes already stored (identical by the
  // transport contract): append only the novel suffix.
  const uint64_t skip = seg.size() - offset;
  if (skip < bytes.size()) {
    seg.insert(seg.end(), bytes.begin() + static_cast<ptrdiff_t>(skip),
               bytes.end());
  }
  return Status::OK();
}

StatusOr<uint64_t> InProcessTransport::SegmentSize(uint64_t seq) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = segments_.find(seq);
  return it == segments_.end() ? 0 : static_cast<uint64_t>(it->second.size());
}

Status InProcessTransport::PublishState(const ShipState& state) {
  std::lock_guard<std::mutex> lock(mu_);
  state_ = state;
  has_state_ = true;
  return Status::OK();
}

Status InProcessTransport::Retire(uint64_t min_checkpoint_generation,
                                  uint64_t min_wal_seq) {
  std::lock_guard<std::mutex> lock(mu_);
  std::erase_if(checkpoints_, [&](const auto& kv) {
    return kv.first < min_checkpoint_generation;
  });
  std::erase_if(segments_,
                [&](const auto& kv) { return kv.first < min_wal_seq; });
  return Status::OK();
}

StatusOr<ShipState> InProcessTransport::FetchState() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!has_state_) return Status::Unavailable("no ship state published yet");
  return state_;
}

Status InProcessTransport::FetchCheckpoint(uint64_t generation,
                                           std::vector<uint8_t>* out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = checkpoints_.find(generation);
  if (it == checkpoints_.end()) {
    return Status::NotFound("shipped checkpoint absent: generation " +
                            std::to_string(generation));
  }
  *out = it->second;
  return Status::OK();
}

Status InProcessTransport::FetchSegment(uint64_t seq, uint64_t offset,
                                        std::vector<uint8_t>* out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = segments_.find(seq);
  if (it == segments_.end()) {
    return Status::NotFound("shipped segment absent: seq " +
                            std::to_string(seq));
  }
  out->clear();
  if (offset < it->second.size()) {
    out->assign(it->second.begin() + static_cast<ptrdiff_t>(offset),
                it->second.end());
  }
  return Status::OK();
}

// --- DirectoryTransport ----------------------------------------------------

namespace {

/// Writes payload + CRC32C trailer atomically (tmp → sync → rename →
/// dir-sync). The directory-transport twin of the checkpointer's helper.
Status WriteFramedAtomic(FileSystem* fs, const std::string& dir,
                         const std::string& name,
                         const std::vector<uint8_t>& payload) {
  const std::string tmp = Join(dir, name + ".tmp");
  auto file = fs->NewWritableFile(tmp);
  if (!file.ok()) return file.status();
  if (Status st = (*file)->Append(payload.data(), payload.size()); !st.ok()) {
    return st;
  }
  const uint32_t crc = Crc32c(payload.data(), payload.size());
  const uint8_t tail[4] = {
      static_cast<uint8_t>(crc), static_cast<uint8_t>(crc >> 8),
      static_cast<uint8_t>(crc >> 16), static_cast<uint8_t>(crc >> 24)};
  if (Status st = (*file)->Append(tail, sizeof(tail)); !st.ok()) return st;
  if (Status st = (*file)->Sync(); !st.ok()) return st;
  if (Status st = (*file)->Close(); !st.ok()) return st;
  if (Status st = fs->RenameFile(tmp, Join(dir, name)); !st.ok()) return st;
  return fs->SyncDir(dir);
}

Status CheckFrame(std::vector<uint8_t>* data, const std::string& context) {
  if (data->size() < 4) {
    return Status::DataLoss("framed file too small: " + context);
  }
  const size_t payload = data->size() - 4;
  const uint32_t stored = LoadLE32(data->data() + payload);
  if (Crc32c(data->data(), payload) != stored) {
    return Status::DataLoss("checksum mismatch: " + context);
  }
  data->resize(payload);
  return Status::OK();
}

const char* ShipStateFileName() { return "SHIPSTATE"; }

bool ParsePrefixed(const std::string& name, const std::string& prefix,
                   const std::string& suffix, uint64_t* value) {
  if (name.size() <= prefix.size() + suffix.size()) return false;
  if (name.compare(0, prefix.size(), prefix) != 0) return false;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return false;
  }
  uint64_t v = 0;
  for (size_t i = prefix.size(); i < name.size() - suffix.size(); ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  *value = v;
  return true;
}

}  // namespace

DirectoryTransport::DirectoryTransport(FileSystem* fs, std::string dir)
    : fs_(fs), dir_(std::move(dir)) {
  (void)fs_->CreateDir(dir_);
}

std::string DirectoryTransport::SegmentPath(uint64_t seq) const {
  return Join(dir_, "ship-wal-" + std::to_string(seq) + ".log");
}

std::string DirectoryTransport::CheckpointPath(uint64_t generation) const {
  return Join(dir_, "ship-ckpt-" + std::to_string(generation) + ".spc");
}

Status DirectoryTransport::PutCheckpoint(uint64_t generation,
                                         std::span<const uint8_t> bytes) {
  // The bytes ARE a checkpoint file (internal CRC framing included), so
  // no extra trailer — just the atomic-rename dance, which also makes a
  // re-send after a half-written attempt overwrite cleanly.
  const std::string name = "ship-ckpt-" + std::to_string(generation) + ".spc";
  const std::string tmp = Join(dir_, name + ".tmp");
  auto file = fs_->NewWritableFile(tmp);
  if (!file.ok()) return file.status();
  if (Status st = (*file)->Append(bytes.data(), bytes.size()); !st.ok()) {
    return st;
  }
  if (Status st = (*file)->Sync(); !st.ok()) return st;
  if (Status st = (*file)->Close(); !st.ok()) return st;
  if (Status st = fs_->RenameFile(tmp, Join(dir_, name)); !st.ok()) return st;
  return fs_->SyncDir(dir_);
}

Status DirectoryTransport::AppendSegment(uint64_t seq, uint64_t offset,
                                         std::span<const uint8_t> bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = open_segments_.find(seq);
  if (it != open_segments_.end()) {
    OpenSegment& seg = it->second;
    if (offset > seg.size) {
      return Status::Unavailable("segment append gap: have " +
                                 std::to_string(seg.size) + " bytes, offset " +
                                 std::to_string(offset));
    }
    const uint64_t skip = seg.size - offset;
    if (skip >= bytes.size()) return Status::OK();
    if (Status st = seg.file->Append(bytes.data() + skip, bytes.size() - skip);
        !st.ok()) {
      open_segments_.erase(it);  // handle state unknown: rebuild next call
      return st;
    }
    if (Status st = seg.file->Sync(); !st.ok()) {
      open_segments_.erase(it);
      return st;
    }
    seg.size += bytes.size() - skip;
    return Status::OK();
  }

  // No open handle (first touch, or a previous instance's segment). The
  // seam cannot reopen for append, so rebuild the file: read what is
  // stored, splice the novel suffix on (overlap identical by contract),
  // rewrite, and keep the handle for subsequent appends.
  std::vector<uint8_t> content;
  const std::string path = SegmentPath(seq);
  if (fs_->FileExists(path)) {
    if (Status st = fs_->ReadFile(path, &content); !st.ok()) return st;
  }
  if (offset > content.size()) {
    return Status::Unavailable("segment append gap: have " +
                               std::to_string(content.size()) +
                               " bytes, offset " + std::to_string(offset));
  }
  const uint64_t skip = content.size() - offset;
  if (skip < bytes.size()) {
    content.insert(content.end(), bytes.begin() + static_cast<ptrdiff_t>(skip),
                   bytes.end());
  }
  auto file = fs_->NewWritableFile(path);
  if (!file.ok()) return file.status();
  if (Status st = (*file)->Append(content.data(), content.size()); !st.ok()) {
    return st;
  }
  if (Status st = (*file)->Sync(); !st.ok()) return st;
  open_segments_[seq] = OpenSegment{std::move(*file), content.size()};
  return Status::OK();
}

StatusOr<uint64_t> DirectoryTransport::SegmentSize(uint64_t seq) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = open_segments_.find(seq);
  if (it != open_segments_.end()) return it->second.size;
  const std::string path = SegmentPath(seq);
  if (!fs_->FileExists(path)) return uint64_t{0};
  return fs_->FileSize(path);
}

Status DirectoryTransport::PublishState(const ShipState& state) {
  return WriteFramedAtomic(fs_, dir_, ShipStateFileName(),
                           EncodeShipState(state));
}

Status DirectoryTransport::Retire(uint64_t min_checkpoint_generation,
                                  uint64_t min_wal_seq) {
  auto names = fs_->ListDir(dir_);
  if (!names.ok()) return names.status();
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::string& name : *names) {
    uint64_t v = 0;
    if (ParsePrefixed(name, "ship-ckpt-", ".spc", &v) &&
        v < min_checkpoint_generation) {
      if (Status st = fs_->RemoveFile(Join(dir_, name)); !st.ok()) return st;
    } else if (ParsePrefixed(name, "ship-wal-", ".log", &v) &&
               v < min_wal_seq) {
      auto it = open_segments_.find(v);
      if (it != open_segments_.end()) {
        (void)it->second.file->Close();
        open_segments_.erase(it);
      }
      if (Status st = fs_->RemoveFile(Join(dir_, name)); !st.ok()) return st;
    }
  }
  return Status::OK();
}

StatusOr<ShipState> DirectoryTransport::FetchState() {
  const std::string path = Join(dir_, ShipStateFileName());
  if (!fs_->FileExists(path)) {
    return Status::Unavailable("no ship state published yet");
  }
  std::vector<uint8_t> data;
  if (Status st = fs_->ReadFile(path, &data); !st.ok()) return st;
  if (Status st = CheckFrame(&data, path); !st.ok()) return st;
  ShipState s;
  if (Status st = DecodeShipState(data, &s); !st.ok()) return st;
  return s;
}

Status DirectoryTransport::FetchCheckpoint(uint64_t generation,
                                           std::vector<uint8_t>* out) {
  const std::string path = CheckpointPath(generation);
  if (!fs_->FileExists(path)) {
    return Status::NotFound("shipped checkpoint absent: generation " +
                            std::to_string(generation));
  }
  return fs_->ReadFile(path, out);
}

Status DirectoryTransport::FetchSegment(uint64_t seq, uint64_t offset,
                                        std::vector<uint8_t>* out) {
  const std::string path = SegmentPath(seq);
  if (!fs_->FileExists(path)) {
    return Status::NotFound("shipped segment absent: seq " +
                            std::to_string(seq));
  }
  std::vector<uint8_t> data;
  if (Status st = fs_->ReadFile(path, &data); !st.ok()) return st;
  out->clear();
  if (offset < data.size()) {
    out->assign(data.begin() + static_cast<ptrdiff_t>(offset), data.end());
  }
  return Status::OK();
}

// --- FaultInjectingTransport -----------------------------------------------

namespace {

/// Ops a kDisconnect takes down beyond the tripping one.
constexpr uint32_t kDisconnectExtraOps = 3;

uint64_t XorShift64(uint64_t x) {
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  return x;
}

}  // namespace

void FaultInjectingTransport::Arm(uint64_t index, TransportFault fault) {
  std::lock_guard<std::mutex> lock(mu_);
  arm_at_ = index;
  armed_fault_ = fault;
  armed_ = true;
  tripped_ = false;
  ops_ = 0;
  disconnected_ops_ = 0;
}

void FaultInjectingTransport::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_ = false;
  tripped_ = false;
  ops_ = 0;
  disconnected_ops_ = 0;
  chaos_permille_ = 0;
}

void FaultInjectingTransport::SetChaos(uint64_t seed, uint32_t permille) {
  std::lock_guard<std::mutex> lock(mu_);
  chaos_state_ = seed | 1;
  chaos_permille_ = permille;
}

uint64_t FaultInjectingTransport::OperationCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ops_;
}

bool FaultInjectingTransport::Tripped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tripped_;
}

TransportFault FaultInjectingTransport::Charge() {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t index = ops_++;
  if (disconnected_ops_ > 0) {
    --disconnected_ops_;
    return TransportFault::kDrop;
  }
  if (armed_ && index == arm_at_) {
    armed_ = false;  // one-shot: the fault is transient, not sticky
    tripped_ = true;
    if (armed_fault_ == TransportFault::kDisconnect) {
      disconnected_ops_ = kDisconnectExtraOps;
      return TransportFault::kDrop;
    }
    return armed_fault_;
  }
  if (chaos_permille_ > 0) {
    chaos_state_ = XorShift64(chaos_state_);
    if (chaos_state_ % 1000 < chaos_permille_) {
      static constexpr TransportFault kMenu[] = {
          TransportFault::kDrop,     TransportFault::kDuplicate,
          TransportFault::kTruncate, TransportFault::kDelay,
          TransportFault::kDisconnect,
      };
      const TransportFault f = kMenu[(chaos_state_ >> 32) % 5];
      if (f == TransportFault::kDisconnect) {
        disconnected_ops_ = 2;
        return TransportFault::kDrop;
      }
      return f;
    }
  }
  return TransportFault::kNone;
}

namespace {
Status InjectedUnavailable() {
  return Status::Unavailable("injected transport fault");
}
}  // namespace

Status FaultInjectingTransport::PutCheckpoint(uint64_t generation,
                                              std::span<const uint8_t> bytes) {
  switch (Charge()) {
    case TransportFault::kNone:
      return base_->PutCheckpoint(generation, bytes);
    case TransportFault::kDrop:
    case TransportFault::kDisconnect:
      return InjectedUnavailable();
    case TransportFault::kDuplicate:
      if (Status st = base_->PutCheckpoint(generation, bytes); !st.ok()) {
        return st;
      }
      return base_->PutCheckpoint(generation, bytes);
    case TransportFault::kTruncate:
      // Half the image lands (corrupt at rest until a retry overwrites
      // it); the sender sees failure and retries.
      (void)base_->PutCheckpoint(generation, bytes.first(bytes.size() / 2));
      return InjectedUnavailable();
    case TransportFault::kDelay:
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      return base_->PutCheckpoint(generation, bytes);
  }
  return InjectedUnavailable();
}

Status FaultInjectingTransport::AppendSegment(uint64_t seq, uint64_t offset,
                                              std::span<const uint8_t> bytes) {
  switch (Charge()) {
    case TransportFault::kNone:
      return base_->AppendSegment(seq, offset, bytes);
    case TransportFault::kDrop:
    case TransportFault::kDisconnect:
      return InjectedUnavailable();
    case TransportFault::kDuplicate:
      if (Status st = base_->AppendSegment(seq, offset, bytes); !st.ok()) {
        return st;
      }
      return base_->AppendSegment(seq, offset, bytes);
    case TransportFault::kTruncate:
      (void)base_->AppendSegment(seq, offset, bytes.first(bytes.size() / 2));
      return InjectedUnavailable();
    case TransportFault::kDelay:
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      return base_->AppendSegment(seq, offset, bytes);
  }
  return InjectedUnavailable();
}

StatusOr<uint64_t> FaultInjectingTransport::SegmentSize(uint64_t seq) {
  switch (Charge()) {
    case TransportFault::kNone:
    case TransportFault::kDuplicate:
      return base_->SegmentSize(seq);
    case TransportFault::kDelay:
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      return base_->SegmentSize(seq);
    default:
      return InjectedUnavailable();
  }
}

Status FaultInjectingTransport::PublishState(const ShipState& state) {
  switch (Charge()) {
    case TransportFault::kNone:
      return base_->PublishState(state);
    case TransportFault::kDuplicate:
      if (Status st = base_->PublishState(state); !st.ok()) return st;
      return base_->PublishState(state);
    case TransportFault::kDelay:
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      return base_->PublishState(state);
    default:
      return InjectedUnavailable();
  }
}

Status FaultInjectingTransport::Retire(uint64_t min_checkpoint_generation,
                                       uint64_t min_wal_seq) {
  switch (Charge()) {
    case TransportFault::kNone:
    case TransportFault::kDuplicate:
      return base_->Retire(min_checkpoint_generation, min_wal_seq);
    case TransportFault::kDelay:
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      return base_->Retire(min_checkpoint_generation, min_wal_seq);
    default:
      return InjectedUnavailable();
  }
}

StatusOr<ShipState> FaultInjectingTransport::FetchState() {
  switch (Charge()) {
    case TransportFault::kNone:
    case TransportFault::kDuplicate:
      return base_->FetchState();
    case TransportFault::kDelay:
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      return base_->FetchState();
    default:
      return InjectedUnavailable();
  }
}

Status FaultInjectingTransport::FetchCheckpoint(uint64_t generation,
                                                std::vector<uint8_t>* out) {
  switch (Charge()) {
    case TransportFault::kNone:
    case TransportFault::kDuplicate:
      return base_->FetchCheckpoint(generation, out);
    case TransportFault::kDelay:
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      return base_->FetchCheckpoint(generation, out);
    case TransportFault::kTruncate: {
      // The receiver gets half the image: its checksum rejects it and a
      // re-fetch resolves.
      if (Status st = base_->FetchCheckpoint(generation, out); !st.ok()) {
        return st;
      }
      out->resize(out->size() / 2);
      return Status::OK();
    }
    default:
      return InjectedUnavailable();
  }
}

Status FaultInjectingTransport::FetchSegment(uint64_t seq, uint64_t offset,
                                             std::vector<uint8_t>* out) {
  switch (Charge()) {
    case TransportFault::kNone:
    case TransportFault::kDuplicate:
      return base_->FetchSegment(seq, offset, out);
    case TransportFault::kDelay:
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      return base_->FetchSegment(seq, offset, out);
    case TransportFault::kTruncate: {
      // The receiver gets a short window: frame parsing stops at the cut
      // and the next poll re-fetches the remainder.
      if (Status st = base_->FetchSegment(seq, offset, out); !st.ok()) {
        return st;
      }
      out->resize(out->size() / 2);
      return Status::OK();
    }
    default:
      return InjectedUnavailable();
  }
}

// --- ReplicationBackoff ----------------------------------------------------

std::chrono::microseconds ReplicationBackoff::Next() {
  ++sleeps_;
  rng_ = XorShift64(rng_);
  const int64_t base = current_.count();
  // ±25% jitter so a fleet of retriers decorrelates.
  const int64_t span = std::max<int64_t>(base / 2, 1);
  const int64_t delay =
      base - base / 4 + static_cast<int64_t>(rng_ % static_cast<uint64_t>(span));
  current_ = std::min(current_ * 2, options_.max);
  return std::chrono::microseconds(delay);
}

// --- WalShipper ------------------------------------------------------------

WalShipper::WalShipper(FileSystem* fs, std::string dir, const Options& options)
    : fs_(fs), dir_(std::move(dir)), options_(options) {
  if (options_.retention != nullptr) {
    // Pin everything until the first pass establishes a tail position:
    // wal_seq 0 = keep all segments.
    retention_handle_ =
        options_.retention->RegisterConsumer(CheckpointRef{0, 0});
    retention_registered_ = true;
  }
}

WalShipper::~WalShipper() {
  Stop();
  if (retention_registered_) {
    options_.retention->UnregisterConsumer(retention_handle_);
  }
}

Status WalShipper::ShipOnce() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!health_.ok()) return health_;
  Status st = ShipOnceLocked();
  if (st.IsDataLoss()) health_ = st;  // primary-side damage: fail-stop
  if (st.ok()) {
    if (last_failed_) {
      stat_reconnects_.fetch_add(1, std::memory_order_relaxed);
      if (options_.on_reconnect) options_.on_reconnect();
    }
    last_failed_ = false;
  } else {
    last_failed_ = true;
  }
  return st;
}

Status WalShipper::ShipOnceLocked() {
  if (!fs_->FileExists(Join(dir_, ManifestFileName()))) {
    return Status::Unavailable("nothing to ship: no MANIFEST in " + dir_);
  }
  auto manifest = ReadManifest(fs_, dir_);
  if (!manifest.ok()) return manifest.status();

  if (!have_checkpoint_ || manifest->generation != shipped_checkpoint_gen_) {
    if (Status st =
            ShipCheckpointLocked(manifest->generation, manifest->wal_seq);
        !st.ok()) {
      return st;
    }
  }

  bool progressed = false;
  for (;;) {
    const uint64_t seq = tail_seq_;
    if (!fs_->FileExists(Join(dir_, WalSegmentFileName(seq)))) {
      if (seq < manifest->wal_seq) {
        // The tail fell behind the primary's GC (cannot happen while the
        // retention consumer is honored, but recoverable): restart at
        // the newest checkpoint's replay point. Replicas behind the jump
        // re-bootstrap from that checkpoint.
        tail_seq_ = manifest->wal_seq;
        tail_offset_ = 0;
        continue;
      }
      break;  // the segment at the tip has not been created yet
    }
    const bool rotated =
        fs_->FileExists(Join(dir_, WalSegmentFileName(seq + 1)));
    if (Status st = ShipSegmentLocked(seq, rotated, &progressed); !st.ok()) {
      return st;
    }
    if (tail_seq_ == seq) break;  // did not finish this segment: tip reached
  }

  UpdateRetentionLocked();

  // Retire store artifacts the newest shipped checkpoint covers — but
  // never a segment still being shipped (replicas tailing it would be
  // forced through a pointless re-bootstrap).
  if (have_checkpoint_ && max_shipped_seq_ != 0) {
    const uint64_t retire_seq = std::min(shipped_checkpoint_wal_seq_, tail_seq_);
    if (retire_seq > store_min_wal_seq_ ||
        shipped_checkpoint_gen_ > retired_checkpoint_gen_) {
      if (options_.transport->Retire(shipped_checkpoint_gen_, retire_seq)
              .ok()) {
        retired_checkpoint_gen_ = shipped_checkpoint_gen_;
        store_min_wal_seq_ = std::max(store_min_wal_seq_, retire_seq);
      }
      // A failed retire just leaves garbage in the store; retried next
      // pass, never worth failing the pass over.
    }
  }

  ShipState s;
  s.checkpoint_generation = shipped_checkpoint_gen_;
  s.checkpoint_wal_seq = shipped_checkpoint_wal_seq_;
  s.min_wal_seq = store_min_wal_seq_;
  s.max_wal_seq = max_shipped_seq_;
  s.durable_generation = durable_generation_;
  if (!published_any_ || !SameState(s, published_)) {
    if (Status st = options_.transport->PublishState(s); !st.ok()) return st;
    published_ = s;
    published_any_ = true;
  }
  stat_shipped_gen_.store(durable_generation_, std::memory_order_relaxed);
  (void)progressed;
  return Status::OK();
}

Status WalShipper::ShipCheckpointLocked(uint64_t generation,
                                        uint64_t wal_seq) {
  std::vector<uint8_t> bytes;
  if (Status st =
          fs_->ReadFile(Join(dir_, CheckpointFileName(generation)), &bytes);
      !st.ok()) {
    return st;
  }
  if (Status st = options_.transport->PutCheckpoint(generation, bytes);
      !st.ok()) {
    return st;
  }
  const bool first = !have_checkpoint_;
  have_checkpoint_ = true;
  shipped_checkpoint_gen_ = generation;
  shipped_checkpoint_wal_seq_ = wal_seq;
  // The checkpoint embodies every commit at or below its generation:
  // shipping it makes them all durably present in the store.
  durable_generation_ = std::max(durable_generation_, generation);
  if (first) {
    tail_seq_ = wal_seq;
    tail_offset_ = 0;
  }
  stat_checkpoints_.fetch_add(1, std::memory_order_relaxed);
  if (options_.on_checkpoint_shipped) options_.on_checkpoint_shipped();
  return Status::OK();
}

Status WalShipper::ShipSegmentLocked(uint64_t seq, bool final_segment,
                                     bool* progressed) {
  const std::string path = Join(dir_, WalSegmentFileName(seq));
  WalSegment seg;
  if (Status st =
          ReadWalSegment(fs_, path, seq, &seg, WalTailPolicy::kLiveTail);
      !st.ok()) {
    return st;
  }
  if (seg.truncated_tail_bytes != 0) {
    // Under kLiveTail only real damage is ever classified torn: a
    // complete frame with a bad CRC, or junk on a rotated-away segment.
    return Status::DataLoss("wal segment damaged under live tail: " + path);
  }

  uint64_t ship_end = seg.resume_offset;
  if (options_.synced_tip) {
    const auto [tip_seq, tip_synced] = options_.synced_tip();
    if (seq == tip_seq) {
      // Never ship past the fsync horizon: a replica must not apply a
      // write the primary could still lose.
      ship_end = std::min(ship_end, tip_synced);
    } else if (seq > tip_seq) {
      ship_end = 0;  // raced ahead of rotation; settle next pass
    }
  }

  if (ship_end > tail_offset_) {
    std::vector<uint8_t> data;
    if (Status st = fs_->ReadFile(path, &data); !st.ok()) return st;
    if (data.size() < ship_end) {
      return Status::Unavailable("wal segment shrank under tail: " + path);
    }
    const std::span<const uint8_t> slice(data.data() + tail_offset_,
                                         ship_end - tail_offset_);
    if (Status st = options_.transport->AppendSegment(seq, tail_offset_, slice);
        !st.ok()) {
      if (st.IsUnavailable()) {
        // Possibly a gap (the store lost bytes we thought were there):
        // resync the tail offset to what it really holds.
        if (auto size = options_.transport->SegmentSize(seq);
            size.ok() && *size < tail_offset_) {
          tail_offset_ = *size;
        }
      }
      return st;
    }
    if (tail_offset_ == 0) {
      stat_segments_.fetch_add(1, std::memory_order_relaxed);
      if (options_.on_segment_started) options_.on_segment_started();
    }
    if (max_shipped_seq_ < seq) max_shipped_seq_ = seq;
    if (store_min_wal_seq_ == 0) store_min_wal_seq_ = seq;

    // Advance the durably-shipped generation from the commits inside the
    // shipped window (frames are aligned there: the offset is either 0 —
    // header first — or a previous whole-frame boundary).
    const uint64_t frames_begin = std::max<uint64_t>(tail_offset_,
                                                     kWalHeaderBytes);
    if (ship_end > frames_begin) {
      std::vector<WalRecord> recs;
      auto consumed = ParseWalFrameWindow(
          {data.data() + frames_begin, ship_end - frames_begin}, &recs);
      if (!consumed.ok()) return consumed.status();
      for (const WalRecord& rec : recs) {
        if ((rec.kind == WalRecord::Kind::kCommit ||
             rec.kind == WalRecord::Kind::kAddVertex) &&
            rec.generation > durable_generation_) {
          durable_generation_ = rec.generation;
        }
      }
    }

    stat_bytes_.fetch_add(slice.size(), std::memory_order_relaxed);
    if (options_.on_bytes_shipped) options_.on_bytes_shipped(slice.size());
    tail_offset_ = ship_end;
    *progressed = true;
  }

  if (final_segment && !seg.tail_in_flight &&
      tail_offset_ == seg.resume_offset) {
    // Rotated away and fully shipped: move to its successor.
    tail_seq_ = seq + 1;
    tail_offset_ = 0;
  }
  return Status::OK();
}

void WalShipper::UpdateRetentionLocked() {
  if (!retention_registered_) return;
  // Pin the tail segment and everything after it; checkpoints need no
  // pin (GC always keeps current + previous, and the shipper only ever
  // reads the manifest's current).
  options_.retention->UpdateConsumer(retention_handle_,
                                     CheckpointRef{0, tail_seq_});
}

void WalShipper::Start() {
  std::lock_guard<std::mutex> lock(pump_mu_);
  if (pump_.joinable()) return;
  stop_pump_ = false;
  pump_ = std::thread([this] { PumpLoop(); });
}

void WalShipper::Stop() {
  std::thread t;
  {
    std::lock_guard<std::mutex> lock(pump_mu_);
    stop_pump_ = true;
    t = std::move(pump_);
  }
  pump_cv_.notify_all();
  if (t.joinable()) t.join();
}

void WalShipper::PumpLoop() {
  ReplicationBackoff backoff(options_.backoff);
  for (;;) {
    Status st = ShipOnce();
    std::chrono::microseconds delay = options_.poll_interval;
    if (st.ok()) {
      backoff.Reset();
    } else if (st.IsDataLoss()) {
      return;  // sticky fail-stop; Health() carries the story
    } else {
      delay = backoff.Next();
      stat_backoffs_.fetch_add(1, std::memory_order_relaxed);
      if (options_.on_backoff_sleep) options_.on_backoff_sleep();
    }
    std::unique_lock<std::mutex> lock(pump_mu_);
    pump_cv_.wait_for(lock, delay, [&] { return stop_pump_; });
    if (stop_pump_) return;
  }
}

WalShipper::Stats WalShipper::GetStats() const {
  Stats s;
  s.checkpoints_shipped = stat_checkpoints_.load(std::memory_order_relaxed);
  s.segments_started = stat_segments_.load(std::memory_order_relaxed);
  s.bytes_shipped = stat_bytes_.load(std::memory_order_relaxed);
  s.reconnects = stat_reconnects_.load(std::memory_order_relaxed);
  s.backoff_sleeps = stat_backoffs_.load(std::memory_order_relaxed);
  s.shipped_generation = stat_shipped_gen_.load(std::memory_order_relaxed);
  return s;
}

Status WalShipper::Health() const {
  std::lock_guard<std::mutex> lock(mu_);
  return health_;
}

}  // namespace dspc
