#include "dspc/persist/snapshot_arena.h"

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstring>
#include <type_traits>
#include <vector>

#include "dspc/common/binary_io.h"
#include "dspc/core/spc_index.h"

namespace dspc {

namespace {

// The arena views label words straight out of the file, so the on-disk
// byte layout must BE the in-memory layout. LabelEntry's members mirror
// the v2 stream's u32 hub / u32 dist / u64 count triple exactly, and
// the format is little-endian like every other file this repo writes.
static_assert(sizeof(LabelEntry) == 16);
static_assert(offsetof(LabelEntry, hub) == 0);
static_assert(offsetof(LabelEntry, dist) == 4);
static_assert(offsetof(LabelEntry, count) == 8);
static_assert(std::is_trivially_copyable_v<LabelEntry>);

/// One section descriptor in the header: placement plus a CRC32C over
/// exactly [offset, offset + length) of the file.
struct ArenaSection {
  uint64_t offset = 0;
  uint64_t length = 0;
  uint32_t crc = 0;
  uint32_t reserved = 0;
};

/// Fixed section order. Packed files have all four; wide files stop at
/// kSecEntries (the entries section then holds 16-byte LabelEntry
/// records instead of packed words).
enum : uint32_t {
  kSecRanks = 0,
  kSecOffsets = 1,
  kSecEntries = 2,
  kSecOverflow = 3,
  kMaxSections = 4,
};

inline constexpr uint32_t kFlagWide = 1u << 0;

/// The fixed-size header at file offset 0, occupying the first page
/// alone. header_crc covers every preceding byte; the trailing struct
/// padding and the rest of the page are written (and verified) zero.
struct ArenaHeader {
  uint32_t magic = 0;
  uint32_t version = 0;
  uint64_t generation = 0;
  uint64_t wal_seq = 0;
  uint64_t num_vertices = 0;
  uint32_t flags = 0;
  uint32_t section_count = 0;
  ArenaSection sections[kMaxSections];
  uint32_t header_crc = 0;
};
static_assert(sizeof(ArenaSection) == 24);
static_assert(offsetof(ArenaHeader, sections) == 40);
static_assert(offsetof(ArenaHeader, header_crc) == 136);
static_assert(sizeof(ArenaHeader) == 144);
static_assert(std::is_trivially_copyable_v<ArenaHeader>);

uint64_t AlignUp(uint64_t v) {
  return (v + kSnapshotArenaAlign - 1) & ~(kSnapshotArenaAlign - 1);
}

[[gnu::cold]] Status ArenaCorruption(const std::string& what,
                                     const std::string& path) {
  return Status::Corruption("snapshot arena " + path + ": " + what);
}

Status AppendZeros(WritableFile* f, uint64_t n) {
  static const std::vector<uint8_t> kZeros(kSnapshotArenaAlign, 0);
  while (n > 0) {
    const uint64_t chunk = std::min<uint64_t>(n, kZeros.size());
    if (Status st = f->Append(kZeros.data(), chunk); !st.ok()) return st;
    n -= chunk;
  }
  return Status::OK();
}

}  // namespace

Status WriteSnapshotArena(FileSystem* fs, const std::string& path,
                          const FlatSpcIndex& index, uint64_t generation,
                          uint64_t wal_seq) {
  if constexpr (std::endian::native != std::endian::little) {
    return Status::NotSupported("snapshot arenas require a little-endian host");
  }
  // The v2 checkpoint image already flattens the sharded snapshot into
  // the monolithic single-shard payload the arena wants — global CSR
  // offsets, overflow slots rebased onto one side table — so reuse it
  // and carve the sections out of the stream instead of duplicating the
  // flattening logic against FlatSpcIndex internals. Stream layout
  // (SaveImage): magic u32, version u32, n u64, rank u32[n], wide u8,
  // offsets u64[n+1], then entries (+ overflow count/table in packed
  // mode) — triples byte-identical to LabelEntry.
  BinaryWriter image;
  index.SaveImage(&image);
  const uint8_t* buf = image.buffer().data();
  const uint64_t n = index.NumVertices();

  uint64_t pos = 16;  // past magic/version/n
  const uint8_t* rank_bytes = buf + pos;
  pos += n * sizeof(Rank);
  const bool wide = buf[pos] != 0;
  pos += 1;
  const uint8_t* offset_bytes = buf + pos;
  uint64_t total = 0;  // offsets[n]: entries in the arena
  std::memcpy(&total, offset_bytes + n * sizeof(uint64_t), sizeof(total));
  pos += (n + 1) * sizeof(uint64_t);
  const uint8_t* entry_bytes = buf + pos;
  const uint64_t entry_len = total * (wide ? sizeof(LabelEntry) : 8);
  pos += entry_len;
  uint64_t overflow_count = 0;
  const uint8_t* overflow_bytes = nullptr;
  if (!wide) {
    std::memcpy(&overflow_count, buf + pos, sizeof(overflow_count));
    pos += sizeof(uint64_t);
    overflow_bytes = buf + pos;
    pos += overflow_count * sizeof(LabelEntry);
  }

  ArenaHeader h;
  h.magic = kSnapshotArenaMagic;
  h.version = kSnapshotArenaVersion;
  h.generation = generation;
  h.wal_seq = wal_seq;
  h.num_vertices = n;
  h.flags = wide ? kFlagWide : 0;
  h.section_count = wide ? 3 : 4;
  const uint8_t* section_bytes[kMaxSections] = {rank_bytes, offset_bytes,
                                                entry_bytes, overflow_bytes};
  const uint64_t section_lens[kMaxSections] = {
      n * sizeof(Rank), (n + 1) * sizeof(uint64_t), entry_len,
      overflow_count * sizeof(LabelEntry)};
  uint64_t cursor = kSnapshotArenaAlign;  // header owns the first page
  for (uint32_t i = 0; i < h.section_count; ++i) {
    cursor = AlignUp(cursor);
    h.sections[i].offset = cursor;
    h.sections[i].length = section_lens[i];
    h.sections[i].crc = Crc32c(section_bytes[i], section_lens[i]);
    cursor += section_lens[i];
  }
  h.header_crc = Crc32c(&h, offsetof(ArenaHeader, header_crc));

  auto file = fs->NewWritableFile(path);
  if (!file.ok()) return file.status();
  WritableFile* f = file->get();
  if (Status st = f->Append(&h, sizeof(h)); !st.ok()) return st;
  uint64_t written = sizeof(h);
  for (uint32_t i = 0; i < h.section_count; ++i) {
    if (Status st = AppendZeros(f, h.sections[i].offset - written); !st.ok()) {
      return st;
    }
    if (Status st = f->Append(section_bytes[i], section_lens[i]); !st.ok()) {
      return st;
    }
    written = h.sections[i].offset + section_lens[i];
  }
  if (Status st = f->Sync(); !st.ok()) return st;
  return f->Close();
}

StatusOr<MappedArena> MappedArena::Map(FileSystem* fs,
                                       const std::string& path) {
  if constexpr (std::endian::native != std::endian::little) {
    return Status::NotSupported("snapshot arenas require a little-endian host");
  }
  auto mapped = fs->MapReadOnly(path);
  if (!mapped.ok()) return mapped.status();
  std::shared_ptr<const MappedRegion> region = std::move(*mapped);
  const uint8_t* base = region->data();
  const uint64_t size = region->size();

  // Every check below runs before any byte is trusted, and length checks
  // run before the bytes they gate are dereferenced — a truncated or
  // flipped file fails with a typed Status instead of faulting.
  if (size < sizeof(ArenaHeader)) {
    return ArenaCorruption("short file (" + std::to_string(size) + " bytes)",
                           path);
  }
  ArenaHeader h;
  std::memcpy(&h, base, sizeof(h));
  if (h.magic != kSnapshotArenaMagic) return ArenaCorruption("bad magic", path);
  if (h.version != kSnapshotArenaVersion) {
    return ArenaCorruption("unsupported version " + std::to_string(h.version),
                           path);
  }
  if (Crc32c(base, offsetof(ArenaHeader, header_crc)) != h.header_crc) {
    return ArenaCorruption("header checksum mismatch", path);
  }
  const bool wide = (h.flags & kFlagWide) != 0;
  if ((h.flags & ~kFlagWide) != 0) return ArenaCorruption("bad flags", path);
  const uint32_t expect_sections = wide ? 3 : 4;
  if (h.section_count != expect_sections) {
    return ArenaCorruption("bad section count", path);
  }
  const uint64_t n = h.num_vertices;
  if (n > (uint64_t{1} << 40)) return ArenaCorruption("absurd vertex count", path);

  // The layout is canonical — each section at the next page boundary —
  // so placement is fully determined by the lengths; verifying it pins
  // every padding byte to a known range (checked zero below).
  uint64_t cursor = kSnapshotArenaAlign;
  for (uint32_t i = 0; i < h.section_count; ++i) {
    const ArenaSection& s = h.sections[i];
    cursor = AlignUp(cursor);
    if (s.offset != cursor) return ArenaCorruption("bad section offset", path);
    if (s.length > size || s.offset > size - s.length) {
      return ArenaCorruption("section exceeds file", path);
    }
    cursor += s.length;
  }
  if (cursor != size) return ArenaCorruption("bad file length", path);
  if (h.sections[kSecRanks].length != n * sizeof(Rank)) {
    return ArenaCorruption("bad rank section length", path);
  }
  if (h.sections[kSecOffsets].length != (n + 1) * sizeof(uint64_t)) {
    return ArenaCorruption("bad offsets section length", path);
  }

  // All padding (header-page tail + inter-section gaps) must be zero:
  // with the CRCs this makes every byte of the file checked, so the
  // corruption sweep cannot find a flippable bit that goes unnoticed.
  auto zeros = [&](uint64_t from, uint64_t to) {
    for (uint64_t i = from; i < to; ++i) {
      if (base[i] != 0) return false;
    }
    return true;
  };
  uint64_t checked = offsetof(ArenaHeader, header_crc) + sizeof(uint32_t);
  for (uint32_t i = 0; i < h.section_count; ++i) {
    if (!zeros(checked, h.sections[i].offset)) {
      return ArenaCorruption("nonzero padding", path);
    }
    checked = h.sections[i].offset + h.sections[i].length;
  }

  for (uint32_t i = 0; i < h.section_count; ++i) {
    const ArenaSection& s = h.sections[i];
    if (Crc32c(base + s.offset, s.length) != s.crc) {
      return ArenaCorruption("section " + std::to_string(i) +
                                 " checksum mismatch",
                             path);
    }
  }

  // Only now (offsets CRC-verified) is offsets[n] trustworthy enough to
  // size the entry sections against.
  FlatSpcIndex::ArenaView view;
  view.num_vertices = n;
  view.wide = wide;
  view.generation = h.generation;
  view.rank_of =
      reinterpret_cast<const Rank*>(base + h.sections[kSecRanks].offset);
  view.offsets = reinterpret_cast<const uint64_t*>(
      base + h.sections[kSecOffsets].offset);
  const uint64_t total = view.offsets[n];
  const uint64_t want_entries = total * (wide ? sizeof(LabelEntry) : 8);
  if (h.sections[kSecEntries].length != want_entries) {
    return ArenaCorruption("entries/offsets length mismatch", path);
  }
  if (wide) {
    view.wide_entries = reinterpret_cast<const LabelEntry*>(
        base + h.sections[kSecEntries].offset);
  } else {
    view.entries = reinterpret_cast<const uint64_t*>(
        base + h.sections[kSecEntries].offset);
    if (h.sections[kSecOverflow].length % sizeof(LabelEntry) != 0) {
      return ArenaCorruption("bad overflow section length", path);
    }
    view.overflow = reinterpret_cast<const LabelEntry*>(
        base + h.sections[kSecOverflow].offset);
    view.overflow_count = h.sections[kSecOverflow].length / sizeof(LabelEntry);
  }
  view.backing = region;

  auto flat = FlatSpcIndex::FromArenaView(std::move(view));
  if (!flat.ok()) {
    return ArenaCorruption(flat.status().message(), path);
  }
  MappedArena out;
  out.snapshot_ = std::make_shared<const FlatSpcIndex>(std::move(*flat));
  out.generation_ = h.generation;
  out.wal_seq_ = h.wal_seq;
  out.file_bytes_ = size;
  return out;
}

}  // namespace dspc
