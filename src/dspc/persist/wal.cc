#include "dspc/persist/wal.h"

#include <algorithm>
#include <utility>

#include "dspc/common/binary_io.h"

namespace dspc {

const char* WalSyncPolicyName(WalSyncPolicy policy) {
  switch (policy) {
    case WalSyncPolicy::kNone:
      return "none";
    case WalSyncPolicy::kBatch:
      return "batch";
    case WalSyncPolicy::kEveryWrite:
      return "every_write";
  }
  return "unknown";
}

std::string WalSegmentFileName(uint64_t seq) {
  return "wal-" + std::to_string(seq) + ".log";
}

bool ParseWalSegmentFileName(const std::string& name, uint64_t* seq) {
  // Shortest valid name: "wal-0.log" (9 chars — one seq digit).
  if (name.size() < 9 || name.compare(0, 4, "wal-") != 0 ||
      name.compare(name.size() - 4, 4, ".log") != 0) {
    return false;
  }
  uint64_t value = 0;
  for (size_t i = 4; i < name.size() - 4; ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    value = value * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  *seq = value;
  return true;
}

std::vector<uint8_t> EncodeWalRecord(const WalRecord& rec) {
  BinaryWriter w;
  w.PutU8(static_cast<uint8_t>(rec.kind));
  switch (rec.kind) {
    case WalRecord::Kind::kBatch:
      w.PutU64(rec.seq);
      w.PutU64(rec.generation);
      w.PutU32(static_cast<uint32_t>(rec.updates.size()));
      for (const Update& u : rec.updates) {
        w.PutU8(u.kind == Update::Kind::kInsert ? 0 : 1);
        w.PutU32(u.edge.u);
        w.PutU32(u.edge.v);
      }
      break;
    case WalRecord::Kind::kCommit:
      w.PutU64(rec.seq);
      w.PutU64(rec.generation);
      w.PutU32(static_cast<uint32_t>(rec.outcomes.size()));
      w.Append(rec.outcomes.data(), rec.outcomes.size());
      break;
    case WalRecord::Kind::kAddVertex:
      w.PutU64(rec.generation);
      w.PutU32(rec.vertex);
      break;
    case WalRecord::Kind::kRemoveVertex:
      w.PutU64(rec.seq);
      w.PutU32(rec.vertex);
      break;
  }
  return w.buffer();
}

Status DecodeWalRecord(std::span<const uint8_t> payload, WalRecord* out) {
  BinaryReader r(std::vector<uint8_t>(payload.begin(), payload.end()));
  WalRecord rec;
  const uint8_t kind = r.GetU8();
  switch (kind) {
    case static_cast<uint8_t>(WalRecord::Kind::kBatch): {
      rec.kind = WalRecord::Kind::kBatch;
      rec.seq = r.GetU64();
      rec.generation = r.GetU64();
      const uint32_t count = r.GetU32();
      if (count > r.remaining() / 9) {
        return Status::DataLoss("wal batch record count exceeds payload");
      }
      rec.updates.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        const uint8_t uk = r.GetU8();
        if (uk > 1) return Status::DataLoss("wal batch bad update kind");
        const Vertex u = r.GetU32();
        const Vertex v = r.GetU32();
        rec.updates.push_back(uk == 0 ? Update::Insert(u, v)
                                      : Update::Delete(u, v));
      }
      break;
    }
    case static_cast<uint8_t>(WalRecord::Kind::kCommit): {
      rec.kind = WalRecord::Kind::kCommit;
      rec.seq = r.GetU64();
      rec.generation = r.GetU64();
      const uint32_t count = r.GetU32();
      if (count > r.remaining()) {
        return Status::DataLoss("wal commit outcome count exceeds payload");
      }
      rec.outcomes.resize(count);
      if (count > 0 && !r.GetBytes(rec.outcomes.data(), count)) {
        return r.status();
      }
      for (const uint8_t o : rec.outcomes) {
        if (o > 1) return Status::DataLoss("wal commit bad outcome byte");
      }
      break;
    }
    case static_cast<uint8_t>(WalRecord::Kind::kAddVertex):
      rec.kind = WalRecord::Kind::kAddVertex;
      rec.generation = r.GetU64();
      rec.vertex = r.GetU32();
      break;
    case static_cast<uint8_t>(WalRecord::Kind::kRemoveVertex):
      rec.kind = WalRecord::Kind::kRemoveVertex;
      rec.seq = r.GetU64();
      rec.vertex = r.GetU32();
      break;
    default:
      return Status::DataLoss("wal record bad kind byte");
  }
  if (!r.status().ok() || !r.AtEnd()) {
    return Status::DataLoss("wal record payload malformed");
  }
  *out = std::move(rec);
  return Status::OK();
}

// --- WalWriter -------------------------------------------------------------

WalWriter::WalWriter(FileSystem* fs, std::unique_ptr<WritableFile> file,
                     uint64_t seq, uint64_t base_generation,
                     const Options& options)
    : fs_(fs),
      file_(std::move(file)),
      seq_(seq),
      base_generation_(base_generation),
      options_(options) {
  (void)fs_;
  if (options_.sync == WalSyncPolicy::kBatch) {
    flusher_ = std::thread([this] { FlusherLoop(); });
  }
}

StatusOr<std::unique_ptr<WalWriter>> WalWriter::Create(
    FileSystem* fs, const std::string& path, uint64_t seq,
    uint64_t base_generation, const Options& options) {
  auto file = fs->NewWritableFile(path);
  if (!file.ok()) return file.status();
  BinaryWriter header;
  header.PutU32(kWalMagic);
  header.PutU32(kWalVersion);
  header.PutU64(seq);
  header.PutU64(base_generation);
  header.PutU32(Crc32c(header.buffer().data(), header.buffer().size()));
  if (Status st = (*file)->Append(header.buffer().data(),
                                  header.buffer().size());
      !st.ok()) {
    return st;
  }
  auto writer = std::unique_ptr<WalWriter>(
      new WalWriter(fs, std::move(*file), seq, base_generation, options));
  writer->appended_.store(kWalHeaderBytes, std::memory_order_release);
  return writer;
}

WalWriter::~WalWriter() { (void)Close(); }

// The u32 length prefix must hold any accepted payload size with room
// for the frame itself — otherwise an accepted append would corrupt the
// framing of everything after it.
static_assert(uint64_t{kWalMaxRecordBytes} + kWalRecordOverheadBytes <=
                  uint64_t{UINT32_MAX},
              "kWalMaxRecordBytes must fit the u32 length prefix");

StatusOr<uint64_t> WalWriter::AppendRecord(std::span<const uint8_t> payload) {
  // Oversize records are refused BEFORE touching the file: ReadWalSegment
  // treats any length prefix beyond kWalMaxRecordBytes as a torn tail, so
  // appending (and fsyncing!) one would be acknowledged durable yet
  // silently truncated at recovery. A caller error, not a device failure:
  // nothing was appended, so the writer stays usable (no fail-stop).
  if (payload.size() > kWalMaxRecordBytes) {
    return Status::InvalidArgument(
        "wal record payload of " + std::to_string(payload.size()) +
        " bytes exceeds kWalMaxRecordBytes (" +
        std::to_string(kWalMaxRecordBytes) + ")");
  }
  // Lock-free entry check: taking sync_mu_ here would queue the append
  // behind an in-progress group-commit fsync.
  if (failed_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(sync_mu_);
    return error_;
  }
  if (closed_.load(std::memory_order_acquire)) {
    return Status::Unavailable("wal writer closed");
  }
  // Frame + payload in one Append so the file only ever sees whole-frame
  // prefixes from this layer (the env below may still tear them).
  BinaryWriter frame;
  frame.PutU32(static_cast<uint32_t>(payload.size()));
  frame.PutU32(Crc32c(payload.data(), payload.size()));
  frame.Append(payload.data(), payload.size());
  if (Status st = file_->Append(frame.buffer().data(), frame.buffer().size());
      !st.ok()) {
    std::lock_guard<std::mutex> lock(sync_mu_);
    if (!failed_) {
      failed_ = true;
      error_ = st;
    }
    synced_cv_.notify_all();
    return error_;
  }
  const uint64_t end = appended_.fetch_add(frame.buffer().size(),
                                           std::memory_order_acq_rel) +
                       frame.buffer().size();
  records_.fetch_add(1, std::memory_order_relaxed);
  if (options_.sync == WalSyncPolicy::kEveryWrite) {
    if (Status st = SyncTo(end); !st.ok()) return st;
  }
  return end;
}

Status WalWriter::SyncTo(uint64_t target) {
  std::unique_lock<std::mutex> lock(sync_mu_);
  if (synced_.load(std::memory_order_acquire) >= target) {
    return Status::OK();
  }
  if (failed_) return error_;
  // Snapshot what is appended *before* the fsync: bytes appended during
  // it may only partially reach the disk, so only `upto` is claimed.
  const uint64_t upto = appended_.load(std::memory_order_acquire);
  Status st = file_->Sync();
  if (!st.ok()) {
    failed_ = true;
    error_ = st;
    synced_cv_.notify_all();
    return error_;
  }
  syncs_.fetch_add(1, std::memory_order_relaxed);
  uint64_t prev = synced_.load(std::memory_order_relaxed);
  while (prev < upto &&
         !synced_.compare_exchange_weak(prev, upto,
                                        std::memory_order_acq_rel)) {
  }
  synced_cv_.notify_all();
  if (options_.on_sync) {
    lock.unlock();
    options_.on_sync();
  }
  return Status::OK();
}

Status WalWriter::WaitDurable(uint64_t offset) {
  if (synced_.load(std::memory_order_acquire) >= offset) return Status::OK();
  if (options_.sync != WalSyncPolicy::kBatch) return SyncTo(offset);
  std::unique_lock<std::mutex> lock(sync_mu_);
  sync_requested_ = true;
  flush_cv_.notify_one();
  synced_cv_.wait(lock, [&] {
    return failed_ || stop_ ||
           synced_.load(std::memory_order_acquire) >= offset;
  });
  if (synced_.load(std::memory_order_acquire) >= offset) return Status::OK();
  if (failed_) return error_;
  return Status::Unavailable("wal writer stopped before the sync");
}

Status WalWriter::Sync() {
  return SyncTo(appended_.load(std::memory_order_acquire));
}

void WalWriter::FlusherLoop() {
  std::unique_lock<std::mutex> lock(sync_mu_);
  while (!stop_) {
    flush_cv_.wait_for(lock, options_.flush_interval,
                       [&] { return stop_ || sync_requested_; });
    sync_requested_ = false;
    if (stop_ || failed_) continue;
    const uint64_t upto = appended_.load(std::memory_order_acquire);
    if (upto <= synced_.load(std::memory_order_acquire)) continue;
    Status st = file_->Sync();
    if (!st.ok()) {
      failed_ = true;
      error_ = st;
      synced_cv_.notify_all();
      continue;  // stay alive so Close can join; error is sticky
    }
    syncs_.fetch_add(1, std::memory_order_relaxed);
    uint64_t prev = synced_.load(std::memory_order_relaxed);
    while (prev < upto &&
           !synced_.compare_exchange_weak(prev, upto,
                                          std::memory_order_acq_rel)) {
    }
    synced_cv_.notify_all();
    if (options_.on_sync) {
      lock.unlock();
      options_.on_sync();
      lock.lock();
    }
  }
}

Status WalWriter::Close() {
  {
    std::lock_guard<std::mutex> lock(sync_mu_);
    if (closed_) return failed_ ? error_ : Status::OK();
    closed_ = true;  // no further appends; syncs below still run
  }
  // Final sync BEFORE stop_: clean shutdown makes everything appended
  // durable regardless of policy (a process exit is not a crash), and
  // durable waiters woken by stop_ must already see synced_ covering
  // them — otherwise a rotation-retired segment would spuriously fail
  // in-flight WaitDurable callers.
  Status st = SyncTo(appended_.load(std::memory_order_acquire));
  {
    std::lock_guard<std::mutex> lock(sync_mu_);
    stop_ = true;
    flush_cv_.notify_all();
    synced_cv_.notify_all();
  }
  if (flusher_.joinable()) flusher_.join();
  Status close_st = file_->Close();
  if (st.ok()) st = close_st;
  if (!st.ok()) {
    std::lock_guard<std::mutex> lock(sync_mu_);
    if (!failed_) {
      failed_ = true;
      error_ = st;
    }
  }
  return st;
}

// --- segment scan ----------------------------------------------------------

namespace {

uint32_t ReadLE32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

uint64_t ReadLE64(const uint8_t* p) {
  return static_cast<uint64_t>(ReadLE32(p)) |
         (static_cast<uint64_t>(ReadLE32(p + 4)) << 32);
}

}  // namespace

Status ReadWalSegment(FileSystem* fs, const std::string& path,
                      uint64_t expected_seq, WalSegment* out,
                      WalTailPolicy tail) {
  const bool live = tail == WalTailPolicy::kLiveTail;
  std::vector<uint8_t> data;
  if (Status st = fs->ReadFile(path, &data); !st.ok()) return st;

  WalSegment seg;
  seg.seq = expected_seq;
  if (data.size() < kWalHeaderBytes) {
    // Created but never flushed: an empty segment. Post-crash that is all
    // torn tail; under a live writer the header append is simply still in
    // flight.
    seg.valid_bytes = 0;
    seg.resume_offset = 0;
    if (live) {
      seg.tail_in_flight = true;
    } else {
      seg.truncated_tail_bytes = data.size();
    }
    *out = std::move(seg);
    return Status::OK();
  }
  const uint32_t header_crc = ReadLE32(data.data() + kWalHeaderBytes - 4);
  if (Crc32c(data.data(), kWalHeaderBytes - 4) != header_crc) {
    return Status::DataLoss("wal segment header corrupt: " + path);
  }
  if (ReadLE32(data.data()) != kWalMagic) {
    return Status::DataLoss("wal segment bad magic: " + path);
  }
  if (ReadLE32(data.data() + 4) != kWalVersion) {
    return Status::DataLoss("wal segment bad version: " + path);
  }
  if (ReadLE64(data.data() + 8) != expected_seq) {
    return Status::DataLoss("wal segment sequence mismatch: " + path);
  }
  seg.base_generation = ReadLE64(data.data() + 16);

  size_t pos = kWalHeaderBytes;
  seg.valid_bytes = pos;
  // Distinguishes how the scan stopped: a frame the file simply does not
  // hold all of yet (a live writer's in-flight append is always a byte
  // prefix of one frame) vs bytes no writer appends — an oversized
  // length prefix or a COMPLETE frame failing its payload CRC — which is
  // damage under either policy.
  bool incomplete_frame = false;
  while (data.size() - pos >= 8) {
    const uint32_t len = ReadLE32(data.data() + pos);
    const uint32_t crc = ReadLE32(data.data() + pos + 4);
    if (len > kWalMaxRecordBytes) break;  // never appended: torn/corrupt
    if (len > data.size() - pos - 8) {
      incomplete_frame = true;  // torn payload — or one still being written
      break;
    }
    const uint8_t* payload = data.data() + pos + 8;
    if (Crc32c(payload, len) != crc) break;  // torn or flipped payload
    WalRecord rec;
    if (Status st = DecodeWalRecord({payload, len}, &rec); !st.ok()) {
      // A checksum-valid payload that does not decode was never a torn
      // write — surface it instead of silently dropping the suffix.
      return st;
    }
    seg.records.push_back(std::move(rec));
    pos += 8 + len;
    seg.valid_bytes = pos;
  }
  if (data.size() - pos < 8 && data.size() != pos) incomplete_frame = true;
  seg.resume_offset = seg.valid_bytes;
  if (live && (incomplete_frame || data.size() == seg.valid_bytes)) {
    seg.tail_in_flight = data.size() != seg.valid_bytes;
  } else {
    seg.truncated_tail_bytes = data.size() - seg.valid_bytes;
  }
  *out = std::move(seg);
  return Status::OK();
}

Status RepairWalTail(FileSystem* fs, const std::string& path,
                     const WalSegment& segment) {
  if (segment.truncated_tail_bytes == 0) return Status::OK();
  return fs->TruncateFile(path, segment.valid_bytes);
}

}  // namespace dspc
