// WAL-shipping replication (DESIGN.md §13): stream a durable primary's
// checkpoint images and WAL segments to hot-standby replicas.
//
// The design reuses the durability formats wholesale — a shipped
// checkpoint is the raw ckpt-<gen>.spc bytes, a shipped segment is the
// raw wal-<seq>.log bytes — so the replica replays exactly what recovery
// would replay after a crash, through the same ReplayCursor, with the
// same outcome cross-checks. Three pieces:
//
//   ReplayCursor   the intent/commit pairing + generation-chaining state
//                  machine factored out of PlanRecovery so recovery (all
//                  records up front) and a replica tailer (records
//                  trickling in over a transport) share one code path —
//                  and therefore one definition of divergence
//                  (kDataLoss).
//   Transport      the wire seam: a tiny artifact store the primary
//                  pushes into (PutCheckpoint / AppendSegment /
//                  PublishState / Retire) and replicas pull from
//                  (FetchState / FetchCheckpoint / FetchSegment).
//                  InProcessTransport backs it with memory,
//                  DirectoryTransport with a shared directory through
//                  the FileSystem seam, and FaultInjectingTransport
//                  wraps either to drop, duplicate, truncate, delay, or
//                  disconnect the Nth operation — the replication
//                  analogue of FaultInjectingEnv.
//   WalShipper     the primary-side pump: reads the durability
//                  directory (MANIFEST → newest checkpoint → segment
//                  tails, only ever whole synced frames, via
//                  ReadWalSegment's live-tail mode), pushes increments
//                  through the transport, publishes the durably-acked
//                  generation, registers as a Checkpointer retention
//                  consumer so GC never deletes a segment it still
//                  tails, and retries with capped exponential backoff +
//                  jitter when the transport misbehaves.
//
// Shipping is pull-model at the replica and push-model at the primary,
// meeting in the transport store; ReplicaService (api/replica_service.h)
// is the replica-side consumer that turns the shipped stream back into
// a serving engine.

#ifndef DSPC_PERSIST_REPLICATION_H_
#define DSPC_PERSIST_REPLICATION_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "dspc/common/status.h"
#include "dspc/persist/checkpointer.h"
#include "dspc/persist/env.h"
#include "dspc/persist/recovery.h"
#include "dspc/persist/wal.h"

namespace dspc {

// --- replay cursor ---------------------------------------------------------

/// The committed-operation state machine shared by crash recovery and
/// replica tailing: feed WAL records in log order, get back committed
/// ReplayOps in commit order, with exactly PlanRecovery's damage
/// semantics — duplicate intent seqs, commits without intents, outcome
/// count mismatches, chain breaks, and non-monotonic commits are all
/// kDataLoss. Ops already covered by the start generation are counted as
/// skipped instead of emitted; trailing unpaired intents simply stay
/// pending (never acknowledged — dropped if the stream ends).
class ReplayCursor {
 public:
  /// `start_generation` is the generation of the state the ops apply on
  /// top of (the checkpoint's, for both recovery and a bootstrapping
  /// replica).
  explicit ReplayCursor(uint64_t start_generation)
      : start_generation_(start_generation), generation_(start_generation) {}

  /// Feeds one record; appends any newly-committed ops to `out`.
  Status Feed(WalRecord rec, std::vector<ReplayOp>* out);

  /// Generation after every emitted op (== start until the first).
  uint64_t generation() const { return generation_; }

  /// Committed ops the start generation already covered.
  uint64_t skipped() const { return skipped_; }

  /// Intents whose commit has not arrived (yet).
  size_t pending_intents() const { return pending_.size(); }

 private:
  /// Filter + chain-check + emit one committed op (recovery.cc's second
  /// loop, applied at commit time — equivalent because commits surface
  /// in log order).
  Status Emit(ReplayOp op, std::vector<ReplayOp>* out);

  const uint64_t start_generation_;
  uint64_t generation_;
  uint64_t skipped_ = 0;
  std::unordered_map<uint64_t, WalRecord> pending_;
};

/// Parses complete record frames from a byte window of a segment body.
/// The window must start on a frame boundary (strictly after the segment
/// header); parsing stops at the first incomplete frame — a tailing
/// consumer re-fetches from `window_start + consumed` — or at a complete
/// frame whose payload CRC mismatches (also "stop and re-fetch": over a
/// faulty transport a mangled window and mid-stream corruption are
/// indistinguishable, and an honest re-fetch resolves the former).
/// Returns the bytes consumed (always whole frames). kDataLoss only when
/// a CRC-valid payload fails structural decode — that can never be a
/// transport artifact.
StatusOr<uint64_t> ParseWalFrameWindow(std::span<const uint8_t> window,
                                       std::vector<WalRecord>* out);

// --- transport seam --------------------------------------------------------

/// What the primary has shipped so far — the replica's one-stop view.
/// Published (atomically, last) after every shipping pass that moved
/// anything, so everything it names is already fetchable.
struct ShipState {
  /// Newest shipped checkpoint and the segment its replay starts from.
  uint64_t checkpoint_generation = 0;
  uint64_t checkpoint_wal_seq = 0;
  /// Retained shipped segments span [min_wal_seq, max_wal_seq]. A
  /// replica tailing below min_wal_seq fell behind retention and must
  /// re-bootstrap from the checkpoint. max_wal_seq == 0 means no segment
  /// bytes shipped yet.
  uint64_t min_wal_seq = 0;
  uint64_t max_wal_seq = 0;
  /// The primary's durably-acked generation as covered by shipped bytes:
  /// every commit at or below it is synced on the primary AND present in
  /// the store. This is the generation kBoundedStaleness on a replica is
  /// enforced against, and the generation Promote() drains to.
  uint64_t durable_generation = 0;
};

/// Serialization for DirectoryTransport's STATE file (CRC32C-framed).
std::vector<uint8_t> EncodeShipState(const ShipState& state);
Status DecodeShipState(std::span<const uint8_t> bytes, ShipState* out);

/// The wire seam between one primary and its replicas: an artifact store
/// with an append-only contract for segments. All calls are thread-safe;
/// any call may fail transiently (kUnavailable) — both sides retry with
/// backoff. AppendSegment is idempotent by construction: `offset` must
/// be at most the stored size, overlapping bytes are assumed identical
/// (re-sends after a fault), and only the remainder appends; an offset
/// beyond the stored size is kUnavailable (a gap — the shipper resyncs
/// via SegmentSize).
class Transport {
 public:
  virtual ~Transport() = default;

  // Primary side.
  virtual Status PutCheckpoint(uint64_t generation,
                               std::span<const uint8_t> bytes) = 0;
  virtual Status AppendSegment(uint64_t seq, uint64_t offset,
                               std::span<const uint8_t> bytes) = 0;
  /// Stored byte count of segment `seq` (0 when absent) — the shipper's
  /// resync point after a reconnect.
  virtual StatusOr<uint64_t> SegmentSize(uint64_t seq) = 0;
  virtual Status PublishState(const ShipState& state) = 0;
  /// Drops checkpoints below `min_checkpoint_generation` and segments
  /// below `min_wal_seq` — the store-side retention horizon. A replica
  /// that still needed them re-bootstraps from the newer checkpoint.
  virtual Status Retire(uint64_t min_checkpoint_generation,
                        uint64_t min_wal_seq) = 0;

  // Replica side.
  /// kUnavailable until the first PublishState.
  virtual StatusOr<ShipState> FetchState() = 0;
  virtual Status FetchCheckpoint(uint64_t generation,
                                 std::vector<uint8_t>* out) = 0;
  /// Bytes of segment `seq` from `offset` to the stored end (possibly
  /// empty). kNotFound when the segment is absent/retired.
  virtual Status FetchSegment(uint64_t seq, uint64_t offset,
                              std::vector<uint8_t>* out) = 0;
};

/// Memory-backed transport for in-process replicas and tests.
class InProcessTransport : public Transport {
 public:
  Status PutCheckpoint(uint64_t generation,
                       std::span<const uint8_t> bytes) override;
  Status AppendSegment(uint64_t seq, uint64_t offset,
                       std::span<const uint8_t> bytes) override;
  StatusOr<uint64_t> SegmentSize(uint64_t seq) override;
  Status PublishState(const ShipState& state) override;
  Status Retire(uint64_t min_checkpoint_generation,
                uint64_t min_wal_seq) override;
  StatusOr<ShipState> FetchState() override;
  Status FetchCheckpoint(uint64_t generation,
                         std::vector<uint8_t>* out) override;
  Status FetchSegment(uint64_t seq, uint64_t offset,
                      std::vector<uint8_t>* out) override;

 private:
  mutable std::mutex mu_;
  std::map<uint64_t, std::vector<uint8_t>> checkpoints_;
  std::map<uint64_t, std::vector<uint8_t>> segments_;
  bool has_state_ = false;
  ShipState state_;
};

/// Directory-backed transport: artifacts live as files (ship-ckpt-*.spc,
/// ship-wal-*.log, SHIPSTATE) in `dir` through the FileSystem seam — a
/// shared or network filesystem becomes the wire, and the store survives
/// the primary process (which is what makes failover from it
/// meaningful). The primary and replicas may use separate instances over
/// the same directory. Limitation of the append-only FileSystem seam:
/// after a process restart the shipper cannot reopen a half-shipped
/// segment for append, so AppendSegment at a nonzero offset without an
/// open handle reports kUnavailable and the shipper restarts that
/// segment from offset 0 (idempotent — same bytes).
class DirectoryTransport : public Transport {
 public:
  DirectoryTransport(FileSystem* fs, std::string dir);

  Status PutCheckpoint(uint64_t generation,
                       std::span<const uint8_t> bytes) override;
  Status AppendSegment(uint64_t seq, uint64_t offset,
                       std::span<const uint8_t> bytes) override;
  StatusOr<uint64_t> SegmentSize(uint64_t seq) override;
  Status PublishState(const ShipState& state) override;
  Status Retire(uint64_t min_checkpoint_generation,
                uint64_t min_wal_seq) override;
  StatusOr<ShipState> FetchState() override;
  Status FetchCheckpoint(uint64_t generation,
                         std::vector<uint8_t>* out) override;
  Status FetchSegment(uint64_t seq, uint64_t offset,
                      std::vector<uint8_t>* out) override;

 private:
  struct OpenSegment {
    std::unique_ptr<WritableFile> file;
    uint64_t size = 0;
  };

  std::string SegmentPath(uint64_t seq) const;
  std::string CheckpointPath(uint64_t generation) const;

  FileSystem* const fs_;
  const std::string dir_;
  std::mutex mu_;
  std::map<uint64_t, OpenSegment> open_segments_;  ///< under mu_
};

/// The faults a FaultInjectingTransport can inject on one operation.
enum class TransportFault : unsigned char {
  kNone = 0,
  kDrop,        ///< the op does nothing and reports kUnavailable
  kDuplicate,   ///< the op runs twice (idempotence check for mutations)
  kTruncate,    ///< half the bytes transfer; mutations also report failure
  kDelay,       ///< the op runs late
  kDisconnect,  ///< this op and the next few all fail kUnavailable
};

/// Deterministic fault wrapper over any Transport — the replication
/// analogue of FaultInjectingEnv. Two modes, combinable:
///
///   Arm(k, fault)  injects `fault` on exactly the k-th operation
///                  (0-based, counted across all calls since
///                  construction or Disarm) — one-shot, so the matrix
///                  idiom "count ops unfaulted, then one run per index"
///                  carries over;
///   SetChaos(...)  injects a random transient fault on each operation
///                  with the given probability, deterministically from
///                  the seed — the fuzz-stream mode.
///
/// Every fault is transient (a later retry of the same logical transfer
/// succeeds, or is idempotent), matching real transport failure: the
/// subsystem's contract is that primaries and replicas retry their way
/// through ANY schedule of these faults without manual intervention.
class FaultInjectingTransport : public Transport {
 public:
  explicit FaultInjectingTransport(Transport* base) : base_(base) {}

  void Arm(uint64_t index, TransportFault fault);
  void Disarm();
  /// Random faults: probability permille/1000 per op, from `seed`.
  void SetChaos(uint64_t seed, uint32_t permille);
  uint64_t OperationCount() const;
  bool Tripped() const;

  Status PutCheckpoint(uint64_t generation,
                       std::span<const uint8_t> bytes) override;
  Status AppendSegment(uint64_t seq, uint64_t offset,
                       std::span<const uint8_t> bytes) override;
  StatusOr<uint64_t> SegmentSize(uint64_t seq) override;
  Status PublishState(const ShipState& state) override;
  Status Retire(uint64_t min_checkpoint_generation,
                uint64_t min_wal_seq) override;
  StatusOr<ShipState> FetchState() override;
  Status FetchCheckpoint(uint64_t generation,
                         std::vector<uint8_t>* out) override;
  Status FetchSegment(uint64_t seq, uint64_t offset,
                      std::vector<uint8_t>* out) override;

 private:
  /// Charges one op and returns the fault to apply to it (handling the
  /// disconnect window).
  TransportFault Charge();

  Transport* const base_;
  mutable std::mutex mu_;
  uint64_t ops_ = 0;
  uint64_t arm_at_ = 0;
  TransportFault armed_fault_ = TransportFault::kNone;
  bool armed_ = false;
  bool tripped_ = false;
  uint64_t chaos_state_ = 0;
  uint32_t chaos_permille_ = 0;
  uint32_t disconnected_ops_ = 0;  ///< remaining ops that fail
};

// --- backoff ---------------------------------------------------------------

/// Capped exponential backoff with deterministic ±25% jitter — the retry
/// pacing both the shipper loop and the replica tailer use. Next() grows
/// the base delay 2x per call until `max`; Reset() (after a success)
/// starts over.
class ReplicationBackoff {
 public:
  struct Options {
    std::chrono::microseconds initial{200};
    std::chrono::microseconds max{50000};
    uint64_t seed = 0x5EED;
  };

  explicit ReplicationBackoff(const Options& options)
      : options_(options), current_(options.initial), rng_(options.seed | 1) {}

  std::chrono::microseconds Next();
  void Reset() { current_ = options_.initial; }
  uint64_t sleeps() const { return sleeps_; }

 private:
  const Options options_;
  std::chrono::microseconds current_;
  uint64_t rng_;
  uint64_t sleeps_ = 0;
};

// --- primary-side shipper --------------------------------------------------

/// Pumps one durability directory into a Transport. Drive it manually
/// (ShipOnce per poll) or start the background loop (Start/Stop), which
/// retries transport failures with capped backoff + jitter and keeps
/// polling for new primary writes. Reading the directory is safe
/// concurrently with the live service: only whole synced frames ship
/// (ReadWalSegment kLiveTail finds the frame boundary; Options::synced_tip
/// additionally caps below the primary's fsync horizon where the
/// filesystem shows unsynced bytes), and registration as a Checkpointer
/// retention consumer keeps GC from deleting the segment under the
/// tail. SpcService::NewShipper() wires all of that up.
class WalShipper {
 public:
  struct Options {
    Transport* transport = nullptr;  ///< required

    /// Retention pin target (satellite of DESIGN.md §13's contract):
    /// when set, the shipper registers a consumer and advances it as it
    /// ships, so the primary's GC never outruns the tail. Optional —
    /// without it a GC'd segment forces replicas through re-bootstrap.
    Checkpointer* retention = nullptr;

    /// Returns (current segment seq, synced bytes of it): the fsync
    /// horizon shipping must not cross on filesystems where reads see
    /// unsynced page-cache bytes (shipping an unsynced record would let
    /// a replica apply a write the primary can still lose). Optional:
    /// without it the segment files are trusted as-is — correct under
    /// FaultInjectingEnv (reads surface only synced bytes) and for
    /// post-mortem shipping of a closed directory.
    std::function<std::pair<uint64_t, uint64_t>()> synced_tip;

    /// Background loop pacing.
    std::chrono::microseconds poll_interval{2000};
    ReplicationBackoff::Options backoff;

    /// Metric hooks (ServiceMetrics lives in api/, above this layer).
    std::function<void()> on_checkpoint_shipped;
    std::function<void()> on_segment_started;
    std::function<void(uint64_t)> on_bytes_shipped;
    std::function<void()> on_reconnect;
    std::function<void()> on_backoff_sleep;
  };

  /// Monotone counters, readable from any thread.
  struct Stats {
    uint64_t checkpoints_shipped = 0;
    uint64_t segments_started = 0;
    uint64_t bytes_shipped = 0;
    uint64_t reconnects = 0;
    uint64_t backoff_sleeps = 0;
    /// Durably-acked generation covered by shipped bytes so far.
    uint64_t shipped_generation = 0;
  };

  WalShipper(FileSystem* fs, std::string dir, const Options& options);
  ~WalShipper();

  /// One incremental shipping pass: ship a new checkpoint if the
  /// MANIFEST moved, ship every new whole synced frame of every segment
  /// from the tail position, retire store artifacts the newest shipped
  /// checkpoint covers, publish ShipState if anything moved. Single
  /// attempt — no sleeping; kUnavailable/kIOError are retryable (the
  /// background loop backs off and re-enters), kDataLoss is sticky
  /// (primary-side damage: stop shipping, surface loudly).
  Status ShipOnce();

  /// Starts/stops the background pump (idempotent).
  void Start();
  void Stop();

  Stats GetStats() const;

  /// Sticky error, if shipping hit primary-side damage (kDataLoss).
  Status Health() const;

 private:
  Status ShipOnceLocked();
  Status ShipCheckpointLocked(uint64_t generation, uint64_t wal_seq);
  /// Ships segment `seq` bytes from tail_offset_ to its current synced
  /// frame horizon; advances tail state. `final` marks a rotated-away
  /// segment (fully shipped once its end is reached).
  Status ShipSegmentLocked(uint64_t seq, bool final_segment, bool* progressed);
  void UpdateRetentionLocked();
  void PumpLoop();

  FileSystem* const fs_;
  const std::string dir_;
  const Options options_;

  mutable std::mutex mu_;  ///< serializes shipping passes + state
  // Shipping position (all under mu_).
  bool have_checkpoint_ = false;
  uint64_t shipped_checkpoint_gen_ = 0;
  uint64_t shipped_checkpoint_wal_seq_ = 0;
  uint64_t tail_seq_ = 0;     ///< segment currently tailing
  uint64_t tail_offset_ = 0;  ///< next file byte of it to ship
  uint64_t durable_generation_ = 0;
  uint64_t max_shipped_seq_ = 0;    ///< newest segment with bytes in store
  uint64_t store_min_wal_seq_ = 0;  ///< store retention floor
  uint64_t retired_checkpoint_gen_ = 0;
  ShipState published_;  ///< last state successfully published
  bool published_any_ = false;
  bool last_failed_ = false;  ///< previous ShipOnce failed (reconnect count)
  uint64_t retention_handle_ = 0;
  bool retention_registered_ = false;
  Status health_;  ///< sticky kDataLoss

  // Stats (atomics: GetStats does not take mu_).
  std::atomic<uint64_t> stat_checkpoints_{0};
  std::atomic<uint64_t> stat_segments_{0};
  std::atomic<uint64_t> stat_bytes_{0};
  std::atomic<uint64_t> stat_reconnects_{0};
  std::atomic<uint64_t> stat_backoffs_{0};
  std::atomic<uint64_t> stat_shipped_gen_{0};

  // Background pump.
  std::mutex pump_mu_;
  std::condition_variable pump_cv_;
  bool stop_pump_ = false;
  std::thread pump_;
};

}  // namespace dspc

#endif  // DSPC_PERSIST_REPLICATION_H_
