#include "dspc/persist/checkpointer.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "dspc/common/binary_io.h"
#include "dspc/persist/wal.h"

namespace dspc {

namespace {

std::string Join(const std::string& dir, const std::string& name) {
  return dir + "/" + name;
}

/// Writes `payload` + CRC32C trailer to `path` via tmp + fsync + rename.
/// The directory fsync is the caller's (so one publish batches it).
Status WriteFramedFileAtomic(FileSystem* fs, const std::string& dir,
                             const std::string& name,
                             const std::vector<uint8_t>& payload) {
  const std::string tmp = Join(dir, name + ".tmp");
  auto file = fs->NewWritableFile(tmp);
  if (!file.ok()) return file.status();
  if (Status st = (*file)->Append(payload.data(), payload.size()); !st.ok()) {
    return st;
  }
  const uint32_t crc = Crc32c(payload.data(), payload.size());
  const uint8_t tail[4] = {
      static_cast<uint8_t>(crc), static_cast<uint8_t>(crc >> 8),
      static_cast<uint8_t>(crc >> 16), static_cast<uint8_t>(crc >> 24)};
  if (Status st = (*file)->Append(tail, sizeof(tail)); !st.ok()) return st;
  if (Status st = (*file)->Sync(); !st.ok()) return st;
  if (Status st = (*file)->Close(); !st.ok()) return st;
  return fs->RenameFile(tmp, Join(dir, name));
}

/// Verifies a CRC32C trailer over raw framed bytes and hands back a
/// BinaryReader over the payload. `context` names the source (a path, or
/// a transport artifact) in error messages.
Status FrameIntoReader(std::vector<uint8_t> data, const std::string& context,
                       BinaryReader* out) {
  if (data.size() < 4) {
    return Status::DataLoss("framed file too small: " + context);
  }
  const size_t payload = data.size() - 4;
  const uint32_t stored = static_cast<uint32_t>(data[payload]) |
                          (static_cast<uint32_t>(data[payload + 1]) << 8) |
                          (static_cast<uint32_t>(data[payload + 2]) << 16) |
                          (static_cast<uint32_t>(data[payload + 3]) << 24);
  if (Crc32c(data.data(), payload) != stored) {
    return Status::DataLoss("checksum mismatch: " + context);
  }
  data.resize(payload);
  *out = BinaryReader(std::move(data));
  return Status::OK();
}

/// Reads a CRC32C-framed file into a BinaryReader over its payload.
Status ReadFramedFile(FileSystem* fs, const std::string& path,
                      BinaryReader* out) {
  std::vector<uint8_t> data;
  if (Status st = fs->ReadFile(path, &data); !st.ok()) return st;
  return FrameIntoReader(std::move(data), path, out);
}

}  // namespace

std::string CheckpointFileName(uint64_t generation) {
  return "ckpt-" + std::to_string(generation) + ".spc";
}

bool ParseCheckpointFileName(const std::string& name, uint64_t* generation) {
  if (name.size() < 10 || name.compare(0, 5, "ckpt-") != 0 ||
      name.compare(name.size() - 4, 4, ".spc") != 0) {
    return false;
  }
  uint64_t value = 0;
  for (size_t i = 5; i < name.size() - 4; ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    value = value * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  *generation = value;
  return true;
}

Status WriteManifest(FileSystem* fs, const std::string& dir,
                     const CheckpointManifest& manifest) {
  BinaryWriter w;
  w.PutU32(kManifestMagic);
  w.PutU32(kManifestVersion);
  w.PutU64(manifest.generation);
  w.PutU64(manifest.wal_seq);
  w.PutU64(manifest.layout_stamp);
  w.PutU8(manifest.has_previous ? 1 : 0);
  w.PutU64(manifest.prev_generation);
  w.PutU64(manifest.prev_wal_seq);
  return WriteFramedFileAtomic(fs, dir, ManifestFileName(), w.buffer());
}

StatusOr<CheckpointManifest> ReadManifest(FileSystem* fs,
                                          const std::string& dir) {
  const std::string path = Join(dir, ManifestFileName());
  BinaryReader r(std::vector<uint8_t>{});
  if (Status st = ReadFramedFile(fs, path, &r); !st.ok()) return st;
  if (r.GetU32() != kManifestMagic) {
    return Status::DataLoss("manifest bad magic: " + path);
  }
  if (r.GetU32() != kManifestVersion) {
    return Status::DataLoss("manifest bad version: " + path);
  }
  CheckpointManifest m;
  m.generation = r.GetU64();
  m.wal_seq = r.GetU64();
  m.layout_stamp = r.GetU64();
  m.has_previous = r.GetU8() != 0;
  m.prev_generation = r.GetU64();
  m.prev_wal_seq = r.GetU64();
  if (!r.status().ok() || !r.AtEnd()) {
    return Status::DataLoss("manifest malformed: " + path);
  }
  return m;
}

Status LoadCheckpoint(FileSystem* fs, const std::string& dir,
                      uint64_t generation, LoadedCheckpoint* out) {
  const std::string path = Join(dir, CheckpointFileName(generation));
  std::vector<uint8_t> data;
  if (Status st = fs->ReadFile(path, &data); !st.ok()) return st;
  return ParseCheckpointBytes(std::move(data), generation, path, out);
}

Status ParseCheckpointBytes(std::vector<uint8_t> bytes,
                            uint64_t expected_generation,
                            const std::string& context,
                            LoadedCheckpoint* out) {
  const uint64_t generation = expected_generation;
  const std::string& path = context;
  BinaryReader r(std::vector<uint8_t>{});
  if (Status st = FrameIntoReader(std::move(bytes), path, &r); !st.ok()) {
    return st;
  }
  if (r.GetU32() != kCheckpointMagic) {
    return Status::DataLoss("checkpoint bad magic: " + path);
  }
  if (r.GetU32() != kCheckpointVersion) {
    return Status::DataLoss("checkpoint bad version: " + path);
  }
  LoadedCheckpoint ckpt;
  ckpt.generation = r.GetU64();
  ckpt.layout_stamp = r.GetU64();
  if (ckpt.generation != generation) {
    return Status::DataLoss("checkpoint generation mismatch: " + path);
  }
  const uint64_t n = r.GetU64();
  const uint64_t m = r.GetU64();
  if (!r.status().ok()) {
    return Status::DataLoss("checkpoint graph header truncated: " + path);
  }
  if (n > (uint64_t{1} << 32) ||
      m > r.remaining() / (2 * sizeof(uint32_t))) {
    return Status::DataLoss("checkpoint graph counts out of range: " + path);
  }
  std::vector<Edge> edges;
  edges.reserve(m);
  for (uint64_t i = 0; i < m; ++i) {
    const Vertex u = r.GetU32();
    const Vertex v = r.GetU32();
    if (u >= n || v >= n) {
      return Status::DataLoss("checkpoint edge endpoint out of range: " + path);
    }
    edges.push_back(Edge{u, v});
  }
  ckpt.graph = Graph(static_cast<size_t>(n), edges);

  const uint64_t image_len = r.GetU64();
  if (!r.status().ok() || image_len != r.remaining()) {
    return Status::DataLoss("checkpoint image length mismatch: " + path);
  }
  std::vector<uint8_t> image(image_len);
  if (image_len > 0 && !r.GetBytes(image.data(), image_len)) {
    return Status::DataLoss("checkpoint image truncated: " + path);
  }
  BinaryReader ir(std::move(image));
  if (ir.GetU32() != kSpcIndexMagic ||
      ir.GetU32() != kSpcIndexFormatV2) {
    return Status::DataLoss("checkpoint index image bad header: " + path);
  }
  if (Status st = FlatSpcIndex::LoadFromReader(&ir, &ckpt.index); !st.ok()) {
    // The image passed the file CRC but fails structural validation:
    // that is corruption, not a torn write (the rename was atomic).
    return Status::DataLoss("checkpoint index image invalid: " + path +
                            ": " + st.message());
  }
  if (ckpt.index.NumVertices() != n) {
    return Status::DataLoss("checkpoint graph/index vertex mismatch: " + path);
  }
  *out = std::move(ckpt);
  return Status::OK();
}

Status Checkpointer::Publish(const Graph& graph, const FlatSpcIndex& index,
                             uint64_t generation, uint64_t wal_seq,
                             const CheckpointRef* validated_prev) {
  CheckpointManifest manifest;
  manifest.generation = generation;
  manifest.wal_seq = wal_seq;
  manifest.layout_stamp = index.LayoutStamp();
  if (validated_prev != nullptr) {
    // The caller vouches for this checkpoint (recovery loaded it). The
    // on-disk MANIFEST may still name the corrupt one recovery fell
    // back FROM — retaining that would hand GC the known-good fallback.
    manifest.has_previous = true;
    manifest.prev_generation = validated_prev->generation;
    manifest.prev_wal_seq = validated_prev->wal_seq;
  } else if (fs_->FileExists(Join(dir_, ManifestFileName()))) {
    auto prev = ReadManifest(fs_, dir_);
    // An unreadable old manifest forfeits the fallback but must not
    // block publishing a good new checkpoint over it.
    if (prev.ok()) {
      manifest.has_previous = true;
      manifest.prev_generation = prev->generation;
      manifest.prev_wal_seq = prev->wal_seq;
    }
  }

  BinaryWriter w;
  w.PutU32(kCheckpointMagic);
  w.PutU32(kCheckpointVersion);
  w.PutU64(generation);
  w.PutU64(index.LayoutStamp());
  const std::vector<Edge> edges = graph.Edges();
  w.PutU64(graph.NumVertices());
  w.PutU64(edges.size());
  for (const Edge& e : edges) {
    w.PutU32(e.u);
    w.PutU32(e.v);
  }
  BinaryWriter image;
  index.SaveImage(&image);
  w.PutU64(image.buffer().size());
  w.Append(image.buffer().data(), image.buffer().size());

  if (Status st = WriteFramedFileAtomic(fs_, dir_,
                                        CheckpointFileName(generation),
                                        w.buffer());
      !st.ok()) {
    return st;
  }
  if (Status st = WriteManifest(fs_, dir_, manifest); !st.ok()) return st;
  // One directory fsync covers both renames; only now is the new
  // checkpoint the durable truth, so only now may GC delete old state.
  if (Status st = fs_->SyncDir(dir_); !st.ok()) return st;
  return GarbageCollect();
}

uint64_t Checkpointer::RegisterConsumer(const CheckpointRef& pins) {
  std::lock_guard<std::mutex> lock(consumers_mu_);
  const uint64_t handle = ++next_consumer_handle_;
  consumers_.emplace(handle, pins);
  return handle;
}

void Checkpointer::UpdateConsumer(uint64_t handle, const CheckpointRef& pins) {
  std::lock_guard<std::mutex> lock(consumers_mu_);
  auto it = consumers_.find(handle);
  if (it != consumers_.end()) it->second = pins;
}

void Checkpointer::UnregisterConsumer(uint64_t handle) {
  std::lock_guard<std::mutex> lock(consumers_mu_);
  consumers_.erase(handle);
}

Status Checkpointer::GarbageCollect() {
  if (!fs_->FileExists(Join(dir_, ManifestFileName()))) return Status::OK();
  auto manifest = ReadManifest(fs_, dir_);
  if (!manifest.ok()) return manifest.status();
  auto names = fs_->ListDir(dir_);
  if (!names.ok()) return names.status();
  uint64_t min_wal_seq =
      manifest->has_previous ? manifest->prev_wal_seq : manifest->wal_seq;
  // Consumer pins lower the segment horizon and spare pinned checkpoint
  // generations (a tailing shipper or replica feed still reads them).
  std::vector<uint64_t> pinned_checkpoints;
  {
    std::lock_guard<std::mutex> lock(consumers_mu_);
    for (const auto& [handle, pins] : consumers_) {
      (void)handle;
      min_wal_seq = std::min(min_wal_seq, pins.wal_seq);
      if (pins.generation != 0) pinned_checkpoints.push_back(pins.generation);
    }
  }
  bool removed = false;
  for (const std::string& name : *names) {
    bool drop = false;
    uint64_t value = 0;
    if (name.size() > 4 &&
        name.compare(name.size() - 4, 4, ".tmp") == 0) {
      drop = true;  // orphan of an interrupted publish
    } else if (ParseCheckpointFileName(name, &value)) {
      drop = value != manifest->generation &&
             !(manifest->has_previous && value == manifest->prev_generation) &&
             std::find(pinned_checkpoints.begin(), pinned_checkpoints.end(),
                       value) == pinned_checkpoints.end();
    } else if (ParseWalSegmentFileName(name, &value)) {
      drop = value < min_wal_seq;
    }
    if (!drop) continue;
    if (Status st = fs_->RemoveFile(Join(dir_, name)); !st.ok()) return st;
    removed = true;
  }
  if (removed) {
    if (Status st = fs_->SyncDir(dir_); !st.ok()) return st;
  }
  return Status::OK();
}

}  // namespace dspc
