#include "dspc/persist/recovery.h"

#include <algorithm>
#include <utility>

#include "dspc/core/dynamic_spc.h"
#include "dspc/persist/replication.h"
#include "dspc/persist/wal.h"

namespace dspc {

std::string RecoveryReport::ToString() const {
  std::string s = "recovery: checkpoint_gen=";
  s += std::to_string(checkpoint_generation);
  s += " recovered_gen=" + std::to_string(recovered_generation);
  s += " replayed=" + std::to_string(replayed);
  s += " skipped=" + std::to_string(skipped);
  s += " truncated_tail_bytes=" + std::to_string(truncated_tail_bytes);
  s += " segments=" + std::to_string(segments_scanned);
  if (used_fallback_checkpoint) s += " fallback_checkpoint";
  if (bootstrapped) s += " bootstrapped";
  return s;
}

namespace {

std::string Join(const std::string& dir, const std::string& name) {
  return dir + "/" + name;
}

}  // namespace

Status PlanRecovery(FileSystem* fs, const std::string& dir,
                    RecoveryPlan* out) {
  RecoveryPlan plan;

  auto names = fs->ListDir(dir);
  if (!names.ok()) return names.status();
  std::vector<uint64_t> seqs;
  for (const std::string& name : *names) {
    uint64_t seq = 0;
    if (ParseWalSegmentFileName(name, &seq)) seqs.push_back(seq);
  }
  std::sort(seqs.begin(), seqs.end());
  const uint64_t max_seq = seqs.empty() ? 0 : seqs.back();

  if (!fs->FileExists(Join(dir, ManifestFileName()))) {
    // No MANIFEST normally means Open never completed its first publish,
    // so nothing was ever durably acknowledged: bootstrap fresh. But
    // writes are only accepted once that publish has created a MANIFEST
    // — so WAL records alongside a missing MANIFEST mean the MANIFEST
    // was deleted or destroyed externally, and bootstrapping would
    // silently discard durable data. The one checkpoint-without-MANIFEST
    // state a crash CAN produce is a first open dying between its
    // checkpoint rename and its MANIFEST rename: exactly one checkpoint
    // file (of the never-acknowledged bootstrap state) and zero records.
    // Two checkpoint files have necessarily been through a publish that
    // retained a previous one — a MANIFEST existed.
    size_t checkpoints = 0;
    for (const std::string& name : *names) {
      uint64_t gen = 0;
      if (ParseCheckpointFileName(name, &gen)) ++checkpoints;
    }
    if (checkpoints > 1) {
      return Status::DataLoss(
          std::to_string(checkpoints) +
          " checkpoints exist without a MANIFEST — the MANIFEST was lost "
          "outside this process; refusing to bootstrap over durable "
          "state");
    }
    for (const uint64_t s : seqs) {
      WalSegment seg;
      // Unreadable strays are not evidence (and must not block a
      // legitimate bootstrap); any decoded record is — records are only
      // ever appended after a MANIFEST exists.
      if (ReadWalSegment(fs, Join(dir, WalSegmentFileName(s)), s, &seg)
              .ok() &&
          !seg.records.empty()) {
        return Status::DataLoss(
            WalSegmentFileName(s) +
            " holds records without a MANIFEST — the MANIFEST was lost "
            "outside this process; refusing to bootstrap over durable "
            "state");
      }
    }
    // Stray record-free segments from an interrupted first open are
    // superseded (and GC'd after the next publish); skipping their seq
    // numbers keeps file names unique.
    plan.has_checkpoint = false;
    plan.next_wal_seq = max_seq + 1;
    plan.report.bootstrapped = true;
    *out = std::move(plan);
    return Status::OK();
  }

  auto manifest = ReadManifest(fs, dir);
  if (!manifest.ok()) return manifest.status();

  uint64_t start_seq = manifest->wal_seq;
  Status load =
      LoadCheckpoint(fs, dir, manifest->generation, &plan.checkpoint);
  if (!load.ok()) {
    if (!manifest->has_previous) return load;
    Status fallback =
        LoadCheckpoint(fs, dir, manifest->prev_generation, &plan.checkpoint);
    if (!fallback.ok()) return load;  // the primary failure is the story
    plan.report.used_fallback_checkpoint = true;
    start_seq = manifest->prev_wal_seq;
  }
  plan.has_checkpoint = true;
  plan.checkpoint_wal_seq = start_seq;
  plan.report.checkpoint_generation = plan.checkpoint.generation;

  // Replay needs the contiguous run start_seq, start_seq+1, ..., max.
  std::vector<uint64_t> run;
  for (const uint64_t s : seqs) {
    if (s >= start_seq) run.push_back(s);
  }
  if (run.empty() || run.front() != start_seq) {
    return Status::DataLoss("wal segment missing: " +
                            WalSegmentFileName(start_seq));
  }
  for (size_t i = 1; i < run.size(); ++i) {
    if (run[i] != run[i - 1] + 1) {
      return Status::DataLoss("wal segment gap after " +
                              WalSegmentFileName(run[i - 1]));
    }
  }

  std::vector<WalSegment> segments;
  segments.reserve(run.size());
  for (const uint64_t s : run) {
    WalSegment seg;
    if (Status st =
            ReadWalSegment(fs, Join(dir, WalSegmentFileName(s)), s, &seg);
        !st.ok()) {
      return st;
    }
    segments.push_back(std::move(seg));
  }
  // A torn tail is a write the crash interrupted — nothing can have been
  // appended (anywhere) after it. Records in a later segment disprove
  // that, so the "tail" is really mid-log corruption.
  for (size_t i = 0; i < segments.size(); ++i) {
    if (segments[i].truncated_tail_bytes == 0) continue;
    for (size_t j = i + 1; j < segments.size(); ++j) {
      if (!segments[j].records.empty()) {
        return Status::DataLoss(
            "corrupt wal records before later valid records: " +
            WalSegmentFileName(run[i]));
      }
    }
    if (Status st = RepairWalTail(fs, Join(dir, WalSegmentFileName(run[i])),
                                  segments[i]);
        !st.ok()) {
      return st;
    }
    plan.report.truncated_tail_bytes += segments[i].truncated_tail_bytes;
  }
  plan.report.segments_scanned = segments.size();
  if (segments.front().valid_bytes >= kWalHeaderBytes &&
      segments.front().base_generation != plan.checkpoint.generation) {
    return Status::DataLoss(
        "wal segment base generation contradicts its checkpoint: " +
        WalSegmentFileName(run.front()));
  }

  // Pair intents with commits, chain the committed generations, and
  // filter ops the checkpoint already covers — all ReplayCursor's job,
  // shared verbatim with replica tailing (replication.h) so recovery and
  // a hot standby agree on what the log means. An intent whose commit
  // never made it to the log was never acknowledged — it stays pending
  // in the cursor and is dropped with it.
  ReplayCursor cursor(plan.checkpoint.generation);
  for (WalSegment& seg : segments) {
    for (WalRecord& rec : seg.records) {
      if (Status st = cursor.Feed(std::move(rec), &plan.ops); !st.ok()) {
        return st;
      }
    }
  }
  plan.report.skipped = cursor.skipped();
  plan.report.replayed = plan.ops.size();
  plan.target_generation = cursor.generation();
  plan.report.recovered_generation = cursor.generation();
  plan.next_wal_seq = max_seq + 1;
  *out = std::move(plan);
  return Status::OK();
}

Status ApplyReplayOp(DynamicSpcIndex* engine, const ReplayOp& op) {
  switch (op.kind) {
    case ReplayOp::Kind::kBatch: {
      if (op.base_generation != engine->Generation()) {
        return Status::DataLoss(
            "replay base generation mismatch: engine at " +
            std::to_string(engine->Generation()) + ", journal says " +
            std::to_string(op.base_generation));
      }
      std::vector<WriteReport> reports;
      engine->ApplyBatch(std::span<const Update>(op.updates), &reports);
      if (reports.size() != op.outcomes.size()) {
        return Status::DataLoss("replay produced wrong report count");
      }
      for (size_t i = 0; i < reports.size(); ++i) {
        if (reports[i].applied() != (op.outcomes[i] != 0)) {
          return Status::DataLoss(
              "replayed update outcome diverged from journal at index " +
              std::to_string(i));
        }
      }
      break;
    }
    case ReplayOp::Kind::kAddVertex: {
      const Vertex v = engine->AddVertex();
      if (v != op.vertex) {
        return Status::DataLoss("replayed AddVertex produced id " +
                                std::to_string(v) + ", journal says " +
                                std::to_string(op.vertex));
      }
      break;
    }
    case ReplayOp::Kind::kRemoveVertex:
      engine->RemoveVertex(op.vertex);
      break;
  }
  if (engine->Generation() != op.end_generation) {
    return Status::DataLoss(
        "replay generation diverged: engine at " +
        std::to_string(engine->Generation()) + ", journal committed " +
        std::to_string(op.end_generation));
  }
  return Status::OK();
}

}  // namespace dspc
