// SnapshotPublisher: the writer side of the multi-process serving tier
// (DESIGN.md §14).
//
// One writer process — a normal (usually durable) SpcService — makes its
// snapshots visible to N stateless reader processes through a shared
// directory:
//
//   snap-<generation>.arena   Immutable mmap-servable snapshot files
//                             (persist/snapshot_arena.h), written tmp →
//                             fsync → rename, never modified afterwards
//                             (only unlinked — the property that keeps
//                             readers' validated mappings SIGBUS-free).
//   PUBSTATE                  The CRC-framed current-generation manifest:
//                             generation, arena file name, and the WAL
//                             sequence the writer had durably synced when
//                             the snapshot was taken. Replaced atomically
//                             by rename; readers poll it to discover new
//                             generations and to compute honest staleness.
//   pin-<owner>               Reader retention pins. A reader serving
//                             generation G keeps a pin file naming G; GC
//                             never unlinks a pinned generation, so a
//                             slow or paused reader can keep serving (and
//                             re-map after a restart) long after newer
//                             generations shipped. Pins of dead processes
//                             are swept by a pid-liveness probe.
//
// GC (run after every publish) retains: the current generation, the
// newest `retain` generations, and every generation named by a live pin.
// Everything else — older arenas and stray *.tmp files from a crashed
// writer — is unlinked. The reader-side adoption race (GC unlinking a
// generation between a reader reading PUBSTATE and writing its pin) is
// closed by the reader re-checking the arena file still exists after its
// pin lands, retrying against a fresh PUBSTATE if not; an unlinked file
// that was already mapped stays readable regardless.

#ifndef DSPC_PERSIST_SNAPSHOT_PUBLISHER_H_
#define DSPC_PERSIST_SNAPSHOT_PUBLISHER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dspc/common/status.h"
#include "dspc/core/flat_spc_index.h"
#include "dspc/persist/env.h"

namespace dspc {

/// Arena file name for a generation: zero-padded so lexicographic and
/// numeric order agree in directory listings.
std::string SnapshotArenaFileName(uint64_t generation);

/// The parsed PUBSTATE manifest.
struct PubState {
  uint64_t generation = 0;
  uint64_t wal_seq = 0;
  std::string file_name;  ///< arena file within the publish directory
};

/// Reads and verifies PUBSTATE from `dir`. kNotFound before the first
/// publish; kDataLoss on a checksum mismatch.
StatusOr<PubState> ReadPubState(FileSystem* fs, const std::string& dir);

/// Writes/replaces this reader's retention pin (atomic rename). `owner`
/// must be [A-Za-z0-9._-]+ and unique per reader process (readers default
/// to "pid<pid>"); `pid` feeds the publisher's stale-pin liveness sweep.
Status WriteSnapshotPin(FileSystem* fs, const std::string& dir,
                        const std::string& owner, uint64_t generation,
                        uint64_t pid);

/// Removes this reader's pin (clean shutdown). Missing pin is OK.
Status RemoveSnapshotPin(FileSystem* fs, const std::string& dir,
                         const std::string& owner);

struct SnapshotPublisherOptions {
  FileSystem* fs = nullptr;  ///< null = FileSystem::Default()

  /// Newest generations kept by GC even when unpinned. >= 1; the current
  /// generation is always kept.
  size_t retain = 2;

  /// Liveness probe for the stale-pin sweep: return false and the pin's
  /// generation loses its retention hold (the pin file is removed). The
  /// default probes the pid with kill(pid, 0). Tests substitute their
  /// own to simulate dead readers deterministically.
  std::function<bool(uint64_t pid)> pid_alive;
};

class SnapshotPublisher {
 public:
  /// Opens (creating if needed) the publish directory, removes stray
  /// *.tmp files from a crashed writer, and adopts the existing PUBSTATE
  /// generation as the monotonicity floor.
  static StatusOr<std::unique_ptr<SnapshotPublisher>> Open(
      const std::string& dir, SnapshotPublisherOptions options = {});

  /// Publishes `index` as `generation`: writes the arena (tmp → fsync →
  /// rename), replaces PUBSTATE, fsyncs the directory, then GCs. A
  /// republish of the current generation (writer crash recovery) is
  /// allowed and atomic; publishing below it is refused — readers must
  /// never observe the shared generation move backwards.
  Status Publish(const FlatSpcIndex& index, uint64_t generation,
                 uint64_t wal_seq);

  /// Unlinks unpinned arenas outside the retention window and sweeps
  /// pins of dead readers. Called by Publish; callable directly by tests
  /// and maintenance.
  Status GarbageCollect();

  /// Last published generation (0 before the first publish anywhere).
  uint64_t CurrentGeneration() const { return generation_; }

  /// WAL sequence stamped into the last published PUBSTATE.
  uint64_t CurrentWalSeq() const { return wal_seq_; }

  const std::string& dir() const { return dir_; }

 private:
  SnapshotPublisher(std::string dir, SnapshotPublisherOptions options);

  FileSystem* fs_;
  const std::string dir_;
  const SnapshotPublisherOptions options_;
  uint64_t generation_ = 0;
  uint64_t wal_seq_ = 0;
  bool published_ = false;  ///< a PUBSTATE exists (here or pre-existing)
};

}  // namespace dspc

#endif  // DSPC_PERSIST_SNAPSHOT_PUBLISHER_H_
