#include "dspc/persist/env.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace dspc {

namespace {

Status Errno(const std::string& what, const std::string& path) {
  return Status::IOError(what + " " + path + ": " + std::strerror(errno));
}

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}
  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(const void* data, size_t n) override {
    const char* p = static_cast<const char*>(data);
    while (n > 0) {
      const ssize_t w = ::write(fd_, p, n);
      if (w < 0) {
        if (errno == EINTR) continue;
        return Errno("write", path_);
      }
      p += w;
      n -= static_cast<size_t>(w);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (::fdatasync(fd_) != 0) return Errno("fdatasync", path_);
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    const int rc = ::close(fd_);
    fd_ = -1;
    if (rc != 0) return Errno("close", path_);
    return Status::OK();
  }

 private:
  int fd_;
  const std::string path_;
};

/// The generic-fallback region: owns a copy of the file bytes. Also what
/// FaultInjectingEnv hands out (its MapReadOnly inherits the base
/// implementation, whose reads pass through), keeping crash tests
/// deterministic — no page cache, no kernel mapping state.
class BufferRegion : public MappedRegion {
 public:
  explicit BufferRegion(std::vector<uint8_t> bytes)
      : bytes_(std::move(bytes)) {
    data_ = bytes_.data();
    size_ = bytes_.size();
  }

 private:
  const std::vector<uint8_t> bytes_;
};

/// A real mmap: the pages are shared with every other process mapping
/// the same file, and survive an unlink of the path (posix inode
/// semantics) — the property the snapshot GC protocol leans on.
class PosixMappedRegion : public MappedRegion {
 public:
  PosixMappedRegion(const void* addr, size_t size) {
    data_ = static_cast<const uint8_t*>(addr);
    size_ = size;
  }
  ~PosixMappedRegion() override {
    if (data_ != nullptr) {
      ::munmap(const_cast<uint8_t*>(data_), size_);
    }
  }

  PosixMappedRegion(const PosixMappedRegion&) = delete;
  PosixMappedRegion& operator=(const PosixMappedRegion&) = delete;
};

class PosixFileSystem : public FileSystem {
 public:
  StatusOr<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override {
    const int fd =
        ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC, 0644);
    if (fd < 0) return Errno("open for writing", path);
    return std::unique_ptr<WritableFile>(
        std::make_unique<PosixWritableFile>(fd, path));
  }

  Status ReadFile(const std::string& path, std::vector<uint8_t>* out) override {
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) return Errno("open for reading", path);
    struct stat st;
    if (::fstat(fd, &st) != 0) {
      ::close(fd);
      return Errno("stat", path);
    }
    out->resize(static_cast<size_t>(st.st_size));
    size_t off = 0;
    while (off < out->size()) {
      const ssize_t r = ::read(fd, out->data() + off, out->size() - off);
      if (r < 0) {
        if (errno == EINTR) continue;
        ::close(fd);
        return Errno("read", path);
      }
      if (r == 0) break;  // shrank under us; serve what exists
      off += static_cast<size_t>(r);
    }
    out->resize(off);
    ::close(fd);
    return Status::OK();
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return Errno("rename to " + to + " from", from);
    }
    return Status::OK();
  }

  Status SyncDir(const std::string& dir) override {
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (fd < 0) return Errno("open directory", dir);
    const int rc = ::fsync(fd);
    ::close(fd);
    if (rc != 0) return Errno("fsync directory", dir);
    return Status::OK();
  }

  Status CreateDir(const std::string& dir) override {
    if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
      return Errno("mkdir", dir);
    }
    return Status::OK();
  }

  StatusOr<std::vector<std::string>> ListDir(const std::string& dir) override {
    DIR* d = ::opendir(dir.c_str());
    if (d == nullptr) return Errno("opendir", dir);
    std::vector<std::string> names;
    while (const dirent* entry = ::readdir(d)) {
      const std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      names.push_back(name);
    }
    ::closedir(d);
    return names;
  }

  Status RemoveFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) return Errno("unlink", path);
    return Status::OK();
  }

  Status TruncateFile(const std::string& path, uint64_t size) override {
    if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
      return Errno("truncate", path);
    }
    return Status::OK();
  }

  StatusOr<uint64_t> FileSize(const std::string& path) override {
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) return Errno("stat", path);
    return static_cast<uint64_t>(st.st_size);
  }

  bool FileExists(const std::string& path) override {
    return ::access(path.c_str(), F_OK) == 0;
  }

  StatusOr<std::shared_ptr<const MappedRegion>> MapReadOnly(
      const std::string& path) override {
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) return Errno("open for mapping", path);
    struct stat st;
    if (::fstat(fd, &st) != 0) {
      ::close(fd);
      return Errno("stat", path);
    }
    const size_t size = static_cast<size_t>(st.st_size);
    if (size == 0) {
      // mmap rejects zero-length maps; an empty region is still valid.
      ::close(fd);
      return std::shared_ptr<const MappedRegion>(
          std::make_shared<PosixMappedRegion>(nullptr, 0));
    }
    void* addr = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
    // The fd is only needed to establish the mapping; the mapping itself
    // keeps the inode alive from here on.
    ::close(fd);
    if (addr == MAP_FAILED) return Errno("mmap", path);
    return std::shared_ptr<const MappedRegion>(
        std::make_shared<PosixMappedRegion>(addr, size));
  }
};

[[gnu::cold]] Status InjectedFault() {
  return Status::IOError("injected fault: simulated crash");
}

}  // namespace

StatusOr<std::shared_ptr<const MappedRegion>> FileSystem::MapReadOnly(
    const std::string& path) {
  // Generic fallback: a private copy of the bytes behaves exactly like a
  // mapping as far as callers can tell (read-only, stable, outlives the
  // file). Virtual ReadFile keeps wrapper envs' read semantics intact.
  std::vector<uint8_t> bytes;
  if (Status st = ReadFile(path, &bytes); !st.ok()) return st;
  return std::shared_ptr<const MappedRegion>(
      std::make_shared<BufferRegion>(std::move(bytes)));
}

FileSystem* FileSystem::Default() {
  static PosixFileSystem* fs = new PosixFileSystem();  // never destroyed
  return fs;
}

// --- FaultInjectingEnv -----------------------------------------------------

/// Write-buffering wrapper: appended bytes live in `pending_` until a
/// successful (uninjected) Sync or Close hands them to the base file —
/// the in-memory stand-in for the page cache a crash would lose.
class FaultWritableFile : public WritableFile {
 public:
  FaultWritableFile(FaultInjectingEnv* env, std::unique_ptr<WritableFile> base)
      : env_(env), base_(std::move(base)) {}

  Status Append(const void* data, size_t n) override {
    std::lock_guard<std::mutex> lock(mu_);
    bool leak_half = false;
    if (Status st = env_->Charge(&leak_half); !st.ok()) {
      // The torn-write case: the crash interrupts this very append, and
      // half of everything still unsynced (older buffered records plus
      // this record's prefix) made it to the platter.
      if (leak_half) {
        const auto* p = static_cast<const uint8_t*>(data);
        pending_.insert(pending_.end(), p, p + n);
        LeakHalfLocked();
      }
      return st;
    }
    const auto* p = static_cast<const uint8_t*>(data);
    pending_.insert(pending_.end(), p, p + n);
    return Status::OK();
  }

  Status Sync() override {
    std::lock_guard<std::mutex> lock(mu_);
    bool leak_half = false;
    if (Status st = env_->Charge(&leak_half); !st.ok()) {
      if (leak_half) LeakHalfLocked();
      return st;
    }
    if (Status st = FlushLocked(); !st.ok()) return st;
    return base_->Sync();
  }

  Status Close() override {
    std::lock_guard<std::mutex> lock(mu_);
    bool leak_half = false;
    if (Status st = env_->Charge(&leak_half); !st.ok()) {
      if (leak_half) LeakHalfLocked();
      return st;  // crashed: buffered bytes are lost, base fd leaks-closes
    }
    if (Status st = FlushLocked(); !st.ok()) return st;
    return base_->Close();
  }

 private:
  Status FlushLocked() {
    if (pending_.empty()) return Status::OK();
    Status st = base_->Append(pending_.data(), pending_.size());
    if (st.ok()) pending_.clear();
    return st;
  }

  void LeakHalfLocked() {
    if (pending_.empty()) return;
    (void)base_->Append(pending_.data(), pending_.size() / 2);
    pending_.clear();
  }

  FaultInjectingEnv* const env_;
  const std::unique_ptr<WritableFile> base_;
  std::mutex mu_;
  std::vector<uint8_t> pending_;
};

void FaultInjectingEnv::Arm(uint64_t index, bool short_write) {
  std::lock_guard<std::mutex> lock(mu_);
  ops_ = 0;
  arm_at_ = index;
  armed_ = true;
  short_write_ = short_write;
  tripped_ = false;
}

void FaultInjectingEnv::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  ops_ = 0;
  armed_ = false;
  tripped_ = false;
}

uint64_t FaultInjectingEnv::OperationCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ops_;
}

bool FaultInjectingEnv::Tripped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tripped_;
}

Status FaultInjectingEnv::Charge(bool* leak_half) {
  std::lock_guard<std::mutex> lock(mu_);
  *leak_half = false;
  if (tripped_) return InjectedFault();
  const uint64_t index = ops_++;
  if (armed_ && index >= arm_at_) {
    tripped_ = true;
    *leak_half = short_write_;
    return InjectedFault();
  }
  return Status::OK();
}

StatusOr<std::unique_ptr<WritableFile>> FaultInjectingEnv::NewWritableFile(
    const std::string& path) {
  // Creating the fd is not a counted fault point (the interesting
  // instants are writes and metadata ops), but a dead env must not keep
  // creating files.
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (tripped_) return InjectedFault();
  }
  auto base = base_->NewWritableFile(path);
  if (!base.ok()) return base.status();
  return std::unique_ptr<WritableFile>(
      std::make_unique<FaultWritableFile>(this, std::move(*base)));
}

Status FaultInjectingEnv::ReadFile(const std::string& path,
                                   std::vector<uint8_t>* out) {
  return base_->ReadFile(path, out);
}

Status FaultInjectingEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  bool leak_half = false;
  if (Status st = Charge(&leak_half); !st.ok()) return st;
  return base_->RenameFile(from, to);
}

Status FaultInjectingEnv::SyncDir(const std::string& dir) {
  bool leak_half = false;
  if (Status st = Charge(&leak_half); !st.ok()) return st;
  return base_->SyncDir(dir);
}

Status FaultInjectingEnv::CreateDir(const std::string& dir) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (tripped_) return InjectedFault();
  }
  return base_->CreateDir(dir);
}

StatusOr<std::vector<std::string>> FaultInjectingEnv::ListDir(
    const std::string& dir) {
  return base_->ListDir(dir);
}

Status FaultInjectingEnv::RemoveFile(const std::string& path) {
  bool leak_half = false;
  if (Status st = Charge(&leak_half); !st.ok()) return st;
  return base_->RemoveFile(path);
}

Status FaultInjectingEnv::TruncateFile(const std::string& path,
                                       uint64_t size) {
  bool leak_half = false;
  if (Status st = Charge(&leak_half); !st.ok()) return st;
  return base_->TruncateFile(path, size);
}

StatusOr<uint64_t> FaultInjectingEnv::FileSize(const std::string& path) {
  return base_->FileSize(path);
}

bool FaultInjectingEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

}  // namespace dspc
