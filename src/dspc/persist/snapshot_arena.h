// Snapshot arena files: the page-aligned, mmap-servable on-disk form of
// a FlatSpcIndex (DESIGN.md §14).
//
// The checkpoint/v2 image (flat_spc_index.cc) is a *stream*: a loader
// parses it front to back into owned vectors. The arena format stores
// the same monolithic single-shard payload as *sections* — rank array,
// CSR offsets, label words, overflow side table — each placed at a
// page-aligned offset and individually CRC32C-summed, so a reader
// process can construct FlatSpcIndex shards as views straight into a
// read-only mmap of the file: zero per-query deserialization or copying
// of label words, and the OS page cache shares the bytes across every
// reader mapping the same generation.
//
// Safety contract (how mapped serving avoids SIGBUS and torn reads):
//
//   - Map() validates before any query can touch the mapping: file size
//     covers the header page and every section's [offset, offset+length),
//     the header and every section check out against their CRCs, and all
//     padding bytes between sections are zero (so a bit flip *anywhere*
//     in the file is detected, not just inside a summed range). Every
//     failure is a typed Status — kCorruption for bad bytes, kIOError
//     from the env — never a crash, never a partially adopted snapshot.
//   - Published arena files are immutable: the publisher writes a tmp
//     file, fsyncs, renames, and only ever *unlinks* old generations —
//     never truncates or rewrites in place. A posix mapping survives
//     unlink (the inode lives until the last mapping drops), so a
//     validated map can never see its bytes disappear: SIGBUS-free by
//     design, not by handler.
//
// WriteSnapshotArena produces the file through the persist::Env seam
// (create → append → fdatasync); atomic publication (tmp → rename →
// dir-fsync) and generation naming belong to the publisher
// (snapshot_publisher.h), which owns the directory protocol.

#ifndef DSPC_PERSIST_SNAPSHOT_ARENA_H_
#define DSPC_PERSIST_SNAPSHOT_ARENA_H_

#include <cstdint>
#include <memory>
#include <string>

#include "dspc/common/status.h"
#include "dspc/core/flat_spc_index.h"
#include "dspc/persist/env.h"

namespace dspc {

inline constexpr uint32_t kSnapshotArenaMagic = 0x44535041;  // "DSPA"
inline constexpr uint32_t kSnapshotArenaVersion = 1;

/// Section placement granularity. Page alignment keeps every viewed
/// array naturally aligned at any mmap base and lets the kernel fault
/// sections independently.
inline constexpr uint64_t kSnapshotArenaAlign = 4096;

/// Serializes `index` into the arena format at `path` via `fs`:
/// create/truncate, append, fdatasync, close. No rename — callers that
/// need atomic visibility write to a tmp path and rename (the
/// publisher's discipline). `generation` and `wal_seq` are stamped into
/// the header so a mapped file is self-describing.
Status WriteSnapshotArena(FileSystem* fs, const std::string& path,
                          const FlatSpcIndex& index, uint64_t generation,
                          uint64_t wal_seq);

/// A fully validated read-only mapping of an arena file, presented as a
/// FlatSpcIndex whose label arenas are views into the mapped bytes. The
/// snapshot holds the mapping alive through its shard backing handle, so
/// the MappedArena object itself may be discarded after adoption —
/// pinned queries keep the region mapped until the last one finishes.
class MappedArena {
 public:
  /// Maps and validates `path`. Typed failures: kIOError from the env
  /// (missing file, mmap failure), kCorruption for any structural or
  /// checksum mismatch (short file, truncated section, bit flip,
  /// nonzero padding, arena that fails FlatSpcIndex validation).
  static StatusOr<MappedArena> Map(FileSystem* fs, const std::string& path);

  /// The snapshot, serving views over the mapped region.
  const std::shared_ptr<const FlatSpcIndex>& snapshot() const {
    return snapshot_;
  }

  /// Generation stamped by the publisher at write time.
  uint64_t generation() const { return generation_; }

  /// WAL sequence the writer had durably synced when this snapshot was
  /// taken (0 for non-durable writers).
  uint64_t wal_seq() const { return wal_seq_; }

  /// Mapped file size in bytes (observability).
  uint64_t file_bytes() const { return file_bytes_; }

 private:
  MappedArena() = default;

  std::shared_ptr<const FlatSpcIndex> snapshot_;
  uint64_t generation_ = 0;
  uint64_t wal_seq_ = 0;
  uint64_t file_bytes_ = 0;
};

}  // namespace dspc

#endif  // DSPC_PERSIST_SNAPSHOT_ARENA_H_
