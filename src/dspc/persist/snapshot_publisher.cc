#include "dspc/persist/snapshot_publisher.h"

#include <signal.h>

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <set>
#include <utility>

#include "dspc/common/binary_io.h"
#include "dspc/persist/snapshot_arena.h"

namespace dspc {

namespace {

constexpr char kPubStateName[] = "PUBSTATE";
constexpr char kSnapPrefix[] = "snap-";
constexpr char kSnapSuffix[] = ".arena";
constexpr char kPinPrefix[] = "pin-";
constexpr uint32_t kPubStateMagic = 0x44535053;  // "DSPS"
constexpr uint32_t kPinMagic = 0x44535070;       // "DSPp"
constexpr uint32_t kPubStateVersion = 1;

std::string Join(const std::string& dir, const std::string& name) {
  return dir + "/" + name;
}

/// Same framing as the checkpointer's manifest: payload + CRC32C
/// trailer, written tmp → fsync → rename (directory fsync is the
/// caller's, so a publish batches it with the arena rename).
Status WriteFramedFileAtomic(FileSystem* fs, const std::string& dir,
                             const std::string& name,
                             const std::vector<uint8_t>& payload) {
  const std::string tmp = Join(dir, name + ".tmp");
  auto file = fs->NewWritableFile(tmp);
  if (!file.ok()) return file.status();
  if (Status st = (*file)->Append(payload.data(), payload.size()); !st.ok()) {
    return st;
  }
  const uint32_t crc = Crc32c(payload.data(), payload.size());
  const uint8_t tail[4] = {
      static_cast<uint8_t>(crc), static_cast<uint8_t>(crc >> 8),
      static_cast<uint8_t>(crc >> 16), static_cast<uint8_t>(crc >> 24)};
  if (Status st = (*file)->Append(tail, sizeof(tail)); !st.ok()) return st;
  if (Status st = (*file)->Sync(); !st.ok()) return st;
  if (Status st = (*file)->Close(); !st.ok()) return st;
  return fs->RenameFile(tmp, Join(dir, name));
}

Status ReadFramedFile(FileSystem* fs, const std::string& path,
                      BinaryReader* out) {
  std::vector<uint8_t> data;
  if (Status st = fs->ReadFile(path, &data); !st.ok()) return st;
  if (data.size() < 4) {
    return Status::DataLoss("framed file too small: " + path);
  }
  const size_t payload = data.size() - 4;
  const uint32_t stored = static_cast<uint32_t>(data[payload]) |
                          (static_cast<uint32_t>(data[payload + 1]) << 8) |
                          (static_cast<uint32_t>(data[payload + 2]) << 16) |
                          (static_cast<uint32_t>(data[payload + 3]) << 24);
  if (Crc32c(data.data(), payload) != stored) {
    return Status::DataLoss("checksum mismatch: " + path);
  }
  data.resize(payload);
  *out = BinaryReader(std::move(data));
  return Status::OK();
}

bool ValidPinOwner(const std::string& owner) {
  if (owner.empty()) return false;
  for (const char c : owner) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

/// Parses "snap-<generation>.arena"; false for any other name.
bool ParseSnapName(const std::string& name, uint64_t* generation) {
  const size_t prefix = sizeof(kSnapPrefix) - 1;
  const size_t suffix = sizeof(kSnapSuffix) - 1;
  if (name.size() <= prefix + suffix) return false;
  if (name.compare(0, prefix, kSnapPrefix) != 0) return false;
  if (name.compare(name.size() - suffix, suffix, kSnapSuffix) != 0) {
    return false;
  }
  uint64_t gen = 0;
  for (size_t i = prefix; i < name.size() - suffix; ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    gen = gen * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  *generation = gen;
  return true;
}

bool DefaultPidAlive(uint64_t pid) {
  if (pid == 0 || pid > static_cast<uint64_t>(INT32_MAX)) return false;
  // EPERM means "exists but not ours" — still alive.
  return ::kill(static_cast<pid_t>(pid), 0) == 0 || errno == EPERM;
}

}  // namespace

std::string SnapshotArenaFileName(uint64_t generation) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%s%020" PRIu64 "%s", kSnapPrefix,
                generation, kSnapSuffix);
  return buf;
}

StatusOr<PubState> ReadPubState(FileSystem* fs, const std::string& dir) {
  const std::string path = Join(dir, kPubStateName);
  if (!fs->FileExists(path)) {
    return Status::NotFound("no PUBSTATE in " + dir +
                            " (nothing published yet)");
  }
  BinaryReader r(std::vector<uint8_t>{});
  if (Status st = ReadFramedFile(fs, path, &r); !st.ok()) return st;
  if (r.GetU32() != kPubStateMagic || r.GetU32() != kPubStateVersion) {
    return Status::DataLoss("bad PUBSTATE header in " + dir);
  }
  PubState state;
  state.generation = r.GetU64();
  state.wal_seq = r.GetU64();
  state.file_name = r.GetString();
  if (!r.AtEnd()) return Status::DataLoss("malformed PUBSTATE in " + dir);
  return state;
}

Status WriteSnapshotPin(FileSystem* fs, const std::string& dir,
                        const std::string& owner, uint64_t generation,
                        uint64_t pid) {
  if (!ValidPinOwner(owner)) {
    return Status::InvalidArgument("bad pin owner '" + owner + "'");
  }
  BinaryWriter w;
  w.PutU32(kPinMagic);
  w.PutU32(kPubStateVersion);
  w.PutU64(generation);
  w.PutU64(pid);
  return WriteFramedFileAtomic(fs, dir, kPinPrefix + owner, w.buffer());
}

Status RemoveSnapshotPin(FileSystem* fs, const std::string& dir,
                         const std::string& owner) {
  if (!ValidPinOwner(owner)) {
    return Status::InvalidArgument("bad pin owner '" + owner + "'");
  }
  const std::string path = Join(dir, kPinPrefix + owner);
  if (!fs->FileExists(path)) return Status::OK();
  return fs->RemoveFile(path);
}

SnapshotPublisher::SnapshotPublisher(std::string dir,
                                     SnapshotPublisherOptions options)
    : fs_(options.fs != nullptr ? options.fs : FileSystem::Default()),
      dir_(std::move(dir)),
      options_(std::move(options)) {}

StatusOr<std::unique_ptr<SnapshotPublisher>> SnapshotPublisher::Open(
    const std::string& dir, SnapshotPublisherOptions options) {
  if (options.retain == 0) {
    return Status::InvalidArgument("SnapshotPublisherOptions::retain must be >= 1");
  }
  auto pub = std::unique_ptr<SnapshotPublisher>(
      new SnapshotPublisher(dir, std::move(options)));
  if (Status st = pub->fs_->CreateDir(dir); !st.ok()) return st;

  // Crashed-writer cleanup: a tmp file is by definition unpublished.
  auto names = pub->fs_->ListDir(dir);
  if (!names.ok()) return names.status();
  for (const std::string& name : *names) {
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
      if (Status st = pub->fs_->RemoveFile(Join(dir, name)); !st.ok()) {
        return st;
      }
    }
  }

  // A previous writer's PUBSTATE is the monotonicity floor: this writer
  // may republish that exact generation (crash recovery) or move past
  // it, never behind it.
  auto state = ReadPubState(pub->fs_, dir);
  if (state.ok()) {
    pub->generation_ = state->generation;
    pub->wal_seq_ = state->wal_seq;
    pub->published_ = true;
  } else if (!state.status().IsNotFound()) {
    return state.status();
  }
  return pub;
}

Status SnapshotPublisher::Publish(const FlatSpcIndex& index,
                                  uint64_t generation, uint64_t wal_seq) {
  if (published_ && generation < generation_) {
    return Status::InvalidArgument(
        "publish would move the shared generation backwards (current " +
        std::to_string(generation_) + ", requested " +
        std::to_string(generation) + ")");
  }
  const std::string name = SnapshotArenaFileName(generation);
  const std::string tmp = Join(dir_, name + ".tmp");
  if (Status st = WriteSnapshotArena(fs_, tmp, index, generation, wal_seq);
      !st.ok()) {
    return st;
  }
  // Rename over an existing same-generation arena (republish after
  // recovery) atomically replaces the name; a reader that already mapped
  // the old inode keeps serving it — identical label content, since both
  // images were built at the same exact generation.
  if (Status st = fs_->RenameFile(tmp, Join(dir_, name)); !st.ok()) return st;

  BinaryWriter w;
  w.PutU32(kPubStateMagic);
  w.PutU32(kPubStateVersion);
  w.PutU64(generation);
  w.PutU64(wal_seq);
  w.PutString(name);
  if (Status st = WriteFramedFileAtomic(fs_, dir_, kPubStateName, w.buffer());
      !st.ok()) {
    return st;
  }
  // One directory fsync covers both renames; only after it is the new
  // generation the durable truth, so only now may GC unlink old state.
  if (Status st = fs_->SyncDir(dir_); !st.ok()) return st;
  generation_ = generation;
  wal_seq_ = wal_seq;
  published_ = true;
  return GarbageCollect();
}

Status SnapshotPublisher::GarbageCollect() {
  auto names = fs_->ListDir(dir_);
  if (!names.ok()) return names.status();

  // Pass 1: sweep dead readers' pins, collect live pinned generations.
  std::set<uint64_t> pinned;
  std::vector<uint64_t> generations;
  const size_t pin_prefix = sizeof(kPinPrefix) - 1;
  for (const std::string& name : *names) {
    uint64_t gen = 0;
    if (ParseSnapName(name, &gen)) {
      generations.push_back(gen);
      continue;
    }
    if (name.compare(0, pin_prefix, kPinPrefix) != 0) continue;
    BinaryReader r(std::vector<uint8_t>{});
    uint64_t pin_gen = 0;
    uint64_t pid = 0;
    bool valid = ReadFramedFile(fs_, Join(dir_, name), &r).ok() &&
                 r.GetU32() == kPinMagic && r.GetU32() == kPubStateVersion;
    if (valid) {
      pin_gen = r.GetU64();
      pid = r.GetU64();
      valid = r.AtEnd();
    }
    // A pin we cannot parse gets the conservative treatment only if its
    // owner might be alive — and we cannot know, so unreadable pins are
    // dropped: they can only arise from a reader that died mid-rename
    // (renames are atomic; a torn pin means no pin).
    if (!valid) {
      if (Status st = fs_->RemoveFile(Join(dir_, name)); !st.ok()) return st;
      continue;
    }
    const bool alive = options_.pid_alive ? options_.pid_alive(pid)
                                          : DefaultPidAlive(pid);
    if (!alive) {
      if (Status st = fs_->RemoveFile(Join(dir_, name)); !st.ok()) return st;
      continue;
    }
    pinned.insert(pin_gen);
  }

  // Pass 2: retention. Keep the newest `retain` generations, the current
  // one, and everything pinned; unlink the rest. Arena files are only
  // ever unlinked — never truncated — so a reader still mapping a
  // reclaimed generation keeps its validated bytes.
  std::sort(generations.begin(), generations.end());
  const size_t keep_newest =
      std::min(options_.retain, generations.size());
  const uint64_t newest_floor =
      generations.empty() ? 0 : generations[generations.size() - keep_newest];
  for (const uint64_t gen : generations) {
    const bool keep = gen >= newest_floor ||
                      (published_ && gen == generation_) ||
                      pinned.count(gen) != 0;
    if (keep) continue;
    if (Status st = fs_->RemoveFile(Join(dir_, SnapshotArenaFileName(gen)));
        !st.ok()) {
      return st;
    }
  }
  return Status::OK();
}

}  // namespace dspc
