// Write-ahead log for the serving layer (DESIGN.md §11): an append-only,
// generation-numbered record of every admitted write, so a crash loses
// nothing that was durably acknowledged.
//
// Layout. The log is a sequence of segment files wal-<seq>.log; segment
// rotation happens at checkpoint time so one checkpoint plus the
// segments at or after its wal_seq reconstruct the exact pre-crash
// state, and older segments become garbage. A segment is a fixed header
// (magic, version, seq, the engine generation at rotation, header
// CRC32C) followed by length-prefixed records:
//
//   u32 payload_len | u32 crc32c(payload) | payload
//
// Torn tails are expected, not exceptional: on an append-only log every
// framing or checksum failure at the tail is indistinguishable from a
// write interrupted by the crash, so ReadWalSegment stops at the last
// valid record and reports the rest as truncated_tail_bytes for repair
// (RepairWalTail). Corruption *before* later valid records — which a
// torn write cannot produce — is kDataLoss.
//
// Record protocol (the ApplyUpdates atomicity fix). A write batch is two
// records: an INTENT (kBatch: sequence number, base generation, the
// admitted updates) appended before the engine applies anything, and a
// COMMIT (kCommit: same sequence number, end generation, one outcome
// byte per update) appended after. Recovery replays only committed
// batches, re-running the updates and cross-checking each recorded
// outcome — a replayed no-op stays a no-op and bumps nothing, so the
// recovered generation lands exactly on the commit record's value. A
// trailing intent without its commit was never acknowledged and is
// skipped. kAddVertex is a single self-committing record (the operation
// is infallible); kRemoveVertex uses intent + commit like a batch.
//
// Sync policy. kNone never fsyncs (the OS decides; cheapest, weakest),
// kEveryWrite fsyncs inside every AppendRecord (strongest, slowest),
// kBatch runs a group-commit flusher thread that fsyncs every
// flush_interval — or immediately when a durable waiter arrives — so
// concurrent durable writers share one fsync (WaitDurable). Any append
// or sync failure is sticky: the writer goes fail-stop and every later
// operation returns the first error, preserving the invariant that the
// WAL is always a superset of acknowledged engine state.

#ifndef DSPC_PERSIST_WAL_H_
#define DSPC_PERSIST_WAL_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "dspc/common/status.h"
#include "dspc/common/types.h"
#include "dspc/graph/update_stream.h"
#include "dspc/persist/env.h"

namespace dspc {

inline constexpr uint32_t kWalMagic = 0x4C415744;  // "DWAL"
inline constexpr uint32_t kWalVersion = 1;
/// Fixed segment header size: magic, version, seq, base generation, CRC.
inline constexpr size_t kWalHeaderBytes = 4 + 4 + 8 + 8 + 4;
/// Framing guard, enforced on BOTH sides of the log: AppendRecord
/// refuses a larger payload (kInvalidArgument, nothing appended), so
/// ReadWalSegment may treat any length prefix beyond it as a torn tail
/// without ever dropping a record that was really written.
inline constexpr uint32_t kWalMaxRecordBytes = 1u << 26;
/// Per-record framing overhead: u32 payload length + u32 CRC32C.
inline constexpr size_t kWalRecordOverheadBytes = 8;

/// Encoded kBatch intent layout: 1 kind + 8 seq + 8 generation + 4 count
/// header bytes, then 9 bytes (kind + two u32 endpoints) per update.
inline constexpr size_t kWalBatchRecordHeaderBytes = 1 + 8 + 8 + 4;
inline constexpr size_t kWalBatchUpdateBytes = 1 + 4 + 4;
/// Largest admitted-update count whose intent record still fits in one
/// WAL record — the service's hard per-call batch admission cap. (The
/// matching commit record is smaller: one outcome byte per update.)
inline constexpr size_t kWalMaxBatchUpdates =
    (kWalMaxRecordBytes - kWalBatchRecordHeaderBytes) / kWalBatchUpdateBytes;

/// When WAL appends are made durable. See the file comment.
enum class WalSyncPolicy : unsigned char {
  kNone = 0,
  kBatch = 1,
  kEveryWrite = 2,
};

const char* WalSyncPolicyName(WalSyncPolicy policy);

/// One decoded WAL record. Which fields are meaningful depends on `kind`
/// (see the record protocol in the file comment).
struct WalRecord {
  enum class Kind : uint8_t {
    kBatch = 1,         ///< intent: seq, generation (base), updates
    kCommit = 2,        ///< commit: seq, generation (end), outcomes
    kAddVertex = 3,     ///< self-committing: generation (end), vertex
    kRemoveVertex = 4,  ///< intent: seq, vertex (committed by kCommit)
  };

  Kind kind = Kind::kBatch;
  uint64_t seq = 0;
  uint64_t generation = 0;
  Vertex vertex = 0;
  std::vector<Update> updates;
  /// Per-update outcome bytes of a commit: 1 = applied (bumped the
  /// generation), 0 = no-op. Rejected updates never reach the WAL.
  std::vector<uint8_t> outcomes;
};

/// Serializes a record payload (what goes inside the framing).
std::vector<uint8_t> EncodeWalRecord(const WalRecord& rec);

/// Parses a record payload. kDataLoss on structural nonsense (a CRC-valid
/// payload that does not decode is corruption, not a torn write).
Status DecodeWalRecord(std::span<const uint8_t> payload, WalRecord* out);

/// File name of segment `seq` within the durability directory.
std::string WalSegmentFileName(uint64_t seq);

/// Parses "wal-<seq>.log"; returns false for any other name.
bool ParseWalSegmentFileName(const std::string& name, uint64_t* seq);

/// The append side of one segment.
class WalWriter {
 public:
  struct Options {
    WalSyncPolicy sync = WalSyncPolicy::kBatch;
    /// Group-commit interval under kBatch.
    std::chrono::microseconds flush_interval{2000};
    /// Invoked (from whichever thread synced) after every successful
    /// fsync — the service layer's metrics hook.
    std::function<void()> on_sync;
  };

  /// Creates segment `seq` at `path`, writes its header, and (under
  /// kBatch) starts the flusher thread.
  static StatusOr<std::unique_ptr<WalWriter>> Create(FileSystem* fs,
                                                     const std::string& path,
                                                     uint64_t seq,
                                                     uint64_t base_generation,
                                                     const Options& options);

  ~WalWriter();

  /// Appends one framed record. Calls must be externally serialized (the
  /// service's write lock); Sync/WaitDurable may run concurrently.
  /// Returns the end offset of the record — the argument WaitDurable
  /// needs. A payload over kWalMaxRecordBytes is kInvalidArgument with
  /// nothing appended (the writer stays usable — recovery would read a
  /// larger frame as a torn tail, losing it silently). I/O failures are
  /// fail-stop: after the first, every later call returns it.
  StatusOr<uint64_t> AppendRecord(std::span<const uint8_t> payload);

  /// Blocks until every byte up to `offset` is fsynced. Under kBatch
  /// this joins the group commit (waking the flusher immediately rather
  /// than waiting out the interval); under kNone it forces a sync
  /// (honoring an explicit durable request on a non-durable log);
  /// under kEveryWrite it is typically already satisfied.
  Status WaitDurable(uint64_t offset);

  /// Forces an fsync of everything appended so far.
  Status Sync();

  /// Stops the flusher, syncs, and closes the file. Called by the
  /// destructor if not called explicitly; only the explicit call
  /// reports errors.
  Status Close();

  uint64_t seq() const { return seq_; }
  uint64_t base_generation() const { return base_generation_; }
  uint64_t AppendedBytes() const {
    return appended_.load(std::memory_order_acquire);
  }
  uint64_t AppendedRecords() const {
    return records_.load(std::memory_order_relaxed);
  }
  uint64_t SyncedBytes() const {
    return synced_.load(std::memory_order_acquire);
  }
  uint64_t SyncCount() const {
    return syncs_.load(std::memory_order_relaxed);
  }

 private:
  WalWriter(FileSystem* fs, std::unique_ptr<WritableFile> file, uint64_t seq,
            uint64_t base_generation, const Options& options);

  /// Fsyncs through `target` and publishes the result. Serialized by
  /// sync_mu_ (never held while appending).
  Status SyncTo(uint64_t target);

  void FlusherLoop();

  FileSystem* const fs_;
  std::unique_ptr<WritableFile> file_;
  const uint64_t seq_;
  const uint64_t base_generation_;
  const Options options_;

  std::atomic<uint64_t> appended_{0};
  std::atomic<uint64_t> synced_{0};
  std::atomic<uint64_t> records_{0};
  std::atomic<uint64_t> syncs_{0};

  /// Serializes fsyncs and guards the sticky error + wakeups.
  std::mutex sync_mu_;
  std::condition_variable flush_cv_;   ///< wakes the flusher
  std::condition_variable synced_cv_;  ///< wakes durable waiters
  Status error_;                       ///< sticky first failure (sync_mu_)
  /// Atomic so AppendRecord's entry check never queues behind the
  /// flusher's in-progress fsync (which holds sync_mu_ throughout) —
  /// under kBatch that stall would tax every append landing mid-flush.
  std::atomic<bool> failed_{false};
  std::atomic<bool> closed_{false};
  bool sync_requested_ = false;
  bool stop_ = false;
  std::thread flusher_;
};

/// How ReadWalSegment classifies an incomplete final frame. Recovery
/// reads a post-crash file, where a short tail IS the interrupted write
/// (kCrashTorn: count it as truncated_tail_bytes for RepairWalTail). A
/// tailing reader — the WAL shipper, a replica catching up — reads a
/// file whose writer is still alive, where the same bytes are an
/// in-flight append that the next poll will complete (kLiveTail: report
/// tail_in_flight with the frame-aligned resume offset instead of
/// misclassifying it as damage). The two cases are byte-identical at the
/// tail; only the reader knows whether the writer is dead.
enum class WalTailPolicy : unsigned char {
  kCrashTorn,  ///< short tail = interrupted write, repairable
  kLiveTail,   ///< short tail = append in flight, retry from resume_offset
};

/// One scanned segment: its header fields, every valid record in order,
/// and how the file ends.
struct WalSegment {
  uint64_t seq = 0;
  uint64_t base_generation = 0;
  std::vector<WalRecord> records;
  /// Offset one past the last valid record (kWalHeaderBytes for an empty
  /// segment; 0 when even the header was torn).
  uint64_t valid_bytes = 0;
  /// Bytes past valid_bytes — a torn tail to repair. 0 for a clean file
  /// and under kLiveTail whenever the tail is classified in-flight.
  uint64_t truncated_tail_bytes = 0;
  /// Frame-aligned offset a tailing reader resumes from (== valid_bytes;
  /// carried explicitly so shipping code never re-derives it).
  uint64_t resume_offset = 0;
  /// kLiveTail only: the file ends in an incomplete frame (or an
  /// incomplete header) that the live writer has not finished appending —
  /// retryable, not corruption. Never set under kCrashTorn.
  bool tail_in_flight = false;
};

/// Scans one segment file. `expected_seq` is the sequence number implied
/// by the file name; a complete header that contradicts it (or fails its
/// own CRC with a fully-written file body after it) is kDataLoss. A
/// header shorter than kWalHeaderBytes is a file created but never
/// flushed: the segment parses as empty with everything in the tail.
///
/// `tail` picks how a short final frame is reported (see WalTailPolicy).
/// The distinction is precise about what a live writer CAN produce: its
/// appends grow the file by whole frames, so an in-flight tail is always
/// a byte-prefix of one frame. A complete frame whose payload fails its
/// CRC is therefore never in-flight — it stays a (crash-)torn tail under
/// both policies, so a tailing reader still detects real damage instead
/// of polling it forever.
Status ReadWalSegment(FileSystem* fs, const std::string& path,
                      uint64_t expected_seq, WalSegment* out,
                      WalTailPolicy tail = WalTailPolicy::kCrashTorn);

/// Truncates `path` to the segment's valid prefix (no-op when clean).
Status RepairWalTail(FileSystem* fs, const std::string& path,
                     const WalSegment& segment);

}  // namespace dspc

#endif  // DSPC_PERSIST_WAL_H_
