// Atomic checkpoint publication for the durability subsystem (DESIGN.md
// §11). A checkpoint is one self-contained file — the graph's edge list
// plus the FlatSpcIndex v2 image, CRC32C-framed — published with the
// classic crash-safe dance:
//
//   write ckpt-<gen>.spc.tmp  →  fsync  →  rename to ckpt-<gen>.spc
//   write MANIFEST.tmp        →  fsync  →  rename to MANIFEST
//   fsync the directory       →  garbage-collect
//
// The MANIFEST names the current checkpoint generation and the WAL
// segment replay starts from, and retains the previous checkpoint as a
// fallback: recovery that finds the newest checkpoint unreadable
// (kDataLoss) can fall back one generation and replay further back in
// the WAL. Garbage collection therefore keeps the current and previous
// checkpoints, every WAL segment the *previous* one still needs, and
// deletes orphaned .tmp files from interrupted publishes. A crash at any
// step leaves either the old MANIFEST (pointing at intact old state) or
// the new one (pointing at the fully-synced new checkpoint) — never a
// manifest that names missing or partial files.

#ifndef DSPC_PERSIST_CHECKPOINTER_H_
#define DSPC_PERSIST_CHECKPOINTER_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "dspc/common/status.h"
#include "dspc/core/flat_spc_index.h"
#include "dspc/graph/graph.h"
#include "dspc/persist/env.h"

namespace dspc {

inline constexpr uint32_t kCheckpointMagic = 0x504B4344;  // "DCKP"
inline constexpr uint32_t kCheckpointVersion = 1;
inline constexpr uint32_t kManifestMagic = 0x4E414D44;  // "DMAN"
inline constexpr uint32_t kManifestVersion = 1;

/// File name of the checkpoint at `generation` within the durability
/// directory.
std::string CheckpointFileName(uint64_t generation);

/// Parses "ckpt-<generation>.spc"; returns false for any other name.
bool ParseCheckpointFileName(const std::string& name, uint64_t* generation);

/// Coordinates of one checkpoint — which file, and where its WAL replay
/// starts. Used to tell Publish which previous checkpoint to retain.
struct CheckpointRef {
  uint64_t generation = 0;
  uint64_t wal_seq = 0;
};

/// The durability directory's root pointer file.
inline const char* ManifestFileName() { return "MANIFEST"; }

/// Decoded MANIFEST: which checkpoint is current, where replay starts,
/// and the retained fallback.
struct CheckpointManifest {
  /// Engine generation the current checkpoint captures.
  uint64_t generation = 0;
  /// First WAL segment NOT covered by the checkpoint — replay starts
  /// here. Its base_generation equals `generation`.
  uint64_t wal_seq = 0;
  /// Layout stamp of the checkpointed snapshot (diagnostic).
  uint64_t layout_stamp = 0;

  bool has_previous = false;
  uint64_t prev_generation = 0;
  uint64_t prev_wal_seq = 0;
};

/// A checkpoint loaded back from disk.
struct LoadedCheckpoint {
  Graph graph;
  FlatSpcIndex index;
  uint64_t generation = 0;
  uint64_t layout_stamp = 0;
};

/// Writes/reads the MANIFEST (CRC32C-framed; write is atomic via .tmp +
/// rename but does NOT fsync the directory — Publish sequences that).
Status WriteManifest(FileSystem* fs, const std::string& dir,
                     const CheckpointManifest& manifest);
StatusOr<CheckpointManifest> ReadManifest(FileSystem* fs,
                                          const std::string& dir);

/// Reads and verifies the checkpoint at `generation`. kDataLoss on any
/// checksum or structural failure — the caller's cue to fall back.
Status LoadCheckpoint(FileSystem* fs, const std::string& dir,
                      uint64_t generation, LoadedCheckpoint* out);

/// Verifies and parses raw checkpoint-file bytes (CRC32C trailer
/// included) that arrived from somewhere other than the durability
/// directory — a replica bootstrapping from a shipped image (DESIGN.md
/// §13). Same validation as LoadCheckpoint; `context` names the source
/// in error messages. kDataLoss on any checksum or structural failure —
/// for a replica that means "re-fetch", since a transport fault and real
/// corruption look identical from the receiving end.
Status ParseCheckpointBytes(std::vector<uint8_t> bytes,
                            uint64_t expected_generation,
                            const std::string& context,
                            LoadedCheckpoint* out);

/// Owns the publish + retention protocol for one durability directory.
class Checkpointer {
 public:
  Checkpointer(FileSystem* fs, std::string dir)
      : fs_(fs), dir_(std::move(dir)) {}

  /// Atomically publishes a checkpoint of (`graph`, `index`) captured at
  /// `generation`, pointing replay at WAL segment `wal_seq`, then
  /// garbage-collects. The retained fallback is `validated_prev` when
  /// given — the checkpoint the caller KNOWS is loadable (recovery just
  /// loaded it); pass it at open time, where the on-disk MANIFEST may
  /// still name the corrupt checkpoint recovery fell back FROM, which
  /// must not be retained in place of the good one. With nullptr the
  /// fallback is the MANIFEST's current checkpoint — correct for
  /// rotation-time publishes, whose predecessor this process published
  /// itself. The caller guarantees graph/index are a consistent pair at
  /// `generation` (the service captures them under FreezeWrites) and
  /// that segment `wal_seq` already exists (rotation happens first).
  Status Publish(const Graph& graph, const FlatSpcIndex& index,
                 uint64_t generation, uint64_t wal_seq,
                 const CheckpointRef* validated_prev = nullptr);

  /// Deletes everything the current MANIFEST no longer needs: checkpoint
  /// files other than current/previous, WAL segments below the oldest
  /// still-needed replay point, and orphaned .tmp files — EXCEPT state a
  /// registered consumer still pins (below). Missing MANIFEST is a
  /// no-op. Best-effort: stops at the first error.
  Status GarbageCollect();

  // --- retention consumers (DESIGN.md §13) --------------------------------
  //
  // A consumer is anything still reading the directory's history behind
  // the manifest's back — a WAL shipper mid-tail, a replica feed. Its
  // CheckpointRef pins the GC horizon: segment wal_seq and later are
  // kept (0 = pin everything), and the checkpoint at `generation` is
  // kept (generation 0 = no checkpoint pinned). Without registration GC
  // keeps only current + previous and drops covered segments
  // unconditionally — exactly what a tailing reader cannot survive.
  // Thread-safe against Publish/GarbageCollect (consumers update from
  // the shipper thread while the service checkpoints).

  /// Registers a consumer needing `pins`; returns its handle.
  uint64_t RegisterConsumer(const CheckpointRef& pins);

  /// Moves `handle`'s pin forward (or backward; GC simply honors it).
  void UpdateConsumer(uint64_t handle, const CheckpointRef& pins);

  /// Drops the pin. Unknown handles are ignored.
  void UnregisterConsumer(uint64_t handle);

  const std::string& dir() const { return dir_; }

 private:
  FileSystem* const fs_;
  const std::string dir_;

  mutable std::mutex consumers_mu_;
  uint64_t next_consumer_handle_ = 0;          ///< under consumers_mu_
  std::unordered_map<uint64_t, CheckpointRef> consumers_;  ///< under consumers_mu_
};

}  // namespace dspc

#endif  // DSPC_PERSIST_CHECKPOINTER_H_
