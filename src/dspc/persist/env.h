// FileSystem/WritableFile seam for the durability subsystem (DESIGN.md
// §11). Everything the WAL, checkpointer, and recovery path do to disk
// goes through this interface, for two reasons:
//
//   - crash testing: FaultInjectingEnv swaps in under the same code and
//     fails (or short-writes) the Nth mutating operation, turning "what
//     if the machine dies between rename and dir-fsync" from a thought
//     experiment into a deterministic unit test (tests/recovery_test.cc
//     enumerates every operation index of a workload);
//   - honest durability: the posix implementation channels writes
//     through unbuffered file descriptors and fsyncs both file data and
//     the containing directory, which stdio cannot express.
//
// The seam is deliberately narrow — append-only writes, whole-file
// reads, rename, truncate, directory listing — because that is the
// complete vocabulary of a WAL + checkpoint store. There is no seek, no
// random-access write, no permission surface.

#ifndef DSPC_PERSIST_ENV_H_
#define DSPC_PERSIST_ENV_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "dspc/common/status.h"

namespace dspc {

/// An append-only output file. Append buffers or writes; Sync makes
/// every appended byte durable; Close flushes and releases the handle
/// (idempotent). Not thread-safe per file except that one thread may
/// Append while another Syncs — the WAL's group-commit flusher relies on
/// exactly that pairing.
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual Status Append(const void* data, size_t n) = 0;
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
};

/// A read-only byte region backed either by a real mmap (the posix
/// implementation) or by an owned buffer (the generic fallback any
/// FileSystem gets for free). Destroying the region unmaps/frees the
/// bytes, so holders keep it alive via shared_ptr for as long as any
/// view into it may be dereferenced — the mmap serving tier threads this
/// handle through FlatSpcIndex shards so in-flight queries finish on the
/// old mapping after a newer generation is adopted. Immutable after
/// construction; safe to read from any number of threads.
class MappedRegion {
 public:
  virtual ~MappedRegion() = default;
  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }

 protected:
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

/// The filesystem operations the persistence layer needs. All paths are
/// plain strings (absolute or cwd-relative); implementations are
/// thread-safe. `Default()` returns the process-wide posix instance.
class FileSystem {
 public:
  virtual ~FileSystem() = default;

  /// Maps `path` read-only. The base implementation reads the whole file
  /// into an owned buffer (correct for any FileSystem, including test
  /// envs); the posix implementation overrides with a real MAP_SHARED
  /// mmap so N processes mapping the same snapshot share page-cache
  /// pages. The region's length is the file's length at map time —
  /// callers validate internal structure before trusting any byte.
  /// Concurrent unlink of a mapped file is harmless on posix (the inode
  /// survives until the last mapping drops); published snapshot files
  /// are never truncated or rewritten in place, which is what makes
  /// mapped reads SIGBUS-free by design.
  virtual StatusOr<std::shared_ptr<const MappedRegion>> MapReadOnly(
      const std::string& path);

  /// Creates (truncating any existing file at) `path` for appending.
  virtual StatusOr<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) = 0;

  /// Reads the whole file into `out` (replacing its contents).
  virtual Status ReadFile(const std::string& path,
                          std::vector<uint8_t>* out) = 0;

  /// Atomically renames `from` to `to` (same directory in all our uses).
  virtual Status RenameFile(const std::string& from,
                            const std::string& to) = 0;

  /// Fsyncs the directory itself, making renames/creates in it durable.
  virtual Status SyncDir(const std::string& dir) = 0;

  /// Creates `dir` (single level); OK if it already exists.
  virtual Status CreateDir(const std::string& dir) = 0;

  /// Names (not paths) of regular files in `dir`, unsorted.
  virtual StatusOr<std::vector<std::string>> ListDir(
      const std::string& dir) = 0;

  virtual Status RemoveFile(const std::string& path) = 0;

  /// Truncates `path` to `size` bytes (the torn-tail repair primitive).
  virtual Status TruncateFile(const std::string& path, uint64_t size) = 0;

  virtual StatusOr<uint64_t> FileSize(const std::string& path) = 0;

  virtual bool FileExists(const std::string& path) = 0;

  /// The process-wide posix filesystem (never null, never destroyed).
  static FileSystem* Default();
};

/// Crash-simulation test double (the deterministic hook behind the
/// crash-matrix suite). Wraps a base filesystem with two behaviors:
///
///   1. Unsynced data really is volatile. Appends buffer in memory and
///      reach the base filesystem only on Sync/Close — so when the
///      simulated crash hits, whatever was never synced is gone, exactly
///      like page-cache contents at power loss. (A clean Close flushes,
///      matching a process exit without a crash.)
///   2. Arm(k) plants the crash: the k-th mutating operation (Append,
///      Sync, Rename, SyncDir, Truncate, Remove, Close — counted across
///      all files, in issue order) is NOT performed and returns
///      kIOError, and every subsequent mutating operation fails the same
///      way without touching disk. With `short_write`, the tripping
///      operation first leaks HALF of the affected file's unsynced bytes
///      to the base filesystem — a torn tail, the partially-flushed page
///      at power loss.
///
/// Count a workload's operations once with an unarmed env
/// (OperationCount()), then re-run it once per index: that enumerates
/// every distinct crash instant of the workload. Reads pass through
/// (and, by design, do not see unsynced buffered data — only recovery
/// reads these files, and recovery runs post-crash).
class FaultInjectingEnv : public FileSystem {
 public:
  explicit FaultInjectingEnv(FileSystem* base) : base_(base) {}

  /// Plants the crash at mutating operation `index` (0-based, counted
  /// from construction or the last Disarm).
  void Arm(uint64_t index, bool short_write = false);

  /// Clears any armed or tripped fault and resets the operation counter.
  void Disarm();

  /// Mutating operations issued so far (armed or not).
  uint64_t OperationCount() const;

  /// True once the armed fault has fired (the env is now "dead": every
  /// mutating operation fails without touching disk).
  bool Tripped() const;

  StatusOr<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override;
  Status ReadFile(const std::string& path, std::vector<uint8_t>* out) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status SyncDir(const std::string& dir) override;
  Status CreateDir(const std::string& dir) override;
  StatusOr<std::vector<std::string>> ListDir(const std::string& dir) override;
  Status RemoveFile(const std::string& path) override;
  Status TruncateFile(const std::string& path, uint64_t size) override;
  StatusOr<uint64_t> FileSize(const std::string& path) override;
  bool FileExists(const std::string& path) override;

 private:
  friend class FaultWritableFile;

  /// Charges one mutating operation against the armed fault. Returns OK
  /// when the operation should proceed; kIOError when it must fail (the
  /// fault fired now or earlier). Sets *leak_half on the exact tripping
  /// operation when short-write mode is armed.
  Status Charge(bool* leak_half);

  FileSystem* const base_;
  mutable std::mutex mu_;
  uint64_t ops_ = 0;
  uint64_t arm_at_ = 0;
  bool armed_ = false;
  bool short_write_ = false;
  bool tripped_ = false;
};

}  // namespace dspc

#endif  // DSPC_PERSIST_ENV_H_
