// Crash recovery for the durability subsystem (DESIGN.md §11): turn a
// durability directory — MANIFEST, checkpoints, WAL segments — back into
// a serving engine at the exact pre-crash generation.
//
// Recovery is split into a pure planning step and an application step so
// each is independently testable:
//
//   PlanRecovery   reads the MANIFEST, loads the newest valid checkpoint
//                  (falling back to the previous one on kDataLoss),
//                  scans the WAL segments from the checkpoint's replay
//                  point, repairs torn tails, pairs intent records with
//                  their commits, and emits the ordered list of
//                  committed operations newer than the checkpoint;
//   ApplyReplayOp  re-runs one such operation through
//                  DynamicSpcIndex::ApplyBatch (or AddVertex /
//                  RemoveVertex), cross-checking every recorded outcome
//                  and the committed end generation — replay is
//                  idempotent because a recorded no-op must replay as a
//                  no-op, and any divergence is kDataLoss, never a
//                  silently different index.
//
// The state machine, for the record (each arrow is a kDataLoss edge
// unless labeled): manifest → checkpoint (→ previous checkpoint on
// checksum failure) → contiguous segment scan (torn tail allowed only
// when no later segment holds records) → intent/commit pairing
// (trailing unpaired intents are dropped: never acknowledged) → filter
// to end_generation > checkpoint generation → replay with cross-checks.

#ifndef DSPC_PERSIST_RECOVERY_H_
#define DSPC_PERSIST_RECOVERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "dspc/common/status.h"
#include "dspc/common/types.h"
#include "dspc/graph/update_stream.h"
#include "dspc/persist/checkpointer.h"
#include "dspc/persist/env.h"

namespace dspc {

class DynamicSpcIndex;

/// What recovery did — surfaced through SpcService::Open and folded into
/// ServiceMetrics.
struct RecoveryReport {
  /// Generation of the checkpoint recovery started from (0 when the
  /// directory was empty and the service bootstrapped fresh).
  uint64_t checkpoint_generation = 0;
  /// Engine generation after replay — the exact pre-crash value of the
  /// last durably-acknowledged write.
  uint64_t recovered_generation = 0;
  /// Committed WAL operations re-applied.
  uint64_t replayed = 0;
  /// Committed operations skipped because the checkpoint already covered
  /// them (their segment predates GC, or replay fell back a checkpoint).
  uint64_t skipped = 0;
  /// Torn bytes truncated off segment tails (across all segments).
  uint64_t truncated_tail_bytes = 0;
  /// WAL segments scanned.
  uint64_t segments_scanned = 0;
  /// True when the newest checkpoint was unreadable and the previous one
  /// was used (more WAL was replayed to compensate).
  bool used_fallback_checkpoint = false;
  /// True when no durable state existed at all (fresh directory).
  bool bootstrapped = false;

  std::string ToString() const;
};

/// One committed WAL operation to re-apply, in commit order.
struct ReplayOp {
  enum class Kind : unsigned char { kBatch, kAddVertex, kRemoveVertex };
  Kind kind = Kind::kBatch;
  /// Generation recorded at intent time (kBatch only; the base the
  /// engine must be at when this op replays).
  uint64_t base_generation = 0;
  /// Committed generation after the op — what the engine must reach.
  uint64_t end_generation = 0;
  Vertex vertex = 0;                ///< kAddVertex / kRemoveVertex
  std::vector<Update> updates;      ///< kBatch
  std::vector<uint8_t> outcomes;    ///< kBatch: 1 = applied, 0 = no-op
};

/// The full recovery plan for one durability directory.
struct RecoveryPlan {
  /// False when the directory held no MANIFEST: nothing was ever
  /// durably acknowledged, the caller bootstraps from its own graph.
  bool has_checkpoint = false;
  LoadedCheckpoint checkpoint;      ///< valid when has_checkpoint
  /// WAL segment the validated checkpoint's replay starts from. Together
  /// with checkpoint.generation this names the checkpoint recovery
  /// PROVED loadable — what the open-time Publish must retain as the
  /// fallback (the on-disk MANIFEST may still name a corrupt one).
  uint64_t checkpoint_wal_seq = 0;
  std::vector<ReplayOp> ops;        ///< committed ops newer than checkpoint
  /// Generation after full replay (== checkpoint generation with no ops).
  uint64_t target_generation = 0;
  /// Sequence number for the segment the restarted service creates.
  uint64_t next_wal_seq = 1;
  RecoveryReport report;
};

/// Plans recovery of `dir`. Repairs torn WAL tails in place (the one
/// mutation this step performs). Typed failures: kDataLoss when durable
/// state is damaged beyond the built-in fallbacks, kIOError when the
/// filesystem itself fails.
Status PlanRecovery(FileSystem* fs, const std::string& dir,
                    RecoveryPlan* out);

/// Re-applies one committed op to `engine`, cross-checking the recorded
/// per-update outcomes and the committed end generation. The engine must
/// stand exactly at the op's expected base (its checkpoint, or the
/// previous op's end_generation). kDataLoss on any divergence.
Status ApplyReplayOp(DynamicSpcIndex* engine, const ReplayOp& op);

}  // namespace dspc

#endif  // DSPC_PERSIST_RECOVERY_H_
