// A small fixed-size worker pool with a blocking parallel-for, used by
// the snapshot rebuild path to repack dirty shards concurrently
// (DESIGN.md §8). Deliberately minimal: one fork-join region at a time,
// no task queue, no futures — the rebuild worker is the only client and
// its regions are serialized by SnapshotManager::rebuild_mu_ anyway.
//
// Workers are spawned once at construction and parked on a condition
// variable between regions, so a ParallelFor costs two notifications, not
// thread creation. With zero workers (threads <= 1, or single-core
// hardware) ParallelFor degrades to a plain loop on the calling thread.

#ifndef DSPC_COMMON_THREAD_POOL_H_
#define DSPC_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dspc {

class ThreadPool {
 public:
  /// Spawns `threads - 1` workers (the caller participates in every
  /// region, so `threads` is the total parallelism). 0 = hardware
  /// concurrency, capped at kMaxThreads.
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism of a region (workers + the calling thread).
  unsigned size() const { return static_cast<unsigned>(workers_.size()) + 1; }

  /// Runs fn(i) for every i in [0, n), distributing indices over the
  /// workers and the calling thread via an atomic cursor; returns when
  /// all n calls have completed. `fn` must be safe to call concurrently
  /// for distinct indices. One region at a time (externally serialized by
  /// the caller; an internal mutex enforces it defensively).
  ///
  /// Exception safety: if any fn(i) throws — on the caller or a worker —
  /// the cursor is drained, the region still fully rendezvouses (no
  /// worker is left touching caller state), and the first exception is
  /// rethrown from ParallelFor. Remaining indices may be skipped.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  static constexpr unsigned kMaxThreads = 16;

 private:
  void WorkerLoop();

  /// Serializes ParallelFor regions.
  std::mutex region_mu_;

  /// Guards the region descriptor below and the wakeup protocol.
  std::mutex mu_;
  std::condition_variable start_cv_;  ///< wakes workers for a new region
  std::condition_variable done_cv_;   ///< wakes the caller when all done
  uint64_t region_seq_ = 0;           ///< bumped per region (wakeup token)
  size_t region_n_ = 0;
  const std::function<void(size_t)>* region_fn_ = nullptr;
  std::atomic<size_t> next_{0};    ///< index cursor of the active region
  size_t claims_ = 0;              ///< helper slots left in the region
  size_t inflight_workers_ = 0;    ///< workers still inside the region
  std::exception_ptr region_error_;  ///< first exception thrown by a worker
  bool stop_ = false;

  std::vector<std::thread> workers_;
};

}  // namespace dspc

#endif  // DSPC_COMMON_THREAD_POOL_H_
