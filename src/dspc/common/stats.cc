#include "dspc/common/stats.h"

#include <algorithm>
#include <cmath>

namespace dspc {

void SampleStats::Add(double value) {
  values_.push_back(value);
  sorted_valid_ = false;
}

double SampleStats::Sum() const {
  double sum = 0.0;
  for (double v : values_) sum += v;
  return sum;
}

double SampleStats::Mean() const {
  if (values_.empty()) return 0.0;
  return Sum() / static_cast<double>(values_.size());
}

double SampleStats::Min() const {
  if (values_.empty()) return 0.0;
  return *std::min_element(values_.begin(), values_.end());
}

double SampleStats::Max() const {
  if (values_.empty()) return 0.0;
  return *std::max_element(values_.begin(), values_.end());
}

double SampleStats::Stddev() const {
  if (values_.size() < 2) return 0.0;
  const double mean = Mean();
  double acc = 0.0;
  for (double v : values_) acc += (v - mean) * (v - mean);
  return std::sqrt(acc / static_cast<double>(values_.size()));
}

double SampleStats::Percentile(double p) const {
  if (values_.empty()) return 0.0;
  if (!sorted_valid_) {
    sorted_ = values_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
  if (p <= 0.0) return sorted_.front();
  if (p >= 100.0) return sorted_.back();
  const double pos = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted_.size()) return sorted_.back();
  return sorted_[lo] * (1.0 - frac) + sorted_[lo + 1] * frac;
}

void SampleStats::Clear() {
  values_.clear();
  sorted_.clear();
  sorted_valid_ = false;
}

}  // namespace dspc
