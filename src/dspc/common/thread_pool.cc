#include "dspc/common/thread_pool.h"

#include <algorithm>

namespace dspc {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = std::thread::hardware_concurrency();
  threads = std::clamp(threads, 1u, kMaxThreads);
  workers_.reserve(threads - 1);
  for (unsigned i = 0; i + 1 < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::lock_guard<std::mutex> region_lock(region_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    region_n_ = n;
    region_fn_ = &fn;
    next_.store(0, std::memory_order_relaxed);
    // A region with fewer indices than workers only needs n - 1 helpers
    // (the caller drains too); the rest wake, see no claim left, and go
    // straight back to sleep without joining the rendezvous.
    claims_ = std::min(workers_.size(), n - 1);
    inflight_workers_ = claims_;
    ++region_seq_;
  }
  start_cv_.notify_all();
  // The caller is a full participant: it drains the same cursor, so a
  // region never waits on a worker that the scheduler has not run yet.
  std::exception_ptr error;
  try {
    for (size_t i = next_.fetch_add(1, std::memory_order_relaxed); i < n;
         i = next_.fetch_add(1, std::memory_order_relaxed)) {
      fn(i);
    }
  } catch (...) {
    error = std::current_exception();
    // Poison the cursor so workers stop picking up new indices, then
    // fall through to the rendezvous — fn (and the caller state it
    // references) must outlive every in-flight call.
    next_.store(n, std::memory_order_relaxed);
  }
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return inflight_workers_ == 0; });
  region_fn_ = nullptr;
  if (error == nullptr) error = region_error_;
  region_error_ = nullptr;
  if (error != nullptr) std::rethrow_exception(error);
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_seq = 0;
  while (true) {
    const std::function<void(size_t)>* fn = nullptr;
    size_t n = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      start_cv_.wait(lock, [&] { return stop_ || region_seq_ != seen_seq; });
      if (stop_) return;
      seen_seq = region_seq_;
      if (claims_ == 0) continue;  // region already has enough helpers
      --claims_;
      fn = region_fn_;
      n = region_n_;
    }
    try {
      for (size_t i = next_.fetch_add(1, std::memory_order_relaxed); i < n;
           i = next_.fetch_add(1, std::memory_order_relaxed)) {
        (*fn)(i);
      }
    } catch (...) {
      next_.store(n, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(mu_);
      if (region_error_ == nullptr) region_error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--inflight_workers_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace dspc
