// Deterministic, cross-platform random number generation.
//
// std::mt19937 distributions are not guaranteed identical across standard
// library implementations, so workloads (graph generators, update streams)
// use this self-contained xoshiro256** generator: the same seed produces the
// same graph and the same update stream everywhere, which keeps tests and
// experiment tables reproducible.

#ifndef DSPC_COMMON_RNG_H_
#define DSPC_COMMON_RNG_H_

#include <cstdint>

namespace dspc {

/// xoshiro256** seeded through SplitMix64, per the reference implementations
/// by Blackman & Vigna (public domain).
class Rng {
 public:
  /// Seeds the full 256-bit state from a single 64-bit seed via SplitMix64.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    uint64_t x = seed;
    for (auto& word : state_) {
      // SplitMix64 step.
      x += 0x9E3779B97F4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform value in [0, bound). bound must be > 0. Uses Lemire's
  /// multiply-shift rejection method to avoid modulo bias.
  uint64_t NextBounded(uint64_t bound) {
    // For the graph sizes used here, the simple 128-bit multiply is exact
    // enough; rejection removes the residual bias.
    unsigned __int128 m =
        static_cast<unsigned __int128>(Next()) * static_cast<unsigned __int128>(bound);
    auto lo = static_cast<uint64_t>(m);
    if (lo < bound) {
      const uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        m = static_cast<unsigned __int128>(Next()) *
            static_cast<unsigned __int128>(bound);
        lo = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform value in [lo, hi] inclusive.
  uint64_t NextInRange(uint64_t lo, uint64_t hi) {
    return lo + NextBounded(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  bool NextBool(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace dspc

#endif  // DSPC_COMMON_RNG_H_
