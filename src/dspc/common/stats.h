// Summary statistics used by the experiment harnesses: the paper reports
// means (Tables 4, 5), medians and interquartile ranges (Figure 7), and
// accumulated series (Figure 10).

#ifndef DSPC_COMMON_STATS_H_
#define DSPC_COMMON_STATS_H_

#include <cstddef>
#include <vector>

namespace dspc {

/// Accumulates a sample of doubles and answers summary queries.
/// Percentile queries sort a copy lazily; the accumulator itself is O(1)
/// per Add.
class SampleStats {
 public:
  /// Adds one observation.
  void Add(double value);

  /// Number of observations.
  size_t count() const { return values_.size(); }

  /// Sum of all observations (0 when empty).
  double Sum() const;

  /// Arithmetic mean (0 when empty).
  double Mean() const;

  /// Smallest observation (0 when empty).
  double Min() const;

  /// Largest observation (0 when empty).
  double Max() const;

  /// Standard deviation (population form; 0 when fewer than 2 samples).
  double Stddev() const;

  /// Percentile in [0, 100] using linear interpolation between order
  /// statistics (0 when empty). Percentile(50) is the median.
  double Percentile(double p) const;

  /// Convenience accessors for the Figure 7 box markers.
  double Median() const { return Percentile(50.0); }
  double P25() const { return Percentile(25.0); }
  double P75() const { return Percentile(75.0); }

  /// Raw observations in insertion order.
  const std::vector<double>& values() const { return values_; }

  /// Discards all observations.
  void Clear();

 private:
  std::vector<double> values_;
  mutable std::vector<double> sorted_;  // lazily rebuilt cache
  mutable bool sorted_valid_ = false;
};

/// Running counter totals for label-change accounting (Figures 8 and 9).
/// One instance accumulates over a batch of updates; means are per update.
struct LabelChangeTotals {
  size_t updates = 0;        ///< number of updates accumulated
  size_t renew_count = 0;    ///< RenewC: only the count element changed
  size_t renew_dist = 0;     ///< RenewD: the distance element changed
  size_t inserted = 0;       ///< newly inserted labels
  size_t removed = 0;        ///< removed labels (decremental only)

  double MeanRenewCount() const {
    return updates == 0 ? 0.0 : static_cast<double>(renew_count) / updates;
  }
  double MeanRenewDist() const {
    return updates == 0 ? 0.0 : static_cast<double>(renew_dist) / updates;
  }
  double MeanInserted() const {
    return updates == 0 ? 0.0 : static_cast<double>(inserted) / updates;
  }
  double MeanRemoved() const {
    return updates == 0 ? 0.0 : static_cast<double>(removed) / updates;
  }
};

}  // namespace dspc

#endif  // DSPC_COMMON_STATS_H_
