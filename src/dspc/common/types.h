// Core scalar types shared by every DSPC module.

#ifndef DSPC_COMMON_TYPES_H_
#define DSPC_COMMON_TYPES_H_

#include <cstdint>
#include <limits>

namespace dspc {

/// Vertex identifier. Graphs address vertices as dense ids in [0, n).
using Vertex = uint32_t;

/// Rank of a vertex under the index's frozen total order. Rank 0 is the
/// highest rank; `r1 < r2` means r1 outranks r2 (the paper writes r1 <= r2).
using Rank = uint32_t;

/// Hop distance (unweighted) or accumulated weight (weighted graphs).
using Distance = uint32_t;

/// Shortest-path count. Counts only add and multiply, so all arithmetic is
/// exact modulo 2^64; see README for the overflow discussion.
using PathCount = uint64_t;

/// Edge weight for the weighted extension (Appendix C.2).
using Weight = uint32_t;

inline constexpr Vertex kInvalidVertex = std::numeric_limits<Vertex>::max();
inline constexpr Rank kInvalidRank = std::numeric_limits<Rank>::max();
inline constexpr Distance kInfDistance = std::numeric_limits<Distance>::max();

}  // namespace dspc

#endif  // DSPC_COMMON_TYPES_H_
