#include "dspc/common/label_codec.h"

#include <algorithm>

namespace dspc {

uint64_t PackLabel(Rank hub, Distance dist, PathCount count) {
  const uint64_t h = std::min<uint64_t>(hub, kPackedHubMax);
  const uint64_t d = std::min<uint64_t>(dist, kPackedDistMax);
  const uint64_t c = std::min<uint64_t>(count, kPackedCountMax);
  return (h << (kPackedDistBits + kPackedCountBits)) | (d << kPackedCountBits) |
         c;
}

PackedLabelFields UnpackLabel(uint64_t word) {
  PackedLabelFields fields;
  fields.count = word & kPackedCountMax;
  fields.dist =
      static_cast<Distance>((word >> kPackedCountBits) & kPackedDistMax);
  fields.hub = static_cast<Rank>(word >> (kPackedDistBits + kPackedCountBits));
  return fields;
}

bool FitsPacked(Rank hub, Distance dist, PathCount count) {
  return hub <= kPackedHubMax && dist <= kPackedDistMax &&
         count <= kPackedCountMax;
}

bool FitsFlatInline(Rank hub, Distance dist, PathCount count) {
  return hub <= kPackedHubMax && dist < kFlatOverflowDistMark &&
         count <= kPackedCountMax;
}

uint64_t PackFlatOverflowRef(Rank hub, uint64_t slot) {
  return (static_cast<uint64_t>(hub) << kFlatHubShift) |
         (kFlatOverflowDistMark << kPackedCountBits) | (slot & kPackedCountMax);
}

}  // namespace dspc
