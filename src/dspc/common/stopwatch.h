// Wall-clock stopwatch used by the benchmark harnesses.

#ifndef DSPC_COMMON_STOPWATCH_H_
#define DSPC_COMMON_STOPWATCH_H_

#include <chrono>

namespace dspc {

/// Monotonic stopwatch. Starts running on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction/Reset, in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time since construction/Reset, in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Elapsed time since construction/Reset, in microseconds.
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace dspc

#endif  // DSPC_COMMON_STOPWATCH_H_
