#include "dspc/common/binary_io.h"

#include <array>
#include <bit>
#include <cstring>

#ifdef __SSE4_2__
#include <nmmintrin.h>
#endif

namespace dspc {

namespace {

std::array<uint32_t, 256> BuildCrcTable(uint32_t poly) {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (poly ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

const std::array<uint32_t, 256>& CrcTable() {
  static const std::array<uint32_t, 256> table = BuildCrcTable(0xEDB88320U);
  return table;
}

#ifndef __SSE4_2__
const std::array<uint32_t, 256>& Crc32cTable() {
  static const std::array<uint32_t, 256> table = BuildCrcTable(0x82F63B78U);
  return table;
}
#endif

}  // namespace

uint32_t Crc32(const void* data, size_t n, uint32_t seed) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t c = seed ^ 0xFFFFFFFFU;
  const auto& table = CrcTable();
  for (size_t i = 0; i < n; ++i) {
    c = table[(c ^ p[i]) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFU;
}

uint32_t Crc32c(const void* data, size_t n, uint32_t seed) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t c = seed ^ 0xFFFFFFFFU;
#ifdef __SSE4_2__
  uint64_t c64 = c;
  while (n >= 8) {
    uint64_t chunk;
    std::memcpy(&chunk, p, 8);
    c64 = _mm_crc32_u64(c64, chunk);
    p += 8;
    n -= 8;
  }
  c = static_cast<uint32_t>(c64);
  while (n > 0) {
    c = _mm_crc32_u8(c, *p++);
    --n;
  }
#else
  const auto& table = Crc32cTable();
  for (size_t i = 0; i < n; ++i) {
    c = table[(c ^ p[i]) & 0xFF] ^ (c >> 8);
  }
#endif
  return c ^ 0xFFFFFFFFU;
}

void BinaryWriter::PutU32(uint32_t v) {
  uint8_t b[4] = {static_cast<uint8_t>(v), static_cast<uint8_t>(v >> 8),
                  static_cast<uint8_t>(v >> 16), static_cast<uint8_t>(v >> 24)};
  Append(b, sizeof(b));
}

void BinaryWriter::PutU64(uint64_t v) {
  PutU32(static_cast<uint32_t>(v));
  PutU32(static_cast<uint32_t>(v >> 32));
}

void BinaryWriter::PutString(const std::string& s) {
  PutU32(static_cast<uint32_t>(s.size()));
  Append(s.data(), s.size());
}

void BinaryWriter::Append(const void* data, size_t n) {
  const auto* p = static_cast<const uint8_t*>(data);
  buffer_.insert(buffer_.end(), p, p + n);
}

void BinaryWriter::PutU32Array(const uint32_t* data, size_t n) {
  if constexpr (std::endian::native == std::endian::little) {
    Append(data, n * sizeof(uint32_t));
  } else {
    for (size_t i = 0; i < n; ++i) PutU32(data[i]);
  }
}

void BinaryWriter::PutU64Array(const uint64_t* data, size_t n) {
  if constexpr (std::endian::native == std::endian::little) {
    Append(data, n * sizeof(uint64_t));
  } else {
    for (size_t i = 0; i < n; ++i) PutU64(data[i]);
  }
}

Status BinaryWriter::WriteToFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open for writing: " + path);
  }
  bool ok = true;
  if (!buffer_.empty()) {
    ok = std::fwrite(buffer_.data(), 1, buffer_.size(), f) == buffer_.size();
  }
  const uint32_t crc = Crc32(buffer_.data(), buffer_.size());
  uint8_t tail[4] = {static_cast<uint8_t>(crc), static_cast<uint8_t>(crc >> 8),
                     static_cast<uint8_t>(crc >> 16),
                     static_cast<uint8_t>(crc >> 24)};
  ok = ok && std::fwrite(tail, 1, sizeof(tail), f) == sizeof(tail);
  ok = std::fclose(f) == 0 && ok;
  if (!ok) return Status::IOError("short write: " + path);
  return Status::OK();
}

Status BinaryReader::ReadFromFile(const std::string& path, BinaryReader* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("cannot open for reading: " + path);
  }
  if (std::fseek(f, 0, SEEK_END) != 0) {
    std::fclose(f);
    return Status::IOError("cannot seek: " + path);
  }
  const long size = std::ftell(f);
  if (size < 0 || std::fseek(f, 0, SEEK_SET) != 0) {
    std::fclose(f);
    return Status::IOError("cannot stat: " + path);
  }
  if (size < 4) {
    std::fclose(f);
    return Status::Corruption("file too small: " + path);
  }
  std::vector<uint8_t> data(static_cast<size_t>(size));
  const bool ok = std::fread(data.data(), 1, data.size(), f) == data.size();
  std::fclose(f);
  if (!ok) return Status::IOError("short read: " + path);

  const size_t payload = data.size() - 4;
  uint32_t stored = 0;
  std::memcpy(&stored, data.data() + payload, 4);
  uint32_t stored_le = static_cast<uint32_t>(data[payload]) |
                       (static_cast<uint32_t>(data[payload + 1]) << 8) |
                       (static_cast<uint32_t>(data[payload + 2]) << 16) |
                       (static_cast<uint32_t>(data[payload + 3]) << 24);
  (void)stored;
  if (Crc32(data.data(), payload) != stored_le) {
    return Status::Corruption("CRC mismatch: " + path);
  }
  data.resize(payload);
  *out = BinaryReader(std::move(data));
  return Status::OK();
}

bool BinaryReader::Ensure(size_t n) {
  if (!ok_ || pos_ + n > data_.size()) {
    ok_ = false;
    return false;
  }
  return true;
}

uint8_t BinaryReader::GetU8() {
  if (!Ensure(1)) return 0;
  return data_[pos_++];
}

uint32_t BinaryReader::GetU32() {
  if (!Ensure(4)) return 0;
  uint32_t v = static_cast<uint32_t>(data_[pos_]) |
               (static_cast<uint32_t>(data_[pos_ + 1]) << 8) |
               (static_cast<uint32_t>(data_[pos_ + 2]) << 16) |
               (static_cast<uint32_t>(data_[pos_ + 3]) << 24);
  pos_ += 4;
  return v;
}

uint64_t BinaryReader::GetU64() {
  const uint64_t lo = GetU32();
  const uint64_t hi = GetU32();
  return lo | (hi << 32);
}

bool BinaryReader::GetU32Array(uint32_t* out, size_t n) {
  if (n > remaining() / sizeof(uint32_t) || !Ensure(n * sizeof(uint32_t))) {
    ok_ = false;
    return false;
  }
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(out, data_.data() + pos_, n * sizeof(uint32_t));
    pos_ += n * sizeof(uint32_t);
  } else {
    for (size_t i = 0; i < n; ++i) out[i] = GetU32();
  }
  return true;
}

bool BinaryReader::GetU64Array(uint64_t* out, size_t n) {
  if (n > remaining() / sizeof(uint64_t) || !Ensure(n * sizeof(uint64_t))) {
    ok_ = false;
    return false;
  }
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(out, data_.data() + pos_, n * sizeof(uint64_t));
    pos_ += n * sizeof(uint64_t);
  } else {
    for (size_t i = 0; i < n; ++i) out[i] = GetU64();
  }
  return true;
}

bool BinaryReader::GetBytes(void* out, size_t n) {
  if (!Ensure(n)) return false;
  std::memcpy(out, data_.data() + pos_, n);
  pos_ += n;
  return true;
}

std::string BinaryReader::GetString() {
  const uint32_t n = GetU32();
  if (!Ensure(n)) return std::string();
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
  pos_ += n;
  return s;
}

}  // namespace dspc
