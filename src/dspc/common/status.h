// RocksDB-style Status: fallible operations (I/O, parsing, serialization)
// return a Status instead of throwing. Hot algorithm paths never fail and
// therefore do not use Status.

#ifndef DSPC_COMMON_STATUS_H_
#define DSPC_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace dspc {

/// Outcome of a fallible operation. Cheap to copy when OK (empty message).
class Status {
 public:
  enum class Code : unsigned char {
    kOk = 0,
    kNotFound = 1,
    kCorruption = 2,
    kInvalidArgument = 3,
    kIOError = 4,
    kNotSupported = 5,
  };

  /// Default-constructed Status is OK.
  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(Code::kIOError, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(Code::kNotSupported, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsIOError() const { return code_ == Code::kIOError; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }

  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "<code>: <message>" string for logs and errors.
  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

}  // namespace dspc

#endif  // DSPC_COMMON_STATUS_H_
