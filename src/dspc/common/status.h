// RocksDB-style Status: fallible operations (I/O, parsing, serialization,
// and the serving API's request admission) return a Status instead of
// throwing; value-returning fallible operations return StatusOr<T>. Hot
// algorithm paths never fail and therefore do not use Status.

#ifndef DSPC_COMMON_STATUS_H_
#define DSPC_COMMON_STATUS_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <utility>

namespace dspc {

/// Outcome of a fallible operation. An OK Status is two stores to build
/// and a null check to destroy (the message lives behind a pointer that
/// only error paths allocate) — it rides the serving API's hot path, so
/// the OK case must cost nothing measurable.
class Status {
 public:
  enum class Code : unsigned char {
    kOk = 0,
    kNotFound = 1,
    kCorruption = 2,
    kInvalidArgument = 3,
    kIOError = 4,
    kNotSupported = 5,
    kUnavailable = 6,
    kDeadlineExceeded = 7,
    kDataLoss = 8,
  };

  /// Default-constructed Status is OK.
  Status() noexcept : code_(Code::kOk) {}

  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;
  Status(const Status& other)
      : code_(other.code_),
        message_(other.message_
                     ? std::make_unique<std::string>(*other.message_)
                     : nullptr) {}
  Status& operator=(const Status& other) {
    if (this != &other) {
      code_ = other.code_;
      message_ = other.message_
                     ? std::make_unique<std::string>(*other.message_)
                     : nullptr;
    }
    return *this;
  }

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(Code::kIOError, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(Code::kNotSupported, std::move(msg));
  }
  /// The request is valid but cannot be served right now without
  /// violating its options (e.g. a non-blocking kSnapshot read before any
  /// snapshot is published). Retrying, or relaxing the options, may
  /// succeed.
  static Status Unavailable(std::string msg) {
    return Status(Code::kUnavailable, std::move(msg));
  }
  /// The caller's deadline expired before the request could be served
  /// without blocking past it (e.g. a kFresh read that could not take the
  /// live-index lock in time, or a WaitForSnapshot whose snapshot did not
  /// catch up). The request may well succeed with a larger timeout.
  static Status DeadlineExceeded(std::string msg) {
    return Status(Code::kDeadlineExceeded, std::move(msg));
  }
  /// Durable state is unrecoverably damaged: a checkpoint or WAL record
  /// failed its checksum, or stored bytes decode to something structurally
  /// impossible. Unlike kCorruption (a bad input file the caller handed
  /// us), kDataLoss means previously-acknowledged state cannot be fully
  /// reconstructed and a fallback (older checkpoint) may have been used.
  static Status DataLoss(std::string msg) {
    return Status(Code::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsIOError() const { return code_ == Code::kIOError; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsUnavailable() const { return code_ == Code::kUnavailable; }
  bool IsDeadlineExceeded() const {
    return code_ == Code::kDeadlineExceeded;
  }
  bool IsDataLoss() const { return code_ == Code::kDataLoss; }

  Code code() const { return code_; }
  const std::string& message() const {
    static const std::string kEmpty;
    return message_ ? *message_ : kEmpty;
  }

  /// Human-readable "<code>: <message>" string for logs and errors.
  std::string ToString() const;

 private:
  Status(Code code, std::string msg)
      : code_(code),
        message_(msg.empty() ? nullptr
                             : std::make_unique<std::string>(std::move(msg))) {
  }

  Code code_;
  std::unique_ptr<const std::string> message_;
};

/// A Status or a value of type T — the return type of fallible operations
/// that produce a result (absl::StatusOr shape, without the dependency).
/// Exactly one of the two is present: an OK StatusOr holds a value, a
/// non-OK one holds only the error. Accessing value() on a non-OK
/// StatusOr aborts with the status printed — service callers are expected
/// to branch on ok() (or use value_or) before dereferencing.
template <typename T>
class StatusOr {
 public:
  /// Implicit from an error Status, so `return Status::InvalidArgument(x)`
  /// works in a StatusOr-returning function. Constructing from an OK
  /// Status is a programming error (there would be no value) and aborts.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) Fail("StatusOr constructed from OK Status");
  }

  /// Implicit from a value, so `return result;` works.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  /// In-place value construction: `StatusOr<R> out(std::in_place);` then
  /// fill through operator-> and return — NRVO, no value moves. The
  /// hot-path constructor for the serving API.
  template <typename... Args>
  explicit StatusOr(std::in_place_t, Args&&... args)
      : value_(std::in_place, std::forward<Args>(args)...) {}

  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  /// The error (Status::OK() when a value is present).
  const Status& status() const { return status_; }

  /// The value; aborts if this holds an error.
  const T& value() const& {
    EnsureOk();
    return *value_;
  }
  T& value() & {
    EnsureOk();
    return *value_;
  }
  T&& value() && {
    EnsureOk();
    return *std::move(value_);
  }

  /// The value, or `fallback` when this holds an error.
  T value_or(T fallback) const& {
    return ok() ? *value_ : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void EnsureOk() const {
    if (!ok()) Fail(status_.ToString().c_str());
  }
  [[noreturn]] static void Fail(const char* what) {
    std::fprintf(stderr, "StatusOr: %s\n", what);
    std::abort();
  }

  Status status_;
  std::optional<T> value_;
};

}  // namespace dspc

#endif  // DSPC_COMMON_STATUS_H_
