// Little-endian binary readers/writers with CRC32 framing, used by the
// index and graph serialization code. All fallible operations return
// Status (never throw).

#ifndef DSPC_COMMON_BINARY_IO_H_
#define DSPC_COMMON_BINARY_IO_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "dspc/common/status.h"

namespace dspc {

/// CRC32 (IEEE 802.3 polynomial, reflected) over a byte buffer; `seed`
/// allows incremental computation by chaining calls.
uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0);

/// CRC32C (Castagnoli polynomial, reflected) — the WAL record checksum.
/// Uses the SSE4.2 crc32 instruction when the build targets it (the
/// repo-wide -march=x86-64-v2 does), falling back to a table otherwise.
/// Same chaining convention as Crc32.
uint32_t Crc32c(const void* data, size_t n, uint32_t seed = 0);

/// Buffered binary writer. Accumulates into memory, then flushes to a file
/// with a trailing CRC32 so corrupt files are rejected at load time.
class BinaryWriter {
 public:
  void PutU8(uint8_t v) { Append(&v, 1); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  /// Length-prefixed string.
  void PutString(const std::string& s);
  /// Raw bytes, no length prefix.
  void Append(const void* data, size_t n);
  /// Bulk little-endian arrays, no length prefix: a single memcpy on
  /// little-endian hosts. Used by the FlatSpcIndex v2 format so index
  /// arenas serialize at memory speed.
  void PutU32Array(const uint32_t* data, size_t n);
  void PutU64Array(const uint64_t* data, size_t n);

  const std::vector<uint8_t>& buffer() const { return buffer_; }

  /// Writes the buffer followed by its CRC32 to `path`.
  Status WriteToFile(const std::string& path) const;

 private:
  std::vector<uint8_t> buffer_;
};

/// Binary reader over an in-memory buffer. Out-of-bounds reads flip the
/// reader into a failed state instead of invoking UB; check status() after
/// a parse.
class BinaryReader {
 public:
  explicit BinaryReader(std::vector<uint8_t> data) : data_(std::move(data)) {}

  /// Reads `path`, verifies the trailing CRC32, and returns a reader over
  /// the payload.
  static Status ReadFromFile(const std::string& path, BinaryReader* out);

  uint8_t GetU8();
  uint32_t GetU32();
  uint64_t GetU64();
  std::string GetString();
  /// Bulk counterparts of PutU32Array/PutU64Array; on failure the reader
  /// flips into the failed state and `out` is untouched.
  bool GetU32Array(uint32_t* out, size_t n);
  bool GetU64Array(uint64_t* out, size_t n);
  /// Raw byte run (counterpart of Append); same failure contract.
  bool GetBytes(void* out, size_t n);

  /// True when all payload bytes have been consumed and no read failed.
  bool AtEnd() const { return ok_ && pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }
  Status status() const {
    return ok_ ? Status::OK() : Status::Corruption("binary reader overrun");
  }

 private:
  bool Ensure(size_t n);

  std::vector<uint8_t> data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace dspc

#endif  // DSPC_COMMON_BINARY_IO_H_
