// The paper's packed label encoding (Section 4.1): each label entry
// (v, d, c) is encoded in a 64-bit integer, with v, d and c taking 25, 10
// and 29 bits respectively. The in-memory index uses wide 16-byte entries
// for exactness; this codec is used for index-size accounting (Table 4)
// and for the compact serialization format.

#ifndef DSPC_COMMON_LABEL_CODEC_H_
#define DSPC_COMMON_LABEL_CODEC_H_

#include <cstdint>

#include "dspc/common/types.h"

namespace dspc {

/// Bit widths of the paper's packed 64-bit label entry.
inline constexpr int kPackedHubBits = 25;
inline constexpr int kPackedDistBits = 10;
inline constexpr int kPackedCountBits = 29;

/// Maximum values representable by each packed field.
inline constexpr uint64_t kPackedHubMax = (1ULL << kPackedHubBits) - 1;
inline constexpr uint64_t kPackedDistMax = (1ULL << kPackedDistBits) - 1;
inline constexpr uint64_t kPackedCountMax = (1ULL << kPackedCountBits) - 1;

/// A decoded packed entry.
struct PackedLabelFields {
  Rank hub;
  Distance dist;
  PathCount count;
};

/// Packs (hub, dist, count) into a 64-bit word, layout [hub|dist|count]
/// from the most significant bits. Values are saturated to their field
/// widths; use FitsPacked() to detect lossy packing beforehand.
uint64_t PackLabel(Rank hub, Distance dist, PathCount count);

/// Reverses PackLabel().
PackedLabelFields UnpackLabel(uint64_t word);

/// True iff the triple can be packed without saturation.
bool FitsPacked(Rank hub, Distance dist, PathCount count);

}  // namespace dspc

#endif  // DSPC_COMMON_LABEL_CODEC_H_
