// The paper's packed label encoding (Section 4.1): each label entry
// (v, d, c) is encoded in a 64-bit integer, with v, d and c taking 25, 10
// and 29 bits respectively. The mutable index uses wide 16-byte entries
// for exactness; this codec defines the word formats of the read-optimized
// FlatSpcIndex arena (DESIGN.md §5), the compact serialization formats,
// and index-size accounting (Table 4).

#ifndef DSPC_COMMON_LABEL_CODEC_H_
#define DSPC_COMMON_LABEL_CODEC_H_

#include <cstdint>

#include "dspc/common/types.h"

namespace dspc {

/// Bit widths of the paper's packed 64-bit label entry.
inline constexpr int kPackedHubBits = 25;
inline constexpr int kPackedDistBits = 10;
inline constexpr int kPackedCountBits = 29;

/// Maximum values representable by each packed field.
inline constexpr uint64_t kPackedHubMax = (1ULL << kPackedHubBits) - 1;
inline constexpr uint64_t kPackedDistMax = (1ULL << kPackedDistBits) - 1;
inline constexpr uint64_t kPackedCountMax = (1ULL << kPackedCountBits) - 1;

/// A decoded packed entry.
struct PackedLabelFields {
  Rank hub;
  Distance dist;
  PathCount count;
};

/// Packs (hub, dist, count) into a 64-bit word, layout [hub|dist|count]
/// from the most significant bits. Values are saturated to their field
/// widths; use FitsPacked() to detect lossy packing beforehand.
uint64_t PackLabel(Rank hub, Distance dist, PathCount count);

/// Reverses PackLabel().
PackedLabelFields UnpackLabel(uint64_t word);

/// True iff the triple can be packed without saturation.
bool FitsPacked(Rank hub, Distance dist, PathCount count);

// --- flat-arena word format (DESIGN.md §5) ---------------------------------
//
// The FlatSpcIndex arena stores one 64-bit word per label entry with the
// hub rank in the top 25 bits, so the merge-scan compares hubs with a
// single shift. Entries whose distance or count overflow their fields are
// stored out-of-line in a wide side table; the arena word then carries the
// overflow marker (dist field all-ones) and the side-table slot in the
// count field. The marker reserves dist == kPackedDistMax, so the inline
// predicate is strictly tighter than FitsPacked().

/// Bit position of the hub field in an arena word.
inline constexpr int kFlatHubShift = kPackedDistBits + kPackedCountBits;

/// Distance-field value marking an overflow reference word.
inline constexpr uint64_t kFlatOverflowDistMark = kPackedDistMax;

/// True iff the triple can live inline in an arena word: hub fits its 25
/// bits, dist is strictly below the overflow marker, count fits 29 bits.
bool FitsFlatInline(Rank hub, Distance dist, PathCount count);

/// Encodes an overflow reference: hub inline (must fit 25 bits), dist
/// field all-ones, `slot` (side-table index, must fit 29 bits) in the
/// count field.
uint64_t PackFlatOverflowRef(Rank hub, uint64_t slot);

/// True iff `word` is an overflow reference rather than an inline entry.
inline bool IsFlatOverflowRef(uint64_t word) {
  return ((word >> kPackedCountBits) & kPackedDistMax) == kFlatOverflowDistMark;
}

/// Side-table slot of an overflow reference word.
inline uint64_t FlatOverflowSlot(uint64_t word) {
  return word & kPackedCountMax;
}

/// Hub rank of an arena word (inline or overflow reference).
inline Rank FlatHub(uint64_t word) {
  return static_cast<Rank>(word >> kFlatHubShift);
}

}  // namespace dspc

#endif  // DSPC_COMMON_LABEL_CODEC_H_
