// Dijkstra with path counting: ground truth for the weighted extension
// (paper Appendix C.2).

#ifndef DSPC_BASELINE_DIJKSTRA_COUNTING_H_
#define DSPC_BASELINE_DIJKSTRA_COUNTING_H_

#include "dspc/baseline/bfs_counting.h"
#include "dspc/graph/weighted_graph.h"

namespace dspc {

/// Single-source weighted shortest distances and path counts. Distances
/// are weight sums; disconnected vertices report kInfDistance / 0.
SsspCounts DijkstraCount(const WeightedGraph& graph, Vertex source);

/// Pair query via Dijkstra from `s` with early exit at `t`.
SpcResult DijkstraCountPair(const WeightedGraph& graph, Vertex s, Vertex t);

}  // namespace dspc

#endif  // DSPC_BASELINE_DIJKSTRA_COUNTING_H_
