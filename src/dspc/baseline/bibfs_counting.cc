#include "dspc/baseline/bibfs_counting.h"

#include <algorithm>

namespace dspc {

BiBfsCounter::BiBfsCounter(const Graph& graph) : graph_(&graph) {
  const size_t n = graph.NumVertices();
  fwd_.dist.assign(n, kInfDistance);
  fwd_.count.assign(n, 0);
  bwd_.dist.assign(n, kInfDistance);
  bwd_.count.assign(n, 0);
}

bool BiBfsCounter::ExpandLevel(Side* side) {
  if (side->frontier.empty()) return false;
  side->next.clear();
  for (const Vertex v : side->frontier) {
    for (const Vertex w : graph_->Neighbors(v)) {
      if (side->dist[w] == kInfDistance) {
        side->dist[w] = side->level + 1;
        side->count[w] = side->count[v];
        side->next.push_back(w);
        touched_.push_back(w);
      } else if (side->dist[w] == side->level + 1) {
        side->count[w] += side->count[v];
      }
    }
  }
  ++side->level;
  std::swap(side->frontier, side->next);
  return true;
}

SpcResult BiBfsCounter::Query(Vertex s, Vertex t) {
  const size_t n = graph_->NumVertices();
  if (s >= n || t >= n) return SpcResult{};
  if (s == t) return SpcResult{0, 1};

  touched_.clear();
  fwd_.level = 0;
  bwd_.level = 0;
  fwd_.dist[s] = 0;
  fwd_.count[s] = 1;
  bwd_.dist[t] = 0;
  bwd_.count[t] = 1;
  fwd_.frontier.assign(1, s);
  bwd_.frontier.assign(1, t);
  touched_.push_back(s);
  touched_.push_back(t);

  SpcResult result;
  while (true) {
    // Grow the cheaper side (paper: "the side with the smaller queue").
    Side* grow = fwd_.frontier.size() <= bwd_.frontier.size() ? &fwd_ : &bwd_;
    Side* other = grow == &fwd_ ? &bwd_ : &fwd_;
    if (grow->frontier.empty()) break;  // disconnected
    if (!ExpandLevel(grow)) break;

    // Meeting check over the freshly completed level: counts on both sides
    // are final for these vertices, and each shortest path crosses this
    // level set exactly once.
    Distance best = kInfDistance;
    for (const Vertex w : grow->frontier) {
      if (other->dist[w] != kInfDistance) {
        best = std::min(best, grow->dist[w] + other->dist[w]);
      }
    }
    if (best != kInfDistance) {
      PathCount total = 0;
      for (const Vertex w : grow->frontier) {
        if (other->dist[w] != kInfDistance &&
            grow->dist[w] + other->dist[w] == best) {
          total += grow->count[w] * other->count[w];
        }
      }
      result = SpcResult{best, total};
      break;
    }
  }

  last_visited_ = touched_.size();
  for (const Vertex v : touched_) {
    fwd_.dist[v] = kInfDistance;
    fwd_.count[v] = 0;
    bwd_.dist[v] = kInfDistance;
    bwd_.count[v] = 0;
  }
  fwd_.frontier.clear();
  bwd_.frontier.clear();
  return result;
}

SpcResult BiBfsCountPair(const Graph& graph, Vertex s, Vertex t) {
  BiBfsCounter counter(graph);
  return counter.Query(s, t);
}

}  // namespace dspc
