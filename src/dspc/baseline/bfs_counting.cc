#include "dspc/baseline/bfs_counting.h"

#include <queue>

namespace dspc {

namespace {

/// Shared BFS-counting kernel. NeighborsFn maps a vertex to a range of
/// neighbor vertices. If `target` is valid, stops once target's level is
/// fully processed (counts into `target` are then final).
template <typename NeighborsFn>
SsspCounts BfsCountImpl(size_t n, Vertex source, NeighborsFn&& neighbors,
                        Vertex target) {
  SsspCounts out;
  out.dist.assign(n, kInfDistance);
  out.count.assign(n, 0);
  if (source >= n) return out;
  out.dist[source] = 0;
  out.count[source] = 1;
  std::queue<Vertex> queue;
  queue.push(source);
  while (!queue.empty()) {
    const Vertex v = queue.front();
    queue.pop();
    // Once we pop a vertex strictly deeper than the target, every path to
    // target has been accumulated.
    if (target != kInvalidVertex && out.dist[v] > out.dist[target]) break;
    for (const Vertex w : neighbors(v)) {
      if (out.dist[w] == kInfDistance) {
        out.dist[w] = out.dist[v] + 1;
        out.count[w] = out.count[v];
        queue.push(w);
      } else if (out.dist[w] == out.dist[v] + 1) {
        out.count[w] += out.count[v];
      }
    }
  }
  return out;
}

}  // namespace

SsspCounts BfsCount(const Graph& graph, Vertex source) {
  return BfsCountImpl(
      graph.NumVertices(), source,
      [&](Vertex v) -> const std::vector<Vertex>& { return graph.Neighbors(v); },
      kInvalidVertex);
}

SpcResult BfsCountPair(const Graph& graph, Vertex s, Vertex t) {
  if (s >= graph.NumVertices() || t >= graph.NumVertices()) return SpcResult{};
  if (s == t) return SpcResult{0, 1};
  const SsspCounts sssp = BfsCountImpl(
      graph.NumVertices(), s,
      [&](Vertex v) -> const std::vector<Vertex>& { return graph.Neighbors(v); },
      t);
  return SpcResult{sssp.dist[t], sssp.count[t]};
}

SsspCounts BfsCount(const Digraph& graph, Vertex source) {
  return BfsCountImpl(
      graph.NumVertices(), source,
      [&](Vertex v) -> const std::vector<Vertex>& {
        return graph.OutNeighbors(v);
      },
      kInvalidVertex);
}

SsspCounts BfsCountReverse(const Digraph& graph, Vertex source) {
  return BfsCountImpl(
      graph.NumVertices(), source,
      [&](Vertex v) -> const std::vector<Vertex>& {
        return graph.InNeighbors(v);
      },
      kInvalidVertex);
}

SpcResult BfsCountPair(const Digraph& graph, Vertex s, Vertex t) {
  if (s >= graph.NumVertices() || t >= graph.NumVertices()) return SpcResult{};
  if (s == t) return SpcResult{0, 1};
  const SsspCounts sssp = BfsCountImpl(
      graph.NumVertices(), s,
      [&](Vertex v) -> const std::vector<Vertex>& {
        return graph.OutNeighbors(v);
      },
      t);
  return SpcResult{sssp.dist[t], sssp.count[t]};
}

}  // namespace dspc
