// Bidirectional BFS shortest-path counting — the online query competitor
// in the paper's Figure 7(c) ("BiBFS ... conducts BFS searches from both
// query vertices and selects the side with the smaller queue size to
// continue each iteration until a common vertex from both sides is found").

#ifndef DSPC_BASELINE_BIBFS_COUNTING_H_
#define DSPC_BASELINE_BIBFS_COUNTING_H_

#include "dspc/baseline/bfs_counting.h"
#include "dspc/graph/graph.h"

namespace dspc {

/// Reusable bidirectional-BFS engine. Keeping one instance across queries
/// amortizes the O(n) scratch arrays: per query, only touched entries are
/// reset, making query cost proportional to the searched ball, not n.
class BiBfsCounter {
 public:
  explicit BiBfsCounter(const Graph& graph);

  /// Shortest distance and path count between s and t.
  ///
  /// Level-synchronized expansion from both endpoints, always growing the
  /// side with the smaller frontier. When a freshly completed level meets
  /// the other side's settled set at total distance mu, every shortest path
  /// crosses that level set in exactly one vertex, so
  /// sum over the meeting vertices of count_s * count_t is exact.
  SpcResult Query(Vertex s, Vertex t);

  /// Vertices visited by the most recent query (for instrumentation).
  size_t last_visited() const { return last_visited_; }

 private:
  struct Side {
    std::vector<Distance> dist;
    std::vector<PathCount> count;
    std::vector<Vertex> frontier;
    std::vector<Vertex> next;
    Distance level = 0;
  };

  /// Expands `side` by one full level; returns false if the frontier was
  /// exhausted (component fully explored).
  bool ExpandLevel(Side* side);

  const Graph* graph_;
  Side fwd_;
  Side bwd_;
  std::vector<Vertex> touched_;  // entries to reset after a query
  size_t last_visited_ = 0;
};

/// One-shot convenience wrapper around BiBfsCounter.
SpcResult BiBfsCountPair(const Graph& graph, Vertex s, Vertex t);

}  // namespace dspc

#endif  // DSPC_BASELINE_BIBFS_COUNTING_H_
