// Textbook BFS shortest-path counting (paper Section 1): ground truth for
// every test in the repository and the single-source building block used
// by Brandes betweenness.

#ifndef DSPC_BASELINE_BFS_COUNTING_H_
#define DSPC_BASELINE_BFS_COUNTING_H_

#include <vector>

#include "dspc/common/types.h"
#include "dspc/graph/digraph.h"
#include "dspc/graph/graph.h"

namespace dspc {

/// Distance and number of shortest paths for one vertex pair. Disconnected
/// pairs report {kInfDistance, 0}.
struct SpcResult {
  Distance dist = kInfDistance;
  PathCount count = 0;

  friend bool operator==(const SpcResult&, const SpcResult&) = default;
};

/// Per-vertex single-source results.
struct SsspCounts {
  std::vector<Distance> dist;   ///< dist[v] = sd(source, v)
  std::vector<PathCount> count;  ///< count[v] = spc(source, v)
};

/// Single-source BFS with path counting. O(n + m).
SsspCounts BfsCount(const Graph& graph, Vertex source);

/// Pair query via BFS from `s`, early-exit once `t`'s level completes.
SpcResult BfsCountPair(const Graph& graph, Vertex s, Vertex t);

/// Directed single-source counting (follows out-arcs).
SsspCounts BfsCount(const Digraph& graph, Vertex source);

/// Directed single-source counting on the reverse graph (follows in-arcs):
/// dist[v] = sd(v, source).
SsspCounts BfsCountReverse(const Digraph& graph, Vertex source);

/// Directed pair query s -> t.
SpcResult BfsCountPair(const Digraph& graph, Vertex s, Vertex t);

}  // namespace dspc

#endif  // DSPC_BASELINE_BFS_COUNTING_H_
