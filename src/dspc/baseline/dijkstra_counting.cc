#include "dspc/baseline/dijkstra_counting.h"

#include <queue>
#include <utility>

namespace dspc {

namespace {

using QueueEntry = std::pair<Distance, Vertex>;  // (tentative dist, vertex)

SsspCounts DijkstraImpl(const WeightedGraph& graph, Vertex source,
                        Vertex target) {
  const size_t n = graph.NumVertices();
  SsspCounts out;
  out.dist.assign(n, kInfDistance);
  out.count.assign(n, 0);
  if (source >= n) return out;
  out.dist[source] = 0;
  out.count[source] = 1;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      heap;
  heap.push({0, source});
  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (d > out.dist[v]) continue;  // stale entry
    // All paths into `target` are final once we settle a vertex beyond it.
    if (target != kInvalidVertex && d > out.dist[target]) break;
    for (const WeightedNeighbor& nb : graph.Neighbors(v)) {
      const Distance nd = d + nb.w;
      if (nd < out.dist[nb.to]) {
        out.dist[nb.to] = nd;
        out.count[nb.to] = out.count[v];
        heap.push({nd, nb.to});
      } else if (nd == out.dist[nb.to]) {
        out.count[nb.to] += out.count[v];
      }
    }
  }
  return out;
}

}  // namespace

SsspCounts DijkstraCount(const WeightedGraph& graph, Vertex source) {
  return DijkstraImpl(graph, source, kInvalidVertex);
}

SpcResult DijkstraCountPair(const WeightedGraph& graph, Vertex s, Vertex t) {
  if (s >= graph.NumVertices() || t >= graph.NumVertices()) return SpcResult{};
  if (s == t) return SpcResult{0, 1};
  const SsspCounts sssp = DijkstraImpl(graph, s, t);
  return SpcResult{sssp.dist[t], sssp.count[t]};
}

}  // namespace dspc
