// Parallel HP-SPC construction (PSPC direction, DESIGN.md §12).
//
// Two complementary forms of parallelism over `common/ThreadPool`:
//
//  1. Rank-window batching: a window of consecutive ranks runs its pruned
//     BFSes concurrently, each pruning only against the index prefix
//     completed by earlier windows. A serial rank-ordered merge then
//     re-runs exactly the hubs whose batch-mates turned out to influence
//     them (hub g influences hub h only if g's merged output labels h —
//     covered queries see only hubs loaded from L(h)), so the result is
//     label-identical to the sequential builder, not merely
//     query-equivalent.
//
//  2. Intra-hub frontier parallelism: the few top-rank hubs visit most of
//     the graph and would serialize any batch; their BFS instead runs
//     level-synchronously with the frontier split into fixed grains,
//     discovery via compare-exchange on atomic distances and path counts
//     accumulated with commutative fetch-adds — again exactly the
//     sequential per-hub result.
//
// Either way the output satisfies SpcIndex::operator== against
// BuildSpcIndex under the same ordering, for every thread count and
// strategy, so v2 serializations stay byte-identical and checkpoint
// digests remain reproducible (tests/parallel_build_test.cc pins this).

#ifndef DSPC_CORE_PARALLEL_BUILD_H_
#define DSPC_CORE_PARALLEL_BUILD_H_

#include <cstddef>

#include "dspc/core/spc_index.h"
#include "dspc/graph/graph.h"
#include "dspc/graph/ordering.h"

namespace dspc {

class ThreadPool;

/// How BuildSpcIndexParallel partitions hub BFSes across threads.
enum class BuildBatchStrategy {
  /// Frontier-parallel for the giant top-rank hubs, then rank windows
  /// once pruned BFS trees stay small. The production default.
  kAuto,
  /// Rank windows for every hub, including the top ranks where the merge
  /// degenerates to serial re-runs. Exists to stress the suspect/re-run
  /// protocol in tests.
  kRankWindow,
  /// Frontier-parallel for every hub, including the tail where frontiers
  /// are tiny. Exists to stress the level-synchronous BFS in tests.
  kFrontier,
};

/// Options for BuildSpcIndexParallel.
struct ParallelBuildOptions {
  /// Total build parallelism. 0 = hardware concurrency (capped at
  /// ThreadPool::kMaxThreads), but graphs below
  /// kParallelBuildMinVertices fall back to the sequential builder —
  /// explicit values always take the parallel path; 1 = sequential.
  unsigned threads = 0;
  BuildBatchStrategy batch_strategy = BuildBatchStrategy::kAuto;
  /// Hubs per rank-window batch. 0 = auto (max(32, 8 * threads)).
  size_t rank_window = 0;
};

/// With threads == 0 (auto), graphs smaller than this build sequentially:
/// the pool + per-worker scratch cost is not amortized below it.
inline constexpr size_t kParallelBuildMinVertices = 4096;

/// Builds the SPC-Index of `graph` under `ordering` in parallel. The
/// result is label-identical to BuildSpcIndex(graph, ordering) — same
/// entries, same serialization — for every options value. If `pool` is
/// null a transient pool with `options.threads` workers is created.
SpcIndex BuildSpcIndexParallel(const Graph& graph, VertexOrdering ordering,
                               const ParallelBuildOptions& options = {},
                               ThreadPool* pool = nullptr);

/// Convenience overload: builds the ordering first (degree-based by
/// default), then the index.
SpcIndex BuildSpcIndexParallel(const Graph& graph,
                               const OrderingOptions& ordering_options,
                               const ParallelBuildOptions& options = {},
                               ThreadPool* pool = nullptr);

}  // namespace dspc

#endif  // DSPC_CORE_PARALLEL_BUILD_H_
