// DecSPC: decremental maintenance of the SPC-Index for edge deletion
// (paper §3.2, Algorithms 4-6).
//
// Deleting (a, b) can lengthen distances, so stale labels are poisonous
// and must be found. DecSPC first classifies affected vertices
// (SrrSEARCH, Algorithm 5):
//   SR ("sender and receiver"): labels (v,.,.) with v as hub may need to
//      be renewed/inserted/deleted — v is a common hub of a and b
//      (Condition A) or every shortest path from v to the far endpoint
//      crosses (a, b), i.e. spc(v,a) = spc(v,b) (Condition B);
//   R  ("receiver only"): L(v) may change but no label uses v as hub.
// Only SR hubs re-run a rank-pruned BFS over the post-deletion graph
// (DecUPDATE, Algorithm 6), touching labels only of vertices in the
// *opposite* SR u R (Lemma 3.14). Labels whose hub was a common hub of a
// and b and that the BFS never re-visited are removed afterwards
// (dominated or disconnected).
//
// The §3.2.3 isolated-vertex optimization short-circuits deletions that
// detach a degree-1, lower-ranked endpoint: its label set collapses to
// the self label and nothing else needs to change.

#ifndef DSPC_CORE_DEC_SPC_H_
#define DSPC_CORE_DEC_SPC_H_

#include <cstdint>
#include <vector>

#include "dspc/core/spc_index.h"
#include "dspc/core/update_stats.h"
#include "dspc/graph/graph.h"

namespace dspc {

/// Decremental updater. Holds n-sized scratch reused across updates; one
/// instance per (graph, index) pair. Not thread-safe.
class DecSpc {
 public:
  struct Options {
    /// Disables the §3.2.3 fast path (ablation bench).
    bool enable_isolated_vertex_opt = true;
  };

  /// Both pointers must outlive the updater; the index must currently be
  /// a valid SPC-Index of *graph.
  DecSpc(Graph* graph, SpcIndex* index) : DecSpc(graph, index, Options()) {}
  DecSpc(Graph* graph, SpcIndex* index, const Options& options);

  /// Deletes edge (a, b) from the graph and updates the index
  /// (Algorithm 4). stats.applied is false if the edge was absent.
  UpdateStats RemoveEdge(Vertex a, Vertex b);

  /// Grows scratch after vertices were added to the graph/index.
  void Resize();

 private:
  // Which affected side a vertex was classified into by SrrSEARCH.
  enum : uint8_t { kSideNone = 0, kSideA = 1, kSideB = 2 };

  /// Algorithm 5: BFS from `from` on the pre-deletion graph, classifying
  /// the vertices with a shortest path through (a, b) toward `towards`
  /// into SR (`sr`) and R (`r`).
  void SrrSearch(Vertex from, Vertex towards, std::vector<Vertex>* sr,
                 std::vector<Vertex>* r, UpdateStats* stats);

  /// Algorithm 6: rank-pruned BFS from hub vertex `hv` over the
  /// post-deletion graph; updates labels of opposite-side vertices and,
  /// if `h_ab`, removes never-revisited labels afterwards.
  void DecUpdate(Vertex hv, uint8_t opposite_side,
                 const std::vector<Vertex>& opposite_vertices, bool h_ab,
                 UpdateStats* stats);

  /// §3.2.3 fast path. Returns true if it handled the deletion.
  bool TryIsolatedVertexOpt(Vertex a, Vertex b, UpdateStats* stats);

  Graph* graph_;
  SpcIndex* index_;
  Options options_;

  HubCache cache_;
  std::vector<Distance> dist_;
  std::vector<PathCount> count_;
  std::vector<Vertex> queue_;
  std::vector<Vertex> touched_;

  std::vector<uint8_t> side_of_;         // by vertex: kSideA / kSideB
  std::vector<Vertex> side_touched_;
  std::vector<uint8_t> lab_mark_;        // by rank: hub in L(a) cap L(b)
  std::vector<Rank> lab_touched_;
  std::vector<uint8_t> updated_;         // U[.] of Algorithm 6, by vertex
  std::vector<Vertex> updated_touched_;
};

}  // namespace dspc

#endif  // DSPC_CORE_DEC_SPC_H_
