// Parallel HP-SPC construction. Correctness argument in DESIGN.md §12;
// the sequential loop this must match label-for-label is hp_spc.cc.

#include "dspc/core/parallel_build.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "dspc/common/thread_pool.h"
#include "dspc/common/types.h"
#include "dspc/core/hp_spc.h"

namespace dspc {
namespace {

/// One label a hub's pruned BFS would insert, buffered until the merge.
struct PendingLabel {
  Vertex v;
  Distance dist;
  PathCount count;
};

/// Per-worker scratch for the batched pruned BFS. n-sized arrays reset via
/// the touched list, exactly like the sequential builder's.
struct BfsScratch {
  std::vector<Distance> dist;
  std::vector<PathCount> count;
  std::vector<Vertex> queue;
  std::vector<Vertex> touched;
  HubCache cache;

  explicit BfsScratch(size_t n)
      : dist(n, kInfDistance), count(n, 0), cache(n) {}
};

/// Runs hub h's rank-restricted pruned BFS against `index`, buffering the
/// labels it would insert into *out instead of inserting them. Mirrors the
/// sequential loop in hp_spc.cc statement for statement; buffering is
/// behaviourally identical because a hub's own labels land in L(v) of
/// vertices whose prune check has already happened, so its BFS never reads
/// them.
void RunPrunedHubBfs(const Graph& graph, const VertexOrdering& order,
                     const Rank h, const SpcIndex& index, BfsScratch& ws,
                     std::vector<PendingLabel>* out) {
  out->clear();
  const Vertex hv = order.vertex_of[h];
  ws.cache.Load(index.Labels(hv));
  ws.dist[hv] = 0;
  ws.count[hv] = 1;
  ws.queue.clear();
  ws.queue.push_back(hv);
  ws.touched.clear();
  ws.touched.push_back(hv);
  for (size_t head = 0; head < ws.queue.size(); ++head) {
    const Vertex v = ws.queue[head];
    if (v != hv) {
      const SpcResult covered = ws.cache.Query(index.Labels(v));
      if (covered.dist < ws.dist[v]) continue;  // strictly covered: prune
      out->push_back({v, ws.dist[v], ws.count[v]});
    }
    for (const Vertex w : graph.Neighbors(v)) {
      if (order.rank_of[w] <= h) continue;  // restricted to lower ranks
      if (ws.dist[w] == kInfDistance) {
        ws.dist[w] = ws.dist[v] + 1;
        ws.count[w] = ws.count[v];
        ws.queue.push_back(w);
        ws.touched.push_back(w);
      } else if (ws.dist[w] == ws.dist[v] + 1) {
        ws.count[w] += ws.count[v];
      }
    }
  }
  for (const Vertex v : ws.touched) {
    ws.dist[v] = kInfDistance;
    ws.count[v] = 0;
  }
}

/// Frontier split granularity for the level-synchronous mode. Small enough
/// to balance skewed neighbor lists, large enough that per-grain buffer
/// bookkeeping stays cheap.
constexpr size_t kFrontierGrain = 128;

/// Scratch for the intra-hub frontier mode: atomic distance/count arrays
/// so concurrent expansions of one level can discover and accumulate into
/// the next level without locks.
struct FrontierScratch {
  std::vector<std::atomic<Distance>> dist;
  std::vector<std::atomic<PathCount>> count;
  std::vector<Vertex> frontier;
  std::vector<Vertex> next;
  std::vector<Vertex> touched;
  HubCache cache;
  /// Per-grain output and next-frontier buffers, concatenated serially in
  /// grain order after each level so the result is schedule-independent.
  std::vector<std::vector<PendingLabel>> grain_out;
  std::vector<std::vector<Vertex>> grain_next;

  explicit FrontierScratch(size_t n) : dist(n), count(n), cache(n) {
    for (auto& d : dist) d.store(kInfDistance, std::memory_order_relaxed);
    for (auto& c : count) c.store(0, std::memory_order_relaxed);
  }
};

/// Runs hub h's pruned BFS level-synchronously, parallelizing each level's
/// frontier over `pool`. Exactly equivalent to the sequential BFS: a FIFO
/// queue pops in level order, discovery races are resolved by a
/// compare-exchange from "unvisited" (every winner records the same
/// distance), and count accumulation is a sum of the same contributions in
/// some order — addition mod 2^64 is commutative, so the totals match.
/// Cross-level visibility rides on ParallelFor's fork/join rendezvous.
void RunFrontierHubBfs(const Graph& graph, const VertexOrdering& order,
                       const Rank h, const SpcIndex& index,
                       FrontierScratch& ws, ThreadPool* pool,
                       std::vector<PendingLabel>* out) {
  constexpr auto relaxed = std::memory_order_relaxed;
  out->clear();
  const Vertex hv = order.vertex_of[h];
  ws.cache.Load(index.Labels(hv));
  ws.dist[hv].store(0, relaxed);
  ws.count[hv].store(1, relaxed);
  ws.frontier.assign(1, hv);
  ws.touched.assign(1, hv);
  Distance level = 0;
  while (!ws.frontier.empty()) {
    const size_t fsize = ws.frontier.size();
    const size_t grains = (fsize + kFrontierGrain - 1) / kFrontierGrain;
    if (ws.grain_out.size() < grains) {
      ws.grain_out.resize(grains);
      ws.grain_next.resize(grains);
    }
    const auto expand = [&](size_t g) {
      std::vector<PendingLabel>& ob = ws.grain_out[g];
      std::vector<Vertex>& nb = ws.grain_next[g];
      ob.clear();
      nb.clear();
      const size_t lo = g * kFrontierGrain;
      const size_t hi = std::min(fsize, lo + kFrontierGrain);
      for (size_t i = lo; i < hi; ++i) {
        const Vertex v = ws.frontier[i];
        const PathCount cv = ws.count[v].load(relaxed);
        if (v != hv) {
          const SpcResult covered = ws.cache.Query(index.Labels(v));
          if (covered.dist < level) continue;
          ob.push_back({v, level, cv});
        }
        for (const Vertex w : graph.Neighbors(v)) {
          if (order.rank_of[w] <= h) continue;
          Distance dw = ws.dist[w].load(relaxed);
          if (dw == kInfDistance &&
              ws.dist[w].compare_exchange_strong(dw, level + 1, relaxed)) {
            dw = level + 1;
            nb.push_back(w);  // discovery winner owns w's bookkeeping
          }
          if (dw == level + 1) ws.count[w].fetch_add(cv, relaxed);
        }
      }
    };
    if (pool != nullptr && grains > 1) {
      pool->ParallelFor(grains, expand);
    } else {
      for (size_t g = 0; g < grains; ++g) expand(g);
    }
    ws.next.clear();
    for (size_t g = 0; g < grains; ++g) {
      out->insert(out->end(), ws.grain_out[g].begin(), ws.grain_out[g].end());
      ws.next.insert(ws.next.end(), ws.grain_next[g].begin(),
                     ws.grain_next[g].end());
      ws.touched.insert(ws.touched.end(), ws.grain_next[g].begin(),
                        ws.grain_next[g].end());
    }
    std::swap(ws.frontier, ws.next);
    ++level;
  }
  for (const Vertex v : ws.touched) {
    ws.dist[v].store(kInfDistance, relaxed);
    ws.count[v].store(0, relaxed);
  }
}

}  // namespace

SpcIndex BuildSpcIndexParallel(const Graph& graph, VertexOrdering ordering,
                               const ParallelBuildOptions& options,
                               ThreadPool* pool) {
  const size_t n = graph.NumVertices();
  unsigned threads = options.threads;
  if (pool != nullptr) {
    threads = pool->size();
  } else if (threads == 0) {
    if (n < kParallelBuildMinVertices) {
      return BuildSpcIndex(graph, std::move(ordering));
    }
    threads = std::min(std::thread::hardware_concurrency(),
                       ThreadPool::kMaxThreads);
  }
  threads = std::clamp(threads, 1u, ThreadPool::kMaxThreads);
  if (threads <= 1) return BuildSpcIndex(graph, std::move(ordering));

  std::unique_ptr<ThreadPool> owned;
  if (pool == nullptr) {
    owned = std::make_unique<ThreadPool>(threads);
    pool = owned.get();
  }

  SpcIndex index(std::move(ordering));
  const VertexOrdering& order = index.ordering();

  const size_t window = options.rank_window != 0
                            ? options.rank_window
                            : std::max<size_t>(32, 8 * threads);

  std::vector<BfsScratch> scratch;
  scratch.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) scratch.emplace_back(n);
  std::unique_ptr<FrontierScratch> frontier_ws;  // built on first use

  std::vector<std::vector<PendingLabel>> outs(window);
  std::vector<uint8_t> suspect(window, 0);

  // kAuto starts frontier-parallel (the top-rank hubs visit most of the
  // graph and label each other, so a window there degenerates to serial
  // re-runs) and switches to rank windows for good once pruning keeps
  // BFS trees small.
  bool frontier_phase = options.batch_strategy != BuildBatchStrategy::kRankWindow;
  const size_t small_tree = std::max<size_t>(64, n / 64);
  int small_streak = 0;

  Rank h = 0;
  while (h < n) {
    if (frontier_phase) {
      const Vertex hv = order.vertex_of[h];
      if (graph.Degree(hv) == 0) {
        ++h;
        continue;
      }
      if (frontier_ws == nullptr) {
        frontier_ws = std::make_unique<FrontierScratch>(n);
      }
      std::vector<PendingLabel>& out = outs[0];
      RunFrontierHubBfs(graph, order, h, index, *frontier_ws, pool, &out);
      for (const PendingLabel& e : out) {
        index.InsertLabel(e.v, LabelEntry{h, e.dist, e.count});
      }
      if (options.batch_strategy == BuildBatchStrategy::kAuto) {
        small_streak = out.size() <= small_tree ? small_streak + 1 : 0;
        if (small_streak >= 4) frontier_phase = false;
      }
      ++h;
      continue;
    }

    // Rank-window batch [h, end).
    const Rank end = static_cast<Rank>(std::min<size_t>(n, h + window));
    const size_t batch = end - h;
    // Phase A: every hub in the window runs its pruned BFS against the
    // prefix index completed by earlier windows, concurrently. Workers
    // only read `index` (const) and write their own scratch + out buffer.
    pool->ParallelFor(threads, [&](size_t slot) {
      for (size_t k = slot; k < batch; k += threads) {
        const Rank hk = h + static_cast<Rank>(k);
        outs[k].clear();
        if (graph.Degree(order.vertex_of[hk]) == 0) continue;
        RunPrunedHubBfs(graph, order, hk, index, scratch[slot], &outs[k]);
      }
    });
    // Phase B: serial rank-ordered merge. A hub whose label set was
    // extended by an earlier batch-mate's merged output is "suspect" —
    // its Phase A run pruned against a stale L(hub) — and is re-run
    // against the now sequential-exact prefix before merging. Everything
    // else merges as-is (DESIGN.md §12 proves the outputs are equal).
    std::fill(suspect.begin(), suspect.begin() + batch, 0);
    for (size_t k = 0; k < batch; ++k) {
      const Rank hk = h + static_cast<Rank>(k);
      if (graph.Degree(order.vertex_of[hk]) == 0) continue;
      if (suspect[k]) {
        RunPrunedHubBfs(graph, order, hk, index, scratch[0], &outs[k]);
      }
      for (const PendingLabel& e : outs[k]) {
        index.InsertLabel(e.v, LabelEntry{hk, e.dist, e.count});
        const Rank rv = order.rank_of[e.v];
        if (rv < end) suspect[rv - h] = 1;  // rv > hk always holds
      }
    }
    h = end;
  }
  return index;
}

SpcIndex BuildSpcIndexParallel(const Graph& graph,
                               const OrderingOptions& ordering_options,
                               const ParallelBuildOptions& options,
                               ThreadPool* pool) {
  return BuildSpcIndexParallel(graph, BuildOrdering(graph, ordering_options),
                               options, pool);
}

}  // namespace dspc
