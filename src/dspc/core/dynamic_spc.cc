#include "dspc/core/dynamic_spc.h"

#include <algorithm>
#include <thread>

#include "dspc/core/hp_spc.h"
#include "dspc/graph/update_stream.h"

namespace dspc {

DynamicSpcIndex::DynamicSpcIndex(Graph graph, const DynamicSpcOptions& options)
    : graph_(std::move(graph)),
      index_(BuildSpcIndex(graph_, options.ordering)),
      options_(options),
      inc_(&graph_, &index_),
      dec_(&graph_, &index_, options.dec) {
  entries_at_build_ = index_.SizeStats().total_entries;
}

DynamicSpcIndex::DynamicSpcIndex(Graph graph, SpcIndex index,
                                 const DynamicSpcOptions& options)
    : graph_(std::move(graph)),
      index_(std::move(index)),
      options_(options),
      inc_(&graph_, &index_),
      dec_(&graph_, &index_, options.dec) {
  entries_at_build_ = index_.SizeStats().total_entries;
}

UpdateStats DynamicSpcIndex::InsertEdge(Vertex a, Vertex b) {
  const UpdateStats stats = inc_.InsertEdge(a, b);
  if (stats.applied) {
    ++updates_since_build_;
    BumpGeneration();
    MaybePolicyRebuild();
  }
  return stats;
}

UpdateStats DynamicSpcIndex::RemoveEdge(Vertex a, Vertex b) {
  const UpdateStats stats = dec_.RemoveEdge(a, b);
  if (stats.applied) {
    ++updates_since_build_;
    BumpGeneration();
    MaybePolicyRebuild();
  }
  return stats;
}

Vertex DynamicSpcIndex::AddVertex() {
  graph_.AddVertex();
  const Vertex v = index_.AddVertex();
  inc_.Resize();
  dec_.Resize();
  BumpGeneration();
  return v;
}

UpdateStats DynamicSpcIndex::RemoveVertex(Vertex v) {
  UpdateStats total;
  if (!graph_.IsValidVertex(v)) return total;
  // Deleting a vertex is a sequence of decremental edge updates (paper
  // Section 3). Copy the adjacency: RemoveEdge mutates it.
  const std::vector<Vertex> nbrs = graph_.Neighbors(v);
  for (const Vertex u : nbrs) {
    total.Accumulate(RemoveEdge(v, u));
  }
  return total;
}

UpdateStats DynamicSpcIndex::Apply(const Update& update) {
  if (update.kind == Update::Kind::kInsert) {
    return InsertEdge(update.edge.u, update.edge.v);
  }
  return RemoveEdge(update.edge.u, update.edge.v);
}

UpdateStats DynamicSpcIndex::ApplyBatch(const std::vector<Update>& updates) {
  // Cancel exact inverse pairs: an insert later undone by a delete of the
  // same edge (or vice versa) never needs to touch the index. Matching is
  // last-in-first-out per edge so interleavings like I-D-I keep one
  // insert, as required for the final graph to be correct.
  auto key = [](const Edge& e) {
    const Vertex lo = std::min(e.u, e.v);
    const Vertex hi = std::max(e.u, e.v);
    return (static_cast<uint64_t>(lo) << 32) | hi;
  };
  std::vector<bool> cancelled(updates.size(), false);
  std::unordered_map<uint64_t, std::vector<size_t>> open;  // index stack
  for (size_t i = 0; i < updates.size(); ++i) {
    const uint64_t k = key(updates[i].edge);
    auto& stack = open[k];
    if (!stack.empty() &&
        updates[stack.back()].kind != updates[i].kind) {
      cancelled[stack.back()] = true;
      cancelled[i] = true;
      stack.pop_back();
    } else {
      stack.push_back(i);
    }
  }

  UpdateStats total;
  for (size_t i = 0; i < updates.size(); ++i) {
    if (cancelled[i]) continue;
    total.Accumulate(Apply(updates[i]));
  }
  return total;
}

std::shared_ptr<const FlatSpcIndex> DynamicSpcIndex::SnapshotForQueries(
    size_t queries) const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  if (flat_ != nullptr && flat_generation_ == generation_) return flat_;
  // Stale snapshot: let a short burst of queries ride on the mutable
  // index so interleaved update/query traffic doesn't rebuild per
  // update, then pay the O(total entries) refresh once.
  stale_queries_ += queries;
  if (stale_queries_ >= options_.snapshot_rebuild_after_queries) {
    RefreshSnapshotLocked();
    return flat_;
  }
  return nullptr;
}

SpcResult DynamicSpcIndex::Query(Vertex s, Vertex t) const {
  if (options_.enable_flat_snapshot) {
    if (const auto snap = SnapshotForQueries(1)) return snap->Query(s, t);
  }
  return index_.Query(s, t);
}

std::vector<SpcResult> DynamicSpcIndex::BatchQuery(
    const std::vector<std::pair<Vertex, Vertex>>& pairs,
    unsigned threads) const {
  if (options_.enable_flat_snapshot) {
    if (const auto snap = SnapshotForQueries(pairs.size())) {
      return snap->QueryManyParallel(pairs, threads);
    }
  }
  std::vector<SpcResult> results(pairs.size());
  if (threads == 0) threads = std::thread::hardware_concurrency();
  if (threads <= 1 || pairs.size() < 64) {
    for (size_t i = 0; i < pairs.size(); ++i) {
      results[i] = index_.Query(pairs[i].first, pairs[i].second);
    }
    return results;
  }
  threads = std::min<unsigned>(threads, 16);
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (unsigned w = 0; w < threads; ++w) {
    workers.emplace_back([&, w] {
      for (size_t i = w; i < pairs.size(); i += threads) {
        results[i] = index_.Query(pairs[i].first, pairs[i].second);
      }
    });
  }
  for (std::thread& t : workers) t.join();
  return results;
}

std::shared_ptr<const FlatSpcIndex> DynamicSpcIndex::FlatSnapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  RefreshSnapshotLocked();
  return flat_;
}

void DynamicSpcIndex::RefreshSnapshotLocked() const {
  if (flat_ != nullptr && flat_generation_ == generation_) return;
  // Publish a fresh snapshot instead of mutating the old one: readers
  // that still hold the previous shared_ptr keep a valid index.
  flat_ = std::make_shared<const FlatSpcIndex>(index_);
  flat_generation_ = generation_;
  stale_queries_ = 0;
  ++snapshot_rebuilds_;
}

void DynamicSpcIndex::Rebuild() {
  index_ = BuildSpcIndex(graph_, options_.ordering);
  inc_.Resize();
  dec_.Resize();
  updates_since_build_ = 0;
  entries_at_build_ = index_.SizeStats().total_entries;
  BumpGeneration();
}

void DynamicSpcIndex::MaybePolicyRebuild() {
  bool fire = false;
  if (options_.rebuild_after_updates > 0 &&
      updates_since_build_ >= options_.rebuild_after_updates) {
    fire = true;
  }
  if (!fire && options_.rebuild_growth_factor > 0.0 && entries_at_build_ > 0) {
    const size_t now = index_.SizeStats().total_entries;
    if (static_cast<double>(now) >
        options_.rebuild_growth_factor *
            static_cast<double>(entries_at_build_)) {
      fire = true;
    }
  }
  if (fire) {
    Rebuild();
    ++policy_rebuilds_;
  }
}

}  // namespace dspc
