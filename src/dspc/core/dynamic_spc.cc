#include "dspc/core/dynamic_spc.h"

#include <algorithm>
#include <mutex>
#include <thread>

#include "dspc/core/hp_spc.h"
#include "dspc/graph/update_stream.h"

namespace dspc {

namespace {

/// RAII writer-priority signal: raised for the whole update application,
/// including the wait for the exclusive lock (a reader-starved writer
/// spends most of its time exactly there).
class WriterScope {
 public:
  explicit WriterScope(std::atomic<uint32_t>* counter) : counter_(counter) {
    counter_->fetch_add(1, std::memory_order_relaxed);
  }
  ~WriterScope() { counter_->fetch_sub(1, std::memory_order_relaxed); }
  WriterScope(const WriterScope&) = delete;
  WriterScope& operator=(const WriterScope&) = delete;

 private:
  std::atomic<uint32_t>* counter_;
};

unsigned ResolveRebuildThreads(unsigned requested) {
  if (requested != 0) return requested;
  return std::clamp(std::thread::hardware_concurrency(), 1u, 8u);
}

}  // namespace

DynamicSpcIndex::DynamicSpcIndex(Graph graph, const DynamicSpcOptions& options)
    : graph_(std::move(graph)),
      index_(BuildSpcIndexParallel(graph_, options.ordering, options.build)),
      options_(options),
      inc_(&graph_, &index_),
      dec_(&graph_, &index_, options.dec) {
  InitSnapshots();
}

DynamicSpcIndex::DynamicSpcIndex(Graph graph, SpcIndex index,
                                 const DynamicSpcOptions& options)
    : graph_(std::move(graph)),
      index_(std::move(index)),
      options_(options),
      inc_(&graph_, &index_),
      dec_(&graph_, &index_, options.dec) {
  InitSnapshots();
}

void DynamicSpcIndex::InitSnapshots() {
  if (options_.initial_generation != 0) {
    generation_.store(options_.initial_generation, std::memory_order_release);
  }
  entries_at_build_ = index_.SizeStats().total_entries;
  num_vertices_.store(graph_.NumVertices(), std::memory_order_release);
  snapshot_shards_ = options_.snapshot.shards != 0
                         ? options_.snapshot.shards
                         : SnapshotOptions::kDefaultShards;
  ResetShardLayoutLocked();
  snapshots_ = std::make_unique<SnapshotManager>(
      [this](const FlatSpcIndex* prev) { return CopyDeltaForSnapshot(prev); },
      options_.snapshot.refresh, options_.snapshot.rebuild_after_queries,
      ResolveRebuildThreads(options_.snapshot.rebuild_threads));
  // Background serving reads only published snapshots, so publish one
  // before any query can arrive (also warms the serving path).
  if (options_.snapshot.enabled &&
      options_.snapshot.refresh == RefreshPolicy::kBackground) {
    snapshots_->RefreshNow(Generation());
  }
}

void DynamicSpcIndex::ResetShardLayoutLocked() {
  ++layout_stamp_;
  shard_layout_ = FlatSpcIndex::ComputeShardLayout(index_.NumVertices(),
                                                   snapshot_shards_);
  // Every shard starts dirty at the current generation: the stamp change
  // already forces the next refresh to be a full build.
  shard_dirty_gen_.assign(shard_layout_.count,
                          generation_.load(std::memory_order_relaxed));
  index_.ClearTouched();
}

void DynamicSpcIndex::NoteTouchedLocked() {
  const uint64_t gen = generation_.load(std::memory_order_relaxed);
  for (const Vertex v : index_.TouchedVertices()) {
    shard_dirty_gen_[v >> shard_layout_.shift] = gen;
  }
  index_.ClearTouched();
}

FlatSpcIndex::IndexDelta DynamicSpcIndex::CopyDeltaForSnapshot(
    const FlatSpcIndex* prev) const {
  // Delta copy-on-read: the shared lock excludes writers only for the
  // O(entries in dirty shards) label copies; the expensive packing runs
  // on the caller's thread with no lock held.
  std::shared_lock<std::shared_timed_mutex> lock(index_mu_);
  FlatSpcIndex::IndexDelta delta;
  delta.generation = Generation();
  delta.layout_stamp = layout_stamp_;
  delta.num_vertices = index_.NumVertices();
  delta.num_shards = snapshot_shards_;
  const bool incremental =
      prev != nullptr && prev->LayoutStamp() == layout_stamp_;
  if (!incremental) {
    delta.full = true;
    delta.ordering = index_.ordering();
  }
  for (size_t i = 0; i < shard_layout_.count; ++i) {
    if (incremental && shard_dirty_gen_[i] <= prev->ShardGeneration(i)) {
      continue;  // clean: the rebuild adopts prev's arena
    }
    delta.dirty.push_back(
        {i, index_.CopyLabelRange(shard_layout_.BeginOf(i),
                                  shard_layout_.EndOf(i, delta.num_vertices))});
  }
  return delta;
}

UpdateStats DynamicSpcIndex::InsertEdge(Vertex a, Vertex b) {
  WriterScope writer(&active_writers_);
  std::unique_lock<std::shared_timed_mutex> lock(index_mu_);
  const UpdateStats stats = inc_.InsertEdge(a, b);
  if (stats.applied) {
    ++updates_since_build_;
    BumpGeneration();
    NoteTouchedLocked();
    MaybePolicyRebuildLocked();
  } else {
    index_.ClearTouched();
  }
  return stats;
}

UpdateStats DynamicSpcIndex::RemoveEdge(Vertex a, Vertex b) {
  WriterScope writer(&active_writers_);
  std::unique_lock<std::shared_timed_mutex> lock(index_mu_);
  const UpdateStats stats = dec_.RemoveEdge(a, b);
  if (stats.applied) {
    ++updates_since_build_;
    BumpGeneration();
    NoteTouchedLocked();
    MaybePolicyRebuildLocked();
  } else {
    index_.ClearTouched();
  }
  return stats;
}

Vertex DynamicSpcIndex::AddVertex() {
  WriterScope writer(&active_writers_);
  std::unique_lock<std::shared_timed_mutex> lock(index_mu_);
  graph_.AddVertex();
  const Vertex v = index_.AddVertex();
  inc_.Resize();
  dec_.Resize();
  num_vertices_.store(graph_.NumVertices(), std::memory_order_release);
  BumpGeneration();
  // The vertex count changed, so shard boundaries (and the stale
  // snapshot's coverage) changed with it: new layout, full rebuild next.
  ResetShardLayoutLocked();
  return v;
}

UpdateStats DynamicSpcIndex::RemoveVertex(Vertex v) {
  UpdateStats total;
  // Deleting a vertex is a sequence of decremental edge updates (paper
  // Section 3). Copy the adjacency under the read lock: RemoveEdge
  // mutates it (and takes the write lock itself, so don't hold it here).
  std::vector<Vertex> nbrs;
  {
    std::shared_lock<std::shared_timed_mutex> lock(index_mu_);
    if (!graph_.IsValidVertex(v)) return total;
    nbrs = graph_.Neighbors(v);
  }
  for (const Vertex u : nbrs) {
    total.Accumulate(RemoveEdge(v, u));
  }
  return total;
}

UpdateStats DynamicSpcIndex::Apply(const Update& update) {
  if (update.kind == Update::Kind::kInsert) {
    return InsertEdge(update.edge.u, update.edge.v);
  }
  return RemoveEdge(update.edge.u, update.edge.v);
}

UpdateStats DynamicSpcIndex::ApplyBatch(std::span<const Update> updates,
                                        std::vector<WriteReport>* reports) {
  // Cancel exact inverse pairs: an insert later undone by a delete of the
  // same edge (or vice versa) never needs to touch the index. Matching is
  // last-in-first-out per edge so interleavings like I-D-I keep one
  // insert, as required for the final graph to be correct.
  auto key = [](const Edge& e) {
    const Vertex lo = std::min(e.u, e.v);
    const Vertex hi = std::max(e.u, e.v);
    return (static_cast<uint64_t>(lo) << 32) | hi;
  };
  std::vector<bool> cancelled(updates.size(), false);
  std::unordered_map<uint64_t, std::vector<size_t>> open;  // index stack
  for (size_t i = 0; i < updates.size(); ++i) {
    const uint64_t k = key(updates[i].edge);
    auto& stack = open[k];
    if (!stack.empty() &&
        updates[stack.back()].kind != updates[i].kind) {
      cancelled[stack.back()] = true;
      cancelled[i] = true;
      stack.pop_back();
    } else {
      stack.push_back(i);
    }
  }

  if (reports != nullptr) {
    reports->clear();
    reports->resize(updates.size());
  }
  UpdateStats total;
  for (size_t i = 0; i < updates.size(); ++i) {
    if (cancelled[i]) {
      if (reports != nullptr) {
        (*reports)[i].outcome = WriteReport::Outcome::kNoOp;
        (*reports)[i].reason = "cancelled against an exact inverse in the batch";
      }
      continue;
    }
    const UpdateStats stats = Apply(updates[i]);
    total.Accumulate(stats);
    if (reports != nullptr) {
      WriteReport& report = (*reports)[i];
      if (stats.applied) {
        report.outcome = WriteReport::Outcome::kApplied;
        report.reason = "applied";
        report.stats = stats;
        // Post-update generation: the read-your-writes floor for exactly
        // this update (a policy rebuild it triggered is folded in).
        report.generation = Generation();
      } else {
        report.outcome = WriteReport::Outcome::kNoOp;
        report.reason = updates[i].kind == Update::Kind::kInsert
                            ? "edge already present"
                            : "edge not present";
      }
    }
  }
  return total;
}

SnapshotManager::Pinned DynamicSpcIndex::AwaitSnapshotAtLeast(
    uint64_t generation) const {
  return snapshots_->AwaitGeneration(generation);
}

SnapshotManager::Pinned DynamicSpcIndex::AwaitSnapshotAtLeast(
    uint64_t generation, std::chrono::steady_clock::time_point deadline) const {
  return snapshots_->AwaitGeneration(generation, deadline);
}

SpcResult DynamicSpcIndex::QueryLive(Vertex s, Vertex t,
                                     uint64_t* generation) const {
  std::shared_lock<std::shared_timed_mutex> lock(index_mu_);
  if (generation != nullptr) *generation = Generation();
  if (!graph_.IsValidVertex(s) || !graph_.IsValidVertex(t)) {
    return {kInfDistance, 0};  // out-of-range ids are simply disconnected
  }
  return index_.Query(s, t);
}

bool DynamicSpcIndex::QueryLiveBefore(
    Vertex s, Vertex t, std::chrono::steady_clock::time_point deadline,
    SpcResult* out, uint64_t* generation) const {
  // try_lock_until with a past deadline degrades to a plain try-lock, so
  // an expired deadline still serves when no writer holds the lock.
  std::shared_lock<std::shared_timed_mutex> lock(index_mu_, std::defer_lock);
  if (!lock.try_lock_until(deadline)) return false;
  if (generation != nullptr) *generation = Generation();
  *out = graph_.IsValidVertex(s) && graph_.IsValidVertex(t)
             ? index_.Query(s, t)
             : SpcResult{kInfDistance, 0};
  return true;
}

SpcResult DynamicSpcIndex::Query(Vertex s, Vertex t) const {
  if (options_.snapshot.enabled) {
    const uint64_t generation = Generation();
    const auto pin = snapshots_->Acquire(generation, 1);
    if (Covers(pin, s, t)) {
      YieldForMaintenance(generation, pin.generation);
      return pin->Query(s, t);
    }
  }
  return QueryLive(s, t);
}

ThreadPool* DynamicSpcIndex::QueryPool() const {
  // Sized like the rebuild pool (hardware concurrency capped at 8): the
  // workers park on the facade for its whole lifetime once spawned, so
  // the cap bounds what one parallel batch costs a big machine forever.
  std::call_once(live_pool_once_, [this] {
    live_pool_ = std::make_unique<ThreadPool>(ResolveRebuildThreads(0));
  });
  return live_pool_.get();
}

ThreadPool* DynamicSpcIndex::PoolForBatch(size_t pairs,
                                          unsigned threads) const {
  // The go-parallel decision is QueryManyParallel's own predicate, asked
  // directly — duplicating it here would let the two drift and silently
  // reintroduce per-batch pool spawns.
  if (FlatSpcIndex::PlannedParallelism(pairs, threads) <= 1) return nullptr;
  return QueryPool();
}

/// Locked body of the live batch drivers; the caller holds the shared
/// lock so every answer reflects one consistent generation.
void DynamicSpcIndex::BatchQueryLiveLocked(
    std::span<const std::pair<Vertex, Vertex>> pairs, unsigned threads,
    std::vector<SpcResult>* results) const {
  results->resize(pairs.size());
  const auto query_one = [&](size_t i) {
    const auto [s, t] = pairs[i];
    (*results)[i] = graph_.IsValidVertex(s) && graph_.IsValidVertex(t)
                        ? index_.Query(s, t)
                        : SpcResult{kInfDistance, 0};
  };
  if (threads == 0) threads = std::thread::hardware_concurrency();
  if (threads <= 1 || pairs.size() < 64) {
    for (size_t i = 0; i < pairs.size(); ++i) query_one(i);
    return;
  }
  // Strided chunks over the shared pool (one fork-join region; the pool
  // serializes concurrent regions internally). Capping the chunk count at
  // `threads` honors the caller's parallelism bound even though the pool
  // itself is sized once.
  ThreadPool* pool = QueryPool();
  const unsigned chunks = std::min(threads, pool->size());
  pool->ParallelFor(chunks, [&](size_t w) {
    for (size_t i = w; i < pairs.size(); i += chunks) query_one(i);
  });
}

std::vector<SpcResult> DynamicSpcIndex::BatchQueryLive(
    std::span<const std::pair<Vertex, Vertex>> pairs, unsigned threads,
    uint64_t* generation) const {
  std::vector<SpcResult> results;
  std::shared_lock<std::shared_timed_mutex> lock(index_mu_);
  if (generation != nullptr) *generation = Generation();
  BatchQueryLiveLocked(pairs, threads, &results);
  return results;
}

bool DynamicSpcIndex::BatchQueryLiveBefore(
    std::span<const std::pair<Vertex, Vertex>> pairs, unsigned threads,
    std::chrono::steady_clock::time_point deadline,
    std::vector<SpcResult>* out, uint64_t* generation) const {
  (void)threads;  // see header: timed batches deliberately run serially
  std::shared_lock<std::shared_timed_mutex> lock(index_mu_, std::defer_lock);
  if (!lock.try_lock_until(deadline)) return false;
  if (generation != nullptr) *generation = Generation();
  BatchQueryLiveLocked(pairs, /*threads=*/1, out);
  return true;
}

std::vector<SpcResult> DynamicSpcIndex::BatchQuery(
    const std::vector<std::pair<Vertex, Vertex>>& pairs,
    unsigned threads) const {
  if (options_.snapshot.enabled) {
    const uint64_t generation = Generation();
    const auto pin = snapshots_->Acquire(generation, pairs.size());
    const bool covers_all =
        pin && std::all_of(pairs.begin(), pairs.end(), [&](const auto& p) {
          return Covers(pin, p.first, p.second);
        });
    if (covers_all) {
      YieldForMaintenance(generation, pin.generation);
      return pin->QueryManyParallel(pairs, threads,
                                    PoolForBatch(pairs.size(), threads));
    }
  }
  return BatchQueryLive(pairs, threads);
}

std::shared_ptr<const FlatSpcIndex> DynamicSpcIndex::FlatSnapshot() const {
  return snapshots_->AwaitGeneration(Generation()).snapshot;
}

SnapshotManager::Pinned DynamicSpcIndex::PinSnapshot() const {
  return snapshots_->Pin();
}

SnapshotManager::Pinned DynamicSpcIndex::WaitForFreshSnapshot() const {
  return snapshots_->AwaitGeneration(Generation());
}

void DynamicSpcIndex::Rebuild() {
  WriterScope writer(&active_writers_);
  std::unique_lock<std::shared_timed_mutex> lock(index_mu_);
  RebuildLocked();
}

void DynamicSpcIndex::RebuildLocked() {
  index_ = BuildSpcIndexParallel(graph_, options_.ordering, options_.build);
  inc_.Resize();
  dec_.Resize();
  updates_since_build_ = 0;
  entries_at_build_ = index_.SizeStats().total_entries;
  BumpGeneration();
  // A fresh ordering re-ranks every hub, so no previous shard survives.
  ResetShardLayoutLocked();
}

void DynamicSpcIndex::MaybePolicyRebuildLocked() {
  bool fire = false;
  if (options_.rebuild_after_updates > 0 &&
      updates_since_build_ >= options_.rebuild_after_updates) {
    fire = true;
  }
  if (!fire && options_.rebuild_growth_factor > 0.0 && entries_at_build_ > 0) {
    const size_t now = index_.SizeStats().total_entries;
    if (static_cast<double>(now) >
        options_.rebuild_growth_factor *
            static_cast<double>(entries_at_build_)) {
      fire = true;
    }
  }
  if (fire) {
    RebuildLocked();
    ++policy_rebuilds_;
  }
}

}  // namespace dspc
