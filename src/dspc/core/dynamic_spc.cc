#include "dspc/core/dynamic_spc.h"

#include <algorithm>
#include <mutex>
#include <thread>

#include "dspc/core/hp_spc.h"
#include "dspc/graph/update_stream.h"

namespace dspc {

namespace {

/// RAII writer-priority signal: raised for the whole update application,
/// including the wait for the exclusive lock (a reader-starved writer
/// spends most of its time exactly there).
class WriterScope {
 public:
  explicit WriterScope(std::atomic<uint32_t>* counter) : counter_(counter) {
    counter_->fetch_add(1, std::memory_order_relaxed);
  }
  ~WriterScope() { counter_->fetch_sub(1, std::memory_order_relaxed); }
  WriterScope(const WriterScope&) = delete;
  WriterScope& operator=(const WriterScope&) = delete;

 private:
  std::atomic<uint32_t>* counter_;
};

unsigned ResolveRebuildThreads(unsigned requested) {
  if (requested != 0) return requested;
  return std::clamp(std::thread::hardware_concurrency(), 1u, 8u);
}

}  // namespace

DynamicSpcIndex::DynamicSpcIndex(Graph graph, const DynamicSpcOptions& options)
    : graph_(std::move(graph)),
      index_(BuildSpcIndex(graph_, options.ordering)),
      options_(options),
      inc_(&graph_, &index_),
      dec_(&graph_, &index_, options.dec) {
  InitSnapshots();
}

DynamicSpcIndex::DynamicSpcIndex(Graph graph, SpcIndex index,
                                 const DynamicSpcOptions& options)
    : graph_(std::move(graph)),
      index_(std::move(index)),
      options_(options),
      inc_(&graph_, &index_),
      dec_(&graph_, &index_, options.dec) {
  InitSnapshots();
}

void DynamicSpcIndex::InitSnapshots() {
  entries_at_build_ = index_.SizeStats().total_entries;
  snapshot_shards_ = options_.snapshot_shards != 0
                         ? options_.snapshot_shards
                         : DynamicSpcOptions::kDefaultSnapshotShards;
  ResetShardLayoutLocked();
  snapshots_ = std::make_unique<SnapshotManager>(
      [this](const FlatSpcIndex* prev) { return CopyDeltaForSnapshot(prev); },
      options_.snapshot_refresh, options_.snapshot_rebuild_after_queries,
      ResolveRebuildThreads(options_.snapshot_rebuild_threads));
  // Background serving reads only published snapshots, so publish one
  // before any query can arrive (also warms the serving path).
  if (options_.enable_flat_snapshot &&
      options_.snapshot_refresh == RefreshPolicy::kBackground) {
    snapshots_->RefreshNow(Generation());
  }
}

void DynamicSpcIndex::ResetShardLayoutLocked() {
  ++layout_stamp_;
  shard_layout_ = FlatSpcIndex::ComputeShardLayout(index_.NumVertices(),
                                                   snapshot_shards_);
  // Every shard starts dirty at the current generation: the stamp change
  // already forces the next refresh to be a full build.
  shard_dirty_gen_.assign(shard_layout_.count,
                          generation_.load(std::memory_order_relaxed));
  index_.ClearTouched();
}

void DynamicSpcIndex::NoteTouchedLocked() {
  const uint64_t gen = generation_.load(std::memory_order_relaxed);
  for (const Vertex v : index_.TouchedVertices()) {
    shard_dirty_gen_[v >> shard_layout_.shift] = gen;
  }
  index_.ClearTouched();
}

FlatSpcIndex::IndexDelta DynamicSpcIndex::CopyDeltaForSnapshot(
    const FlatSpcIndex* prev) const {
  // Delta copy-on-read: the shared lock excludes writers only for the
  // O(entries in dirty shards) label copies; the expensive packing runs
  // on the caller's thread with no lock held.
  std::shared_lock<std::shared_mutex> lock(index_mu_);
  FlatSpcIndex::IndexDelta delta;
  delta.generation = Generation();
  delta.layout_stamp = layout_stamp_;
  delta.num_vertices = index_.NumVertices();
  delta.num_shards = snapshot_shards_;
  const bool incremental =
      prev != nullptr && prev->LayoutStamp() == layout_stamp_;
  if (!incremental) {
    delta.full = true;
    delta.ordering = index_.ordering();
  }
  for (size_t i = 0; i < shard_layout_.count; ++i) {
    if (incremental && shard_dirty_gen_[i] <= prev->ShardGeneration(i)) {
      continue;  // clean: the rebuild adopts prev's arena
    }
    delta.dirty.push_back(
        {i, index_.CopyLabelRange(shard_layout_.BeginOf(i),
                                  shard_layout_.EndOf(i, delta.num_vertices))});
  }
  return delta;
}

UpdateStats DynamicSpcIndex::InsertEdge(Vertex a, Vertex b) {
  WriterScope writer(&active_writers_);
  std::unique_lock<std::shared_mutex> lock(index_mu_);
  const UpdateStats stats = inc_.InsertEdge(a, b);
  if (stats.applied) {
    ++updates_since_build_;
    BumpGeneration();
    NoteTouchedLocked();
    MaybePolicyRebuildLocked();
  } else {
    index_.ClearTouched();
  }
  return stats;
}

UpdateStats DynamicSpcIndex::RemoveEdge(Vertex a, Vertex b) {
  WriterScope writer(&active_writers_);
  std::unique_lock<std::shared_mutex> lock(index_mu_);
  const UpdateStats stats = dec_.RemoveEdge(a, b);
  if (stats.applied) {
    ++updates_since_build_;
    BumpGeneration();
    NoteTouchedLocked();
    MaybePolicyRebuildLocked();
  } else {
    index_.ClearTouched();
  }
  return stats;
}

Vertex DynamicSpcIndex::AddVertex() {
  WriterScope writer(&active_writers_);
  std::unique_lock<std::shared_mutex> lock(index_mu_);
  graph_.AddVertex();
  const Vertex v = index_.AddVertex();
  inc_.Resize();
  dec_.Resize();
  BumpGeneration();
  // The vertex count changed, so shard boundaries (and the stale
  // snapshot's coverage) changed with it: new layout, full rebuild next.
  ResetShardLayoutLocked();
  return v;
}

UpdateStats DynamicSpcIndex::RemoveVertex(Vertex v) {
  UpdateStats total;
  // Deleting a vertex is a sequence of decremental edge updates (paper
  // Section 3). Copy the adjacency under the read lock: RemoveEdge
  // mutates it (and takes the write lock itself, so don't hold it here).
  std::vector<Vertex> nbrs;
  {
    std::shared_lock<std::shared_mutex> lock(index_mu_);
    if (!graph_.IsValidVertex(v)) return total;
    nbrs = graph_.Neighbors(v);
  }
  for (const Vertex u : nbrs) {
    total.Accumulate(RemoveEdge(v, u));
  }
  return total;
}

UpdateStats DynamicSpcIndex::Apply(const Update& update) {
  if (update.kind == Update::Kind::kInsert) {
    return InsertEdge(update.edge.u, update.edge.v);
  }
  return RemoveEdge(update.edge.u, update.edge.v);
}

UpdateStats DynamicSpcIndex::ApplyBatch(const std::vector<Update>& updates) {
  // Cancel exact inverse pairs: an insert later undone by a delete of the
  // same edge (or vice versa) never needs to touch the index. Matching is
  // last-in-first-out per edge so interleavings like I-D-I keep one
  // insert, as required for the final graph to be correct.
  auto key = [](const Edge& e) {
    const Vertex lo = std::min(e.u, e.v);
    const Vertex hi = std::max(e.u, e.v);
    return (static_cast<uint64_t>(lo) << 32) | hi;
  };
  std::vector<bool> cancelled(updates.size(), false);
  std::unordered_map<uint64_t, std::vector<size_t>> open;  // index stack
  for (size_t i = 0; i < updates.size(); ++i) {
    const uint64_t k = key(updates[i].edge);
    auto& stack = open[k];
    if (!stack.empty() &&
        updates[stack.back()].kind != updates[i].kind) {
      cancelled[stack.back()] = true;
      cancelled[i] = true;
      stack.pop_back();
    } else {
      stack.push_back(i);
    }
  }

  UpdateStats total;
  for (size_t i = 0; i < updates.size(); ++i) {
    if (cancelled[i]) continue;
    total.Accumulate(Apply(updates[i]));
  }
  return total;
}

void DynamicSpcIndex::MaybeBackpressure(uint64_t current_generation,
                                        uint64_t pinned_generation) const {
  if (options_.snapshot_refresh != RefreshPolicy::kBackground) {
    return;  // sync/manual readers already pace themselves on the lock
  }
  if (options_.snapshot_writer_priority &&
      active_writers_.load(std::memory_order_relaxed) > 0) {
    std::this_thread::yield();
    return;
  }
  // A publish can race ahead of this reader's generation read, making
  // the pin *newer* than current_generation — that is freshness, not
  // lag, so only subtract when the pin actually trails.
  if (options_.snapshot_backpressure_lag != 0 &&
      pinned_generation < current_generation &&
      current_generation - pinned_generation >
          options_.snapshot_backpressure_lag) {
    std::this_thread::yield();
  }
}

SpcResult DynamicSpcIndex::Query(Vertex s, Vertex t) const {
  if (options_.enable_flat_snapshot) {
    const uint64_t generation = Generation();
    const auto pin = snapshots_->Acquire(generation, 1);
    if (Covers(pin, s, t)) {
      MaybeBackpressure(generation, pin.generation);
      return pin->Query(s, t);
    }
  }
  std::shared_lock<std::shared_mutex> lock(index_mu_);
  return index_.Query(s, t);
}

std::vector<SpcResult> DynamicSpcIndex::BatchQuery(
    const std::vector<std::pair<Vertex, Vertex>>& pairs,
    unsigned threads) const {
  if (options_.enable_flat_snapshot) {
    const uint64_t generation = Generation();
    const auto pin = snapshots_->Acquire(generation, pairs.size());
    const bool covers_all =
        pin && std::all_of(pairs.begin(), pairs.end(), [&](const auto& p) {
          return Covers(pin, p.first, p.second);
        });
    if (covers_all) {
      MaybeBackpressure(generation, pin.generation);
      return pin->QueryManyParallel(pairs, threads);
    }
  }
  std::vector<SpcResult> results(pairs.size());
  // Mutable-index fallback: hold the read lock across the whole batch so
  // worker threads see one consistent generation.
  std::shared_lock<std::shared_mutex> lock(index_mu_);
  if (threads == 0) threads = std::thread::hardware_concurrency();
  if (threads <= 1 || pairs.size() < 64) {
    for (size_t i = 0; i < pairs.size(); ++i) {
      results[i] = index_.Query(pairs[i].first, pairs[i].second);
    }
    return results;
  }
  threads = std::min<unsigned>(threads, 16);
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (unsigned w = 0; w < threads; ++w) {
    workers.emplace_back([&, w] {
      for (size_t i = w; i < pairs.size(); i += threads) {
        results[i] = index_.Query(pairs[i].first, pairs[i].second);
      }
    });
  }
  for (std::thread& t : workers) t.join();
  return results;
}

std::shared_ptr<const FlatSpcIndex> DynamicSpcIndex::FlatSnapshot() const {
  return snapshots_->AwaitGeneration(Generation()).snapshot;
}

SnapshotManager::Pinned DynamicSpcIndex::PinSnapshot() const {
  return snapshots_->Pin();
}

SnapshotManager::Pinned DynamicSpcIndex::WaitForFreshSnapshot() const {
  return snapshots_->AwaitGeneration(Generation());
}

void DynamicSpcIndex::Rebuild() {
  WriterScope writer(&active_writers_);
  std::unique_lock<std::shared_mutex> lock(index_mu_);
  RebuildLocked();
}

void DynamicSpcIndex::RebuildLocked() {
  index_ = BuildSpcIndex(graph_, options_.ordering);
  inc_.Resize();
  dec_.Resize();
  updates_since_build_ = 0;
  entries_at_build_ = index_.SizeStats().total_entries;
  BumpGeneration();
  // A fresh ordering re-ranks every hub, so no previous shard survives.
  ResetShardLayoutLocked();
}

void DynamicSpcIndex::MaybePolicyRebuildLocked() {
  bool fire = false;
  if (options_.rebuild_after_updates > 0 &&
      updates_since_build_ >= options_.rebuild_after_updates) {
    fire = true;
  }
  if (!fire && options_.rebuild_growth_factor > 0.0 && entries_at_build_ > 0) {
    const size_t now = index_.SizeStats().total_entries;
    if (static_cast<double>(now) >
        options_.rebuild_growth_factor *
            static_cast<double>(entries_at_build_)) {
      fire = true;
    }
  }
  if (fire) {
    RebuildLocked();
    ++policy_rebuilds_;
  }
}

}  // namespace dspc
