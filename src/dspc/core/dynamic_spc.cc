#include "dspc/core/dynamic_spc.h"

#include <algorithm>
#include <mutex>
#include <thread>

#include "dspc/core/hp_spc.h"
#include "dspc/graph/update_stream.h"

namespace dspc {

DynamicSpcIndex::DynamicSpcIndex(Graph graph, const DynamicSpcOptions& options)
    : graph_(std::move(graph)),
      index_(BuildSpcIndex(graph_, options.ordering)),
      options_(options),
      inc_(&graph_, &index_),
      dec_(&graph_, &index_, options.dec) {
  entries_at_build_ = index_.SizeStats().total_entries;
  snapshots_ = std::make_unique<SnapshotManager>(
      [this] { return CopyIndexForSnapshot(); }, options_.snapshot_refresh,
      options_.snapshot_rebuild_after_queries);
  // Background serving reads only published snapshots, so publish one
  // before any query can arrive (also warms the serving path).
  if (options_.enable_flat_snapshot &&
      options_.snapshot_refresh == RefreshPolicy::kBackground) {
    snapshots_->RefreshNow(Generation());
  }
}

DynamicSpcIndex::DynamicSpcIndex(Graph graph, SpcIndex index,
                                 const DynamicSpcOptions& options)
    : graph_(std::move(graph)),
      index_(std::move(index)),
      options_(options),
      inc_(&graph_, &index_),
      dec_(&graph_, &index_, options.dec) {
  entries_at_build_ = index_.SizeStats().total_entries;
  snapshots_ = std::make_unique<SnapshotManager>(
      [this] { return CopyIndexForSnapshot(); }, options_.snapshot_refresh,
      options_.snapshot_rebuild_after_queries);
  if (options_.enable_flat_snapshot &&
      options_.snapshot_refresh == RefreshPolicy::kBackground) {
    snapshots_->RefreshNow(Generation());
  }
}

SnapshotManager::IndexCopy DynamicSpcIndex::CopyIndexForSnapshot() const {
  // Copy-on-read: the shared lock excludes writers for the O(entries)
  // copy only; the expensive FlatSpcIndex packing runs on the caller's
  // thread with no lock held.
  std::shared_lock<std::shared_mutex> lock(index_mu_);
  return {index_, Generation()};
}

UpdateStats DynamicSpcIndex::InsertEdge(Vertex a, Vertex b) {
  std::unique_lock<std::shared_mutex> lock(index_mu_);
  const UpdateStats stats = inc_.InsertEdge(a, b);
  if (stats.applied) {
    ++updates_since_build_;
    BumpGeneration();
    MaybePolicyRebuildLocked();
  }
  return stats;
}

UpdateStats DynamicSpcIndex::RemoveEdge(Vertex a, Vertex b) {
  std::unique_lock<std::shared_mutex> lock(index_mu_);
  const UpdateStats stats = dec_.RemoveEdge(a, b);
  if (stats.applied) {
    ++updates_since_build_;
    BumpGeneration();
    MaybePolicyRebuildLocked();
  }
  return stats;
}

Vertex DynamicSpcIndex::AddVertex() {
  std::unique_lock<std::shared_mutex> lock(index_mu_);
  graph_.AddVertex();
  const Vertex v = index_.AddVertex();
  inc_.Resize();
  dec_.Resize();
  BumpGeneration();
  return v;
}

UpdateStats DynamicSpcIndex::RemoveVertex(Vertex v) {
  UpdateStats total;
  // Deleting a vertex is a sequence of decremental edge updates (paper
  // Section 3). Copy the adjacency under the read lock: RemoveEdge
  // mutates it (and takes the write lock itself, so don't hold it here).
  std::vector<Vertex> nbrs;
  {
    std::shared_lock<std::shared_mutex> lock(index_mu_);
    if (!graph_.IsValidVertex(v)) return total;
    nbrs = graph_.Neighbors(v);
  }
  for (const Vertex u : nbrs) {
    total.Accumulate(RemoveEdge(v, u));
  }
  return total;
}

UpdateStats DynamicSpcIndex::Apply(const Update& update) {
  if (update.kind == Update::Kind::kInsert) {
    return InsertEdge(update.edge.u, update.edge.v);
  }
  return RemoveEdge(update.edge.u, update.edge.v);
}

UpdateStats DynamicSpcIndex::ApplyBatch(const std::vector<Update>& updates) {
  // Cancel exact inverse pairs: an insert later undone by a delete of the
  // same edge (or vice versa) never needs to touch the index. Matching is
  // last-in-first-out per edge so interleavings like I-D-I keep one
  // insert, as required for the final graph to be correct.
  auto key = [](const Edge& e) {
    const Vertex lo = std::min(e.u, e.v);
    const Vertex hi = std::max(e.u, e.v);
    return (static_cast<uint64_t>(lo) << 32) | hi;
  };
  std::vector<bool> cancelled(updates.size(), false);
  std::unordered_map<uint64_t, std::vector<size_t>> open;  // index stack
  for (size_t i = 0; i < updates.size(); ++i) {
    const uint64_t k = key(updates[i].edge);
    auto& stack = open[k];
    if (!stack.empty() &&
        updates[stack.back()].kind != updates[i].kind) {
      cancelled[stack.back()] = true;
      cancelled[i] = true;
      stack.pop_back();
    } else {
      stack.push_back(i);
    }
  }

  UpdateStats total;
  for (size_t i = 0; i < updates.size(); ++i) {
    if (cancelled[i]) continue;
    total.Accumulate(Apply(updates[i]));
  }
  return total;
}

SpcResult DynamicSpcIndex::Query(Vertex s, Vertex t) const {
  if (options_.enable_flat_snapshot) {
    const auto pin = snapshots_->Acquire(Generation(), 1);
    if (Covers(pin, s, t)) return pin->Query(s, t);
  }
  std::shared_lock<std::shared_mutex> lock(index_mu_);
  return index_.Query(s, t);
}

std::vector<SpcResult> DynamicSpcIndex::BatchQuery(
    const std::vector<std::pair<Vertex, Vertex>>& pairs,
    unsigned threads) const {
  if (options_.enable_flat_snapshot) {
    const auto pin = snapshots_->Acquire(Generation(), pairs.size());
    const bool covers_all =
        pin && std::all_of(pairs.begin(), pairs.end(), [&](const auto& p) {
          return Covers(pin, p.first, p.second);
        });
    if (covers_all) return pin->QueryManyParallel(pairs, threads);
  }
  std::vector<SpcResult> results(pairs.size());
  // Mutable-index fallback: hold the read lock across the whole batch so
  // worker threads see one consistent generation.
  std::shared_lock<std::shared_mutex> lock(index_mu_);
  if (threads == 0) threads = std::thread::hardware_concurrency();
  if (threads <= 1 || pairs.size() < 64) {
    for (size_t i = 0; i < pairs.size(); ++i) {
      results[i] = index_.Query(pairs[i].first, pairs[i].second);
    }
    return results;
  }
  threads = std::min<unsigned>(threads, 16);
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (unsigned w = 0; w < threads; ++w) {
    workers.emplace_back([&, w] {
      for (size_t i = w; i < pairs.size(); i += threads) {
        results[i] = index_.Query(pairs[i].first, pairs[i].second);
      }
    });
  }
  for (std::thread& t : workers) t.join();
  return results;
}

std::shared_ptr<const FlatSpcIndex> DynamicSpcIndex::FlatSnapshot() const {
  return snapshots_->AwaitGeneration(Generation()).snapshot;
}

SnapshotManager::Pinned DynamicSpcIndex::PinSnapshot() const {
  return snapshots_->Pin();
}

SnapshotManager::Pinned DynamicSpcIndex::WaitForFreshSnapshot() const {
  return snapshots_->AwaitGeneration(Generation());
}

void DynamicSpcIndex::Rebuild() {
  std::unique_lock<std::shared_mutex> lock(index_mu_);
  RebuildLocked();
}

void DynamicSpcIndex::RebuildLocked() {
  index_ = BuildSpcIndex(graph_, options_.ordering);
  inc_.Resize();
  dec_.Resize();
  updates_since_build_ = 0;
  entries_at_build_ = index_.SizeStats().total_entries;
  BumpGeneration();
}

void DynamicSpcIndex::MaybePolicyRebuildLocked() {
  bool fire = false;
  if (options_.rebuild_after_updates > 0 &&
      updates_since_build_ >= options_.rebuild_after_updates) {
    fire = true;
  }
  if (!fire && options_.rebuild_growth_factor > 0.0 && entries_at_build_ > 0) {
    const size_t now = index_.SizeStats().total_entries;
    if (static_cast<double>(now) >
        options_.rebuild_growth_factor *
            static_cast<double>(entries_at_build_)) {
      fire = true;
    }
  }
  if (fire) {
    RebuildLocked();
    ++policy_rebuilds_;
  }
}

}  // namespace dspc
