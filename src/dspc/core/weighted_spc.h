// Weighted DSPC (paper Appendix C.2).
//
// Labels store accumulated edge weights instead of hop counts, Dijkstra
// replaces BFS everywhere, and the edge-weight dynamics map onto the two
// maintenance algorithms:
//   - edge insertion and weight *decrease* are incremental: affected hubs
//     come from L(a) u L(b) and a seeded partial Dijkstra enters the edge
//     with distance d_h,a + w;
//   - edge deletion and weight *increase* are decremental: the affected-
//     vertex condition becomes |sd(v,a) - sd(v,b)| = w (the old weight),
//     and SrrSEARCH / DecUPDATE run as Dijkstra searches.
// The unconditional deferred-removal fix (see dec_spc.cc) applies.
// The paper's §3.2.3 isolated-vertex fast path is defined for the
// unweighted case only and is not replicated here.

#ifndef DSPC_CORE_WEIGHTED_SPC_H_
#define DSPC_CORE_WEIGHTED_SPC_H_

#include <cstdint>
#include <vector>

#include "dspc/core/spc_index.h"
#include "dspc/core/update_stats.h"
#include "dspc/graph/ordering.h"
#include "dspc/graph/weighted_graph.h"

namespace dspc {

/// SPC-Index over a positively weighted undirected graph, with dynamic
/// maintenance. Owns the graph. Not thread-safe.
class DynamicWeightedSpcIndex {
 public:
  /// Takes ownership of `graph` and builds the index with Dijkstra-based
  /// hub pushing.
  explicit DynamicWeightedSpcIndex(WeightedGraph graph,
                                   const OrderingOptions& ordering = {});

  /// Weighted SPC query: (total weight of a shortest path, number of
  /// shortest paths); {inf, 0} when disconnected.
  SpcResult Query(Vertex s, Vertex t) const;

  /// Inserts edge (a, b) with weight w > 0; incremental maintenance.
  UpdateStats InsertEdge(Vertex a, Vertex b, Weight w);

  /// Decreases the weight of existing edge (a, b) to `w` (must be smaller
  /// than the current weight); incremental maintenance.
  UpdateStats DecreaseWeight(Vertex a, Vertex b, Weight w);

  /// Deletes edge (a, b); decremental maintenance.
  UpdateStats RemoveEdge(Vertex a, Vertex b);

  /// Increases the weight of existing edge (a, b) to `w` (must be larger
  /// than the current weight); decremental maintenance.
  UpdateStats IncreaseWeight(Vertex a, Vertex b, Weight w);

  /// Appends an isolated vertex (lowest rank; self label only).
  Vertex AddVertex();

  /// Reconstruction baseline.
  void Rebuild();

  const WeightedGraph& graph() const { return graph_; }
  const VertexOrdering& ordering() const { return ordering_; }
  const LabelSet& Labels(Vertex v) const { return labels_[v]; }

  /// Structural invariants (sortedness, self labels, rank constraint).
  Status ValidateStructure() const;

  /// Size statistics.
  IndexSizeStats SizeStats() const;

 private:
  enum : uint8_t { kSideNone = 0, kSideA = 1, kSideB = 2 };

  void Build();
  void PushFromHub(Rank h);

  /// Incremental seeded Dijkstra for hub h entering the (a, b) edge at
  /// `seed` with the given initial distance and count.
  void IncUpdate(Rank h, Vertex seed, Distance seed_dist, PathCount seed_count,
                 UpdateStats* stats);

  /// Shared incremental driver for InsertEdge / DecreaseWeight, run after
  /// the graph mutation.
  void IncrementalPass(Vertex a, Vertex b, Weight new_weight,
                       UpdateStats* stats);

  /// Weighted SrrSEARCH from `from`, pruning on D[v] + w != sd(v, towards).
  void SrrSearch(Vertex from, Vertex towards, Weight w,
                 std::vector<Vertex>* sr, std::vector<Vertex>* r,
                 UpdateStats* stats);

  /// Weighted DecUPDATE from hub `hv`.
  void DecUpdate(Vertex hv, uint8_t opposite_side,
                 const std::vector<Vertex>& opposite_vertices,
                 UpdateStats* stats);

  /// Shared decremental driver: classifies with the old weight `w_old`,
  /// applies `mutate` (deletion or weight increase), then updates.
  template <typename MutateFn>
  UpdateStats DecrementalPass(Vertex a, Vertex b, Weight w_old,
                              MutateFn mutate);

  WeightedGraph graph_;
  VertexOrdering ordering_;
  OrderingOptions ordering_options_;
  std::vector<LabelSet> labels_;

  HubCache cache_;
  std::vector<Distance> dist_;
  std::vector<PathCount> count_;
  std::vector<Vertex> touched_;
  std::vector<uint8_t> side_of_;
  std::vector<Vertex> side_touched_;
  std::vector<uint8_t> updated_;
  std::vector<Vertex> updated_touched_;
};

}  // namespace dspc

#endif  // DSPC_CORE_WEIGHTED_SPC_H_
