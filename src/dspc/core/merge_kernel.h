// Runtime-dispatched merge kernels for the label-intersection hot loop
// (DESIGN.md §15).
//
// The tail of every flat query is an intersection of two hub-sorted
// ranges — packed 64-bit arena words (hub in the top 25 bits, see
// label_codec.h) in flat mode, 16-byte LabelEntry structs in wide mode —
// accumulating min-distance + path-count products into an SpcResult.
// Because the accumulation is order-independent (the minimum of sums and
// a modular uint64 sum of products over the min-achievers), ANY traversal
// order over the same match set produces bit-identical {dist, count}.
// That freedom is what the vector tiers exploit, and what the
// differential harness (tests/merge_kernel_test.cc) verifies.
//
// Three tiers, selected once per process:
//   kScalar  the classic two-pointer merge (the PR 1 loop, reference tier)
//   kSwar    portable 64-bit SWAR broadcast-window: four b hubs packed
//            two per word in 32-bit lanes, each a hub broadcast against
//            the window with the has-zero-lane trick
//   kAvx2    broadcast-window with eight b hubs as 32-bit vector lanes
//            (vpcmpeqd + movemask per a hub), compiled with a
//            target("avx2") attribute so the baseline -march=x86-64-v2
//            build still runs everywhere, and only dispatched when
//            __builtin_cpu_supports("avx2")
//
// Both vector tiers fall back to per-element galloping (exponential +
// binary search) when one side is lopsidedly longer, to the scalar loop
// below a minimum tail length, and to the scalar loop for the sub-window
// remainder.
//
// Pinning a tier (every CI configuration pins one):
//   env  DSPC_FORCE_SCALAR_KERNEL=1   scalar everywhere, beats all others
//   env  DSPC_MERGE_KERNEL=scalar|swar|avx2   clamped to what the host has
//   code ConfigureQueryKernel({.max_tier = ...}) / SetMergeKernelTier(...)

#ifndef DSPC_CORE_MERGE_KERNEL_H_
#define DSPC_CORE_MERGE_KERNEL_H_

#include <cstdint>

#include "dspc/baseline/bfs_counting.h"
#include "dspc/common/types.h"
#include "dspc/core/spc_index.h"

namespace dspc {

/// Kernel tiers, ordered: a numerically larger tier is never selected
/// unless the host supports it.
enum class MergeKernelTier : unsigned char {
  kScalar = 0,
  kSwar = 1,
  kAvx2 = 2,
};

/// Human-readable tier name ("scalar" / "swar" / "avx2").
const char* MergeKernelTierName(MergeKernelTier tier);

/// True iff this host can execute `tier`. kScalar and kSwar are always
/// supported; kAvx2 requires a runtime CPUID check on x86-64.
bool MergeKernelTierSupported(MergeKernelTier tier);

/// The highest tier this host supports.
MergeKernelTier MaxMergeKernelTier();

/// The tier queries currently dispatch to, after env knobs and any
/// programmatic override.
MergeKernelTier ActiveMergeKernelTier();

/// Pins the dispatch tier. Returns false (and changes nothing) if the
/// tier is unsupported on this host or DSPC_FORCE_SCALAR_KERNEL is set
/// and `tier` is not kScalar — the env pin is the CI override of last
/// resort and always wins.
bool SetMergeKernelTier(MergeKernelTier tier);

/// Drops any programmatic pin; dispatch reverts to env/auto selection.
void ResetMergeKernelTier();

/// Process-wide query-kernel configuration — the programmatic twin of the
/// env knobs. `max_tier` caps dispatch at the given tier (clamped to what
/// the host supports).
struct QueryOptions {
  MergeKernelTier max_tier = MergeKernelTier::kAvx2;
};

/// Applies `options`: equivalent to SetMergeKernelTier(min(max_tier,
/// MaxMergeKernelTier())), except a force-scalar env still wins.
void ConfigureQueryKernel(const QueryOptions& options);

// --- per-tier kernels (exposed for the differential harness) ---------------
//
// Packed kernels intersect two hub-ascending half-open ranges of flat
// arena words [a, ae) and [b, be); overflow-reference words are chased
// through the per-side overflow tables. Matches accumulate into *result
// (which the caller seeds — typically with the dense-directory part).
// Preconditions: hubs strictly ascending within each range (the arena
// validator enforces this), and any rank limit already applied by
// truncating the ranges with PackedLowerBound (see below for why that is
// equivalent to the historical in-loop limit break).

void MergePackedTailScalar(const uint64_t* a, const uint64_t* ae,
                           const LabelEntry* a_overflow, const uint64_t* b,
                           const uint64_t* be, const LabelEntry* b_overflow,
                           SpcResult* result);
void MergePackedTailSwar(const uint64_t* a, const uint64_t* ae,
                         const LabelEntry* a_overflow, const uint64_t* b,
                         const uint64_t* be, const LabelEntry* b_overflow,
                         SpcResult* result);
void MergePackedTailAvx2(const uint64_t* a, const uint64_t* ae,
                         const LabelEntry* a_overflow, const uint64_t* b,
                         const uint64_t* be, const LabelEntry* b_overflow,
                         SpcResult* result);

// Wide kernels intersect two hub-ascending LabelEntry ranges (the
// >2^25-vertex fallback mode). kScalar dispatches to MergeWideScalar,
// both vector tiers to MergeWideBlocked (no lane tricks pay off on
// 16-byte entries; blocking + prefetch still do).

void MergeWideScalar(const LabelEntry* a, const LabelEntry* ae,
                     const LabelEntry* b, const LabelEntry* be,
                     SpcResult* result);
void MergeWideBlocked(const LabelEntry* a, const LabelEntry* ae,
                      const LabelEntry* b, const LabelEntry* be,
                      SpcResult* result);

/// Function-pointer accessors so the harness can force a tier per call
/// without touching the process-wide dispatch state.
using PackedMergeFn = void (*)(const uint64_t*, const uint64_t*,
                               const LabelEntry*, const uint64_t*,
                               const uint64_t*, const LabelEntry*, SpcResult*);
using WideMergeFn = void (*)(const LabelEntry*, const LabelEntry*,
                             const LabelEntry*, const LabelEntry*, SpcResult*);
PackedMergeFn PackedMergeForTier(MergeKernelTier tier);
WideMergeFn WideMergeForTier(MergeKernelTier tier);

/// First word in [first, last) whose hub rank is >= limit. Rank-limited
/// queries (PreQuery) truncate both ranges here and then run the
/// unlimited kernel: because hubs ascend, every match below the limit
/// precedes the first >=limit word on both sides, so truncation finds
/// exactly the match set the historical in-loop `hub >= limit` break did.
const uint64_t* PackedLowerBound(const uint64_t* first, const uint64_t* last,
                                 Rank limit);
const LabelEntry* WideLowerBound(const LabelEntry* first,
                                 const LabelEntry* last, Rank limit);

// Out-of-line dispatchers (tier switch + kernel call).
void MergePackedTailDispatch(const uint64_t* a, const uint64_t* ae,
                             const LabelEntry* a_overflow, const uint64_t* b,
                             const uint64_t* be, const LabelEntry* b_overflow,
                             SpcResult* result);
void MergeWideDispatch(const LabelEntry* a, const LabelEntry* ae,
                       const LabelEntry* b, const LabelEntry* be,
                       SpcResult* result);

/// Hot entry points: empty-range fast path inline, then the dispatcher.
inline void MergePackedTail(const uint64_t* a, const uint64_t* ae,
                            const LabelEntry* a_overflow, const uint64_t* b,
                            const uint64_t* be, const LabelEntry* b_overflow,
                            SpcResult* result) {
  if (a == ae || b == be) return;
  MergePackedTailDispatch(a, ae, a_overflow, b, be, b_overflow, result);
}

inline void MergeWide(const LabelEntry* a, const LabelEntry* ae,
                      const LabelEntry* b, const LabelEntry* be,
                      SpcResult* result) {
  if (a == ae || b == be) return;
  MergeWideDispatch(a, ae, b, be, result);
}

}  // namespace dspc

#endif  // DSPC_CORE_MERGE_KERNEL_H_
