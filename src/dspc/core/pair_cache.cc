#include "dspc/core/pair_cache.h"

#include <algorithm>
#include <bit>

namespace dspc {
namespace {

// splitmix64 finalizer: full-avalanche mix of the pair key. The
// generation is deliberately NOT hashed — a pair must land on the same
// set at every generation so a fresh insert naturally supersedes its own
// stale entry instead of stranding it in another set.
inline uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

inline uint64_t KeyOf(Vertex u, Vertex v) {
  const uint64_t lo = std::min(u, v);
  const uint64_t hi = std::max(u, v);
  return (hi << 32) | lo;
}

}  // namespace

PairCache::PairCache(const PairCacheOptions& options) {
  const size_t capacity = std::max<size_t>(options.capacity, kWays);
  size_t shards = options.shards;
  if (shards == 0) {
    // One shard per ~4K entries, capped: enough striping that concurrent
    // readers rarely collide, few enough that StatsSnapshot stays cheap.
    shards = std::clamp<size_t>(capacity >> 12, 1, 64);
  }
  num_shards_ = std::bit_ceil(shards);
  const size_t sets_total =
      std::max<size_t>(1, (capacity + kWays - 1) / kWays);
  sets_per_shard_ = std::bit_ceil(
      std::max<size_t>(1, (sets_total + num_shards_ - 1) / num_shards_));
  shards_ = std::make_unique<Shard[]>(num_shards_);
  for (size_t s = 0; s < num_shards_; ++s) {
    const size_t n = sets_per_shard_ * kWays;
    shards_[s].entries = std::make_unique<Entry[]>(n);
    for (size_t i = 0; i < n; ++i) {
      shards_[s].entries[i] = Entry{kEmptyKey, 0, 0, 0};
    }
  }
}

bool PairCache::Lookup(Vertex u, Vertex v, uint64_t generation,
                       SpcResult* out) {
  const uint64_t key = KeyOf(u, v);
  const uint64_t h = Mix(key);
  Shard& shard = shards_[h & (num_shards_ - 1)];
  const size_t set = (h >> 32) & (sets_per_shard_ - 1);
  Entry* ways = shard.entries.get() + set * kWays;
  std::lock_guard<std::mutex> lock(shard.mu);
  for (size_t w = 0; w < kWays; ++w) {
    if (ways[w].key == key && ways[w].generation == generation) {
      out->dist = ways[w].dist;
      out->count = ways[w].count;
      ++shard.stats.hits;
      return true;
    }
  }
  ++shard.stats.misses;
  return false;
}

void PairCache::Insert(Vertex u, Vertex v, uint64_t generation,
                       const SpcResult& result) {
  const uint64_t key = KeyOf(u, v);
  const uint64_t h = Mix(key);
  Shard& shard = shards_[h & (num_shards_ - 1)];
  const size_t set = (h >> 32) & (sets_per_shard_ - 1);
  Entry* ways = shard.entries.get() + set * kWays;
  std::lock_guard<std::mutex> lock(shard.mu);
  Entry* victim = nullptr;
  for (size_t w = 0; w < kWays && victim == nullptr; ++w) {
    if (ways[w].key == key) victim = &ways[w];
  }
  if (victim == nullptr) {
    for (size_t w = 0; w < kWays && victim == nullptr; ++w) {
      if (ways[w].key == kEmptyKey) victim = &ways[w];
    }
  }
  if (victim == nullptr) {
    for (size_t w = 0; w < kWays && victim == nullptr; ++w) {
      if (ways[w].generation != generation) victim = &ways[w];
    }
  }
  if (victim == nullptr) {
    victim = &ways[shard.victim_arm++ % kWays];
    ++shard.stats.evictions;
  }
  *victim = Entry{key, generation, result.dist, result.count};
  ++shard.stats.insertions;
}

PairCache::Stats PairCache::StatsSnapshot() const {
  Stats total;
  for (size_t s = 0; s < num_shards_; ++s) {
    std::lock_guard<std::mutex> lock(shards_[s].mu);
    total.hits += shards_[s].stats.hits;
    total.misses += shards_[s].stats.misses;
    total.insertions += shards_[s].stats.insertions;
    total.evictions += shards_[s].stats.evictions;
  }
  return total;
}

}  // namespace dspc
