#include "dspc/core/inc_spc.h"

#include <algorithm>

namespace dspc {

IncSpc::IncSpc(Graph* graph, SpcIndex* index)
    : graph_(graph),
      index_(index),
      cache_(index->NumVertices()),
      dist_(index->NumVertices(), kInfDistance),
      count_(index->NumVertices(), 0) {}

void IncSpc::Resize() {
  const size_t n = index_->NumVertices();
  cache_ = HubCache(n);
  dist_.assign(n, kInfDistance);
  count_.assign(n, 0);
}

UpdateStats IncSpc::InsertEdge(Vertex a, Vertex b) {
  UpdateStats stats;
  if (!graph_->AddEdge(a, b)) return stats;  // self-loop/range/duplicate
  stats.applied = true;

  // AFF = {h | h in L_i(a) u L_i(b)}, processed from highest rank down
  // (ascending rank value). Collected before any label mutation.
  std::vector<Rank> aff;
  {
    const LabelSet& la = index_->Labels(a);
    const LabelSet& lb = index_->Labels(b);
    aff.reserve(la.size() + lb.size());
    size_t i = 0;
    size_t j = 0;
    while (i < la.size() || j < lb.size()) {
      if (j >= lb.size() || (i < la.size() && la[i].hub < lb[j].hub)) {
        aff.push_back(la[i++].hub);
      } else if (i >= la.size() || lb[j].hub < la[i].hub) {
        aff.push_back(lb[j++].hub);
      } else {
        aff.push_back(la[i].hub);
        ++i;
        ++j;
      }
    }
  }
  stats.affected_hubs = aff.size();

  const Rank rank_a = index_->RankOf(a);
  const Rank rank_b = index_->RankOf(b);
  for (const Rank h : aff) {
    // Membership is re-checked against the *current* labels: earlier hubs
    // never remove entries, so presence is unchanged, but the (d, c) seed
    // must be the up-to-date value.
    if (h <= rank_b && index_->FindLabel(a, h) != nullptr) {
      IncUpdate(h, a, b, &stats);
    }
    if (h <= rank_a && index_->FindLabel(b, h) != nullptr) {
      IncUpdate(h, b, a, &stats);
    }
  }
  return stats;
}

void IncSpc::IncUpdate(Rank h, Vertex va, Vertex vb, UpdateStats* stats) {
  const Vertex hv = index_->VertexOf(h);
  const LabelEntry* seed = index_->FindLabel(va, h);
  // Seed as if stepping through the new edge from va (Algorithm 3 lines
  // 3-5): sigma_{h,va} new shortest-path candidates reach vb at d + 1.
  dist_[vb] = seed->dist + 1;
  count_[vb] = seed->count;
  queue_.clear();
  queue_.push_back(vb);
  touched_.clear();
  touched_.push_back(vb);

  cache_.Load(index_->Labels(hv));
  const VertexOrdering& order = index_->ordering();

  for (size_t head = 0; head < queue_.size(); ++head) {
    const Vertex v = queue_[head];
    ++stats->visited_vertices;
    // Relaxed pruning (Lemma 3.4): continue only while the index does not
    // certify a strictly shorter distance; equality means new same-length
    // shortest paths whose counts must be folded in.
    const SpcResult covered = cache_.Query(index_->Labels(v));
    if (covered.dist < dist_[v]) continue;

    if (LabelEntry* existing = index_->FindLabel(v, h)) {
      if (existing->dist == dist_[v]) {
        // Same length: the BFS discovered *new* paths through (a, b) only
        // (no pre-existing shortest path used the new edge), so counts add.
        existing->count += count_[v];
        ++stats->renew_count;
      } else {
        // Strictly shorter: the old label is superseded entirely.
        existing->dist = dist_[v];
        existing->count = count_[v];
        ++stats->renew_dist;
      }
    } else {
      index_->InsertLabel(v, LabelEntry{h, dist_[v], count_[v]});
      ++stats->inserted;
    }

    for (const Vertex w : graph_->Neighbors(v)) {
      if (dist_[w] == kInfDistance) {
        if (h > order.rank_of[w]) continue;  // ranking pruning: h <= w only
        dist_[w] = dist_[v] + 1;
        count_[w] = count_[v];
        queue_.push_back(w);
        touched_.push_back(w);
      } else if (dist_[w] == dist_[v] + 1) {
        count_[w] += count_[v];
      }
    }
  }

  for (const Vertex v : touched_) {
    dist_[v] = kInfDistance;
    count_[v] = 0;
  }
}

}  // namespace dspc
