// Directed DSPC (paper Appendix C.1).
//
// Each vertex carries two label sets: L_in(v) covers shortest paths
// *into* v (entries (h, sd(h,v), spc(h^,v)) for hubs h with a shortest
// h->v path on which h is the highest-ranked vertex) and L_out(v) covers
// shortest paths *out of* v. SPC(s, t) scans L_out(s) against L_in(t).
//
// Maintenance mirrors the undirected algorithms with directions:
//  - inserting arc a->b: hubs from L_in(a) run forward BFS from b and
//    renew in-labels; hubs from L_out(b) run reverse BFS from a and renew
//    out-labels;
//  - deleting arc a->b: SR_a/R_a are found by reverse search from a
//    (vertices v with sd(v,a)+1 = sd(v,b)), SR_b/R_b by forward search
//    from b (vertices v with sd(b,v)+1 = sd(a,v)); SR_a hubs re-push
//    forward into the opposite side's in-labels, SR_b hubs re-push in
//    reverse into out-labels. The unconditional deferred-removal fix from
//    dec_spc.cc applies here identically.

#ifndef DSPC_CORE_DIRECTED_SPC_H_
#define DSPC_CORE_DIRECTED_SPC_H_

#include <cstdint>
#include <vector>

#include "dspc/core/spc_index.h"
#include "dspc/core/update_stats.h"
#include "dspc/graph/digraph.h"
#include "dspc/graph/ordering.h"

namespace dspc {

/// SPC-Index over a directed graph, with dynamic maintenance. Owns the
/// digraph. Not thread-safe.
class DynamicDirectedSpcIndex {
 public:
  /// Takes ownership of `graph` and builds the directed SPC-Index via
  /// directed HP-SPC (two restricted BFS per hub).
  explicit DynamicDirectedSpcIndex(Digraph graph,
                                   const OrderingOptions& ordering = {});

  /// Number of shortest s->t paths and their length; {inf, 0} when t is
  /// unreachable from s.
  SpcResult Query(Vertex s, Vertex t) const;

  /// Inserts arc a->b and maintains the index incrementally.
  UpdateStats InsertArc(Vertex a, Vertex b);

  /// Deletes arc a->b and maintains the index decrementally.
  UpdateStats RemoveArc(Vertex a, Vertex b);

  /// Appends an isolated vertex (lowest rank; self labels only).
  Vertex AddVertex();

  /// Removes all arcs incident to v via decremental updates.
  UpdateStats RemoveVertex(Vertex v);

  /// Reconstruction baseline.
  void Rebuild();

  const Digraph& graph() const { return graph_; }
  const VertexOrdering& ordering() const { return ordering_; }
  const LabelSet& InLabels(Vertex v) const { return in_labels_[v]; }
  const LabelSet& OutLabels(Vertex v) const { return out_labels_[v]; }

  /// Structural invariants of both label families.
  Status ValidateStructure() const;

  /// Size statistics over both label families combined.
  IndexSizeStats SizeStats() const;

 private:
  enum class Direction : uint8_t { kForward, kReverse };
  // Unlike the undirected case, a vertex of a directed cycle through the
  // arc can be upstream of a AND downstream of b at once, so side
  // membership is a bitmask, not an enum.
  enum : uint8_t {
    kSideNone = 0,
    kSideA = 1,      // in SR_a u R_a (upstream)
    kSideB = 2,      // in SR_b u R_b (downstream)
    kSrA = 4,        // in SR_a
    kSrB = 8,        // in SR_b
  };

  /// The label family written by BFSs of a given direction: forward BFS
  /// discovers paths hub->w (in-labels), reverse BFS paths w->hub
  /// (out-labels).
  std::vector<LabelSet>& TargetLabels(Direction dir) {
    return dir == Direction::kForward ? in_labels_ : out_labels_;
  }
  /// The label family the pruning query reads on the hub side.
  std::vector<LabelSet>& SourceLabels(Direction dir) {
    return dir == Direction::kForward ? out_labels_ : in_labels_;
  }
  const std::vector<Vertex>& Successors(Vertex v, Direction dir) const {
    return dir == Direction::kForward ? graph_.OutNeighbors(v)
                                      : graph_.InNeighbors(v);
  }

  void Build();

  /// Hub-pushing BFS for hub rank h in the given direction, used both by
  /// Build (seeded at the hub) and by label upkeep.
  void PushFromHub(Rank h, Direction dir);

  /// Incremental pruned BFS (directed Algorithm 3): hub h, entering at
  /// `seed` with the given distance/count, writing the `dir` label family.
  void IncUpdate(Rank h, Vertex seed, Distance seed_dist, PathCount seed_count,
                 Direction dir, UpdateStats* stats);

  /// Directed SrrSEARCH: search `dir` = kReverse from a (classifying v by
  /// sd(v,a)+1 = sd(v,b)) or kForward from b.
  void SrrSearch(Vertex from, Vertex towards, Direction dir,
                 std::vector<Vertex>* sr, std::vector<Vertex>* r,
                 UpdateStats* stats);

  /// Directed DecUPDATE for hub `hv` in direction `dir`, touching labels
  /// of opposite-side vertices only, with unconditional deferred removal.
  void DecUpdate(Vertex hv, Direction dir, uint8_t opposite_side_bit,
                 const std::vector<Vertex>& opposite_vertices,
                 UpdateStats* stats);

  /// Query by explicit label sets (merge scan).
  static SpcResult ScanQuery(const LabelSet& out_s, const LabelSet& in_t);

  Digraph graph_;
  VertexOrdering ordering_;
  OrderingOptions ordering_options_;
  std::vector<LabelSet> in_labels_;
  std::vector<LabelSet> out_labels_;

  HubCache cache_;
  std::vector<Distance> dist_;
  std::vector<PathCount> count_;
  std::vector<Vertex> queue_;
  std::vector<Vertex> touched_;
  std::vector<uint8_t> side_of_;
  std::vector<Vertex> side_touched_;
  std::vector<uint8_t> updated_;
  std::vector<Vertex> updated_touched_;
};

}  // namespace dspc

#endif  // DSPC_CORE_DIRECTED_SPC_H_
