// DynamicSpcIndex: the library's main entry point. Owns a graph and its
// SPC-Index and keeps them consistent under edge/vertex insertions and
// deletions (DSPC, paper Section 3), answering SPC queries at any point.
//
// Typical use:
//   DynamicSpcIndex dspc(std::move(graph));
//   auto [d, c] = dspc.Query(s, t);
//   dspc.InsertEdge(u, v);   // IncSPC, not reconstruction
//   dspc.RemoveEdge(x, y);   // DecSPC
//
// The vertex ordering is frozen at construction (paper Section 6); newly
// added vertices receive the lowest ranks.

#ifndef DSPC_CORE_DYNAMIC_SPC_H_
#define DSPC_CORE_DYNAMIC_SPC_H_

#include <unordered_map>
#include <utility>
#include <vector>

#include "dspc/core/dec_spc.h"
#include "dspc/core/inc_spc.h"
#include "dspc/core/spc_index.h"
#include "dspc/core/update_stats.h"
#include "dspc/graph/graph.h"
#include "dspc/graph/ordering.h"

namespace dspc {

/// Options for DynamicSpcIndex.
struct DynamicSpcOptions {
  /// Ordering used for the initial HP-SPC build.
  OrderingOptions ordering;
  /// Passed through to DecSPC (isolated-vertex fast path toggle).
  DecSpc::Options dec;

  /// Lazy rebuild policy (paper §6, "Vertex Ordering Changes"): the frozen
  /// ordering degrades as the graph drifts, so rebuild from scratch with a
  /// fresh degree ordering after `rebuild_after_updates` applied updates
  /// (0 = never), or whenever the label count exceeds
  /// `rebuild_growth_factor` times the count at the last build
  /// (0 = never). Both triggers are checked after each update.
  size_t rebuild_after_updates = 0;
  double rebuild_growth_factor = 0.0;
};

/// A dynamic shortest-path-counting index over an owned graph.
class DynamicSpcIndex {
 public:
  /// Takes ownership of `graph` and builds its SPC-Index with HP-SPC.
  explicit DynamicSpcIndex(Graph graph, const DynamicSpcOptions& options = {});

  /// Adopts a pre-built index (must be a valid index of `graph`, e.g.
  /// loaded via SpcIndex::Load).
  DynamicSpcIndex(Graph graph, SpcIndex index,
                  const DynamicSpcOptions& options = {});

  /// SPC query: shortest distance and number of shortest paths between s
  /// and t; {kInfDistance, 0} when disconnected.
  SpcResult Query(Vertex s, Vertex t) const { return index_.Query(s, t); }

  /// Inserts edge (a, b) and maintains the index with IncSPC.
  UpdateStats InsertEdge(Vertex a, Vertex b);

  /// Deletes edge (a, b) and maintains the index with DecSPC.
  UpdateStats RemoveEdge(Vertex a, Vertex b);

  /// Adds an isolated vertex (lowest rank, self label only); returns its
  /// id.
  Vertex AddVertex();

  /// Deletes vertex v by removing all incident edges through DecSPC
  /// (paper Section 3); the id remains valid but isolated.
  UpdateStats RemoveVertex(Vertex v);

  /// Applies one Update (insert or delete).
  UpdateStats Apply(const struct Update& update);

  /// Applies a batch of updates in order, folding the per-update counters
  /// into one UpdateStats. Exact no-op pairs within the batch (an
  /// insertion followed by the deletion of the same edge, or vice versa)
  /// are cancelled out first — the cheap batch optimization available
  /// without the BatchHL-style machinery the paper cites as related work.
  UpdateStats ApplyBatch(const std::vector<struct Update>& updates);

  /// Evaluates many queries, using up to `threads` worker threads (the
  /// index is read-only during queries, so this is safe). With
  /// threads <= 1 this is a plain loop.
  std::vector<SpcResult> BatchQuery(
      const std::vector<std::pair<Vertex, Vertex>>& pairs,
      unsigned threads = 0) const;

  /// Rebuilds the index from scratch with HP-SPC under a fresh ordering —
  /// the paper's reconstruction baseline, also used by the lazy rebuild
  /// policy.
  void Rebuild();

  /// Number of updates applied since the last (re)build.
  size_t UpdatesSinceBuild() const { return updates_since_build_; }

  /// Number of times the lazy rebuild policy fired.
  size_t PolicyRebuilds() const { return policy_rebuilds_; }

  const Graph& graph() const { return graph_; }
  const SpcIndex& index() const { return index_; }

 private:
  /// Applies the §6 lazy rebuild policy after an applied update.
  void MaybePolicyRebuild();

  Graph graph_;
  SpcIndex index_;
  DynamicSpcOptions options_;
  IncSpc inc_;
  DecSpc dec_;
  size_t updates_since_build_ = 0;
  size_t entries_at_build_ = 0;
  size_t policy_rebuilds_ = 0;
};

}  // namespace dspc

#endif  // DSPC_CORE_DYNAMIC_SPC_H_
