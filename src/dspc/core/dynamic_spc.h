// DynamicSpcIndex: the library's main entry point. Owns a graph and its
// SPC-Index and keeps them consistent under edge/vertex insertions and
// deletions (DSPC, paper Section 3), answering SPC queries at any point.
//
// Typical use:
//   DynamicSpcIndex dspc(std::move(graph));
//   auto [d, c] = dspc.Query(s, t);
//   dspc.InsertEdge(u, v);   // IncSPC, not reconstruction
//   dspc.RemoveEdge(x, y);   // DecSPC
//
// The vertex ordering is frozen at construction (paper Section 6); newly
// added vertices receive the lowest ranks.

#ifndef DSPC_CORE_DYNAMIC_SPC_H_
#define DSPC_CORE_DYNAMIC_SPC_H_

#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "dspc/core/dec_spc.h"
#include "dspc/core/flat_spc_index.h"
#include "dspc/core/inc_spc.h"
#include "dspc/core/spc_index.h"
#include "dspc/core/update_stats.h"
#include "dspc/graph/graph.h"
#include "dspc/graph/ordering.h"

namespace dspc {

/// Options for DynamicSpcIndex.
struct DynamicSpcOptions {
  /// Ordering used for the initial HP-SPC build.
  OrderingOptions ordering;
  /// Passed through to DecSPC (isolated-vertex fast path toggle).
  DecSpc::Options dec;

  /// Lazy rebuild policy (paper §6, "Vertex Ordering Changes"): the frozen
  /// ordering degrades as the graph drifts, so rebuild from scratch with a
  /// fresh degree ordering after `rebuild_after_updates` applied updates
  /// (0 = never), or whenever the label count exceeds
  /// `rebuild_growth_factor` times the count at the last build
  /// (0 = never). Both triggers are checked after each update.
  size_t rebuild_after_updates = 0;
  double rebuild_growth_factor = 0.0;

  /// Serve queries from an immutable FlatSpcIndex snapshot (DESIGN.md §5).
  /// Every applied update bumps a generation counter that invalidates the
  /// snapshot; it is rebuilt lazily from the mutable index, so steady-state
  /// query traffic never touches the mutable label sets.
  bool enable_flat_snapshot = true;

  /// How many queries may be answered by the mutable index after an
  /// invalidation before the snapshot is rebuilt. 1 rebuilds on the first
  /// query after any update (snappiest serving, worst for update-heavy
  /// interleavings); larger values amortize rebuilds across update bursts.
  size_t snapshot_rebuild_after_queries = 8;
};

/// A dynamic shortest-path-counting index over an owned graph.
class DynamicSpcIndex {
 public:
  /// Takes ownership of `graph` and builds its SPC-Index with HP-SPC.
  explicit DynamicSpcIndex(Graph graph, const DynamicSpcOptions& options = {});

  /// Adopts a pre-built index (must be a valid index of `graph`, e.g.
  /// loaded via SpcIndex::Load).
  DynamicSpcIndex(Graph graph, SpcIndex index,
                  const DynamicSpcOptions& options = {});

  /// SPC query: shortest distance and number of shortest paths between s
  /// and t; {kInfDistance, 0} when disconnected. Served from the flat
  /// snapshot when it is fresh (see DynamicSpcOptions::enable_flat_snapshot).
  ///
  /// Thread-safety contract (all query paths): any number of threads may
  /// call Query / BatchQuery / FlatSnapshot concurrently — snapshots are
  /// immutable and handed out as shared_ptr, and the rebuild bookkeeping
  /// is mutex-guarded. Updates (InsertEdge / RemoveEdge / ...) require
  /// exclusive access, as they mutate the graph and index in place.
  SpcResult Query(Vertex s, Vertex t) const;

  /// Inserts edge (a, b) and maintains the index with IncSPC.
  UpdateStats InsertEdge(Vertex a, Vertex b);

  /// Deletes edge (a, b) and maintains the index with DecSPC.
  UpdateStats RemoveEdge(Vertex a, Vertex b);

  /// Adds an isolated vertex (lowest rank, self label only); returns its
  /// id.
  Vertex AddVertex();

  /// Deletes vertex v by removing all incident edges through DecSPC
  /// (paper Section 3); the id remains valid but isolated.
  UpdateStats RemoveVertex(Vertex v);

  /// Applies one Update (insert or delete).
  UpdateStats Apply(const struct Update& update);

  /// Applies a batch of updates in order, folding the per-update counters
  /// into one UpdateStats. Exact no-op pairs within the batch (an
  /// insertion followed by the deletion of the same edge, or vice versa)
  /// are cancelled out first — the cheap batch optimization available
  /// without the BatchHL-style machinery the paper cites as related work.
  UpdateStats ApplyBatch(const std::vector<struct Update>& updates);

  /// Evaluates many queries, using up to `threads` worker threads. With
  /// the flat snapshot enabled, a batch counts as pairs.size() stale
  /// queries against the rebuild budget — large batches refresh the
  /// snapshot once and run FlatSpcIndex::QueryManyParallel over it, small
  /// batches on a stale snapshot ride the mutable index (read-only during
  /// queries). With threads <= 1 the fallback is a plain loop.
  std::vector<SpcResult> BatchQuery(
      const std::vector<std::pair<Vertex, Vertex>>& pairs,
      unsigned threads = 0) const;

  /// The current flat snapshot, rebuilding it first if stale. The
  /// returned snapshot is immutable and kept alive by the shared_ptr, so
  /// callers may query it from many threads for as long as they hold it
  /// (later rebuilds produce new snapshots instead of mutating this one).
  std::shared_ptr<const FlatSpcIndex> FlatSnapshot() const;

  /// Structural generation: bumped by every applied update, vertex
  /// addition, and rebuild.
  uint64_t Generation() const { return generation_; }

  /// True when the flat snapshot reflects the current generation.
  bool SnapshotFresh() const {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    return flat_ != nullptr && flat_generation_ == generation_;
  }

  /// How many times the flat snapshot has been (re)built.
  size_t SnapshotRebuilds() const {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    return snapshot_rebuilds_;
  }

  /// Rebuilds the index from scratch with HP-SPC under a fresh ordering —
  /// the paper's reconstruction baseline, also used by the lazy rebuild
  /// policy.
  void Rebuild();

  /// Number of updates applied since the last (re)build.
  size_t UpdatesSinceBuild() const { return updates_since_build_; }

  /// Number of times the lazy rebuild policy fired.
  size_t PolicyRebuilds() const { return policy_rebuilds_; }

  const Graph& graph() const { return graph_; }
  const SpcIndex& index() const { return index_; }

 private:
  /// Applies the §6 lazy rebuild policy after an applied update.
  void MaybePolicyRebuild();

  /// Invalidates the flat snapshot after a structural change.
  void BumpGeneration() { ++generation_; }

  /// Rebuilds the flat snapshot if stale. Caller must hold snapshot_mu_.
  void RefreshSnapshotLocked() const;

  /// Charges `queries` stale queries against the rebuild budget and
  /// returns the snapshot to serve them from, or nullptr if they should
  /// ride the mutable index instead.
  std::shared_ptr<const FlatSpcIndex> SnapshotForQueries(
      size_t queries) const;

  Graph graph_;
  SpcIndex index_;
  DynamicSpcOptions options_;
  IncSpc inc_;
  DecSpc dec_;
  size_t updates_since_build_ = 0;
  size_t entries_at_build_ = 0;
  size_t policy_rebuilds_ = 0;

  // Flat-snapshot serving state. Mutable: refreshing the snapshot is a
  // logically-const caching step triggered from const query paths.
  // snapshot_mu_ guards all four fields; snapshots themselves are
  // immutable once published, so queries run on them outside the lock.
  // generation_ is written only by the (exclusive-access) update methods.
  uint64_t generation_ = 1;
  mutable std::mutex snapshot_mu_;
  mutable std::shared_ptr<const FlatSpcIndex> flat_;
  mutable uint64_t flat_generation_ = 0;
  mutable size_t stale_queries_ = 0;
  mutable size_t snapshot_rebuilds_ = 0;
};

}  // namespace dspc

#endif  // DSPC_CORE_DYNAMIC_SPC_H_
