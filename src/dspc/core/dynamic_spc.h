// DynamicSpcIndex: the library's core engine. Owns a graph and its
// SPC-Index and keeps them consistent under edge/vertex insertions and
// deletions (DSPC, paper Section 3), answering SPC queries at any point.
//
// Applications should usually sit one layer up, on the typed serving API
// (api/spc_service.h, DESIGN.md §9), which adds input validation,
// per-call consistency options, and read-your-writes tokens:
//   SpcService service(std::move(graph));
//   auto r = service.Query(s, t);              // StatusOr<QueryResponse>
//   if (r.ok()) use(r->result);
//   auto w = service.InsertEdge(u, v);         // IncSPC, not reconstruction
//   service.Query(s, t, {.min_generation = w->token.generation});
//
// Direct engine use remains supported for single-threaded tools/tests:
//   DynamicSpcIndex dspc(std::move(graph));
//   auto [d, c] = dspc.Query(s, t);
//   dspc.InsertEdge(u, v);
//   dspc.RemoveEdge(x, y);   // DecSPC
//
// The vertex ordering is frozen at construction (paper Section 6); newly
// added vertices receive the lowest ranks.
//
// Concurrency model (DESIGN.md §7): queries are served from immutable
// FlatSpcIndex snapshots published by a SnapshotManager; readers pin the
// current snapshot with one atomic load and never block on maintenance.
// The mutable graph/index pair is guarded by a shared mutex — updates
// take it exclusively, snapshot copies and the (rare) mutable-index query
// fallback take it shared — so any number of reader threads may run
// concurrently with writer threads. Individual updates are atomic;
// multi-update sequences (ApplyBatch, RemoveVertex) are not one atomic
// unit: readers may observe intermediate generations.

#ifndef DSPC_CORE_DYNAMIC_SPC_H_
#define DSPC_CORE_DYNAMIC_SPC_H_

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "dspc/common/thread_pool.h"
#include "dspc/core/dec_spc.h"
#include "dspc/core/flat_spc_index.h"
#include "dspc/core/inc_spc.h"
#include "dspc/core/pair_cache.h"
#include "dspc/core/parallel_build.h"
#include "dspc/core/snapshot_manager.h"
#include "dspc/core/spc_index.h"
#include "dspc/core/update_stats.h"
#include "dspc/graph/graph.h"
#include "dspc/graph/ordering.h"

namespace dspc {

/// Snapshot maintenance and serving knobs, grouped so the service layer
/// (api/spc_service.h) can consume and forward them as one unit.
struct SnapshotOptions {
  /// Serve queries from an immutable FlatSpcIndex snapshot (DESIGN.md §5).
  /// Every applied update bumps a generation counter that invalidates the
  /// snapshot; the refresh policy below decides who rebuilds it and when.
  bool enabled = true;

  /// How many queries may observe a stale snapshot before a rebuild is
  /// scheduled. 1 rebuilds on the first query after any update (snappiest
  /// serving, worst for update-heavy interleavings); larger values
  /// amortize rebuilds across update bursts.
  size_t rebuild_after_queries = 8;

  /// When and where stale snapshots are rebuilt (DESIGN.md §7):
  ///  - kSync (default, the historical behavior): stale queries ride the
  ///    mutable index, then one query pays the rebuild inline. Always
  ///    current answers; deterministic rebuild counts.
  ///  - kBackground: queries always serve the pinned snapshot — possibly
  ///    a few generations stale — and rebuilds happen on a worker thread,
  ///    so the query path never blocks on maintenance or on writers. An
  ///    initial snapshot is published eagerly at construction.
  ///  - kManual: only FlatSnapshot()/WaitForFreshSnapshot() rebuild.
  RefreshPolicy refresh = RefreshPolicy::kSync;

  /// Vertex-range shards in the flat snapshot (DESIGN.md §8). Updates
  /// mark the shards of every vertex whose label set changed; a refresh
  /// repacks only those and adopts the rest from the previous snapshot,
  /// so rebuild cost tracks update locality instead of total index size.
  /// 1 reproduces the monolithic layout; 0 picks kDefaultShards. The
  /// effective count is rounded to power-of-two shard widths
  /// (FlatSpcIndex::ComputeShardLayout).
  static constexpr size_t kDefaultShards = 16;
  size_t shards = 0;

  /// Worker threads for repacking dirty shards during one refresh
  /// (FlatSpcIndex::Rebuild). 0 picks hardware concurrency (capped at
  /// 8); 1 packs serially on the rebuilding thread.
  unsigned rebuild_threads = 0;

  /// Reader backpressure under kBackground: the policy's contract is
  /// *bounded* staleness, but spinning readers on a saturated machine
  /// can starve the rebuild worker of CPU, letting the published
  /// snapshot fall arbitrarily far behind. When the snapshot trails the
  /// mutable index by more than this many generations, each
  /// snapshot-served query donates one timeslice (std::this_thread::
  /// yield) before answering — queries never block and never wait for a
  /// rebuild, they just stop out-competing maintenance for the CPU that
  /// would resolve the lag. Costs a few microseconds per query while
  /// saturated, zero when the worker keeps up. 0 disables.
  uint64_t backpressure_lag = 8;

  /// Writer-priority yield under kBackground: snapshot-served queries
  /// never touch the writer's lock, so on a machine with more spinning
  /// readers than cores the scheduler starves update application (the
  /// writer computes label changes on an equal CPU share against
  /// readers that never block). While any update is mid-application,
  /// each snapshot-served query donates one timeslice before answering:
  /// updates then process at near-isolated speed and queries still
  /// answer (stale, non-blocking) in microseconds. One relaxed atomic
  /// load per query when no writer is active.
  bool writer_priority = true;
};

/// Options for DynamicSpcIndex.
struct DynamicSpcOptions {
  /// Ordering used for the initial HP-SPC build.
  OrderingOptions ordering;
  /// Passed through to DecSPC (isolated-vertex fast path toggle).
  DecSpc::Options dec;

  /// Lazy rebuild policy (paper §6, "Vertex Ordering Changes"): the frozen
  /// ordering degrades as the graph drifts, so rebuild from scratch with a
  /// fresh degree ordering after `rebuild_after_updates` applied updates
  /// (0 = never), or whenever the label count exceeds
  /// `rebuild_growth_factor` times the count at the last build
  /// (0 = never). Both triggers are checked after each update.
  size_t rebuild_after_updates = 0;
  double rebuild_growth_factor = 0.0;

  /// Starting value of the structural generation counter (0 means the
  /// historical default of 1). Recovery (persist/recovery.h) passes the
  /// loaded checkpoint's generation here so that replaying the WAL
  /// advances the counter to the exact pre-crash value and previously
  /// issued WriteTokens stay meaningful across a restart.
  uint64_t initial_generation = 0;

  /// Snapshot maintenance/serving knobs (DESIGN.md §5, §7, §8).
  SnapshotOptions snapshot;

  /// Full-(re)build parallelism (DESIGN.md §12). Every HP-SPC
  /// construction this engine performs — at creation, in Rebuild(), and
  /// when the lazy rebuild policy fires (SpcService::Open's
  /// no-checkpoint bootstrap funnels through the constructor, so it is
  /// covered too) — goes through BuildSpcIndexParallel with these
  /// options. threads = 1 forces the sequential builder; the default 0
  /// uses hardware concurrency on graphs large enough to amortize the
  /// worker pool (kParallelBuildMinVertices) and stays sequential below.
  /// The result is label-identical to the sequential builder either way.
  ParallelBuildOptions build;

  /// Hot-pair result cache consulted by the service layer on
  /// snapshot-served reads (api/spc_service.h, DESIGN.md §15). The
  /// engine itself ignores it; it rides these options so every
  /// SpcService entry point — constructors, Open, OpenWithState — picks
  /// it up without a signature change.
  PairCacheOptions pair_cache;
};

/// A dynamic shortest-path-counting index over an owned graph.
class DynamicSpcIndex {
 public:
  /// Takes ownership of `graph` and builds its SPC-Index with HP-SPC.
  explicit DynamicSpcIndex(Graph graph, const DynamicSpcOptions& options = {});

  /// Adopts a pre-built index (must be a valid index of `graph`, e.g.
  /// loaded via SpcIndex::Load).
  DynamicSpcIndex(Graph graph, SpcIndex index,
                  const DynamicSpcOptions& options = {});

  /// SPC query: shortest distance and number of shortest paths between s
  /// and t; {kInfDistance, 0} when disconnected.
  ///
  /// Thread-safety contract (all query paths): any number of threads may
  /// call Query / BatchQuery / FlatSnapshot / PinSnapshot concurrently
  /// with each other and with updates. Snapshot-served queries never
  /// block; queries that ride the mutable index take a shared lock and
  /// may briefly wait for an in-flight update. Under
  /// RefreshPolicy::kBackground answers may trail the newest updates by a
  /// bounded number of generations (see SnapshotOptions).
  ///
  /// Out-of-range vertex ids are answered as disconnected
  /// ({kInfDistance, 0}); the service layer (api/spc_service.h) rejects
  /// them earlier with kInvalidArgument.
  SpcResult Query(Vertex s, Vertex t) const;

  /// Inserts edge (a, b) and maintains the index with IncSPC.
  ///
  /// Blocking: takes the writer (exclusive) lock — waits for in-flight
  /// updates and live-served reads. Thread-safe against all other
  /// methods. Inserting an existing edge is a no-op (stats.applied is
  /// false, generation unchanged). Endpoints must be in range; the
  /// service layer enforces this, raw callers own it.
  UpdateStats InsertEdge(Vertex a, Vertex b);

  /// Deletes edge (a, b) and maintains the index with DecSPC.
  /// Same blocking/thread-safety/no-op contract as InsertEdge.
  UpdateStats RemoveEdge(Vertex a, Vertex b);

  /// Adds an isolated vertex (lowest rank, self label only); returns its
  /// id. Takes the writer lock; forces a full snapshot rebuild next
  /// refresh (the shard layout derives from the vertex count).
  Vertex AddVertex();

  /// Deletes vertex v by removing all incident edges through DecSPC
  /// (paper Section 3); the id remains valid but isolated. Runs one
  /// writer-locked decremental update per incident edge — readers may
  /// observe intermediate generations. No-op for out-of-range v.
  UpdateStats RemoveVertex(Vertex v);

  /// Applies one Update (insert or delete); see InsertEdge/RemoveEdge.
  UpdateStats Apply(const struct Update& update);

  /// Applies a batch of updates in order, folding the per-update counters
  /// into one UpdateStats. Exact no-op pairs within the batch (an
  /// insertion followed by the deletion of the same edge, or vice versa)
  /// are cancelled out first — the cheap batch optimization available
  /// without the BatchHL-style machinery the paper cites as related work.
  ///
  /// When `reports` is non-null it is resized to updates.size() and
  /// reports[i] records update i's individual outcome: kApplied with its
  /// own UpdateStats and the structural generation that update advanced
  /// the index to, or kNoOp with a static reason (already-present /
  /// missing edge, or cancelled against an exact inverse in the batch).
  /// The engine never emits kRejected — admission rejection is the
  /// service layer's job (SpcService::ApplyUpdates). Each update takes
  /// the writer lock individually; the batch is not one atomic unit.
  UpdateStats ApplyBatch(std::span<const struct Update> updates,
                         std::vector<WriteReport>* reports = nullptr);

  /// Evaluates many queries, using up to `threads` worker threads. With
  /// the flat snapshot enabled, a batch counts as pairs.size() stale
  /// queries against the rebuild budget and runs
  /// FlatSpcIndex::QueryManyParallel over the acquired snapshot (fanned
  /// out on the shared QueryPool — no per-batch thread spawns); batches
  /// that should ride the mutable index go through BatchQueryLive. Pairs
  /// with out-of-range ids answer {kInfDistance, 0}.
  std::vector<SpcResult> BatchQuery(
      const std::vector<std::pair<Vertex, Vertex>>& pairs,
      unsigned threads = 0) const;

  // --- serving primitives (the toolkit SpcService routes through;
  // DESIGN.md §9) ---------------------------------------------------------

  /// Serves one query from the mutable index under the shared lock —
  /// always current, may briefly wait for an in-flight update.
  /// Out-of-range ids answer {kInfDistance, 0}. When `generation` is
  /// non-null it receives the structural generation read UNDER the lock
  /// — the exact state the answer reflects (writers bump the generation
  /// while holding the lock exclusively, so an admission-time read can
  /// understate what a lock wait later served).
  SpcResult QueryLive(Vertex s, Vertex t,
                      uint64_t* generation = nullptr) const;

  /// Deadline-bounded QueryLive: tries to take the shared lock until
  /// `deadline` and gives up instead of blocking past it. Returns true
  /// with *out filled on success, false when the lock could not be
  /// acquired in time (an already-expired deadline degrades to a pure
  /// try-lock: it still serves when the lock is free). The primitive
  /// behind ReadOptions::timeout on kFresh reads (DESIGN.md §10).
  /// `generation` as in QueryLive.
  bool QueryLiveBefore(Vertex s, Vertex t,
                       std::chrono::steady_clock::time_point deadline,
                       SpcResult* out, uint64_t* generation = nullptr) const;

  /// Serves a batch from the mutable index under one shared lock (all
  /// answers reflect one generation — written to `generation` when
  /// non-null, as in QueryLive), parallelized over the facade's
  /// lazily-spawned common/ThreadPool instead of ad-hoc threads.
  /// threads = 0 picks hardware concurrency; small batches run inline.
  std::vector<SpcResult> BatchQueryLive(
      std::span<const std::pair<Vertex, Vertex>> pairs, unsigned threads = 0,
      uint64_t* generation = nullptr) const;

  /// Deadline-bounded BatchQueryLive: acquires the shared lock with a
  /// timed try-lock like QueryLiveBefore; false on timeout (*out is left
  /// untouched). The deadline bounds the lock wait only — an admitted
  /// batch runs to completion, and it runs SERIALLY on the calling
  /// thread: the shared QueryPool serializes fork-join regions, so a
  /// timed batch must not queue behind another batch's region for an
  /// unbounded stretch while holding the shared lock (which would both
  /// void the deadline and stall writers).
  bool BatchQueryLiveBefore(std::span<const std::pair<Vertex, Vertex>> pairs,
                            unsigned threads,
                            std::chrono::steady_clock::time_point deadline,
                            std::vector<SpcResult>* out,
                            uint64_t* generation = nullptr) const;

  /// The query-path snapshot acquisition: pins the published snapshot and
  /// charges `queries` observations against the staleness budget, which
  /// is what schedules (kBackground) or performs (kSync, after the budget)
  /// rebuilds. Empty when the caller should ride the mutable index — or
  /// when snapshots are disabled. The two-argument form takes a
  /// generation the caller already loaded (hot-path: skips one atomic
  /// read); both are header-inline because they sit on every service
  /// query.
  SnapshotManager::Pinned AcquireSnapshot(size_t queries) const {
    return AcquireSnapshot(Generation(), queries);
  }
  SnapshotManager::Pinned AcquireSnapshot(uint64_t current_generation,
                                          size_t queries) const {
    if (!options_.snapshot.enabled) return {};
    return snapshots_->Acquire(current_generation, queries);
  }

  /// Charges the staleness budget without any rebuild risk (see
  /// SnapshotManager::ChargeOnly) — the deadline-bounded read path under
  /// kSync, which must not pay for maintenance but must keep rebuilds
  /// due. No-op with snapshots disabled.
  void ChargeSnapshotBudget(size_t queries) const {
    if (options_.snapshot.enabled) snapshots_->ChargeOnly(queries);
  }

  /// Bounded-staleness/writer-priority pacing for snapshot-served reads
  /// (SnapshotOptions::backpressure_lag, writer_priority): donates one
  /// timeslice when the pinned generation trails too far or a writer is
  /// mid-update. Never blocks. Callers serving a pin they obtained
  /// themselves (SpcService) apply this before answering. Header-inline
  /// (one relaxed load in the common case) because it runs per
  /// snapshot-served query.
  void YieldForMaintenance(uint64_t current_generation,
                           uint64_t pinned_generation) const {
    if (options_.snapshot.refresh != RefreshPolicy::kBackground) {
      return;  // sync/manual readers already pace themselves on the lock
    }
    if (options_.snapshot.writer_priority &&
        active_writers_.load(std::memory_order_relaxed) > 0) {
      std::this_thread::yield();
      return;
    }
    // A publish can race ahead of this reader's generation read, making
    // the pin *newer* than current_generation — that is freshness, not
    // lag, so only subtract when the pin actually trails.
    if (options_.snapshot.backpressure_lag != 0 &&
        pinned_generation < current_generation &&
        current_generation - pinned_generation >
            options_.snapshot.backpressure_lag) {
      std::this_thread::yield();
    }
  }

  /// Blocks until a snapshot of generation >= `generation` is published
  /// and returns it pinned (the token-wait primitive behind
  /// SpcService::WaitForSnapshot). The caller must guarantee the mutable
  /// index has reached `generation`.
  SnapshotManager::Pinned AwaitSnapshotAtLeast(uint64_t generation) const;

  /// Deadline-bounded AwaitSnapshotAtLeast: stops waiting at `deadline`
  /// and returns whatever is published then — the caller detects a
  /// timeout by pin.generation < generation (or an empty pin). See
  /// SnapshotManager::AwaitGeneration(deadline) for the per-policy
  /// semantics of the bound.
  SnapshotManager::Pinned AwaitSnapshotAtLeast(
      uint64_t generation,
      std::chrono::steady_clock::time_point deadline) const;

  /// Current vertex-id space [0, NumVertices()), readable lock-free (the
  /// admission check of the service layer). Grows under AddVertex; never
  /// shrinks.
  size_t NumVertices() const {
    return num_vertices_.load(std::memory_order_acquire);
  }

  /// The current flat snapshot, rebuilding it first if stale (under
  /// kBackground this waits for the worker to publish). The returned
  /// snapshot is immutable and kept alive by the shared_ptr, so callers
  /// may query it from many threads for as long as they hold it (later
  /// rebuilds publish new snapshots instead of mutating this one).
  std::shared_ptr<const FlatSpcIndex> FlatSnapshot() const;

  /// Pins the currently published snapshot together with the generation
  /// it reflects, without charging the staleness budget or triggering any
  /// rebuild. Empty before the first publish. The non-blocking read for
  /// callers that want to reason about snapshot staleness themselves.
  SnapshotManager::Pinned PinSnapshot() const;

  /// Requests (if needed) and waits for a snapshot of the current
  /// generation, returning it pinned. The quiesce point for tests and
  /// benches running under RefreshPolicy::kBackground. Call from a
  /// moment when no writer is concurrently advancing the generation.
  SnapshotManager::Pinned WaitForFreshSnapshot() const;

  /// Structural generation: bumped by every applied update, vertex
  /// addition, and rebuild.
  uint64_t Generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  /// True when the published flat snapshot reflects the current
  /// generation.
  bool SnapshotFresh() const {
    return snapshots_->FreshAt(Generation()) &&
           static_cast<bool>(snapshots_->Pin());
  }

  /// How many times the flat snapshot has been (re)built.
  size_t SnapshotRebuilds() const { return snapshots_->Rebuilds(); }

  /// The snapshot manager's counters (background rebuilds, retired
  /// snapshots, published generation). Always present — with
  /// snapshot.enabled off the query paths simply never consult it.
  const SnapshotManager* snapshots() const { return snapshots_.get(); }

  /// Rebuilds the index from scratch with HP-SPC under a fresh ordering —
  /// the paper's reconstruction baseline, also used by the lazy rebuild
  /// policy. Takes the writer lock for the whole build (live reads wait;
  /// snapshot reads keep serving the old snapshot) and forces a full
  /// snapshot rebuild next refresh.
  void Rebuild();

  /// Number of updates applied since the last (re)build.
  size_t UpdatesSinceBuild() const { return updates_since_build_; }

  /// Number of times the lazy rebuild policy fired.
  size_t PolicyRebuilds() const { return policy_rebuilds_; }

  /// Freezes the mutable state by taking (and holding, for the guard's
  /// lifetime) the writer lock: all writes and live-served reads block
  /// until the guard is released; snapshot-served reads keep answering —
  /// they never touch this lock. For tooling that needs the mutable
  /// graph/index pair quiescent (consistent external backups, tests
  /// proving the non-blocking read paths really don't block). Blocks
  /// until in-flight writers and live reads drain.
  std::unique_lock<std::shared_timed_mutex> FreezeWrites() const {
    return std::unique_lock<std::shared_timed_mutex>(index_mu_);
  }

  /// The facade's lazily-spawned query worker pool, shared by
  /// BatchQueryLive and the snapshot batch drivers (no serving batch ever
  /// spawns ad-hoc threads). Created on first call, so purely serial
  /// workloads never park worker threads; sized like the rebuild pool
  /// (hardware concurrency capped at 8). Never null.
  ThreadPool* QueryPool() const;

  /// Resolves the pool a snapshot batch of `pairs` queries should fan
  /// out over: QueryPool() when the batch is big enough to actually go
  /// parallel under `threads`, nullptr (serial — no pool spawn)
  /// otherwise. Pass the result to FlatSpcIndex::QueryManyParallel.
  ThreadPool* PoolForBatch(size_t pairs, unsigned threads) const;

  /// The owned graph / mutable index. Not synchronized: callers reading
  /// these concurrently with updates must provide their own exclusion
  /// (single-threaded tests and benches use them freely, or hold
  /// FreezeWrites()).
  const Graph& graph() const { return graph_; }
  const SpcIndex& index() const { return index_; }

  /// The options this engine was constructed with (immutable).
  const DynamicSpcOptions& options() const { return options_; }

 private:
  /// Shared tail of both constructors: resolves the shard layout and
  /// wires up the snapshot manager (plus the eager kBackground publish).
  void InitSnapshots();

  /// Applies the §6 lazy rebuild policy after an applied update. Caller
  /// holds index_mu_ exclusively.
  void MaybePolicyRebuildLocked();

  /// Rebuild body; caller holds index_mu_ exclusively.
  void RebuildLocked();

  /// Invalidates the flat snapshot after a structural change. Caller
  /// holds index_mu_ exclusively.
  void BumpGeneration() {
    generation_.fetch_add(1, std::memory_order_acq_rel);
  }

  /// Drains the mutable index's touched-vertex set into the per-shard
  /// dirty generations (dirty-shard tracking, DESIGN.md §8). Caller
  /// holds index_mu_ exclusively and has already bumped the generation.
  void NoteTouchedLocked();

  /// Recomputes the shard layout and marks everything dirty — required
  /// whenever the ordering or vertex count changes (AddVertex, Rebuild),
  /// since shard boundaries and packed hub ranks both derive from them.
  /// Caller holds index_mu_ exclusively (or is the constructor).
  void ResetShardLayoutLocked();

  /// SnapshotManager source: under the shared lock, decides which shards
  /// are dirty relative to `prev` (per-shard generations vs. the dirty
  /// tracking) and copies only those label ranges — or everything, when
  /// the layout stamp no longer matches.
  FlatSpcIndex::IndexDelta CopyDeltaForSnapshot(
      const FlatSpcIndex* prev) const;

  /// True when the pinned snapshot covers both endpoints — a stale
  /// snapshot predates vertices added after it was built, and those
  /// queries must ride the mutable index.
  static bool Covers(const SnapshotManager::Pinned& pin, Vertex s, Vertex t) {
    return pin && s < pin->NumVertices() && t < pin->NumVertices();
  }

  /// Shared body of BatchQueryLive/BatchQueryLiveBefore; the caller holds
  /// index_mu_ shared.
  void BatchQueryLiveLocked(std::span<const std::pair<Vertex, Vertex>> pairs,
                            unsigned threads,
                            std::vector<SpcResult>* results) const;

  Graph graph_;
  SpcIndex index_;
  DynamicSpcOptions options_;
  IncSpc inc_;
  DecSpc dec_;
  size_t updates_since_build_ = 0;
  size_t entries_at_build_ = 0;
  size_t policy_rebuilds_ = 0;

  /// Dirty-shard tracking (DESIGN.md §8), all written under exclusive
  /// index_mu_ and read under the shared lock by the snapshot source:
  /// the requested shard count, the current layout (mirrors
  /// FlatSpcIndex::ComputeShardLayout), a stamp identifying the
  /// (ordering, vertex count, layout) triple, and per shard the last
  /// generation at which one of its vertices' label sets changed.
  size_t snapshot_shards_ = 1;
  FlatSpcIndex::ShardLayout shard_layout_;
  uint64_t layout_stamp_ = 1;
  std::vector<uint64_t> shard_dirty_gen_;

  /// Guards graph_/index_ (and the counters above): updates exclusive,
  /// snapshot copies and mutable-index queries shared. Timed so the
  /// deadline-bounded live reads (QueryLiveBefore) can give up instead
  /// of blocking behind a writer.
  mutable std::shared_timed_mutex index_mu_;

  /// Structural generation, read lock-free by query paths. Written only
  /// under exclusive index_mu_.
  std::atomic<uint64_t> generation_{1};

  /// Lock-free mirror of graph_.NumVertices() for request admission.
  /// Written only under exclusive index_mu_ (constructor, AddVertex).
  std::atomic<size_t> num_vertices_{0};

  /// The query worker pool, spawned on first use (see QueryPool).
  mutable std::once_flag live_pool_once_;
  mutable std::unique_ptr<ThreadPool> live_pool_;

  /// Updates currently being applied (including time spent waiting for
  /// the exclusive lock) — the writer-priority signal read lock-free by
  /// MaybeBackpressure.
  mutable std::atomic<uint32_t> active_writers_{0};

  /// Snapshot publication/rebuild machinery. Declared last so its
  /// destructor joins the background worker before graph_/index_ (which
  /// the worker's copy step reads) are torn down.
  std::unique_ptr<SnapshotManager> snapshots_;
};

}  // namespace dspc

#endif  // DSPC_CORE_DYNAMIC_SPC_H_
