// DynamicSpcIndex: the library's main entry point. Owns a graph and its
// SPC-Index and keeps them consistent under edge/vertex insertions and
// deletions (DSPC, paper Section 3), answering SPC queries at any point.
//
// Typical use:
//   DynamicSpcIndex dspc(std::move(graph));
//   auto [d, c] = dspc.Query(s, t);
//   dspc.InsertEdge(u, v);   // IncSPC, not reconstruction
//   dspc.RemoveEdge(x, y);   // DecSPC
//
// The vertex ordering is frozen at construction (paper Section 6); newly
// added vertices receive the lowest ranks.
//
// Concurrency model (DESIGN.md §7): queries are served from immutable
// FlatSpcIndex snapshots published by a SnapshotManager; readers pin the
// current snapshot with one atomic load and never block on maintenance.
// The mutable graph/index pair is guarded by a shared mutex — updates
// take it exclusively, snapshot copies and the (rare) mutable-index query
// fallback take it shared — so any number of reader threads may run
// concurrently with writer threads. Individual updates are atomic;
// multi-update sequences (ApplyBatch, RemoveVertex) are not one atomic
// unit: readers may observe intermediate generations.

#ifndef DSPC_CORE_DYNAMIC_SPC_H_
#define DSPC_CORE_DYNAMIC_SPC_H_

#include <atomic>
#include <memory>
#include <shared_mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "dspc/core/dec_spc.h"
#include "dspc/core/flat_spc_index.h"
#include "dspc/core/inc_spc.h"
#include "dspc/core/snapshot_manager.h"
#include "dspc/core/spc_index.h"
#include "dspc/core/update_stats.h"
#include "dspc/graph/graph.h"
#include "dspc/graph/ordering.h"

namespace dspc {

/// Options for DynamicSpcIndex.
struct DynamicSpcOptions {
  /// Ordering used for the initial HP-SPC build.
  OrderingOptions ordering;
  /// Passed through to DecSPC (isolated-vertex fast path toggle).
  DecSpc::Options dec;

  /// Lazy rebuild policy (paper §6, "Vertex Ordering Changes"): the frozen
  /// ordering degrades as the graph drifts, so rebuild from scratch with a
  /// fresh degree ordering after `rebuild_after_updates` applied updates
  /// (0 = never), or whenever the label count exceeds
  /// `rebuild_growth_factor` times the count at the last build
  /// (0 = never). Both triggers are checked after each update.
  size_t rebuild_after_updates = 0;
  double rebuild_growth_factor = 0.0;

  /// Serve queries from an immutable FlatSpcIndex snapshot (DESIGN.md §5).
  /// Every applied update bumps a generation counter that invalidates the
  /// snapshot; the refresh policy below decides who rebuilds it and when.
  bool enable_flat_snapshot = true;

  /// How many queries may observe a stale snapshot before a rebuild is
  /// scheduled. 1 rebuilds on the first query after any update (snappiest
  /// serving, worst for update-heavy interleavings); larger values
  /// amortize rebuilds across update bursts.
  size_t snapshot_rebuild_after_queries = 8;

  /// When and where stale snapshots are rebuilt (DESIGN.md §7):
  ///  - kSync (default, the historical behavior): stale queries ride the
  ///    mutable index, then one query pays the rebuild inline. Always
  ///    current answers; deterministic rebuild counts.
  ///  - kBackground: queries always serve the pinned snapshot — possibly
  ///    a few generations stale — and rebuilds happen on a worker thread,
  ///    so the query path never blocks on maintenance or on writers. An
  ///    initial snapshot is published eagerly at construction.
  ///  - kManual: only FlatSnapshot()/WaitForFreshSnapshot() rebuild.
  RefreshPolicy snapshot_refresh = RefreshPolicy::kSync;

  /// Vertex-range shards in the flat snapshot (DESIGN.md §8). Updates
  /// mark the shards of every vertex whose label set changed; a refresh
  /// repacks only those and adopts the rest from the previous snapshot,
  /// so rebuild cost tracks update locality instead of total index size.
  /// 1 reproduces the monolithic layout; 0 picks kDefaultSnapshotShards.
  /// The effective count is rounded to power-of-two shard widths
  /// (FlatSpcIndex::ComputeShardLayout).
  static constexpr size_t kDefaultSnapshotShards = 16;
  size_t snapshot_shards = 0;

  /// Worker threads for repacking dirty shards during one refresh
  /// (FlatSpcIndex::Rebuild). 0 picks hardware concurrency (capped at
  /// 8); 1 packs serially on the rebuilding thread.
  unsigned snapshot_rebuild_threads = 0;

  /// Reader backpressure under kBackground: the policy's contract is
  /// *bounded* staleness, but spinning readers on a saturated machine
  /// can starve the rebuild worker of CPU, letting the published
  /// snapshot fall arbitrarily far behind. When the snapshot trails the
  /// mutable index by more than this many generations, each
  /// snapshot-served query donates one timeslice (std::this_thread::
  /// yield) before answering — queries never block and never wait for a
  /// rebuild, they just stop out-competing maintenance for the CPU that
  /// would resolve the lag. Costs a few microseconds per query while
  /// saturated, zero when the worker keeps up. 0 disables.
  uint64_t snapshot_backpressure_lag = 8;

  /// Writer-priority yield under kBackground: snapshot-served queries
  /// never touch the writer's lock, so on a machine with more spinning
  /// readers than cores the scheduler starves update application (the
  /// writer computes label changes on an equal CPU share against
  /// readers that never block). While any update is mid-application,
  /// each snapshot-served query donates one timeslice before answering:
  /// updates then process at near-isolated speed and queries still
  /// answer (stale, non-blocking) in microseconds. One relaxed atomic
  /// load per query when no writer is active.
  bool snapshot_writer_priority = true;
};

/// A dynamic shortest-path-counting index over an owned graph.
class DynamicSpcIndex {
 public:
  /// Takes ownership of `graph` and builds its SPC-Index with HP-SPC.
  explicit DynamicSpcIndex(Graph graph, const DynamicSpcOptions& options = {});

  /// Adopts a pre-built index (must be a valid index of `graph`, e.g.
  /// loaded via SpcIndex::Load).
  DynamicSpcIndex(Graph graph, SpcIndex index,
                  const DynamicSpcOptions& options = {});

  /// SPC query: shortest distance and number of shortest paths between s
  /// and t; {kInfDistance, 0} when disconnected.
  ///
  /// Thread-safety contract (all query paths): any number of threads may
  /// call Query / BatchQuery / FlatSnapshot / PinSnapshot concurrently
  /// with each other and with updates. Snapshot-served queries never
  /// block; queries that ride the mutable index take a shared lock and
  /// may briefly wait for an in-flight update. Under
  /// RefreshPolicy::kBackground answers may trail the newest updates by a
  /// bounded number of generations (see DynamicSpcOptions).
  SpcResult Query(Vertex s, Vertex t) const;

  /// Inserts edge (a, b) and maintains the index with IncSPC.
  UpdateStats InsertEdge(Vertex a, Vertex b);

  /// Deletes edge (a, b) and maintains the index with DecSPC.
  UpdateStats RemoveEdge(Vertex a, Vertex b);

  /// Adds an isolated vertex (lowest rank, self label only); returns its
  /// id.
  Vertex AddVertex();

  /// Deletes vertex v by removing all incident edges through DecSPC
  /// (paper Section 3); the id remains valid but isolated.
  UpdateStats RemoveVertex(Vertex v);

  /// Applies one Update (insert or delete).
  UpdateStats Apply(const struct Update& update);

  /// Applies a batch of updates in order, folding the per-update counters
  /// into one UpdateStats. Exact no-op pairs within the batch (an
  /// insertion followed by the deletion of the same edge, or vice versa)
  /// are cancelled out first — the cheap batch optimization available
  /// without the BatchHL-style machinery the paper cites as related work.
  UpdateStats ApplyBatch(const std::vector<struct Update>& updates);

  /// Evaluates many queries, using up to `threads` worker threads. With
  /// the flat snapshot enabled, a batch counts as pairs.size() stale
  /// queries against the rebuild budget and runs
  /// FlatSpcIndex::QueryManyParallel over the acquired snapshot; batches
  /// that should ride the mutable index shard it read-locked. With
  /// threads <= 1 the fallback is a plain loop.
  std::vector<SpcResult> BatchQuery(
      const std::vector<std::pair<Vertex, Vertex>>& pairs,
      unsigned threads = 0) const;

  /// The current flat snapshot, rebuilding it first if stale (under
  /// kBackground this waits for the worker to publish). The returned
  /// snapshot is immutable and kept alive by the shared_ptr, so callers
  /// may query it from many threads for as long as they hold it (later
  /// rebuilds publish new snapshots instead of mutating this one).
  std::shared_ptr<const FlatSpcIndex> FlatSnapshot() const;

  /// Pins the currently published snapshot together with the generation
  /// it reflects, without charging the staleness budget or triggering any
  /// rebuild. Empty before the first publish. The non-blocking read for
  /// callers that want to reason about snapshot staleness themselves.
  SnapshotManager::Pinned PinSnapshot() const;

  /// Requests (if needed) and waits for a snapshot of the current
  /// generation, returning it pinned. The quiesce point for tests and
  /// benches running under RefreshPolicy::kBackground. Call from a
  /// moment when no writer is concurrently advancing the generation.
  SnapshotManager::Pinned WaitForFreshSnapshot() const;

  /// Structural generation: bumped by every applied update, vertex
  /// addition, and rebuild.
  uint64_t Generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  /// True when the published flat snapshot reflects the current
  /// generation.
  bool SnapshotFresh() const {
    return snapshots_->FreshAt(Generation()) &&
           static_cast<bool>(snapshots_->Pin());
  }

  /// How many times the flat snapshot has been (re)built.
  size_t SnapshotRebuilds() const { return snapshots_->Rebuilds(); }

  /// The snapshot manager's counters (background rebuilds, retired
  /// snapshots, published generation). Always present — with
  /// enable_flat_snapshot off the query paths simply never consult it.
  const SnapshotManager* snapshots() const { return snapshots_.get(); }

  /// Rebuilds the index from scratch with HP-SPC under a fresh ordering —
  /// the paper's reconstruction baseline, also used by the lazy rebuild
  /// policy.
  void Rebuild();

  /// Number of updates applied since the last (re)build.
  size_t UpdatesSinceBuild() const { return updates_since_build_; }

  /// Number of times the lazy rebuild policy fired.
  size_t PolicyRebuilds() const { return policy_rebuilds_; }

  /// The owned graph / mutable index. Not synchronized: callers reading
  /// these concurrently with updates must provide their own exclusion
  /// (single-threaded tests and benches use them freely).
  const Graph& graph() const { return graph_; }
  const SpcIndex& index() const { return index_; }

 private:
  /// Shared tail of both constructors: resolves the shard layout and
  /// wires up the snapshot manager (plus the eager kBackground publish).
  void InitSnapshots();

  /// Applies the §6 lazy rebuild policy after an applied update. Caller
  /// holds index_mu_ exclusively.
  void MaybePolicyRebuildLocked();

  /// Rebuild body; caller holds index_mu_ exclusively.
  void RebuildLocked();

  /// Invalidates the flat snapshot after a structural change. Caller
  /// holds index_mu_ exclusively.
  void BumpGeneration() {
    generation_.fetch_add(1, std::memory_order_acq_rel);
  }

  /// Drains the mutable index's touched-vertex set into the per-shard
  /// dirty generations (dirty-shard tracking, DESIGN.md §8). Caller
  /// holds index_mu_ exclusively and has already bumped the generation.
  void NoteTouchedLocked();

  /// Recomputes the shard layout and marks everything dirty — required
  /// whenever the ordering or vertex count changes (AddVertex, Rebuild),
  /// since shard boundaries and packed hub ranks both derive from them.
  /// Caller holds index_mu_ exclusively (or is the constructor).
  void ResetShardLayoutLocked();

  /// SnapshotManager source: under the shared lock, decides which shards
  /// are dirty relative to `prev` (per-shard generations vs. the dirty
  /// tracking) and copies only those label ranges — or everything, when
  /// the layout stamp no longer matches.
  FlatSpcIndex::IndexDelta CopyDeltaForSnapshot(
      const FlatSpcIndex* prev) const;

  /// True when the pinned snapshot covers both endpoints — a stale
  /// snapshot predates vertices added after it was built, and those
  /// queries must ride the mutable index.
  static bool Covers(const SnapshotManager::Pinned& pin, Vertex s, Vertex t) {
    return pin && s < pin->NumVertices() && t < pin->NumVertices();
  }

  /// Bounded-staleness enforcement (snapshot_backpressure_lag): donates
  /// one timeslice when the snapshot being served trails the mutable
  /// index too far, so spinning readers cannot starve maintenance.
  void MaybeBackpressure(uint64_t current_generation,
                         uint64_t pinned_generation) const;

  Graph graph_;
  SpcIndex index_;
  DynamicSpcOptions options_;
  IncSpc inc_;
  DecSpc dec_;
  size_t updates_since_build_ = 0;
  size_t entries_at_build_ = 0;
  size_t policy_rebuilds_ = 0;

  /// Dirty-shard tracking (DESIGN.md §8), all written under exclusive
  /// index_mu_ and read under the shared lock by the snapshot source:
  /// the requested shard count, the current layout (mirrors
  /// FlatSpcIndex::ComputeShardLayout), a stamp identifying the
  /// (ordering, vertex count, layout) triple, and per shard the last
  /// generation at which one of its vertices' label sets changed.
  size_t snapshot_shards_ = 1;
  FlatSpcIndex::ShardLayout shard_layout_;
  uint64_t layout_stamp_ = 1;
  std::vector<uint64_t> shard_dirty_gen_;

  /// Guards graph_/index_ (and the counters above): updates exclusive,
  /// snapshot copies and mutable-index queries shared.
  mutable std::shared_mutex index_mu_;

  /// Structural generation, read lock-free by query paths. Written only
  /// under exclusive index_mu_.
  std::atomic<uint64_t> generation_{1};

  /// Updates currently being applied (including time spent waiting for
  /// the exclusive lock) — the writer-priority signal read lock-free by
  /// MaybeBackpressure.
  mutable std::atomic<uint32_t> active_writers_{0};

  /// Snapshot publication/rebuild machinery. Declared last so its
  /// destructor joins the background worker before graph_/index_ (which
  /// the worker's copy step reads) are torn down.
  std::unique_ptr<SnapshotManager> snapshots_;
};

}  // namespace dspc

#endif  // DSPC_CORE_DYNAMIC_SPC_H_
