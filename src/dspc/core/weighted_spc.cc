#include "dspc/core/weighted_spc.h"

#include <algorithm>
#include <queue>
#include <utility>

namespace dspc {

namespace {

using HeapEntry = std::pair<Distance, Vertex>;
using MinHeap =
    std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>;

/// Sorted vector of hub ranks common to both label sets.
std::vector<Rank> CommonHubs(const LabelSet& x, const LabelSet& y) {
  std::vector<Rank> common;
  size_t i = 0;
  size_t j = 0;
  while (i < x.size() && j < y.size()) {
    if (x[i].hub < y[j].hub) {
      ++i;
    } else if (x[i].hub > y[j].hub) {
      ++j;
    } else {
      common.push_back(x[i].hub);
      ++i;
      ++j;
    }
  }
  return common;
}

}  // namespace

DynamicWeightedSpcIndex::DynamicWeightedSpcIndex(
    WeightedGraph graph, const OrderingOptions& ordering)
    : graph_(std::move(graph)),
      ordering_(BuildOrdering(graph_, ordering)),
      ordering_options_(ordering),
      cache_(graph_.NumVertices()),
      dist_(graph_.NumVertices(), kInfDistance),
      count_(graph_.NumVertices(), 0),
      side_of_(graph_.NumVertices(), kSideNone),
      updated_(graph_.NumVertices(), 0) {
  Build();
}

void DynamicWeightedSpcIndex::Build() {
  const size_t n = graph_.NumVertices();
  labels_.assign(n, {});
  for (Vertex v = 0; v < n; ++v) {
    labels_[v].push_back(LabelEntry{ordering_.rank_of[v], 0, 1});
  }
  for (Rank h = 0; h < n; ++h) {
    if (graph_.Degree(ordering_.vertex_of[h]) > 0) PushFromHub(h);
  }
}

void DynamicWeightedSpcIndex::PushFromHub(Rank h) {
  const Vertex hv = ordering_.vertex_of[h];
  cache_.Load(labels_[hv]);

  dist_[hv] = 0;
  count_[hv] = 1;
  touched_.clear();
  touched_.push_back(hv);
  MinHeap heap;
  heap.push({0, hv});

  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (d > dist_[v]) continue;  // stale entry
    if (v != hv) {
      // Counts are final at settle time: every predecessor on a shortest
      // path has strictly smaller distance (positive weights).
      const SpcResult covered = cache_.Query(labels_[v]);
      if (covered.dist < dist_[v]) continue;  // strict pruning
      InsertLabelInto(labels_[v], LabelEntry{h, dist_[v], count_[v]});
    }
    for (const WeightedNeighbor& nb : graph_.Neighbors(v)) {
      if (h > ordering_.rank_of[nb.to]) continue;  // rank restriction
      const Distance nd = d + nb.w;
      if (nd < dist_[nb.to]) {
        if (dist_[nb.to] == kInfDistance) touched_.push_back(nb.to);
        dist_[nb.to] = nd;
        count_[nb.to] = count_[v];
        heap.push({nd, nb.to});
      } else if (nd == dist_[nb.to]) {
        count_[nb.to] += count_[v];
      }
    }
  }
  for (const Vertex v : touched_) {
    dist_[v] = kInfDistance;
    count_[v] = 0;
  }
}

SpcResult DynamicWeightedSpcIndex::Query(Vertex s, Vertex t) const {
  SpcResult result;
  const LabelSet& ls = labels_[s];
  const LabelSet& lt = labels_[t];
  size_t i = 0;
  size_t j = 0;
  while (i < ls.size() && j < lt.size()) {
    if (ls[i].hub < lt[j].hub) {
      ++i;
    } else if (ls[i].hub > lt[j].hub) {
      ++j;
    } else {
      const Distance d = ls[i].dist + lt[j].dist;
      if (d < result.dist) {
        result.dist = d;
        result.count = ls[i].count * lt[j].count;
      } else if (d == result.dist) {
        result.count += ls[i].count * lt[j].count;
      }
      ++i;
      ++j;
    }
  }
  return result;
}

UpdateStats DynamicWeightedSpcIndex::InsertEdge(Vertex a, Vertex b, Weight w) {
  UpdateStats stats;
  if (!graph_.AddEdge(a, b, w)) return stats;
  stats.applied = true;
  IncrementalPass(a, b, w, &stats);
  return stats;
}

UpdateStats DynamicWeightedSpcIndex::DecreaseWeight(Vertex a, Vertex b,
                                                    Weight w) {
  UpdateStats stats;
  const Weight old = graph_.EdgeWeight(a, b);
  if (old == 0 || w == 0 || w >= old) return stats;  // absent or not a decrease
  graph_.SetWeight(a, b, w);
  stats.applied = true;
  IncrementalPass(a, b, w, &stats);
  return stats;
}

void DynamicWeightedSpcIndex::IncrementalPass(Vertex a, Vertex b,
                                              Weight new_weight,
                                              UpdateStats* stats) {
  const Rank rank_a = ordering_.rank_of[a];
  const Rank rank_b = ordering_.rank_of[b];

  std::vector<Rank> aff;
  {
    const LabelSet& la = labels_[a];
    const LabelSet& lb = labels_[b];
    size_t i = 0;
    size_t j = 0;
    while (i < la.size() || j < lb.size()) {
      if (j >= lb.size() || (i < la.size() && la[i].hub < lb[j].hub)) {
        aff.push_back(la[i++].hub);
      } else if (i >= la.size() || lb[j].hub < la[i].hub) {
        aff.push_back(lb[j++].hub);
      } else {
        aff.push_back(la[i].hub);
        ++i;
        ++j;
      }
    }
  }
  stats->affected_hubs = aff.size();

  for (const Rank h : aff) {
    if (h <= rank_b) {
      if (const LabelEntry* seed = FindLabelIn(labels_[a], h)) {
        IncUpdate(h, b, seed->dist + new_weight, seed->count, stats);
      }
    }
    if (h <= rank_a) {
      if (const LabelEntry* seed = FindLabelIn(labels_[b], h)) {
        IncUpdate(h, a, seed->dist + new_weight, seed->count, stats);
      }
    }
  }
}

void DynamicWeightedSpcIndex::IncUpdate(Rank h, Vertex seed,
                                        Distance seed_dist,
                                        PathCount seed_count,
                                        UpdateStats* stats) {
  const Vertex hv = ordering_.vertex_of[h];
  cache_.Load(labels_[hv]);

  dist_[seed] = seed_dist;
  count_[seed] = seed_count;
  touched_.clear();
  touched_.push_back(seed);
  MinHeap heap;
  heap.push({seed_dist, seed});

  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (d > dist_[v]) continue;
    ++stats->visited_vertices;
    // Relaxed pruning: equality still renews counts (weighted analog of
    // Lemma 3.4).
    const SpcResult covered = cache_.Query(labels_[v]);
    if (covered.dist < dist_[v]) continue;

    if (LabelEntry* existing = FindLabelIn(labels_[v], h)) {
      if (existing->dist == dist_[v]) {
        existing->count += count_[v];
        ++stats->renew_count;
      } else {
        existing->dist = dist_[v];
        existing->count = count_[v];
        ++stats->renew_dist;
      }
    } else {
      InsertLabelInto(labels_[v], LabelEntry{h, dist_[v], count_[v]});
      ++stats->inserted;
    }

    for (const WeightedNeighbor& nb : graph_.Neighbors(v)) {
      if (h > ordering_.rank_of[nb.to]) continue;
      const Distance nd = d + nb.w;
      if (nd < dist_[nb.to]) {
        if (dist_[nb.to] == kInfDistance) touched_.push_back(nb.to);
        dist_[nb.to] = nd;
        count_[nb.to] = count_[v];
        heap.push({nd, nb.to});
      } else if (nd == dist_[nb.to]) {
        count_[nb.to] += count_[v];
      }
    }
  }
  for (const Vertex v : touched_) {
    dist_[v] = kInfDistance;
    count_[v] = 0;
  }
}

template <typename MutateFn>
UpdateStats DynamicWeightedSpcIndex::DecrementalPass(Vertex a, Vertex b,
                                                     Weight w_old,
                                                     MutateFn mutate) {
  UpdateStats stats;
  stats.applied = true;

  std::vector<Vertex> sr_a;
  std::vector<Vertex> r_a;
  std::vector<Vertex> sr_b;
  std::vector<Vertex> r_b;
  SrrSearch(a, b, w_old, &sr_a, &r_a, &stats);
  SrrSearch(b, a, w_old, &sr_b, &r_b, &stats);

  if (sr_b.size() > sr_a.size()) {
    stats.sr_a = sr_b.size();
    stats.sr_b = sr_a.size();
    stats.r_a = r_b.size();
    stats.r_b = r_a.size();
  } else {
    stats.sr_a = sr_a.size();
    stats.sr_b = sr_b.size();
    stats.r_a = r_a.size();
    stats.r_b = r_b.size();
  }

  for (const Vertex v : sr_a) {
    side_of_[v] = kSideA;
    side_touched_.push_back(v);
  }
  for (const Vertex v : r_a) {
    side_of_[v] = kSideA;
    side_touched_.push_back(v);
  }
  for (const Vertex v : sr_b) {
    side_of_[v] = kSideB;
    side_touched_.push_back(v);
  }
  for (const Vertex v : r_b) {
    side_of_[v] = kSideB;
    side_touched_.push_back(v);
  }

  mutate();

  std::vector<Vertex> sr_all;
  sr_all.reserve(sr_a.size() + sr_b.size());
  sr_all.insert(sr_all.end(), sr_a.begin(), sr_a.end());
  sr_all.insert(sr_all.end(), sr_b.begin(), sr_b.end());
  std::sort(sr_all.begin(), sr_all.end(), [&](Vertex x, Vertex y) {
    return ordering_.rank_of[x] < ordering_.rank_of[y];
  });
  stats.affected_hubs = sr_all.size();

  std::vector<Vertex> all_a;
  all_a.insert(all_a.end(), sr_a.begin(), sr_a.end());
  all_a.insert(all_a.end(), r_a.begin(), r_a.end());
  std::vector<Vertex> all_b;
  all_b.insert(all_b.end(), sr_b.begin(), sr_b.end());
  all_b.insert(all_b.end(), r_b.begin(), r_b.end());

  for (const Vertex hv : sr_all) {
    if (side_of_[hv] == kSideA) {
      DecUpdate(hv, kSideB, all_b, &stats);
    } else {
      DecUpdate(hv, kSideA, all_a, &stats);
    }
  }

  for (const Vertex v : side_touched_) side_of_[v] = kSideNone;
  side_touched_.clear();
  return stats;
}

UpdateStats DynamicWeightedSpcIndex::RemoveEdge(Vertex a, Vertex b) {
  const Weight w = graph_.EdgeWeight(a, b);
  if (w == 0) return UpdateStats{};
  return DecrementalPass(a, b, w, [&] { graph_.RemoveEdge(a, b); });
}

UpdateStats DynamicWeightedSpcIndex::IncreaseWeight(Vertex a, Vertex b,
                                                    Weight w) {
  const Weight old = graph_.EdgeWeight(a, b);
  if (old == 0 || w <= old) return UpdateStats{};
  return DecrementalPass(a, b, old, [&] { graph_.SetWeight(a, b, w); });
}

void DynamicWeightedSpcIndex::SrrSearch(Vertex from, Vertex towards, Weight w,
                                        std::vector<Vertex>* sr,
                                        std::vector<Vertex>* r,
                                        UpdateStats* stats) {
  cache_.Load(labels_[towards]);
  const std::vector<Rank> common = CommonHubs(labels_[from], labels_[towards]);

  dist_[from] = 0;
  count_[from] = 1;
  touched_.clear();
  touched_.push_back(from);
  MinHeap heap;
  heap.push({0, from});

  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (d > dist_[v]) continue;
    ++stats->visited_vertices;
    // Affected-vertex condition with weights: a shortest path from v
    // through the edge exists iff sd(v, near) + w == sd(v, far).
    const SpcResult far = cache_.Query(labels_[v]);
    if (far.dist == kInfDistance || dist_[v] + w != far.dist) continue;

    const bool cond_a =
        std::binary_search(common.begin(), common.end(), ordering_.rank_of[v]);
    if (cond_a || count_[v] == far.count) {
      sr->push_back(v);
    } else {
      r->push_back(v);
    }

    for (const WeightedNeighbor& nb : graph_.Neighbors(v)) {
      const Distance nd = d + nb.w;
      if (nd < dist_[nb.to]) {
        if (dist_[nb.to] == kInfDistance) touched_.push_back(nb.to);
        dist_[nb.to] = nd;
        count_[nb.to] = count_[v];
        heap.push({nd, nb.to});
      } else if (nd == dist_[nb.to]) {
        count_[nb.to] += count_[v];
      }
    }
  }
  for (const Vertex v : touched_) {
    dist_[v] = kInfDistance;
    count_[v] = 0;
  }
}

void DynamicWeightedSpcIndex::DecUpdate(
    Vertex hv, uint8_t opposite_side,
    const std::vector<Vertex>& opposite_vertices, UpdateStats* stats) {
  const Rank h = ordering_.rank_of[hv];
  cache_.Load(labels_[hv]);

  dist_[hv] = 0;
  count_[hv] = 1;
  touched_.clear();
  touched_.push_back(hv);
  updated_touched_.clear();
  MinHeap heap;
  heap.push({0, hv});

  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (d > dist_[v]) continue;
    ++stats->visited_vertices;
    if (v != hv) {
      const SpcResult pre = cache_.PreQuery(labels_[v], h);
      if (pre.dist < dist_[v]) continue;
      if (side_of_[v] == opposite_side) {
        if (LabelEntry* existing = FindLabelIn(labels_[v], h)) {
          if (existing->dist != dist_[v]) {
            existing->dist = dist_[v];
            existing->count = count_[v];
            ++stats->renew_dist;
          } else if (existing->count != count_[v]) {
            existing->count = count_[v];
            ++stats->renew_count;
          }
        } else {
          InsertLabelInto(labels_[v], LabelEntry{h, dist_[v], count_[v]});
          ++stats->inserted;
        }
        updated_[v] = 1;
        updated_touched_.push_back(v);
      }
    }
    for (const WeightedNeighbor& nb : graph_.Neighbors(v)) {
      if (h > ordering_.rank_of[nb.to]) continue;
      const Distance nd = d + nb.w;
      if (nd < dist_[nb.to]) {
        if (dist_[nb.to] == kInfDistance) touched_.push_back(nb.to);
        dist_[nb.to] = nd;
        count_[nb.to] = count_[v];
        heap.push({nd, nb.to});
      } else if (nd == dist_[nb.to]) {
        count_[nb.to] += count_[v];
      }
    }
  }

  // Unconditional deferred removal — see dec_spc.cc for why this must not
  // be gated on common-hub membership.
  for (const Vertex u : opposite_vertices) {
    if (updated_[u] == 0 && RemoveLabelFrom(labels_[u], h)) {
      ++stats->removed;
    }
  }

  for (const Vertex v : touched_) {
    dist_[v] = kInfDistance;
    count_[v] = 0;
  }
  for (const Vertex v : updated_touched_) updated_[v] = 0;
}

Vertex DynamicWeightedSpcIndex::AddVertex() {
  const Vertex v = graph_.AddVertex();
  ordering_.Append();
  labels_.push_back({LabelEntry{ordering_.rank_of[v], 0, 1}});
  const size_t n = graph_.NumVertices();
  cache_ = HubCache(n);
  dist_.assign(n, kInfDistance);
  count_.assign(n, 0);
  side_of_.assign(n, kSideNone);
  updated_.assign(n, 0);
  return v;
}

void DynamicWeightedSpcIndex::Rebuild() {
  ordering_ = BuildOrdering(graph_, ordering_options_);
  Build();
}

Status DynamicWeightedSpcIndex::ValidateStructure() const {
  if (!ordering_.IsValid()) {
    return Status::Corruption("ordering is not a permutation");
  }
  for (Vertex v = 0; v < labels_.size(); ++v) {
    const Rank rv = ordering_.rank_of[v];
    const LabelSet& set = labels_[v];
    bool self_seen = false;
    for (size_t i = 0; i < set.size(); ++i) {
      if (i > 0 && set[i - 1].hub >= set[i].hub) {
        return Status::Corruption("labels unsorted at v" + std::to_string(v));
      }
      if (set[i].hub > rv) {
        return Status::Corruption("hub outranked by owner at v" +
                                  std::to_string(v));
      }
      if (set[i].hub == rv) {
        if (set[i].dist != 0 || set[i].count != 1) {
          return Status::Corruption("bad self label at v" + std::to_string(v));
        }
        self_seen = true;
      }
      if (set[i].count == 0) {
        return Status::Corruption("zero-count label at v" + std::to_string(v));
      }
    }
    if (!self_seen) {
      return Status::Corruption("missing self label at v" + std::to_string(v));
    }
  }
  return Status::OK();
}

IndexSizeStats DynamicWeightedSpcIndex::SizeStats() const {
  IndexSizeStats stats;
  stats.num_vertices = labels_.size();
  for (const LabelSet& set : labels_) {
    stats.total_entries += set.size();
    stats.max_label_size = std::max(stats.max_label_size, set.size());
  }
  stats.avg_label_size =
      labels_.empty()
          ? 0.0
          : static_cast<double>(stats.total_entries) / labels_.size();
  stats.wide_bytes = stats.total_entries * sizeof(LabelEntry);
  stats.packed_bytes = stats.total_entries * sizeof(uint64_t);
  return stats;
}

}  // namespace dspc
