// FlatSpcIndex: a read-optimized, immutable snapshot of an SpcIndex
// (DESIGN.md §5).
//
// SpcQUERY is a memory-bound merge-scan, so the serving representation is
// a single contiguous CSR-style arena: offsets[v]..offsets[v+1] delimits
// the label set of v inside one packed 64-bit entry array (paper §4.1:
// 25-bit hub / 10-bit dist / 29-bit count). The hub rank sits in the top
// bits of each word, so the merge compares hubs with one shift and the
// arena stays sorted by construction. Entries whose distance or count
// exceed the packed budgets live out-of-line in a rare wide side table;
// the arena word keeps the hub inline and points at the side-table slot
// (see label_codec.h for the word formats). Graphs with more than 2^25
// vertices cannot keep hubs inline, so the snapshot falls back to a
// contiguous arena of wide 16-byte entries — still CSR, just unpacked.
//
// On top of the arena sits a dense top-rank directory: per vertex, a
// bitmap over the hub ranks below kDenseRanks plus per-word prefix
// popcounts. On heavy-tailed graphs the overwhelming share of label
// entries reference top-ranked hubs (>90% below rank 512 on the bench
// suite), so the merge-scan's long, serially-dependent two-pointer walk
// collapses into word-parallel bitmap ANDs; each surviving bit is mapped
// to its arena slot with a prefix popcount (dense entries are a prefix of
// the rank-sorted label set). Only the short low-rank tail still merges.
//
// The flat snapshot is the serving half of the mutable-build / immutable-
// serve split: HP-SPC / IncSPC / DecSPC mutate the SpcIndex, queries run
// against the snapshot. All query methods are const and touch no shared
// mutable state, so any number of threads may query one snapshot
// concurrently; QueryManyParallel exploits exactly that.

#ifndef DSPC_CORE_FLAT_SPC_INDEX_H_
#define DSPC_CORE_FLAT_SPC_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "dspc/common/status.h"
#include "dspc/common/types.h"
#include "dspc/core/spc_index.h"
#include "dspc/graph/ordering.h"

namespace dspc {

/// On-disk format identifiers. Version 1 is SpcIndex's tagged per-entry
/// stream; version 2 is the FlatSpcIndex arena image that loads with bulk
/// array reads. Both loaders accept both versions and convert.
inline constexpr uint32_t kSpcIndexMagic = 0x44535049;  // "DSPI"
inline constexpr uint32_t kSpcIndexFormatV1 = 1;
inline constexpr uint32_t kSpcIndexFormatV2 = 2;

/// A query pair, as consumed by the batched drivers.
using VertexPair = std::pair<Vertex, Vertex>;

class FlatSpcIndex {
 public:
  FlatSpcIndex() = default;

  /// Builds the snapshot from a mutable index in O(total entries).
  explicit FlatSpcIndex(const SpcIndex& index);

  /// Number of vertices covered.
  size_t NumVertices() const { return num_vertices_; }

  /// Total label entries across all vertices.
  size_t TotalEntries() const {
    return offsets_.empty() ? 0 : static_cast<size_t>(offsets_.back());
  }

  /// Entries stored in the wide side table (packed mode only).
  size_t OverflowEntries() const { return overflow_.size(); }

  /// True when entries are wide 16-byte records instead of packed words
  /// (only for graphs whose ranks exceed the 25-bit hub budget).
  bool wide_mode() const { return wide_mode_; }

  /// Bytes of the arena (offsets + entries + side table + rank array) —
  /// the resident cost of the snapshot.
  size_t ArenaBytes() const;

  /// Rank of vertex v under the snapshot's frozen ordering.
  Rank RankOf(Vertex v) const { return ordering_.rank_of[v]; }

  /// The frozen ordering the snapshot was built under.
  const VertexOrdering& ordering() const { return ordering_; }

  /// SpcQUERY (Algorithm 1) over the packed arena. Results are identical
  /// to SpcIndex::Query on the source index.
  SpcResult Query(Vertex s, Vertex t) const;

  /// PreQUERY (paper §3.2.2): only hubs ranked strictly higher than s
  /// participate. Identical to SpcIndex::PreQuery.
  SpcResult PreQuery(Vertex s, Vertex t) const;

  /// Answers every pair into `out` (size pairs.size()), single-threaded.
  /// The batched loop amortizes bounds setup and keeps the arena hot.
  void QueryMany(std::span<const VertexPair> pairs, SpcResult* out) const;
  std::vector<SpcResult> QueryMany(std::span<const VertexPair> pairs) const;

  /// Thread-parallel batch driver: shards `pairs` over up to `threads`
  /// std::thread workers (0 = hardware concurrency, capped). Safe because
  /// the snapshot is immutable. Falls back to the serial loop for small
  /// batches.
  std::vector<SpcResult> QueryManyParallel(std::span<const VertexPair> pairs,
                                           unsigned threads = 0) const;

  /// Rebuilds a mutable SpcIndex equivalent to this snapshot.
  SpcIndex Unpack() const;

  /// Serialization in the v2 arena format (CRC-framed, bulk arrays).
  /// Load also accepts v1 files, converting through SpcIndex.
  Status Save(const std::string& path) const;
  static Status Load(const std::string& path, FlatSpcIndex* out);

  /// Parses a v2 payload from `r`, which must be positioned just past the
  /// magic/version header. Used by the cross-version loaders so a file is
  /// read from disk exactly once; most callers want Load().
  static Status LoadFromReader(BinaryReader* r, FlatSpcIndex* out);

 private:
  /// Merge-scan cores; kLimited enables the PreQUERY rank cutoff without
  /// taxing the plain Query loop.
  template <bool kLimited>
  SpcResult QueryPacked(Vertex s, Vertex t, Rank limit) const;
  template <bool kLimited>
  SpcResult QueryWide(Vertex s, Vertex t, Rank limit) const;

  /// Cheap structural checks over a freshly-parsed arena (Load path).
  Status ValidateArena() const;

  /// Hub ranks covered by the dense directory (must be a multiple of 64).
  static constexpr Rank kDenseRanks = 512;
  static constexpr size_t kDenseWords = kDenseRanks / 64;

  /// Rebuilds hub_bits_/word_base_ from offsets_/entries_ (packed mode).
  void BuildDenseDirectory();

  /// Arena index one past v's last dense (hub < kDenseRanks) entry.
  uint64_t DenseEnd(Vertex v) const;

  /// Decodes the dist/count of a packed arena word, chasing the rare
  /// overflow reference into the side table.
  void DecodeWord(uint64_t word, Distance* dist, PathCount* count) const;

  size_t num_vertices_ = 0;
  bool wide_mode_ = false;
  VertexOrdering ordering_;
  /// offsets_[v]..offsets_[v+1] delimit v's entries; size n+1.
  std::vector<uint64_t> offsets_;
  /// Packed arena words, sorted ascending by hub within each vertex range.
  std::vector<uint64_t> entries_;
  /// Wide side table for packed-mode overflow entries.
  std::vector<LabelEntry> overflow_;
  /// Dense top-rank directory (packed mode): kDenseWords bitmap words per
  /// vertex; bit r of v's bitmap is set iff L(v) contains hub rank
  /// v*kDenseWords-relative r.
  std::vector<uint64_t> hub_bits_;
  /// word_base_[v*kDenseWords + w]: number of dense entries of v in bitmap
  /// words [0, w) — the prefix-popcount base for positional lookup.
  std::vector<uint16_t> word_base_;
  /// Wide arena (wide_mode_ only), same CSR layout as entries_.
  std::vector<LabelEntry> wide_entries_;
};

}  // namespace dspc

#endif  // DSPC_CORE_FLAT_SPC_INDEX_H_
