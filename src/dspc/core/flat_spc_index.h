// FlatSpcIndex: a read-optimized, immutable snapshot of an SpcIndex
// (DESIGN.md §5, §8).
//
// SpcQUERY is a memory-bound merge-scan, so the serving representation is
// a contiguous CSR-style arena: offsets[v]..offsets[v+1] delimits the
// label set of v inside one packed 64-bit entry array (paper §4.1:
// 25-bit hub / 10-bit dist / 29-bit count). The hub rank sits in the top
// bits of each word, so the merge compares hubs with one shift and the
// arena stays sorted by construction. Entries whose distance or count
// exceed the packed budgets live out-of-line in a rare wide side table;
// the arena word keeps the hub inline and points at the side-table slot
// (see label_codec.h for the word formats). Graphs with more than 2^25
// vertices cannot keep hubs inline, so the snapshot falls back to a
// contiguous arena of wide 16-byte entries — still CSR, just unpacked.
//
// On top of each arena sits a dense top-rank directory: per vertex, a
// bitmap over the hub ranks below kDenseRanks plus per-word prefix
// popcounts. On heavy-tailed graphs the overwhelming share of label
// entries reference top-ranked hubs (>90% below rank 512 on the bench
// suite), so the merge-scan's long, serially-dependent two-pointer walk
// collapses into word-parallel bitmap ANDs; each surviving bit is mapped
// to its arena slot with a prefix popcount (dense entries are a prefix of
// the rank-sorted label set). Only the short low-rank tail still merges.
//
// Sharding (DESIGN.md §8): the snapshot is split into vertex-range
// shards, each an independently built arena held by shared_ptr and
// tagged with the generation of the index copy it reflects. Shard widths
// are powers of two, so routing a query endpoint to its shard is one
// shift. A query reads both endpoints' label runs, which may live in two
// different shards — the merge cores take one resolved side per
// endpoint. Sharding exists for maintenance, not for queries: a delta
// rebuild (Rebuild) repacks only the shards whose vertices' label sets
// changed and adopts every clean shard from the previous snapshot at the
// cost of one shared_ptr copy, converting rebuild cost from O(total
// entries) to O(entries in touched shards); dirty shards repack in
// parallel over an optional ThreadPool.
//
// The flat snapshot is the serving half of the mutable-build / immutable-
// serve split: HP-SPC / IncSPC / DecSPC mutate the SpcIndex, queries run
// against the snapshot. All query methods are const and touch no shared
// mutable state, so any number of threads may query one snapshot
// concurrently; QueryManyParallel exploits exactly that.

#ifndef DSPC_CORE_FLAT_SPC_INDEX_H_
#define DSPC_CORE_FLAT_SPC_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "dspc/common/status.h"
#include "dspc/common/types.h"
#include "dspc/core/spc_index.h"
#include "dspc/graph/ordering.h"

namespace dspc {

class BinaryWriter;
class ThreadPool;

/// On-disk format identifiers. Version 1 is SpcIndex's tagged per-entry
/// stream; version 2 is the FlatSpcIndex arena image that loads with bulk
/// array reads. Both loaders accept both versions and convert.
inline constexpr uint32_t kSpcIndexMagic = 0x44535049;  // "DSPI"
inline constexpr uint32_t kSpcIndexFormatV1 = 1;
inline constexpr uint32_t kSpcIndexFormatV2 = 2;

/// A query pair, as consumed by the batched drivers.
using VertexPair = std::pair<Vertex, Vertex>;

/// An arena array that either owns its storage (a std::vector built by
/// the packers/loaders) or is a read-only view over externally owned
/// memory (an mmap'ed snapshot arena, persist/snapshot_arena.h). The hot
/// query path reads through a cached {pointer, size} pair either way, so
/// view shards and owning shards run the exact same code at the exact
/// same cost. Mutating methods are only legal in owning mode; whoever
/// installs a view is responsible for keeping the bytes alive (Shard
/// carries a shared_ptr backing handle for exactly that).
template <typename T>
class ArenaVec {
 public:
  ArenaVec() = default;
  ArenaVec(const ArenaVec&) = delete;
  ArenaVec& operator=(const ArenaVec&) = delete;
  // Member-wise move is correct in both modes: moving the vector
  // transfers its buffer, so a data_ that pointed into it still does.
  ArenaVec(ArenaVec&&) noexcept = default;
  ArenaVec& operator=(ArenaVec&&) noexcept = default;

  /// A non-owning view over [data, data + n). The caller guarantees the
  /// bytes outlive this ArenaVec.
  static ArenaVec View(const T* data, size_t n) {
    ArenaVec v;
    v.data_ = data;
    v.size_ = n;
    return v;
  }

  // --- read side (both modes; the query hot path) ------------------------
  const T* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const T& operator[](size_t i) const { return data_[i]; }
  const T& back() const { return data_[size_ - 1]; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

  // --- write side (owning mode only) -------------------------------------
  T* data() { return own_.data(); }
  T& operator[](size_t i) { return own_[i]; }
  void assign(size_t n, const T& v) { own_.assign(n, v); Refresh(); }
  void resize(size_t n) { own_.resize(n); Refresh(); }
  void reserve(size_t n) { own_.reserve(n); }
  void push_back(const T& v) { own_.push_back(v); Refresh(); }
  template <typename It>
  void append(It first, It last) {
    own_.insert(own_.end(), first, last);
    Refresh();
  }

 private:
  void Refresh() {
    data_ = own_.data();
    size_ = own_.size();
  }

  std::vector<T> own_;
  const T* data_ = nullptr;
  size_t size_ = 0;
};

class FlatSpcIndex {
 public:
  /// The shard layout for n vertices at a requested shard count: widths
  /// are rounded up to a power of two so ShardOf is a shift, which may
  /// merge the request down (e.g. 16 shards over 4100 vertices become 9
  /// shards of 512). Shard i covers [i << shift, min(n, (i+1) << shift)).
  struct ShardLayout {
    unsigned shift = 0;
    size_t count = 0;

    Vertex BeginOf(size_t shard) const {
      return static_cast<Vertex>(shard << shift);
    }
    Vertex EndOf(size_t shard, size_t n) const {
      const size_t end = (shard + 1) << shift;
      return static_cast<Vertex>(end < n ? end : n);
    }
  };
  static ShardLayout ComputeShardLayout(size_t num_vertices,
                                        size_t requested_shards);

  /// Label sets for one shard's vertex range, copied out of the mutable
  /// index under its shared lock (SpcIndex::CopyLabelRange).
  struct ShardLabels {
    size_t shard = 0;
    std::vector<LabelSet> labels;  ///< one set per vertex of the range
  };

  /// A delta copy of the mutable index: the generation it reflects, the
  /// layout it assumes, and label copies for exactly the dirty shards.
  /// `full` marks a from-scratch copy (every shard present, `ordering`
  /// set) — required whenever the previous snapshot's layout_stamp does
  /// not match, i.e. the ordering, vertex count, or shard count changed.
  struct IndexDelta {
    uint64_t generation = 0;
    uint64_t layout_stamp = 0;
    size_t num_vertices = 0;
    size_t num_shards = 1;
    bool full = false;
    VertexOrdering ordering;  ///< set iff full
    std::vector<ShardLabels> dirty;
  };

  FlatSpcIndex() = default;

  /// Builds the snapshot from a mutable index in O(total entries),
  /// sharded into ~`num_shards` vertex ranges (see ComputeShardLayout);
  /// shards pack in parallel when `pool` is given.
  explicit FlatSpcIndex(const SpcIndex& index, size_t num_shards = 1,
                        ThreadPool* pool = nullptr);

  /// The delta rebuild: packs the shards named in `delta` (in parallel
  /// over `pool` when given) and adopts every other shard from `prev` by
  /// shared_ptr — O(entries in dirty shards), not O(total entries). When
  /// `delta.full` or `prev` is null, builds everything from the delta
  /// (which must then cover all shards). With no dirty shards the result
  /// shares every arena (and its per-shard generation) with `prev`; only
  /// the publisher's composite generation moves.
  static FlatSpcIndex Rebuild(const FlatSpcIndex* prev, IndexDelta delta,
                              ThreadPool* pool = nullptr);

  /// Number of vertices covered.
  size_t NumVertices() const { return num_vertices_; }

  /// Total label entries across all shards.
  size_t TotalEntries() const;

  /// Entries stored in the wide side tables (packed mode only).
  size_t OverflowEntries() const;

  /// True when entries are wide 16-byte records instead of packed words
  /// (only for graphs whose ranks exceed the 25-bit hub budget, or —
  /// theoretically — when a shard's side table outgrows its 29-bit slot
  /// field).
  bool wide_mode() const { return wide_mode_; }

  /// Bytes of all arenas (offsets + entries + side tables + directories
  /// + rank array) — the resident cost of the snapshot.
  size_t ArenaBytes() const;

  /// Rank of vertex v under the snapshot's frozen ordering.
  Rank RankOf(Vertex v) const { return ordering_->rank_of[v]; }

  /// The frozen ordering the snapshot was built under. Shared across
  /// snapshot generations (adoption copies the pointer, not the arrays).
  const VertexOrdering& ordering() const { return *ordering_; }

  // --- shard observability (DESIGN.md §8) --------------------------------

  /// Number of vertex-range shards (0 only for an empty index).
  size_t NumShards() const { return shards_.size(); }

  /// Shard holding vertex v.
  size_t ShardOf(Vertex v) const { return v >> shard_shift_; }

  /// Vertex range [ShardBegin, ShardEnd) of shard i.
  Vertex ShardBegin(size_t shard) const { return shards_[shard]->begin; }
  Vertex ShardEnd(size_t shard) const { return shards_[shard]->end; }

  /// Generation of the index copy shard i was last packed from. An
  /// adopted shard keeps the generation of the rebuild that packed it,
  /// which is the pivot of the dirty-shard protocol: a shard is dirty
  /// iff some vertex in its range changed after that generation.
  uint64_t ShardGeneration(size_t shard) const {
    return shards_[shard]->generation;
  }

  /// Identity of (ordering, vertex count, shard layout) as stamped by the
  /// producer; Rebuild only adopts shards when the stamps match.
  uint64_t LayoutStamp() const { return layout_stamp_; }

  /// Label entries in shard i.
  size_t ShardEntries(size_t shard) const;

  /// True iff shard i's arena is the same object in both snapshots —
  /// i.e. one was adopted from the other (test/bench observability).
  bool SharesShardWith(const FlatSpcIndex& other, size_t shard) const {
    return shard < shards_.size() && shard < other.shards_.size() &&
           shards_[shard] == other.shards_[shard];
  }

  // --- queries -----------------------------------------------------------

  /// SpcQUERY (Algorithm 1) over the packed arenas. Results are identical
  /// to SpcIndex::Query on the source index.
  SpcResult Query(Vertex s, Vertex t) const;

  /// PreQUERY (paper §3.2.2): only hubs ranked strictly higher than s
  /// participate. Identical to SpcIndex::PreQuery.
  SpcResult PreQuery(Vertex s, Vertex t) const;

  /// Answers every pair into `out` (size pairs.size()), single-threaded.
  /// The batched loop amortizes bounds setup and keeps the arenas hot.
  void QueryMany(std::span<const VertexPair> pairs, SpcResult* out) const;
  std::vector<SpcResult> QueryMany(std::span<const VertexPair> pairs) const;

  /// Thread-parallel batch driver: splits `pairs` into contiguous chunks
  /// of size pairs/threads (at least kMinPairsPerThread each, so
  /// parallelism overhead amortizes) and fans them out over a
  /// common/ThreadPool — the caller's persistent `pool` when one is
  /// passed (the serving path: DynamicSpcIndex/SpcService reuse their
  /// lazily-spawned query pool so no serving batch ever spawns threads),
  /// or a pool built for this one call when `pool` is null (standalone
  /// snapshot use in tools and benches). threads = 0 picks hardware
  /// concurrency, capped. Safe because the snapshot is immutable. The
  /// out-buffer overload performs no allocation on the query path.
  void QueryManyParallel(std::span<const VertexPair> pairs, SpcResult* out,
                         unsigned threads = 0, ThreadPool* pool = nullptr) const;
  std::vector<SpcResult> QueryManyParallel(std::span<const VertexPair> pairs,
                                           unsigned threads = 0,
                                           ThreadPool* pool = nullptr) const;

  /// Rebuilds a mutable SpcIndex equivalent to this snapshot.
  SpcIndex Unpack() const;

  /// Serialization in the v2 arena format (CRC-framed, bulk arrays). The
  /// on-disk image is the monolithic concatenation of all shards (shard
  /// structure is a serving concern, not a persistence one); Load always
  /// produces a single-shard snapshot and also accepts v1 files,
  /// converting through SpcIndex.
  Status Save(const std::string& path) const;
  static Status Load(const std::string& path, FlatSpcIndex* out);

  /// Serializes the full v2 image (magic + version + payload) into `w`,
  /// without the file-level CRC framing — the embeddable form. Save() is
  /// this plus WriteToFile; the checkpointer (persist/checkpointer.h)
  /// embeds the image as a length-prefixed blob inside the checkpoint
  /// file, whose own CRC then covers it.
  void SaveImage(BinaryWriter* w) const;

  /// Parses a v2 payload from `r`, which must be positioned just past the
  /// magic/version header. Used by the cross-version loaders so a file is
  /// read from disk exactly once; most callers want Load().
  static Status LoadFromReader(BinaryReader* r, FlatSpcIndex* out);

  /// Raw single-shard arena sections for constructing a snapshot as a
  /// *view* over externally owned memory — the mmap serving path
  /// (persist/snapshot_arena.h). All pointers must stay valid for as
  /// long as `backing` is alive; the constructed snapshot holds
  /// `backing` through its shard, so in-flight queries keep the mapping
  /// alive even after the index itself is replaced. Label words
  /// (entries / overflow / wide_entries) and offsets are served directly
  /// from the viewed bytes — no per-query copy or decode buffer; only
  /// the rank array is copied once at adoption (the ordering is shared
  /// repo-wide as owned vectors) and the dense directory is derived.
  struct ArenaView {
    size_t num_vertices = 0;
    bool wide = false;
    uint64_t generation = 0;
    const Rank* rank_of = nullptr;      ///< [num_vertices]
    const uint64_t* offsets = nullptr;  ///< [num_vertices + 1], global CSR
    const uint64_t* entries = nullptr;  ///< [offsets[n]] (packed mode)
    const LabelEntry* overflow = nullptr;  ///< [overflow_count] (packed)
    uint64_t overflow_count = 0;
    const LabelEntry* wide_entries = nullptr;  ///< [offsets[n]] (wide mode)
    std::shared_ptr<const void> backing;  ///< keep-alive for the bytes
  };

  /// Builds a single-shard snapshot whose arenas are views into
  /// `view.backing`'s memory. Runs the same structural validation as the
  /// file loader (ValidateArena) before any query can touch the bytes;
  /// the caller must already have bounds-checked the section sizes
  /// against the region (the arena loader's CRC/layout validation).
  static StatusOr<FlatSpcIndex> FromArenaView(ArenaView view);

  /// Minimum pairs per worker before QueryManyParallel adds a thread.
  static constexpr size_t kMinPairsPerThread = 2048;

  /// The parallelism QueryManyParallel will actually use for a batch of
  /// `pairs` under a `threads` request, before any pool-size clamp:
  /// resolves threads = 0 to hardware concurrency, applies the
  /// kMaxQueryThreads cap and the kMinPairsPerThread floor. <= 1 means
  /// the batch runs serially. DynamicSpcIndex::PoolForBatch asks this
  /// same predicate, so the "should we spawn/fetch a pool" decision can
  /// never drift from the driver's actual behavior.
  static unsigned PlannedParallelism(size_t pairs, unsigned threads);

 private:
  /// One vertex-range arena, immutable once built and shared across
  /// snapshot generations by shared_ptr. All CSR offsets are local to
  /// the shard (offsets[v - begin]). Each array either owns its storage
  /// (packed by the builders/loaders) or views externally owned memory
  /// (the mmap path; `backing` then keeps the mapping alive for the
  /// shard's lifetime, so pinned queries can outlive an index swap).
  struct Shard {
    Vertex begin = 0;
    Vertex end = 0;
    uint64_t generation = 0;
    /// offsets[lv]..offsets[lv+1] delimit local vertex lv's entries.
    ArenaVec<uint64_t> offsets;
    /// Packed arena words, sorted ascending by hub within each vertex.
    ArenaVec<uint64_t> entries;
    /// Wide side table for packed-mode overflow entries (slots local).
    ArenaVec<LabelEntry> overflow;
    /// Dense top-rank directory (packed mode): kDenseWords bitmap words
    /// per local vertex. Always owned — derived state, never mapped.
    ArenaVec<uint64_t> hub_bits;
    /// word_base[lv*kDenseWords + w]: dense entries of lv in bitmap words
    /// [0, w) — the prefix-popcount base for positional lookup.
    ArenaVec<uint16_t> word_base;
    /// Wide arena (wide mode only), same local CSR layout as entries.
    ArenaVec<LabelEntry> wide_entries;
    /// Keep-alive for view-mode arrays (e.g. a persist::MappedRegion).
    std::shared_ptr<const void> backing;

    size_t NumEntries() const {
      return offsets.empty() ? 0 : static_cast<size_t>(offsets.back());
    }
    size_t Bytes() const;
  };

  /// A query endpoint resolved against its shard: arena base, this
  /// vertex's run, its dense directory row, and the shard's side table.
  struct PackedSide {
    const uint64_t* arena;
    const LabelEntry* overflow;
    const uint64_t* bits;
    const uint16_t* base;
    uint64_t lo, hi;        ///< arena run [lo, hi) of the vertex
    uint64_t dense_end;     ///< arena index one past the last dense entry
  };
  PackedSide ResolvePacked(Vertex v) const;

  /// Merge-scan cores; kLimited enables the PreQUERY rank cutoff without
  /// taxing the plain Query loop.
  template <bool kLimited>
  static SpcResult QueryPacked(const PackedSide& a, const PackedSide& b,
                               Rank limit);
  template <bool kLimited>
  SpcResult QueryWide(Vertex s, Vertex t, Rank limit) const;

  /// Cheap structural checks over freshly-parsed arenas (Load path).
  Status ValidateArena() const;

  /// Hub ranks covered by the dense directory (must be a multiple of 64).
  static constexpr Rank kDenseRanks = 512;
  static constexpr size_t kDenseWords = kDenseRanks / 64;
  static constexpr unsigned kMaxQueryThreads = 16;

  /// Packs the label sets of [begin, begin + labels.size()) into one
  /// shard. In packed mode returns nullptr if the shard's overflow side
  /// table would outgrow the 29-bit slot field (the caller then falls
  /// back to a wide build).
  static std::shared_ptr<const Shard> PackShard(
      Vertex begin, uint64_t generation, std::span<const LabelSet> labels,
      bool wide);

  /// Recovers the label sets of one shard (the materialization step of
  /// the rare packed->wide fallback).
  static std::vector<LabelSet> UnpackShardLabels(const Shard& shard,
                                                 bool wide);

  /// Packs every shard from `labels_of(begin, end)` under the current
  /// layout, falling back to wide mode if any shard demands it.
  template <typename LabelsOf>
  void PackAllShards(const LabelsOf& labels_of, uint64_t generation,
                     ThreadPool* pool);

  /// Sets shard_shift_ and sizes shards_ for the current num_vertices_.
  void InitLayout(size_t requested_shards);

  /// Rebuilds hub_bits/word_base of a packed shard from offsets/entries.
  static void BuildDenseDirectory(Shard* shard);

  /// Decodes the dist/count of a packed arena word, chasing the rare
  /// overflow reference into the shard's side table.
  static void DecodeWord(uint64_t word, const LabelEntry* overflow,
                         Distance* dist, PathCount* count);

  /// Decodes arena slot `i` of a shard back into a LabelEntry — the one
  /// place that knows both entry representations (Unpack, Save's wide
  /// fallback, validation, and the wide-rebuild materialization all
  /// decode through here).
  static LabelEntry EntryAt(const Shard& shard, bool wide, uint64_t i);

  size_t num_vertices_ = 0;
  bool wide_mode_ = false;
  uint64_t layout_stamp_ = 0;
  unsigned shard_shift_ = 0;
  /// Shared, not copied, across snapshot generations: adoption and delta
  /// rebuilds alias the previous snapshot's ordering.
  std::shared_ptr<const VertexOrdering> ordering_ =
      std::make_shared<VertexOrdering>();
  std::vector<std::shared_ptr<const Shard>> shards_;
};

}  // namespace dspc

#endif  // DSPC_CORE_FLAT_SPC_INDEX_H_
