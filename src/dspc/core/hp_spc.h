// HP-SPC: hub-pushing construction of the SPC-Index (paper §2.2; Zhang &
// Yu, SIGMOD'20). This is also the "reconstruction" baseline the dynamic
// algorithms are compared against in Table 4.

#ifndef DSPC_CORE_HP_SPC_H_
#define DSPC_CORE_HP_SPC_H_

#include "dspc/core/spc_index.h"
#include "dspc/graph/graph.h"
#include "dspc/graph/ordering.h"

namespace dspc {

/// Builds the SPC-Index of `graph` under `ordering`.
///
/// For each vertex v in descending rank order, a BFS restricted to
/// vertices ranked below v runs from v; a visited vertex w is pruned when
/// the already-built index certifies a strictly shorter distance
/// (d_L < D[w]). Pruning must be strict: on equality the label is still
/// needed, because the count of shortest paths on which v is the highest
/// vertex (a non-canonical label) is not covered by any higher hub.
SpcIndex BuildSpcIndex(const Graph& graph, VertexOrdering ordering);

/// Convenience overload: builds the ordering (paper's degree-based order
/// by default), then the index.
SpcIndex BuildSpcIndex(const Graph& graph,
                       const OrderingOptions& ordering_options = {});

}  // namespace dspc

#endif  // DSPC_CORE_HP_SPC_H_
