#include "dspc/core/snapshot_manager.h"

#include <utility>

namespace dspc {

SnapshotManager::SnapshotManager(Source source, RefreshPolicy policy,
                                 size_t stale_query_budget)
    : source_(std::move(source)),
      policy_(policy),
      stale_query_budget_(stale_query_budget) {}

SnapshotManager::~SnapshotManager() {
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

SnapshotManager::Pinned SnapshotManager::PinOf(
    const std::shared_ptr<const Versioned>& v) {
  if (v == nullptr) return {};
  // Aliasing ctor: the pin shares v's control block but points at the
  // index, so callers hold a plain FlatSpcIndex handle while the refcount
  // keeps the whole versioned snapshot alive.
  return {std::shared_ptr<const FlatSpcIndex>(v, &v->flat), v->generation};
}

SnapshotManager::Pinned SnapshotManager::Pin() const {
  return PinOf(published_.load(std::memory_order_acquire));
}

SnapshotManager::Pinned SnapshotManager::Acquire(uint64_t current_generation,
                                                 size_t queries) {
  const Pinned cur = Pin();
  if (cur && cur.generation == current_generation) return cur;

  switch (policy_) {
    case RefreshPolicy::kManual:
      // Stale (or nothing published): the caller rides the mutable index;
      // only explicit refreshes publish.
      return {};

    case RefreshPolicy::kSync: {
      {
        std::lock_guard<std::mutex> lock(state_mu_);
        stale_queries_ += queries;
        if (stale_queries_ < stale_query_budget_) return {};
      }
      return RefreshNow(current_generation);
    }

    case RefreshPolicy::kBackground: {
      bool request = false;
      {
        std::lock_guard<std::mutex> lock(state_mu_);
        stale_queries_ += queries;
        if (stale_queries_ >= stale_query_budget_) {
          stale_queries_ = 0;
          request = true;
        }
      }
      if (request) RequestRebuild(current_generation);
      // Serve the pinned snapshot even though it is stale — bounded
      // staleness is the policy's contract. Empty only before the first
      // publish (the facade publishes eagerly at construction).
      return cur;
    }
  }
  return {};
}

SnapshotManager::Pinned SnapshotManager::RefreshNow(
    uint64_t current_generation) {
  std::lock_guard<std::mutex> rebuild_lock(rebuild_mu_);
  // A racing refresh may have published while we waited for the build
  // lock; don't build the same generation twice.
  if (const Pinned cur = Pin();
      cur && cur.generation >= current_generation) {
    return cur;
  }
  auto snap = BuildFromSource();
  Publish(snap);
  return PinOf(snap);
}

SnapshotManager::Pinned SnapshotManager::AwaitGeneration(uint64_t generation) {
  if (policy_ != RefreshPolicy::kBackground) return RefreshNow(generation);
  RequestRebuild(generation);
  std::unique_lock<std::mutex> lock(state_mu_);
  publish_cv_.wait(lock, [&] {
    return stop_ ||
           published_generation_.load(std::memory_order_acquire) >= generation;
  });
  return Pin();
}

void SnapshotManager::RequestRebuild(uint64_t target_generation) {
  std::lock_guard<std::mutex> lock(state_mu_);
  if (stop_) return;
  if (published_generation_.load(std::memory_order_acquire) >=
      target_generation) {
    return;
  }
  if (target_generation > requested_generation_) {
    requested_generation_ = target_generation;
  }
  EnsureWorkerLocked();
  work_cv_.notify_one();
}

std::shared_ptr<const SnapshotManager::Versioned>
SnapshotManager::BuildFromSource() {
  IndexCopy copy = source_();  // consistent copy; source owns the locking
  auto snap = std::make_shared<Versioned>(
      Versioned{copy.generation, FlatSpcIndex(copy.index)});
  rebuilds_.fetch_add(1, std::memory_order_relaxed);
  return snap;
}

void SnapshotManager::Publish(std::shared_ptr<const Versioned> snap) {
  std::shared_ptr<const Versioned> old =
      published_.load(std::memory_order_acquire);
  // Monotone swap: a slow build must never replace a newer snapshot.
  while (old == nullptr || old->generation < snap->generation) {
    if (published_.compare_exchange_weak(old, snap,
                                         std::memory_order_acq_rel)) {
      if (old != nullptr) retired_.fetch_add(1, std::memory_order_relaxed);
      published_generation_.store(snap->generation,
                                  std::memory_order_release);
      {
        // Lock between the store and the notify so AwaitGeneration cannot
        // miss the wakeup; also reset the staleness budget for the fresh
        // snapshot.
        std::lock_guard<std::mutex> lock(state_mu_);
        stale_queries_ = 0;
      }
      publish_cv_.notify_all();
      return;
    }
  }
}

void SnapshotManager::WorkerLoop() {
  std::unique_lock<std::mutex> lock(state_mu_);
  while (true) {
    work_cv_.wait(lock, [&] {
      return stop_ ||
             requested_generation_ >
                 published_generation_.load(std::memory_order_acquire);
    });
    if (stop_) {
      // Wake any AwaitGeneration waiter stuck behind a request that will
      // now never be built.
      publish_cv_.notify_all();
      return;
    }
    lock.unlock();
    {
      std::lock_guard<std::mutex> rebuild_lock(rebuild_mu_);
      auto snap = BuildFromSource();
      background_rebuilds_.fetch_add(1, std::memory_order_relaxed);
      Publish(snap);
    }
    lock.lock();
    // If writers advanced past the copy we just published, the predicate
    // still holds and the loop builds again.
  }
}

void SnapshotManager::EnsureWorkerLocked() {
  if (worker_.joinable()) return;
  worker_ = std::thread([this] { WorkerLoop(); });
}

}  // namespace dspc
