#include "dspc/core/snapshot_manager.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "dspc/common/thread_pool.h"

namespace dspc {

SnapshotManager::SnapshotManager(Source source, RefreshPolicy policy,
                                 size_t stale_query_budget,
                                 unsigned rebuild_threads)
    : source_(std::move(source)),
      policy_(policy),
      stale_query_budget_(stale_query_budget),
      rebuild_threads_(rebuild_threads) {}

SnapshotManager::~SnapshotManager() {
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

SnapshotManager::Pinned SnapshotManager::PinOf(
    const std::shared_ptr<const Versioned>& v) {
  if (v == nullptr) return {};
  // Aliasing ctor: the pin shares v's control block but points at the
  // index, so callers hold a plain FlatSpcIndex handle while the refcount
  // keeps the whole versioned snapshot alive.
  return {std::shared_ptr<const FlatSpcIndex>(v, &v->flat), v->generation};
}

SnapshotManager::Pinned SnapshotManager::Pin() const {
  return PinOf(published_.load(std::memory_order_acquire));
}

SnapshotManager::Pinned SnapshotManager::Acquire(uint64_t current_generation,
                                                 size_t queries) {
  const Pinned cur = Pin();
  if (cur && cur.generation == current_generation) return cur;

  switch (policy_) {
    case RefreshPolicy::kManual:
      // Stale (or nothing published): the caller rides the mutable index;
      // only explicit refreshes publish.
      return {};

    case RefreshPolicy::kSync: {
      {
        std::lock_guard<std::mutex> lock(state_mu_);
        stale_queries_ += queries;
        if (stale_queries_ < stale_query_budget_) return {};
      }
      return RefreshNow(current_generation);
    }

    case RefreshPolicy::kBackground: {
      bool request = false;
      {
        std::lock_guard<std::mutex> lock(state_mu_);
        stale_queries_ += queries;
        if (stale_queries_ >= stale_query_budget_) {
          stale_queries_ = 0;
          request = true;
        }
      }
      if (request) RequestRebuild(current_generation);
      // Serve the pinned snapshot even though it is stale — bounded
      // staleness is the policy's contract. Empty only before the first
      // publish (the facade publishes eagerly at construction).
      return cur;
    }
  }
  return {};
}

void SnapshotManager::ChargeOnly(size_t queries) {
  std::lock_guard<std::mutex> lock(state_mu_);
  stale_queries_ += queries;
}

SnapshotManager::Pinned SnapshotManager::RefreshNow(
    uint64_t current_generation) {
  std::lock_guard<std::mutex> rebuild_lock(rebuild_mu_);
  // A racing refresh may have published while we waited for the build
  // lock; don't build the same generation twice.
  if (const Pinned cur = Pin();
      cur && cur.generation >= current_generation) {
    return cur;
  }
  auto snap = BuildFromSource();
  Publish(snap);
  return PinOf(snap);
}

SnapshotManager::Pinned SnapshotManager::AwaitGeneration(uint64_t generation) {
  if (policy_ != RefreshPolicy::kBackground) return RefreshNow(generation);
  RequestRebuild(generation);
  std::unique_lock<std::mutex> lock(state_mu_);
  publish_cv_.wait(lock, [&] {
    return stop_ ||
           published_generation_.load(std::memory_order_acquire) >= generation;
  });
  return Pin();
}

SnapshotManager::Pinned SnapshotManager::AwaitGeneration(
    uint64_t generation, std::chrono::steady_clock::time_point deadline) {
  if (policy_ != RefreshPolicy::kBackground) {
    // An expired deadline refuses up front; otherwise the caller pays the
    // inline rebuild it asked for (see the header contract).
    if (std::chrono::steady_clock::now() >= deadline &&
        published_generation_.load(std::memory_order_acquire) < generation) {
      return Pin();
    }
    return RefreshNow(generation);
  }
  RequestRebuild(generation);
  std::unique_lock<std::mutex> lock(state_mu_);
  publish_cv_.wait_until(lock, deadline, [&] {
    return stop_ ||
           published_generation_.load(std::memory_order_acquire) >= generation;
  });
  // Timed out, stopped, or satisfied: in every case the published pin is
  // the answer; the caller reads its generation to tell which.
  return Pin();
}

void SnapshotManager::RequestRebuild(uint64_t target_generation) {
  std::lock_guard<std::mutex> lock(state_mu_);
  if (stop_) return;
  if (published_generation_.load(std::memory_order_acquire) >=
      target_generation) {
    return;
  }
  if (target_generation > requested_generation_) {
    requested_generation_ = target_generation;
  }
  EnsureWorkerLocked();
  work_cv_.notify_one();
}

std::shared_ptr<const SnapshotManager::Versioned>
SnapshotManager::BuildFromSource() {
  // rebuild_mu_ (held by every caller) serializes builds, so the snapshot
  // read here is exactly what Publish will swap out.
  const std::shared_ptr<const Versioned> prev =
      published_.load(std::memory_order_acquire);
  const FlatSpcIndex* prev_flat = prev ? &prev->flat : nullptr;
  // Delta copy; the source owns the locking and the dirty bookkeeping.
  FlatSpcIndex::IndexDelta delta = source_(prev_flat);
  const size_t dirty = delta.dirty.size();
  // The repack pool lives only for this rebuild and is sized to the
  // dirty work: thread spawn is microseconds against millisecond-scale
  // packs, and no facade ever holds parked threads between refreshes.
  std::unique_ptr<ThreadPool> pool;
  if (rebuild_threads_ > 1 && dirty > 1) {
    pool = std::make_unique<ThreadPool>(
        std::min<size_t>(rebuild_threads_, dirty));
  }
  const bool adoption = prev_flat != nullptr && !delta.full && dirty == 0;
  const uint64_t generation = delta.generation;
  auto snap = std::make_shared<Versioned>(
      Versioned{generation,
                FlatSpcIndex::Rebuild(prev_flat, std::move(delta),
                                      pool.get())});
  rebuilds_.fetch_add(1, std::memory_order_relaxed);
  // Count adoption from arena identity (not the delta's dirty list), so
  // the metrics stay honest even if the rebuild had to repack clean
  // shards (the packed->wide fallback).
  size_t adopted = 0;
  if (prev_flat != nullptr &&
      snap->flat.LayoutStamp() == prev_flat->LayoutStamp()) {
    for (size_t i = 0; i < snap->flat.NumShards(); ++i) {
      if (snap->flat.SharesShardWith(*prev_flat, i)) ++adopted;
    }
  }
  shards_repacked_.fetch_add(snap->flat.NumShards() - adopted,
                             std::memory_order_relaxed);
  shards_adopted_.fetch_add(adopted, std::memory_order_relaxed);
  if (adoption) adoption_publishes_.fetch_add(1, std::memory_order_relaxed);
  return snap;
}

void SnapshotManager::Publish(std::shared_ptr<const Versioned> snap) {
  std::shared_ptr<const Versioned> old =
      published_.load(std::memory_order_acquire);
  // Builds are serialized under rebuild_mu_ and each one copies at a
  // generation at least as fresh as the snapshot it read, so publication
  // is strictly monotone by construction — a non-increasing generation
  // here is a protocol bug (e.g. a source returning stale generations),
  // not a benign race.
  assert(old == nullptr || snap->generation > old->generation);
  // Monotone swap: a slow build must never replace a newer snapshot.
  while (old == nullptr || old->generation < snap->generation) {
    if (published_.compare_exchange_weak(old, snap,
                                         std::memory_order_acq_rel)) {
      if (old != nullptr) retired_.fetch_add(1, std::memory_order_relaxed);
      published_generation_.store(snap->generation,
                                  std::memory_order_release);
      {
        // Lock between the store and the notify so AwaitGeneration cannot
        // miss the wakeup; also reset the staleness budget for the fresh
        // snapshot.
        std::lock_guard<std::mutex> lock(state_mu_);
        stale_queries_ = 0;
      }
      publish_cv_.notify_all();
      return;
    }
  }
}

void SnapshotManager::WorkerLoop() {
  std::unique_lock<std::mutex> lock(state_mu_);
  while (true) {
    work_cv_.wait(lock, [&] {
      return stop_ ||
             requested_generation_ >
                 published_generation_.load(std::memory_order_acquire);
    });
    if (stop_) {
      // Wake any AwaitGeneration waiter stuck behind a request that will
      // now never be built.
      publish_cv_.notify_all();
      return;
    }
    const uint64_t target = requested_generation_;
    lock.unlock();
    {
      std::lock_guard<std::mutex> rebuild_lock(rebuild_mu_);
      // Mirror RefreshNow's guard: a concurrent manual refresh may have
      // published this generation while we waited for the build lock,
      // and publication is strictly monotone — never build it twice.
      if (published_generation_.load(std::memory_order_acquire) < target) {
        auto snap = BuildFromSource();
        background_rebuilds_.fetch_add(1, std::memory_order_relaxed);
        Publish(snap);
      }
    }
    lock.lock();
    // If writers advanced past the copy we just published, the predicate
    // still holds and the loop builds again.
  }
}

void SnapshotManager::EnsureWorkerLocked() {
  if (worker_.joinable()) return;
  worker_ = std::thread([this] { WorkerLoop(); });
}

}  // namespace dspc
