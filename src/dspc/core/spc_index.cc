#include "dspc/core/spc_index.h"

#include <algorithm>

#include "dspc/common/binary_io.h"
#include "dspc/common/label_codec.h"
#include "dspc/core/flat_spc_index.h"

namespace dspc {

LabelEntry* FindLabelIn(LabelSet& set, Rank hub) {
  auto it = std::lower_bound(
      set.begin(), set.end(), hub,
      [](const LabelEntry& e, Rank r) { return e.hub < r; });
  if (it != set.end() && it->hub == hub) return &*it;
  return nullptr;
}

const LabelEntry* FindLabelIn(const LabelSet& set, Rank hub) {
  return FindLabelIn(const_cast<LabelSet&>(set), hub);
}

void InsertLabelInto(LabelSet& set, const LabelEntry& entry) {
  auto it = std::lower_bound(
      set.begin(), set.end(), entry.hub,
      [](const LabelEntry& e, Rank r) { return e.hub < r; });
  set.insert(it, entry);
}

bool RemoveLabelFrom(LabelSet& set, Rank hub) {
  auto it = std::lower_bound(
      set.begin(), set.end(), hub,
      [](const LabelEntry& e, Rank r) { return e.hub < r; });
  if (it == set.end() || it->hub != hub) return false;
  set.erase(it);
  return true;
}

SpcIndex::SpcIndex(VertexOrdering ordering) : ordering_(std::move(ordering)) {
  labels_.resize(ordering_.size());
  hub_occurrences_.assign(ordering_.size(), 0);
  touched_flag_.assign(ordering_.size(), 0);
  for (Vertex v = 0; v < labels_.size(); ++v) {
    labels_[v].push_back(LabelEntry{ordering_.rank_of[v], 0, 1});
  }
}

void SpcIndex::ClearTouched() {
  for (const Vertex v : touched_) touched_flag_[v] = 0;
  touched_.clear();
}

SpcResult SpcIndex::Query(Vertex s, Vertex t) const {
  SpcResult result;
  const LabelSet& ls = labels_[s];
  const LabelSet& lt = labels_[t];
  size_t i = 0;
  size_t j = 0;
  while (i < ls.size() && j < lt.size()) {
    if (ls[i].hub < lt[j].hub) {
      ++i;
    } else if (ls[i].hub > lt[j].hub) {
      ++j;
    } else {
      const Distance d = ls[i].dist + lt[j].dist;
      if (d < result.dist) {
        result.dist = d;
        result.count = ls[i].count * lt[j].count;
      } else if (d == result.dist) {
        result.count += ls[i].count * lt[j].count;
      }
      ++i;
      ++j;
    }
  }
  return result;
}

SpcResult SpcIndex::PreQuery(Vertex s, Vertex t) const {
  SpcResult result;
  const Rank limit = ordering_.rank_of[s];
  const LabelSet& ls = labels_[s];
  const LabelSet& lt = labels_[t];
  size_t i = 0;
  size_t j = 0;
  while (i < ls.size() && j < lt.size() && ls[i].hub < limit &&
         lt[j].hub < limit) {
    if (ls[i].hub < lt[j].hub) {
      ++i;
    } else if (ls[i].hub > lt[j].hub) {
      ++j;
    } else {
      const Distance d = ls[i].dist + lt[j].dist;
      if (d < result.dist) {
        result.dist = d;
        result.count = ls[i].count * lt[j].count;
      } else if (d == result.dist) {
        result.count += ls[i].count * lt[j].count;
      }
      ++i;
      ++j;
    }
  }
  return result;
}

Vertex SpcIndex::AddVertex() {
  ordering_.Append();
  const auto v = static_cast<Vertex>(labels_.size());
  labels_.emplace_back();
  labels_.back().push_back(LabelEntry{ordering_.rank_of[v], 0, 1});
  hub_occurrences_.push_back(0);
  touched_flag_.push_back(0);
  MarkTouched(v);
  return v;
}

LabelEntry* SpcIndex::FindLabel(Vertex v, Rank hub) {
  // Conservative touch: the maintenance algorithms use the mutable
  // overload to update dist/count in place, so the pointer handout is the
  // last point where the write is observable.
  MarkTouched(v);
  return FindLabelIn(labels_[v], hub);
}

const LabelEntry* SpcIndex::FindLabel(Vertex v, Rank hub) const {
  return FindLabelIn(labels_[v], hub);
}

void SpcIndex::InsertLabel(Vertex v, const LabelEntry& entry) {
  MarkTouched(v);
  InsertLabelInto(labels_[v], entry);
  if (entry.hub != ordering_.rank_of[v]) ++hub_occurrences_[entry.hub];
}

bool SpcIndex::RemoveLabel(Vertex v, Rank hub) {
  if (!RemoveLabelFrom(labels_[v], hub)) return false;
  MarkTouched(v);
  if (hub != ordering_.rank_of[v]) --hub_occurrences_[hub];
  return true;
}

size_t SpcIndex::ClearToSelfLabel(Vertex v) {
  MarkTouched(v);
  LabelSet& set = labels_[v];
  const size_t removed = set.size() - 1;
  const Rank self = ordering_.rank_of[v];
  for (const LabelEntry& e : set) {
    if (e.hub != self) --hub_occurrences_[e.hub];
  }
  set.clear();
  set.push_back(LabelEntry{self, 0, 1});
  return removed;
}

IndexSizeStats SpcIndex::SizeStats() const {
  IndexSizeStats stats;
  stats.num_vertices = labels_.size();
  for (const LabelSet& set : labels_) {
    stats.total_entries += set.size();
    stats.max_label_size = std::max(stats.max_label_size, set.size());
    for (const LabelEntry& e : set) {
      if (!FitsFlatInline(e.hub, e.dist, e.count)) ++stats.overflow_entries;
    }
  }
  stats.avg_label_size =
      labels_.empty()
          ? 0.0
          : static_cast<double>(stats.total_entries) / labels_.size();
  stats.wide_bytes = stats.total_entries * sizeof(LabelEntry);
  stats.packed_bytes = stats.total_entries * sizeof(uint64_t) +
                       stats.overflow_entries * sizeof(LabelEntry);
  return stats;
}

Status SpcIndex::ValidateStructure() const {
  if (!ordering_.IsValid()) {
    return Status::Corruption("ordering is not a permutation");
  }
  if (ordering_.size() != labels_.size()) {
    return Status::Corruption("ordering/labels size mismatch");
  }
  for (Vertex v = 0; v < labels_.size(); ++v) {
    const Rank rv = ordering_.rank_of[v];
    const LabelSet& set = labels_[v];
    bool self_seen = false;
    for (size_t i = 0; i < set.size(); ++i) {
      if (i > 0 && set[i - 1].hub >= set[i].hub) {
        return Status::Corruption("labels of v" + std::to_string(v) +
                                  " not strictly sorted by hub rank");
      }
      if (set[i].hub > rv) {
        return Status::Corruption("hub outranked by owner at v" +
                                  std::to_string(v));
      }
      if (set[i].hub == rv) {
        if (set[i].dist != 0 || set[i].count != 1) {
          return Status::Corruption("bad self label at v" + std::to_string(v));
        }
        self_seen = true;
      }
      if (set[i].count == 0) {
        return Status::Corruption("zero-count label at v" + std::to_string(v));
      }
    }
    if (!self_seen) {
      return Status::Corruption("missing self label at v" + std::to_string(v));
    }
  }
  return Status::OK();
}

Status SpcIndex::Save(const std::string& path) const {
  BinaryWriter w;
  w.PutU32(kSpcIndexMagic);
  w.PutU32(kSpcIndexFormatV1);
  w.PutU64(labels_.size());
  for (Vertex v = 0; v < labels_.size(); ++v) {
    w.PutU32(ordering_.rank_of[v]);
  }
  for (const LabelSet& set : labels_) {
    w.PutU64(set.size());
    for (const LabelEntry& e : set) {
      // Entries that fit the paper's 64-bit packing are stored packed; a
      // flag byte selects the wide form otherwise.
      if (FitsPacked(e.hub, e.dist, e.count)) {
        w.PutU8(0);
        w.PutU64(PackLabel(e.hub, e.dist, e.count));
      } else {
        w.PutU8(1);
        w.PutU32(e.hub);
        w.PutU32(e.dist);
        w.PutU64(e.count);
      }
    }
  }
  return w.WriteToFile(path);
}

Status SpcIndex::Load(const std::string& path, SpcIndex* out) {
  BinaryReader r({});
  Status s = BinaryReader::ReadFromFile(path, &r);
  if (!s.ok()) return s;
  if (r.GetU32() != kSpcIndexMagic) {
    return Status::Corruption("bad index magic");
  }
  const uint32_t version = r.GetU32();
  if (version == kSpcIndexFormatV1) return LoadFromReader(&r, out);
  if (version == kSpcIndexFormatV2) {
    // v2 is the flat arena image; parse it and unpack into a mutable index.
    FlatSpcIndex flat;
    s = FlatSpcIndex::LoadFromReader(&r, &flat);
    if (!s.ok()) return s;
    *out = flat.Unpack();
    return Status::OK();
  }
  return Status::Corruption("bad index version");
}

Status SpcIndex::LoadFromReader(BinaryReader* reader, SpcIndex* out) {
  BinaryReader& r = *reader;
  const uint64_t n = r.GetU64();
  if (n > r.remaining() / sizeof(Rank)) {
    return Status::Corruption("bad vertex count");
  }
  SpcIndex index;
  index.ordering_.rank_of.resize(n);
  index.ordering_.vertex_of.assign(n, 0);
  for (uint64_t v = 0; v < n; ++v) {
    index.ordering_.rank_of[v] = r.GetU32();
  }
  if (!r.status().ok()) return r.status();
  for (uint64_t v = 0; v < n; ++v) {
    const Rank rank = index.ordering_.rank_of[v];
    if (rank >= n) return Status::Corruption("rank out of range");
    index.ordering_.vertex_of[rank] = static_cast<Vertex>(v);
  }
  index.labels_.resize(n);
  index.touched_flag_.assign(n, 0);
  for (uint64_t v = 0; v < n; ++v) {
    const uint64_t count = r.GetU64();
    if (count > r.remaining()) return Status::Corruption("bad label count");
    LabelSet& set = index.labels_[v];
    set.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
      const uint8_t tag = r.GetU8();
      if (tag == 0) {
        const PackedLabelFields f = UnpackLabel(r.GetU64());
        set.push_back(LabelEntry{f.hub, f.dist, f.count});
      } else if (tag == 1) {
        LabelEntry e;
        e.hub = r.GetU32();
        e.dist = r.GetU32();
        e.count = r.GetU64();
        set.push_back(e);
      } else {
        return Status::Corruption("bad entry tag");
      }
    }
  }
  if (!r.AtEnd()) return Status::Corruption("trailing bytes in index file");
  index.hub_occurrences_.assign(n, 0);
  for (uint64_t v = 0; v < n; ++v) {
    for (const LabelEntry& e : index.labels_[v]) {
      if (e.hub >= n) return Status::Corruption("hub rank out of range");
      if (e.hub != index.ordering_.rank_of[v]) {
        ++index.hub_occurrences_[e.hub];
      }
    }
  }
  const Status s = index.ValidateStructure();
  if (!s.ok()) return s;
  *out = std::move(index);
  return Status::OK();
}

// --- HubCache --------------------------------------------------------------

HubCache::HubCache(size_t n)
    : dist_(n, kInfDistance), count_(n, 0) {}

void HubCache::Load(const LabelSet& labels) {
  Clear();
  for (const LabelEntry& e : labels) {
    dist_[e.hub] = e.dist;
    count_[e.hub] = e.count;
    touched_.push_back(e.hub);
  }
}

SpcResult HubCache::Query(const LabelSet& labels) const {
  SpcResult result;
  for (const LabelEntry& e : labels) {
    const Distance dh = dist_[e.hub];
    if (dh == kInfDistance) continue;
    const Distance d = dh + e.dist;
    if (d < result.dist) {
      result.dist = d;
      result.count = count_[e.hub] * e.count;
    } else if (d == result.dist) {
      result.count += count_[e.hub] * e.count;
    }
  }
  return result;
}

SpcResult HubCache::PreQuery(const LabelSet& labels, Rank below_rank) const {
  SpcResult result;
  for (const LabelEntry& e : labels) {
    if (e.hub >= below_rank) break;  // labels sorted ascending by rank
    const Distance dh = dist_[e.hub];
    if (dh == kInfDistance) continue;
    const Distance d = dh + e.dist;
    if (d < result.dist) {
      result.dist = d;
      result.count = count_[e.hub] * e.count;
    } else if (d == result.dist) {
      result.count += count_[e.hub] * e.count;
    }
  }
  return result;
}

void HubCache::Clear() {
  for (const Rank r : touched_) {
    dist_[r] = kInfDistance;
    count_[r] = 0;
  }
  touched_.clear();
}

}  // namespace dspc
