// IncSPC: incremental maintenance of the SPC-Index for edge insertion
// (paper §3.1, Algorithms 2 and 3).
//
// On inserting (a, b), only hubs in AFF = {h | h in L(a) u L(b)} can gain,
// lose nothing: by Lemma 3.1 distances never increase, so stale distance
// labels are *kept* (queries take minima and ignore them) and only labels
// on new shortest paths are renewed or inserted. Each affected hub runs a
// pruned BFS seeded "through" the new edge; the pruning is relaxed to
// strictly-shorter (Lemma 3.4) so that count-only changes are discovered.

#ifndef DSPC_CORE_INC_SPC_H_
#define DSPC_CORE_INC_SPC_H_

#include <vector>

#include "dspc/core/spc_index.h"
#include "dspc/core/update_stats.h"
#include "dspc/graph/graph.h"

namespace dspc {

/// Incremental updater. Holds n-sized scratch reused across updates; one
/// instance per (graph, index) pair, invoked through DynamicSpcIndex or
/// directly. Not thread-safe.
class IncSpc {
 public:
  /// Both pointers must outlive the updater. The index must currently be
  /// a valid SPC-Index of *graph.
  IncSpc(Graph* graph, SpcIndex* index);

  /// Inserts edge (a, b) into the graph and updates the index
  /// (Algorithm 2). Returns the per-update statistics; stats.applied is
  /// false if (a, b) already existed or is invalid (index untouched).
  UpdateStats InsertEdge(Vertex a, Vertex b);

  /// Grows scratch after vertices were added to the graph/index.
  void Resize();

 private:
  /// Algorithm 3: pruned BFS rooted at hub rank `h`, entering the new edge
  /// at `vb` with the seed taken from (h, d, c) in L(va).
  void IncUpdate(Rank h, Vertex va, Vertex vb, UpdateStats* stats);

  Graph* graph_;
  SpcIndex* index_;
  HubCache cache_;
  std::vector<Distance> dist_;
  std::vector<PathCount> count_;
  std::vector<Vertex> queue_;
  std::vector<Vertex> touched_;
};

}  // namespace dspc

#endif  // DSPC_CORE_INC_SPC_H_
