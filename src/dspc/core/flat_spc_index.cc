#include "dspc/core/flat_spc_index.h"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <thread>

#include "dspc/common/binary_io.h"
#include "dspc/common/label_codec.h"
#include "dspc/common/thread_pool.h"
#include "dspc/core/merge_kernel.h"

namespace dspc {

namespace {

/// Runs fn(i) for i in [0, n), on the pool when one is given.
void RunShardJobs(ThreadPool* pool, size_t n,
                  const std::function<void(size_t)>& fn) {
  if (pool != nullptr) {
    pool->ParallelFor(n, fn);
  } else {
    for (size_t i = 0; i < n; ++i) fn(i);
  }
}

}  // namespace

FlatSpcIndex::ShardLayout FlatSpcIndex::ComputeShardLayout(
    size_t num_vertices, size_t requested_shards) {
  ShardLayout layout;
  if (num_vertices == 0) return layout;
  requested_shards = std::clamp<size_t>(requested_shards, 1, num_vertices);
  const size_t width =
      (num_vertices + requested_shards - 1) / requested_shards;
  layout.shift = static_cast<unsigned>(std::countr_zero(std::bit_ceil(width)));
  layout.count = (num_vertices + (size_t{1} << layout.shift) - 1) >>
                 layout.shift;
  return layout;
}

void FlatSpcIndex::InitLayout(size_t requested_shards) {
  const ShardLayout layout =
      ComputeShardLayout(num_vertices_, requested_shards);
  shard_shift_ = layout.shift;
  shards_.assign(layout.count, nullptr);
}

std::shared_ptr<const FlatSpcIndex::Shard> FlatSpcIndex::PackShard(
    Vertex begin, uint64_t generation, std::span<const LabelSet> labels,
    bool wide) {
  auto shard = std::make_shared<Shard>();
  shard->begin = begin;
  shard->end = static_cast<Vertex>(begin + labels.size());
  shard->generation = generation;
  shard->offsets.assign(labels.size() + 1, 0);

  size_t total = 0;
  size_t overflow = 0;
  for (const LabelSet& set : labels) {
    total += set.size();
    if (!wide) {
      for (const LabelEntry& e : set) {
        if (!FitsFlatInline(e.hub, e.dist, e.count)) ++overflow;
      }
    }
  }

  if (wide) {
    shard->wide_entries.reserve(total);
    for (size_t lv = 0; lv < labels.size(); ++lv) {
      const LabelSet& set = labels[lv];
      shard->wide_entries.append(set.begin(), set.end());
      shard->offsets[lv + 1] = shard->wide_entries.size();
    }
    return shard;
  }

  // Overflow slots are shard-local, so the 29-bit slot field bounds the
  // side table per shard; blowing it demands the wide fallback.
  if (overflow > kPackedCountMax) return nullptr;

  shard->entries.reserve(total);
  shard->overflow.reserve(overflow);
  for (size_t lv = 0; lv < labels.size(); ++lv) {
    for (const LabelEntry& e : labels[lv]) {
      if (FitsFlatInline(e.hub, e.dist, e.count)) {
        shard->entries.push_back(PackLabel(e.hub, e.dist, e.count));
      } else {
        shard->entries.push_back(
            PackFlatOverflowRef(e.hub, shard->overflow.size()));
        shard->overflow.push_back(e);
      }
    }
    shard->offsets[lv + 1] = shard->entries.size();
  }
  BuildDenseDirectory(shard.get());
  return shard;
}

std::vector<LabelSet> FlatSpcIndex::UnpackShardLabels(const Shard& shard,
                                                      bool wide) {
  const size_t width = shard.end - shard.begin;
  std::vector<LabelSet> labels(width);
  for (size_t lv = 0; lv < width; ++lv) {
    LabelSet& set = labels[lv];
    set.reserve(shard.offsets[lv + 1] - shard.offsets[lv]);
    for (uint64_t i = shard.offsets[lv]; i < shard.offsets[lv + 1]; ++i) {
      set.push_back(EntryAt(shard, wide, i));
    }
  }
  return labels;
}

template <typename LabelsOf>
void FlatSpcIndex::PackAllShards(const LabelsOf& labels_of,
                                 uint64_t generation, ThreadPool* pool) {
  const size_t n = num_vertices_;
  auto pack_pass = [&](bool wide) {
    std::atomic<bool> ok{true};
    RunShardJobs(pool, shards_.size(), [&](size_t i) {
      const Vertex begin = static_cast<Vertex>(i << shard_shift_);
      const Vertex end = static_cast<Vertex>(
          std::min<size_t>(n, (i + 1) << shard_shift_));
      shards_[i] = PackShard(begin, generation, labels_of(begin, end), wide);
      if (shards_[i] == nullptr) ok.store(false, std::memory_order_relaxed);
    });
    return ok.load(std::memory_order_relaxed);
  };
  if (!pack_pass(wide_mode_)) {
    // A shard outgrew the packed side-table budget: rebuild everything
    // wide (cold path; requires >2^29 overflow entries in one shard).
    wide_mode_ = true;
    pack_pass(true);
  }
}

FlatSpcIndex::FlatSpcIndex(const SpcIndex& index, size_t num_shards,
                           ThreadPool* pool) {
  num_vertices_ = index.NumVertices();
  ordering_ = std::make_shared<VertexOrdering>(index.ordering());
  InitLayout(num_shards);
  // Hubs must fit their 25-bit field for the packed merge to compare
  // ranks; otherwise every shard uses the wide contiguous arena.
  wide_mode_ = num_vertices_ > 0 && ordering_->size() - 1 > kPackedHubMax;
  PackAllShards(
      [&](Vertex begin, Vertex end) { return index.LabelRange(begin, end); },
      /*generation=*/0, pool);
}

FlatSpcIndex FlatSpcIndex::Rebuild(const FlatSpcIndex* prev, IndexDelta delta,
                                   ThreadPool* pool) {
  FlatSpcIndex out;
  if (prev == nullptr || delta.full) {
    // From-scratch build: the delta carries the ordering and every shard.
    out.num_vertices_ = delta.num_vertices;
    out.layout_stamp_ = delta.layout_stamp;
    out.ordering_ =
        std::make_shared<VertexOrdering>(std::move(delta.ordering));
    out.InitLayout(delta.num_shards);
    out.wide_mode_ =
        out.num_vertices_ > 0 && out.ordering_->size() - 1 > kPackedHubMax;
    std::vector<const std::vector<LabelSet>*> by_shard(out.shards_.size(),
                                                       nullptr);
    // Like .at() below, a malformed producer must fail loudly instead of
    // corrupting memory; the facade provably covers every shard.
    for (const ShardLabels& d : delta.dirty) by_shard.at(d.shard) = &d.labels;
    for (const auto* labels : by_shard) {
      if (labels == nullptr) {
        throw std::logic_error("full IndexDelta must cover every shard");
      }
    }
    out.PackAllShards(
        [&](Vertex begin, Vertex) -> std::span<const LabelSet> {
          return *by_shard[begin >> out.shard_shift_];
        },
        delta.generation, pool);
    return out;
  }

  // Delta rebuild: adopt every clean shard from prev (a shared_ptr copy),
  // repack exactly the dirty ones. Layout stamps must match or the caller
  // should have sent a full delta.
  out.num_vertices_ = prev->num_vertices_;
  out.layout_stamp_ = prev->layout_stamp_;
  out.shard_shift_ = prev->shard_shift_;
  out.wide_mode_ = prev->wide_mode_;
  out.ordering_ = prev->ordering_;
  out.shards_ = prev->shards_;
  if (delta.dirty.empty()) return out;

  std::vector<std::shared_ptr<const Shard>> packed(delta.dirty.size());
  std::atomic<bool> ok{true};
  RunShardJobs(pool, delta.dirty.size(), [&](size_t k) {
    const ShardLabels& d = delta.dirty[k];
    packed[k] = PackShard(static_cast<Vertex>(d.shard << out.shard_shift_),
                          delta.generation, d.labels, out.wide_mode_);
    if (packed[k] == nullptr) ok.store(false, std::memory_order_relaxed);
  });
  if (ok.load(std::memory_order_relaxed)) {
    for (size_t k = 0; k < packed.size(); ++k) {
      out.shards_.at(delta.dirty[k].shard) = std::move(packed[k]);
    }
    return out;
  }

  // Packed->wide fallback: materialize the clean shards' labels from
  // prev (the dirty ones come straight from the delta), and rebuild
  // everything wide.
  std::vector<std::vector<LabelSet>> all(out.shards_.size());
  for (ShardLabels& d : delta.dirty) all[d.shard] = std::move(d.labels);
  for (size_t i = 0; i < out.shards_.size(); ++i) {
    // Shards are never empty and every vertex has a self label, so an
    // empty slot here means "not in the delta": take it from prev.
    if (all[i].empty()) {
      all[i] = UnpackShardLabels(*prev->shards_[i], prev->wide_mode_);
    }
  }
  out.wide_mode_ = true;
  out.PackAllShards(
      [&](Vertex begin, Vertex) -> std::span<const LabelSet> {
        return all[begin >> out.shard_shift_];
      },
      delta.generation, pool);
  return out;
}

size_t FlatSpcIndex::TotalEntries() const {
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->NumEntries();
  return total;
}

size_t FlatSpcIndex::OverflowEntries() const {
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->overflow.size();
  return total;
}

size_t FlatSpcIndex::ShardEntries(size_t shard) const {
  return shards_[shard]->NumEntries();
}

size_t FlatSpcIndex::Shard::Bytes() const {
  return offsets.size() * sizeof(uint64_t) +
         entries.size() * sizeof(uint64_t) +
         overflow.size() * sizeof(LabelEntry) +
         wide_entries.size() * sizeof(LabelEntry) +
         hub_bits.size() * sizeof(uint64_t) +
         word_base.size() * sizeof(uint16_t);
}

size_t FlatSpcIndex::ArenaBytes() const {
  size_t total = ordering_->rank_of.size() * sizeof(Rank);
  for (const auto& shard : shards_) total += shard->Bytes();
  return total;
}

void FlatSpcIndex::BuildDenseDirectory(Shard* shard) {
  // Read through a const ref: offsets/entries may be mmap views, where
  // only the const ArenaVec accessors see the data (the mutating
  // overloads address the owning vector, empty in view mode).
  const Shard& sh = *shard;
  const size_t width = sh.end - sh.begin;
  shard->hub_bits.assign(width * kDenseWords, 0);
  shard->word_base.assign(width * kDenseWords, 0);
  for (size_t lv = 0; lv < width; ++lv) {
    uint64_t* bits = shard->hub_bits.data() + lv * kDenseWords;
    for (uint64_t i = sh.offsets[lv]; i < sh.offsets[lv + 1]; ++i) {
      const Rank h = FlatHub(sh.entries[i]);
      if (h >= kDenseRanks) break;  // sorted ascending: the rest is tail
      bits[h / 64] |= 1ULL << (h % 64);
    }
    uint16_t* base = shard->word_base.data() + lv * kDenseWords;
    uint16_t acc = 0;
    for (size_t w = 0; w < kDenseWords; ++w) {
      base[w] = acc;
      acc = static_cast<uint16_t>(acc + std::popcount(bits[w]));
    }
  }
}

inline void FlatSpcIndex::DecodeWord(uint64_t word, const LabelEntry* overflow,
                                     Distance* dist, PathCount* count) {
  if (!IsFlatOverflowRef(word)) [[likely]] {
    *dist = static_cast<Distance>((word >> kPackedCountBits) & kPackedDistMax);
    *count = word & kPackedCountMax;
  } else {
    const LabelEntry& e = overflow[FlatOverflowSlot(word)];
    *dist = e.dist;
    *count = e.count;
  }
}

LabelEntry FlatSpcIndex::EntryAt(const Shard& shard, bool wide, uint64_t i) {
  if (wide) return shard.wide_entries[i];
  const uint64_t word = shard.entries[i];
  LabelEntry e;
  e.hub = FlatHub(word);
  DecodeWord(word, shard.overflow.data(), &e.dist, &e.count);
  return e;
}

inline FlatSpcIndex::PackedSide FlatSpcIndex::ResolvePacked(Vertex v) const {
  const Shard& sh = *shards_[v >> shard_shift_];
  const size_t lv = v - sh.begin;
  PackedSide side;
  side.arena = sh.entries.data();
  side.overflow = sh.overflow.data();
  side.bits = sh.hub_bits.data() + lv * kDenseWords;
  side.base = sh.word_base.data() + lv * kDenseWords;
  side.lo = sh.offsets[lv];
  side.hi = sh.offsets[lv + 1];
  side.dense_end = side.lo + side.base[kDenseWords - 1] +
                   static_cast<uint64_t>(
                       std::popcount(side.bits[kDenseWords - 1]));
  return side;
}

template <bool kLimited>
SpcResult FlatSpcIndex::QueryPacked(const PackedSide& A, const PackedSide& B,
                                    Rank limit) {
  SpcResult result;

  auto accumulate = [&](uint64_t wa, uint64_t wb) {
    Distance da;
    Distance db;
    PathCount ca;
    PathCount cb;
    DecodeWord(wa, A.overflow, &da, &ca);
    DecodeWord(wb, B.overflow, &db, &cb);
    const Distance d = da + db;
    if (d < result.dist) {
      result.dist = d;
      result.count = ca * cb;
    } else if (d == result.dist) {
      result.count += ca * cb;
    }
  };

  // Dense part: the common top-ranked hubs fall out of word-parallel
  // bitmap ANDs; each surviving bit maps to its arena slot by prefix
  // popcount, so there is no serially-dependent two-pointer walk over
  // the (large) dense share of both label sets. The two sides may live
  // in different shards — every lookup below is side-relative.
  size_t full_words = kDenseWords;
  uint64_t boundary_mask = 0;
  if constexpr (kLimited) {
    if (limit < kDenseRanks) {
      full_words = limit / 64;
      boundary_mask =
          (limit % 64) ? ((1ULL << (limit % 64)) - 1) : 0;  // bits < limit
    }
  }
  auto scan_word = [&](size_t w, uint64_t common) {
    const uint64_t bits_a = A.bits[w];
    const uint64_t bits_b = B.bits[w];
    const uint64_t base_a = A.lo + A.base[w];
    const uint64_t base_b = B.lo + B.base[w];
    while (common != 0) {
      const int bit = std::countr_zero(common);
      common &= common - 1;
      const uint64_t below = (1ULL << bit) - 1;
      const uint64_t ia = base_a + std::popcount(bits_a & below);
      const uint64_t ib = base_b + std::popcount(bits_b & below);
      accumulate(A.arena[ia], B.arena[ib]);
    }
  };
  for (size_t w = 0; w < full_words; ++w) {
    scan_word(w, A.bits[w] & B.bits[w]);
  }
  if constexpr (kLimited) {
    if (boundary_mask != 0) {
      scan_word(full_words, A.bits[full_words] & B.bits[full_words] &
                                boundary_mask);
    }
    if (limit < kDenseRanks) return result;  // tail hubs all >= limit
  }

  // Tail part: intersection over the short low-rank remainder, routed
  // through the tiered merge kernel (scalar / SWAR / AVX2 — see
  // core/merge_kernel.h). A rank limit is applied by truncating both
  // ranges at the first >=limit word: hubs ascend, so every match below
  // the limit precedes the truncation point on both sides and the
  // unlimited kernel finds exactly the match set the historical in-loop
  // break did.
  const uint64_t* a = A.arena + A.dense_end;
  const uint64_t* ae = A.arena + A.hi;
  const uint64_t* b = B.arena + B.dense_end;
  const uint64_t* be = B.arena + B.hi;
  if constexpr (kLimited) {
    ae = PackedLowerBound(a, ae, limit);
    be = PackedLowerBound(b, be, limit);
  }
  MergePackedTail(a, ae, A.overflow, b, be, B.overflow, &result);
  return result;
}

template <bool kLimited>
SpcResult FlatSpcIndex::QueryWide(Vertex s, Vertex t, Rank limit) const {
  SpcResult result;
  const Shard& sa = *shards_[s >> shard_shift_];
  const Shard& sb = *shards_[t >> shard_shift_];
  const size_t ls = s - sa.begin;
  const size_t lt = t - sb.begin;
  const LabelEntry* a = sa.wide_entries.data() + sa.offsets[ls];
  const LabelEntry* ae = sa.wide_entries.data() + sa.offsets[ls + 1];
  const LabelEntry* b = sb.wide_entries.data() + sb.offsets[lt];
  const LabelEntry* be = sb.wide_entries.data() + sb.offsets[lt + 1];
  if constexpr (kLimited) {
    // Truncate-at-limit is equivalent to the in-loop break; see the
    // packed tail above.
    ae = WideLowerBound(a, ae, limit);
    be = WideLowerBound(b, be, limit);
  }
  MergeWide(a, ae, b, be, &result);
  return result;
}

SpcResult FlatSpcIndex::Query(Vertex s, Vertex t) const {
  if (wide_mode_) return QueryWide<false>(s, t, 0);
  return QueryPacked<false>(ResolvePacked(s), ResolvePacked(t), 0);
}

SpcResult FlatSpcIndex::PreQuery(Vertex s, Vertex t) const {
  const Rank limit = ordering_->rank_of[s];
  if (wide_mode_) return QueryWide<true>(s, t, limit);
  return QueryPacked<true>(ResolvePacked(s), ResolvePacked(t), limit);
}

void FlatSpcIndex::QueryMany(std::span<const VertexPair> pairs,
                             SpcResult* out) const {
  if (wide_mode_) {
    for (size_t i = 0; i < pairs.size(); ++i) {
      out[i] = QueryWide<false>(pairs[i].first, pairs[i].second, 0);
    }
    return;
  }
  for (size_t i = 0; i < pairs.size(); ++i) {
    out[i] = QueryPacked<false>(ResolvePacked(pairs[i].first),
                                ResolvePacked(pairs[i].second), 0);
  }
}

std::vector<SpcResult> FlatSpcIndex::QueryMany(
    std::span<const VertexPair> pairs) const {
  std::vector<SpcResult> results(pairs.size());
  QueryMany(pairs, results.data());
  return results;
}

unsigned FlatSpcIndex::PlannedParallelism(size_t pairs, unsigned threads) {
  if (threads == 0) threads = std::thread::hardware_concurrency();
  threads = std::min(threads, kMaxQueryThreads);
  // Coarse contiguous chunks — pairs/threads each, never smaller than
  // kMinPairsPerThread — so parallelism overhead amortizes and each
  // worker's arena touches stay local; finer granularity loses to the
  // single-thread batched loop.
  const size_t max_useful = pairs / kMinPairsPerThread;
  return static_cast<unsigned>(
      std::max<size_t>(1, std::min<size_t>(threads, max_useful)));
}

void FlatSpcIndex::QueryManyParallel(std::span<const VertexPair> pairs,
                                     SpcResult* out, unsigned threads,
                                     ThreadPool* pool) const {
  threads = PlannedParallelism(pairs.size(), threads);
  // A caller-provided pool caps the parallelism it can actually deliver;
  // honoring the smaller bound keeps chunk sizes matched to real workers.
  if (pool != nullptr) threads = std::min(threads, pool->size());
  if (threads <= 1) {
    QueryMany(pairs, out);
    return;
  }
  const size_t chunk = (pairs.size() + threads - 1) / threads;
  const auto run_chunk = [this, pairs, chunk, out](size_t w) {
    const size_t begin = std::min(pairs.size(), w * chunk);
    const size_t end = std::min(pairs.size(), begin + chunk);
    if (begin == end) return;
    QueryMany(pairs.subspan(begin, end - begin), out + begin);
  };
  if (pool != nullptr) {
    // The serving path: the facade's lazily-spawned pool is parked between
    // batches, so a batch costs two notifications instead of thread
    // creation. The pool serializes concurrent regions internally.
    pool->ParallelFor(threads, run_chunk);
    return;
  }
  // Standalone snapshots (tools, benches) pay a one-call pool; the caller
  // participates in the region, so `threads` is the total parallelism.
  ThreadPool local(threads);
  local.ParallelFor(threads, run_chunk);
}

std::vector<SpcResult> FlatSpcIndex::QueryManyParallel(
    std::span<const VertexPair> pairs, unsigned threads,
    ThreadPool* pool) const {
  std::vector<SpcResult> results(pairs.size());
  QueryManyParallel(pairs, results.data(), threads, pool);
  return results;
}

SpcIndex FlatSpcIndex::Unpack() const {
  SpcIndex index(*ordering_);
  for (const auto& shard_ptr : shards_) {
    const Shard& sh = *shard_ptr;
    for (Vertex v = sh.begin; v < sh.end; ++v) {
      const Rank self = ordering_->rank_of[v];
      const size_t lv = v - sh.begin;
      for (uint64_t i = sh.offsets[lv]; i < sh.offsets[lv + 1]; ++i) {
        const LabelEntry e = EntryAt(sh, wide_mode_, i);
        if (e.hub == self) continue;  // self label exists since construction
        index.InsertLabel(v, e);
      }
    }
  }
  index.ClearTouched();
  return index;
}

Status FlatSpcIndex::ValidateArena() const {
  const size_t n = num_vertices_;
  if (!ordering_->IsValid() || ordering_->size() != n) {
    return Status::Corruption("flat index ordering is not a permutation");
  }
  const ShardLayout layout{shard_shift_, shards_.size()};
  for (size_t i = 0; i < shards_.size(); ++i) {
    const Shard* sh = shards_[i].get();
    if (sh == nullptr) return Status::Corruption("flat index missing shard");
    if (sh->begin != layout.BeginOf(i) || sh->end != layout.EndOf(i, n)) {
      return Status::Corruption("flat index shard range mismatch");
    }
    const size_t width = sh->end - sh->begin;
    if (sh->offsets.size() != width + 1 || sh->offsets[0] != 0) {
      return Status::Corruption("flat index offsets malformed");
    }
    for (size_t lv = 0; lv < width; ++lv) {
      if (sh->offsets[lv] > sh->offsets[lv + 1]) {
        return Status::Corruption("flat index offsets not monotone");
      }
    }
    const size_t stored =
        wide_mode_ ? sh->wide_entries.size() : sh->entries.size();
    if (sh->offsets[width] != stored) {
      return Status::Corruption("flat index offsets/entries mismatch");
    }
    for (Vertex v = sh->begin; v < sh->end; ++v) {
      const Rank rv = ordering_->rank_of[v];
      const size_t lv = v - sh->begin;
      Rank prev = kInvalidRank;
      bool self_seen = false;
      for (uint64_t e_i = sh->offsets[lv]; e_i < sh->offsets[lv + 1]; ++e_i) {
        if (!wide_mode_) {
          // Range-check the raw word before EntryAt chases the slot.
          const uint64_t word = sh->entries[e_i];
          if (IsFlatOverflowRef(word) &&
              FlatOverflowSlot(word) >= sh->overflow.size()) {
            return Status::Corruption("flat index overflow slot out of range");
          }
        }
        const LabelEntry e = EntryAt(*sh, wide_mode_, e_i);
        if (prev != kInvalidRank && e.hub <= prev) {
          return Status::Corruption("flat index hubs not strictly ascending");
        }
        prev = e.hub;
        if (e.hub > rv) {
          return Status::Corruption("flat index hub outranked by owner");
        }
        if (e.hub == rv) {
          if (e.dist != 0 || e.count != 1) {
            return Status::Corruption("flat index bad self label");
          }
          self_seen = true;
        }
        if (e.count == 0) {
          return Status::Corruption("flat index zero-count label");
        }
      }
      if (!self_seen) {
        return Status::Corruption("flat index missing self label");
      }
    }
  }
  return Status::OK();
}

Status FlatSpcIndex::Save(const std::string& path) const {
  BinaryWriter w;
  SaveImage(&w);
  return w.WriteToFile(path);
}

void FlatSpcIndex::SaveImage(BinaryWriter* writer) const {
  BinaryWriter& w = *writer;
  w.PutU32(kSpcIndexMagic);
  w.PutU32(kSpcIndexFormatV2);
  w.PutU64(num_vertices_);
  w.PutU32Array(ordering_->rank_of.data(), ordering_->rank_of.size());
  // Overflow slots are shard-local in memory but global in the file; if
  // the summed side tables outgrow the 29-bit slot field (possible only
  // past ~2^29 overflow entries, where the monolithic builder would have
  // gone wide), write the wide image instead of wrapping slots.
  const bool write_wide = wide_mode_ || OverflowEntries() > kPackedCountMax;
  w.PutU8(write_wide ? 1 : 0);
  // The on-disk image is the monolithic concatenation of all shards:
  // global CSR offsets, then the entry arrays with overflow slots rebased
  // onto one global side table.
  std::vector<uint64_t> offsets(num_vertices_ + 1, 0);
  uint64_t off = 0;
  // Shards are read via const refs throughout: mmap-view shards expose
  // their bytes only through the const ArenaVec accessors.
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    const size_t width = shard.end - shard.begin;
    for (size_t lv = 0; lv < width; ++lv) {
      off += shard.offsets[lv + 1] - shard.offsets[lv];
      offsets[shard.begin + lv + 1] = off;
    }
  }
  w.PutU64Array(offsets.data(), offsets.size());
  if (write_wide) {
    for (const auto& shard : shards_) {
      const size_t total = shard->NumEntries();
      for (uint64_t i = 0; i < total; ++i) {
        const LabelEntry e = EntryAt(*shard, wide_mode_, i);
        w.PutU32(e.hub);
        w.PutU32(e.dist);
        w.PutU64(e.count);
      }
    }
  } else {
    uint64_t overflow_base = 0;
    for (const auto& shard_ptr : shards_) {
      const Shard& shard = *shard_ptr;
      if (shard.overflow.empty()) {
        // No slots to rebase: the arena serializes at memory speed.
        w.PutU64Array(shard.entries.data(), shard.entries.size());
        continue;
      }
      for (const uint64_t word : shard.entries) {
        if (IsFlatOverflowRef(word)) [[unlikely]] {
          w.PutU64(PackFlatOverflowRef(FlatHub(word),
                                       overflow_base + FlatOverflowSlot(word)));
        } else {
          w.PutU64(word);
        }
      }
      overflow_base += shard.overflow.size();
    }
    w.PutU64(overflow_base);
    for (const auto& shard : shards_) {
      for (const LabelEntry& e : shard->overflow) {
        w.PutU32(e.hub);
        w.PutU32(e.dist);
        w.PutU64(e.count);
      }
    }
  }
}

Status FlatSpcIndex::Load(const std::string& path, FlatSpcIndex* out) {
  BinaryReader r({});
  Status s = BinaryReader::ReadFromFile(path, &r);
  if (!s.ok()) return s;
  if (r.GetU32() != kSpcIndexMagic) {
    return Status::Corruption("bad index magic");
  }
  const uint32_t version = r.GetU32();
  if (version == kSpcIndexFormatV1) {
    // v1 is the mutable index's format; parse it and build the snapshot.
    SpcIndex index;
    s = SpcIndex::LoadFromReader(&r, &index);
    if (!s.ok()) return s;
    *out = FlatSpcIndex(index);
    return Status::OK();
  }
  if (version == kSpcIndexFormatV2) return LoadFromReader(&r, out);
  return Status::Corruption("bad index version");
}

Status FlatSpcIndex::LoadFromReader(BinaryReader* reader, FlatSpcIndex* out) {
  BinaryReader& r = *reader;
  FlatSpcIndex flat;
  const uint64_t n = r.GetU64();
  if (n > r.remaining() / sizeof(Rank)) {
    return Status::Corruption("bad vertex count");
  }
  flat.num_vertices_ = n;
  auto ordering = std::make_shared<VertexOrdering>();
  ordering->rank_of.resize(n);
  if (!r.GetU32Array(ordering->rank_of.data(), n)) return r.status();
  ordering->vertex_of.assign(n, 0);
  for (uint64_t v = 0; v < n; ++v) {
    const Rank rank = ordering->rank_of[v];
    if (rank >= n) return Status::Corruption("rank out of range");
    ordering->vertex_of[rank] = static_cast<Vertex>(v);
  }
  flat.ordering_ = std::move(ordering);
  flat.wide_mode_ = r.GetU8() != 0;
  // A loaded snapshot is a single shard; the serving layer re-shards by
  // rebuilding from the mutable index when it wants more.
  flat.InitLayout(1);
  auto shard = std::make_shared<Shard>();
  shard->begin = 0;
  shard->end = static_cast<Vertex>(n);
  shard->offsets.resize(n + 1);
  if (!r.GetU64Array(shard->offsets.data(), n + 1)) return r.status();
  const uint64_t total = shard->offsets[n];
  if (flat.wide_mode_) {
    if (total > r.remaining() / 16) return Status::Corruption("bad entry count");
    shard->wide_entries.resize(total);
    for (uint64_t i = 0; i < total; ++i) {
      LabelEntry& e = shard->wide_entries[i];
      e.hub = r.GetU32();
      e.dist = r.GetU32();
      e.count = r.GetU64();
    }
  } else {
    if (total > r.remaining() / sizeof(uint64_t)) {
      return Status::Corruption("bad entry count");
    }
    shard->entries.resize(total);
    if (!r.GetU64Array(shard->entries.data(), total)) return r.status();
    const uint64_t overflow = r.GetU64();
    if (overflow > r.remaining() / 16) {
      return Status::Corruption("bad overflow count");
    }
    shard->overflow.resize(overflow);
    for (uint64_t i = 0; i < overflow; ++i) {
      LabelEntry& e = shard->overflow[i];
      e.hub = r.GetU32();
      e.dist = r.GetU32();
      e.count = r.GetU64();
    }
  }
  if (!r.status().ok()) return r.status();
  if (!r.AtEnd()) return Status::Corruption("trailing bytes in index file");
  // Validate before building the dense directory: the directory loop
  // trusts the offsets, so it must only ever see validated ones.
  if (n > 0) flat.shards_[0] = shard;
  const Status s = flat.ValidateArena();
  if (!s.ok()) return s;
  // The dense directory is derived state, rebuilt rather than stored.
  if (n > 0 && !flat.wide_mode_) BuildDenseDirectory(shard.get());
  *out = std::move(flat);
  return Status::OK();
}

StatusOr<FlatSpcIndex> FlatSpcIndex::FromArenaView(ArenaView view) {
  FlatSpcIndex flat;
  const size_t n = view.num_vertices;
  flat.num_vertices_ = n;
  flat.wide_mode_ = view.wide;
  flat.InitLayout(1);
  if (n == 0) return flat;

  // The ordering is the one arena section adopted by copy, not by view:
  // it is shared repo-wide as owned vectors (and vertex_of is derived
  // from rank_of anyway). One O(n) pass per adoption, zero per query.
  auto ordering = std::make_shared<VertexOrdering>();
  ordering->rank_of.assign(view.rank_of, view.rank_of + n);
  ordering->vertex_of.assign(n, 0);
  for (size_t v = 0; v < n; ++v) {
    const Rank rank = ordering->rank_of[v];
    if (rank >= n) return Status::Corruption("mapped arena rank out of range");
    ordering->vertex_of[rank] = static_cast<Vertex>(v);
  }
  flat.ordering_ = std::move(ordering);

  // Label words and offsets are views straight into the mapped bytes —
  // the zero-copy contract of the mmap serving tier. The shard holds the
  // backing region, so any pin of this snapshot (and thus any in-flight
  // query) keeps the mapping alive after a newer generation is adopted.
  auto shard = std::make_shared<Shard>();
  shard->begin = 0;
  shard->end = static_cast<Vertex>(n);
  shard->generation = view.generation;
  shard->offsets = ArenaVec<uint64_t>::View(view.offsets, n + 1);
  const uint64_t total = view.offsets[n];
  if (view.wide) {
    shard->wide_entries = ArenaVec<LabelEntry>::View(view.wide_entries, total);
  } else {
    shard->entries = ArenaVec<uint64_t>::View(view.entries, total);
    shard->overflow =
        ArenaVec<LabelEntry>::View(view.overflow, view.overflow_count);
  }
  shard->backing = std::move(view.backing);
  flat.shards_[0] = shard;
  // Same discipline as the file loader: the bytes are untrusted until
  // ValidateArena accepts them, and the dense directory (derived, owned
  // state) is only built over validated offsets/entries.
  if (Status s = flat.ValidateArena(); !s.ok()) return s;
  if (!flat.wide_mode_) BuildDenseDirectory(shard.get());
  return flat;
}

}  // namespace dspc
