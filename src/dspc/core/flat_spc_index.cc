#include "dspc/core/flat_spc_index.h"

#include <algorithm>
#include <bit>
#include <thread>

#include "dspc/common/binary_io.h"
#include "dspc/common/label_codec.h"

namespace dspc {

namespace {

/// Below this many pairs the sharding overhead beats the win.
constexpr size_t kParallelCutoff = 256;
constexpr unsigned kMaxQueryThreads = 16;

}  // namespace

FlatSpcIndex::FlatSpcIndex(const SpcIndex& index) {
  const size_t n = index.NumVertices();
  num_vertices_ = n;
  ordering_ = index.ordering();

  size_t total = 0;
  size_t overflow = 0;
  for (Vertex v = 0; v < n; ++v) {
    const LabelSet& set = index.Labels(v);
    total += set.size();
    for (const LabelEntry& e : set) {
      if (!FitsFlatInline(e.hub, e.dist, e.count)) ++overflow;
    }
  }

  // Hubs must fit their 25-bit field for the packed merge to compare
  // ranks, and overflow slots their 29-bit field; otherwise fall back to
  // the wide contiguous arena.
  wide_mode_ = (n > 0 && ordering_.size() - 1 > kPackedHubMax) ||
               overflow > kPackedCountMax;

  offsets_.assign(n + 1, 0);
  if (wide_mode_) {
    wide_entries_.reserve(total);
    for (Vertex v = 0; v < n; ++v) {
      const LabelSet& set = index.Labels(v);
      wide_entries_.insert(wide_entries_.end(), set.begin(), set.end());
      offsets_[v + 1] = wide_entries_.size();
    }
    return;
  }

  entries_.reserve(total);
  overflow_.reserve(overflow);
  for (Vertex v = 0; v < n; ++v) {
    const LabelSet& set = index.Labels(v);
    for (const LabelEntry& e : set) {
      if (FitsFlatInline(e.hub, e.dist, e.count)) {
        entries_.push_back(PackLabel(e.hub, e.dist, e.count));
      } else {
        entries_.push_back(PackFlatOverflowRef(e.hub, overflow_.size()));
        overflow_.push_back(e);
      }
    }
    offsets_[v + 1] = entries_.size();
  }
  BuildDenseDirectory();
}

void FlatSpcIndex::BuildDenseDirectory() {
  hub_bits_.assign(num_vertices_ * kDenseWords, 0);
  word_base_.assign(num_vertices_ * kDenseWords, 0);
  for (Vertex v = 0; v < num_vertices_; ++v) {
    uint64_t* bits = hub_bits_.data() + size_t{v} * kDenseWords;
    for (uint64_t i = offsets_[v]; i < offsets_[v + 1]; ++i) {
      const Rank h = FlatHub(entries_[i]);
      if (h >= kDenseRanks) break;  // sorted ascending: the rest is tail
      bits[h / 64] |= 1ULL << (h % 64);
    }
    uint16_t* base = word_base_.data() + size_t{v} * kDenseWords;
    uint16_t acc = 0;
    for (size_t w = 0; w < kDenseWords; ++w) {
      base[w] = acc;
      acc = static_cast<uint16_t>(acc + std::popcount(bits[w]));
    }
  }
}

uint64_t FlatSpcIndex::DenseEnd(Vertex v) const {
  const size_t b = size_t{v} * kDenseWords;
  return offsets_[v] + word_base_[b + kDenseWords - 1] +
         static_cast<uint64_t>(std::popcount(hub_bits_[b + kDenseWords - 1]));
}

size_t FlatSpcIndex::ArenaBytes() const {
  return offsets_.size() * sizeof(uint64_t) +
         entries_.size() * sizeof(uint64_t) +
         overflow_.size() * sizeof(LabelEntry) +
         wide_entries_.size() * sizeof(LabelEntry) +
         hub_bits_.size() * sizeof(uint64_t) +
         word_base_.size() * sizeof(uint16_t) +
         ordering_.rank_of.size() * sizeof(Rank);
}

inline void FlatSpcIndex::DecodeWord(uint64_t word, Distance* dist,
                                     PathCount* count) const {
  if (!IsFlatOverflowRef(word)) [[likely]] {
    *dist = static_cast<Distance>((word >> kPackedCountBits) & kPackedDistMax);
    *count = word & kPackedCountMax;
  } else {
    const LabelEntry& e = overflow_[FlatOverflowSlot(word)];
    *dist = e.dist;
    *count = e.count;
  }
}

template <bool kLimited>
SpcResult FlatSpcIndex::QueryPacked(Vertex s, Vertex t, Rank limit) const {
  SpcResult result;
  const uint64_t* const arena = entries_.data();

  auto accumulate = [&](uint64_t wa, uint64_t wb) {
    Distance da;
    Distance db;
    PathCount ca;
    PathCount cb;
    DecodeWord(wa, &da, &ca);
    DecodeWord(wb, &db, &cb);
    const Distance d = da + db;
    if (d < result.dist) {
      result.dist = d;
      result.count = ca * cb;
    } else if (d == result.dist) {
      result.count += ca * cb;
    }
  };

  // Dense part: the common top-ranked hubs fall out of word-parallel
  // bitmap ANDs; each surviving bit maps to its arena slot by prefix
  // popcount, so there is no serially-dependent two-pointer walk over
  // the (large) dense share of both label sets.
  const size_t sb = size_t{s} * kDenseWords;
  const size_t tb = size_t{t} * kDenseWords;
  const uint64_t* const bma = hub_bits_.data() + sb;
  const uint64_t* const bmb = hub_bits_.data() + tb;
  size_t full_words = kDenseWords;
  uint64_t boundary_mask = 0;
  if constexpr (kLimited) {
    if (limit < kDenseRanks) {
      full_words = limit / 64;
      boundary_mask =
          (limit % 64) ? ((1ULL << (limit % 64)) - 1) : 0;  // bits < limit
    }
  }
  auto scan_word = [&](size_t w, uint64_t common) {
    const uint64_t bits_a = bma[w];
    const uint64_t bits_b = bmb[w];
    const uint64_t base_a = offsets_[s] + word_base_[sb + w];
    const uint64_t base_b = offsets_[t] + word_base_[tb + w];
    while (common != 0) {
      const int bit = std::countr_zero(common);
      common &= common - 1;
      const uint64_t below = (1ULL << bit) - 1;
      const uint64_t ia = base_a + std::popcount(bits_a & below);
      const uint64_t ib = base_b + std::popcount(bits_b & below);
      accumulate(arena[ia], arena[ib]);
    }
  };
  for (size_t w = 0; w < full_words; ++w) {
    scan_word(w, bma[w] & bmb[w]);
  }
  if constexpr (kLimited) {
    if (boundary_mask != 0) {
      scan_word(full_words, bma[full_words] & bmb[full_words] & boundary_mask);
    }
    if (limit < kDenseRanks) return result;  // tail hubs all >= limit
  }

  // Tail part: classic merge over the short low-rank remainder.
  const uint64_t* a = arena + DenseEnd(s);
  const uint64_t* const ae = arena + offsets_[s + 1];
  const uint64_t* b = arena + DenseEnd(t);
  const uint64_t* const be = arena + offsets_[t + 1];
  while (a != ae && b != be) {
    const uint64_t wa = *a;
    const uint64_t wb = *b;
    const uint64_t ha = wa >> kFlatHubShift;
    const uint64_t hb = wb >> kFlatHubShift;
    if constexpr (kLimited) {
      if (ha >= limit || hb >= limit) break;
    }
    if (ha == hb) {
      accumulate(wa, wb);
      ++a;
      ++b;
    } else {
      // Branchless advance: which side moves is data-dependent and
      // unpredictable, so turn the mispredicted branch into two flag
      // additions (matches stay a — rare — branch).
      a += ha < hb;
      b += hb < ha;
    }
  }
  return result;
}

template <bool kLimited>
SpcResult FlatSpcIndex::QueryWide(Vertex s, Vertex t, Rank limit) const {
  SpcResult result;
  const LabelEntry* a = wide_entries_.data() + offsets_[s];
  const LabelEntry* const ae = wide_entries_.data() + offsets_[s + 1];
  const LabelEntry* b = wide_entries_.data() + offsets_[t];
  const LabelEntry* const be = wide_entries_.data() + offsets_[t + 1];
  while (a != ae && b != be) {
    if constexpr (kLimited) {
      if (a->hub >= limit || b->hub >= limit) break;
    }
    if (a->hub < b->hub) {
      ++a;
    } else if (a->hub > b->hub) {
      ++b;
    } else {
      const Distance d = a->dist + b->dist;
      if (d < result.dist) {
        result.dist = d;
        result.count = a->count * b->count;
      } else if (d == result.dist) {
        result.count += a->count * b->count;
      }
      ++a;
      ++b;
    }
  }
  return result;
}

SpcResult FlatSpcIndex::Query(Vertex s, Vertex t) const {
  if (wide_mode_) return QueryWide<false>(s, t, 0);
  return QueryPacked<false>(s, t, 0);
}

SpcResult FlatSpcIndex::PreQuery(Vertex s, Vertex t) const {
  const Rank limit = ordering_.rank_of[s];
  if (wide_mode_) return QueryWide<true>(s, t, limit);
  return QueryPacked<true>(s, t, limit);
}

void FlatSpcIndex::QueryMany(std::span<const VertexPair> pairs,
                             SpcResult* out) const {
  if (wide_mode_) {
    for (size_t i = 0; i < pairs.size(); ++i) {
      out[i] = QueryWide<false>(pairs[i].first, pairs[i].second, 0);
    }
    return;
  }
  for (size_t i = 0; i < pairs.size(); ++i) {
    out[i] = QueryPacked<false>(pairs[i].first, pairs[i].second, 0);
  }
}

std::vector<SpcResult> FlatSpcIndex::QueryMany(
    std::span<const VertexPair> pairs) const {
  std::vector<SpcResult> results(pairs.size());
  QueryMany(pairs, results.data());
  return results;
}

std::vector<SpcResult> FlatSpcIndex::QueryManyParallel(
    std::span<const VertexPair> pairs, unsigned threads) const {
  std::vector<SpcResult> results(pairs.size());
  if (threads == 0) threads = std::thread::hardware_concurrency();
  threads = std::min(threads, kMaxQueryThreads);
  if (threads <= 1 || pairs.size() < kParallelCutoff) {
    QueryMany(pairs, results.data());
    return results;
  }
  // Contiguous shards keep each worker's arena touches local.
  const size_t chunk = (pairs.size() + threads - 1) / threads;
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (unsigned w = 0; w < threads; ++w) {
    const size_t begin = std::min(pairs.size(), w * chunk);
    const size_t end = std::min(pairs.size(), begin + chunk);
    if (begin == end) break;
    workers.emplace_back([this, pairs, begin, end, &results] {
      QueryMany(pairs.subspan(begin, end - begin), results.data() + begin);
    });
  }
  for (std::thread& t : workers) t.join();
  return results;
}

SpcIndex FlatSpcIndex::Unpack() const {
  SpcIndex index(ordering_);
  for (Vertex v = 0; v < num_vertices_; ++v) {
    const Rank self = ordering_.rank_of[v];
    for (uint64_t i = offsets_[v]; i < offsets_[v + 1]; ++i) {
      LabelEntry e;
      if (wide_mode_) {
        e = wide_entries_[i];
      } else {
        const uint64_t word = entries_[i];
        e.hub = FlatHub(word);
        DecodeWord(word, &e.dist, &e.count);
      }
      if (e.hub == self) continue;  // self label exists since construction
      index.InsertLabel(v, e);
    }
  }
  return index;
}

Status FlatSpcIndex::ValidateArena() const {
  const size_t n = num_vertices_;
  if (!ordering_.IsValid() || ordering_.size() != n) {
    return Status::Corruption("flat index ordering is not a permutation");
  }
  if (offsets_.size() != n + 1 || offsets_[0] != 0) {
    return Status::Corruption("flat index offsets malformed");
  }
  const size_t stored = wide_mode_ ? wide_entries_.size() : entries_.size();
  for (size_t v = 0; v < n; ++v) {
    if (offsets_[v] > offsets_[v + 1]) {
      return Status::Corruption("flat index offsets not monotone");
    }
  }
  if (offsets_[n] != stored) {
    return Status::Corruption("flat index offsets/entries mismatch");
  }
  for (Vertex v = 0; v < n; ++v) {
    const Rank rv = ordering_.rank_of[v];
    Rank prev = kInvalidRank;
    bool self_seen = false;
    for (uint64_t i = offsets_[v]; i < offsets_[v + 1]; ++i) {
      LabelEntry e;
      if (wide_mode_) {
        e = wide_entries_[i];
      } else {
        const uint64_t word = entries_[i];
        e.hub = FlatHub(word);
        if (IsFlatOverflowRef(word) &&
            FlatOverflowSlot(word) >= overflow_.size()) {
          return Status::Corruption("flat index overflow slot out of range");
        }
        DecodeWord(word, &e.dist, &e.count);
      }
      if (prev != kInvalidRank && e.hub <= prev) {
        return Status::Corruption("flat index hubs not strictly ascending");
      }
      prev = e.hub;
      if (e.hub > rv) {
        return Status::Corruption("flat index hub outranked by owner");
      }
      if (e.hub == rv) {
        if (e.dist != 0 || e.count != 1) {
          return Status::Corruption("flat index bad self label");
        }
        self_seen = true;
      }
      if (e.count == 0) {
        return Status::Corruption("flat index zero-count label");
      }
    }
    if (!self_seen) {
      return Status::Corruption("flat index missing self label");
    }
  }
  return Status::OK();
}

Status FlatSpcIndex::Save(const std::string& path) const {
  BinaryWriter w;
  w.PutU32(kSpcIndexMagic);
  w.PutU32(kSpcIndexFormatV2);
  w.PutU64(num_vertices_);
  w.PutU32Array(ordering_.rank_of.data(), ordering_.rank_of.size());
  w.PutU8(wide_mode_ ? 1 : 0);
  w.PutU64Array(offsets_.data(), offsets_.size());
  if (wide_mode_) {
    for (const LabelEntry& e : wide_entries_) {
      w.PutU32(e.hub);
      w.PutU32(e.dist);
      w.PutU64(e.count);
    }
  } else {
    w.PutU64Array(entries_.data(), entries_.size());
    w.PutU64(overflow_.size());
    for (const LabelEntry& e : overflow_) {
      w.PutU32(e.hub);
      w.PutU32(e.dist);
      w.PutU64(e.count);
    }
  }
  return w.WriteToFile(path);
}

Status FlatSpcIndex::Load(const std::string& path, FlatSpcIndex* out) {
  BinaryReader r({});
  Status s = BinaryReader::ReadFromFile(path, &r);
  if (!s.ok()) return s;
  if (r.GetU32() != kSpcIndexMagic) {
    return Status::Corruption("bad index magic");
  }
  const uint32_t version = r.GetU32();
  if (version == kSpcIndexFormatV1) {
    // v1 is the mutable index's format; parse it and build the snapshot.
    SpcIndex index;
    s = SpcIndex::LoadFromReader(&r, &index);
    if (!s.ok()) return s;
    *out = FlatSpcIndex(index);
    return Status::OK();
  }
  if (version == kSpcIndexFormatV2) return LoadFromReader(&r, out);
  return Status::Corruption("bad index version");
}

Status FlatSpcIndex::LoadFromReader(BinaryReader* reader, FlatSpcIndex* out) {
  BinaryReader& r = *reader;
  FlatSpcIndex flat;
  const uint64_t n = r.GetU64();
  if (n > r.remaining() / sizeof(Rank)) {
    return Status::Corruption("bad vertex count");
  }
  flat.num_vertices_ = n;
  flat.ordering_.rank_of.resize(n);
  if (!r.GetU32Array(flat.ordering_.rank_of.data(), n)) return r.status();
  flat.ordering_.vertex_of.assign(n, 0);
  for (uint64_t v = 0; v < n; ++v) {
    const Rank rank = flat.ordering_.rank_of[v];
    if (rank >= n) return Status::Corruption("rank out of range");
    flat.ordering_.vertex_of[rank] = static_cast<Vertex>(v);
  }
  flat.wide_mode_ = r.GetU8() != 0;
  flat.offsets_.resize(n + 1);
  if (!r.GetU64Array(flat.offsets_.data(), n + 1)) return r.status();
  const uint64_t total = flat.offsets_[n];
  if (flat.wide_mode_) {
    if (total > r.remaining() / 16) return Status::Corruption("bad entry count");
    flat.wide_entries_.resize(total);
    for (uint64_t i = 0; i < total; ++i) {
      LabelEntry& e = flat.wide_entries_[i];
      e.hub = r.GetU32();
      e.dist = r.GetU32();
      e.count = r.GetU64();
    }
  } else {
    if (total > r.remaining() / sizeof(uint64_t)) {
      return Status::Corruption("bad entry count");
    }
    flat.entries_.resize(total);
    if (!r.GetU64Array(flat.entries_.data(), total)) return r.status();
    const uint64_t overflow = r.GetU64();
    if (overflow > r.remaining() / 16) {
      return Status::Corruption("bad overflow count");
    }
    flat.overflow_.resize(overflow);
    for (uint64_t i = 0; i < overflow; ++i) {
      LabelEntry& e = flat.overflow_[i];
      e.hub = r.GetU32();
      e.dist = r.GetU32();
      e.count = r.GetU64();
    }
  }
  if (!r.status().ok()) return r.status();
  if (!r.AtEnd()) return Status::Corruption("trailing bytes in index file");
  const Status s = flat.ValidateArena();
  if (!s.ok()) return s;
  // The dense directory is derived state, rebuilt rather than stored.
  if (!flat.wide_mode_) flat.BuildDenseDirectory();
  *out = std::move(flat);
  return Status::OK();
}

}  // namespace dspc
