// Merge-kernel tiers + dispatch (see merge_kernel.h and DESIGN.md §15).
//
// Correctness of the vector tiers rests on two facts about the input:
// hubs are strictly ascending within each range (arena validator), and
// the accumulate is order-independent. Both tiers use the same
// broadcast-window shape: b is consumed in fixed windows whose packed
// hubs are compared, all at once, against one broadcast a hub at a time.
// The inner loop consumes every a word with hub <= the window's last
// hub, so when a window retires the current a hub (and every later one,
// by ascent) exceeds every hub in it — no future a can match a retired
// window. Conversely an a word is consumed only after being compared
// against the whole window that covers its hub range, and hubs in later
// windows are all larger — so no match is ever skipped. Strict ascent
// means at most one window lane matches, so a single find-first-set
// recovers the partner word.

#include "dspc/core/merge_kernel.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdlib>
#include <cstring>

#include "dspc/common/label_codec.h"

#if defined(__x86_64__) || defined(_M_X64)
#define DSPC_MERGE_KERNEL_X86 1
#include <immintrin.h>
#else
#define DSPC_MERGE_KERNEL_X86 0
#endif

namespace dspc {
namespace {

// Mirrors FlatSpcIndex::DecodeWord: inline fields or overflow-table chase.
inline void DecodePacked(uint64_t word, const LabelEntry* overflow,
                         Distance* dist, PathCount* count) {
  if (!IsFlatOverflowRef(word)) [[likely]] {
    *dist = static_cast<Distance>((word >> kPackedCountBits) & kPackedDistMax);
    *count = word & kPackedCountMax;
  } else {
    const LabelEntry& e = overflow[FlatOverflowSlot(word)];
    *dist = e.dist;
    *count = e.count;
  }
}

inline void AccumulatePacked(uint64_t wa, const LabelEntry* a_overflow,
                             uint64_t wb, const LabelEntry* b_overflow,
                             SpcResult* result) {
  Distance da, db;
  PathCount ca, cb;
  DecodePacked(wa, a_overflow, &da, &ca);
  DecodePacked(wb, b_overflow, &db, &cb);
  const Distance d = da + db;
  if (d < result->dist) {
    result->dist = d;
    result->count = ca * cb;
  } else if (d == result->dist) {
    result->count += ca * cb;
  }
}

inline void AccumulateWide(const LabelEntry& a, const LabelEntry& b,
                           SpcResult* result) {
  const Distance d = a.dist + b.dist;
  if (d < result->dist) {
    result->dist = d;
    result->count = a.count * b.count;
  } else if (d == result->dist) {
    result->count += a.count * b.count;
  }
}

// Ratio beyond which the vector tiers switch from block intersection to
// per-element galloping of the short side into the long side.
constexpr size_t kLopsidedRatioShift = 5;  // 32x

// Below this many words per side the window setup (hub packing, the
// AVX2 transition) costs more than it saves; run the scalar merge.
constexpr size_t kMinVectorTail = 16;

// Gallops each hub of the short side [s, se) through the long side
// [l, le): exponential probe, then binary search in the bracketed window.
// Because short-side hubs ascend, the long-side cursor only moves forward.
void MergePackedLopsided(const uint64_t* s, const uint64_t* se,
                         const LabelEntry* s_overflow, const uint64_t* l,
                         const uint64_t* le, const LabelEntry* l_overflow,
                         bool short_is_a, SpcResult* result) {
  for (; s != se && l != le; ++s) {
    const uint64_t h = *s >> kFlatHubShift;
    size_t lo = 0;
    size_t step = 1;
    const size_t n = static_cast<size_t>(le - l);
    while (lo + step < n && (l[lo + step] >> kFlatHubShift) < h) {
      lo += step;
      step <<= 1;
    }
    const size_t hi = std::min(n, lo + step + 1);
    const uint64_t* pos = std::partition_point(
        l + lo, l + hi,
        [h](uint64_t w) { return (w >> kFlatHubShift) < h; });
    if (pos != le && (*pos >> kFlatHubShift) == h) {
      if (short_is_a) {
        AccumulatePacked(*s, s_overflow, *pos, l_overflow, result);
      } else {
        AccumulatePacked(*pos, l_overflow, *s, s_overflow, result);
      }
      ++pos;
    }
    l = pos;
  }
}

void MergeWideLopsided(const LabelEntry* s, const LabelEntry* se,
                       const LabelEntry* l, const LabelEntry* le,
                       SpcResult* result) {
  for (; s != se && l != le; ++s) {
    const Rank h = s->hub;
    size_t lo = 0;
    size_t step = 1;
    const size_t n = static_cast<size_t>(le - l);
    while (lo + step < n && l[lo + step].hub < h) {
      lo += step;
      step <<= 1;
    }
    const size_t hi = std::min(n, lo + step + 1);
    const LabelEntry* pos =
        std::partition_point(l + lo, l + hi,
                             [h](const LabelEntry& e) { return e.hub < h; });
    if (pos != le && pos->hub == h) {
      AccumulateWide(*s, *pos, result);
      ++pos;
    }
    l = pos;
  }
}

// SWAR has-zero-lane over two 32-bit lanes. Exact for lane values below
// 2^31 (hub xors are below 2^25): bit 31 set iff the low lane is zero,
// bit 63 iff the high lane is.
constexpr uint64_t kLaneLsb = 0x0000000100000001ULL;
constexpr uint64_t kLaneMsb = 0x8000000080000000ULL;
inline uint64_t ZeroLanes32(uint64_t z) {
  return (z - kLaneLsb) & ~z & kLaneMsb;
}

}  // namespace

void MergePackedTailScalar(const uint64_t* a, const uint64_t* ae,
                           const LabelEntry* a_overflow, const uint64_t* b,
                           const uint64_t* be, const LabelEntry* b_overflow,
                           SpcResult* result) {
  while (a != ae && b != be) {
    const uint64_t wa = *a;
    const uint64_t wb = *b;
    const uint64_t ha = wa >> kFlatHubShift;
    const uint64_t hb = wb >> kFlatHubShift;
    if (ha == hb) {
      AccumulatePacked(wa, a_overflow, wb, b_overflow, result);
      ++a;
      ++b;
    } else {
      a += ha < hb;
      b += hb < ha;
    }
  }
}

void MergePackedTailSwar(const uint64_t* a, const uint64_t* ae,
                         const LabelEntry* a_overflow, const uint64_t* b,
                         const uint64_t* be, const LabelEntry* b_overflow,
                         SpcResult* result) {
  const size_t na = static_cast<size_t>(ae - a);
  const size_t nb = static_cast<size_t>(be - b);
  if (std::min(na, nb) < kMinVectorTail) {
    MergePackedTailScalar(a, ae, a_overflow, b, be, b_overflow, result);
    return;
  }
  if ((na >> kLopsidedRatioShift) > nb) {
    MergePackedLopsided(b, be, b_overflow, a, ae, a_overflow,
                        /*short_is_a=*/false, result);
    return;
  }
  if ((nb >> kLopsidedRatioShift) > na) {
    MergePackedLopsided(a, ae, a_overflow, b, be, b_overflow,
                        /*short_is_a=*/true, result);
    return;
  }
  if (na > nb) {
    // The accumulate is commutative, so put the longer side in the
    // window position (consumed four hubs at a time).
    MergePackedTailSwar(b, be, b_overflow, a, ae, a_overflow, result);
    return;
  }
  while (a != ae && be - b >= 4) {
    __builtin_prefetch(b + 16, 0, 3);
    // Window of four b hubs packed two per 64-bit word, 32-bit lanes.
    const uint64_t b01 =
        ((b[1] >> kFlatHubShift) << 32) | (b[0] >> kFlatHubShift);
    const uint64_t b23 =
        ((b[3] >> kFlatHubShift) << 32) | (b[2] >> kFlatHubShift);
    const uint64_t b_last = b[3] >> kFlatHubShift;
    while (a != ae) {
      const uint64_t wa = *a;
      const uint64_t ha = wa >> kFlatHubShift;
      if (ha > b_last) break;
      const uint64_t key = ha * kLaneLsb;
      const uint64_t z01 = ZeroLanes32(key ^ b01);
      const uint64_t z23 = ZeroLanes32(key ^ b23);
      if ((z01 | z23) != 0) [[unlikely]] {
        // Strict hub ascent: at most one lane matches.
        const int j = z01 ? static_cast<int>(z01 >> 63)
                          : 2 + static_cast<int>(z23 >> 63);
        AccumulatePacked(wa, a_overflow, b[j], b_overflow, result);
      }
      ++a;
    }
    b += 4;
  }
  MergePackedTailScalar(a, ae, a_overflow, b, be, b_overflow, result);
}

#if DSPC_MERGE_KERNEL_X86

// Eight consecutive packed words' hubs as eight 32-bit lanes, in order.
// srli leaves each hub in the low half of its 64-bit lane; shuffle_ps
// picks the even 32-bit lanes of both vectors ([h0 h1 h4 h5 | h2 h3 h6
// h7] in vpermd-lane numbering); the final permute restores order.
__attribute__((target("avx2"))) inline __m256i PackEightHubs(
    const uint64_t* p) {
  const __m256i w0 = _mm256_srli_epi64(
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p)), kFlatHubShift);
  const __m256i w1 = _mm256_srli_epi64(
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + 4)),
      kFlatHubShift);
  const __m256 even = _mm256_shuffle_ps(_mm256_castsi256_ps(w0),
                                        _mm256_castsi256_ps(w1),
                                        _MM_SHUFFLE(2, 0, 2, 0));
  return _mm256_permutevar8x32_epi32(_mm256_castps_si256(even),
                                     _mm256_setr_epi32(0, 1, 4, 5, 2, 3, 6, 7));
}

__attribute__((target("avx2"))) void MergePackedTailAvx2(
    const uint64_t* a, const uint64_t* ae, const LabelEntry* a_overflow,
    const uint64_t* b, const uint64_t* be, const LabelEntry* b_overflow,
    SpcResult* result) {
  const size_t na = static_cast<size_t>(ae - a);
  const size_t nb = static_cast<size_t>(be - b);
  if (std::min(na, nb) < kMinVectorTail) {
    MergePackedTailScalar(a, ae, a_overflow, b, be, b_overflow, result);
    return;
  }
  if ((na >> kLopsidedRatioShift) > nb) {
    MergePackedLopsided(b, be, b_overflow, a, ae, a_overflow,
                        /*short_is_a=*/false, result);
    return;
  }
  if ((nb >> kLopsidedRatioShift) > na) {
    MergePackedLopsided(a, ae, a_overflow, b, be, b_overflow,
                        /*short_is_a=*/true, result);
    return;
  }
  if (na > nb) {
    // Commutative accumulate: the longer side becomes the window.
    MergePackedTailAvx2(b, be, b_overflow, a, ae, a_overflow, result);
    return;
  }
  while (a != ae && be - b >= 8) {
    _mm_prefetch(reinterpret_cast<const char*>(b + 32), _MM_HINT_T0);
    const __m256i window = PackEightHubs(b);
    const uint64_t b_last = b[7] >> kFlatHubShift;
    while (a != ae) {
      const uint64_t wa = *a;
      const uint64_t ha = wa >> kFlatHubShift;
      if (ha > b_last) break;
      const __m256i key = _mm256_set1_epi32(static_cast<int>(ha));
      const unsigned m = static_cast<unsigned>(_mm256_movemask_ps(
          _mm256_castsi256_ps(_mm256_cmpeq_epi32(window, key))));
      if (m != 0) [[unlikely]] {
        // Strict hub ascent: at most one lane matches.
        AccumulatePacked(wa, a_overflow, b[std::countr_zero(m)], b_overflow,
                         result);
      }
      ++a;
    }
    b += 8;
  }
  MergePackedTailScalar(a, ae, a_overflow, b, be, b_overflow, result);
}

#else  // !DSPC_MERGE_KERNEL_X86

// Non-x86 hosts never dispatch kAvx2 (MergeKernelTierSupported returns
// false); the symbol exists so the harness links and can fall through.
void MergePackedTailAvx2(const uint64_t* a, const uint64_t* ae,
                         const LabelEntry* a_overflow, const uint64_t* b,
                         const uint64_t* be, const LabelEntry* b_overflow,
                         SpcResult* result) {
  MergePackedTailSwar(a, ae, a_overflow, b, be, b_overflow, result);
}

#endif  // DSPC_MERGE_KERNEL_X86

void MergeWideScalar(const LabelEntry* a, const LabelEntry* ae,
                     const LabelEntry* b, const LabelEntry* be,
                     SpcResult* result) {
  while (a != ae && b != be) {
    if (a->hub == b->hub) {
      AccumulateWide(*a, *b, result);
      ++a;
      ++b;
    } else if (a->hub < b->hub) {
      ++a;
    } else {
      ++b;
    }
  }
}

void MergeWideBlocked(const LabelEntry* a, const LabelEntry* ae,
                      const LabelEntry* b, const LabelEntry* be,
                      SpcResult* result) {
  const size_t na = static_cast<size_t>(ae - a);
  const size_t nb = static_cast<size_t>(be - b);
  if ((na >> kLopsidedRatioShift) > nb) {
    MergeWideLopsided(b, be, a, ae, result);
    return;
  }
  if ((nb >> kLopsidedRatioShift) > na) {
    MergeWideLopsided(a, ae, b, be, result);
    return;
  }
  while (ae - a >= 4 && be - b >= 4) {
    __builtin_prefetch(a + 16, 0, 3);
    __builtin_prefetch(b + 16, 0, 3);
    for (int i = 0; i < 4; ++i) {
      const Rank h = a[i].hub;
      for (int j = 0; j < 4; ++j) {
        if (h == b[j].hub) {
          AccumulateWide(a[i], b[j], result);
          break;
        }
      }
    }
    const Rank a_last = a[3].hub;
    const Rank b_last = b[3].hub;
    if (a_last <= b_last) a += 4;
    if (b_last <= a_last) b += 4;
  }
  MergeWideScalar(a, ae, b, be, result);
}

// --- tier selection + dispatch ---------------------------------------------

namespace {

// -1 = no programmatic pin; otherwise a MergeKernelTier value.
std::atomic<int> g_tier_override{-1};

bool EnvForcesScalar() {
  static const bool forced = [] {
    const char* v = std::getenv("DSPC_FORCE_SCALAR_KERNEL");
    return v != nullptr && *v != '\0' && std::strcmp(v, "0") != 0;
  }();
  return forced;
}

bool HostHasAvx2() {
#if DSPC_MERGE_KERNEL_X86
  static const bool has = __builtin_cpu_supports("avx2");
  return has;
#else
  return false;
#endif
}

MergeKernelTier ClampToHost(MergeKernelTier tier) {
  if (tier == MergeKernelTier::kAvx2 && !HostHasAvx2()) {
    return MergeKernelTier::kSwar;
  }
  return tier;
}

// Env-resolved tier, computed once (getenv is not free on the hot path).
MergeKernelTier EnvTier() {
  static const MergeKernelTier tier = [] {
    if (EnvForcesScalar()) return MergeKernelTier::kScalar;
    if (const char* v = std::getenv("DSPC_MERGE_KERNEL")) {
      if (std::strcmp(v, "scalar") == 0) return MergeKernelTier::kScalar;
      if (std::strcmp(v, "swar") == 0) return MergeKernelTier::kSwar;
      if (std::strcmp(v, "avx2") == 0) {
        return ClampToHost(MergeKernelTier::kAvx2);
      }
    }
    return ClampToHost(MergeKernelTier::kAvx2);
  }();
  return tier;
}

}  // namespace

const char* MergeKernelTierName(MergeKernelTier tier) {
  switch (tier) {
    case MergeKernelTier::kScalar:
      return "scalar";
    case MergeKernelTier::kSwar:
      return "swar";
    case MergeKernelTier::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool MergeKernelTierSupported(MergeKernelTier tier) {
  switch (tier) {
    case MergeKernelTier::kScalar:
    case MergeKernelTier::kSwar:
      return true;
    case MergeKernelTier::kAvx2:
      return HostHasAvx2();
  }
  return false;  // out-of-range value
}

MergeKernelTier MaxMergeKernelTier() {
  return ClampToHost(MergeKernelTier::kAvx2);
}

MergeKernelTier ActiveMergeKernelTier() {
  const int pinned = g_tier_override.load(std::memory_order_relaxed);
  if (pinned >= 0) return static_cast<MergeKernelTier>(pinned);
  return EnvTier();
}

bool SetMergeKernelTier(MergeKernelTier tier) {
  if (!MergeKernelTierSupported(tier)) return false;
  if (EnvForcesScalar() && tier != MergeKernelTier::kScalar) return false;
  g_tier_override.store(static_cast<int>(tier), std::memory_order_relaxed);
  return true;
}

void ResetMergeKernelTier() {
  g_tier_override.store(-1, std::memory_order_relaxed);
}

void ConfigureQueryKernel(const QueryOptions& options) {
  SetMergeKernelTier(ClampToHost(options.max_tier));
}

PackedMergeFn PackedMergeForTier(MergeKernelTier tier) {
  switch (tier) {
    case MergeKernelTier::kScalar:
      return &MergePackedTailScalar;
    case MergeKernelTier::kSwar:
      return &MergePackedTailSwar;
    case MergeKernelTier::kAvx2:
      return &MergePackedTailAvx2;
  }
  return &MergePackedTailScalar;
}

WideMergeFn WideMergeForTier(MergeKernelTier tier) {
  return tier == MergeKernelTier::kScalar ? &MergeWideScalar
                                          : &MergeWideBlocked;
}

const uint64_t* PackedLowerBound(const uint64_t* first, const uint64_t* last,
                                 Rank limit) {
  return std::partition_point(first, last, [limit](uint64_t w) {
    return FlatHub(w) < limit;
  });
}

const LabelEntry* WideLowerBound(const LabelEntry* first,
                                 const LabelEntry* last, Rank limit) {
  return std::partition_point(
      first, last, [limit](const LabelEntry& e) { return e.hub < limit; });
}

void MergePackedTailDispatch(const uint64_t* a, const uint64_t* ae,
                             const LabelEntry* a_overflow, const uint64_t* b,
                             const uint64_t* be, const LabelEntry* b_overflow,
                             SpcResult* result) {
  PackedMergeForTier(ActiveMergeKernelTier())(a, ae, a_overflow, b, be,
                                              b_overflow, result);
}

void MergeWideDispatch(const LabelEntry* a, const LabelEntry* ae,
                       const LabelEntry* b, const LabelEntry* be,
                       SpcResult* result) {
  WideMergeForTier(ActiveMergeKernelTier())(a, ae, b, be, result);
}

}  // namespace dspc
