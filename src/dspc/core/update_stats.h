// Per-update instrumentation shared by IncSPC and DecSPC. The counters
// feed Figures 8/9 (label-change accounting) and Table 5 (affected-set
// sizes) directly. WriteReport is the per-update outcome record that
// batch admission threads back to callers (DESIGN.md §10).

#ifndef DSPC_CORE_UPDATE_STATS_H_
#define DSPC_CORE_UPDATE_STATS_H_

#include <cstddef>
#include <cstdint>

namespace dspc {

/// Counters collected during one index update.
struct UpdateStats {
  // Label-change accounting (Figures 8 and 9).
  size_t renew_count = 0;  ///< RenewC: only the count element changed
  size_t renew_dist = 0;   ///< RenewD: the distance element changed
  size_t inserted = 0;     ///< newly inserted label entries
  size_t removed = 0;      ///< removed label entries (decremental only)

  // Search-size accounting.
  size_t affected_hubs = 0;    ///< |AFF| (inc) or |SR| (dec)
  size_t visited_vertices = 0; ///< total vertices popped across all BFSs

  // Affected-set sizes (Table 5; decremental only). By the paper's
  // convention sr_a holds the larger of the two SR sides.
  size_t sr_a = 0;
  size_t sr_b = 0;
  size_t r_a = 0;
  size_t r_b = 0;

  /// True when the §3.2.3 isolated-vertex fast path handled the deletion.
  bool used_isolated_vertex_opt = false;

  /// True if the update actually changed the graph (false for inserting an
  /// existing edge / deleting a missing one — those are no-ops).
  bool applied = false;

  /// Total number of label entries touched in any way.
  size_t TotalChanges() const {
    return renew_count + renew_dist + inserted + removed;
  }

  /// Merges counters from another update (for vertex deletion, which runs
  /// one decremental update per incident edge).
  void Accumulate(const UpdateStats& other) {
    renew_count += other.renew_count;
    renew_dist += other.renew_dist;
    inserted += other.inserted;
    removed += other.removed;
    affected_hubs += other.affected_hubs;
    visited_vertices += other.visited_vertices;
    sr_a += other.sr_a;
    sr_b += other.sr_b;
    r_a += other.r_a;
    r_b += other.r_b;
    used_isolated_vertex_opt |= other.used_isolated_vertex_opt;
    applied |= other.applied;
  }
};

/// The outcome of one update inside a batch — one entry per input update,
/// in input order, so a caller of a 1000-update batch can tell which
/// updates changed the index, which were legal no-ops, and which failed
/// admission, instead of receiving one folded UpdateStats blob.
struct WriteReport {
  enum class Outcome : unsigned char {
    kApplied,   ///< changed the graph/index; stats and generation are set
    kNoOp,      ///< legal but changed nothing (e.g. inserting an existing
                ///< edge); the index and generation are untouched
    kRejected,  ///< failed admission (service layer: out-of-range vertex
                ///< id); never reached the index
  };

  Outcome outcome = Outcome::kNoOp;

  /// Static human-readable explanation; never null. "applied" for
  /// kApplied, otherwise why the update did not change the index.
  const char* reason = "";

  /// Structural generation the index reached by applying this update
  /// (read-your-writes floor for exactly this update). 0 unless
  /// outcome == kApplied.
  uint64_t generation = 0;

  /// The engine's per-update counters. Zero unless outcome == kApplied.
  UpdateStats stats;

  bool applied() const { return outcome == Outcome::kApplied; }
};

}  // namespace dspc

#endif  // DSPC_CORE_UPDATE_STATS_H_
