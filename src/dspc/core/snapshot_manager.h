// SnapshotManager: epoch-guarded publication of immutable FlatSpcIndex
// snapshots for concurrent serving (DESIGN.md §7).
//
// The mutable-build / immutable-serve split (DESIGN.md §5) leaves one
// serving gap: somebody has to notice a stale snapshot and pay the
// O(total entries) rebuild, and with the seed design that somebody was a
// query — an update burst stalled the first reader that crossed the
// staleness budget. The manager closes the gap with an epoch/generation
// protocol:
//
//   pin      Readers pin the currently published snapshot with one atomic
//            shared_ptr load. A pinned snapshot is immutable and stays
//            alive for as long as the reader holds it, so pinning never
//            blocks on maintenance and never observes a torn index.
//   publish  Each snapshot carries the structural generation of the
//            mutable index it was built from. New snapshots are published
//            by an atomic swap; publication is monotone in generation
//            (a slow rebuild can never roll the serving state backwards).
//   retire   The swapped-out snapshot is not freed — readers may still
//            hold pins — it is retired, and the shared_ptr control block
//            reclaims it when the last pin drops. This is epoch-based
//            reclamation with the epoch folded into the refcount: no
//            hazard pointers, no quiescence tracking, no ABA.
//
// Rebuild scheduling is the RefreshPolicy:
//
//   kSync        The seed behavior. Stale queries ride the mutable index
//                until the staleness budget is spent, then one query
//                rebuilds inline (blocking) and publishes. Queries are
//                always answered from current data.
//   kBackground  Queries are always answered from the pinned snapshot,
//                even when it trails the mutable index by a few
//                generations (bounded staleness). Crossing the staleness
//                budget requests an off-thread rebuild: a worker copies
//                the dirty vertex ranges of the mutable index at a
//                consistent point (delta copy-on-read under the facade's
//                shared lock), builds the next snapshot without any lock
//                held, and publishes it. The query path never blocks on
//                maintenance.
//
// Rebuilds are incremental (DESIGN.md §8): the Source callback receives
// the previously published snapshot and returns an IndexDelta covering
// only the shards whose vertices changed since that snapshot's per-shard
// generations. FlatSpcIndex::Rebuild adopts every clean shard by
// shared_ptr and repacks the dirty ones — in parallel over the manager's
// thread pool when rebuild_threads > 1. A delta with no dirty shards
// short-circuits to pure adoption: no label is copied or packed, the
// publish just moves the snapshot generation forward.
//   kManual      No automatic rebuilds; stale queries ride the mutable
//                index. Only explicit RefreshNow/AwaitGeneration calls
//                (DynamicSpcIndex::FlatSnapshot) publish.
//
// Thread-safety: every method may be called from any number of threads.
// The manager itself never touches the mutable index directly — it only
// calls the Source callback, which owns the locking discipline.

#ifndef DSPC_CORE_SNAPSHOT_MANAGER_H_
#define DSPC_CORE_SNAPSHOT_MANAGER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>

#include "dspc/core/flat_spc_index.h"
#include "dspc/core/spc_index.h"

namespace dspc {

/// When (and on whose thread) a stale snapshot is rebuilt. See the file
/// comment for the serving semantics of each policy.
enum class RefreshPolicy {
  kSync,        ///< rebuild inline on the query path after the stale budget
  kBackground,  ///< serve bounded-stale pins; rebuild on a worker thread
  kManual,      ///< only explicit refreshes rebuild
};

class ThreadPool;

class SnapshotManager {
 public:
  /// Produces a consistent delta copy of the mutable index at a point
  /// where no writer is mid-update: label copies for exactly the shards
  /// that changed relative to `prev` (the currently published snapshot,
  /// null before the first publish — the source must then return a full
  /// delta, as it must whenever the layout stamp no longer matches).
  using Source =
      std::function<FlatSpcIndex::IndexDelta(const FlatSpcIndex* prev)>;

  /// A pinned snapshot: the immutable index plus the generation it was
  /// built from. Holding the Pinned keeps the snapshot alive across any
  /// number of later publishes (retired snapshots are reclaimed only when
  /// their last pin drops).
  struct Pinned {
    std::shared_ptr<const FlatSpcIndex> snapshot;
    uint64_t generation = 0;

    explicit operator bool() const { return snapshot != nullptr; }
    const FlatSpcIndex* operator->() const { return snapshot.get(); }
    const FlatSpcIndex& operator*() const { return *snapshot; }
  };

  /// `source` produces consistent delta copies of the mutable index;
  /// `stale_query_budget` is the number of queries that may observe a
  /// stale snapshot before a rebuild is scheduled (the facade's
  /// snapshot_rebuild_after_queries knob); `rebuild_threads` bounds the
  /// per-rebuild pool that repacks dirty shards concurrently (<= 1
  /// packs serially and never spawns threads).
  SnapshotManager(Source source, RefreshPolicy policy,
                  size_t stale_query_budget, unsigned rebuild_threads = 1);
  ~SnapshotManager();

  SnapshotManager(const SnapshotManager&) = delete;
  SnapshotManager& operator=(const SnapshotManager&) = delete;

  RefreshPolicy policy() const { return policy_; }

  /// Pins the currently published snapshot (empty before first publish).
  /// One atomic load; never blocks on maintenance.
  Pinned Pin() const;

  /// The query-path entry: charges `queries` observations against the
  /// staleness budget given the caller's current structural generation and
  /// returns the snapshot those queries should be served from, or an empty
  /// Pinned when they should ride the mutable index instead (stale under
  /// kSync/kManual, or nothing published yet). Under kSync a spent budget
  /// rebuilds inline; under kBackground it schedules the worker and
  /// returns the current (possibly stale) snapshot immediately.
  Pinned Acquire(uint64_t current_generation, size_t queries);

  /// Charges `queries` stale observations against the budget WITHOUT any
  /// rebuild risk — never blocks, never builds. For callers that must
  /// not perform maintenance (deadline-bounded reads under kSync) but
  /// must keep the budget honest so the next Acquire that may rebuild
  /// does so promptly.
  void ChargeOnly(size_t queries);

  /// Synchronously builds and publishes a snapshot at least as fresh as
  /// `current_generation` (no-op if one is already published). Returns the
  /// published snapshot. Safe to race: concurrent refreshes build once.
  Pinned RefreshNow(uint64_t current_generation);

  /// Blocks until a snapshot of generation >= `generation` is published
  /// and returns it, scheduling a rebuild if needed. Under kSync/kManual
  /// this is RefreshNow; under kBackground it waits on the worker — the
  /// quiesce point used by tests and benches. The caller must guarantee
  /// the mutable index has reached `generation` (the facade's
  /// WaitForFreshSnapshot passes its own current generation).
  Pinned AwaitGeneration(uint64_t generation);

  /// Deadline-bounded AwaitGeneration: gives up waiting at `deadline` and
  /// returns whatever is published then (possibly stale or empty — the
  /// caller distinguishes a timeout by pin.generation < generation).
  /// Under kBackground the wait is a timed cv wait on the worker's
  /// publishes. Under kSync/kManual an already-expired deadline returns
  /// the current pin without building; an unexpired one admits the caller
  /// to the inline rebuild, which is the caller's own work and is not
  /// interrupted mid-build (the deadline bounds waiting on others, not
  /// the work the caller signed up to do).
  Pinned AwaitGeneration(uint64_t generation,
                         std::chrono::steady_clock::time_point deadline);

  /// Asks the background worker to publish a snapshot of generation >=
  /// `target_generation`. No-op if one is already published or requested.
  /// Spawns the worker on first use.
  void RequestRebuild(uint64_t target_generation);

  /// Generation of the published snapshot (0 before first publish).
  uint64_t PublishedGeneration() const {
    return published_generation_.load(std::memory_order_acquire);
  }

  /// True when the published snapshot reflects `generation`.
  bool FreshAt(uint64_t generation) const {
    return PublishedGeneration() == generation;
  }

  /// Snapshots built (inline + background).
  size_t Rebuilds() const { return rebuilds_.load(std::memory_order_relaxed); }

  /// Snapshots built by the worker thread.
  size_t BackgroundRebuilds() const {
    return background_rebuilds_.load(std::memory_order_relaxed);
  }

  /// Snapshots swapped out by a later publish (reclaimed once unpinned).
  size_t RetiredSnapshots() const {
    return retired_.load(std::memory_order_relaxed);
  }

  /// Shards repacked across all rebuilds (the paid work) vs. shards
  /// adopted from the previous snapshot by shared_ptr (the saved work).
  /// Their ratio is the delta protocol's effectiveness on the workload.
  size_t ShardsRepacked() const {
    return shards_repacked_.load(std::memory_order_relaxed);
  }
  size_t ShardsAdopted() const {
    return shards_adopted_.load(std::memory_order_relaxed);
  }

  /// Rebuilds that were pure adoptions (no dirty shard, no packing).
  size_t AdoptionPublishes() const {
    return adoption_publishes_.load(std::memory_order_relaxed);
  }

 private:
  /// A snapshot tagged with the generation it was built from. Published
  /// as shared_ptr<const Versioned>; Pinned aliases into `flat`.
  struct Versioned {
    uint64_t generation;
    FlatSpcIndex flat;
  };

  static Pinned PinOf(const std::shared_ptr<const Versioned>& v);

  /// Pulls a delta from source_ (relative to the published snapshot) and
  /// packs the next snapshot, adopting clean shards. Runs under
  /// rebuild_mu_ but with no state lock held (the build dominates the
  /// cost); rebuild_mu_ also guarantees the published snapshot cannot
  /// move between the delta copy and the publish.
  std::shared_ptr<const Versioned> BuildFromSource();

  /// Atomically swaps `snap` in if it is newer than the published one;
  /// resets the staleness budget and wakes AwaitGeneration waiters.
  void Publish(std::shared_ptr<const Versioned> snap);

  /// Background worker: build whenever requested_generation_ outruns the
  /// published generation, until stopped.
  void WorkerLoop();

  /// Spawns the worker thread once. Caller holds state_mu_.
  void EnsureWorkerLocked();

  const Source source_;
  const RefreshPolicy policy_;
  const size_t stale_query_budget_;
  /// Upper bound on the per-rebuild repack pool (see BuildFromSource);
  /// <= 1 packs serially and never spawns threads.
  const unsigned rebuild_threads_;

  /// The published snapshot. Readers Pin() with one atomic load; Publish
  /// swaps with compare-exchange so generations only move forward.
  std::atomic<std::shared_ptr<const Versioned>> published_{nullptr};
  std::atomic<uint64_t> published_generation_{0};

  std::atomic<size_t> rebuilds_{0};
  std::atomic<size_t> background_rebuilds_{0};
  std::atomic<size_t> retired_{0};
  std::atomic<size_t> shards_repacked_{0};
  std::atomic<size_t> shards_adopted_{0};
  std::atomic<size_t> adoption_publishes_{0};

  /// Serializes snapshot construction so racing refreshes build once.
  std::mutex rebuild_mu_;

  /// Guards the staleness budget, the rebuild request, and worker
  /// lifecycle. Never held while copying or building.
  std::mutex state_mu_;
  std::condition_variable work_cv_;     ///< wakes the worker
  std::condition_variable publish_cv_;  ///< wakes AwaitGeneration
  size_t stale_queries_ = 0;
  uint64_t requested_generation_ = 0;
  bool stop_ = false;
  std::thread worker_;
};

}  // namespace dspc

#endif  // DSPC_CORE_SNAPSHOT_MANAGER_H_
