// Generation-keyed hot-pair result cache (DESIGN.md §15).
//
// A fixed-budget, sharded, set-associative map of an unordered vertex
// pair to its {dist, count} at a specific snapshot generation. The
// service layer consults it on snapshot-served reads (kSnapshot /
// kBoundedStaleness) where skewed real traffic repeats pairs; kFresh
// reads bypass it by definition.
//
// Invalidation is free and implicit: a lookup hits only when the cached
// entry's generation equals the generation of the snapshot the read is
// being served from. A generation uniquely determines snapshot content
// (rebuilds are label-identical, shard adoption is exact), so
// (u, v, generation) -> {dist, count} is an immutable fact — entries are
// never wrong, only superseded, and there is no explicit invalidation
// path at all. min_generation / write-token semantics are untouched
// because routing resolves WHICH snapshot serves the read before the
// cache is consulted.
//
// Concurrency: lock striping. Each shard owns a mutex guarding its sets
// and its counters; lookups and inserts from concurrent readers contend
// only within a shard (shard count scales with capacity).

#ifndef DSPC_CORE_PAIR_CACHE_H_
#define DSPC_CORE_PAIR_CACHE_H_

#include <cstdint>
#include <memory>
#include <mutex>

#include "dspc/baseline/bfs_counting.h"
#include "dspc/common/types.h"

namespace dspc {

/// Knobs for the hot-pair cache. Rides DynamicSpcOptions so every
/// SpcService entry point (constructors, Open, OpenWithState) picks it
/// up without a signature change; the engine itself ignores it.
struct PairCacheOptions {
  /// Off by default: the cache only pays for itself under skewed
  /// (repeating-pair) read traffic.
  bool enabled = false;
  /// Total entry budget; rounded up so each shard holds a power-of-two
  /// number of 4-way sets. Memory is ~32 bytes per entry, allocated up
  /// front.
  size_t capacity = 1 << 16;
  /// Lock-striping shard count (rounded up to a power of two);
  /// 0 = derive from capacity.
  size_t shards = 0;
};

class PairCache {
 public:
  static constexpr size_t kWays = 4;

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
  };

  explicit PairCache(const PairCacheOptions& options);

  PairCache(const PairCache&) = delete;
  PairCache& operator=(const PairCache&) = delete;

  /// Looks up the unordered pair {u, v} at exactly `generation`. On hit
  /// fills *out and returns true; any other generation is a miss.
  bool Lookup(Vertex u, Vertex v, uint64_t generation, SpcResult* out);

  /// Caches the result of the unordered pair {u, v} computed against the
  /// snapshot tagged `generation`. Victim preference within the set:
  /// same pair (supersede), then an empty way, then any stale-generation
  /// entry; only displacing a live same-generation entry counts as an
  /// eviction.
  void Insert(Vertex u, Vertex v, uint64_t generation,
              const SpcResult& result);

  /// Sums per-shard counters. Counters are monotone; safe to call
  /// concurrently with readers.
  Stats StatsSnapshot() const;

  size_t capacity() const { return num_shards_ * sets_per_shard_ * kWays; }
  size_t shards() const { return num_shards_; }

 private:
  struct Entry {
    uint64_t key;  // (max(u,v) << 32) | min(u,v); kEmptyKey = vacant
    uint64_t generation;
    Distance dist;
    PathCount count;
  };
  // (0xFFFFFFFF, 0xFFFFFFFF) would collide only for two invalid vertex
  // ids, which routing rejects before the cache is reached.
  static constexpr uint64_t kEmptyKey = ~uint64_t{0};

  struct alignas(64) Shard {
    mutable std::mutex mu;
    std::unique_ptr<Entry[]> entries;  // sets_per_shard * kWays
    uint32_t victim_arm = 0;           // round-robin across forced evictions
    Stats stats;
  };

  size_t num_shards_;
  size_t sets_per_shard_;  // power of two
  std::unique_ptr<Shard[]> shards_;
};

}  // namespace dspc

#endif  // DSPC_CORE_PAIR_CACHE_H_
