#include "dspc/core/dec_spc.h"

#include <algorithm>

namespace dspc {

DecSpc::DecSpc(Graph* graph, SpcIndex* index, const Options& options)
    : graph_(graph),
      index_(index),
      options_(options),
      cache_(index->NumVertices()),
      dist_(index->NumVertices(), kInfDistance),
      count_(index->NumVertices(), 0),
      side_of_(index->NumVertices(), kSideNone),
      lab_mark_(index->NumVertices(), 0),
      updated_(index->NumVertices(), 0) {}

void DecSpc::Resize() {
  const size_t n = index_->NumVertices();
  cache_ = HubCache(n);
  dist_.assign(n, kInfDistance);
  count_.assign(n, 0);
  side_of_.assign(n, kSideNone);
  lab_mark_.assign(n, 0);
  updated_.assign(n, 0);
}

bool DecSpc::TryIsolatedVertexOpt(Vertex a, Vertex b, UpdateStats* stats) {
  if (!options_.enable_isolated_vertex_opt) return false;
  const bool a_leaf = graph_->Degree(a) == 1;
  const bool b_leaf = graph_->Degree(b) == 1;
  Vertex keep;      // the paper's `a`
  Vertex detached;  // the paper's `b`, about to become isolated
  if (a_leaf && b_leaf) {
    // Both degree 1: detach the lower-ranked one, so keep <= detached
    // holds by construction.
    if (index_->RankOf(a) < index_->RankOf(b)) {
      keep = a;
      detached = b;
    } else {
      keep = b;
      detached = a;
    }
  } else if (b_leaf) {
    keep = a;
    detached = b;
  } else if (a_leaf) {
    keep = b;
    detached = a;
  } else {
    return false;
  }
  // The paper's argument needs the surviving endpoint to outrank the
  // detached one (then no label anywhere uses `detached` as hub). A frozen
  // degree ordering does not guarantee this after updates, so check and
  // fall back to the general path otherwise.
  if (index_->RankOf(keep) > index_->RankOf(detached)) return false;
  // Stale labels retained by IncSPC can use `detached` as hub even though
  // a minimal index never would; they would answer queries against the
  // soon-isolated vertex. Take the fast path only when provably none
  // exist; the general path's removal scan cleans them otherwise.
  if (index_->HubOccurrences(index_->RankOf(detached)) != 0) return false;

  graph_->RemoveEdge(a, b);
  stats->removed += index_->ClearToSelfLabel(detached);
  stats->used_isolated_vertex_opt = true;
  stats->applied = true;
  return true;
}

UpdateStats DecSpc::RemoveEdge(Vertex a, Vertex b) {
  UpdateStats stats;
  if (a == b || !graph_->IsValidVertex(a) || !graph_->IsValidVertex(b) ||
      !graph_->HasEdge(a, b)) {
    return stats;
  }
  if (TryIsolatedVertexOpt(a, b, &stats)) return stats;
  stats.applied = true;

  // L_ab: common hubs of a and b (Condition A membership tests).
  {
    const LabelSet& la = index_->Labels(a);
    const LabelSet& lb = index_->Labels(b);
    size_t i = 0;
    size_t j = 0;
    while (i < la.size() && j < lb.size()) {
      if (la[i].hub < lb[j].hub) {
        ++i;
      } else if (la[i].hub > lb[j].hub) {
        ++j;
      } else {
        lab_mark_[la[i].hub] = 1;
        lab_touched_.push_back(la[i].hub);
        ++i;
        ++j;
      }
    }
  }

  // Phase 1 (Algorithm 5), run on the pre-deletion graph and index.
  std::vector<Vertex> sr_a;
  std::vector<Vertex> r_a;
  std::vector<Vertex> sr_b;
  std::vector<Vertex> r_b;
  SrrSearch(a, b, &sr_a, &r_a, &stats);
  SrrSearch(b, a, &sr_b, &r_b, &stats);

  // Table 5 reporting convention: sr_a holds the larger SR side.
  if (sr_b.size() > sr_a.size()) {
    stats.sr_a = sr_b.size();
    stats.sr_b = sr_a.size();
    stats.r_a = r_b.size();
    stats.r_b = r_a.size();
  } else {
    stats.sr_a = sr_a.size();
    stats.sr_b = sr_b.size();
    stats.r_a = r_a.size();
    stats.r_b = r_b.size();
  }

  for (const Vertex v : sr_a) {
    side_of_[v] = kSideA;
    side_touched_.push_back(v);
  }
  for (const Vertex v : r_a) {
    side_of_[v] = kSideA;
    side_touched_.push_back(v);
  }
  for (const Vertex v : sr_b) {
    side_of_[v] = kSideB;
    side_touched_.push_back(v);
  }
  for (const Vertex v : r_b) {
    side_of_[v] = kSideB;
    side_touched_.push_back(v);
  }

  graph_->RemoveEdge(a, b);

  // SR = sort(SR_a u SR_b) by descending rank priority (ascending rank
  // value); each hub updates the opposite side (Lemma 3.14).
  std::vector<Vertex> sr_all;
  sr_all.reserve(sr_a.size() + sr_b.size());
  sr_all.insert(sr_all.end(), sr_a.begin(), sr_a.end());
  sr_all.insert(sr_all.end(), sr_b.begin(), sr_b.end());
  std::sort(sr_all.begin(), sr_all.end(), [&](Vertex x, Vertex y) {
    return index_->RankOf(x) < index_->RankOf(y);
  });
  stats.affected_hubs = sr_all.size();

  // Opposite-side vertex lists for the deferred removal scan.
  std::vector<Vertex> all_a;
  all_a.reserve(sr_a.size() + r_a.size());
  all_a.insert(all_a.end(), sr_a.begin(), sr_a.end());
  all_a.insert(all_a.end(), r_a.begin(), r_a.end());
  std::vector<Vertex> all_b;
  all_b.reserve(sr_b.size() + r_b.size());
  all_b.insert(all_b.end(), sr_b.begin(), sr_b.end());
  all_b.insert(all_b.end(), r_b.begin(), r_b.end());

  for (const Vertex hv : sr_all) {
    const bool h_ab = lab_mark_[index_->RankOf(hv)] != 0;
    if (side_of_[hv] == kSideA) {
      DecUpdate(hv, kSideB, all_b, h_ab, &stats);
    } else {
      DecUpdate(hv, kSideA, all_a, h_ab, &stats);
    }
  }

  for (const Vertex v : side_touched_) side_of_[v] = kSideNone;
  side_touched_.clear();
  for (const Rank r : lab_touched_) lab_mark_[r] = 0;
  lab_touched_.clear();
  return stats;
}

void DecSpc::SrrSearch(Vertex from, Vertex towards, std::vector<Vertex>* sr,
                       std::vector<Vertex>* r, UpdateStats* stats) {
  cache_.Load(index_->Labels(towards));
  dist_[from] = 0;
  count_[from] = 1;
  queue_.clear();
  queue_.push_back(from);
  touched_.clear();
  touched_.push_back(from);

  for (size_t head = 0; head < queue_.size(); ++head) {
    const Vertex v = queue_[head];
    ++stats->visited_vertices;
    // Prune vertices with no shortest path through (a, b): their distance
    // to the far endpoint is not one more than to the near endpoint.
    const SpcResult far = cache_.Query(index_->Labels(v));
    if (far.dist == kInfDistance || dist_[v] + 1 != far.dist) continue;

    // Condition A: v is a common hub of a and b. Condition B: every
    // shortest path from v to `towards` crosses the edge, i.e.
    // spc(v, from) == spc(v, towards).
    if (lab_mark_[index_->RankOf(v)] != 0 || count_[v] == far.count) {
      sr->push_back(v);
    } else {
      r->push_back(v);
    }

    for (const Vertex w : graph_->Neighbors(v)) {
      if (dist_[w] == kInfDistance) {
        dist_[w] = dist_[v] + 1;
        count_[w] = count_[v];
        queue_.push_back(w);
        touched_.push_back(w);
      } else if (dist_[w] == dist_[v] + 1) {
        count_[w] += count_[v];
      }
    }
  }

  for (const Vertex v : touched_) {
    dist_[v] = kInfDistance;
    count_[v] = 0;
  }
}

void DecSpc::DecUpdate(Vertex hv, uint8_t opposite_side,
                       const std::vector<Vertex>& opposite_vertices, bool h_ab,
                       UpdateStats* stats) {
  const Rank h = index_->RankOf(hv);
  cache_.Load(index_->Labels(hv));
  const VertexOrdering& order = index_->ordering();

  dist_[hv] = 0;
  count_[hv] = 1;
  queue_.clear();
  queue_.push_back(hv);
  touched_.clear();
  touched_.push_back(hv);
  updated_touched_.clear();

  for (size_t head = 0; head < queue_.size(); ++head) {
    const Vertex v = queue_[head];
    ++stats->visited_vertices;
    if (v != hv) {
      // PreQUERY: only hubs strictly outranking h participate; if they
      // already certify a shorter distance, no label (h,.,.) can be
      // needed at or beyond v.
      const SpcResult pre = cache_.PreQuery(index_->Labels(v), h);
      if (pre.dist < dist_[v]) continue;

      if (side_of_[v] == opposite_side) {
        if (LabelEntry* existing = index_->FindLabel(v, h)) {
          if (existing->dist != dist_[v]) {
            existing->dist = dist_[v];
            existing->count = count_[v];
            ++stats->renew_dist;
          } else if (existing->count != count_[v]) {
            existing->count = count_[v];
            ++stats->renew_count;
          }
        } else {
          index_->InsertLabel(v, LabelEntry{h, dist_[v], count_[v]});
          ++stats->inserted;
        }
        updated_[v] = 1;
        updated_touched_.push_back(v);
      }
    }

    for (const Vertex w : graph_->Neighbors(v)) {
      if (dist_[w] == kInfDistance) {
        if (h > order.rank_of[w]) continue;  // ranking pruning
        dist_[w] = dist_[v] + 1;
        count_[w] = count_[v];
        queue_.push_back(w);
        touched_.push_back(w);
      } else if (dist_[w] == dist_[v] + 1) {
        count_[w] += count_[v];
      }
    }
  }

  // Deferred removal (Algorithm 6 lines 23-26): a label the BFS did not
  // re-certify has sigma = 0 (dominated or disconnected) and must go.
  //
  // Deviation from the paper: Algorithm 6 runs this scan only when h is a
  // common hub of a and b, which suffices for labels that were valid
  // before this deletion. But IncSPC deliberately retains outdated labels
  // (Lemma 3.1), and a stale label whose hub h is *not* a common hub can
  // turn from a harmless overestimate into a wrong answer once the pair's
  // distance grows past it (e.g. disconnection). Whenever that can happen
  // h is in SR (all its shortest paths to the far side crossed the edge,
  // i.e. Condition B) and the owner is in the opposite SR u R, so scanning
  // unconditionally for every SR hub removes exactly the dead labels.
  (void)h_ab;
  for (const Vertex u : opposite_vertices) {
    if (updated_[u] == 0 && index_->RemoveLabel(u, h)) {
      ++stats->removed;
    }
  }

  for (const Vertex v : touched_) {
    dist_[v] = kInfDistance;
    count_[v] = 0;
  }
  for (const Vertex v : updated_touched_) updated_[v] = 0;
}

}  // namespace dspc
