// SPC-Index: 2-hop hub labeling for shortest path counting (paper §2.2,
// originally Zhang & Yu, SIGMOD'20).
//
// Every vertex v owns a label set L(v) of triples (h, sd(h,v), sigma_{h,v})
// where sigma_{h,v} = spc(h^, v) is the number of shortest h-v paths on
// which h is the highest-ranked vertex. The labeling obeys Exact Shortest
// Paths Covering (ESPC): for any pair (s,t),
//     H = argmin_{h in L(s) cap L(t)} sd(h,s) + sd(h,t)        (Eq. 1)
//     spc(s,t) = sum_{h in H} sigma_{h,s} * sigma_{h,t}        (Eq. 2)
//
// Representation notes (see DESIGN.md):
//  - hubs are stored as *ranks* under the frozen vertex ordering, so rank
//    comparisons replace order lookups and label sets stay sorted by rank;
//  - label sets are sorted ascending by hub rank (highest-ranked hub
//    first), making SpcQUERY a linear merge-scan;
//  - counts are uint64_t, exact modulo 2^64.

#ifndef DSPC_CORE_SPC_INDEX_H_
#define DSPC_CORE_SPC_INDEX_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "dspc/baseline/bfs_counting.h"
#include "dspc/common/status.h"
#include "dspc/common/types.h"
#include "dspc/graph/ordering.h"

namespace dspc {

class BinaryReader;

/// One label triple. `hub` is the hub's rank; `count` is sigma_{hub,v}.
struct LabelEntry {
  Rank hub;
  Distance dist;
  PathCount count;

  friend bool operator==(const LabelEntry&, const LabelEntry&) = default;
};

/// A vertex's label set, sorted ascending by hub rank.
using LabelSet = std::vector<LabelEntry>;

/// Sorted-label-set primitives shared by the undirected, directed, and
/// weighted index variants. All are O(log |set|) search (+ O(|set|) shift
/// for insert/remove).
LabelEntry* FindLabelIn(LabelSet& set, Rank hub);
const LabelEntry* FindLabelIn(const LabelSet& set, Rank hub);
void InsertLabelInto(LabelSet& set, const LabelEntry& entry);
bool RemoveLabelFrom(LabelSet& set, Rank hub);

/// Size/shape statistics for an index (Table 4 reporting).
struct IndexSizeStats {
  size_t num_vertices = 0;
  size_t total_entries = 0;
  size_t max_label_size = 0;
  double avg_label_size = 0.0;
  /// Bytes of the in-memory 16-byte-entry representation.
  size_t wide_bytes = 0;
  /// Entries that exceed the packed 25/10/29-bit budgets and need the
  /// flat arena's wide side table.
  size_t overflow_entries = 0;
  /// Bytes under the paper's packed 64-bit encoding (Section 4.1): one
  /// word per entry plus a wide side-table record per overflow entry —
  /// the exact resident cost of the FlatSpcIndex entry storage.
  size_t packed_bytes = 0;
};

/// The SPC-Index. Hot paths (Query) never fail; mutating helpers are used
/// by the construction/maintenance algorithms in hp_spc / inc_spc / dec_spc.
class SpcIndex {
 public:
  SpcIndex() = default;

  /// Creates an index whose every vertex carries only its self label
  /// (rank(v), 0, 1); construction algorithms fill in the rest.
  explicit SpcIndex(VertexOrdering ordering);

  /// Number of vertices covered.
  size_t NumVertices() const { return labels_.size(); }

  /// The frozen ordering this index was built under.
  const VertexOrdering& ordering() const { return ordering_; }

  /// Rank of vertex v under the frozen ordering.
  Rank RankOf(Vertex v) const { return ordering_.rank_of[v]; }

  /// Vertex holding rank r.
  Vertex VertexOf(Rank r) const { return ordering_.vertex_of[r]; }

  /// Label set of v (sorted ascending by hub rank).
  const LabelSet& Labels(Vertex v) const { return labels_[v]; }

  /// Contiguous view of the label sets of vertices [begin, end) — the
  /// zero-copy input for per-shard snapshot packing (DESIGN.md §8).
  std::span<const LabelSet> LabelRange(Vertex begin, Vertex end) const {
    return {labels_.data() + begin, labels_.data() + end};
  }

  /// Deep copy of the label sets of vertices [begin, end) — the delta
  /// copy-on-read primitive: the snapshot worker copies only the ranges
  /// of dirty shards instead of the whole index.
  std::vector<LabelSet> CopyLabelRange(Vertex begin, Vertex end) const {
    return {labels_.begin() + begin, labels_.begin() + end};
  }

  /// SpcQUERY (Algorithm 1): shortest distance and path count between s
  /// and t by merge-scanning L(s) and L(t). Disconnected: {inf, 0}.
  SpcResult Query(Vertex s, Vertex t) const;

  /// PreQUERY (paper §3.2.2): like Query but only hubs ranked strictly
  /// higher than `s` participate. Used by DecUPDATE's pruning.
  SpcResult PreQuery(Vertex s, Vertex t) const;

  /// Appends a new lowest-ranked vertex with its self label; used for
  /// vertex insertion on dynamic graphs (paper §3).
  Vertex AddVertex();

  // --- mutation API for the maintenance algorithms -----------------------

  /// Pointer to the entry with hub rank `hub` in L(v), or nullptr.
  LabelEntry* FindLabel(Vertex v, Rank hub);
  const LabelEntry* FindLabel(Vertex v, Rank hub) const;

  /// Inserts a label entry, keeping L(v) sorted. Precondition: no entry
  /// with that hub exists.
  void InsertLabel(Vertex v, const LabelEntry& entry);

  /// Removes the entry with hub rank `hub` from L(v); returns false if
  /// absent.
  bool RemoveLabel(Vertex v, Rank hub);

  /// Drops all labels of v except its self label (isolated-vertex
  /// optimization, paper §3.2.3). Returns how many entries were removed.
  size_t ClearToSelfLabel(Vertex v);

  /// Number of label sets other than the hub's own that currently contain
  /// an entry with hub rank `r`. DecSPC's isolated-vertex fast path is
  /// sound only when this is 0 for the detached vertex (stale labels kept
  /// by IncSPC may otherwise survive, see dec_spc.cc).
  size_t HubOccurrences(Rank r) const { return hub_occurrences_[r]; }

  // --- mutation tracking (delta snapshots, DESIGN.md §8) -----------------

  /// Vertices whose label sets may have changed since the last
  /// ClearTouched(), deduplicated, in no particular order. Conservative:
  /// handing out a mutable FindLabel pointer counts as a touch whether or
  /// not the caller writes through it.
  const std::vector<Vertex>& TouchedVertices() const { return touched_; }

  /// Resets the touched set (the facade drains it after every update).
  void ClearTouched();

  // --- diagnostics / persistence -----------------------------------------

  /// Size statistics (Table 4).
  IndexSizeStats SizeStats() const;

  /// Structural invariants: labels sorted by hub rank without duplicates,
  /// hubs outrank or equal their owner, self label (rank(v),0,1) present,
  /// ordering is a valid permutation. Returns OK or a Corruption message
  /// naming the first violation.
  Status ValidateStructure() const;

  /// Serialization with CRC framing. Load validates structure and also
  /// accepts the v2 flat-arena format (unpacking it).
  Status Save(const std::string& path) const;
  static Status Load(const std::string& path, SpcIndex* out);

  /// Parses a v1 payload from `r`, which must be positioned just past the
  /// magic/version header. Used by the cross-version loaders so a file is
  /// read from disk exactly once; most callers want Load().
  static Status LoadFromReader(BinaryReader* r, SpcIndex* out);

  friend bool operator==(const SpcIndex& a, const SpcIndex& b) {
    return a.ordering_.rank_of == b.ordering_.rank_of &&
           a.labels_ == b.labels_;
  }

 private:
  /// Records v in the touched set (idempotent per ClearTouched window).
  void MarkTouched(Vertex v) {
    if (!touched_flag_[v]) {
      touched_flag_[v] = 1;
      touched_.push_back(v);
    }
  }

  VertexOrdering ordering_;
  std::vector<LabelSet> labels_;
  /// hub_occurrences_[r]: count of non-self entries with hub rank r across
  /// all label sets. Maintained by InsertLabel/RemoveLabel/ClearToSelfLabel.
  std::vector<size_t> hub_occurrences_;
  /// Touched-vertex set: dense dedup flag per vertex plus the compact
  /// list, so marking is O(1) and clearing is O(|touched|).
  std::vector<uint8_t> touched_flag_;
  std::vector<Vertex> touched_;
};

/// Rank-indexed scratch view of one label set, shared by every
/// construction/maintenance BFS in the undirected, directed, and weighted
/// variants: load L(h) once, then each per-vertex SpcQUERY/PreQUERY costs
/// O(|L(v)|) — the O(l) the paper's complexity theorems assume. The arrays
/// are n-sized but reset via a touched list, so Load+Clear cost O(|L(h)|).
class HubCache {
 public:
  explicit HubCache(size_t n);

  /// Loads every entry of `labels`. Replaces any previous load.
  void Load(const LabelSet& labels);

  /// SpcQUERY between the loaded label set and `labels` (Eq. 1 and 2).
  SpcResult Query(const LabelSet& labels) const;

  /// PreQUERY: only common hubs ranked strictly higher than `below_rank`
  /// (pass rank(h)) participate.
  SpcResult PreQuery(const LabelSet& labels, Rank below_rank) const;

  /// Distance recorded for hub rank r (kInfDistance if absent).
  Distance DistOf(Rank r) const { return dist_[r]; }

  /// Resets to the empty state.
  void Clear();

 private:
  std::vector<Distance> dist_;
  std::vector<PathCount> count_;
  std::vector<Rank> touched_;
};

}  // namespace dspc

#endif  // DSPC_CORE_SPC_INDEX_H_
