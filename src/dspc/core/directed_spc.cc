#include "dspc/core/directed_spc.h"

#include <algorithm>

namespace dspc {

namespace {

/// Sorted vector of hub ranks common to both label sets.
std::vector<Rank> CommonHubs(const LabelSet& x, const LabelSet& y) {
  std::vector<Rank> common;
  size_t i = 0;
  size_t j = 0;
  while (i < x.size() && j < y.size()) {
    if (x[i].hub < y[j].hub) {
      ++i;
    } else if (x[i].hub > y[j].hub) {
      ++j;
    } else {
      common.push_back(x[i].hub);
      ++i;
      ++j;
    }
  }
  return common;
}

}  // namespace

DynamicDirectedSpcIndex::DynamicDirectedSpcIndex(
    Digraph graph, const OrderingOptions& ordering)
    : graph_(std::move(graph)),
      ordering_(BuildOrdering(graph_, ordering)),
      ordering_options_(ordering),
      cache_(graph_.NumVertices()),
      dist_(graph_.NumVertices(), kInfDistance),
      count_(graph_.NumVertices(), 0),
      side_of_(graph_.NumVertices(), kSideNone),
      updated_(graph_.NumVertices(), 0) {
  Build();
}

void DynamicDirectedSpcIndex::Build() {
  const size_t n = graph_.NumVertices();
  in_labels_.assign(n, {});
  out_labels_.assign(n, {});
  for (Vertex v = 0; v < n; ++v) {
    const LabelEntry self{ordering_.rank_of[v], 0, 1};
    in_labels_[v].push_back(self);
    out_labels_[v].push_back(self);
  }
  for (Rank h = 0; h < n; ++h) {
    const Vertex hv = ordering_.vertex_of[h];
    if (graph_.OutDegree(hv) > 0) PushFromHub(h, Direction::kForward);
    if (graph_.InDegree(hv) > 0) PushFromHub(h, Direction::kReverse);
  }
}

void DynamicDirectedSpcIndex::PushFromHub(Rank h, Direction dir) {
  const Vertex hv = ordering_.vertex_of[h];
  cache_.Load(SourceLabels(dir)[hv]);
  std::vector<LabelSet>& target = TargetLabels(dir);

  dist_[hv] = 0;
  count_[hv] = 1;
  queue_.clear();
  queue_.push_back(hv);
  touched_.clear();
  touched_.push_back(hv);

  for (size_t head = 0; head < queue_.size(); ++head) {
    const Vertex v = queue_[head];
    if (v != hv) {
      const SpcResult covered = cache_.Query(target[v]);
      if (covered.dist < dist_[v]) continue;
      InsertLabelInto(target[v], LabelEntry{h, dist_[v], count_[v]});
    }
    for (const Vertex w : Successors(v, dir)) {
      if (ordering_.rank_of[w] <= h) continue;
      if (dist_[w] == kInfDistance) {
        dist_[w] = dist_[v] + 1;
        count_[w] = count_[v];
        queue_.push_back(w);
        touched_.push_back(w);
      } else if (dist_[w] == dist_[v] + 1) {
        count_[w] += count_[v];
      }
    }
  }
  for (const Vertex v : touched_) {
    dist_[v] = kInfDistance;
    count_[v] = 0;
  }
}

SpcResult DynamicDirectedSpcIndex::ScanQuery(const LabelSet& out_s,
                                             const LabelSet& in_t) {
  SpcResult result;
  size_t i = 0;
  size_t j = 0;
  while (i < out_s.size() && j < in_t.size()) {
    if (out_s[i].hub < in_t[j].hub) {
      ++i;
    } else if (out_s[i].hub > in_t[j].hub) {
      ++j;
    } else {
      const Distance d = out_s[i].dist + in_t[j].dist;
      if (d < result.dist) {
        result.dist = d;
        result.count = out_s[i].count * in_t[j].count;
      } else if (d == result.dist) {
        result.count += out_s[i].count * in_t[j].count;
      }
      ++i;
      ++j;
    }
  }
  return result;
}

SpcResult DynamicDirectedSpcIndex::Query(Vertex s, Vertex t) const {
  return ScanQuery(out_labels_[s], in_labels_[t]);
}

UpdateStats DynamicDirectedSpcIndex::InsertArc(Vertex a, Vertex b) {
  UpdateStats stats;
  if (!graph_.AddArc(a, b)) return stats;
  stats.applied = true;

  const Rank rank_a = ordering_.rank_of[a];
  const Rank rank_b = ordering_.rank_of[b];

  // AFF: hubs of L_in(a) renew in-labels forward from b (covering new
  // paths h -> .. -> a -> b -> ..); hubs of L_out(b) renew out-labels in
  // reverse from a (covering .. -> a -> b -> .. -> h). Merged processing
  // in descending rank order keeps higher labels correct first.
  struct AffEntry {
    Rank hub;
    bool from_in_a;
    bool from_out_b;
  };
  std::vector<AffEntry> aff;
  {
    const LabelSet& ia = in_labels_[a];
    const LabelSet& ob = out_labels_[b];
    size_t i = 0;
    size_t j = 0;
    while (i < ia.size() || j < ob.size()) {
      if (j >= ob.size() || (i < ia.size() && ia[i].hub < ob[j].hub)) {
        aff.push_back({ia[i++].hub, true, false});
      } else if (i >= ia.size() || ob[j].hub < ia[i].hub) {
        aff.push_back({ob[j++].hub, false, true});
      } else {
        aff.push_back({ia[i].hub, true, true});
        ++i;
        ++j;
      }
    }
  }
  stats.affected_hubs = aff.size();

  for (const AffEntry& e : aff) {
    if (e.from_in_a && e.hub <= rank_b) {
      const LabelEntry* seed = FindLabelIn(in_labels_[a], e.hub);
      if (seed != nullptr) {
        IncUpdate(e.hub, b, seed->dist + 1, seed->count, Direction::kForward,
                  &stats);
      }
    }
    if (e.from_out_b && e.hub <= rank_a) {
      const LabelEntry* seed = FindLabelIn(out_labels_[b], e.hub);
      if (seed != nullptr) {
        IncUpdate(e.hub, a, seed->dist + 1, seed->count, Direction::kReverse,
                  &stats);
      }
    }
  }
  return stats;
}

void DynamicDirectedSpcIndex::IncUpdate(Rank h, Vertex seed,
                                        Distance seed_dist,
                                        PathCount seed_count, Direction dir,
                                        UpdateStats* stats) {
  const Vertex hv = ordering_.vertex_of[h];
  cache_.Load(SourceLabels(dir)[hv]);
  std::vector<LabelSet>& target = TargetLabels(dir);

  dist_[seed] = seed_dist;
  count_[seed] = seed_count;
  queue_.clear();
  queue_.push_back(seed);
  touched_.clear();
  touched_.push_back(seed);

  for (size_t head = 0; head < queue_.size(); ++head) {
    const Vertex v = queue_[head];
    ++stats->visited_vertices;
    const SpcResult covered = cache_.Query(target[v]);
    if (covered.dist < dist_[v]) continue;

    if (LabelEntry* existing = FindLabelIn(target[v], h)) {
      if (existing->dist == dist_[v]) {
        existing->count += count_[v];
        ++stats->renew_count;
      } else {
        existing->dist = dist_[v];
        existing->count = count_[v];
        ++stats->renew_dist;
      }
    } else {
      InsertLabelInto(target[v], LabelEntry{h, dist_[v], count_[v]});
      ++stats->inserted;
    }

    for (const Vertex w : Successors(v, dir)) {
      if (dist_[w] == kInfDistance) {
        if (h > ordering_.rank_of[w]) continue;
        dist_[w] = dist_[v] + 1;
        count_[w] = count_[v];
        queue_.push_back(w);
        touched_.push_back(w);
      } else if (dist_[w] == dist_[v] + 1) {
        count_[w] += count_[v];
      }
    }
  }
  for (const Vertex v : touched_) {
    dist_[v] = kInfDistance;
    count_[v] = 0;
  }
}

UpdateStats DynamicDirectedSpcIndex::RemoveArc(Vertex a, Vertex b) {
  UpdateStats stats;
  if (a >= graph_.NumVertices() || b >= graph_.NumVertices() ||
      !graph_.HasArc(a, b)) {
    return stats;
  }
  stats.applied = true;

  // Phase 1 on the pre-deletion graph: upstream side from a (reverse),
  // downstream side from b (forward).
  std::vector<Vertex> sr_a;
  std::vector<Vertex> r_a;
  std::vector<Vertex> sr_b;
  std::vector<Vertex> r_b;
  SrrSearch(a, b, Direction::kReverse, &sr_a, &r_a, &stats);
  SrrSearch(b, a, Direction::kForward, &sr_b, &r_b, &stats);

  if (sr_b.size() > sr_a.size()) {
    stats.sr_a = sr_b.size();
    stats.sr_b = sr_a.size();
    stats.r_a = r_b.size();
    stats.r_b = r_a.size();
  } else {
    stats.sr_a = sr_a.size();
    stats.sr_b = sr_b.size();
    stats.r_a = r_a.size();
    stats.r_b = r_b.size();
  }

  auto mark = [&](const std::vector<Vertex>& vs, uint8_t bit) {
    for (const Vertex v : vs) {
      if (side_of_[v] == kSideNone) side_touched_.push_back(v);
      side_of_[v] = static_cast<uint8_t>(side_of_[v] | bit);
    }
  };
  mark(sr_a, kSideA | kSrA);
  mark(r_a, kSideA);
  mark(sr_b, kSideB | kSrB);
  mark(r_b, kSideB);

  graph_.RemoveArc(a, b);

  // Merged SR hub list, deduplicated (a vertex can be in SR_a *and* SR_b
  // on a directed cycle), in descending rank order.
  std::vector<Vertex> sr_all;
  sr_all.reserve(sr_a.size() + sr_b.size());
  sr_all.insert(sr_all.end(), sr_a.begin(), sr_a.end());
  sr_all.insert(sr_all.end(), sr_b.begin(), sr_b.end());
  std::sort(sr_all.begin(), sr_all.end(), [&](Vertex x, Vertex y) {
    return ordering_.rank_of[x] < ordering_.rank_of[y];
  });
  sr_all.erase(std::unique(sr_all.begin(), sr_all.end()), sr_all.end());
  stats.affected_hubs = sr_all.size();

  std::vector<Vertex> all_a;
  all_a.insert(all_a.end(), sr_a.begin(), sr_a.end());
  all_a.insert(all_a.end(), r_a.begin(), r_a.end());
  std::vector<Vertex> all_b;
  all_b.insert(all_b.end(), sr_b.begin(), sr_b.end());
  all_b.insert(all_b.end(), r_b.begin(), r_b.end());

  for (const Vertex hv : sr_all) {
    if ((side_of_[hv] & kSrA) != 0) {
      // Upstream hub: its outgoing coverage crossed the arc; re-push
      // forward, touching in-labels of downstream-affected vertices.
      DecUpdate(hv, Direction::kForward, kSideB, all_b, &stats);
    }
    if ((side_of_[hv] & kSrB) != 0) {
      DecUpdate(hv, Direction::kReverse, kSideA, all_a, &stats);
    }
  }

  for (const Vertex v : side_touched_) side_of_[v] = kSideNone;
  side_touched_.clear();
  return stats;
}

void DynamicDirectedSpcIndex::SrrSearch(Vertex from, Vertex towards,
                                        Direction dir, std::vector<Vertex>* sr,
                                        std::vector<Vertex>* r,
                                        UpdateStats* stats) {
  // Reverse search from a: classify v by sd(v,a)+1 = sd(v,b), far query
  // spc(v, b) = L_out(v) x L_in(b), Condition A membership in the common
  // *in*-hubs of a and b. Forward search from b mirrors everything.
  const Vertex a_like = from;
  const Vertex b_like = towards;
  std::vector<Rank> common;
  if (dir == Direction::kReverse) {
    cache_.Load(in_labels_[b_like]);
    common = CommonHubs(in_labels_[a_like], in_labels_[b_like]);
  } else {
    cache_.Load(out_labels_[b_like]);
    common = CommonHubs(out_labels_[a_like], out_labels_[b_like]);
  }

  dist_[from] = 0;
  count_[from] = 1;
  queue_.clear();
  queue_.push_back(from);
  touched_.clear();
  touched_.push_back(from);

  for (size_t head = 0; head < queue_.size(); ++head) {
    const Vertex v = queue_[head];
    ++stats->visited_vertices;
    const SpcResult far =
        dir == Direction::kReverse
            ? cache_.Query(out_labels_[v])   // spc(v, b)
            : cache_.Query(in_labels_[v]);   // spc(a, v)
    if (far.dist == kInfDistance || dist_[v] + 1 != far.dist) continue;

    const bool cond_a =
        std::binary_search(common.begin(), common.end(), ordering_.rank_of[v]);
    if (cond_a || count_[v] == far.count) {
      sr->push_back(v);
    } else {
      r->push_back(v);
    }

    for (const Vertex w : Successors(v, dir)) {
      if (dist_[w] == kInfDistance) {
        dist_[w] = dist_[v] + 1;
        count_[w] = count_[v];
        queue_.push_back(w);
        touched_.push_back(w);
      } else if (dist_[w] == dist_[v] + 1) {
        count_[w] += count_[v];
      }
    }
  }
  for (const Vertex v : touched_) {
    dist_[v] = kInfDistance;
    count_[v] = 0;
  }
}

void DynamicDirectedSpcIndex::DecUpdate(
    Vertex hv, Direction dir, uint8_t opposite_side_bit,
    const std::vector<Vertex>& opposite_vertices, UpdateStats* stats) {
  const Rank h = ordering_.rank_of[hv];
  cache_.Load(SourceLabels(dir)[hv]);
  std::vector<LabelSet>& target = TargetLabels(dir);

  dist_[hv] = 0;
  count_[hv] = 1;
  queue_.clear();
  queue_.push_back(hv);
  touched_.clear();
  touched_.push_back(hv);
  updated_touched_.clear();

  for (size_t head = 0; head < queue_.size(); ++head) {
    const Vertex v = queue_[head];
    ++stats->visited_vertices;
    if (v != hv) {
      const SpcResult pre = cache_.PreQuery(target[v], h);
      if (pre.dist < dist_[v]) continue;
      if ((side_of_[v] & opposite_side_bit) != 0) {
        if (LabelEntry* existing = FindLabelIn(target[v], h)) {
          if (existing->dist != dist_[v]) {
            existing->dist = dist_[v];
            existing->count = count_[v];
            ++stats->renew_dist;
          } else if (existing->count != count_[v]) {
            existing->count = count_[v];
            ++stats->renew_count;
          }
        } else {
          InsertLabelInto(target[v], LabelEntry{h, dist_[v], count_[v]});
          ++stats->inserted;
        }
        updated_[v] = 1;
        updated_touched_.push_back(v);
      }
    }
    for (const Vertex w : Successors(v, dir)) {
      if (dist_[w] == kInfDistance) {
        if (h > ordering_.rank_of[w]) continue;
        dist_[w] = dist_[v] + 1;
        count_[w] = count_[v];
        queue_.push_back(w);
        touched_.push_back(w);
      } else if (dist_[w] == dist_[v] + 1) {
        count_[w] += count_[v];
      }
    }
  }

  // Unconditional deferred removal — same stale-label reasoning as the
  // undirected DecSPC (see dec_spc.cc). The hub itself can sit in its own
  // opposite list (directed cycle through the arc); its self label is
  // permanent, so skip it.
  for (const Vertex u : opposite_vertices) {
    if (u == hv) continue;
    if (updated_[u] == 0 && RemoveLabelFrom(target[u], h)) {
      ++stats->removed;
    }
  }

  for (const Vertex v : touched_) {
    dist_[v] = kInfDistance;
    count_[v] = 0;
  }
  for (const Vertex v : updated_touched_) updated_[v] = 0;
}

Vertex DynamicDirectedSpcIndex::AddVertex() {
  const Vertex v = graph_.AddVertex();
  ordering_.Append();
  const LabelEntry self{ordering_.rank_of[v], 0, 1};
  in_labels_.push_back({self});
  out_labels_.push_back({self});
  const size_t n = graph_.NumVertices();
  cache_ = HubCache(n);
  dist_.assign(n, kInfDistance);
  count_.assign(n, 0);
  side_of_.assign(n, kSideNone);
  updated_.assign(n, 0);
  return v;
}

UpdateStats DynamicDirectedSpcIndex::RemoveVertex(Vertex v) {
  UpdateStats total;
  if (v >= graph_.NumVertices()) return total;
  const std::vector<Vertex> out = graph_.OutNeighbors(v);
  for (const Vertex w : out) total.Accumulate(RemoveArc(v, w));
  const std::vector<Vertex> in = graph_.InNeighbors(v);
  for (const Vertex w : in) total.Accumulate(RemoveArc(w, v));
  return total;
}

void DynamicDirectedSpcIndex::Rebuild() {
  ordering_ = BuildOrdering(graph_, ordering_options_);
  Build();
}

Status DynamicDirectedSpcIndex::ValidateStructure() const {
  if (!ordering_.IsValid()) {
    return Status::Corruption("ordering is not a permutation");
  }
  auto check_family = [&](const std::vector<LabelSet>& family,
                          const char* name) -> Status {
    for (Vertex v = 0; v < family.size(); ++v) {
      const Rank rv = ordering_.rank_of[v];
      bool self_seen = false;
      const LabelSet& set = family[v];
      for (size_t i = 0; i < set.size(); ++i) {
        if (i > 0 && set[i - 1].hub >= set[i].hub) {
          return Status::Corruption(std::string(name) + " labels unsorted at v" +
                                    std::to_string(v));
        }
        if (set[i].hub > rv) {
          return Status::Corruption(std::string(name) +
                                    " hub outranked by owner at v" +
                                    std::to_string(v));
        }
        if (set[i].hub == rv) {
          if (set[i].dist != 0 || set[i].count != 1) {
            return Status::Corruption(std::string(name) + " bad self label");
          }
          self_seen = true;
        }
        if (set[i].count == 0) {
          return Status::Corruption(std::string(name) + " zero-count label");
        }
      }
      if (!self_seen) {
        return Status::Corruption(std::string(name) + " missing self label");
      }
    }
    return Status::OK();
  };
  Status s = check_family(in_labels_, "in");
  if (!s.ok()) return s;
  return check_family(out_labels_, "out");
}

IndexSizeStats DynamicDirectedSpcIndex::SizeStats() const {
  IndexSizeStats stats;
  stats.num_vertices = in_labels_.size();
  for (const auto* family : {&in_labels_, &out_labels_}) {
    for (const LabelSet& set : *family) {
      stats.total_entries += set.size();
      stats.max_label_size = std::max(stats.max_label_size, set.size());
    }
  }
  stats.avg_label_size =
      stats.num_vertices == 0
          ? 0.0
          : static_cast<double>(stats.total_entries) / (2.0 * stats.num_vertices);
  stats.wide_bytes = stats.total_entries * sizeof(LabelEntry);
  stats.packed_bytes = stats.total_entries * sizeof(uint64_t);
  return stats;
}

}  // namespace dspc
