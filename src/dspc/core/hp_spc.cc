#include "dspc/core/hp_spc.h"

#include <vector>

#include "dspc/common/types.h"

namespace dspc {

SpcIndex BuildSpcIndex(const Graph& graph, VertexOrdering ordering) {
  const size_t n = graph.NumVertices();
  SpcIndex index(std::move(ordering));

  std::vector<Distance> dist(n, kInfDistance);
  std::vector<PathCount> count(n, 0);
  std::vector<Vertex> queue;
  std::vector<Vertex> touched;
  HubCache cache(n);

  const VertexOrdering& order = index.ordering();
  for (Rank h = 0; h < n; ++h) {
    const Vertex hv = order.vertex_of[h];
    if (graph.Degree(hv) == 0) continue;  // only the self label applies

    // Distances from hv through already-processed (higher-ranked) hubs.
    cache.Load(index.Labels(hv));

    dist[hv] = 0;
    count[hv] = 1;
    queue.clear();
    queue.push_back(hv);
    touched.clear();
    touched.push_back(hv);

    for (size_t head = 0; head < queue.size(); ++head) {
      const Vertex v = queue[head];
      if (v != hv) {
        // Prune only on strictly shorter coverage; equality still labels
        // (non-canonical counts) and keeps expanding.
        const SpcResult covered = cache.Query(index.Labels(v));
        if (covered.dist < dist[v]) continue;
        index.InsertLabel(v, LabelEntry{h, dist[v], count[v]});
      }
      for (const Vertex w : graph.Neighbors(v)) {
        if (order.rank_of[w] <= h) continue;  // only lower-ranked vertices
        if (dist[w] == kInfDistance) {
          dist[w] = dist[v] + 1;
          count[w] = count[v];
          queue.push_back(w);
          touched.push_back(w);
        } else if (dist[w] == dist[v] + 1) {
          count[w] += count[v];
        }
      }
    }

    for (const Vertex v : touched) {
      dist[v] = kInfDistance;
      count[v] = 0;
    }
  }
  return index;
}

SpcIndex BuildSpcIndex(const Graph& graph,
                       const OrderingOptions& ordering_options) {
  return BuildSpcIndex(graph, BuildOrdering(graph, ordering_options));
}

}  // namespace dspc
