#include "dspc/graph/graph.h"

#include <algorithm>

namespace dspc {

Graph::Graph(size_t n, const std::vector<Edge>& edges) : adj_(n) {
  for (const Edge& e : edges) {
    if (e.u == e.v || e.u >= n || e.v >= n) continue;
    adj_[e.u].push_back(e.v);
    adj_[e.v].push_back(e.u);
  }
  for (auto& nbrs : adj_) {
    std::sort(nbrs.begin(), nbrs.end());
    nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
  }
  for (const auto& nbrs : adj_) num_edges_ += nbrs.size();
  num_edges_ /= 2;
}

bool Graph::HasEdge(Vertex u, Vertex v) const {
  if (u >= adj_.size() || v >= adj_.size()) return false;
  // Search the shorter list.
  const auto& nbrs = adj_[u].size() <= adj_[v].size() ? adj_[u] : adj_[v];
  const Vertex target = adj_[u].size() <= adj_[v].size() ? v : u;
  return std::binary_search(nbrs.begin(), nbrs.end(), target);
}

bool Graph::AddEdge(Vertex u, Vertex v) {
  if (u == v || u >= adj_.size() || v >= adj_.size()) return false;
  auto it = std::lower_bound(adj_[u].begin(), adj_[u].end(), v);
  if (it != adj_[u].end() && *it == v) return false;
  adj_[u].insert(it, v);
  adj_[v].insert(std::lower_bound(adj_[v].begin(), adj_[v].end(), u), u);
  ++num_edges_;
  return true;
}

bool Graph::RemoveEdge(Vertex u, Vertex v) {
  if (u >= adj_.size() || v >= adj_.size()) return false;
  auto it = std::lower_bound(adj_[u].begin(), adj_[u].end(), v);
  if (it == adj_[u].end() || *it != v) return false;
  adj_[u].erase(it);
  adj_[v].erase(std::lower_bound(adj_[v].begin(), adj_[v].end(), u));
  --num_edges_;
  return true;
}

Vertex Graph::AddVertex() {
  adj_.emplace_back();
  return static_cast<Vertex>(adj_.size() - 1);
}

std::vector<Edge> Graph::IsolateVertex(Vertex v) {
  std::vector<Edge> removed;
  if (v >= adj_.size()) return removed;
  removed.reserve(adj_[v].size());
  // Copy: RemoveEdge mutates adj_[v].
  const std::vector<Vertex> nbrs = adj_[v];
  for (Vertex u : nbrs) {
    RemoveEdge(v, u);
    removed.push_back(Edge{v, u});
  }
  return removed;
}

std::vector<Edge> Graph::Edges() const {
  std::vector<Edge> edges;
  edges.reserve(num_edges_);
  for (Vertex u = 0; u < adj_.size(); ++u) {
    for (Vertex v : adj_[u]) {
      if (u < v) edges.push_back(Edge{u, v});
    }
  }
  return edges;
}

}  // namespace dspc
