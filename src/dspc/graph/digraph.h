// Dynamic directed, unweighted graph: substrate for the directed extension
// of DSPC (paper Appendix C.1).

#ifndef DSPC_GRAPH_DIGRAPH_H_
#define DSPC_GRAPH_DIGRAPH_H_

#include <cstddef>
#include <vector>

#include "dspc/common/types.h"
#include "dspc/graph/graph.h"

namespace dspc {

/// Dynamic directed graph with both out- and in-adjacency kept sorted, so
/// forward and reverse BFS are symmetric. An Edge{u, v} is the arc u -> v.
class Digraph {
 public:
  Digraph() = default;

  /// Creates a digraph with `n` isolated vertices.
  explicit Digraph(size_t n) : out_(n), in_(n) {}

  /// Creates a digraph with `n` vertices and the given arcs (duplicates and
  /// self-loops dropped).
  Digraph(size_t n, const std::vector<Edge>& arcs);

  size_t NumVertices() const { return out_.size(); }
  size_t NumArcs() const { return num_arcs_; }

  size_t OutDegree(Vertex v) const { return out_[v].size(); }
  size_t InDegree(Vertex v) const { return in_[v].size(); }

  /// Successors of `v` (sorted).
  const std::vector<Vertex>& OutNeighbors(Vertex v) const { return out_[v]; }
  /// Predecessors of `v` (sorted).
  const std::vector<Vertex>& InNeighbors(Vertex v) const { return in_[v]; }

  /// True iff arc u -> v exists.
  bool HasArc(Vertex u, Vertex v) const;

  /// Adds arc u -> v. Returns false on self-loop / out-of-range / duplicate.
  bool AddArc(Vertex u, Vertex v);

  /// Removes arc u -> v. Returns false if absent.
  bool RemoveArc(Vertex u, Vertex v);

  /// Appends an isolated vertex and returns its id.
  Vertex AddVertex();

  /// All arcs in ascending (u, v) order.
  std::vector<Edge> Arcs() const;

 private:
  std::vector<std::vector<Vertex>> out_;
  std::vector<std::vector<Vertex>> in_;
  size_t num_arcs_ = 0;
};

}  // namespace dspc

#endif  // DSPC_GRAPH_DIGRAPH_H_
