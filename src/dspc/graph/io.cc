#include "dspc/graph/io.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <unordered_map>
#include <vector>

#include "dspc/common/binary_io.h"

namespace dspc {

namespace {

Status ReadFileToString(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open: " + path);
  if (std::fseek(f, 0, SEEK_END) != 0) {
    std::fclose(f);
    return Status::IOError("cannot seek: " + path);
  }
  const long size = std::ftell(f);
  if (size < 0 || std::fseek(f, 0, SEEK_SET) != 0) {
    std::fclose(f);
    return Status::IOError("cannot stat: " + path);
  }
  out->resize(static_cast<size_t>(size));
  const bool ok =
      size == 0 || std::fread(out->data(), 1, out->size(), f) == out->size();
  std::fclose(f);
  if (!ok) return Status::IOError("short read: " + path);
  return Status::OK();
}

/// Pulls whitespace-separated unsigned integers off a text line; returns
/// how many were parsed (up to `max_fields`).
int ParseFields(const char* line, const char* end, uint64_t* fields,
                int max_fields) {
  int count = 0;
  const char* p = line;
  while (p < end && count < max_fields) {
    while (p < end && (std::isspace(static_cast<unsigned char>(*p)) != 0)) ++p;
    if (p >= end) break;
    if (std::isdigit(static_cast<unsigned char>(*p)) == 0) return -1;
    uint64_t value = 0;
    while (p < end && std::isdigit(static_cast<unsigned char>(*p)) != 0) {
      value = value * 10 + static_cast<uint64_t>(*p - '0');
      ++p;
    }
    fields[count++] = value;
  }
  return count;
}

bool IsCommentOrBlank(const char* line, const char* end) {
  const char* p = line;
  while (p < end && std::isspace(static_cast<unsigned char>(*p)) != 0) ++p;
  return p >= end || *p == '#' || *p == '%';
}

template <typename LineFn>
Status ForEachLine(const std::string& text, LineFn fn) {
  const char* p = text.data();
  const char* const end = p + text.size();
  size_t lineno = 0;
  while (p < end) {
    const char* eol = p;
    while (eol < end && *eol != '\n') ++eol;
    ++lineno;
    if (!IsCommentOrBlank(p, eol)) {
      Status s = fn(p, eol, lineno);
      if (!s.ok()) return s;
    }
    p = eol + 1;
  }
  return Status::OK();
}

}  // namespace

Status ParseEdgeList(const std::string& text, Graph* out,
                     const EdgeListOptions& options) {
  std::vector<Edge> raw;
  uint64_t max_id = 0;
  Status s = ForEachLine(
      text, [&](const char* line, const char* end, size_t lineno) -> Status {
        uint64_t fields[2];
        const int k = ParseFields(line, end, fields, 2);
        if (k < 2) {
          return Status::Corruption("bad edge at line " +
                                    std::to_string(lineno));
        }
        max_id = std::max({max_id, fields[0], fields[1]});
        raw.push_back(Edge{static_cast<Vertex>(fields[0]),
                           static_cast<Vertex>(fields[1])});
        return Status::OK();
      });
  if (!s.ok()) return s;

  if (options.keep_ids) {
    *out = Graph(raw.empty() ? 0 : max_id + 1, raw);
    return Status::OK();
  }
  // Compact sparse ids preserving first-appearance order.
  std::unordered_map<Vertex, Vertex> remap;
  remap.reserve(raw.size() * 2);
  auto intern = [&](Vertex v) {
    auto [it, inserted] = remap.emplace(v, static_cast<Vertex>(remap.size()));
    (void)inserted;
    return it->second;
  };
  for (Edge& e : raw) {
    e.u = intern(e.u);
    e.v = intern(e.v);
  }
  *out = Graph(remap.size(), raw);
  return Status::OK();
}

Status LoadEdgeList(const std::string& path, Graph* out,
                    const EdgeListOptions& options) {
  std::string text;
  Status s = ReadFileToString(path, &text);
  if (!s.ok()) return s;
  return ParseEdgeList(text, out, options);
}

Status SaveEdgeList(const Graph& graph, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IOError("cannot open for writing: " + path);
  std::fprintf(f, "# dspc edge list: %zu vertices, %zu edges\n",
               graph.NumVertices(), graph.NumEdges());
  bool ok = true;
  for (const Edge& e : graph.Edges()) {
    ok = ok && std::fprintf(f, "%u %u\n", e.u, e.v) > 0;
  }
  ok = std::fclose(f) == 0 && ok;
  return ok ? Status::OK() : Status::IOError("short write: " + path);
}

namespace {
constexpr uint32_t kGraphMagic = 0x44535047;  // "DSPG"
}  // namespace

Status SaveGraphBinary(const Graph& graph, const std::string& path) {
  BinaryWriter w;
  w.PutU32(kGraphMagic);
  w.PutU32(1);  // version
  w.PutU64(graph.NumVertices());
  w.PutU64(graph.NumEdges());
  for (const Edge& e : graph.Edges()) {
    w.PutU32(e.u);
    w.PutU32(e.v);
  }
  return w.WriteToFile(path);
}

Status LoadGraphBinary(const std::string& path, Graph* out) {
  BinaryReader r({});
  Status s = BinaryReader::ReadFromFile(path, &r);
  if (!s.ok()) return s;
  if (r.GetU32() != kGraphMagic) return Status::Corruption("bad graph magic");
  if (r.GetU32() != 1) return Status::Corruption("bad graph version");
  const uint64_t n = r.GetU64();
  const uint64_t m = r.GetU64();
  // Validate counts against the actual payload before any allocation: a
  // bit-flipped m would otherwise drive a multi-GB reserve (or worse, a
  // length_error abort) from attacker-controlled bytes.
  if (!r.status().ok()) return Status::DataLoss("truncated graph header");
  if (m > r.remaining() / (2 * sizeof(uint32_t))) {
    return Status::DataLoss("graph edge count exceeds payload: " + path);
  }
  if (n > (uint64_t{1} << 32)) {
    return Status::DataLoss("graph vertex count out of range: " + path);
  }
  std::vector<Edge> edges;
  edges.reserve(m);
  for (uint64_t i = 0; i < m; ++i) {
    const Vertex u = r.GetU32();
    const Vertex v = r.GetU32();
    if (u >= n || v >= n) {
      return Status::DataLoss("graph edge endpoint out of range: " + path);
    }
    edges.push_back(Edge{u, v});
  }
  if (!r.AtEnd()) return Status::Corruption("trailing bytes in " + path);
  *out = Graph(n, edges);
  return Status::OK();
}

Status ParseWeightedEdgeList(const std::string& text, WeightedGraph* out) {
  std::vector<WeightedEdge> raw;
  uint64_t max_id = 0;
  Status s = ForEachLine(
      text, [&](const char* line, const char* end, size_t lineno) -> Status {
        uint64_t fields[3];
        const int k = ParseFields(line, end, fields, 3);
        if (k < 3) {
          return Status::Corruption("bad weighted edge at line " +
                                    std::to_string(lineno));
        }
        max_id = std::max({max_id, fields[0], fields[1]});
        raw.push_back(WeightedEdge{static_cast<Vertex>(fields[0]),
                                   static_cast<Vertex>(fields[1]),
                                   static_cast<Weight>(fields[2])});
        return Status::OK();
      });
  if (!s.ok()) return s;
  *out = WeightedGraph(raw.empty() ? 0 : max_id + 1, raw);
  return Status::OK();
}

Status LoadWeightedEdgeList(const std::string& path, WeightedGraph* out) {
  std::string text;
  Status s = ReadFileToString(path, &text);
  if (!s.ok()) return s;
  return ParseWeightedEdgeList(text, out);
}

Status SaveWeightedEdgeList(const WeightedGraph& graph,
                            const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IOError("cannot open for writing: " + path);
  std::fprintf(f, "# dspc weighted edge list: %zu vertices, %zu edges\n",
               graph.NumVertices(), graph.NumEdges());
  bool ok = true;
  for (const WeightedEdge& e : graph.Edges()) {
    ok = ok && std::fprintf(f, "%u %u %u\n", e.u, e.v, e.w) > 0;
  }
  ok = std::fclose(f) == 0 && ok;
  return ok ? Status::OK() : Status::IOError("short write: " + path);
}

}  // namespace dspc
