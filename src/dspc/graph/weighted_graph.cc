#include "dspc/graph/weighted_graph.h"

#include <algorithm>

namespace dspc {

namespace {

bool NeighborLess(const WeightedNeighbor& a, Vertex b) { return a.to < b; }

}  // namespace

WeightedGraph::WeightedGraph(size_t n, const std::vector<WeightedEdge>& edges)
    : adj_(n) {
  for (const WeightedEdge& e : edges) {
    if (e.u == e.v || e.u >= n || e.v >= n || e.w == 0) continue;
    AddEdge(e.u, e.v, e.w);
  }
}

std::vector<WeightedNeighbor>::iterator WeightedGraph::Find(Vertex u,
                                                            Vertex v) {
  return std::lower_bound(adj_[u].begin(), adj_[u].end(), v, NeighborLess);
}

std::vector<WeightedNeighbor>::const_iterator WeightedGraph::Find(
    Vertex u, Vertex v) const {
  return std::lower_bound(adj_[u].begin(), adj_[u].end(), v, NeighborLess);
}

bool WeightedGraph::HasEdge(Vertex u, Vertex v) const {
  if (u >= adj_.size() || v >= adj_.size()) return false;
  auto it = Find(u, v);
  return it != adj_[u].end() && it->to == v;
}

Weight WeightedGraph::EdgeWeight(Vertex u, Vertex v) const {
  if (u >= adj_.size() || v >= adj_.size()) return 0;
  auto it = Find(u, v);
  return (it != adj_[u].end() && it->to == v) ? it->w : 0;
}

bool WeightedGraph::AddEdge(Vertex u, Vertex v, Weight w) {
  if (u == v || u >= adj_.size() || v >= adj_.size() || w == 0) return false;
  auto it = Find(u, v);
  if (it != adj_[u].end() && it->to == v) return false;
  adj_[u].insert(it, WeightedNeighbor{v, w});
  adj_[v].insert(Find(v, u), WeightedNeighbor{u, w});
  ++num_edges_;
  return true;
}

bool WeightedGraph::RemoveEdge(Vertex u, Vertex v) {
  if (u >= adj_.size() || v >= adj_.size()) return false;
  auto it = Find(u, v);
  if (it == adj_[u].end() || it->to != v) return false;
  adj_[u].erase(it);
  adj_[v].erase(Find(v, u));
  --num_edges_;
  return true;
}

bool WeightedGraph::SetWeight(Vertex u, Vertex v, Weight w) {
  if (w == 0 || u >= adj_.size() || v >= adj_.size()) return false;
  auto it = Find(u, v);
  if (it == adj_[u].end() || it->to != v) return false;
  it->w = w;
  Find(v, u)->w = w;
  return true;
}

Vertex WeightedGraph::AddVertex() {
  adj_.emplace_back();
  return static_cast<Vertex>(adj_.size() - 1);
}

std::vector<WeightedEdge> WeightedGraph::Edges() const {
  std::vector<WeightedEdge> edges;
  edges.reserve(num_edges_);
  for (Vertex u = 0; u < adj_.size(); ++u) {
    for (const WeightedNeighbor& nb : adj_[u]) {
      if (u < nb.to) edges.push_back(WeightedEdge{u, nb.to, nb.w});
    }
  }
  return edges;
}

}  // namespace dspc
