#include "dspc/graph/digraph.h"

#include <algorithm>

namespace dspc {

Digraph::Digraph(size_t n, const std::vector<Edge>& arcs) : out_(n), in_(n) {
  for (const Edge& a : arcs) {
    if (a.u == a.v || a.u >= n || a.v >= n) continue;
    out_[a.u].push_back(a.v);
    in_[a.v].push_back(a.u);
  }
  auto dedup = [](std::vector<std::vector<Vertex>>& lists) {
    for (auto& l : lists) {
      std::sort(l.begin(), l.end());
      l.erase(std::unique(l.begin(), l.end()), l.end());
    }
  };
  dedup(out_);
  dedup(in_);
  for (const auto& l : out_) num_arcs_ += l.size();
}

bool Digraph::HasArc(Vertex u, Vertex v) const {
  if (u >= out_.size() || v >= out_.size()) return false;
  return std::binary_search(out_[u].begin(), out_[u].end(), v);
}

bool Digraph::AddArc(Vertex u, Vertex v) {
  if (u == v || u >= out_.size() || v >= out_.size()) return false;
  auto it = std::lower_bound(out_[u].begin(), out_[u].end(), v);
  if (it != out_[u].end() && *it == v) return false;
  out_[u].insert(it, v);
  in_[v].insert(std::lower_bound(in_[v].begin(), in_[v].end(), u), u);
  ++num_arcs_;
  return true;
}

bool Digraph::RemoveArc(Vertex u, Vertex v) {
  if (u >= out_.size() || v >= out_.size()) return false;
  auto it = std::lower_bound(out_[u].begin(), out_[u].end(), v);
  if (it == out_[u].end() || *it != v) return false;
  out_[u].erase(it);
  in_[v].erase(std::lower_bound(in_[v].begin(), in_[v].end(), u));
  --num_arcs_;
  return true;
}

Vertex Digraph::AddVertex() {
  out_.emplace_back();
  in_.emplace_back();
  return static_cast<Vertex>(out_.size() - 1);
}

std::vector<Edge> Digraph::Arcs() const {
  std::vector<Edge> arcs;
  arcs.reserve(num_arcs_);
  for (Vertex u = 0; u < out_.size(); ++u) {
    for (Vertex v : out_[u]) arcs.push_back(Edge{u, v});
  }
  return arcs;
}

}  // namespace dspc
