// Zipf(s) sampler over a graph's vertices, hottest id = highest degree:
// P(rank i) proportional to 1/(i+1)^s, so real-workload skew (a few
// celebrity endpoints, a long cold tail) hits the serving path the way
// production traffic would. Exact inverse-CDF sampling — the table is n
// doubles, built once. Shared by bench_query_throughput and the unit
// tests (tests/zipf_sampler_test.cc); header-only so the bench target
// and the test binary pick up the same definition.

#ifndef DSPC_GRAPH_ZIPF_SAMPLER_H_
#define DSPC_GRAPH_ZIPF_SAMPLER_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <numeric>
#include <vector>

#include "dspc/common/rng.h"
#include "dspc/common/types.h"
#include "dspc/graph/graph.h"

namespace dspc {

class ZipfVertexSampler {
 public:
  /// Ranks the graph's vertices by degree descending (ties by ascending
  /// id, so the ranking — and thus every sample stream — is
  /// deterministic) and builds the partial-sum table of 1/(i+1)^s.
  ZipfVertexSampler(const Graph& graph, double s) {
    const size_t n = graph.NumVertices();
    by_rank_.resize(n);
    std::iota(by_rank_.begin(), by_rank_.end(), Vertex{0});
    std::sort(by_rank_.begin(), by_rank_.end(), [&](Vertex a, Vertex b) {
      const size_t da = graph.Degree(a), db = graph.Degree(b);
      return da != db ? da > db : a < b;
    });
    cdf_.resize(n);
    double acc = 0.0;
    for (size_t i = 0; i < n; ++i) {
      acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[i] = acc;
    }
    total_ = acc;
  }

  /// The vertex at quantile u01 in [0, 1) — the exact inverse CDF, with
  /// no randomness: rank i is returned iff u01 * total lands in
  /// (cdf[i-1], cdf[i]]. Exposed so tests can probe bucket boundaries
  /// deterministically; Sample() is exactly this at a uniform quantile.
  Vertex SampleAt(double u01) const {
    const double u = u01 * total_;
    const size_t i = static_cast<size_t>(
        std::lower_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
    return by_rank_[i < by_rank_.size() ? i : by_rank_.size() - 1];
  }

  Vertex Sample(Rng& rng) {
    // 53-bit mantissa uniform in [0, 1).
    return SampleAt(static_cast<double>(rng.Next() >> 11) * 0x1.0p-53);
  }

  /// Probability mass the inverse-CDF table assigns to rank `i` — the
  /// exact width of its quantile interval, i.e. what SampleAt realizes.
  double ProbabilityOfRank(size_t i) const {
    return (cdf_[i] - (i == 0 ? 0.0 : cdf_[i - 1])) / total_;
  }

  /// Vertices in sampling order: by_rank()[0] is the hottest.
  const std::vector<Vertex>& by_rank() const { return by_rank_; }

 private:
  std::vector<Vertex> by_rank_;
  std::vector<double> cdf_;
  double total_ = 1.0;
};

}  // namespace dspc

#endif  // DSPC_GRAPH_ZIPF_SAMPLER_H_
