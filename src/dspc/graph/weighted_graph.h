// Dynamic undirected graph with positive integer edge weights: substrate
// for the weighted extension of DSPC (paper Appendix C.2).

#ifndef DSPC_GRAPH_WEIGHTED_GRAPH_H_
#define DSPC_GRAPH_WEIGHTED_GRAPH_H_

#include <cstddef>
#include <vector>

#include "dspc/common/types.h"

namespace dspc {

/// A weighted undirected edge.
struct WeightedEdge {
  Vertex u;
  Vertex v;
  Weight w;

  friend bool operator==(const WeightedEdge&, const WeightedEdge&) = default;
};

/// A (neighbor, weight) adjacency entry.
struct WeightedNeighbor {
  Vertex to;
  Weight w;

  friend bool operator==(const WeightedNeighbor&,
                         const WeightedNeighbor&) = default;
};

/// Dynamic undirected graph with positive weights. Sorted adjacency as in
/// Graph; zero weights are rejected (shortest paths require positive costs).
class WeightedGraph {
 public:
  WeightedGraph() = default;
  explicit WeightedGraph(size_t n) : adj_(n) {}

  /// Builds from an edge list; duplicates keep the first weight seen.
  WeightedGraph(size_t n, const std::vector<WeightedEdge>& edges);

  size_t NumVertices() const { return adj_.size(); }
  size_t NumEdges() const { return num_edges_; }
  size_t Degree(Vertex v) const { return adj_[v].size(); }

  /// Sorted (by neighbor id) adjacency of `v`.
  const std::vector<WeightedNeighbor>& Neighbors(Vertex v) const {
    return adj_[v];
  }

  bool HasEdge(Vertex u, Vertex v) const;

  /// Weight of edge (u, v); 0 if absent.
  Weight EdgeWeight(Vertex u, Vertex v) const;

  /// Adds edge (u, v) with weight w > 0. False on self-loop/range/duplicate
  /// or w == 0.
  bool AddEdge(Vertex u, Vertex v, Weight w);

  /// Removes edge (u, v). False if absent.
  bool RemoveEdge(Vertex u, Vertex v);

  /// Changes the weight of existing edge (u, v) to w > 0. False if the edge
  /// is absent or w == 0.
  bool SetWeight(Vertex u, Vertex v, Weight w);

  /// Appends an isolated vertex and returns its id.
  Vertex AddVertex();

  /// All edges once with u < v.
  std::vector<WeightedEdge> Edges() const;

 private:
  std::vector<WeightedNeighbor>::iterator Find(Vertex u, Vertex v);
  std::vector<WeightedNeighbor>::const_iterator Find(Vertex u, Vertex v) const;

  std::vector<std::vector<WeightedNeighbor>> adj_;
  size_t num_edges_ = 0;
};

}  // namespace dspc

#endif  // DSPC_GRAPH_WEIGHTED_GRAPH_H_
